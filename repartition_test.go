package parhip_test

import (
	"context"
	"testing"

	"repro"
	"repro/internal/gen"
)

// TestRepartitionChurnAcceptance is the headline dynamic-graph scenario:
// partition a community graph, churn 5% of its edges, then Repartition
// with the previous partition. The warm run must stay cut-competitive with
// a cold run on the perturbed graph (within 5%) while migrating fewer than
// 30% of the nodes.
func TestRepartitionChurnAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run acceptance test")
	}
	const (
		pes = 8
		k   = int32(16)
	)
	g, _ := gen.PlantedPartition(6000, 60, 10, 0.4, 1)
	ctx := context.Background()

	cold, err := run(ctx, t, g, k, pes)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}

	g2 := gen.Perturb(g, 0.05, 7)
	cold2, err := run(ctx, t, g2, k, pes)
	if err != nil {
		t.Fatalf("cold run on perturbed graph: %v", err)
	}

	warm, err := parhip.Repartition(ctx, g2, cold.Partition, parhip.WithPEs(pes))
	if err != nil {
		t.Fatalf("Repartition: %v", err)
	}
	if !warm.Feasible {
		t.Fatalf("repartition result infeasible: imbalance %.4f", warm.Imbalance)
	}
	if limit := cold2.Cut + cold2.Cut/20; warm.Cut > limit {
		t.Errorf("warm cut %d more than 5%% above cold cut %d on the perturbed graph", warm.Cut, cold2.Cut)
	}

	plan, err := warm.Partition.MigrationPlan(cold.Partition)
	if err != nil {
		t.Fatalf("MigrationPlan: %v", err)
	}
	if frac := plan.MigratedFraction(); frac >= 0.30 {
		t.Errorf("migrated %.1f%% of nodes, want < 30%%", 100*frac)
	}
	if plan.MigratedNodes != warm.Stats.MigratedNodes {
		t.Errorf("MigrationPlan counts %d moves, Stats.MigratedNodes = %d",
			plan.MigratedNodes, warm.Stats.MigratedNodes)
	}
	if plan.MigrationVolume != warm.Stats.MigrationVolume {
		t.Errorf("MigrationPlan volume %d, Stats.MigrationVolume = %d",
			plan.MigrationVolume, warm.Stats.MigrationVolume)
	}
	t.Logf("cold cut %d, perturbed cold cut %d, warm cut %d, migrated %d/%d nodes (%.1f%%)",
		cold.Cut, cold2.Cut, warm.Cut, plan.MigratedNodes, plan.TotalNodes,
		100*plan.MigratedFraction())
}

func run(ctx context.Context, t *testing.T, g *parhip.Graph, k int32, pes int) (parhip.Result, error) {
	t.Helper()
	p, err := parhip.New(g, parhip.WithK(k), parhip.WithPEs(pes))
	if err != nil {
		return parhip.Result{}, err
	}
	return p.Run(ctx)
}

// TestRepartitionNeverWorseOnUnchangedGraph repartitions the *same* graph:
// the result must keep the previous cut or improve it, and migration must
// be tiny (only strict improvements move nodes).
func TestRepartitionNeverWorseOnUnchangedGraph(t *testing.T) {
	g, _ := gen.PlantedPartition(3000, 30, 10, 0.5, 2)
	ctx := context.Background()
	cold, err := run(ctx, t, g, 8, 4)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	warm, err := parhip.Repartition(ctx, g, cold.Partition)
	if err != nil {
		t.Fatalf("Repartition: %v", err)
	}
	if warm.Cut > cold.Cut {
		t.Errorf("repartitioning the unchanged graph worsened the cut: %d -> %d", cold.Cut, warm.Cut)
	}
	plan, err := warm.Partition.MigrationPlan(cold.Partition)
	if err != nil {
		t.Fatalf("MigrationPlan: %v", err)
	}
	if frac := plan.MigratedFraction(); frac > 0.15 {
		t.Errorf("unchanged graph migrated %.1f%% of nodes", 100*frac)
	}
	t.Logf("cut %d -> %d, migrated %.2f%%", cold.Cut, warm.Cut, 100*plan.MigratedFraction())
}

// TestRepartitionValidation covers the WithPrevious session plumbing.
func TestRepartitionValidation(t *testing.T) {
	g, _ := gen.PlantedPartition(500, 10, 8, 0.5, 3)
	ctx := context.Background()
	res, err := run(ctx, t, g, 4, 2)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}

	// k and eps are inherited from prev when omitted.
	p, err := parhip.New(g, parhip.WithPrevious(res.Partition))
	if err != nil {
		t.Fatalf("New with previous only: %v", err)
	}
	warm, err := p.Run(ctx)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if warm.Partition.K() != 4 {
		t.Errorf("inherited k = %d, want 4", warm.Partition.K())
	}

	// Conflicting k is rejected.
	if _, err := parhip.New(g, parhip.WithK(8), parhip.WithPrevious(res.Partition)); err == nil {
		t.Error("New accepted k=8 with a k=4 previous partition")
	}
	// Node-count mismatch is rejected.
	small := gen.DelaunayLike(100, 1)
	if _, err := parhip.New(small, parhip.WithPrevious(res.Partition)); err == nil {
		t.Error("New accepted a previous partition for a different node count")
	}
	// MinimizeMigration without a previous partition is rejected.
	if _, err := parhip.New(g, parhip.WithK(4), parhip.WithObjective(parhip.MinimizeMigration)); err == nil {
		t.Error("New accepted MinimizeMigration without WithPrevious")
	}
	// ...and accepted with one.
	if _, err := parhip.New(g, parhip.WithPrevious(res.Partition), parhip.WithObjective(parhip.MinimizeMigration)); err != nil {
		t.Errorf("New rejected MinimizeMigration with WithPrevious: %v", err)
	}
	// Nil prev on the one-call form.
	if _, err := parhip.Repartition(ctx, g, nil); err == nil {
		t.Error("Repartition accepted a nil previous partition")
	}
}

// TestRepartitionMinimizeMigrationObjective checks the objective wiring:
// under MinimizeMigration the warm run must migrate no more nodes than the
// default-objective warm run on the same perturbed graph.
func TestRepartitionMinimizeMigrationObjective(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run test")
	}
	g, _ := gen.PlantedPartition(2000, 20, 10, 0.5, 4)
	ctx := context.Background()
	cold, err := run(ctx, t, g, 8, 4)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	g2 := gen.Perturb(g, 0.05, 5)
	warmCut, err := parhip.Repartition(ctx, g2, cold.Partition)
	if err != nil {
		t.Fatalf("Repartition (cut objective): %v", err)
	}
	warmMig, err := parhip.Repartition(ctx, g2, cold.Partition,
		parhip.WithObjective(parhip.MinimizeMigration))
	if err != nil {
		t.Fatalf("Repartition (migration objective): %v", err)
	}
	if warmMig.Stats.MigratedNodes > warmCut.Stats.MigratedNodes {
		t.Errorf("MinimizeMigration migrated %d nodes, default objective %d",
			warmMig.Stats.MigratedNodes, warmCut.Stats.MigratedNodes)
	}
	t.Logf("migrated: cut-objective %d, migration-objective %d (cuts %d vs %d)",
		warmCut.Stats.MigratedNodes, warmMig.Stats.MigratedNodes, warmCut.Cut, warmMig.Cut)
}

// BenchmarkPartition is the cold baseline for BenchmarkRepartition: both
// partition the same perturbed graph, one from scratch and one from the
// pre-churn partition. CI's bench-smoke job runs the pair, and the ratio
// of their "migrated_frac" / ns/op columns records the value of the warm
// path across PRs.
func BenchmarkPartition(b *testing.B) {
	g, _ := gen.PlantedPartition(6000, 60, 10, 0.4, 1)
	g2 := gen.Perturb(g, 0.05, 7)
	var cut int64
	for i := 0; i < b.N; i++ {
		p, err := parhip.New(g2, parhip.WithK(16), parhip.WithPEs(8), parhip.WithSeed(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		res, err := p.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		cut = res.Cut
	}
	b.ReportMetric(float64(cut), "cut")
}

func BenchmarkRepartition(b *testing.B) {
	g, _ := gen.PlantedPartition(6000, 60, 10, 0.4, 1)
	prev, err := parhip.New(g, parhip.WithK(16), parhip.WithPEs(8))
	if err != nil {
		b.Fatal(err)
	}
	prevRes, err := prev.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	g2 := gen.Perturb(g, 0.05, 7)
	b.ResetTimer()
	var cut, migrated int64
	var total int32
	for i := 0; i < b.N; i++ {
		res, err := parhip.Repartition(context.Background(), g2, prevRes.Partition,
			parhip.WithPEs(8), parhip.WithSeed(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		cut = res.Cut
		migrated = res.Stats.MigratedNodes
		total = res.Partition.NumNodes()
	}
	b.ReportMetric(float64(cut), "cut")
	b.ReportMetric(float64(migrated)/float64(total), "migrated_frac")
}
