package parhip

import (
	"bytes"
	"testing"

	"repro/internal/gen"
	"repro/internal/kaffpa"
	"repro/internal/partition"
)

// End-to-end integration tests across module boundaries.

// The parallel system and the sequential multilevel partitioner must land
// in the same quality regime on the same input.
func TestIntegrationParallelVsSequentialQuality(t *testing.T) {
	g, _ := gen.PlantedPartition(3000, 20, 10, 0.6, 13)
	k := int32(4)
	seqCfg := kaffpa.DefaultConfig(k)
	seqCfg.Seed = 2
	seq, err := kaffpa.Partition(g, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := PartitionGraph(g, k, Options{PEs: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sc := partition.EdgeCut(g, seq)
	pc := par.Cut
	if pc > 2*sc || sc > 2*pc {
		t.Fatalf("parallel cut %d and sequential cut %d differ by more than 2x", pc, sc)
	}
}

// Round trip a generated graph through METIS text and binary formats, then
// partition the reloaded copy: the pipeline a downstream user runs.
func TestIntegrationIORoundTripThenPartition(t *testing.T) {
	g := gen.DelaunayLike(1600, 4)
	var metis, bin bytes.Buffer
	if err := WriteMetis(&metis, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadMetis(&metis)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PartitionGraph(g2, 4, Options{PEs: 2, Class: Mesh, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("infeasible after METIS round trip")
	}
	// Binary round trip preserves the graph exactly, so the same seed gives
	// the same partition.
	if err := WriteBinary(&bin, g2); err != nil {
		t.Fatal(err)
	}
	g3, err := ReadBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := PartitionGraph(g3, 4, Options{PEs: 2, Class: Mesh, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cut != res.Cut {
		t.Fatalf("binary round trip changed the run: cut %d vs %d", res2.Cut, res.Cut)
	}
}

// Prepartition improvement through the public API.
func TestIntegrationPrepartitionPublicAPI(t *testing.T) {
	g, _ := gen.PlantedPartition(1500, 12, 9, 0.5, 6)
	k := int32(4)
	pre := make([]int32, g.NumNodes())
	for v := int32(0); v < g.NumNodes(); v++ {
		pre[v] = v % k
	}
	preCut := EdgeCut(g, pre)
	res, err := PartitionGraph(g, k, Options{PEs: 2, Seed: 3, Prepartition: pre})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut > preCut {
		t.Fatalf("prepartition worsened: %d -> %d", preCut, res.Cut)
	}
}

// The headline comparison end to end through the public API: ParHIP beats
// the baseline on a community graph.
func TestIntegrationHeadlineComparison(t *testing.T) {
	g := gen.WebCrawlLike(8000, 60, 10, 0.4, 80, 9)
	k := int32(8)
	opt := Options{PEs: 2, Seed: 1}
	ours, err := PartitionGraph(g, k, opt)
	if err != nil {
		t.Fatal(err)
	}
	base, err := PartitionBaseline(g, k, opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ours.Cut >= base.Cut {
		t.Fatalf("ParHIP cut %d not better than baseline %d on a web graph", ours.Cut, base.Cut)
	}
	// And the baseline fails under the calibrated memory budget.
	if _, err := PartitionBaseline(g, k, opt, int64(g.NumNodes())/6); err == nil {
		t.Fatal("baseline should exceed the memory budget on a web-crawl graph")
	}
}
