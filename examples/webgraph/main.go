// Webgraph: the paper's headline scenario. Partition a web-like graph
// (community structure plus high-degree hubs) with ParHIP and with the
// matching-based baseline, under a memory budget that the baseline's
// ineffective coarsening cannot meet — reproducing the "*" entries of
// Tables II/III where ParMETIS runs out of memory.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/gen"
)

func main() {
	// Web-crawl analogue: community core plus a degree-one page fringe on
	// hub pages. ~20k nodes at this scale (the paper's uk-2007 has 105.8M).
	web := gen.WebCrawlLike(20000, 100, 10, 0.4, 180, 7)
	fmt.Printf("web graph: n=%d m=%d maxdeg=%d\n", web.NumNodes(), web.NumEdges(), web.MaxDegree())

	const k = 8
	opt := parhip.Options{PEs: 8, Class: parhip.Social, Seed: 1}

	// The v2 session API streams per-level progress while the run is in
	// flight — on a real web crawl this is minutes of otherwise-silent work.
	p, err := parhip.New(web, parhip.WithK(k), parhip.WithOptions(opt),
		parhip.WithProgressFunc(func(ev parhip.ProgressEvent) {
			if ev.Phase == "refine" {
				fmt.Printf("  refine level %d (n=%d): cut=%d\n", ev.Level, ev.N, ev.Cut)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ParHIP fast: cut=%d imbalance=%.4f feasible=%v time=%.2fs\n",
		res.Cut, res.Imbalance, res.Feasible, res.Stats.TotalTime.Seconds())
	fmt.Print("  hierarchy:")
	for _, lv := range res.Stats.Levels {
		fmt.Printf(" %d", lv.N)
	}
	fmt.Println(" nodes — note the aggressive first contraction")

	// The baseline under a memory budget of n/6 nodes: its matching-based
	// coarsening cannot shrink the leaf fringe fast enough.
	budget := int64(web.NumNodes()) / 6
	bres, err := parhip.PartitionBaseline(web, k, opt, budget)
	if err != nil {
		fmt.Printf("baseline: FAILED as in the paper's tables: %v\n", err)
	} else {
		fmt.Printf("baseline: cut=%d imbalance=%.4f (budget generous enough at this scale)\n",
			bres.Cut, bres.Imbalance)
	}

	// Without the budget the baseline finishes; compare quality.
	bres, err = parhip.PartitionBaseline(web, k, opt, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (unlimited memory): cut=%d — ParHIP cuts %.1f%% fewer edges\n",
		bres.Cut, 100*(1-float64(res.Cut)/float64(bres.Cut)))
}
