// Quickstart: build a small graph, partition it into two blocks with the
// v2 session API (New + Run under a context), inspect the result.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// A 4x4 grid: sixteen nodes, rook-move neighbours.
	const side = 4
	b := parhip.NewBuilder(side * side)
	id := func(r, c int32) int32 { return r*side + c }
	for r := int32(0); r < side; r++ {
		for c := int32(0); c < side; c++ {
			if c+1 < side {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < side {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	g := b.Build()

	// A session validates its options up front and runs under a context:
	// cancel it (or let the deadline pass) and Run returns ctx.Err() with
	// every simulated rank unwound.
	p, err := parhip.New(g,
		parhip.WithK(2),
		parhip.WithPEs(2),
		parhip.WithClass(parhip.Mesh),
		parhip.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := p.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cut=%d imbalance=%.3f feasible=%v\n", res.Cut, res.Imbalance, res.Feasible)
	for r := int32(0); r < side; r++ {
		for c := int32(0); c < side; c++ {
			fmt.Printf("%d ", res.Partition.Block(id(r, c)))
		}
		fmt.Println()
	}
}
