// Quickstart: build a small graph, partition it into two blocks, inspect
// the result.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 4x4 grid: sixteen nodes, rook-move neighbours.
	const side = 4
	b := parhip.NewBuilder(side * side)
	id := func(r, c int32) int32 { return r*side + c }
	for r := int32(0); r < side; r++ {
		for c := int32(0); c < side; c++ {
			if c+1 < side {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < side {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	g := b.Build()

	res, err := parhip.Partition(g, 2, parhip.Options{PEs: 2, Class: parhip.Mesh, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cut=%d imbalance=%.3f feasible=%v\n", res.Cut, res.Imbalance, res.Feasible)
	for r := int32(0); r < side; r++ {
		for c := int32(0); c < side; c++ {
			fmt.Printf("%d ", res.Part[id(r, c)])
		}
		fmt.Println()
	}
}
