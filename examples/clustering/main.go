// Clustering: the paper's §VI extension — modularity graph clustering with
// the same multilevel machinery (label propagation + cluster contraction).
// Clusters a social network and a planted-community graph and reports
// modularity against trivial baselines and against the ground truth.
package main

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/modularity"
)

func main() {
	fmt.Println("Multilevel modularity clustering (paper §VI future work)")

	// Planted communities: ground truth available.
	g, truth := gen.PlantedPartition(10000, 32, 12, 0.5, 7)
	clusters, q := modularity.Cluster(g, modularity.DefaultConfig())
	qTruth := modularity.Modularity(g, truth)
	fmt.Printf("\nplanted graph: n=%d m=%d\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("  found:        Q=%.4f (%d clusters)\n", q, countClusters(clusters))
	fmt.Printf("  ground truth: Q=%.4f (%d communities)\n", qTruth, countClusters(truth))

	// Social network: no ground truth; compare against baselines.
	ba := gen.BarabasiAlbert(10000, 5, 9)
	bc, bq := modularity.Cluster(ba, modularity.DefaultConfig())
	one := make([]int32, ba.NumNodes())
	fmt.Printf("\nsocial graph: n=%d m=%d\n", ba.NumNodes(), ba.NumEdges())
	fmt.Printf("  found:       Q=%.4f (%d clusters)\n", bq, countClusters(bc))
	fmt.Printf("  one cluster: Q=%.4f\n", modularity.Modularity(ba, one))
}

func countClusters(c []int32) int {
	seen := make(map[int32]bool)
	for _, x := range c {
		seen[x] = true
	}
	return len(seen)
}
