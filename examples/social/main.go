// Social: partition a social network for distributed graph processing —
// the paper's motivating application (§I: PageRank on k PEs wants k blocks
// of about equal size with few edges between them).
//
// The example partitions a preferential-attachment network, then estimates
// the per-superstep communication of a Pregel-style PageRank under three
// placements: hash partitioning (what most toolkits default to, §II-B),
// the matching baseline, and ParHIP. Communication is measured as the
// number of (node, foreign block) pairs that must be sent each superstep —
// the communication volume metric.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/gen"
)

func main() {
	const (
		n = 30000
		k = 16
	)
	g := gen.BarabasiAlbert(n, 6, 21)
	fmt.Printf("social network: n=%d m=%d maxdeg=%d\n", g.NumNodes(), g.NumEdges(), g.MaxDegree())

	// Hash placement: node v on PE v mod k.
	hash := make([]int32, n)
	for v := int32(0); v < n; v++ {
		hash[v] = v % k
	}
	report("hash", g, hash, k)

	opt := parhip.Options{PEs: 8, Class: parhip.Social, Seed: 5}
	bres, err := parhip.PartitionBaseline(g, k, opt, 0)
	if err != nil {
		log.Fatal(err)
	}
	report("matching-baseline", g, bres.Part, k)

	res, err := parhip.PartitionGraph(g, k, opt)
	if err != nil {
		log.Fatal(err)
	}
	report("parhip-fast", g, res.Part, k)

	eco := opt
	eco.Mode = parhip.Eco
	eres, err := parhip.PartitionGraph(g, k, eco)
	if err != nil {
		log.Fatal(err)
	}
	report("parhip-eco", g, eres.Part, k)

	fmt.Println("\nLower cut and communication volume mean fewer messages per")
	fmt.Println("PageRank superstep; balance keeps all PEs equally loaded.")
}

func report(name string, g *parhip.Graph, part []int32, k int32) {
	cut := parhip.EdgeCut(g, part)
	vol := parhip.CommunicationVolume(g, part, k)
	imb := parhip.Imbalance(g, part, k)
	fmt.Printf("%-18s cut=%8d  commvol=%8d  imbalance=%.4f  feasible=%v\n",
		name, cut, vol, imb, parhip.IsFeasible(g, part, k, 0.03))
}
