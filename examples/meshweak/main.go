// Meshweak: scaling behaviour on mesh-type graphs (the paper's Figure 5/6
// territory). Although ParHIP targets complex networks, the paper shows it
// also partitions larger meshes than ParMETIS can and with better cuts.
// This example runs a small weak-scaling sweep on random geometric graphs
// and a Delaunay-like mesh and prints the time per edge as the per-PE work
// is held constant.
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro"
	"repro/internal/gen"
)

func main() {
	const perPE = 8192
	const k = 16
	maxP := runtime.NumCPU()
	if maxP > 8 {
		maxP = 8
	}
	fmt.Printf("weak scaling: %d nodes per PE, k=%d, up to %d PEs\n\n", perPE, k, maxP)
	fmt.Printf("%-10s %4s %9s %10s %14s %10s\n", "family", "p", "n", "m", "time/edge[s]", "cut")
	for _, fam := range []string{"rgg", "delaunay"} {
		for p := 1; p <= maxP; p *= 2 {
			n := int32(perPE * p)
			var g *parhip.Graph
			if fam == "rgg" {
				g = gen.RGG(n, 3)
			} else {
				g = gen.DelaunayLike(n, 3)
			}
			res, err := parhip.PartitionGraph(g, k, parhip.Options{
				PEs: p, Class: parhip.Mesh, Seed: 3,
			})
			if err != nil {
				log.Fatal(err)
			}
			perEdge := res.Stats.TotalTime.Seconds() / float64(g.NumEdges())
			fmt.Printf("%-10s %4d %9d %10d %14.3e %10d\n",
				fam, p, g.NumNodes(), g.NumEdges(), perEdge, res.Cut)
		}
		fmt.Println()
	}
	fmt.Println("Flat or falling time/edge as p grows indicates weak scalability")
	fmt.Println("(compare Figure 5 of the paper).")
}
