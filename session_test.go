package parhip

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/testutil"
)

// TestSessionRun: the v2 happy path is equivalent to v1 Partition.
func TestSessionRun(t *testing.T) {
	g, _ := gen.PlantedPartition(3000, 20, 10, 0.5, 1)
	p, err := New(g, WithK(4), WithPEs(2), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Part) != int(g.NumNodes()) || !res.Feasible {
		t.Fatalf("bad result: len=%d feasible=%v", len(res.Part), res.Feasible)
	}
	if res.Cut != EdgeCut(g, res.Part) {
		t.Fatalf("cut %d != recomputed %d", res.Cut, EdgeCut(g, res.Part))
	}
	// Sessions are single-use.
	if _, err := p.Run(context.Background()); !errors.Is(err, ErrAlreadyRun) {
		t.Fatalf("second Run returned %v, want ErrAlreadyRun", err)
	}
}

// TestSessionProgress: subscribing before Run yields ordered phase events
// ending in a "done" checkpoint consistent with the result, and closes the
// channel afterwards.
func TestSessionProgress(t *testing.T) {
	g, _ := gen.PlantedPartition(4000, 20, 10, 0.5, 3)
	var cbEvents int
	p, err := New(g, WithK(4), WithPEs(2),
		WithProgressFunc(func(ProgressEvent) { cbEvents++ }))
	if err != nil {
		t.Fatal(err)
	}
	ch := p.Progress()
	done := make(chan []ProgressEvent)
	go func() {
		var evs []ProgressEvent
		for ev := range ch {
			evs = append(evs, ev)
		}
		done <- evs
	}()
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	evs := <-done // channel closed by Run
	if len(evs) == 0 {
		t.Fatal("no progress events")
	}
	seen := map[string]int{}
	for _, ev := range evs {
		seen[ev.Phase]++
	}
	for _, phase := range []string{"coarsen", "init", "refine", "done"} {
		if seen[phase] == 0 {
			t.Errorf("no %q event (saw %v)", phase, seen)
		}
	}
	last := evs[len(evs)-1]
	if last.Phase != "done" || last.Cut != res.Cut {
		t.Fatalf("final event %+v does not match result cut %d", last, res.Cut)
	}
	for _, ev := range evs {
		if ev.Phase == "refine" && (ev.Cut < 0 || ev.Imbalance < -1e-9) {
			t.Fatalf("refine event missing quality: %+v", ev)
		}
		if ev.Cycles == 0 || ev.Elapsed < 0 {
			t.Fatalf("malformed event: %+v", ev)
		}
	}
	if cbEvents == 0 {
		t.Fatal("WithProgressFunc callback never invoked")
	}
}

// TestProgressAfterRunTerminates: a first Progress() subscription after
// Run has returned yields a closed channel, so ranging over it still
// terminates instead of blocking forever.
func TestProgressAfterRunTerminates(t *testing.T) {
	g, _ := gen.PlantedPartition(800, 8, 8, 0.5, 4)
	p, err := New(g, WithK(2), WithPEs(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range p.Progress() {
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ranging over post-Run Progress() never terminated")
	}
}

// TestSessionCancelMidCoarsening: cancelling on the first coarsening
// checkpoint makes Run return ctx.Err() promptly and leak no goroutines.
func TestSessionCancelMidCoarsening(t *testing.T) {
	base := runtime.NumGoroutine()
	g, _ := gen.PlantedPartition(20000, 30, 16, 0.5, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cancelledAt time.Time
	p, err := New(g, WithK(8), WithPEs(4), WithMode(Eco),
		WithProgressFunc(func(ev ProgressEvent) {
			if ev.Phase == "coarsen" && cancelledAt.IsZero() {
				cancelledAt = time.Now()
				cancel()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Run(ctx)
	returned := time.Now()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if cancelledAt.IsZero() {
		t.Fatal("run finished before the first coarsen event")
	}
	// Promptness: well under the ~seconds the full eco run takes — the
	// ranks must stop at the next superstep, not finish the pipeline.
	if lat := returned.Sub(cancelledAt); lat > 3*time.Second {
		t.Fatalf("cancel-to-return latency %v", lat)
	}
	testutil.WaitNoLeak(t, base, 2)
}

// TestSessionCancelMidEvolution: a run parked in the evolutionary search
// (long time budget on a small graph) honors cancellation.
func TestSessionCancelMidEvolution(t *testing.T) {
	base := runtime.NumGoroutine()
	g, _ := gen.PlantedPartition(800, 10, 8, 0.5, 5)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p, err := New(g, WithK(2), WithPEs(2), WithMode(Eco),
		WithEvoTimeBudget(60*time.Second)) // would park evo for 30s/rank
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	_, err = p.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v against a 60s evo budget", elapsed)
	}
	testutil.WaitNoLeak(t, base, 2)
}

// TestSessionDeadline: a context deadline surfaces as DeadlineExceeded
// within bounded time.
func TestSessionDeadline(t *testing.T) {
	base := runtime.NumGoroutine()
	g, _ := gen.PlantedPartition(20000, 30, 16, 0.5, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	p, err := New(g, WithK(8), WithPEs(4), WithMode(Eco))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = p.Run(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run returned %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline enforcement took %v", elapsed)
	}
	testutil.WaitNoLeak(t, base, 2)
}

// TestSessionPreCancelled: a context cancelled before Run starts returns
// immediately without partitioning.
func TestSessionPreCancelled(t *testing.T) {
	g, _ := gen.PlantedPartition(1000, 8, 8, 0.5, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, err := New(g, WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
}

// TestNewValidation: every invalid setting is rejected with a descriptive
// error at the API boundary.
func TestNewValidation(t *testing.T) {
	g, _ := gen.PlantedPartition(100, 6, 6, 0.5, 1)
	cases := []struct {
		name string
		g    *Graph
		opts []Option
		want string
	}{
		{"nil graph", nil, []Option{WithK(2)}, "nil graph"},
		{"k missing", g, nil, "k = 0"},
		{"k negative", g, []Option{WithK(-3)}, "k = -3"},
		{"k exceeds n", g, []Option{WithK(101)}, "exceeds"},
		{"eps negative", g, []Option{WithK(2), WithEps(-0.1)}, "eps"},
		{"eps absurd", g, []Option{WithK(2), WithEps(1e6)}, "eps"},
		{"pes negative", g, []Option{WithK(2), WithPEs(-1)}, "PEs"},
		{"bad mode", g, []Option{WithK(2), WithMode(Mode(42))}, "mode"},
		{"bad class", g, []Option{WithK(2), WithClass(GraphClass(9))}, "class"},
		{"bad objective", g, []Option{WithK(2), WithObjective(Objective(77))}, "objective"},
		{"negative budget", g, []Option{WithK(2), WithEvoTimeBudget(-time.Second)}, "budget"},
		{"prepartition length", g, []Option{WithK(2), WithPrepartition(make([]int32, 7))}, "prepartition"},
		// Explicit zeros collide with the legacy "unset" sentinel and would
		// be silently replaced by defaults; v2 rejects them instead.
		{"explicit eps 0", g, []Option{WithK(2), WithEps(0)}, "WithEps(0)"},
		{"explicit seed 0", g, []Option{WithK(2), WithSeed(0)}, "WithSeed(0)"},
		{"explicit pes 0", g, []Option{WithK(2), WithPEs(0)}, "WithPEs(0)"},
	}
	for _, tc := range cases {
		_, err := New(tc.g, tc.opts...)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// A fully valid configuration still passes.
	if _, err := New(g, WithK(2), WithEps(0.1), WithPEs(2), WithMode(Eco),
		WithClass(Mesh), WithObjective(MinimizeCommVolume)); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	// WithOptions replaces earlier options wholesale, including their
	// explicit-zero markers: this must not trip the sentinel rejection.
	if _, err := New(g, WithK(2), WithSeed(5), WithOptions(Options{Mode: Eco})); err != nil {
		t.Fatalf("WithSeed before WithOptions rejected: %v", err)
	}
}

// TestDeprecatedPartitionValidates: the v1 wrapper applies the same strict
// checks (it used to silently replace a negative eps by the default).
func TestDeprecatedPartitionValidates(t *testing.T) {
	g, _ := gen.PlantedPartition(100, 6, 6, 0.5, 1)
	if _, err := PartitionGraph(g, 2, Options{Eps: -1}); err == nil {
		t.Fatal("negative eps accepted by Partition")
	}
	if _, err := PartitionGraph(g, 101, Options{}); err == nil {
		t.Fatal("k > n accepted by Partition")
	}
	if _, err := PartitionGraph(g, 2, Options{PEs: -4}); err == nil {
		t.Fatal("negative PEs accepted by Partition")
	}
	if _, err := PartitionBaseline(g, 2, Options{Eps: 1e9}, 0); err == nil {
		t.Fatal("absurd eps accepted by PartitionBaseline")
	}
}

// TestBaselineCtxCancel: the matching-based baseline honors contexts too.
func TestBaselineCtxCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	g := gen.DelaunayLike(20000, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PartitionBaselineCtx(ctx, g, 2, Options{PEs: 2, Class: Mesh}, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
	testutil.WaitNoLeak(t, base, 2)
}
