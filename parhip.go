// Package parhip is a Go reproduction of "Parallel Graph Partitioning for
// Complex Networks" (Meyerhenke, Sanders, Schulz, IPDPS 2015) — the system
// known as ParHIP.
//
// The package partitions an undirected graph into k blocks of nearly equal
// weight while minimizing the number (weight) of cut edges. It targets
// complex networks (social networks, web graphs) whose heavy-tailed degree
// distributions defeat classical matching-based multilevel partitioners,
// using parallel size-constrained label propagation for both coarsening and
// refinement, and a distributed evolutionary algorithm on the coarsest
// graph. Parallelism runs on simulated message-passing ranks (goroutines),
// standing in for the paper's MPI processes.
//
// Quick start (v2 session API):
//
//	b := parhip.NewBuilder(4)
//	b.AddEdge(0, 1)
//	b.AddEdge(1, 2)
//	b.AddEdge(2, 3)
//	p, err := parhip.New(b.Build(), parhip.WithK(2))
//	if err != nil { ... }
//	res, err := p.Run(ctx) // cancellable; see also p.Progress()
//
// A session is bound to a context.Context: cancelling it (or letting its
// deadline pass) unwinds every simulated rank cooperatively and Run
// returns ctx.Err(). Progress() streams per-level checkpoint events while
// the run is in flight. The v1 Partition/Options entry points remain as
// deprecated wrappers.
//
// See the examples directory for realistic scenarios.
package parhip

import (
	"context"
	"time"

	"io"

	"repro/internal/core"
	"repro/internal/evo"
	"repro/internal/graph"
	"repro/internal/matchbase"
	"repro/internal/modularity"
	"repro/internal/obs"
	"repro/internal/partition"
)

// Graph is the CSR graph type accepted by the partitioner. Construct
// instances with NewBuilder or ReadMetis.
type Graph = graph.Graph

// Builder incrementally assembles a Graph.
type Builder = graph.Builder

// NewBuilder returns a builder for a graph with n nodes (unit weights by
// default).
func NewBuilder(n int32) *Builder { return graph.NewBuilder(n) }

// ReadMetis parses a graph in METIS format.
func ReadMetis(r io.Reader) (*Graph, error) { return graph.ReadMetis(r) }

// WriteMetis writes a graph in METIS format.
func WriteMetis(w io.Writer, g *Graph) error { return graph.WriteMetis(w, g) }

// ReadBinary parses a graph in the package's fast binary format.
func ReadBinary(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// WriteBinary writes a graph in the package's fast binary format.
func WriteBinary(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// Mode selects the quality/time trade-off (§V-A of the paper).
type Mode int

// Modes. Fast performs two V-cycles with the evolutionary algorithm
// computing only its initial population; Eco performs five V-cycles with an
// actual evolutionary search; Minimal performs a single V-cycle.
const (
	Fast Mode = iota
	Eco
	Minimal
)

// GraphClass tells the coarsening which size-constraint factor to use.
type GraphClass int

// Graph classes: social/web graphs use f=14, mesh-like graphs f=20000
// (§V-A).
const (
	Social GraphClass = iota
	Mesh
)

// Options configures the deprecated Partition entry point. The zero value
// requests the Fast mode on a social-type graph with 4 simulated PEs, 3%
// imbalance and seed 1.
//
// Deprecated: new code should configure a session with New and functional
// options (WithK, WithMode, ...). Options remains a thin wrapper: it can
// be applied wholesale to a session with WithOptions.
type Options struct {
	// PEs is the number of simulated processing elements (default 4).
	PEs int
	// Mode is the quality/time setting (default Fast).
	Mode Mode
	// Class is the graph type (default Social).
	Class GraphClass
	// Eps is the allowed imbalance (default 0.03).
	Eps float64
	// Seed makes runs reproducible (default 1).
	Seed uint64
	// EvoTimeBudget optionally gives the evolutionary algorithm a
	// wall-clock budget, divided by the number of PEs as in the paper's
	// eco setting.
	EvoTimeBudget time.Duration
	// Objective selects the fitness minimized by the evolutionary search
	// on the coarsest graph (default: edge cut).
	Objective Objective
	// Prepartition optionally supplies an existing k-way partition (e.g. a
	// geographic or hash placement, §VI) that is fed into the first
	// V-cycle and improved; the result is never worse than the input.
	Prepartition []int32
	// Trace, when non-nil, records per-rank spans of the run (pipeline
	// phases, sclp supersteps, mpi exchanges); serialize the tracer with
	// Tracer.WriteJSON afterwards to obtain a Chrome trace-event file.
	// Nil (the default) disables tracing at zero cost.
	Trace *Tracer
	// Workers is the number of OS threads each simulated rank uses for the
	// compute half of its supersteps (label propagation proposals, quotient
	// edge accumulation). 0 selects the default, NumCPU divided by the
	// number of ranks hosted in this process, so in-process worlds don't
	// oversubscribe the machine. The partition is bit-identical for every
	// worker count; Workers trades wall-clock time only.
	Workers int
}

// Tracer records per-rank spans of a partitioning run and serializes them
// as Chrome trace-event JSON (WriteJSON), openable in Perfetto or
// chrome://tracing with one track per simulated rank. Create one with
// NewTracer and attach it via WithTracer (or Options.Trace); a nil *Tracer
// is a valid, disabled tracer.
type Tracer = obs.Tracer

// NewTracer returns an enabled tracer with one track per rank. Size it to
// the session's PE count (tracks beyond it stay empty; spans from ranks
// outside the range are dropped).
func NewTracer(ranks int) *Tracer { return obs.NewTracer(ranks) }

// Objective selects the optimization target of the coarsest-level
// evolutionary search (§VI extension).
type Objective = evo.Objective

// Objectives.
const (
	// MinimizeCut minimizes the total weight of cut edges (the paper's
	// objective, default).
	MinimizeCut = evo.ObjectiveCut
	// MinimizeCommVolume minimizes the total communication volume.
	MinimizeCommVolume = evo.ObjectiveCommVol
	// MinimizeMaxCommVolume minimizes the busiest block's volume.
	MinimizeMaxCommVolume = evo.ObjectiveMaxCommVol
	// MinimizeMaxQuotientDegree minimizes the maximum number of
	// neighbouring blocks.
	MinimizeMaxQuotientDegree = evo.ObjectiveMaxQuotientDegree
	// MinimizeMigration minimizes the number of nodes moved away from the
	// previous partition, breaking ties by edge cut. It requires a session
	// configured with WithPrevious (or Repartition); without a previous
	// partition there is nothing to stay close to and New rejects it.
	MinimizeMigration = evo.ObjectiveMigration
)

// Result of a partitioning run.
type Result struct {
	// Partition is the computed partition as a first-class value: block
	// assignment plus block weights, cut, feasibility and the graph
	// fingerprint, with serialization and migration planning attached.
	Partition *Partition
	// Part assigns every node a block in [0, k). It aliases Partition's
	// storage and must be treated as read-only.
	//
	// Deprecated: use Partition.
	Part []int32
	// Cut is the weight of edges between different blocks.
	Cut int64
	// Imbalance is max block weight / average block weight - 1.
	Imbalance float64
	// Feasible reports whether every block respects (1+eps)*ceil(W/k).
	Feasible bool
	// Stats carries detailed level/timing/communication data; repartition
	// runs additionally fill Stats.MigratedNodes and Stats.MigrationVolume.
	Stats core.Stats
}

func (o Options) coreConfig(k int32) core.Config {
	class := core.ClassSocial
	if o.Class == Mesh {
		class = core.ClassMesh
	}
	var cfg core.Config
	switch o.Mode {
	case Eco:
		cfg = core.EcoConfig(k, class)
	case Minimal:
		cfg = core.MinimalConfig(k, class)
	default:
		cfg = core.FastConfig(k, class)
	}
	if o.Eps > 0 {
		cfg.Eps = o.Eps
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	cfg.EvoTimeBudget = o.EvoTimeBudget
	cfg.Objective = o.Objective
	cfg.Prepartition = o.Prepartition
	cfg.Tracer = o.Trace
	cfg.Workers = o.Workers
	return cfg
}

func (o Options) pes() int {
	if o.PEs <= 0 {
		return 4
	}
	return o.PEs
}

// PartitionGraph computes a k-way partition of g with the ParHIP
// algorithm. It applies the same strict option validation as New (invalid
// eps, PEs, mode etc. are errors, not silently replaced by defaults). In
// earlier releases this function was named Partition; that name now
// belongs to the first-class partition value type.
//
// Deprecated: use New + Run, which add cancellation and progress:
//
//	p, err := parhip.New(g, parhip.WithK(k), parhip.WithOptions(opt))
//	res, err := p.Run(ctx)
func PartitionGraph(g *Graph, k int32, opt Options) (Result, error) {
	p, err := New(g, WithK(k), WithOptions(opt))
	if err != nil {
		return Result{}, err
	}
	return p.Run(context.Background())
}

// PartitionBaseline computes a k-way partition with the ParMETIS-style
// matching-based baseline the paper compares against. memoryBudgetNodes
// bounds the size of the coarsest graph a PE may replicate (0 = unlimited);
// beyond it the run fails like ParMETIS running out of memory in the
// paper's tables. It is PartitionBaselineCtx with a background context.
func PartitionBaseline(g *Graph, k int32, opt Options, memoryBudgetNodes int64) (Result, error) {
	return PartitionBaselineCtx(context.Background(), g, k, opt, memoryBudgetNodes)
}

// PartitionBaselineCtx is PartitionBaseline bound to a context: when ctx
// is cancelled, the simulated ranks unwind cooperatively and it returns
// ctx.Err(). It applies the same strict option validation as New, and its
// Result carries the same Stats detail (hierarchy levels, phase timings,
// balance bound, communication) as the main partitioner's, so bench
// comparisons against the baseline are apples-to-apples.
func PartitionBaselineCtx(ctx context.Context, g *Graph, k int32, opt Options, memoryBudgetNodes int64) (Result, error) {
	if err := validateRun(g, k, opt); err != nil {
		return Result{}, err
	}
	cfg := matchbase.DefaultConfig(k)
	if opt.Eps > 0 {
		cfg.Eps = opt.Eps
	}
	if opt.Seed != 0 {
		cfg.Seed = opt.Seed
	}
	cfg.MemoryBudgetNodes = memoryBudgetNodes
	cfg.Tracer = opt.Trace
	res, err := matchbase.RunCtx(ctx, opt.pes(), g, cfg)
	if err != nil {
		return Result{}, err
	}
	st := res.Stats
	levels := make([]core.LevelStat, len(st.Levels))
	for i, n := range st.Levels {
		levels[i] = core.LevelStat{N: n}
		if i < len(st.LevelsM) {
			levels[i].M = st.LevelsM[i]
		}
	}
	pv := newPartitionFromRun(g, res.Part, k, cfg.Eps, st.Cut, st.Feasible)
	return Result{
		Partition: pv,
		Part:      res.Part,
		Cut:       st.Cut,
		Imbalance: st.Imbalance,
		Feasible:  st.Feasible,
		Stats: core.Stats{
			Levels:         levels,
			CoarsenTime:    st.CoarsenTime,
			InitTime:       st.InitTime,
			RefineTime:     st.RefineTime,
			TotalTime:      st.TotalTime,
			Cut:            st.Cut,
			Imbalance:      st.Imbalance,
			Lmax:           st.Lmax,
			MaxBlockWeight: st.MaxBlockWeight,
			Feasible:       st.Feasible,
			Comm:           st.Comm,
		},
	}, nil
}

// Fingerprint returns a stable content hash of g: a SHA-256 (hex-encoded)
// over the CSR arrays and node/edge weights. Equal fingerprints mean
// byte-identical graph representations, which makes the fingerprint a safe
// cache key for partitioning results; the parhipd service keys its result
// cache on Fingerprint(g) plus the canonicalized Options.
func Fingerprint(g *Graph) string { return g.Fingerprint() }

// EdgeCut returns the weight of edges crossing between blocks of p.
//
// Deprecated: use Partition.Cut, which every Result carries precomputed.
func EdgeCut(g *Graph, p []int32) int64 {
	return partition.EdgeCut(g, p)
}

// Imbalance returns max block weight over average block weight, minus 1.
//
// Deprecated: use Partition.Imbalance.
func Imbalance(g *Graph, p []int32, k int32) float64 {
	return partition.Imbalance(g, p, k)
}

// CommunicationVolume returns the total communication volume of p — for
// every node, the number of distinct foreign blocks among its neighbours.
//
// Deprecated: use Partition.CommunicationVolume.
func CommunicationVolume(g *Graph, p []int32, k int32) int64 {
	return partition.CommunicationVolume(g, p, k)
}

// IsFeasible reports whether p respects the balance bound
// (1+eps)*ceil(W/k) for every block.
//
// Deprecated: use Partition.Feasible (or Validate after deserializing).
func IsFeasible(g *Graph, p []int32, k int32, eps float64) bool {
	return partition.IsFeasible(g, p, k, eps)
}

// CommunicationVolume returns the total communication volume of the
// partition on g — for every node, the number of distinct foreign blocks
// among its neighbours.
func (p *Partition) CommunicationVolume(g *Graph) int64 {
	return partition.CommunicationVolume(g, p.assign, p.k)
}

// Clustering assigns every node a cluster ID. Unlike a Partition there is
// no block count or balance bound attached; cluster IDs are dense-ish but
// arbitrary.
type Clustering []int32

// ClusterModularity computes a multilevel modularity clustering of g (the
// §VI graph-clustering extension): no block count and no balance bound,
// maximizing Newman's modularity instead. It returns the cluster of each
// node and the achieved modularity.
func ClusterModularity(g *Graph, seed uint64) (Clustering, float64) {
	cfg := modularity.DefaultConfig()
	if seed != 0 {
		cfg.Seed = seed
	}
	return modularity.Cluster(g, cfg)
}

// Modularity returns Newman's modularity of a clustering of g.
func Modularity(g *Graph, clusters Clustering) float64 {
	return modularity.Modularity(g, clusters)
}
