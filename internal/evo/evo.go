// Package evo implements KaFFPaE (§II-C), the coarse-grained distributed
// evolutionary partitioner run on the (replicated) coarsest graph of the
// hierarchy.
//
// Every rank holds a copy of the graph and evolves a local population of
// partitions. The combine operation feeds two parents into the multilevel
// partitioner with their cut edges forbidden from contraction and the
// better parent applied at the coarsest level, which guarantees offspring
// at least as good as the better parent. Ranks exchange their best
// individual with randomly chosen peers (randomized rumor spreading); the
// globally best individual is selected collectively at the end.
package evo

import (
	"context"
	"time"

	"repro/internal/graph"
	"repro/internal/kaffpa"
	"repro/internal/mpi"
	"repro/internal/partition"
	"repro/internal/rng"
)

// migrantTag is the user-message tag for exchanged individuals.
const migrantTag = 9100

// Objective selects the fitness the evolutionary search minimizes. The
// paper's evaluation uses the edge cut; §VI proposes integrating
// communication-volume style objectives "into the evolutionary algorithm
// which is called on the coarsest graph", which the other values realize.
type Objective int

// Objectives.
const (
	// ObjectiveCut minimizes the total weight of cut edges (default).
	ObjectiveCut Objective = iota
	// ObjectiveCommVol minimizes the total communication volume.
	ObjectiveCommVol
	// ObjectiveMaxCommVol minimizes the busiest block's communication
	// volume.
	ObjectiveMaxCommVol
	// ObjectiveMaxQuotientDegree minimizes the maximum number of
	// neighbouring blocks over all blocks.
	ObjectiveMaxQuotientDegree
	// ObjectiveMigration minimizes the number of nodes assigned differently
	// from Config.MigrationRef, breaking ties by edge cut — the
	// repartitioning objective. Requires MigrationRef.
	ObjectiveMigration
)

func (o Objective) value(g *graph.Graph, p []int32, k int32) int64 {
	switch o {
	case ObjectiveCommVol:
		return partition.CommunicationVolume(g, p, k)
	case ObjectiveMaxCommVol:
		return partition.MaxCommVolume(g, p, k)
	case ObjectiveMaxQuotientDegree:
		return int64(partition.MaxQuotientDegree(g, p, k))
	default:
		return partition.EdgeCut(g, p)
	}
}

// Config controls one evolutionary run.
type Config struct {
	K   int32
	Eps float64

	// PopulationSize is the number of individuals kept per rank.
	PopulationSize int
	// Rounds is the number of combine/mutation steps per rank. Zero means
	// "initial population only" — the paper's fast and minimal
	// configurations give the evolutionary algorithm "only enough time to
	// compute the initial population".
	Rounds int
	// TimeBudget optionally bounds the evolution by wall-clock time; when
	// positive it overrides Rounds (the paper's eco setting uses
	// t_p = t_1/p). Results under a time budget are not deterministic.
	TimeBudget time.Duration
	// MutationProb is the probability that a step runs a fresh multilevel
	// partition instead of a combine.
	MutationProb float64
	// MigrateEvery controls rumor spreading: the local best is sent to one
	// random peer every MigrateEvery steps (0 disables).
	MigrateEvery int
	// Seed drives all randomness; each rank derives an independent stream.
	Seed uint64
	// Initial optionally seeds the population with a known partition
	// (V-cycles inject the projected previous solution, ensuring the
	// result is at least as good).
	//lint:rawslice-ok internal SPMD plumbing: the raw assignment slice is the working representation; wrapped in *parhip.Partition at the public boundary
	Initial []int32
	// Objective is the fitness to minimize (default: edge cut). Combine
	// operators still optimize the cut internally (their no-worsening
	// guarantee is cut-based); selection and migration use the objective.
	Objective Objective
	// MigrationRef, when non-nil (one block per node), makes selection
	// migration-aware: individuals that agree with the reference on more
	// nodes win objective ties (the MinimizeMigration "component" of the
	// repartitioning path). Under ObjectiveMigration the divergence from
	// the reference is the primary fitness and the cut breaks ties.
	//lint:rawslice-ok internal SPMD plumbing: the raw assignment slice is the working representation; wrapped in *parhip.Partition at the public boundary
	MigrationRef []int32
}

// DefaultConfig returns sensible defaults for a k-way evolution.
func DefaultConfig(k int32) Config {
	return Config{
		K:              k,
		Eps:            0.03,
		PopulationSize: 4,
		Rounds:         4,
		MutationProb:   0.1,
		MigrateEvery:   2,
		Seed:           1,
	}
}

type individual struct {
	p []int32
	// primary is the objective value (edge cut under the default
	// objective; divergence from the migration reference under
	// ObjectiveMigration). secondary breaks primary ties: the migration
	// count when a reference is configured (0 otherwise), or the cut under
	// ObjectiveMigration.
	primary   int64
	secondary int64
	feasible  bool
}

// better reports whether a beats b (feasibility first, then the primary
// objective, then the migration/cut tie-break).
func better(a, b individual) bool {
	if a.feasible != b.feasible {
		return a.feasible
	}
	if a.primary != b.primary {
		return a.primary < b.primary
	}
	return a.secondary < b.secondary
}

// divergence counts the nodes p assigns differently from ref.
func divergence(p, ref []int32) int64 {
	var d int64
	for i := range p {
		if p[i] != ref[i] {
			d++
		}
	}
	return d
}

func evaluate(g *graph.Graph, p []int32, cfg Config) individual {
	ind := individual{
		p:        p,
		feasible: partition.IsFeasible(g, p, cfg.K, cfg.Eps),
	}
	if cfg.Objective == ObjectiveMigration {
		ind.primary = divergence(p, cfg.MigrationRef)
		ind.secondary = partition.EdgeCut(g, p)
		return ind
	}
	ind.primary = cfg.Objective.value(g, p, cfg.K)
	if cfg.MigrationRef != nil {
		ind.secondary = divergence(p, cfg.MigrationRef)
	}
	return ind
}

// Evolve runs the evolutionary algorithm and returns the globally best
// partition, identical on every rank. Collective.
//
// Evolve honors ctx deadlines cooperatively: the search loop stops starting
// new combine/mutation steps once ctx is done (each step runs a full
// multilevel partition, so this is the natural granularity) and proceeds
// straight to the collective selection of the best individual found so far.
// When the surrounding world is additionally aborted (mpi.World.Abort /
// WatchContext, as core.RunCtx arranges), the selection collectives unwind
// instead of completing — ctx alone degrades gracefully, ctx + abort
// cancels hard.
//
//parhip:collective
//lint:rawslice-ok internal SPMD plumbing: the raw assignment slice is the working representation; wrapped in *parhip.Partition at the public boundary
func Evolve(ctx context.Context, c *mpi.Comm, g *graph.Graph, cfg Config) []int32 {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Objective == ObjectiveMigration && cfg.MigrationRef == nil {
		panic("evo: ObjectiveMigration requires Config.MigrationRef")
	}
	if cfg.PopulationSize < 2 {
		cfg.PopulationSize = 2
	}
	if cfg.Eps <= 0 {
		cfg.Eps = 0.03
	}
	r := rng.New(cfg.Seed).Split(uint64(c.Rank()))

	base := kaffpa.DefaultConfig(cfg.K)
	base.Eps = cfg.Eps

	pop := make([]individual, 0, cfg.PopulationSize)
	if cfg.Initial != nil {
		pop = append(pop, evaluate(g, append([]int32(nil), cfg.Initial...), cfg))
	}
	for len(pop) < cfg.PopulationSize {
		if len(pop) > 0 && ctx.Err() != nil {
			break // cancelled: one individual is enough to select from
		}
		kc := base
		kc.Seed = r.Uint64()
		p, err := kaffpa.Partition(g, kc)
		if err != nil {
			panic("evo: " + err.Error())
		}
		pop = append(pop, evaluate(g, p, cfg))
	}

	bestIdx := func() int {
		b := 0
		for i := 1; i < len(pop); i++ {
			if better(pop[i], pop[b]) {
				b = i
			}
		}
		return b
	}
	worstIdx := func() int {
		w := 0
		for i := 1; i < len(pop); i++ {
			if better(pop[w], pop[i]) {
				w = i
			}
		}
		return w
	}
	insert := func(ind individual) {
		w := worstIdx()
		if better(ind, pop[w]) {
			pop[w] = ind
		}
	}

	start := time.Now() //lint:determinism-ok wall-clock search budget is part of the Evolve contract
	step := 0
	for {
		if ctx.Err() != nil {
			break // deadline/cancel: select among what we have
		}
		if cfg.TimeBudget > 0 {
			if time.Since(start) >= cfg.TimeBudget { //lint:determinism-ok wall-clock search budget is part of the Evolve contract; selection stays collective
				break
			}
		} else if step >= cfg.Rounds {
			break
		}
		step++

		// Pick up migrants pushed by peers.
		for {
			_, data, ok := c.TryRecvAny(migrantTag)
			if !ok {
				break
			}
			insert(evaluate(g, fromWire(data), cfg))
		}

		if c.Size() > 1 && cfg.MigrateEvery > 0 && step%cfg.MigrateEvery == 0 {
			// Randomized rumor spreading: best individual to a random peer.
			dst := r.Intn(c.Size() - 1)
			if dst >= c.Rank() {
				dst++
			}
			c.Send(dst, migrantTag, toWire(pop[bestIdx()].p))
		}

		if r.Float64() < cfg.MutationProb {
			kc := base
			kc.Seed = r.Uint64()
			p, _ := kaffpa.Partition(g, kc)
			insert(evaluate(g, p, cfg))
			continue
		}

		// Combine two distinct parents.
		i := r.Intn(len(pop))
		j := r.Intn(len(pop) - 1)
		if j >= i {
			j++
		}
		p1, p2 := pop[i], pop[j]
		parent := p1
		if better(p2, p1) {
			parent = p2
		}
		kc := base
		kc.Seed = r.Uint64()
		kc.Constraint = kaffpa.CompositeConstraint(p1.p, p2.p, cfg.K)
		kc.InitialPartition = parent.p
		child, err := kaffpa.Partition(g, kc)
		if err != nil {
			panic("evo: " + err.Error())
		}
		insert(evaluate(g, child, cfg))
	}

	// Drain any remaining migrants, then choose the global winner.
	c.Barrier()
	for {
		_, data, ok := c.TryRecvAny(migrantTag)
		if !ok {
			break
		}
		insert(evaluate(g, fromWire(data), cfg))
	}
	best := pop[bestIdx()]
	// Rank the local champions: (infeasible flag, primary, secondary, rank)
	// ascending — the same order better uses locally.
	scores := c.Allgatherv([]int64{boolTo64(!best.feasible), best.primary, best.secondary})
	winner := 0
	for rk := 1; rk < len(scores); rk++ {
		for f := 0; f < 3; f++ {
			if scores[rk][f] != scores[winner][f] {
				if scores[rk][f] < scores[winner][f] {
					winner = rk
				}
				break
			}
		}
	}
	var wire []int64
	if c.Rank() == winner {
		wire = toWire(best.p)
	}
	return fromWire(c.Bcast(winner, wire))
}

func toWire(p []int32) []int64 {
	out := make([]int64, len(p))
	for i, v := range p {
		out[i] = int64(v)
	}
	return out
}

func fromWire(w []int64) []int32 {
	out := make([]int32, len(w))
	for i, v := range w {
		out[i] = int32(v)
	}
	return out
}

func boolTo64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
