package evo

import (
	"context"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kaffpa"
	"repro/internal/mpi"
	"repro/internal/partition"
)

func TestEvolveSingleRank(t *testing.T) {
	g, _ := gen.PlantedPartition(800, 8, 8, 0.6, 1)
	mpi.NewWorld(1).Run(func(c *mpi.Comm) {
		cfg := DefaultConfig(4)
		cfg.Rounds = 2
		p := Evolve(context.Background(), c, g, cfg)
		if err := partition.Validate(g, p, 4); err != nil {
			t.Error(err)
		}
		if !partition.IsFeasible(g, p, 4, 0.03) {
			t.Error("evolved partition infeasible")
		}
	})
}

func TestEvolveAllRanksAgree(t *testing.T) {
	g, _ := gen.PlantedPartition(600, 6, 8, 0.6, 2)
	const P = 4
	results := make([][]int32, P)
	mpi.NewWorld(P).Run(func(c *mpi.Comm) {
		cfg := DefaultConfig(2)
		cfg.Rounds = 2
		results[c.Rank()] = Evolve(context.Background(), c, g, cfg)
	})
	for r := 1; r < P; r++ {
		for v := range results[0] {
			if results[r][v] != results[0][v] {
				t.Fatalf("ranks 0 and %d disagree at node %d", r, v)
			}
		}
	}
}

func TestEvolveBeatsSingleMultilevelRun(t *testing.T) {
	// With several independent individuals plus combines, the evolved cut
	// should be at least as good as a single multilevel run with the same
	// base seed.
	g, _ := gen.PlantedPartition(1200, 10, 8, 1.0, 3)
	k := int32(4)
	kc := kaffpa.DefaultConfig(k)
	kc.Seed = 1
	solo, err := kaffpa.Partition(g, kc)
	if err != nil {
		t.Fatal(err)
	}
	soloCut := partition.EdgeCut(g, solo)
	mpi.NewWorld(2).Run(func(c *mpi.Comm) {
		cfg := DefaultConfig(k)
		cfg.Seed = 1
		cfg.Rounds = 3
		p := Evolve(context.Background(), c, g, cfg)
		cut := partition.EdgeCut(g, p)
		if cut > soloCut*11/10 {
			t.Errorf("evolved cut %d much worse than solo run %d", cut, soloCut)
		}
	})
}

func TestEvolveWithInitialNeverWorsens(t *testing.T) {
	g, _ := gen.PlantedPartition(900, 8, 8, 0.7, 4)
	k := int32(3)
	kc := kaffpa.DefaultConfig(k)
	kc.Seed = 9
	initial, err := kaffpa.Partition(g, kc)
	if err != nil {
		t.Fatal(err)
	}
	initCut := partition.EdgeCut(g, initial)
	mpi.NewWorld(2).Run(func(c *mpi.Comm) {
		cfg := DefaultConfig(k)
		cfg.Rounds = 2
		cfg.Initial = initial
		p := Evolve(context.Background(), c, g, cfg)
		cut := partition.EdgeCut(g, p)
		if cut > initCut {
			t.Errorf("evolution worsened the injected individual: %d -> %d", initCut, cut)
		}
	})
}

func TestEvolveZeroRounds(t *testing.T) {
	// Rounds = 0 is the fast/minimal configuration: initial population
	// only; must still produce a valid global winner.
	g := gen.RGG(500, 5)
	mpi.NewWorld(3).Run(func(c *mpi.Comm) {
		cfg := DefaultConfig(2)
		cfg.Rounds = 0
		p := Evolve(context.Background(), c, g, cfg)
		if err := partition.Validate(g, p, 2); err != nil {
			t.Error(err)
		}
	})
}

func TestEvolveSmallGraph(t *testing.T) {
	g := graph.Cycle(12)
	mpi.NewWorld(2).Run(func(c *mpi.Comm) {
		cfg := DefaultConfig(2)
		cfg.Rounds = 1
		p := Evolve(context.Background(), c, g, cfg)
		if !partition.IsFeasible(g, p, 2, 0.03) {
			t.Errorf("cycle partition infeasible: %v", p)
		}
		// Optimal cut of an even cycle bipartition is 2.
		if cut := partition.EdgeCut(g, p); cut > 4 {
			t.Errorf("cycle cut %d", cut)
		}
	})
}

func TestEvolveAlternativeObjectives(t *testing.T) {
	g, _ := gen.PlantedPartition(800, 8, 8, 0.6, 5)
	k := int32(4)
	for _, obj := range []Objective{ObjectiveCommVol, ObjectiveMaxCommVol, ObjectiveMaxQuotientDegree} {
		mpi.NewWorld(2).Run(func(c *mpi.Comm) {
			cfg := DefaultConfig(k)
			cfg.Rounds = 1
			cfg.Objective = obj
			p := Evolve(context.Background(), c, g, cfg)
			if err := partition.Validate(g, p, k); err != nil {
				t.Errorf("objective %d: %v", obj, err)
			}
			if !partition.IsFeasible(g, p, k, 0.03) {
				t.Errorf("objective %d: infeasible", obj)
			}
		})
	}
}

func TestObjectiveValues(t *testing.T) {
	g := graph.Path(6)
	p := []int32{0, 0, 1, 1, 2, 2}
	if v := ObjectiveCut.value(g, p, 3); v != 2 {
		t.Fatalf("cut objective %d", v)
	}
	if v := ObjectiveCommVol.value(g, p, 3); v != 4 {
		t.Fatalf("commvol objective %d", v)
	}
	if v := ObjectiveMaxQuotientDegree.value(g, p, 3); v != 2 {
		t.Fatalf("quotient degree objective %d", v)
	}
	if v := ObjectiveMaxCommVol.value(g, p, 3); v != 2 {
		t.Fatalf("max commvol objective %d", v)
	}
}

func TestWireRoundTrip(t *testing.T) {
	p := []int32{0, 5, -1, 1 << 20}
	got := fromWire(toWire(p))
	for i := range p {
		if got[i] != p[i] {
			t.Fatalf("wire roundtrip %v -> %v", p, got)
		}
	}
}

// TestEvolveHonorsCancelledContext: with a done context and no world
// abort wired, Evolve degrades gracefully — it skips the search steps
// (here a one-minute time budget) and still returns a valid partition
// selected collectively from the minimal population.
func TestEvolveHonorsCancelledContext(t *testing.T) {
	g, _ := gen.PlantedPartition(600, 8, 8, 0.5, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	mpi.NewWorld(2).Run(func(c *mpi.Comm) {
		cfg := DefaultConfig(2)
		cfg.TimeBudget = time.Minute // would otherwise search for a minute
		p := Evolve(ctx, c, g, cfg)
		if err := partition.Validate(g, p, 2); err != nil {
			t.Error(err)
		}
	})
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("cancelled evolution still took %v", elapsed)
	}
}

// TestMigrationAwareSelection checks the repartitioning component: with a
// migration reference, objective ties go to the closer individual, and
// ObjectiveMigration makes divergence the primary fitness.
func TestMigrationAwareSelection(t *testing.T) {
	g := graph.Grid2D(4, 4)
	ref := make([]int32, 16)
	for i := range ref {
		if i%4 >= 2 {
			ref[i] = 1
		}
	}
	flipped := make([]int32, 16)
	for i := range ref {
		flipped[i] = 1 - ref[i]
	}
	cfg := Config{K: 2, Eps: 0.5, Objective: ObjectiveCut, MigrationRef: ref}
	a := evaluate(g, ref, cfg)     // zero divergence
	b := evaluate(g, flipped, cfg) // same cut, full divergence
	if a.primary != b.primary {
		t.Fatalf("test premise broken: cuts differ (%d vs %d)", a.primary, b.primary)
	}
	if !better(a, b) || better(b, a) {
		t.Error("migration tie-break did not prefer the reference-identical individual")
	}

	cfg.Objective = ObjectiveMigration
	am := evaluate(g, ref, cfg)
	bm := evaluate(g, flipped, cfg)
	if am.primary != 0 || bm.primary != 16 {
		t.Errorf("ObjectiveMigration primaries: %d and %d, want 0 and 16", am.primary, bm.primary)
	}
	if am.secondary != partition.EdgeCut(g, ref) {
		t.Errorf("ObjectiveMigration secondary = %d, want the cut", am.secondary)
	}
}
