package mpi

import "testing"

func BenchmarkSendRecv(b *testing.B) {
	w := NewWorld(2)
	payload := make([]int64, 128)
	b.ResetTimer()
	w.Run(func(c *Comm) {
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				c.Send(1, 1, payload)
			} else {
				c.Recv(0, 1)
			}
		}
	})
}

func BenchmarkBarrier8(b *testing.B) {
	w := NewWorld(8)
	b.ResetTimer()
	w.Run(func(c *Comm) {
		for i := 0; i < b.N; i++ {
			c.Barrier()
		}
	})
}

func BenchmarkAllreduce8x64(b *testing.B) {
	w := NewWorld(8)
	vals := make([]int64, 64)
	b.ResetTimer()
	w.Run(func(c *Comm) {
		for i := 0; i < b.N; i++ {
			c.AllreduceSum(vals)
		}
	})
}

func BenchmarkAlltoallv8(b *testing.B) {
	w := NewWorld(8)
	b.ResetTimer()
	w.Run(func(c *Comm) {
		out := make([][]int64, 8)
		for d := range out {
			out[d] = make([]int64, 32)
		}
		for i := 0; i < b.N; i++ {
			c.Alltoallv(out)
		}
	})
}

func BenchmarkExScan8(b *testing.B) {
	w := NewWorld(8)
	b.ResetTimer()
	w.Run(func(c *Comm) {
		for i := 0; i < b.N; i++ {
			c.ExScanSum(int64(c.Rank()))
		}
	})
}
