package mpi

import (
	"strings"
	"testing"
)

// ringTopology returns each rank's neighbors on a ring of size P (P >= 3:
// distinct predecessor and successor).
func ringTopology(rank, size int) []int {
	a := (rank + size - 1) % size
	b := (rank + 1) % size
	if a > b {
		a, b = b, a
	}
	if a == b {
		return []int{a}
	}
	return []int{a, b}
}

func TestNeighborAlltoallvRing(t *testing.T) {
	const P = 5
	w := NewWorld(P)
	w.Run(func(c *Comm) {
		topo := NewTopology(c, ringTopology(c.Rank(), P))
		out := make([][]int64, topo.Degree())
		for i, r := range topo.Neighbors() {
			out[i] = []int64{int64(c.Rank()*100 + r)}
		}
		got := map[int]int64{}
		topo.NeighborAlltoallv(out, func(i int, data []int64) {
			if len(data) != 1 {
				t.Errorf("rank %d: neighbor %d sent %d words", c.Rank(), topo.Neighbors()[i], len(data))
				return
			}
			got[topo.Neighbors()[i]] = data[0]
		})
		for _, r := range topo.Neighbors() {
			want := int64(r*100 + c.Rank())
			if got[r] != want {
				t.Errorf("rank %d: from %d got %d, want %d", c.Rank(), r, got[r], want)
			}
		}
	})
}

func TestNeighborAlltoallvSendsNothingToNonAdjacent(t *testing.T) {
	const P = 6
	w := NewWorld(P)
	w.Run(func(c *Comm) {
		topo := NewTopology(c, ringTopology(c.Rank(), P))
		out := make([][]int64, topo.Degree())
		for i := range out {
			out[i] = []int64{1, 2, 3}
		}
		for s := 0; s < 4; s++ {
			topo.NeighborAlltoallv(out, func(int, []int64) {})
		}
	})
	for src := 0; src < P; src++ {
		adjacent := map[int]bool{}
		for _, r := range ringTopology(src, P) {
			adjacent[r] = true
		}
		for dst := 0; dst < P; dst++ {
			if dst == src || adjacent[dst] {
				continue
			}
			// The topology handshake inside NewTopology is a dense exchange;
			// everything after it must stay on the ring. 1 message = the
			// handshake itself.
			if n := w.PairMessages(src, dst); n > 1 {
				t.Errorf("non-adjacent pair %d->%d saw %d messages (want only the 1 handshake)", src, dst, n)
			}
		}
	}
}

func TestNewTopologyAsymmetricPanics(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic for asymmetric topology")
		}
		if !strings.Contains(p.(string), "asymmetric") && !strings.Contains(p.(string), "poisoned") {
			t.Fatalf("unhelpful panic: %v", p)
		}
	}()
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		// Rank 0 lists 1; rank 1 lists nobody: asymmetric.
		var nbrs []int
		if c.Rank() == 0 {
			nbrs = []int{1}
		}
		NewTopology(c, nbrs)
	})
}

func TestAlltoallvFuncMatchesAlltoallv(t *testing.T) {
	const P = 4
	w := NewWorld(P)
	w.Run(func(c *Comm) {
		out := make([][]int64, P)
		for r := 0; r < P; r++ {
			for i := 0; i <= c.Rank(); i++ {
				out[r] = append(out[r], int64(c.Rank()*1000+r*10+i))
			}
		}
		want := c.Alltoallv(out)
		got := make([][]int64, P)
		c.AlltoallvFunc(out, func(src int, data []int64) {
			got[src] = append([]int64(nil), data...) // copy: data is pooled
		})
		for r := 0; r < P; r++ {
			if len(got[r]) != len(want[r]) {
				t.Fatalf("rank %d: src %d length %d vs %d", c.Rank(), r, len(got[r]), len(want[r]))
			}
			for i := range got[r] {
				if got[r][i] != want[r][i] {
					t.Fatalf("rank %d: src %d slot %d: %d vs %d", c.Rank(), r, i, got[r][i], want[r][i])
				}
			}
		}
	})
}

func TestSharderExchange(t *testing.T) {
	const P = 4
	w := NewWorld(P)
	w.Run(func(c *Comm) {
		s := NewSharder(c)
		for round := 0; round < 3; round++ {
			// Every rank sends (rank, round) to every other rank, twice.
			for dst := 0; dst < P; dst++ {
				s.Add(dst, int64(c.Rank()), int64(round))
				s.Add(dst, int64(c.Rank()), int64(round))
			}
			seen := 0
			s.Exchange(func(src int, data []int64) {
				if len(data) != 4 {
					t.Errorf("round %d: src %d sent %d words, want 4", round, src, len(data))
					return
				}
				if data[0] != int64(src) || data[1] != int64(round) {
					t.Errorf("round %d: bad payload from %d: %v", round, src, data)
				}
				seen++
			})
			if seen != P {
				t.Errorf("round %d: got %d sources, want %d", round, seen, P)
			}
			for dst := 0; dst < P; dst++ {
				if len(s.Pending(dst)) != 0 {
					t.Errorf("round %d: buffer for %d not reset", round, dst)
				}
			}
		}
	})
}

func TestStatsClassBreakdown(t *testing.T) {
	const P = 3
	w := NewWorld(P)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []int64{1, 2, 3})
		}
		if c.Rank() == 1 {
			c.Recv(0, 7)
		}
		c.AllreduceSum1(1)
		topo := NewTopology(c, ringTopology(c.Rank(), P))
		out := make([][]int64, topo.Degree())
		for i := range out {
			out[i] = []int64{9}
		}
		topo.NeighborAlltoallv(out, func(int, []int64) {})
	})
	s := w.TotalStats()
	if s.P2PMessages != 1 || s.P2PWords != 3 {
		t.Errorf("p2p: got %d msgs / %d words, want 1/3", s.P2PMessages, s.P2PWords)
	}
	if s.CollMessages == 0 {
		t.Error("collective counters did not move")
	}
	if s.NeighborExchanges != P {
		t.Errorf("neighbor exchanges: got %d, want %d", s.NeighborExchanges, P)
	}
	// Ring of 3: every rank has 2 neighbors, 1 word each.
	if s.NeighborMessages != 2*P || s.NeighborWords != 2*P {
		t.Errorf("neighbor traffic: got %d msgs / %d words, want %d/%d",
			s.NeighborMessages, s.NeighborWords, 2*P, 2*P)
	}
	if s.MessagesSent != s.P2PMessages+s.CollMessages+s.NeighborMessages {
		t.Error("MessagesSent is not the sum of the class counters")
	}
	if s.BytesSent() != s.WordsSent*8 {
		t.Error("BytesSent != 8*WordsSent")
	}
}
