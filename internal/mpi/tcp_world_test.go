package mpi

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi/transport"
	"repro/internal/testutil"
)

// tcpWorlds brings up a P-rank world over loopback TCP, one World per
// rank, as P OS processes would.
func tcpWorlds(t *testing.T, p int, cfg transport.TCPConfig) []*World {
	t.Helper()
	ts, err := transport.Loopback(p, cfg)
	if err != nil {
		t.Fatalf("Loopback: %v", err)
	}
	trs := make([]transport.Transport, p)
	for i, tr := range ts {
		trs[i] = tr
	}
	ws, err := JoinWorlds(trs...)
	if err != nil {
		t.Fatalf("JoinWorlds: %v", err)
	}
	return ws
}

func closeWorlds(ws []*World) {
	for _, w := range ws {
		w.Close()
	}
}

// TestTCPWorldCollectives runs the full collective vocabulary over a real
// networked world and checks the results every rank computes are the ones
// the in-process world produces.
func TestTCPWorldCollectives(t *testing.T) {
	base := runtime.NumGoroutine()
	const P = 3
	ws := tcpWorlds(t, P, transport.TCPConfig{})

	var mu sync.Mutex
	got := map[int][]int64{}
	RunAll(ws, func(c *Comm) {
		r := int64(c.Rank())
		sum := c.AllreduceSum1(r + 1)
		max := c.AllreduceMax1(r)
		scan := c.ExScanSum(r + 1)
		bcast := c.BcastI64(1, 77)
		c.Barrier()
		// Point-to-point ring: send to the next rank, receive from the
		// previous one.
		c.Send((c.Rank()+1)%P, 5, []int64{r * 10})
		ring := c.Recv((c.Rank()+P-1)%P, 5)[0]
		// Sparse all-to-all with every pair populated.
		out := make([][]int64, P)
		for d := 0; d < P; d++ {
			out[d] = []int64{r*100 + int64(d)}
		}
		in := c.Alltoallv(out)
		var diag int64
		for s := range in {
			diag += in[s][0]
		}
		mu.Lock()
		got[c.Rank()] = []int64{sum, max, scan, bcast, ring, diag}
		mu.Unlock()
	})
	for _, w := range ws {
		if err := w.Err(); err != nil {
			t.Fatalf("world error: %v", err)
		}
	}
	closeWorlds(ws)

	// The same program on the in-process world is the oracle.
	want := map[int][]int64{}
	NewWorld(P).Run(func(c *Comm) {
		r := int64(c.Rank())
		sum := c.AllreduceSum1(r + 1)
		max := c.AllreduceMax1(r)
		scan := c.ExScanSum(r + 1)
		bcast := c.BcastI64(1, 77)
		c.Barrier()
		c.Send((c.Rank()+1)%P, 5, []int64{r * 10})
		ring := c.Recv((c.Rank()+P-1)%P, 5)[0]
		out := make([][]int64, P)
		for d := 0; d < P; d++ {
			out[d] = []int64{r*100 + int64(d)}
		}
		in := c.Alltoallv(out)
		var diag int64
		for s := range in {
			diag += in[s][0]
		}
		mu.Lock()
		want[c.Rank()] = []int64{sum, max, scan, bcast, ring, diag}
		mu.Unlock()
	})
	for r := 0; r < P; r++ {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("rank %d: got %v want %v", r, got[r], want[r])
		}
		for i := range want[r] {
			if got[r][i] != want[r][i] {
				t.Errorf("rank %d result %d: tcp=%d inproc=%d", r, i, got[r][i], want[r][i])
			}
		}
	}
	testutil.WaitNoLeak(t, base, 2)
}

// TestTCPWorldSeverAbortsAllRanks is the acceptance-criteria failure
// drill: severing one rank's connectivity mid-run must abort every rank
// within the heartbeat timeout, leaking no goroutines.
func TestTCPWorldSeverAbortsAllRanks(t *testing.T) {
	base := runtime.NumGoroutine()
	const P = 3
	cfg := transport.TCPConfig{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  300 * time.Millisecond,
		ReconnectBackoff:  10 * time.Millisecond,
	}
	ts, err := transport.Loopback(P, cfg)
	if err != nil {
		t.Fatalf("Loopback: %v", err)
	}
	trs := make([]transport.Transport, P)
	for i, tr := range ts {
		trs[i] = tr
	}
	ws, err := JoinWorlds(trs...)
	if err != nil {
		t.Fatalf("JoinWorlds: %v", err)
	}

	start := time.Now()
	RunAll(ws, func(c *Comm) {
		// Superstep 0 completes everywhere; then rank 0's process loses
		// rank 1 and every rank must unwind instead of hanging in the
		// barrier loop.
		c.Barrier()
		if c.Rank() == 0 {
			ts[0].Sever(1)
		}
		for i := 0; i < 1000; i++ {
			c.Barrier()
			c.CheckAbort()
		}
	})
	elapsed := time.Since(start)

	aborted := 0
	for r, w := range ws {
		if w.Aborted() {
			aborted++
		}
		// Every world unwinds only through its own abort, which on this
		// program is always transport-initiated — so Err must be set
		// everywhere (rank 2 learns via abort gossip or rank 1's silence).
		if err := w.Err(); err == nil {
			t.Errorf("world %d: no transport error after sever", r)
		}
	}
	if aborted != P {
		t.Errorf("%d of %d worlds aborted after sever", aborted, P)
	}
	// The abort must land within a few heartbeat timeouts, not after the
	// write deadline or a hang.
	if elapsed > 10*cfg.HeartbeatTimeout {
		t.Errorf("world-wide abort took %v; want within a few multiples of the %v heartbeat timeout",
			elapsed, cfg.HeartbeatTimeout)
	}
	closeWorlds(ws)
	testutil.WaitNoLeak(t, base, 2)
}

// TestTCPWorldRemoteAbort checks the cooperative abort (context
// cancellation path) crosses process boundaries: one world aborting takes
// the others with it, reported as ErrPeerAborted.
func TestTCPWorldRemoteAbort(t *testing.T) {
	base := runtime.NumGoroutine()
	const P = 2
	ws := tcpWorlds(t, P, transport.TCPConfig{})
	RunAll(ws, func(c *Comm) {
		c.Barrier()
		if c.Rank() == 0 {
			// Simulates WatchContext firing in rank 0's process only.
			ws[0].Abort()
		}
		for i := 0; i < 1000; i++ {
			c.Barrier()
			c.CheckAbort()
		}
	})
	if !ws[1].Aborted() {
		t.Error("rank 1's world did not abort after rank 0's")
	}
	if err := ws[1].Err(); !errors.Is(err, transport.ErrPeerAborted) {
		t.Errorf("rank 1 world error = %v, want ErrPeerAborted", err)
	}
	closeWorlds(ws)
	testutil.WaitNoLeak(t, base, 2)
}

// TestTCPWorldPoisonCrossesProcesses checks PoisonPeers travels as
// transport frames: a fatal error on one rank fails receivers on other
// worlds fast instead of hanging them.
func TestTCPWorldPoisonCrossesProcesses(t *testing.T) {
	const P = 2
	ws := tcpWorlds(t, P, transport.TCPConfig{})
	defer closeWorlds(ws)
	panics := make([]any, P)
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w *World) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			w.Run(func(c *Comm) {
				if c.Rank() == 0 {
					c.PoisonPeers()
					return
				}
				c.Recv(0, 99) // never sent: must fail via poison, not hang
			})
		}(i, w)
	}
	wg.Wait()
	if panics[1] == nil {
		t.Fatal("poisoned receiver did not panic")
	}
}

// TestTCPWorldStats spot-checks the transport counter plumbing at the
// world level.
func TestTCPWorldStats(t *testing.T) {
	const P = 2
	ws := tcpWorlds(t, P, transport.TCPConfig{})
	RunAll(ws, func(c *Comm) {
		c.Barrier()
		if c.TransportStats().FramesSent == 0 {
			t.Errorf("rank %d: zero transport frames after a barrier", c.Rank())
		}
	})
	ts := ws[0].TransportStats()
	if ts.FramesSent == 0 || ts.BytesSent == 0 {
		t.Errorf("world 0 transport stats empty: %+v", ts)
	}
	closeWorlds(ws)
}
