package mpi

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestAbortWakesBlockedReceiver: a rank blocked in Recv with no sender must
// unwind when the world is aborted, and Run must return without re-raising.
func TestAbortWakesBlockedReceiver(t *testing.T) {
	base := runtime.NumGoroutine()
	w := NewWorld(2)
	var rank0Done atomic.Bool
	go func() {
		time.Sleep(20 * time.Millisecond)
		w.Abort()
	}()
	w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			c.Recv(0, 7) // nobody ever sends: only Abort can free this rank
			t.Error("Recv returned on an aborted world")
			return
		}
		rank0Done.Store(true)
	})
	if !w.Aborted() {
		t.Fatal("world not marked aborted")
	}
	if !rank0Done.Load() {
		t.Fatal("unblocked rank did not finish")
	}
	testutil.WaitNoLeak(t, base, 2)
}

// TestAbortUnwindsCollective: ranks stuck in a collective (barrier missing
// one participant) all unwind on abort.
func TestAbortUnwindsCollective(t *testing.T) {
	w := NewWorld(4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(func(c *Comm) {
			if c.Rank() == 3 {
				// Rank 3 aborts instead of entering the barrier, stranding
				// the other three.
				time.Sleep(10 * time.Millisecond)
				w.Abort()
				return
			}
			c.Barrier()
			t.Error("barrier completed with a missing rank")
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("aborted world never unwound")
	}
}

// TestCheckAbortUnwinds: a computing rank that polls CheckAbort unwinds
// without touching any mailbox.
func TestCheckAbortUnwinds(t *testing.T) {
	w := NewWorld(1)
	w.Abort()
	reached := false
	w.Run(func(c *Comm) {
		if !c.Aborted() {
			t.Error("Aborted() false after Abort")
		}
		c.CheckAbort()
		reached = true
	})
	if reached {
		t.Fatal("CheckAbort did not unwind on an aborted world")
	}
}

// TestWatchContextAbortsOnCancel: cancelling the watched context aborts the
// world; stop() releases the watcher without leaking it.
func TestWatchContextAbortsOnCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	w := NewWorld(2)
	stop := w.WatchContext(ctx)
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Recv(1, 3) // freed only by the context watcher
			t.Error("Recv survived context cancellation")
		}
	})
	stop()
	if !w.Aborted() {
		t.Fatal("cancelled context did not abort the world")
	}
	testutil.WaitNoLeak(t, base, 2)
}

// TestWatchContextStopReleasesWatcher: stopping the watch before any
// cancellation leaves the world un-aborted and leaks nothing.
func TestWatchContextStopReleasesWatcher(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := NewWorld(1)
	stop := w.WatchContext(ctx)
	w.Run(func(c *Comm) { c.Barrier() })
	stop()
	if w.Aborted() {
		t.Fatal("world aborted without cancellation")
	}
	cancel() // after stop: must not abort
	time.Sleep(10 * time.Millisecond)
	if w.Aborted() {
		t.Fatal("stopped watcher still aborted the world")
	}
	testutil.WaitNoLeak(t, base, 1)
}

// TestAbortIdempotent: repeated aborts are safe.
func TestAbortIdempotent(t *testing.T) {
	w := NewWorld(2)
	w.Abort()
	w.Abort()
	w.Run(func(c *Comm) { c.CheckAbort() })
	if !w.Aborted() {
		t.Fatal("not aborted")
	}
}
