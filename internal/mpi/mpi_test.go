package mpi

import (
	"sync/atomic"
	"testing"
)

func TestSendRecv(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 42, []int64{1, 2, 3})
		} else {
			got := c.Recv(0, 42)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("recv got %v", got)
			}
		}
	})
}

func TestSendCopiesPayload(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []int64{9}
			c.Send(1, 1, buf)
			buf[0] = 0 // must not affect the receiver
			c.Send(1, 2, nil)
		} else {
			if got := c.Recv(0, 1); got[0] != 9 {
				t.Errorf("payload mutated after send: %v", got)
			}
			c.Recv(0, 2)
		}
	})
}

func TestTagMatching(t *testing.T) {
	// Messages with different tags can be received out of send order.
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []int64{10})
			c.Send(1, 2, []int64{20})
		} else {
			if got := c.Recv(0, 2); got[0] != 20 {
				t.Errorf("tag 2 got %v", got)
			}
			if got := c.Recv(0, 1); got[0] != 10 {
				t.Errorf("tag 1 got %v", got)
			}
		}
	})
}

func TestFIFOPerPair(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := int64(0); i < 100; i++ {
				c.Send(1, 7, []int64{i})
			}
		} else {
			for i := int64(0); i < 100; i++ {
				if got := c.Recv(0, 7)[0]; got != i {
					t.Errorf("message %d arrived as %d", i, got)
					return
				}
			}
		}
	})
}

func TestBarrier(t *testing.T) {
	const P = 8
	w := NewWorld(P)
	var phase atomic.Int64
	w.Run(func(c *Comm) {
		phase.Add(1)
		c.Barrier()
		if got := phase.Load(); got != P {
			t.Errorf("rank %d passed barrier with phase=%d", c.Rank(), got)
		}
		c.Barrier()
	})
}

func TestBcast(t *testing.T) {
	w := NewWorld(5)
	w.Run(func(c *Comm) {
		var data []int64
		if c.Rank() == 2 {
			data = []int64{5, 6, 7}
		}
		got := c.Bcast(2, data)
		if len(got) != 3 || got[0] != 5 || got[2] != 7 {
			t.Errorf("rank %d bcast got %v", c.Rank(), got)
		}
	})
}

func TestGather(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		out := c.Gather(0, []int64{int64(c.Rank() * 10)})
		if c.Rank() == 0 {
			for r := 0; r < 4; r++ {
				if out[r][0] != int64(r*10) {
					t.Errorf("gather slot %d = %v", r, out[r])
				}
			}
		} else if out != nil {
			t.Errorf("non-root rank %d got non-nil gather", c.Rank())
		}
	})
}

func TestAllgatherv(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		// Variable lengths: rank r contributes r+1 values.
		data := make([]int64, c.Rank()+1)
		for i := range data {
			data[i] = int64(c.Rank())
		}
		out := c.Allgatherv(data)
		if len(out) != 4 {
			t.Errorf("allgatherv %d parts", len(out))
			return
		}
		for r := 0; r < 4; r++ {
			if len(out[r]) != r+1 {
				t.Errorf("part %d has len %d", r, len(out[r]))
			}
			for _, v := range out[r] {
				if v != int64(r) {
					t.Errorf("part %d contains %d", r, v)
				}
			}
		}
	})
}

func TestAllreduceSum(t *testing.T) {
	const P = 6
	w := NewWorld(P)
	w.Run(func(c *Comm) {
		got := c.AllreduceSum([]int64{1, int64(c.Rank())})
		if got[0] != P {
			t.Errorf("sum of ones = %d", got[0])
		}
		if got[1] != P*(P-1)/2 {
			t.Errorf("sum of ranks = %d", got[1])
		}
	})
}

func TestAllreduceMaxMin(t *testing.T) {
	const P = 5
	w := NewWorld(P)
	w.Run(func(c *Comm) {
		if got := c.AllreduceMax1(int64(c.Rank())); got != P-1 {
			t.Errorf("max = %d", got)
		}
		if got := c.AllreduceMin1(int64(c.Rank())); got != 0 {
			t.Errorf("min = %d", got)
		}
	})
}

func TestExScanSum(t *testing.T) {
	const P = 7
	w := NewWorld(P)
	w.Run(func(c *Comm) {
		// Rank r contributes r+1; exclusive prefix at rank r is sum_{i<r}(i+1).
		got := c.ExScanSum(int64(c.Rank() + 1))
		want := int64(c.Rank() * (c.Rank() + 1) / 2)
		if got != want {
			t.Errorf("rank %d exscan = %d, want %d", c.Rank(), got, want)
		}
	})
}

func TestAlltoallv(t *testing.T) {
	const P = 4
	w := NewWorld(P)
	w.Run(func(c *Comm) {
		out := make([][]int64, P)
		for d := 0; d < P; d++ {
			out[d] = []int64{int64(c.Rank()*100 + d)}
		}
		in := c.Alltoallv(out)
		for s := 0; s < P; s++ {
			want := int64(s*100 + c.Rank())
			if len(in[s]) != 1 || in[s][0] != want {
				t.Errorf("rank %d from %d got %v, want [%d]", c.Rank(), s, in[s], want)
			}
		}
	})
}

func TestAlltoallvEmptyBuffers(t *testing.T) {
	const P = 3
	w := NewWorld(P)
	w.Run(func(c *Comm) {
		out := make([][]int64, P) // all nil
		in := c.Alltoallv(out)
		for s := 0; s < P; s++ {
			if len(in[s]) != 0 {
				t.Errorf("expected empty, got %v", in[s])
			}
		}
	})
}

func TestCollectiveSequenceIndependence(t *testing.T) {
	// Multiple collectives in a row must not cross-contaminate.
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		for round := int64(0); round < 20; round++ {
			s := c.AllreduceSum1(round)
			if s != round*4 {
				t.Errorf("round %d: sum %d", round, s)
				return
			}
			c.Barrier()
			b := c.BcastI64(int(round)%4, round*7)
			if b != round*7 {
				t.Errorf("round %d: bcast %d", round, b)
				return
			}
		}
	})
}

func TestStatsCounting(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []int64{1, 2, 3, 4})
		} else {
			c.Recv(0, 1)
		}
	})
	s := w.TotalStats()
	if s.MessagesSent != 1 || s.WordsSent != 4 {
		t.Fatalf("stats %+v", s)
	}
}

func TestWorldSizeOne(t *testing.T) {
	w := NewWorld(1)
	w.Run(func(c *Comm) {
		c.Barrier()
		if got := c.AllreduceSum1(5); got != 5 {
			t.Errorf("allreduce on single rank = %d", got)
		}
		if got := c.ExScanSum(9); got != 0 {
			t.Errorf("exscan on single rank = %d", got)
		}
		in := c.Alltoallv([][]int64{{1, 2}})
		if len(in[0]) != 2 {
			t.Errorf("self alltoall %v", in)
		}
		parts := c.Allgatherv([]int64{3})
		if len(parts) != 1 || parts[0][0] != 3 {
			t.Errorf("allgatherv %v", parts)
		}
	})
}

func TestNewWorldPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWorld(0)
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate from rank")
		}
	}()
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
}

func TestManyRanksStress(t *testing.T) {
	const P = 16
	w := NewWorld(P)
	w.Run(func(c *Comm) {
		// Ring exchange: send to the right, receive from the left, P times.
		token := int64(c.Rank())
		for i := 0; i < P; i++ {
			c.Send((c.Rank()+1)%P, 3, []int64{token})
			token = c.Recv((c.Rank()+P-1)%P, 3)[0]
		}
		// After P hops, each rank has its own token back.
		if token != int64(c.Rank()) {
			t.Errorf("rank %d ended with token %d", c.Rank(), token)
		}
	})
}
