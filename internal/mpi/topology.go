package mpi

import (
	"fmt"
	"sort"
)

// Topology is a fixed sparse communication graph over the world's ranks,
// the analogue of an MPI distributed graph communicator
// (MPI_Dist_graph_create_adjacent). It is created collectively with
// NewTopology and then supports neighborhood collectives that exchange data
// with the adjacent ranks only — a rank with few neighbors sends few
// messages, no matter how large the world is.
//
// Like every collective here, neighborhood exchanges rely on SPMD
// discipline: all ranks of the world must call NeighborAlltoallv the same
// number of times in the same order (ranks with zero neighbors included;
// for them the call is free).
type Topology struct {
	c    *Comm
	nbrs []int
}

// NewTopology creates a topology whose local neighborhood is the given rank
// list. neighbors must be strictly ascending, within the world, and must
// not contain the calling rank. The neighbor relation must be symmetric
// (rank a lists b iff b lists a); NewTopology verifies this with one dense
// exchange — construction is per level, not per superstep, so the cost is
// paid once — and poisons the world on violation. Collective.
//
//parhip:collective
func NewTopology(c *Comm, neighbors []int) *Topology {
	for i, r := range neighbors {
		if r < 0 || r >= c.Size() {
			panic(fmt.Sprintf("mpi: topology neighbor %d outside world of size %d", r, c.Size()))
		}
		if r == c.Rank() {
			panic(fmt.Sprintf("mpi: rank %d listed itself as a topology neighbor", r))
		}
		if i > 0 && neighbors[i-1] >= r {
			panic(fmt.Sprintf("mpi: topology neighbors not strictly ascending at index %d", i))
		}
	}
	t := &Topology{c: c, nbrs: append([]int(nil), neighbors...)}

	// Symmetry check: every rank tells every other rank whether it considers
	// it a neighbor; both sides must agree or neighborhood exchanges would
	// leave one side blocked forever. One dense all-to-all at construction
	// buys a loud, immediate failure instead.
	out := make([][]int64, c.Size())
	for _, r := range t.nbrs {
		out[r] = []int64{1}
	}
	in := c.Alltoallv(out)
	for r := 0; r < c.Size(); r++ {
		if r == c.Rank() {
			continue
		}
		theirs := len(in[r]) > 0
		mine := t.hasNeighbor(r)
		if theirs != mine {
			c.PoisonPeers()
			panic(fmt.Sprintf("mpi: asymmetric topology: rank %d lists %d as neighbor=%v, reverse=%v",
				c.Rank(), r, mine, theirs))
		}
	}
	return t
}

func (t *Topology) hasNeighbor(r int) bool {
	i := sort.SearchInts(t.nbrs, r)
	return i < len(t.nbrs) && t.nbrs[i] == r
}

// Comm returns the rank endpoint the topology was built on.
func (t *Topology) Comm() *Comm { return t.c }

// Degree returns the number of adjacent ranks.
func (t *Topology) Degree() int { return len(t.nbrs) }

// Neighbors returns the adjacent ranks in ascending order. The slice must
// not be modified.
func (t *Topology) Neighbors() []int { return t.nbrs }

// NeighborAlltoallv sends out[i] to the i-th neighbor (out is parallel to
// Neighbors; nil entries send an empty message) and invokes recv once per
// neighbor, in neighbor order, with the payload received from it. Data is
// exchanged with adjacent ranks only — no message ever reaches a
// non-adjacent rank. The data slice passed to recv is only valid during the
// callback; it is recycled through the world's buffer pool afterwards, so
// the steady path allocates no receive buffers. Collective over the whole
// world (SPMD order), but a synchronization point only between neighbors.
func (t *Topology) NeighborAlltoallv(out [][]int64, recv func(i int, data []int64)) {
	c := t.c
	if len(out) != len(t.nbrs) {
		panic(fmt.Sprintf("mpi: NeighborAlltoallv with %d buffers for %d neighbors",
			len(out), len(t.nbrs)))
	}
	sp := c.world.tracer.Begin(c.rank, "mpi.neighbor_alltoallv")
	tag := c.nextSeq()
	c.world.counters[c.rank].nbrExch.Add(1)
	var words int64
	for i, r := range t.nbrs {
		words += int64(len(out[i]))
		c.sendClass(r, kindCollective, tag, out[i], classNbr)
	}
	for i, r := range t.nbrs {
		data := c.recv(r, kindCollective, tag)
		recv(i, data)
		c.world.putBuf(data)
	}
	c.world.tracer.End2(sp, "words_sent", words, "msgs", int64(len(t.nbrs)))
}

// Sharder groups values by destination rank and exchanges them in one dense
// all-to-all, replacing the hand-rolled
//
//	out := make([][]int64, size); out[dst] = append(out[dst], ...)
//
// pattern. The per-destination buffers live in the Sharder and are reused
// across Exchange calls (capacity is retained), so repeated exchanges
// allocate nothing once warm. A Sharder belongs to one rank's Comm and is
// not safe for concurrent use.
type Sharder struct {
	c   *Comm
	out [][]int64
}

// NewSharder returns an empty sharder over c's world.
func NewSharder(c *Comm) *Sharder {
	return &Sharder{c: c, out: make([][]int64, c.Size())}
}

// Add appends vals to the buffer destined for rank dst.
func (s *Sharder) Add(dst int, vals ...int64) {
	s.out[dst] = append(s.out[dst], vals...)
}

// Pending returns the values currently staged for rank dst (aliases the
// internal buffer; valid until the next Exchange).
func (s *Sharder) Pending(dst int) []int64 { return s.out[dst] }

// Exchange performs the all-to-all (see AlltoallvFunc for the callback
// contract) and resets the staged buffers for reuse. Collective.
//
//parhip:collective
func (s *Sharder) Exchange(recv func(src int, data []int64)) {
	s.c.AlltoallvFunc(s.out, recv)
	for i := range s.out {
		s.out[i] = s.out[i][:0]
	}
}
