package mpi

import (
	"strings"
	"testing"
)

// Failure-injection tests: misuse of the substrate must fail loudly and
// with a diagnosable message, not hang or corrupt state.

func TestSendOutOfRangePanics(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic for out-of-range destination")
		}
		if !strings.Contains(p.(string), "rank 5") {
			t.Fatalf("unhelpful panic: %v", p)
		}
	}()
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(5, 1, nil)
		}
	})
}

func TestRecvOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range source")
		}
	}()
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Recv(-1, 1)
		}
	})
}

func TestAllreduceLengthMismatchPanics(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic for mismatched allreduce lengths")
		}
		if !strings.Contains(p.(string), "length mismatch") {
			t.Fatalf("unhelpful panic: %v", p)
		}
	}()
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		vals := make([]int64, 1+c.Rank()) // rank 0: len 1, rank 1: len 2
		c.AllreduceSum(vals)
	})
}

func TestAlltoallvWrongBufferCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong Alltoallv buffer count")
		}
	}()
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Alltoallv(make([][]int64, 2)) // 2 buffers for 3 ranks
		} else {
			// Other ranks do nothing: rank 0 panics before sending, so no
			// receive can hang.
			_ = c
		}
	})
}

func TestPanicIdentifiesRank(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected propagated panic")
		}
		if !strings.Contains(p.(string), "rank 1") {
			t.Fatalf("panic does not name the failing rank: %v", p)
		}
	}()
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("injected fault")
		}
	})
}

func TestPoisonUnblocksReceiver(t *testing.T) {
	// A rank blocked in Recv must panic (not hang) when a peer poisons the
	// world before dying.
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected propagated panic")
		}
	}()
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.PoisonPeers()
			panic("rank 0 dies")
		}
		c.Recv(0, 99) // would block forever without the poison
	})
}

func TestTryRecvDoesNotBlock(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if _, ok := c.TryRecv((c.Rank()+1)%2, 42); ok {
			t.Error("TryRecv found a message that was never sent")
		}
		if _, _, ok := c.TryRecvAny(42); ok {
			t.Error("TryRecvAny found a message that was never sent")
		}
	})
}
