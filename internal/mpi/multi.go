package mpi

import (
	"fmt"
	"sync"

	"repro/internal/mpi/transport"
)

// JoinWorlds creates one World per transport, starting all of them
// concurrently. Networked transports need this: their bootstrap
// handshakes complete only when every side is starting, so sequential
// NewWorldOn calls would deadlock. Production clusters get the
// concurrency for free (one process per world); in-process tests over
// transport.Loopback use JoinWorlds. On any failure the already-started
// worlds are closed and the first error returned.
func JoinWorlds(trs ...transport.Transport) ([]*World, error) {
	ws := make([]*World, len(trs))
	errs := make([]error, len(trs))
	var wg sync.WaitGroup
	for i, tr := range trs {
		wg.Add(1)
		go func(i int, tr transport.Transport) {
			defer wg.Done()
			ws[i], errs[i] = NewWorldOn(tr)
		}(i, tr)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			continue
		}
		for _, w := range ws {
			if w != nil {
				w.Close()
			}
		}
		return nil, fmt.Errorf("mpi: world %d: %w", i, err)
	}
	return ws, nil
}

// RunAll executes fn as one SPMD program spanning several worlds (each
// hosting a disjoint subset of the same logical world's ranks), running
// every world's Run concurrently and joining them all. The first rank
// panic is re-raised after every world has finished, like World.Run.
// Tests use it with JoinWorlds to exercise a real networked world inside
// one process.
func RunAll(ws []*World, fn func(c *Comm)) {
	panics := make([]any, len(ws))
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w *World) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[i] = p
				}
			}()
			w.Run(fn)
		}(i, w)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}
