package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// Wire protocol of the TCP backend.
//
// Each rank pair shares one persistent full-duplex connection, established
// by the higher rank dialing the lower one (so rank 0 — the natural
// rendezvous point — only accepts). A connection starts with a fixed-size
// preamble from the dialer and an ack from the acceptor; after that both
// directions carry a stream of frames:
//
//	preamble (40 B): magic | version | world size | src rank | dst rank | recvCount
//	ack      (24 B): magic | recvCount | status
//	frame  (16 B + payload): words | kind | op | tag | seq-less payload of words×8 B
//
// recvCount is the number of DATA frames the sender of the preamble/ack
// has delivered from its peer so far; on a reconnect both sides compare it
// against their own sent count to detect frames lost in flight (§ tcp.go,
// resume arithmetic). Control frames (heartbeat, abort) are never counted:
// their number is scheduling-dependent, data-frame counts are not.
//
// All integers are little-endian. Payload words are int64.

const (
	wireMagic   uint64 = 0x50484950_54435031 // "PHIPTCP1"
	wireVersion uint32 = 1

	preambleLen = 40
	ackLen      = 24
	headerLen   = 16

	// maxFrameWords bounds a frame payload (2 GiB) so a corrupt length
	// prefix cannot OOM the receiver.
	maxFrameWords = 1 << 28
)

// Frame ops: what the 16-byte header announces.
const (
	opData      uint8 = 0 // payload frame for the rank layer
	opHeartbeat uint8 = 1 // liveness beacon, empty payload
	opAbort     uint8 = 2 // cooperative world abort propagation
)

// Ack status codes.
const (
	ackOK          uint32 = 0
	ackBadVersion  uint32 = 1
	ackBadSize     uint32 = 2
	ackBadRank     uint32 = 3
	ackLostFrames  uint32 = 4
	ackSevered     uint32 = 5
	ackShuttingRun uint32 = 6
)

func ackStatusString(s uint32) string {
	switch s {
	case ackOK:
		return "ok"
	case ackBadVersion:
		return "protocol version mismatch"
	case ackBadSize:
		return "world size mismatch"
	case ackBadRank:
		return "unexpected rank"
	case ackLostFrames:
		return "frames lost across reconnect"
	case ackSevered:
		return "link severed (fault injection)"
	case ackShuttingRun:
		return "peer shutting down"
	default:
		return fmt.Sprintf("status %d", s)
	}
}

// preamble is the dialer's connection opener.
type preamble struct {
	version   uint32
	worldSize uint32
	src, dst  uint32
	recvCount uint64
}

func writePreamble(conn net.Conn, p preamble) error {
	var buf [preambleLen]byte
	binary.LittleEndian.PutUint64(buf[0:], wireMagic)
	binary.LittleEndian.PutUint32(buf[8:], p.version)
	binary.LittleEndian.PutUint32(buf[12:], p.worldSize)
	binary.LittleEndian.PutUint32(buf[16:], p.src)
	binary.LittleEndian.PutUint32(buf[20:], p.dst)
	binary.LittleEndian.PutUint64(buf[24:], p.recvCount)
	// buf[32:40] reserved, zero.
	_, err := conn.Write(buf[:])
	return err
}

func readPreamble(conn net.Conn) (preamble, error) {
	var buf [preambleLen]byte
	if _, err := io.ReadFull(conn, buf[:]); err != nil {
		return preamble{}, err
	}
	if m := binary.LittleEndian.Uint64(buf[0:]); m != wireMagic {
		return preamble{}, fmt.Errorf("transport: bad preamble magic %#x", m)
	}
	return preamble{
		version:   binary.LittleEndian.Uint32(buf[8:]),
		worldSize: binary.LittleEndian.Uint32(buf[12:]),
		src:       binary.LittleEndian.Uint32(buf[16:]),
		dst:       binary.LittleEndian.Uint32(buf[20:]),
		recvCount: binary.LittleEndian.Uint64(buf[24:]),
	}, nil
}

func writeAck(conn net.Conn, recvCount uint64, status uint32) error {
	var buf [ackLen]byte
	binary.LittleEndian.PutUint64(buf[0:], wireMagic)
	binary.LittleEndian.PutUint64(buf[8:], recvCount)
	binary.LittleEndian.PutUint32(buf[16:], status)
	_, err := conn.Write(buf[:])
	return err
}

func readAck(conn net.Conn) (recvCount uint64, status uint32, err error) {
	var buf [ackLen]byte
	if _, err = io.ReadFull(conn, buf[:]); err != nil {
		return 0, 0, err
	}
	if m := binary.LittleEndian.Uint64(buf[0:]); m != wireMagic {
		return 0, 0, fmt.Errorf("transport: bad ack magic %#x", m)
	}
	return binary.LittleEndian.Uint64(buf[8:]), binary.LittleEndian.Uint32(buf[16:]), nil
}

// appendFrame encodes a frame header + payload into buf (reused across
// calls; grown as needed) and returns the encoded bytes.
func appendFrame(buf []byte, kind, op uint8, tag int32, payload []int64) []byte {
	need := headerLen + 8*len(payload)
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
	buf[4] = kind
	buf[5] = op
	buf[6], buf[7] = 0, 0 // reserved
	binary.LittleEndian.PutUint32(buf[8:], uint32(tag))
	binary.LittleEndian.PutUint32(buf[12:], 0) // reserved
	out := buf[headerLen:]
	for i, v := range payload {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(v))
	}
	return buf
}

// wireFrame is a decoded inbound frame before rank attribution.
type wireFrame struct {
	kind, op uint8
	tag      int32
	payload  []int64 // from Handlers.Acquire; nil for empty payloads
}

// readFrame reads one frame. rbuf is the reusable byte staging buffer
// (returned possibly grown); the payload slice comes from acquire.
func readFrame(conn net.Conn, rbuf []byte, acquire func(n int) []int64) (wireFrame, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return wireFrame{}, rbuf, err
	}
	words := binary.LittleEndian.Uint32(hdr[0:])
	if words > maxFrameWords {
		return wireFrame{}, rbuf, fmt.Errorf("transport: frame of %d words exceeds the %d-word bound", words, maxFrameWords)
	}
	f := wireFrame{
		kind: hdr[4],
		op:   hdr[5],
		tag:  int32(binary.LittleEndian.Uint32(hdr[8:])),
	}
	n := int(words)
	if n == 0 {
		return f, rbuf, nil
	}
	if acquire == nil {
		acquire = func(n int) []int64 { return make([]int64, n) }
	}
	if cap(rbuf) < 8*n {
		rbuf = make([]byte, 8*n)
	}
	rbuf = rbuf[:8*n]
	if _, err := io.ReadFull(conn, rbuf); err != nil {
		return wireFrame{}, rbuf, err
	}
	f.payload = acquire(n)
	for i := range f.payload {
		f.payload[i] = int64(binary.LittleEndian.Uint64(rbuf[8*i:]))
	}
	return f, rbuf, nil
}
