package transport

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
)

// collector is a Handlers sink recording deliveries and peer failures.
type collector struct {
	mu     sync.Mutex
	frames []Frame
	downs  []error
	downc  chan struct{}
}

func newCollector() *collector { return &collector{downc: make(chan struct{}, 16)} }

func (c *collector) handlers() Handlers {
	return Handlers{
		Deliver: func(f Frame) {
			c.mu.Lock()
			c.frames = append(c.frames, f)
			c.mu.Unlock()
		},
		Down: func(rank int, err error) {
			c.mu.Lock()
			c.downs = append(c.downs, fmt.Errorf("rank %d: %w", rank, err))
			c.mu.Unlock()
			c.downc <- struct{}{}
		},
	}
}

func (c *collector) frameCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func (c *collector) firstDown() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.downs) == 0 {
		return nil
	}
	return c.downs[0]
}

// waitFrames polls until the collector has at least n frames.
func (c *collector) waitFrames(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.frameCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d frames (have %d)", n, c.frameCount())
		}
		time.Sleep(time.Millisecond)
	}
}

// startMesh brings up an n-rank loopback mesh with one collector per rank.
func startMesh(t *testing.T, n int, cfg TCPConfig) ([]*TCP, []*collector) {
	t.Helper()
	ts, err := Loopback(n, cfg)
	if err != nil {
		t.Fatalf("Loopback: %v", err)
	}
	cols := make([]*collector, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, tr := range ts {
		cols[i] = newCollector()
		wg.Add(1)
		go func(i int, tr *TCP) {
			defer wg.Done()
			errs[i] = tr.Start(cols[i].handlers())
		}(i, tr)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d Start: %v", i, err)
		}
	}
	return ts, cols
}

func closeMesh(ts []*TCP) {
	for _, tr := range ts {
		tr.Close()
	}
}

func TestLoopbackMeshDelivery(t *testing.T) {
	base := runtime.NumGoroutine()
	ts, cols := startMesh(t, 3, TCPConfig{})
	for src, tr := range ts {
		for dst := 0; dst < 3; dst++ {
			if dst == src {
				continue
			}
			tr.Send(Frame{Src: src, Dst: dst, Kind: 1, Tag: int32(10*src + dst),
				Payload: []int64{int64(src), int64(dst), 42}})
		}
	}
	for rank, col := range cols {
		col.waitFrames(t, 2)
		col.mu.Lock()
		for _, f := range col.frames {
			if f.Dst != rank {
				t.Errorf("rank %d received frame for %d", rank, f.Dst)
			}
			if want := int32(10*f.Src + f.Dst); f.Tag != want {
				t.Errorf("rank %d: frame from %d has tag %d, want %d", rank, f.Src, f.Tag, want)
			}
			if len(f.Payload) != 3 || f.Payload[0] != int64(f.Src) || f.Payload[2] != 42 {
				t.Errorf("rank %d: corrupt payload %v from %d", rank, f.Payload, f.Src)
			}
		}
		col.mu.Unlock()
		if err := col.firstDown(); err != nil {
			t.Errorf("rank %d saw a spurious peer failure: %v", rank, err)
		}
	}
	s := ts[0].Stats()
	if s.FramesSent != 2 || s.FramesRecv != 2 {
		t.Errorf("rank 0 stats: sent %d recv %d, want 2/2", s.FramesSent, s.FramesRecv)
	}
	if s.BytesSent == 0 || s.BytesRecv == 0 {
		t.Errorf("rank 0 stats: zero byte counters: %+v", s)
	}
	closeMesh(ts)
	testutil.WaitNoLeak(t, base, 2)
}

func TestLargeFrameDelivery(t *testing.T) {
	ts, cols := startMesh(t, 2, TCPConfig{})
	defer closeMesh(ts)
	payload := make([]int64, 1<<16)
	for i := range payload {
		payload[i] = int64(i) * 3
	}
	ts[0].Send(Frame{Src: 0, Dst: 1, Payload: payload})
	cols[1].waitFrames(t, 1)
	cols[1].mu.Lock()
	got := cols[1].frames[0].Payload
	cols[1].mu.Unlock()
	if len(got) != len(payload) {
		t.Fatalf("payload length: got %d want %d", len(got), len(payload))
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("payload[%d]: got %d want %d", i, got[i], payload[i])
		}
	}
}

func TestSelfSendDeliversLocally(t *testing.T) {
	ts, cols := startMesh(t, 2, TCPConfig{})
	defer closeMesh(ts)
	ts[0].Send(Frame{Src: 0, Dst: 0, Payload: []int64{9}})
	cols[0].waitFrames(t, 1)
}

func TestReconnectResumesCleanly(t *testing.T) {
	base := runtime.NumGoroutine()
	ts, cols := startMesh(t, 2, TCPConfig{})
	for i := 0; i < 5; i++ {
		ts[0].Send(Frame{Src: 0, Dst: 1, Payload: []int64{int64(i)}})
		ts[1].Send(Frame{Src: 1, Dst: 0, Payload: []int64{int64(100 + i)}})
	}
	cols[0].waitFrames(t, 5)
	cols[1].waitFrames(t, 5)

	// With traffic quiesced (all 5 frames delivered each way), kill the
	// established connection out from under both sides. The dialer
	// (rank 1) must repair it; the resume handshake must find the clean
	// counts and traffic must then continue without loss or duplication.
	// (Killing the connection with writes in flight is the *unrecoverable*
	// case — frames buffered in the kernel die with the socket and the
	// handshake correctly declares the world lost.)
	p := ts[1].peers[0]
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	conn.Close()
	waitRepair := time.Now().Add(5 * time.Second)
	for ts[1].Stats().Reconnects == 0 {
		if time.Now().After(waitRepair) {
			t.Fatalf("connection never repaired (down: %v / %v)", cols[0].firstDown(), cols[1].firstDown())
		}
		time.Sleep(time.Millisecond)
	}

	for i := 5; i < 10; i++ {
		ts[0].Send(Frame{Src: 0, Dst: 1, Payload: []int64{int64(i)}})
		ts[1].Send(Frame{Src: 1, Dst: 0, Payload: []int64{int64(100 + i)}})
	}
	cols[0].waitFrames(t, 10)
	cols[1].waitFrames(t, 10)
	for _, col := range cols {
		if err := col.firstDown(); err != nil {
			t.Fatalf("peer declared down despite successful reconnect: %v", err)
		}
	}
	// Exactly 10 data frames must have arrived per side — the resume
	// arithmetic may not duplicate or drop across the reconnect.
	seen := map[int64]bool{}
	cols[1].mu.Lock()
	for _, f := range cols[1].frames {
		if seen[f.Payload[0]] {
			t.Errorf("duplicate frame %d after reconnect", f.Payload[0])
		}
		seen[f.Payload[0]] = true
	}
	cols[1].mu.Unlock()
	if ts[1].Stats().Reconnects == 0 {
		t.Error("reconnect not counted in stats")
	}
	closeMesh(ts)
	testutil.WaitNoLeak(t, base, 2)
}

func TestSeverAbortsWithinHeartbeatTimeout(t *testing.T) {
	base := runtime.NumGoroutine()
	cfg := TCPConfig{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  300 * time.Millisecond,
		ReconnectBackoff:  10 * time.Millisecond,
	}
	ts, cols := startMesh(t, 3, cfg)
	start := time.Now()
	ts[0].Sever(1)
	// Both ends of the severed link must declare the peer dead: rank 0 via
	// heartbeat silence, rank 1 via the refused reconnect (or silence).
	for _, rank := range []int{0, 1} {
		select {
		case <-cols[rank].downc:
		case <-time.After(3 * cfg.HeartbeatTimeout):
			t.Fatalf("rank %d did not declare its peer down within 3x the heartbeat timeout", rank)
		}
	}
	if elapsed := time.Since(start); elapsed > 3*cfg.HeartbeatTimeout {
		t.Errorf("abort took %v, beyond 3x the %v heartbeat timeout", elapsed, cfg.HeartbeatTimeout)
	}
	// Rank 2 is not on the severed link, but rank 1 going dead stops its
	// heartbeats to everyone, so rank 2 eventually times out on rank 1's
	// silence too — the failure gossips even without the rank layer. No
	// assertion on rank 2 here beyond the world-level sever test in
	// internal/mpi, which checks the whole world aborts.
	closeMesh(ts)
	testutil.WaitNoLeak(t, base, 2)
}

func TestAbortPropagatesToPeers(t *testing.T) {
	base := runtime.NumGoroutine()
	ts, cols := startMesh(t, 2, TCPConfig{})
	ts[0].Abort()
	select {
	case <-cols[1].downc:
	case <-time.After(5 * time.Second):
		t.Fatal("rank 1 never observed the propagated abort")
	}
	if err := cols[1].firstDown(); !errors.Is(err, ErrPeerAborted) {
		t.Fatalf("rank 1 down error = %v, want ErrPeerAborted", err)
	}
	closeMesh(ts)
	testutil.WaitNoLeak(t, base, 2)
}

func TestBootstrapTimesOutWithoutPeers(t *testing.T) {
	ts, err := Loopback(2, TCPConfig{BootstrapTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatalf("Loopback: %v", err)
	}
	// Rank 0 never starts: rank 1's dial handshake gets no ack and its
	// bootstrap must give up within the configured timeout.
	ts[0].Close()
	defer ts[1].Close()
	if err := ts[1].Start(newCollector().handlers()); err == nil {
		t.Fatal("Start succeeded although the peer never came up")
	}
}

func TestStartValidation(t *testing.T) {
	if _, err := NewTCP(TCPConfig{}); err == nil {
		t.Error("NewTCP accepted an empty address table")
	}
	if _, err := NewTCP(TCPConfig{Self: 2, Addrs: []string{"127.0.0.1:0"}}); err == nil {
		t.Error("NewTCP accepted an out-of-range self rank")
	}
}
