package transport

import (
	"net"
	"testing"
)

// pipeConns returns two ends of an in-memory connection.
func pipeConns() (net.Conn, net.Conn) { return net.Pipe() }

func TestPreambleRoundtrip(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	want := preamble{version: wireVersion, worldSize: 7, src: 5, dst: 2, recvCount: 123456789}
	done := make(chan error, 1)
	go func() { done <- writePreamble(a, want) }()
	got, err := readPreamble(b)
	if err != nil {
		t.Fatalf("readPreamble: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("writePreamble: %v", err)
	}
	if got != want {
		t.Fatalf("preamble roundtrip: got %+v want %+v", got, want)
	}
}

func TestAckRoundtrip(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() { done <- writeAck(a, 42, ackLostFrames) }()
	recv, status, err := readAck(b)
	if err != nil {
		t.Fatalf("readAck: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("writeAck: %v", err)
	}
	if recv != 42 || status != ackLostFrames {
		t.Fatalf("ack roundtrip: got (%d, %d) want (42, %d)", recv, status, ackLostFrames)
	}
}

func TestPreambleRejectsBadMagic(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	go func() {
		buf := make([]byte, preambleLen)
		buf[0] = 0xff
		a.Write(buf)
	}()
	if _, err := readPreamble(b); err == nil {
		t.Fatal("readPreamble accepted a bad magic")
	}
}

func TestFrameRoundtrip(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	payload := []int64{0, -1, 1 << 40, -(1 << 40), 7}
	done := make(chan error, 1)
	go func() {
		buf := appendFrame(nil, 3, opData, -99, payload)
		_, err := a.Write(buf)
		done <- err
	}()
	f, _, err := readFrame(b, nil, nil)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("write: %v", err)
	}
	if f.kind != 3 || f.op != opData || f.tag != -99 {
		t.Fatalf("frame header: got kind=%d op=%d tag=%d", f.kind, f.op, f.tag)
	}
	if len(f.payload) != len(payload) {
		t.Fatalf("payload length: got %d want %d", len(f.payload), len(payload))
	}
	for i := range payload {
		if f.payload[i] != payload[i] {
			t.Fatalf("payload[%d]: got %d want %d", i, f.payload[i], payload[i])
		}
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	go a.Write(appendFrame(nil, 0, opHeartbeat, 0, nil))
	f, _, err := readFrame(b, nil, func(n int) []int64 {
		t.Fatalf("acquire called for an empty payload")
		return nil
	})
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if f.op != opHeartbeat || f.payload != nil {
		t.Fatalf("heartbeat frame: got op=%d payload=%v", f.op, f.payload)
	}
}

func TestFrameRejectsOversizedLength(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	go func() {
		buf := appendFrame(nil, 0, opData, 0, nil)
		// Corrupt the word count beyond the bound.
		buf[0], buf[1], buf[2], buf[3] = 0xff, 0xff, 0xff, 0xff
		a.Write(buf)
	}()
	if _, _, err := readFrame(b, nil, nil); err == nil {
		t.Fatal("readFrame accepted an oversized length prefix")
	}
}

func TestAppendFrameReusesBuffer(t *testing.T) {
	buf := appendFrame(nil, 1, opData, 7, []int64{1, 2, 3})
	buf2 := appendFrame(buf, 1, opData, 8, []int64{4})
	if &buf[0] != &buf2[0] {
		t.Fatal("appendFrame reallocated although the buffer was large enough")
	}
}
