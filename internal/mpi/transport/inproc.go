package transport

import "fmt"

// Inproc is the in-process transport: every rank is local and Send
// delivers synchronously on the sender's goroutine, straight into the
// receiving rank's mailbox via Handlers.Deliver. It is the extraction of
// the original shared-memory world's delivery path and remains the
// zero-cost default — no goroutines, no serialization, no extra
// allocations on the hot path (two atomic adds for the frame counters).
type Inproc struct {
	size  int
	local []int
	h     Handlers
	ctr   counters
}

// NewInproc returns an in-process transport for a world of the given
// size. It panics if size < 1.
func NewInproc(size int) *Inproc {
	if size < 1 {
		panic(fmt.Sprintf("transport: inproc world size %d < 1", size))
	}
	local := make([]int, size)
	for i := range local {
		local[i] = i
	}
	return &Inproc{size: size, local: local}
}

// Size returns the world size.
func (t *Inproc) Size() int { return t.size }

// LocalRanks returns every rank: the whole world lives in this process.
func (t *Inproc) LocalRanks() []int { return t.local }

// Start wires the delivery handler. Inproc has no connections to bring up.
func (t *Inproc) Start(h Handlers) error {
	if h.Deliver == nil {
		return fmt.Errorf("transport: inproc Start with nil Deliver")
	}
	t.h = h
	return nil
}

// Send delivers f synchronously. The payload buffer is handed to the
// receiver as-is (no copy: the rank layer already staged it).
func (t *Inproc) Send(f Frame) {
	validRank(f.Dst, t.size, "send to")
	t.ctr.framesSent.Add(1)
	t.ctr.bytesSent.Add(int64(len(f.Payload)) * 8)
	t.h.Deliver(f)
}

// Abort is a no-op: every rank is local, and the world wakes its own
// mailboxes.
func (t *Inproc) Abort() {}

// Close is a no-op.
func (t *Inproc) Close() error { return nil }

// Stats returns the frame counters. Every sent frame is delivered
// synchronously, so the receive counters mirror the send counters (Send
// touches only two atomics, keeping the hot path lean).
func (t *Inproc) Stats() Stats {
	s := t.ctr.snapshot()
	s.FramesRecv = s.FramesSent
	s.BytesRecv = s.BytesSent
	return s
}
