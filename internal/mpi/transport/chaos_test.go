package transport

import (
	"sync"
	"testing"
	"time"
)

// fakeTransport records sends and severs for chaos wrapper tests.
type fakeTransport struct {
	size int
	mu   sync.Mutex
	sent []Frame
	sev  []int
}

func (f *fakeTransport) Size() int            { return f.size }
func (f *fakeTransport) LocalRanks() []int    { return []int{0} }
func (f *fakeTransport) Start(Handlers) error { return nil }
func (f *fakeTransport) Abort()               {}
func (f *fakeTransport) Close() error         { return nil }
func (f *fakeTransport) Stats() Stats         { return Stats{} }

func (f *fakeTransport) Send(fr Frame) {
	f.mu.Lock()
	f.sent = append(f.sent, fr)
	f.mu.Unlock()
}

func (f *fakeTransport) Sever(rank int) {
	f.mu.Lock()
	f.sev = append(f.sev, rank)
	f.mu.Unlock()
}

func (f *fakeTransport) sentCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.sent)
}

func TestChaosDropByPair(t *testing.T) {
	inner := &fakeTransport{size: 3}
	c := NewChaos(inner)
	c.AddRule(ChaosRule{Src: 0, Dst: 1, Epoch: -1, Action: ChaosDrop})
	c.Start(Handlers{Deliver: func(Frame) {}})
	c.Send(Frame{Src: 0, Dst: 1, Payload: []int64{1}}) // dropped
	c.Send(Frame{Src: 0, Dst: 2, Payload: []int64{2}}) // forwarded
	c.Send(Frame{Src: 1, Dst: 0, Payload: []int64{3}}) // forwarded (src mismatch)
	if got := inner.sentCount(); got != 2 {
		t.Fatalf("forwarded %d frames, want 2", got)
	}
	if c.Dropped() != 1 {
		t.Fatalf("Dropped() = %d, want 1", c.Dropped())
	}
}

func TestChaosWildcardAndAfterFrames(t *testing.T) {
	inner := &fakeTransport{size: 2}
	c := NewChaos(inner)
	// Drop everything to rank 1 from the third frame of each pair onward.
	c.AddRule(ChaosRule{Src: -1, Dst: 1, Epoch: -1, AfterFrames: 2, Action: ChaosDrop})
	c.Start(Handlers{Deliver: func(Frame) {}})
	for i := 0; i < 5; i++ {
		c.Send(Frame{Src: 0, Dst: 1, Payload: []int64{int64(i)}})
	}
	if got := inner.sentCount(); got != 2 {
		t.Fatalf("forwarded %d frames, want the first 2", got)
	}
}

func TestChaosEpochScoping(t *testing.T) {
	inner := &fakeTransport{size: 2}
	c := NewChaos(inner)
	c.AddRule(ChaosRule{Src: 0, Dst: 1, Epoch: 2, Action: ChaosDrop})
	c.Start(Handlers{Deliver: func(Frame) {}})
	c.Send(Frame{Src: 0, Dst: 1}) // epoch 0: forwarded
	c.SetEpoch(2)
	c.Send(Frame{Src: 0, Dst: 1}) // epoch 2: dropped
	c.SetEpoch(3)
	c.Send(Frame{Src: 0, Dst: 1}) // epoch 3: forwarded
	if got := inner.sentCount(); got != 2 {
		t.Fatalf("forwarded %d frames, want 2", got)
	}
}

func TestChaosOnceDisarms(t *testing.T) {
	inner := &fakeTransport{size: 2}
	c := NewChaos(inner)
	c.AddRule(ChaosRule{Src: 0, Dst: 1, Epoch: -1, Action: ChaosDrop, Once: true})
	c.Start(Handlers{Deliver: func(Frame) {}})
	c.Send(Frame{Src: 0, Dst: 1})
	c.Send(Frame{Src: 0, Dst: 1})
	if got := inner.sentCount(); got != 1 {
		t.Fatalf("forwarded %d frames, want 1 (rule disarms after first strike)", got)
	}
}

func TestChaosDelayForwards(t *testing.T) {
	inner := &fakeTransport{size: 2}
	c := NewChaos(inner)
	c.AddRule(ChaosRule{Src: 0, Dst: 1, Epoch: -1, Action: ChaosDelay, Delay: 20 * time.Millisecond, Once: true})
	c.Start(Handlers{Deliver: func(Frame) {}})
	start := time.Now()
	c.Send(Frame{Src: 0, Dst: 1})
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("delayed send returned after %v, want >= 20ms", elapsed)
	}
	if inner.sentCount() != 1 {
		t.Fatal("delayed frame was not forwarded")
	}
	if c.Delayed() != 1 {
		t.Fatalf("Delayed() = %d, want 1", c.Delayed())
	}
}

func TestChaosSeverDelegates(t *testing.T) {
	inner := &fakeTransport{size: 2}
	c := NewChaos(inner)
	c.AddRule(ChaosRule{Src: 0, Dst: 1, Epoch: -1, Action: ChaosSever})
	released := 0
	c.Start(Handlers{
		Deliver: func(Frame) {},
		Release: func([]int64) { released++ },
	})
	c.Send(Frame{Src: 0, Dst: 1, Payload: []int64{1, 2}})
	inner.mu.Lock()
	defer inner.mu.Unlock()
	if len(inner.sev) != 1 || inner.sev[0] != 1 {
		t.Fatalf("sever not delegated to the inner transport: %v", inner.sev)
	}
	if len(inner.sent) != 0 {
		t.Fatal("severed frame was forwarded")
	}
	if released != 1 {
		t.Fatalf("discarded payload not released to the pool (released=%d)", released)
	}
}

func TestChaosPassthroughInterfaces(t *testing.T) {
	inner := &fakeTransport{size: 4}
	c := NewChaos(inner)
	if c.Size() != 4 {
		t.Errorf("Size() = %d", c.Size())
	}
	if got := c.LocalRanks(); len(got) != 1 || got[0] != 0 {
		t.Errorf("LocalRanks() = %v", got)
	}
	var _ Transport = c // Chaos must satisfy the Transport interface
}
