package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPConfig parameterizes a TCP transport. Self and Addrs are required:
// Addrs[r] is the address rank r listens on, and the table — exchanged
// out-of-band by the launcher — is the rendezvous; the per-connection
// preamble/ack handshake then verifies that both ends agree on protocol
// version, world size and rank identity before any frame flows.
type TCPConfig struct {
	// Self is the rank this process hosts.
	Self int
	// Addrs maps every rank to its listen address (host:port). len(Addrs)
	// is the world size.
	Addrs []string
	// Listener optionally supplies a pre-bound listener for Addrs[Self]
	// (tests use it for ephemeral :0 ports). NewTCP listens itself when
	// nil.
	Listener net.Listener

	// HeartbeatInterval is the liveness beacon period (default 250ms);
	// HeartbeatTimeout is the silence after which a peer is declared dead
	// and the world aborts (default 5s).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// DialTimeout bounds one dial + handshake attempt (default 5s).
	DialTimeout time.Duration
	// WriteTimeout is the per-frame send deadline, covering any reconnect
	// wait (default 10s).
	WriteTimeout time.Duration
	// BootstrapTimeout bounds Start's wait for the full peer mesh
	// (default 30s).
	BootstrapTimeout time.Duration
	// ReconnectAttempts and ReconnectBackoff bound the repair of a broken
	// established connection: attempts dials with exponentially growing
	// backoff, then the peer is declared dead (defaults 3 and 50ms).
	ReconnectAttempts int
	ReconnectBackoff  time.Duration

	// Logf, when non-nil, receives debug lines (connection lifecycle,
	// reconnects, faults).
	Logf func(format string, args ...any)
}

func (c *TCPConfig) applyDefaults() {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 250 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 5 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.BootstrapTimeout <= 0 {
		c.BootstrapTimeout = 30 * time.Second
	}
	if c.ReconnectAttempts <= 0 {
		c.ReconnectAttempts = 3
	}
	if c.ReconnectBackoff <= 0 {
		c.ReconnectBackoff = 50 * time.Millisecond
	}
}

// tcpPeer is the state of one remote rank: a single persistent full-duplex
// connection (established by the higher rank dialing the lower one),
// replaced in place on reconnect.
type tcpPeer struct {
	rank   int
	addr   string
	dialer bool // this process dials (peer rank < self)

	mu   sync.Mutex // guards conn, gen, wbuf, counters and flags below
	conn net.Conn   // nil while down
	gen  uint64     // bumped on every replacement; stale-generation faults are ignored
	wbuf []byte     // frame encode staging, reused

	// dataSent counts data frames successfully written; dataRecv counts
	// data frames delivered. Exchanged in the reconnect handshake to
	// detect frames lost in flight (control frames are excluded: their
	// number is scheduling-dependent).
	dataSent uint64
	dataRecv uint64
	// resumeSkip is 1 when the handshake proved that the frame whose
	// write errored actually reached the peer: the retrying Send must
	// not resend it.
	resumeSkip uint64
	redialing  bool

	severed  atomic.Bool  // fault injection: refuse this link forever
	lastRecv atomic.Int64 // unix nanos of the last inbound frame
}

// TCP is the networked transport: one process hosts exactly one rank and
// exchanges frames with every peer over persistent connections.
type TCP struct {
	cfg  TCPConfig
	self int
	size int
	ln   net.Listener
	h    Handlers

	peers []*tcpPeer // nil at self

	started  atomic.Bool
	closed   atomic.Bool
	aborting atomic.Bool
	dead     atomic.Bool // a peer was declared down: the world is lost
	stopc    chan struct{}
	wg       sync.WaitGroup

	abortOnce sync.Once
	downOnce  sync.Once
	closeMu   sync.Mutex

	ctr counters
}

// NewTCP creates the transport and binds the listener for Addrs[Self]
// (unless cfg.Listener is supplied). Connections are only established by
// Start; until then inbound dials queue in the listen backlog, so peers
// may come up in any order.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	size := len(cfg.Addrs)
	if size < 1 {
		return nil, fmt.Errorf("transport: tcp needs a non-empty address table")
	}
	if cfg.Self < 0 || cfg.Self >= size {
		return nil, fmt.Errorf("transport: tcp self rank %d outside world of size %d", cfg.Self, size)
	}
	cfg.applyDefaults()
	t := &TCP{
		cfg:   cfg,
		self:  cfg.Self,
		size:  size,
		peers: make([]*tcpPeer, size),
		stopc: make(chan struct{}),
	}
	for r := 0; r < size; r++ {
		if r == t.self {
			continue
		}
		t.peers[r] = &tcpPeer{rank: r, addr: cfg.Addrs[r], dialer: r < t.self}
	}
	if cfg.Listener != nil {
		t.ln = cfg.Listener
	} else {
		ln, err := net.Listen("tcp", cfg.Addrs[t.self])
		if err != nil {
			return nil, fmt.Errorf("transport: tcp listen on %s: %w", cfg.Addrs[t.self], err)
		}
		t.ln = ln
	}
	return t, nil
}

// ListenAddr returns the bound listen address (useful with ephemeral
// ports).
func (t *TCP) ListenAddr() net.Addr { return t.ln.Addr() }

// Size returns the world size.
func (t *TCP) Size() int { return t.size }

// LocalRanks returns the single rank this process hosts.
func (t *TCP) LocalRanks() []int { return []int{t.self} }

// Stats returns a snapshot of the transport counters.
func (t *TCP) Stats() Stats { return t.ctr.snapshot() }

func (t *TCP) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// Start runs the bootstrap: it begins accepting, dials every lower-ranked
// peer, and blocks until the full peer mesh is up (or BootstrapTimeout
// passes, closing the transport and returning an error). The Starts of
// all ranks must overlap — each side of a connection completes its
// handshake only when the other side is bootstrapping too.
func (t *TCP) Start(h Handlers) error {
	if h.Deliver == nil {
		return fmt.Errorf("transport: tcp Start with nil Deliver")
	}
	if t.started.Swap(true) {
		return fmt.Errorf("transport: tcp Start called twice")
	}
	t.h = h
	t.wg.Add(1)
	go t.acceptLoop()

	deadline := time.Now().Add(t.cfg.BootstrapTimeout)
	errc := make(chan error, t.size)
	for _, p := range t.peers {
		if p == nil || !p.dialer {
			continue
		}
		p := p
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			errc <- t.bootstrapDial(p, deadline)
		}()
	}
	for _, p := range t.peers {
		if p != nil && p.dialer {
			if err := <-errc; err != nil {
				t.Close()
				return err
			}
		}
	}
	// Wait for the acceptor-side half of the mesh.
	for !t.allConnected() {
		if t.closed.Load() {
			return ErrClosed
		}
		if time.Now().After(deadline) {
			t.Close()
			return fmt.Errorf("transport: rank %d bootstrap timed out waiting for inbound peers", t.self)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.wg.Add(1)
	go t.monitor()
	t.logf("transport: rank %d mesh up (%d peers)", t.self, t.size-1)
	return nil
}

func (t *TCP) allConnected() bool {
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		up := p.conn != nil
		p.mu.Unlock()
		if !up {
			return false
		}
	}
	return true
}

// bootstrapDial establishes the initial connection to a lower-ranked
// peer, retrying while it comes up.
func (t *TCP) bootstrapDial(p *tcpPeer, deadline time.Time) error {
	backoff := t.cfg.ReconnectBackoff
	for {
		if t.closed.Load() {
			return ErrClosed
		}
		conn, resume, err := t.dialPeer(p)
		if err == nil {
			t.installConn(p, conn, resume, false)
			return nil
		}
		if errors.Is(err, errResumeFatal) {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: rank %d could not reach rank %d at %s within the bootstrap timeout: %w",
				t.self, p.rank, p.addr, err)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
}

// errResumeFatal marks handshake failures that retrying cannot fix
// (frames lost, severed link, protocol mismatch).
var errResumeFatal = errors.New("transport: unrecoverable handshake failure")

// dialPeer performs one dial + handshake attempt and returns the live
// connection plus the peer's delivered-frame count for resume arithmetic.
func (t *TCP) dialPeer(p *tcpPeer) (net.Conn, uint64, error) {
	if p.severed.Load() {
		return nil, 0, fmt.Errorf("link to rank %d severed: %w", p.rank, errResumeFatal)
	}
	conn, err := net.DialTimeout("tcp", p.addr, t.cfg.DialTimeout)
	if err != nil {
		return nil, 0, err
	}
	hsDeadline := time.Now().Add(t.cfg.DialTimeout)
	_ = conn.SetDeadline(hsDeadline)
	p.mu.Lock()
	myRecv := p.dataRecv
	p.mu.Unlock()
	if err := writePreamble(conn, preamble{
		version:   wireVersion,
		worldSize: uint32(t.size),
		src:       uint32(t.self),
		dst:       uint32(p.rank),
		recvCount: myRecv,
	}); err != nil {
		conn.Close()
		return nil, 0, fmt.Errorf("preamble to rank %d: %w", p.rank, err)
	}
	theirRecv, status, err := readAck(conn)
	if err != nil {
		conn.Close()
		return nil, 0, fmt.Errorf("ack from rank %d: %w", p.rank, err)
	}
	if status != ackOK {
		conn.Close()
		return nil, 0, fmt.Errorf("rank %d rejected the connection: %s: %w",
			p.rank, ackStatusString(status), errResumeFatal)
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, theirRecv, nil
}

// installConn makes conn the live connection of p and spawns its reader.
// theirRecv is the peer's delivered count from the handshake; comparing
// it to our sent count detects in-flight loss: equal means clean resume,
// one extra means the frame whose write errored actually arrived (the
// retrying Send skips the resend), anything else means frames were lost
// and the world must abort.
func (t *TCP) installConn(p *tcpPeer, conn net.Conn, theirRecv uint64, reconnect bool) {
	p.mu.Lock()
	if t.closed.Load() {
		p.mu.Unlock()
		conn.Close()
		return
	}
	sent := p.dataSent
	if theirRecv != sent && theirRecv != sent+1 {
		p.mu.Unlock()
		conn.Close()
		t.fatal(p.rank, fmt.Errorf("transport: rank %d delivered %d of our %d frames — data lost across reconnect",
			p.rank, theirRecv, sent))
		return
	}
	old := p.conn
	p.conn = conn
	p.gen++
	gen := p.gen
	p.resumeSkip = theirRecv - sent
	p.redialing = false
	p.mu.Unlock()
	if old != nil {
		old.Close()
	}
	p.lastRecv.Store(time.Now().UnixNano())
	if reconnect {
		t.ctr.reconnects.Add(1)
		t.logf("transport: rank %d reconnected to rank %d", t.self, p.rank)
	}
	t.wg.Add(1)
	go t.reader(p, conn, gen)
}

// acceptLoop admits inbound connections (from higher-ranked peers) for
// the transport's lifetime.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			if t.closed.Load() {
				return
			}
			select {
			case <-t.stopc:
				return
			default:
			}
			// Transient accept failure: keep serving.
			time.Sleep(5 * time.Millisecond)
			continue
		}
		t.wg.Add(1)
		go t.handleAccept(conn)
	}
}

// handleAccept validates an inbound handshake and installs the connection
// for its rank.
func (t *TCP) handleAccept(conn net.Conn) {
	defer t.wg.Done()
	_ = conn.SetDeadline(time.Now().Add(t.cfg.DialTimeout))
	pre, err := readPreamble(conn)
	if err != nil {
		conn.Close()
		return
	}
	reject := func(status uint32) {
		_ = writeAck(conn, 0, status)
		conn.Close()
	}
	switch {
	case pre.version != wireVersion:
		reject(ackBadVersion)
		return
	case int(pre.worldSize) != t.size:
		reject(ackBadSize)
		return
	case int(pre.dst) != t.self, int(pre.src) >= t.size, int(pre.src) <= t.self:
		// We only accept from higher ranks (they dial down).
		reject(ackBadRank)
		return
	}
	p := t.peers[pre.src]
	if p.severed.Load() {
		reject(ackSevered)
		return
	}
	if t.closed.Load() {
		reject(ackShuttingRun)
		return
	}
	p.mu.Lock()
	sent := p.dataSent
	myRecv := p.dataRecv
	p.mu.Unlock()
	if pre.recvCount != sent && pre.recvCount != sent+1 {
		reject(ackLostFrames)
		t.fatal(p.rank, fmt.Errorf("transport: rank %d delivered %d of our %d frames — data lost across reconnect",
			p.rank, pre.recvCount, sent))
		return
	}
	if err := writeAck(conn, myRecv, ackOK); err != nil {
		conn.Close()
		return
	}
	_ = conn.SetDeadline(time.Time{})
	reconnect := false
	p.mu.Lock()
	reconnect = p.gen > 0
	p.mu.Unlock()
	t.installConn(p, conn, pre.recvCount, reconnect)
}

// reader drains one connection, delivering data frames and handling
// control frames, until the connection faults or the transport stops.
func (t *TCP) reader(p *tcpPeer, conn net.Conn, gen uint64) {
	defer t.wg.Done()
	var rbuf []byte
	for {
		f, rb, err := readFrame(conn, rbuf, t.h.acquire)
		rbuf = rb
		if err != nil {
			if t.closed.Load() || t.aborting.Load() {
				return
			}
			t.connFault(p, conn, gen, err)
			return
		}
		p.lastRecv.Store(time.Now().UnixNano())
		switch f.op {
		case opHeartbeat:
			// Liveness only.
		case opAbort:
			t.remoteAbort(p.rank)
			return
		case opData:
			t.ctr.framesRecv.Add(1)
			t.ctr.bytesRecv.Add(int64(headerLen + 8*len(f.payload)))
			p.mu.Lock()
			p.dataRecv++
			p.mu.Unlock()
			t.h.Deliver(Frame{Src: p.rank, Dst: t.self, Kind: f.kind, Tag: f.tag, Payload: f.payload})
		default:
			t.connFault(p, conn, gen, fmt.Errorf("transport: unknown frame op %d from rank %d", f.op, p.rank))
			return
		}
	}
}

// connFault retires a broken connection (once per generation) and, on the
// dialing side, kicks off the bounded reconnect.
func (t *TCP) connFault(p *tcpPeer, conn net.Conn, gen uint64, err error) {
	p.mu.Lock()
	if p.gen != gen {
		// A replacement already landed; this fault is stale.
		p.mu.Unlock()
		return
	}
	p.conn = nil
	p.gen++
	conn.Close()
	startRedial := p.dialer && !p.redialing && !p.severed.Load() &&
		!t.closed.Load() && !t.aborting.Load()
	if startRedial {
		p.redialing = true
	}
	p.mu.Unlock()
	t.logf("transport: rank %d link to rank %d faulted: %v", t.self, p.rank, err)
	if startRedial {
		t.wg.Add(1)
		go t.redial(p, err)
	}
	// On the accepting side the peer redials us; the heartbeat monitor
	// aborts the world if it never does.
}

// redial repairs a broken established connection: ReconnectAttempts dials
// with exponential backoff, then the peer is declared dead.
func (t *TCP) redial(p *tcpPeer, cause error) {
	defer t.wg.Done()
	backoff := t.cfg.ReconnectBackoff
	var lastErr error = cause
	for attempt := 1; attempt <= t.cfg.ReconnectAttempts; attempt++ {
		if t.closed.Load() || t.aborting.Load() || t.dead.Load() || p.severed.Load() {
			p.mu.Lock()
			p.redialing = false
			p.mu.Unlock()
			return
		}
		conn, resume, err := t.dialPeer(p)
		if err == nil {
			t.installConn(p, conn, resume, true)
			return
		}
		lastErr = err
		if errors.Is(err, errResumeFatal) {
			break
		}
		select {
		case <-t.stopc:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
	}
	p.mu.Lock()
	p.redialing = false
	p.mu.Unlock()
	t.fatal(p.rank, fmt.Errorf("transport: reconnect to rank %d failed after %d attempts: %w",
		p.rank, t.cfg.ReconnectAttempts, lastErr))
}

// Send ships a data frame to f.Dst, waiting out a reconnect within the
// per-op WriteTimeout. An unreachable peer is reported via Handlers.Down
// and the frame dropped — the world is aborting anyway.
func (t *TCP) Send(f Frame) {
	validRank(f.Dst, t.size, "send to")
	if f.Dst == t.self {
		t.ctr.framesSent.Add(1)
		t.ctr.bytesSent.Add(int64(8 * len(f.Payload)))
		t.ctr.framesRecv.Add(1)
		t.ctr.bytesRecv.Add(int64(8 * len(f.Payload)))
		t.h.Deliver(f)
		return
	}
	p := t.peers[f.Dst]
	deadline := time.Now().Add(t.cfg.WriteTimeout)
	for {
		if t.closed.Load() || t.aborting.Load() || t.dead.Load() {
			return
		}
		p.mu.Lock()
		if p.resumeSkip > 0 {
			// The handshake proved the frame whose write errored reached
			// the peer after all: count it sent, don't duplicate it.
			p.resumeSkip = 0
			p.dataSent++
			p.mu.Unlock()
			t.ctr.framesSent.Add(1)
			t.ctr.bytesSent.Add(int64(headerLen + 8*len(f.Payload)))
			t.h.release(f.Payload)
			return
		}
		conn := p.conn
		gen := p.gen
		if conn == nil {
			p.mu.Unlock()
			if !t.waitConn(p, gen, deadline) {
				t.fatal(p.rank, fmt.Errorf("transport: send to rank %d: peer unreachable within %v",
					p.rank, t.cfg.WriteTimeout))
				return
			}
			continue
		}
		p.wbuf = appendFrame(p.wbuf, f.Kind, opData, f.Tag, f.Payload)
		_ = conn.SetWriteDeadline(deadline)
		_, err := conn.Write(p.wbuf)
		if err == nil {
			p.dataSent++
			n := int64(len(p.wbuf))
			p.mu.Unlock()
			t.ctr.framesSent.Add(1)
			t.ctr.bytesSent.Add(n)
			t.h.release(f.Payload)
			return
		}
		p.mu.Unlock()
		t.connFault(p, conn, gen, err)
		// Loop: wait for the replacement (or the deadline) and retry.
	}
}

// waitConn blocks until p has a connection newer than gen, the deadline
// passes, or the transport stops. Polling keeps the state machine simple;
// the 1ms period is far below every protocol timeout.
func (t *TCP) waitConn(p *tcpPeer, gen uint64, deadline time.Time) bool {
	for {
		if t.closed.Load() || t.aborting.Load() || t.dead.Load() || p.severed.Load() {
			return false
		}
		p.mu.Lock()
		ok := p.conn != nil && p.gen != gen
		p.mu.Unlock()
		if ok {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// sendControl writes a control frame (heartbeat/abort) on the live
// connection, if any. Best-effort: a write error faults the connection
// and the regular repair/liveness machinery takes over.
func (t *TCP) sendControl(p *tcpPeer, op uint8, timeout time.Duration) {
	p.mu.Lock()
	conn := p.conn
	gen := p.gen
	if conn == nil {
		p.mu.Unlock()
		return
	}
	p.wbuf = appendFrame(p.wbuf, 0, op, 0, nil)
	_ = conn.SetWriteDeadline(time.Now().Add(timeout))
	_, err := conn.Write(p.wbuf)
	p.mu.Unlock()
	if err != nil && !t.closed.Load() && !t.aborting.Load() {
		t.connFault(p, conn, gen, err)
	}
}

// monitor is the liveness loop: every HeartbeatInterval it beacons every
// peer and checks how long each has been silent. Silence beyond the
// interval counts a miss; beyond HeartbeatTimeout the peer is declared
// dead and the world aborts.
func (t *TCP) monitor() {
	defer t.wg.Done()
	tick := time.NewTicker(t.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-t.stopc:
			return
		case <-tick.C:
		}
		if t.closed.Load() || t.aborting.Load() || t.dead.Load() {
			return
		}
		now := time.Now().UnixNano()
		for _, p := range t.peers {
			if p == nil {
				continue
			}
			silent := time.Duration(now - p.lastRecv.Load())
			if silent > t.cfg.HeartbeatTimeout {
				t.ctr.hbMisses.Add(1)
				t.fatal(p.rank, fmt.Errorf("transport: rank %d heartbeat timeout: silent for %v (limit %v)",
					p.rank, silent.Round(time.Millisecond), t.cfg.HeartbeatTimeout))
				return
			}
			if silent > t.cfg.HeartbeatInterval*3/2 {
				t.ctr.hbMisses.Add(1)
			}
			t.sendControl(p, opHeartbeat, t.cfg.HeartbeatInterval)
		}
	}
}

// remoteAbort handles an inbound abort control frame: the peer's world is
// going down cooperatively, so ours must too.
func (t *TCP) remoteAbort(rank int) {
	t.downOnce.Do(func() {
		if t.h.Down != nil {
			t.h.Down(rank, fmt.Errorf("%w (propagated by rank %d)", ErrPeerAborted, rank))
		}
	})
}

// fatal declares a peer permanently down, exactly once per transport.
// From then on Send drops frames immediately instead of waiting out
// deadlines: the world is lost and the rank layer is aborting it.
func (t *TCP) fatal(rank int, err error) {
	if t.closed.Load() || t.aborting.Load() {
		return
	}
	if t.dead.Swap(true) {
		return
	}
	t.ctr.peerDown.Add(1)
	t.logf("transport: rank %d: %v", t.self, err)
	t.downOnce.Do(func() {
		if t.h.Down != nil {
			t.h.Down(rank, err)
		}
	})
}

// Abort broadcasts the cooperative world abort to every peer
// (best-effort, short deadline) and silences the failure machinery: a
// connection torn down because the world is aborting is not a fault.
func (t *TCP) Abort() {
	t.abortOnce.Do(func() {
		t.aborting.Store(true)
		for _, p := range t.peers {
			if p == nil {
				continue
			}
			p.mu.Lock()
			if conn := p.conn; conn != nil {
				p.wbuf = appendFrame(p.wbuf, 0, opAbort, 0, nil)
				_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
				_, _ = conn.Write(p.wbuf)
			}
			p.mu.Unlock()
		}
	})
}

// Sever cuts the link to a peer rank and refuses its re-establishment —
// the chaos hook simulating a network partition. The liveness machinery
// then aborts the world within the heartbeat timeout.
func (t *TCP) Sever(rank int) {
	validRank(rank, t.size, "sever")
	p := t.peers[rank]
	if p == nil {
		return
	}
	p.severed.Store(true)
	p.mu.Lock()
	if conn := p.conn; conn != nil {
		p.conn = nil
		p.gen++
		conn.Close()
	}
	p.mu.Unlock()
	t.logf("transport: rank %d severed link to rank %d", t.self, rank)
}

// Close tears down the listener and every connection and joins all
// transport goroutines. Safe to call more than once.
func (t *TCP) Close() error {
	t.closeMu.Lock()
	if !t.closed.Swap(true) {
		close(t.stopc)
		t.ln.Close()
		for _, p := range t.peers {
			if p == nil {
				continue
			}
			p.mu.Lock()
			if conn := p.conn; conn != nil {
				p.conn = nil
				p.gen++
				conn.Close()
			}
			p.mu.Unlock()
		}
	}
	t.closeMu.Unlock()
	t.wg.Wait()
	return nil
}

// Loopback builds a P-rank TCP mesh on ephemeral loopback ports: P
// listeners are bound first (the rendezvous), then one transport per rank
// is created over the resulting address table. Callers must Start all
// transports concurrently — the bootstrap handshakes complete only when
// both ends are up. Tests and benchmarks use it to run a real networked
// world inside one process.
func Loopback(p int, cfg TCPConfig) ([]*TCP, error) {
	if p < 1 {
		return nil, fmt.Errorf("transport: loopback world size %d < 1", p)
	}
	lns := make([]net.Listener, p)
	addrs := make([]string, p)
	for r := 0; r < p; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:r] {
				l.Close()
			}
			return nil, err
		}
		lns[r] = ln
		addrs[r] = ln.Addr().String()
	}
	ts := make([]*TCP, p)
	for r := 0; r < p; r++ {
		c := cfg
		c.Self = r
		c.Addrs = addrs
		c.Listener = lns[r]
		t, err := NewTCP(c)
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			for _, tt := range ts[:r] {
				tt.Close()
			}
			return nil, err
		}
		ts[r] = t
	}
	return ts, nil
}
