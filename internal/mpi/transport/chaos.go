package transport

import (
	"sync"
	"sync/atomic"
	"time"
)

// ChaosAction is what an armed chaos rule does to a matching frame.
type ChaosAction int

const (
	// ChaosDrop silently discards the frame (the payload is released back
	// to the pool). On TCP this surfaces as lost data at the next
	// reconnect handshake; in tests it models a lossy link.
	ChaosDrop ChaosAction = iota
	// ChaosDelay sleeps the sending goroutine before forwarding,
	// preserving per-pair frame order while modelling a slow link.
	ChaosDelay
	// ChaosSever cuts the link permanently: the frame is discarded and,
	// when the inner transport supports it (TCP does), the connection is
	// torn down and refused forever, so liveness machinery must abort the
	// world.
	ChaosSever
)

// ChaosRule matches outbound frames and applies an action. Zero-valued
// fields Src/Dst of -1 act as wildcards; Epoch -1 matches every epoch.
type ChaosRule struct {
	// Src and Dst select the rank pair; -1 matches any rank.
	Src, Dst int
	// Epoch, when >= 0, arms the rule only while the harness-controlled
	// epoch counter (see Chaos.SetEpoch — tests bump it at superstep
	// boundaries) equals it.
	Epoch int
	// AfterFrames arms the rule only from the Nth matching frame of the
	// pair onward (0 = immediately).
	AfterFrames int
	// Action is what to do with a matching frame.
	Action ChaosAction
	// Delay is the sleep for ChaosDelay.
	Delay time.Duration
	// Once disarms the rule after its first strike.
	Once bool
}

// severer is the optional chaos hook of a transport that can cut a peer
// link for real (TCP implements it).
type severer interface {
	Sever(rank int)
}

// Chaos wraps a transport with deterministic fault injection on the
// outbound path. Rules are matched in order on the sending goroutine, so
// with a deterministic program the Nth frame of a pair is always the same
// frame — drops and severs are reproducible. The inbound path is passed
// through untouched (injecting on one side is enough: every link has a
// wrapped end in the tests).
type Chaos struct {
	inner Transport
	h     Handlers // kept to release the payloads of discarded frames

	mu    sync.Mutex // guards rules and the per-pair frame counts
	rules []ChaosRule
	seen  map[[2]int]int // frames observed per (src,dst) pair

	epoch   atomic.Int64
	dropped atomic.Int64
	delayed atomic.Int64
}

// NewChaos wraps inner. Rules can be added before or during the run.
func NewChaos(inner Transport) *Chaos {
	return &Chaos{inner: inner, seen: make(map[[2]int]int)}
}

// AddRule installs a fault-injection rule.
func (c *Chaos) AddRule(r ChaosRule) {
	c.mu.Lock()
	c.rules = append(c.rules, r)
	c.mu.Unlock()
}

// SetEpoch publishes the harness-controlled epoch counter that
// Epoch-scoped rules match against; tests bump it at superstep
// boundaries.
func (c *Chaos) SetEpoch(e int) { c.epoch.Store(int64(e)) }

// Dropped returns how many frames the wrapper discarded (drops + severs).
func (c *Chaos) Dropped() int64 { return c.dropped.Load() }

// Delayed returns how many frames the wrapper delayed.
func (c *Chaos) Delayed() int64 { return c.delayed.Load() }

// Size returns the world size.
func (c *Chaos) Size() int { return c.inner.Size() }

// LocalRanks returns the inner transport's local ranks.
func (c *Chaos) LocalRanks() []int { return c.inner.LocalRanks() }

// Start brings up the inner transport.
func (c *Chaos) Start(h Handlers) error {
	c.h = h
	return c.inner.Start(h)
}

// Send applies the first matching armed rule, then forwards.
func (c *Chaos) Send(f Frame) {
	act, delay, strike := c.match(f)
	if !strike {
		c.inner.Send(f)
		return
	}
	switch act {
	case ChaosDelay:
		c.delayed.Add(1)
		time.Sleep(delay)
		c.inner.Send(f)
	case ChaosSever:
		c.dropped.Add(1)
		c.h.release(f.Payload)
		if s, ok := c.inner.(severer); ok {
			s.Sever(f.Dst)
		}
	default: // ChaosDrop
		c.dropped.Add(1)
		c.h.release(f.Payload)
	}
}

// match finds the first armed rule for f and records the pair's frame
// count.
func (c *Chaos) match(f Frame) (ChaosAction, time.Duration, bool) {
	epoch := int(c.epoch.Load())
	c.mu.Lock()
	defer c.mu.Unlock()
	pair := [2]int{f.Src, f.Dst}
	n := c.seen[pair]
	c.seen[pair] = n + 1
	for i := range c.rules {
		r := &c.rules[i]
		if r.Src >= 0 && r.Src != f.Src {
			continue
		}
		if r.Dst >= 0 && r.Dst != f.Dst {
			continue
		}
		if r.Epoch >= 0 && r.Epoch != epoch {
			continue
		}
		if n < r.AfterFrames {
			continue
		}
		act, delay := r.Action, r.Delay
		if r.Once {
			c.rules = append(c.rules[:i], c.rules[i+1:]...)
		}
		return act, delay, true
	}
	return 0, 0, false
}

// Abort forwards to the inner transport.
func (c *Chaos) Abort() { c.inner.Abort() }

// Close forwards to the inner transport.
func (c *Chaos) Close() error { return c.inner.Close() }

// Stats returns the inner transport's counters.
func (c *Chaos) Stats() Stats { return c.inner.Stats() }

// Sever forwards the chaos hook to the inner transport when supported.
func (c *Chaos) Sever(rank int) {
	if s, ok := c.inner.(severer); ok {
		s.Sever(rank)
	}
}
