// Package transport moves message frames between the ranks of an mpi
// world. It is the seam that lets the rank layer above (internal/mpi) run
// either as P goroutines in one process or as P OS processes across
// machines without the collective code noticing:
//
//   - Inproc delivers frames synchronously on the sender's goroutine —
//     the zero-cost default extracted from the original per-pair mailbox
//     world. All ranks are local.
//   - TCP moves frames as length-prefixed binary over persistent per-peer
//     connections, with a bootstrap handshake, heartbeat-based liveness,
//     per-op deadlines and bounded reconnect. Exactly one rank is local.
//   - Chaos wraps any transport with deterministic fault injection
//     (drop/delay/sever by rank pair) for failure testing.
//
// A transport knows nothing about tags, collectives or mailboxes: it
// ships opaque (src, dst, kind, tag, payload) frames and reports peers
// that died. The world maps peer death onto its cooperative abort, so a
// dead rank aborts the whole world instead of hanging it.
package transport

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Frame is one message between two ranks. Kind and Tag are opaque to the
// transport (the rank layer uses them to route frames into per-queue
// mailboxes); Payload ownership transfers to the transport on Send and to
// the receiver on Deliver.
type Frame struct {
	Src, Dst int
	Kind     uint8
	Tag      int32
	Payload  []int64
}

// Words returns the payload length in 8-byte words.
func (f Frame) Words() int { return len(f.Payload) }

// ErrPeerAborted is the Down error reported when a remote rank propagated
// a cooperative world abort (as opposed to dying). Use errors.Is.
var ErrPeerAborted = errors.New("transport: peer rank aborted the world")

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// Handlers connect a transport to the rank layer above it. Deliver and
// Down may be invoked from internal transport goroutines; they must not
// block for long.
type Handlers struct {
	// Deliver hands an inbound frame to the local rank layer. Required.
	Deliver func(f Frame)
	// Down reports that communication with a peer rank is permanently
	// broken (heartbeat timeout, reconnect exhausted, frames lost, or a
	// remote abort — err wraps ErrPeerAborted then). The rank layer maps
	// it onto a world abort. Required for remote transports; Inproc never
	// calls it.
	Down func(rank int, err error)
	// Acquire, when non-nil, sources payload buffers for received frames
	// (the world's buffer pool); a nil Acquire falls back to make.
	Acquire func(n int) []int64
	// Release, when non-nil, receives payload buffers the transport has
	// finished serializing (remote sends only — Inproc hands the buffer
	// itself to the receiver).
	Release func(b []int64)
}

func (h Handlers) acquire(n int) []int64 {
	if h.Acquire != nil {
		return h.Acquire(n)
	}
	return make([]int64, n)
}

func (h Handlers) release(b []int64) {
	if h.Release != nil {
		h.Release(b)
	}
}

// Transport moves frames between the ranks of one world.
type Transport interface {
	// Size returns the world size (total ranks across all processes).
	Size() int
	// LocalRanks returns the ranks hosted in this process, ascending.
	LocalRanks() []int
	// Start wires the handlers and brings the transport up (for TCP: the
	// bootstrap handshake with every peer). Must be called exactly once
	// before Send.
	Start(h Handlers) error
	// Send ships f to f.Dst. It never blocks indefinitely: remote
	// backends enforce per-op deadlines and report unreachable peers via
	// Handlers.Down (the frame is then dropped — the world is aborting).
	Send(f Frame)
	// Abort propagates a cooperative world abort to remote peers
	// (best-effort, idempotent). Inproc is a no-op: the world wakes its
	// own mailboxes.
	Abort()
	// Close tears down connections and joins all internal goroutines.
	// Safe to call more than once.
	Close() error
	// Stats returns a snapshot of the transport counters.
	Stats() Stats
}

// Stats counts transport-level traffic and failures. For Inproc,
// frames==messages and reconnect/heartbeat counters stay zero.
type Stats struct {
	FramesSent int64 `json:"frames_sent"`
	FramesRecv int64 `json:"frames_recv"`
	BytesSent  int64 `json:"bytes_sent"`
	BytesRecv  int64 `json:"bytes_recv"`
	// Reconnects counts successful re-establishments of a broken peer
	// connection.
	Reconnects int64 `json:"reconnects"`
	// HeartbeatMisses counts liveness checks that found a peer silent for
	// longer than the heartbeat interval (the world aborts once the
	// silence exceeds the timeout).
	HeartbeatMisses int64 `json:"heartbeat_misses"`
	// PeerFailures counts peers declared permanently down.
	PeerFailures int64 `json:"peer_failures"`
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.FramesSent += o.FramesSent
	s.FramesRecv += o.FramesRecv
	s.BytesSent += o.BytesSent
	s.BytesRecv += o.BytesRecv
	s.Reconnects += o.Reconnects
	s.HeartbeatMisses += o.HeartbeatMisses
	s.PeerFailures += o.PeerFailures
}

// counters is the shared atomic backing of Stats snapshots.
type counters struct {
	framesSent atomic.Int64
	framesRecv atomic.Int64
	bytesSent  atomic.Int64
	bytesRecv  atomic.Int64
	reconnects atomic.Int64
	hbMisses   atomic.Int64
	peerDown   atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		FramesSent:      c.framesSent.Load(),
		FramesRecv:      c.framesRecv.Load(),
		BytesSent:       c.bytesSent.Load(),
		BytesRecv:       c.bytesRecv.Load(),
		Reconnects:      c.reconnects.Load(),
		HeartbeatMisses: c.hbMisses.Load(),
		PeerFailures:    c.peerDown.Load(),
	}
}

// validRank panics unless r is a rank of a size-P world.
func validRank(r, size int, what string) {
	if r < 0 || r >= size {
		panic(fmt.Sprintf("transport: %s rank %d outside world of size %d", what, r, size))
	}
}
