// Package mpi is an in-process message-passing substrate that stands in for
// MPI in this reproduction (the paper's implementation is C++/MPI on an
// InfiniBand cluster; Go has no MPI ecosystem, so ranks run as goroutines).
//
// The model mirrors the subset of MPI the paper's algorithms use:
//
//   - SPMD execution: World.Run launches one goroutine per rank, all
//     executing the same function.
//   - Asynchronous point-to-point sends: Send never blocks (unbounded
//     per-pair mailboxes, like buffered MPI_Isend), Recv blocks until a
//     matching message arrives. Messages between a fixed (src, dst) pair
//     are delivered in order.
//   - Collectives: Barrier, Bcast, Gather, Allgatherv, Reduce variants,
//     Allreduce variants, exclusive prefix sum (ExScan) and sparse
//     Alltoallv, all built on point-to-point messages.
//
// Every payload is a []int64; senders' slices are copied, modelling
// serialization. Per-rank counters record message and word volume so
// experiments can report communication cost.
package mpi

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

type msgKind uint8

const (
	kindUser msgKind = iota
	kindCollective
	// kindPoison marks a fatal-error notification: a rank that detects an
	// unrecoverable protocol violation poisons its peers before panicking,
	// so blocked receivers fail fast instead of hanging the world.
	kindPoison
)

type message struct {
	kind msgKind
	tag  int
	data []int64
}

// abortSignal is the panic payload of a cooperative world abort. World.Run
// recognizes it and swallows it instead of re-raising: an aborted rank is an
// expected unwinding, not a crash.
type abortSignal struct{}

// mailbox is an unbounded FIFO queue for one (dst, src) pair.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	q       []message
	aborted *atomic.Bool // the owning world's abort flag
}

func newMailbox(aborted *atomic.Bool) *mailbox {
	mb := &mailbox{aborted: aborted}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) push(m message) {
	mb.mu.Lock()
	mb.q = append(mb.q, m)
	mb.cond.Signal()
	mb.mu.Unlock()
}

// pop removes and returns the first queued message with the given kind and
// tag, blocking until one arrives. A queued poison message takes priority
// and panics the receiver.
func (mb *mailbox) pop(kind msgKind, tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if mb.aborted.Load() {
			// The deferred Unlock releases the mutex during panic.
			panic(abortSignal{})
		}
		for i, m := range mb.q {
			if m.kind == kindPoison {
				// The deferred Unlock releases the mutex during panic.
				panic("mpi: peer rank reported a fatal error (poisoned)")
			}
			if m.kind == kind && m.tag == tag {
				mb.q = append(mb.q[:i], mb.q[i+1:]...)
				return m
			}
		}
		mb.cond.Wait()
	}
}

// tryPop removes and returns the first queued message with the given kind
// and tag without blocking.
func (mb *mailbox) tryPop(kind msgKind, tag int) (message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, m := range mb.q {
		if m.kind == kind && m.tag == tag {
			mb.q = append(mb.q[:i], mb.q[i+1:]...)
			return m, true
		}
	}
	return message{}, false
}

// Stats counts traffic originating at one rank.
type Stats struct {
	MessagesSent int64
	WordsSent    int64 // 8-byte words
}

// World owns the mailboxes and statistics for a set of ranks.
type World struct {
	size    int
	boxes   [][]*mailbox // boxes[dst][src]
	msgs    []atomic.Int64
	words   []atomic.Int64
	aborted atomic.Bool
}

// NewWorld creates a world with the given number of ranks. It panics if
// size < 1.
func NewWorld(size int) *World {
	if size < 1 {
		panic(fmt.Sprintf("mpi: world size %d < 1", size))
	}
	w := &World{
		size:  size,
		boxes: make([][]*mailbox, size),
		msgs:  make([]atomic.Int64, size),
		words: make([]atomic.Int64, size),
	}
	for d := range w.boxes {
		w.boxes[d] = make([]*mailbox, size)
		for s := range w.boxes[d] {
			w.boxes[d][s] = newMailbox(&w.aborted)
		}
	}
	return w
}

// Abort requests a cooperative shutdown of the whole world: every rank
// currently blocked in a receive (point-to-point or inside a collective)
// wakes up and unwinds with an internal abort panic that Run swallows, and
// every later receive or CheckAbort call unwinds immediately. Abort is safe
// to call from any goroutine, any number of times. It is the substrate
// context cancellation is built on (see WatchContext).
func (w *World) Abort() {
	if w.aborted.Swap(true) {
		return
	}
	for _, row := range w.boxes {
		for _, mb := range row {
			mb.mu.Lock()
			mb.cond.Broadcast()
			mb.mu.Unlock()
		}
	}
}

// Aborted reports whether Abort has been called.
func (w *World) Aborted() bool { return w.aborted.Load() }

// WatchContext aborts the world as soon as ctx is cancelled. The returned
// stop function releases the watcher goroutine (and must be called to avoid
// leaking it); it blocks until the watcher has exited.
func (w *World) WatchContext(ctx context.Context) (stop func()) {
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-ctx.Done():
			w.Abort()
		case <-done:
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run executes fn once per rank, each on its own goroutine, and returns
// when all ranks have finished. A panic on any rank is re-raised on the
// caller's goroutine after the others complete or block permanently; Run
// must therefore only be used with SPMD functions that terminate. Abort
// unwindings (ranks cut short by World.Abort / a cancelled WatchContext)
// are not crashes and are swallowed; callers detect them via Aborted().
func (w *World) Run(fn func(c *Comm)) {
	var wg sync.WaitGroup
	panics := make([]any, w.size)
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[rank] = p
				}
			}()
			fn(&Comm{rank: rank, world: w})
		}(r)
	}
	wg.Wait()
	for r, p := range panics {
		if p == nil {
			continue
		}
		if _, ok := p.(abortSignal); ok {
			continue
		}
		panic(fmt.Sprintf("mpi: rank %d panicked: %v", r, p))
	}
}

// TotalStats sums the per-rank statistics.
func (w *World) TotalStats() Stats {
	var s Stats
	for r := 0; r < w.size; r++ {
		s.MessagesSent += w.msgs[r].Load()
		s.WordsSent += w.words[r].Load()
	}
	return s
}

// Comm is one rank's endpoint. It is not safe for concurrent use by
// multiple goroutines.
type Comm struct {
	rank  int
	world *World
	seq   int // collective sequence number; identical across ranks in SPMD code
}

// Rank returns this rank's ID in [0, Size()).
func (c *Comm) Rank() int { return c.rank }

// Aborted reports whether the world has been aborted. Long compute loops
// between communication calls may poll it to bail out early.
func (c *Comm) Aborted() bool { return c.world.aborted.Load() }

// CheckAbort unwinds the calling rank (with the internal abort panic that
// Run swallows) if the world has been aborted. Collective phase loops call
// it at superstep boundaries so computing ranks notice a cancellation as
// fast as blocked ones.
func (c *Comm) CheckAbort() {
	if c.world.aborted.Load() {
		panic(abortSignal{})
	}
}

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.size }

// Stats returns the traffic counters for this rank.
func (c *Comm) Stats() Stats {
	return Stats{
		MessagesSent: c.world.msgs[c.rank].Load(),
		WordsSent:    c.world.words[c.rank].Load(),
	}
}

func (c *Comm) send(dst int, kind msgKind, tag int, data []int64) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: send to rank %d outside world of size %d", dst, c.world.size))
	}
	cp := make([]int64, len(data))
	copy(cp, data)
	c.world.msgs[c.rank].Add(1)
	c.world.words[c.rank].Add(int64(len(data)))
	c.world.boxes[dst][c.rank].push(message{kind: kind, tag: tag, data: cp})
}

func (c *Comm) recv(src int, kind msgKind, tag int) []int64 {
	if src < 0 || src >= c.world.size {
		panic(fmt.Sprintf("mpi: recv from rank %d outside world of size %d", src, c.world.size))
	}
	return c.world.boxes[c.rank][src].pop(kind, tag).data
}

// Send delivers data to dst with a user tag. It never blocks. The slice is
// copied.
func (c *Comm) Send(dst, tag int, data []int64) { c.send(dst, kindUser, tag, data) }

// Recv blocks until a user message with the given tag arrives from src and
// returns its payload.
func (c *Comm) Recv(src, tag int) []int64 { return c.recv(src, kindUser, tag) }

// TryRecv returns a queued user message with the given tag from src, or
// ok=false without blocking. It models MPI_Iprobe + MPI_Recv, which the
// evolutionary algorithm uses to pick up migrants opportunistically.
func (c *Comm) TryRecv(src, tag int) ([]int64, bool) {
	m, ok := c.world.boxes[c.rank][src].tryPop(kindUser, tag)
	return m.data, ok
}

// TryRecvAny returns a queued user message with the given tag from any
// rank, or ok=false without blocking.
func (c *Comm) TryRecvAny(tag int) (src int, data []int64, ok bool) {
	for s := 0; s < c.world.size; s++ {
		if m, found := c.world.boxes[c.rank][s].tryPop(kindUser, tag); found {
			return s, m.data, true
		}
	}
	return -1, nil, false
}

func (c *Comm) nextSeq() int {
	c.seq++
	return c.seq
}

// Barrier blocks until every rank has entered the barrier.
func (c *Comm) Barrier() {
	tag := c.nextSeq()
	if c.rank == 0 {
		for r := 1; r < c.Size(); r++ {
			c.recv(r, kindCollective, tag)
		}
		for r := 1; r < c.Size(); r++ {
			c.send(r, kindCollective, tag, nil)
		}
	} else {
		c.send(0, kindCollective, tag, nil)
		c.recv(0, kindCollective, tag)
	}
}

// Bcast distributes root's data to all ranks; every rank returns a copy of
// root's slice. Non-root callers may pass nil.
func (c *Comm) Bcast(root int, data []int64) []int64 {
	tag := c.nextSeq()
	if c.rank == root {
		for r := 0; r < c.Size(); r++ {
			if r != root {
				c.send(r, kindCollective, tag, data)
			}
		}
		cp := make([]int64, len(data))
		copy(cp, data)
		return cp
	}
	return c.recv(root, kindCollective, tag)
}

// Gather collects each rank's data at root. At root the result has one
// entry per rank, in rank order; elsewhere it is nil.
func (c *Comm) Gather(root int, data []int64) [][]int64 {
	tag := c.nextSeq()
	if c.rank == root {
		out := make([][]int64, c.Size())
		cp := make([]int64, len(data))
		copy(cp, data)
		out[root] = cp
		for r := 0; r < c.Size(); r++ {
			if r != root {
				out[r] = c.recv(r, kindCollective, tag)
			}
		}
		return out
	}
	c.send(root, kindCollective, tag, data)
	return nil
}

// Allgatherv collects every rank's (variable-length) data on every rank,
// returned in rank order.
func (c *Comm) Allgatherv(data []int64) [][]int64 {
	parts := c.Gather(0, data)
	// Flatten with a length prefix so one Bcast suffices.
	var flat []int64
	if c.rank == 0 {
		flat = append(flat, int64(len(parts)))
		for _, p := range parts {
			flat = append(flat, int64(len(p)))
		}
		for _, p := range parts {
			flat = append(flat, p...)
		}
	}
	flat = c.Bcast(0, flat)
	cnt := int(flat[0])
	out := make([][]int64, cnt)
	off := 1 + cnt
	for r := 0; r < cnt; r++ {
		l := int(flat[1+r])
		out[r] = flat[off : off+l : off+l]
		off += l
	}
	return out
}

// reduceOp combines b into a element-wise; slices have equal length.
type reduceOp func(a, b []int64)

func opSum(a, b []int64) {
	for i := range a {
		a[i] += b[i]
	}
}

func opMax(a, b []int64) {
	for i := range a {
		if b[i] > a[i] {
			a[i] = b[i]
		}
	}
}

func opMin(a, b []int64) {
	for i := range a {
		if b[i] < a[i] {
			a[i] = b[i]
		}
	}
}

// PoisonPeers notifies every other rank of a fatal local error so that
// ranks blocked in Recv or collectives panic instead of hanging. It is
// called before panicking on protocol violations; tests injecting faults
// can call it directly.
func (c *Comm) PoisonPeers() {
	for r := 0; r < c.world.size; r++ {
		if r != c.rank {
			c.world.boxes[r][c.rank].push(message{kind: kindPoison})
		}
	}
}

func (c *Comm) allreduce(vals []int64, op reduceOp) []int64 {
	tag := c.nextSeq()
	if c.rank == 0 {
		acc := make([]int64, len(vals))
		copy(acc, vals)
		for r := 1; r < c.Size(); r++ {
			part := c.recv(r, kindCollective, tag)
			if len(part) != len(acc) {
				c.PoisonPeers()
				panic(fmt.Sprintf("mpi: allreduce length mismatch: rank 0 has %d, rank %d has %d",
					len(acc), r, len(part)))
			}
			op(acc, part)
		}
		for r := 1; r < c.Size(); r++ {
			c.send(r, kindCollective, tag, acc)
		}
		return acc
	}
	c.send(0, kindCollective, tag, vals)
	return c.recv(0, kindCollective, tag)
}

// AllreduceSum returns the element-wise sum of vals across all ranks.
// All ranks must pass slices of equal length.
func (c *Comm) AllreduceSum(vals []int64) []int64 { return c.allreduce(vals, opSum) }

// AllreduceMax returns the element-wise maximum of vals across all ranks.
func (c *Comm) AllreduceMax(vals []int64) []int64 { return c.allreduce(vals, opMax) }

// AllreduceMin returns the element-wise minimum of vals across all ranks.
func (c *Comm) AllreduceMin(vals []int64) []int64 { return c.allreduce(vals, opMin) }

// AllreduceSum1 is AllreduceSum for a single value.
func (c *Comm) AllreduceSum1(v int64) int64 { return c.AllreduceSum([]int64{v})[0] }

// AllreduceMax1 is AllreduceMax for a single value.
func (c *Comm) AllreduceMax1(v int64) int64 { return c.AllreduceMax([]int64{v})[0] }

// AllreduceMin1 is AllreduceMin for a single value.
func (c *Comm) AllreduceMin1(v int64) int64 { return c.AllreduceMin([]int64{v})[0] }

// ExScanSum returns the exclusive prefix sum of v over ranks: rank r gets
// sum of the values passed by ranks 0..r-1 (0 at rank 0). The paper uses
// this to map distinct cluster IDs to a contiguous coarse ID space (§IV-C).
func (c *Comm) ExScanSum(v int64) int64 {
	tag := c.nextSeq()
	if c.rank == 0 {
		vals := make([]int64, c.Size())
		vals[0] = v
		for r := 1; r < c.Size(); r++ {
			vals[r] = c.recv(r, kindCollective, tag)[0]
		}
		prefix := int64(0)
		for r := 0; r < c.Size(); r++ {
			cur := vals[r]
			if r != 0 {
				c.send(r, kindCollective, tag, []int64{prefix})
			}
			vals[r] = prefix
			prefix += cur
		}
		return 0
	}
	c.send(0, kindCollective, tag, []int64{v})
	return c.recv(0, kindCollective, tag)[0]
}

// Alltoallv performs a personalized all-to-all exchange: out[p] is sent to
// rank p (nil and empty slices allowed; out must have Size() entries), and
// the result's entry r holds the slice received from rank r. Alltoallv is a
// synchronization point between all ranks.
func (c *Comm) Alltoallv(out [][]int64) [][]int64 {
	if len(out) != c.Size() {
		panic(fmt.Sprintf("mpi: Alltoallv with %d buffers for %d ranks", len(out), c.Size()))
	}
	tag := c.nextSeq()
	for r := 0; r < c.Size(); r++ {
		if r == c.rank {
			continue
		}
		c.send(r, kindCollective, tag, out[r])
	}
	in := make([][]int64, c.Size())
	cp := make([]int64, len(out[c.rank]))
	copy(cp, out[c.rank])
	in[c.rank] = cp
	for r := 0; r < c.Size(); r++ {
		if r == c.rank {
			continue
		}
		in[r] = c.recv(r, kindCollective, tag)
	}
	return in
}

// BcastI64 broadcasts a single value from root.
func (c *Comm) BcastI64(root int, v int64) int64 {
	if c.rank == root {
		return c.Bcast(root, []int64{v})[0]
	}
	return c.Bcast(root, nil)[0]
}
