// Package mpi is an in-process message-passing substrate that stands in for
// MPI in this reproduction (the paper's implementation is C++/MPI on an
// InfiniBand cluster; Go has no MPI ecosystem, so ranks run as goroutines).
//
// The model mirrors the subset of MPI the paper's algorithms use:
//
//   - SPMD execution: World.Run launches one goroutine per rank, all
//     executing the same function.
//   - Asynchronous point-to-point sends: Send never blocks (unbounded
//     per-pair mailboxes, like buffered MPI_Isend), Recv blocks until a
//     matching message arrives. Messages between a fixed (src, dst) pair
//     are delivered in order.
//   - Collectives: Barrier, Bcast, Gather, Allgatherv, Reduce variants,
//     Allreduce variants, exclusive prefix sum (ExScan) and sparse
//     Alltoallv, all built on point-to-point messages.
//   - Neighborhood collectives: a Topology fixes a sparse, symmetric
//     communication graph over the ranks once, and NeighborAlltoallv then
//     exchanges data with adjacent ranks only (the analogue of
//     MPI_Neighbor_alltoallv). Halo exchanges run on these.
//
// Every payload is a []int64; senders' slices are copied, modelling
// serialization. Staging copies come from a world-level buffer pool, and
// the callback-style collectives (AlltoallvFunc, NeighborAlltoallv) recycle
// received buffers back into it, keeping steady-state exchanges
// allocation-free. Per-rank counters record message and word volume by
// traffic class so experiments can report communication cost.
//
// How frames move between ranks is delegated to internal/mpi/transport:
// NewWorld hosts all ranks in-process (the zero-cost default), while
// NewWorldOn accepts any Transport — with the TCP backend a world hosts
// only the ranks local to this OS process and the same SPMD code runs
// across machines. A transport-reported peer failure (heartbeat timeout,
// exhausted reconnect) is mapped onto the cooperative world abort, so a
// dead rank aborts the whole world instead of hanging it; Err reports the
// failure after the fact.
package mpi

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mpi/transport"
	"repro/internal/obs"
)

type msgKind uint8

const (
	kindUser msgKind = iota
	kindCollective
	// kindPoison marks a fatal-error notification: a rank that detects an
	// unrecoverable protocol violation poisons its peers before panicking,
	// so blocked receivers fail fast instead of hanging the world.
	kindPoison
)

// commClass buckets traffic for the per-class Stats counters.
type commClass uint8

const (
	classP2P  commClass = iota // user point-to-point sends
	classColl                  // dense collectives (barrier, reduce, alltoallv, ...)
	classNbr                   // sparse neighborhood collectives (Topology)
	numClasses
)

// abortSignal is the panic payload of a cooperative world abort. World.Run
// recognizes it and swallows it instead of re-raising: an aborted rank is an
// expected unwinding, not a crash.
type abortSignal struct{}

// popKey identifies one receive queue inside a mailbox.
type popKey struct {
	kind msgKind
	tag  int
}

// mailbox holds the pending messages for one (dst, src) pair, bucketed into
// per-(kind, tag) FIFO queues so a receive is a map lookup instead of a
// linear scan over unrelated traffic. Messages within one (kind, tag) bucket
// keep their arrival order, which preserves the substrate's in-order
// delivery guarantee per (src, dst, tag).
type mailbox struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queues   map[popKey][][]int64
	poisoned bool
	aborted  *atomic.Bool // the owning world's abort flag
}

func newMailbox(aborted *atomic.Bool) *mailbox {
	mb := &mailbox{aborted: aborted, queues: make(map[popKey][][]int64)}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) push(kind msgKind, tag int, data []int64) {
	mb.mu.Lock()
	if kind == kindPoison {
		mb.poisoned = true
	} else {
		k := popKey{kind, tag}
		mb.queues[k] = append(mb.queues[k], data)
	}
	// Each mailbox has a single consumer (the owning rank's goroutine), so
	// Signal suffices; Abort broadcasts separately.
	mb.cond.Signal()
	mb.mu.Unlock()
}

// pop removes and returns the first queued message with the given kind and
// tag, blocking until one arrives. A poisoned mailbox panics the receiver.
func (mb *mailbox) pop(kind msgKind, tag int) []int64 {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	k := popKey{kind, tag}
	for {
		if mb.aborted.Load() {
			// The deferred Unlock releases the mutex during panic.
			panic(abortSignal{})
		}
		if mb.poisoned {
			// The deferred Unlock releases the mutex during panic.
			panic("mpi: peer rank reported a fatal error (poisoned)")
		}
		if q := mb.queues[k]; len(q) > 0 {
			data := q[0]
			if len(q) == 1 {
				// Tags are fresh per collective, so drop drained buckets to
				// keep the map from accumulating dead keys.
				delete(mb.queues, k)
			} else {
				mb.queues[k] = q[1:]
			}
			return data
		}
		mb.cond.Wait()
	}
}

// tryPop removes and returns the first queued message with the given kind
// and tag without blocking.
func (mb *mailbox) tryPop(kind msgKind, tag int) ([]int64, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	k := popKey{kind, tag}
	q := mb.queues[k]
	if len(q) == 0 {
		return nil, false
	}
	data := q[0]
	if len(q) == 1 {
		delete(mb.queues, k)
	} else {
		mb.queues[k] = q[1:]
	}
	return data, true
}

// Stats counts traffic originating at one rank (or, after summing, a whole
// world). MessagesSent/WordsSent are totals; the per-class fields break the
// same traffic down by collective class, and the *Exchanges fields count
// completed all-to-all supersteps per class.
type Stats struct {
	MessagesSent int64
	WordsSent    int64 // 8-byte words

	// Per-class breakdown (sums to the totals above).
	P2PMessages      int64 // user Send/Recv traffic
	P2PWords         int64
	CollMessages     int64 // dense collectives over all P ranks
	CollWords        int64
	NeighborMessages int64 // sparse neighborhood collectives
	NeighborWords    int64

	// Superstep counters: completed exchange invocations per class.
	DenseExchanges    int64 // Alltoallv / AlltoallvFunc calls
	NeighborExchanges int64 // Topology.NeighborAlltoallv calls
}

// BytesSent converts the word counter to bytes (every payload word is 8
// bytes on the wire).
func (s Stats) BytesSent() int64 { return s.WordsSent * 8 }

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.MessagesSent += o.MessagesSent
	s.WordsSent += o.WordsSent
	s.P2PMessages += o.P2PMessages
	s.P2PWords += o.P2PWords
	s.CollMessages += o.CollMessages
	s.CollWords += o.CollWords
	s.NeighborMessages += o.NeighborMessages
	s.NeighborWords += o.NeighborWords
	s.DenseExchanges += o.DenseExchanges
	s.NeighborExchanges += o.NeighborExchanges
}

// rankCounters holds one rank's traffic counters (atomics: sends happen on
// the rank's goroutine but TotalStats may read concurrently).
type rankCounters struct {
	msgs      [numClasses]atomic.Int64
	words     [numClasses]atomic.Int64
	denseExch atomic.Int64
	nbrExch   atomic.Int64
}

// World owns the mailboxes and statistics for the ranks hosted in this
// process. With the in-process transport that is every rank; with a
// networked transport each process's world hosts a subset (for TCP,
// exactly one) and boxes rows of remote ranks stay nil.
type World struct {
	size     int
	tr       transport.Transport
	local    []int        // global ranks hosted here, ascending
	boxes    [][]*mailbox // boxes[dst][src]; nil row when dst is remote
	counters []rankCounters
	pairMsgs []atomic.Int64 // messages sent src->dst, at [src*size+dst]
	aborted  atomic.Bool

	errMu sync.Mutex
	err   error // first transport failure; guarded by errMu

	// bufMu/bufFree is a free list of payload buffers. Sends draw staging
	// copies from it; only the pooled receive paths (AlltoallvFunc,
	// Topology.NeighborAlltoallv) return buffers, so a buffer handed to a
	// plain Recv caller simply leaves the pool for good.
	bufMu   sync.Mutex
	bufFree [][]int64

	// tracer records per-rank exchange spans; nil (the default) disables
	// tracing at zero cost. Set before Run via SetTracer.
	tracer *obs.Tracer
}

// maxPooledBuffers bounds the free list; maxPooledCap keeps pathologically
// large one-off payloads from being retained forever.
const (
	maxPooledBuffers = 1024
	maxPooledCap     = 1 << 20
)

// getBuf returns a length-n buffer, reusing a pooled one when possible.
func (w *World) getBuf(n int) []int64 {
	w.bufMu.Lock()
	for len(w.bufFree) > 0 {
		b := w.bufFree[len(w.bufFree)-1]
		w.bufFree = w.bufFree[:len(w.bufFree)-1]
		if cap(b) >= n {
			w.bufMu.Unlock()
			return b[:n]
		}
		// Too small for this request; drop it and try the next.
	}
	w.bufMu.Unlock()
	return make([]int64, n)
}

// putBuf returns a buffer to the pool. Callers must not retain b afterwards.
func (w *World) putBuf(b []int64) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	w.bufMu.Lock()
	if len(w.bufFree) < maxPooledBuffers {
		w.bufFree = append(w.bufFree, b[:0])
	}
	w.bufMu.Unlock()
}

// NewWorld creates an in-process world with the given number of ranks
// (all local, frames delivered synchronously). It panics if size < 1.
func NewWorld(size int) *World {
	if size < 1 {
		panic(fmt.Sprintf("mpi: world size %d < 1", size))
	}
	w, err := NewWorldOn(transport.NewInproc(size))
	if err != nil {
		// Inproc Start cannot fail with wired handlers.
		panic("mpi: inproc world: " + err.Error())
	}
	return w
}

// NewWorldOn creates a world over an arbitrary transport and starts it
// (for networked backends this blocks in the bootstrap until every peer
// process is up — their NewWorldOn calls must overlap; see JoinWorlds for
// the in-process case). The world hosts tr.LocalRanks(); Run executes the
// SPMD function for those ranks only. Callers own the transport's
// lifetime through World.Close.
func NewWorldOn(tr transport.Transport) (*World, error) {
	size := tr.Size()
	if size < 1 {
		return nil, fmt.Errorf("mpi: transport world size %d < 1", size)
	}
	w := &World{
		size:     size,
		tr:       tr,
		local:    tr.LocalRanks(),
		boxes:    make([][]*mailbox, size),
		counters: make([]rankCounters, size),
		pairMsgs: make([]atomic.Int64, size*size),
	}
	for _, d := range w.local {
		row := make([]*mailbox, size)
		for s := range row {
			row[s] = newMailbox(&w.aborted)
		}
		w.boxes[d] = row
	}
	if err := tr.Start(transport.Handlers{
		Deliver: w.deliver,
		Down:    w.peerDown,
		Acquire: w.getBuf,
		Release: w.putBuf,
	}); err != nil {
		return nil, err
	}
	return w, nil
}

// deliver routes an inbound frame into the destination rank's mailbox.
// Invoked by the transport — synchronously on the sender's goroutine
// (inproc) or from a connection reader (tcp).
func (w *World) deliver(f transport.Frame) {
	row := w.boxes[f.Dst]
	if row == nil {
		// Misrouted frame for a rank this process does not host; a correct
		// transport never does this, and dropping beats crashing a reader.
		w.putBuf(f.Payload)
		return
	}
	row[f.Src].push(msgKind(f.Kind), int(f.Tag), f.Payload)
}

// peerDown is the transport's failure callback: communication with a rank
// is permanently broken, so the whole world aborts (a dead rank must not
// hang the others). The first failure is retained for Err.
func (w *World) peerDown(rank int, err error) {
	w.errMu.Lock()
	if w.err == nil {
		w.err = fmt.Errorf("mpi: rank %d unreachable: %w", rank, err)
	}
	w.errMu.Unlock()
	w.Abort()
}

// Err returns the first transport failure that aborted the world, or nil.
// A world aborted by a remote rank's cooperative abort reports an error
// wrapping transport.ErrPeerAborted.
func (w *World) Err() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.err
}

// Close tears down the world's transport (connections and internal
// goroutines). Call after Run has returned on every hosted rank.
func (w *World) Close() error { return w.tr.Close() }

// LocalRanks returns the global ranks hosted by this world, ascending.
// The returned slice is shared: callers must not modify it.
func (w *World) LocalRanks() []int { return w.local }

// TransportStats returns a snapshot of the transport-level counters
// (frames, bytes, reconnects, heartbeat misses, peer failures).
func (w *World) TransportStats() transport.Stats { return w.tr.Stats() }

// PairMessages returns the number of messages sent from src to dst so far.
// Tests use it to assert sparse collectives keep non-adjacent rank pairs
// silent.
func (w *World) PairMessages(src, dst int) int64 {
	return w.pairMsgs[src*w.size+dst].Load()
}

// Abort requests a cooperative shutdown of the whole world: every rank
// currently blocked in a receive (point-to-point or inside a collective)
// wakes up and unwinds with an internal abort panic that Run swallows, and
// every later receive or CheckAbort call unwinds immediately. Abort is safe
// to call from any goroutine, any number of times. It is the substrate
// context cancellation is built on (see WatchContext).
func (w *World) Abort() {
	if w.aborted.Swap(true) {
		return
	}
	// Propagate to remote peers first (best-effort), then wake the local
	// mailboxes so blocked receivers unwind.
	w.tr.Abort()
	for _, row := range w.boxes {
		if row == nil {
			continue
		}
		for _, mb := range row {
			mb.mu.Lock()
			mb.cond.Broadcast()
			mb.mu.Unlock()
		}
	}
}

// Aborted reports whether Abort has been called.
func (w *World) Aborted() bool { return w.aborted.Load() }

// WatchContext aborts the world as soon as ctx is cancelled. The returned
// stop function releases the watcher goroutine (and must be called to avoid
// leaking it); it blocks until the watcher has exited.
func (w *World) WatchContext(ctx context.Context) (stop func()) {
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-ctx.Done():
			w.Abort()
		case <-done:
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// SetTracer attaches a span tracer to the world. Pass nil to disable (the
// default). Call before Run: the field is read without synchronization by
// rank goroutines.
func (w *World) SetTracer(t *obs.Tracer) { w.tracer = t }

// Tracer returns the world's span tracer (nil when tracing is disabled).
// Layers above the substrate use it to record their own spans on the same
// per-rank tracks as the exchange spans.
func (c *Comm) Tracer() *obs.Tracer { return c.world.tracer }

// Run executes fn once per rank, each on its own goroutine, and returns
// when all ranks have finished. A panic on any rank is re-raised on the
// caller's goroutine after the others complete or block permanently; Run
// must therefore only be used with SPMD functions that terminate. Abort
// unwindings (ranks cut short by World.Abort / a cancelled WatchContext)
// are not crashes and are swallowed; callers detect them via Aborted().
func (w *World) Run(fn func(c *Comm)) {
	var wg sync.WaitGroup
	panics := make([]any, len(w.local))
	for i, r := range w.local {
		wg.Add(1)
		go func(i, rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[i] = p
				}
			}()
			fn(&Comm{rank: rank, world: w})
		}(i, r)
	}
	wg.Wait()
	for i, p := range panics {
		if p == nil {
			continue
		}
		if _, ok := p.(abortSignal); ok {
			continue
		}
		panic(fmt.Sprintf("mpi: rank %d panicked: %v", w.local[i], p))
	}
}

// statsOf assembles the Stats snapshot of one rank.
func (w *World) statsOf(r int) Stats {
	c := &w.counters[r]
	s := Stats{
		P2PMessages:       c.msgs[classP2P].Load(),
		P2PWords:          c.words[classP2P].Load(),
		CollMessages:      c.msgs[classColl].Load(),
		CollWords:         c.words[classColl].Load(),
		NeighborMessages:  c.msgs[classNbr].Load(),
		NeighborWords:     c.words[classNbr].Load(),
		DenseExchanges:    c.denseExch.Load(),
		NeighborExchanges: c.nbrExch.Load(),
	}
	s.MessagesSent = s.P2PMessages + s.CollMessages + s.NeighborMessages
	s.WordsSent = s.P2PWords + s.CollWords + s.NeighborWords
	return s
}

// TotalStats sums the per-rank statistics.
func (w *World) TotalStats() Stats {
	var s Stats
	for r := 0; r < w.size; r++ {
		s.Add(w.statsOf(r))
	}
	return s
}

// Comm is one rank's endpoint. It is not safe for concurrent use by
// multiple goroutines.
type Comm struct {
	rank  int
	world *World
	seq   int // collective sequence number; identical across ranks in SPMD code
}

// Rank returns this rank's ID in [0, Size()).
func (c *Comm) Rank() int { return c.rank }

// Aborted reports whether the world has been aborted. Long compute loops
// between communication calls may poll it to bail out early.
func (c *Comm) Aborted() bool { return c.world.aborted.Load() }

// CheckAbort unwinds the calling rank (with the internal abort panic that
// Run swallows) if the world has been aborted. Collective phase loops call
// it at superstep boundaries so computing ranks notice a cancellation as
// fast as blocked ones.
func (c *Comm) CheckAbort() {
	if c.world.aborted.Load() {
		panic(abortSignal{})
	}
}

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.size }

// Stats returns the traffic counters for this rank.
func (c *Comm) Stats() Stats { return c.world.statsOf(c.rank) }

// WorldStats sums the traffic counters of every rank hosted in this
// process (all ranks on the in-process transport). Unlike a collective it
// reads atomics only, so any rank (or an outside observer goroutine) may
// call it at any time; the snapshot is monotone but not a consistent cut.
func (c *Comm) WorldStats() Stats { return c.world.TotalStats() }

// TransportStats returns the world's transport-level counters (frames,
// bytes, reconnects, heartbeat misses). Atomics only, like WorldStats.
func (c *Comm) TransportStats() transport.Stats { return c.world.tr.Stats() }

// LocalRankCount returns how many of the world's ranks run in this process
// (all of them on the in-process transport, typically one on TCP). Callers
// use it to split the machine's cores between co-hosted ranks.
func (c *Comm) LocalRankCount() int { return len(c.world.local) }

func (c *Comm) sendClass(dst int, kind msgKind, tag int, data []int64, class commClass) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: send to rank %d outside world of size %d", dst, c.world.size))
	}
	cp := c.world.getBuf(len(data))
	copy(cp, data)
	ctr := &c.world.counters[c.rank]
	ctr.msgs[class].Add(1)
	ctr.words[class].Add(int64(len(data)))
	c.world.pairMsgs[c.rank*c.world.size+dst].Add(1)
	c.world.tr.Send(transport.Frame{
		Src: c.rank, Dst: dst,
		Kind: uint8(kind), Tag: int32(tag),
		Payload: cp,
	})
}

func (c *Comm) send(dst int, kind msgKind, tag int, data []int64) {
	class := classColl
	if kind == kindUser {
		class = classP2P
	}
	c.sendClass(dst, kind, tag, data, class)
}

func (c *Comm) recv(src int, kind msgKind, tag int) []int64 {
	if src < 0 || src >= c.world.size {
		panic(fmt.Sprintf("mpi: recv from rank %d outside world of size %d", src, c.world.size))
	}
	return c.world.boxes[c.rank][src].pop(kind, tag)
}

// Send delivers data to dst with a user tag. It never blocks. The slice is
// copied.
func (c *Comm) Send(dst, tag int, data []int64) { c.send(dst, kindUser, tag, data) }

// Recv blocks until a user message with the given tag arrives from src and
// returns its payload.
func (c *Comm) Recv(src, tag int) []int64 { return c.recv(src, kindUser, tag) }

// TryRecv returns a queued user message with the given tag from src, or
// ok=false without blocking. It models MPI_Iprobe + MPI_Recv, which the
// evolutionary algorithm uses to pick up migrants opportunistically.
func (c *Comm) TryRecv(src, tag int) ([]int64, bool) {
	return c.world.boxes[c.rank][src].tryPop(kindUser, tag)
}

// TryRecvAny returns a queued user message with the given tag from any
// rank, or ok=false without blocking.
func (c *Comm) TryRecvAny(tag int) (src int, data []int64, ok bool) {
	for s := 0; s < c.world.size; s++ {
		if data, found := c.world.boxes[c.rank][s].tryPop(kindUser, tag); found {
			return s, data, true
		}
	}
	return -1, nil, false
}

func (c *Comm) nextSeq() int {
	c.seq++
	return c.seq
}

// Barrier blocks until every rank has entered the barrier.
func (c *Comm) Barrier() {
	tag := c.nextSeq()
	if c.rank == 0 {
		for r := 1; r < c.Size(); r++ {
			c.recv(r, kindCollective, tag)
		}
		for r := 1; r < c.Size(); r++ {
			c.send(r, kindCollective, tag, nil)
		}
	} else {
		c.send(0, kindCollective, tag, nil)
		c.recv(0, kindCollective, tag)
	}
}

// Bcast distributes root's data to all ranks; every rank returns a copy of
// root's slice. Non-root callers may pass nil.
func (c *Comm) Bcast(root int, data []int64) []int64 {
	tag := c.nextSeq()
	if c.rank == root {
		for r := 0; r < c.Size(); r++ {
			if r != root {
				c.send(r, kindCollective, tag, data)
			}
		}
		cp := make([]int64, len(data))
		copy(cp, data)
		return cp
	}
	return c.recv(root, kindCollective, tag)
}

// Gather collects each rank's data at root. At root the result has one
// entry per rank, in rank order; elsewhere it is nil.
func (c *Comm) Gather(root int, data []int64) [][]int64 {
	tag := c.nextSeq()
	if c.rank == root {
		out := make([][]int64, c.Size())
		cp := make([]int64, len(data))
		copy(cp, data)
		out[root] = cp
		for r := 0; r < c.Size(); r++ {
			if r != root {
				out[r] = c.recv(r, kindCollective, tag)
			}
		}
		return out
	}
	c.send(root, kindCollective, tag, data)
	return nil
}

// Allgatherv collects every rank's (variable-length) data on every rank,
// returned in rank order.
func (c *Comm) Allgatherv(data []int64) [][]int64 {
	parts := c.Gather(0, data)
	// Flatten with a length prefix so one Bcast suffices.
	var flat []int64
	if c.rank == 0 {
		flat = append(flat, int64(len(parts)))
		for _, p := range parts {
			flat = append(flat, int64(len(p)))
		}
		for _, p := range parts {
			flat = append(flat, p...)
		}
	}
	flat = c.Bcast(0, flat)
	cnt := int(flat[0])
	out := make([][]int64, cnt)
	off := 1 + cnt
	for r := 0; r < cnt; r++ {
		l := int(flat[1+r])
		out[r] = flat[off : off+l : off+l]
		off += l
	}
	return out
}

// reduceOp combines b into a element-wise; slices have equal length.
type reduceOp func(a, b []int64)

func opSum(a, b []int64) {
	for i := range a {
		a[i] += b[i]
	}
}

func opMax(a, b []int64) {
	for i := range a {
		if b[i] > a[i] {
			a[i] = b[i]
		}
	}
}

func opMin(a, b []int64) {
	for i := range a {
		if b[i] < a[i] {
			a[i] = b[i]
		}
	}
}

// PoisonPeers notifies every other rank of a fatal local error so that
// ranks blocked in Recv or collectives panic instead of hanging. It is
// called before panicking on protocol violations; tests injecting faults
// can call it directly. Poison travels as ordinary transport frames, so
// it reaches remote ranks too.
func (c *Comm) PoisonPeers() {
	for r := 0; r < c.world.size; r++ {
		if r != c.rank {
			c.world.tr.Send(transport.Frame{
				Src: c.rank, Dst: r, Kind: uint8(kindPoison),
			})
		}
	}
}

func (c *Comm) allreduce(vals []int64, op reduceOp) []int64 {
	tag := c.nextSeq()
	if c.rank == 0 {
		acc := make([]int64, len(vals))
		copy(acc, vals)
		for r := 1; r < c.Size(); r++ {
			part := c.recv(r, kindCollective, tag)
			if len(part) != len(acc) {
				c.PoisonPeers()
				panic(fmt.Sprintf("mpi: allreduce length mismatch: rank 0 has %d, rank %d has %d",
					len(acc), r, len(part)))
			}
			op(acc, part)
		}
		for r := 1; r < c.Size(); r++ {
			c.send(r, kindCollective, tag, acc)
		}
		return acc
	}
	c.send(0, kindCollective, tag, vals)
	return c.recv(0, kindCollective, tag)
}

// AllreduceSum returns the element-wise sum of vals across all ranks.
// All ranks must pass slices of equal length.
func (c *Comm) AllreduceSum(vals []int64) []int64 { return c.allreduce(vals, opSum) }

// AllreduceMax returns the element-wise maximum of vals across all ranks.
func (c *Comm) AllreduceMax(vals []int64) []int64 { return c.allreduce(vals, opMax) }

// AllreduceMin returns the element-wise minimum of vals across all ranks.
func (c *Comm) AllreduceMin(vals []int64) []int64 { return c.allreduce(vals, opMin) }

// AllreduceSum1 is AllreduceSum for a single value.
func (c *Comm) AllreduceSum1(v int64) int64 { return c.AllreduceSum([]int64{v})[0] }

// AllreduceMax1 is AllreduceMax for a single value.
func (c *Comm) AllreduceMax1(v int64) int64 { return c.AllreduceMax([]int64{v})[0] }

// AllreduceMin1 is AllreduceMin for a single value.
func (c *Comm) AllreduceMin1(v int64) int64 { return c.AllreduceMin([]int64{v})[0] }

// ExScanSum returns the exclusive prefix sum of v over ranks: rank r gets
// sum of the values passed by ranks 0..r-1 (0 at rank 0). The paper uses
// this to map distinct cluster IDs to a contiguous coarse ID space (§IV-C).
func (c *Comm) ExScanSum(v int64) int64 {
	tag := c.nextSeq()
	if c.rank == 0 {
		vals := make([]int64, c.Size())
		vals[0] = v
		for r := 1; r < c.Size(); r++ {
			vals[r] = c.recv(r, kindCollective, tag)[0]
		}
		prefix := int64(0)
		for r := 0; r < c.Size(); r++ {
			cur := vals[r]
			if r != 0 {
				c.send(r, kindCollective, tag, []int64{prefix})
			}
			vals[r] = prefix
			prefix += cur
		}
		return 0
	}
	c.send(0, kindCollective, tag, []int64{v})
	return c.recv(0, kindCollective, tag)[0]
}

// Alltoallv performs a personalized all-to-all exchange: out[p] is sent to
// rank p (nil and empty slices allowed; out must have Size() entries), and
// the result's entry r holds the slice received from rank r. Alltoallv is a
// synchronization point between all ranks.
func (c *Comm) Alltoallv(out [][]int64) [][]int64 {
	if len(out) != c.Size() {
		panic(fmt.Sprintf("mpi: Alltoallv with %d buffers for %d ranks", len(out), c.Size()))
	}
	sp := c.world.tracer.Begin(c.rank, "mpi.alltoallv")
	tag := c.nextSeq()
	c.world.counters[c.rank].denseExch.Add(1)
	var words int64
	for r := 0; r < c.Size(); r++ {
		if r == c.rank {
			continue
		}
		words += int64(len(out[r]))
		c.send(r, kindCollective, tag, out[r])
	}
	in := make([][]int64, c.Size())
	cp := make([]int64, len(out[c.rank]))
	copy(cp, out[c.rank])
	in[c.rank] = cp
	for r := 0; r < c.Size(); r++ {
		if r == c.rank {
			continue
		}
		in[r] = c.recv(r, kindCollective, tag)
	}
	c.world.tracer.End2(sp, "words_sent", words, "msgs", int64(c.Size()-1))
	return in
}

// AlltoallvFunc is the buffer-reusing variant of Alltoallv: out[p] is sent
// to rank p, and recv is invoked once per source rank (ascending rank order,
// this rank included) with the payload received from it. The data slice is
// only valid during the callback — it is returned to the world's buffer
// pool afterwards (for the self-delivery, data aliases out[rank] directly).
// Steady-state callers therefore allocate no receive buffers at all.
func (c *Comm) AlltoallvFunc(out [][]int64, recv func(src int, data []int64)) {
	if len(out) != c.Size() {
		panic(fmt.Sprintf("mpi: AlltoallvFunc with %d buffers for %d ranks", len(out), c.Size()))
	}
	sp := c.world.tracer.Begin(c.rank, "mpi.alltoallv")
	tag := c.nextSeq()
	c.world.counters[c.rank].denseExch.Add(1)
	var words int64
	for r := 0; r < c.Size(); r++ {
		if r == c.rank {
			continue
		}
		words += int64(len(out[r]))
		c.send(r, kindCollective, tag, out[r])
	}
	for r := 0; r < c.Size(); r++ {
		if r == c.rank {
			recv(r, out[r])
			continue
		}
		data := c.recv(r, kindCollective, tag)
		recv(r, data)
		c.world.putBuf(data)
	}
	c.world.tracer.End2(sp, "words_sent", words, "msgs", int64(c.Size()-1))
}

// BcastI64 broadcasts a single value from root.
func (c *Comm) BcastI64(root int, v int64) int64 {
	if c.rank == root {
		return c.Bcast(root, []int64{v})[0]
	}
	return c.Bcast(root, nil)[0]
}
