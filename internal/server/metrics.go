package server

import (
	"net/http"

	"repro/internal/obs"
)

// metricsContentType is the Prometheus text exposition format version the
// registry renders (obs.Registry.WritePrometheus).
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// buildMetrics registers the service's collectors on the registry created
// in New. Gauges and counters are func collectors reading the jobManager's
// counters under its mutex at scrape time — /metrics and /v1/stats are two
// renderings of the same state, never two sets of books. The two
// histograms (queue wait, run duration) are the only stateful collectors;
// the manager observes them as jobs reach a terminal state.
func (s *Server) buildMetrics(reg *obs.Registry) {
	m := s.jobs

	// lockedGauge reads one jobManager field under m.mu.
	lockedGauge := func(read func() float64) func() float64 {
		return func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return read()
		}
	}

	reg.GaugeFunc("parhipd_queue_depth",
		"Jobs waiting in the queue (not yet running).",
		lockedGauge(func() float64 { return float64(len(m.queue)) }))
	reg.GaugeFunc("parhipd_queue_capacity",
		"Queue slots before submissions are rejected with 429.",
		lockedGauge(func() float64 { return float64(m.queueCap) }))
	reg.GaugeFunc("parhipd_workers",
		"Worker pool size.",
		lockedGauge(func() float64 { return float64(m.workers) }))
	reg.GaugeFunc("parhipd_jobs_running",
		"Jobs currently occupying a worker.",
		lockedGauge(func() float64 { return float64(m.running) }))
	reg.GaugeFunc("parhipd_worker_utilization",
		"Fraction of the worker pool busy right now (running/workers).",
		lockedGauge(func() float64 {
			if m.workers == 0 {
				return 0
			}
			return float64(m.running) / float64(m.workers)
		}))

	reg.CounterFunc("parhipd_jobs_submitted_total",
		"Jobs accepted by POST /v1/jobs (including cache hits).",
		lockedGauge(func() float64 { return float64(m.submitted) }))
	reg.CounterFunc("parhipd_jobs_completed_total",
		"Jobs that reached the done state (cache hits included).",
		lockedGauge(func() float64 { return float64(m.completed) }))
	reg.CounterFunc("parhipd_jobs_failed_total",
		"Jobs that reached the failed state.",
		lockedGauge(func() float64 { return float64(m.failed) }))
	reg.CounterFunc("parhipd_jobs_cancelled_total",
		"Jobs cancelled by DELETE /v1/jobs/{id} or an expired timeout_ms.",
		lockedGauge(func() float64 { return float64(m.cancelled) }))
	reg.CounterFunc("parhipd_jobs_infeasible_total",
		"Jobs failed by the feasibility gate (result violated the balance bound).",
		lockedGauge(func() float64 { return float64(m.infeasible) }))
	reg.CounterFunc("parhipd_cache_hits_total",
		"Result cache hits.",
		lockedGauge(func() float64 { return float64(m.cacheHits) }))
	reg.CounterFunc("parhipd_cache_misses_total",
		"Result cache misses (jobs that ran the partitioner).",
		lockedGauge(func() float64 { return float64(m.cacheMisses) }))
	reg.CounterFunc("parhipd_core_runs_total",
		"Partitioner invocations (cache hits excluded).",
		lockedGauge(func() float64 { return float64(m.coreRuns) }))
	reg.CounterFunc("parhipd_comm_messages_total",
		"Messages sent across the simulated ranks of all core runs.",
		lockedGauge(func() float64 { return float64(m.comm.MessagesSent) }))
	reg.CounterFunc("parhipd_comm_bytes_total",
		"Wire bytes sent across the simulated ranks of all core runs.",
		lockedGauge(func() float64 { return float64(m.comm.BytesSent()) }))
	reg.CounterFunc("parhipd_transport_frames_total",
		"Frames handed to the rank transport across all core runs.",
		lockedGauge(func() float64 { return float64(m.transport.FramesSent) }))
	reg.CounterFunc("parhipd_transport_bytes_total",
		"Payload bytes handed to the rank transport across all core runs.",
		lockedGauge(func() float64 { return float64(m.transport.BytesSent) }))
	reg.CounterFunc("parhipd_transport_reconnects_total",
		"Transport reconnect attempts across all core runs (zero in-process).",
		lockedGauge(func() float64 { return float64(m.transport.Reconnects) }))
	reg.CounterFunc("parhipd_transport_peer_failures_total",
		"Peers declared dead by the transport across all core runs (zero in-process).",
		lockedGauge(func() float64 { return float64(m.transport.PeerFailures) }))

	reg.CounterFunc("parhipd_sclp_supersteps_total",
		"Label-propagation supersteps executed across all core runs (rank 0's view).",
		lockedGauge(func() float64 { return float64(m.par.Supersteps) }))
	reg.CounterFunc("parhipd_sclp_propose_seconds_total",
		"Wall seconds spent in the parallel propose half of supersteps.",
		lockedGauge(func() float64 { return float64(m.par.ProposeNS) / 1e9 }))
	reg.CounterFunc("parhipd_sclp_commit_seconds_total",
		"Wall seconds spent in the sequential commit half of supersteps.",
		lockedGauge(func() float64 { return float64(m.par.CommitNS) / 1e9 }))
	reg.CounterFunc("parhipd_sclp_worker_busy_seconds_total",
		"Summed per-lane busy seconds inside propose passes.",
		lockedGauge(func() float64 { return float64(m.par.BusyNS) / 1e9 }))
	reg.GaugeFunc("parhipd_sclp_workers",
		"Intra-rank worker threads per simulated rank (last core run).",
		lockedGauge(func() float64 { return float64(m.par.Workers) }))
	reg.GaugeFunc("parhipd_sclp_propose_utilization",
		"Mean fraction of propose wall time the worker lanes were busy.",
		lockedGauge(func() float64 { return m.par.Utilization() }))

	reg.GaugeFunc("parhipd_cache_entries",
		"Result cache occupancy.",
		func() float64 { return float64(m.cache.len()) })
	reg.GaugeFunc("parhipd_graphs",
		"Graphs in the in-memory store.",
		func() float64 { return float64(s.store.len()) })

	// Live-graph subsystem: streamed deltas, controller triggers, epoch
	// swaps and the lock-free placement read path.
	lv := s.live
	reg.GaugeFunc("parhipd_live_graphs",
		"Graphs promoted to live (streaming) mode.",
		func() float64 { return float64(lv.count()) })
	reg.CounterFunc("parhipd_live_deltas_applied_total",
		"Deltas applied to live graphs (replays excluded).",
		func() float64 { return float64(lv.deltasApplied.Load()) })
	reg.CounterFunc("parhipd_live_batches_total",
		"Delta batches accepted by POST /v1/graphs/{id}/updates (replays included).",
		func() float64 { return float64(lv.batches.Load()) })
	reg.CounterFunc("parhipd_live_batches_replayed_total",
		"Delta batches answered as idempotent sequence-number replays.",
		func() float64 { return float64(lv.batchesReplayed.Load()) })
	reg.CounterFunc("parhipd_live_repartitions_triggered_total",
		"Repartition jobs enqueued by the live controller (initial runs included).",
		func() float64 { return float64(lv.triggered.Load()) })
	reg.CounterFunc("parhipd_live_swaps_total",
		"Completed epoch swaps across live graphs.",
		func() float64 { return float64(lv.swaps.Load()) })
	reg.CounterFunc("parhipd_live_placement_lookups_total",
		"Placement lookups served from epoch snapshots.",
		func() float64 { return float64(lv.lookups.Load()) })
	reg.GaugeFunc("parhipd_live_max_churn_fraction",
		"Largest pending churn fraction across live graphs (edge churn since last swap / edges at swap).",
		lv.maxChurnFraction)
}

// handleMetrics serves GET /metrics in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metricsContentType)
	_ = s.reg.WritePrometheus(w)
}
