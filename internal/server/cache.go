package server

import (
	"container/list"
	"sync"

	"repro"
)

// cacheEntry is one cached partitioning result. The Result is shared
// read-only between the cache and every job served from it.
type cacheEntry struct {
	key string
	res *parhip.Result
}

// resultCache is a fixed-capacity LRU map from cache key (graph fingerprint
// + canonicalized options, see jobKey) to a completed partitioning result.
// It is safe for concurrent use.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result for key and marks it most recently used.
func (c *resultCache) get(key string) (*parhip.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put inserts (or refreshes) key, evicting the least recently used entry
// when over capacity.
func (c *resultCache) put(key string, res *parhip.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *resultCache) capacity() int { return c.cap }
