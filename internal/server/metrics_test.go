package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro"
	"repro/internal/graph"
)

// getRaw fetches path and returns status, Content-Type and body.
func (e *testEnv) getRaw(path string) (int, string, string) {
	e.t.Helper()
	resp, err := e.ts.Client().Get(e.ts.URL + path)
	if err != nil {
		e.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestMetricsExposition is the /metrics acceptance test: after one cold job
// and one cache hit, the endpoint serves valid Prometheus text exposition
// including the job-duration histogram buckets and the job/cache counters,
// consistent with what /v1/stats reports.
func TestMetricsExposition(t *testing.T) {
	e := newEnv(t, Config{Workers: 2})
	id := e.uploadMetis(testGraph(5))

	body := fmt.Sprintf(`{"graph_id":%q,"k":2,"options":{"mode":"minimal","pes":2}}`, id)
	v, _ := e.submit(body)
	if v = e.await(v.ID); v.State != StateDone {
		t.Fatalf("job finished %s: %s", v.State, v.Error)
	}
	if v2, code := e.submit(body); code != http.StatusOK || !v2.Cached {
		t.Fatalf("second submit: status %d cached=%v, want cached 200", code, v2.Cached)
	}

	code, ctype, text := e.getRaw("/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("GET /metrics Content-Type = %q, want Prometheus text exposition 0.0.4", ctype)
	}

	for _, want := range []string{
		"# TYPE parhipd_job_run_seconds histogram",
		"parhipd_job_run_seconds_bucket{le=\"+Inf\"} 1",
		"parhipd_job_run_seconds_count 1",
		"parhipd_job_run_seconds_sum ",
		"# TYPE parhipd_job_queue_wait_seconds histogram",
		"parhipd_job_queue_wait_seconds_count 1",
		"# TYPE parhipd_jobs_submitted_total counter",
		"parhipd_jobs_submitted_total 2",
		"parhipd_jobs_completed_total 2",
		"parhipd_jobs_failed_total 0",
		"parhipd_cache_hits_total 1",
		"parhipd_cache_misses_total 1",
		"parhipd_core_runs_total 1",
		"# TYPE parhipd_queue_depth gauge",
		"parhipd_queue_depth 0",
		"parhipd_worker_utilization 0",
		"parhipd_graphs 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}

	// Well-formedness: every non-comment line is "name[{labels}] value",
	// every # line is HELP or TYPE.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("unexpected comment line %q", line)
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("sample line %q: want exactly 'name value'", line)
		}
	}
}

// TestJobTrace exercises the trace download path end to end: a job
// submitted with "trace": true exposes the spans its partitioner recorded
// through Options.Trace as Chrome trace-event JSON, an untraced job 404s,
// and a traced resubmission answered from cache 409s (no run, no trace).
func TestJobTrace(t *testing.T) {
	cfg := Config{Workers: 2}
	cfg.PartitionFn = func(ctx context.Context, g *graph.Graph, k int32, opt parhip.Options,
		prev *parhip.Partition, onProgress func(parhip.ProgressEvent)) (parhip.Result, error) {
		// Record one span per simulated rank through the job's tracer, the
		// way core.RunCtx does via the world. Nil-safe: untraced jobs pass
		// opt.Trace == nil and this records nothing.
		for r := 0; r < opt.PEs; r++ {
			sp := opt.Trace.Begin(r, "test.partition")
			opt.Trace.End1(sp, "k", int64(k))
		}
		return parhip.PartitionGraph(g, k, opt)
	}
	e := newEnv(t, cfg)
	id := e.uploadMetis(testGraph(6))

	traced := fmt.Sprintf(`{"graph_id":%q,"k":2,"options":{"mode":"minimal","pes":2},"trace":true}`, id)
	v, _ := e.submit(traced)
	if v = e.await(v.ID); v.State != StateDone {
		t.Fatalf("traced job finished %s: %s", v.State, v.Error)
	}

	code, ctype, body := e.getRaw("/v1/jobs/" + v.ID + "/trace")
	if code != http.StatusOK {
		t.Fatalf("GET trace: status %d: %s", code, body)
	}
	if ctype != "application/json" {
		t.Errorf("trace Content-Type = %q, want application/json", ctype)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spans := 0
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "test.partition" {
			spans++
		}
	}
	if spans != 2 {
		t.Errorf("trace has %d test.partition spans, want one per rank (2)", spans)
	}

	// The trace flag must not split the cache: the traced twin of the same
	// submission is answered from cache, and its trace download refuses
	// cleanly instead of serving an empty recording.
	v2, code2 := e.submit(traced)
	if code2 != http.StatusOK || !v2.Cached {
		t.Fatalf("traced resubmit: status %d cached=%v, want cached 200", code2, v2.Cached)
	}
	if code, _, body := e.getRaw("/v1/jobs/" + v2.ID + "/trace"); code != http.StatusConflict {
		t.Errorf("trace of cached job: status %d (%s), want 409", code, body)
	}

	// A job never submitted with the flag has no trace at all.
	plain := fmt.Sprintf(`{"graph_id":%q,"k":4,"options":{"mode":"minimal","pes":2}}`, id)
	v3, _ := e.submit(plain)
	if v3 = e.await(v3.ID); v3.State != StateDone {
		t.Fatalf("plain job finished %s: %s", v3.State, v3.Error)
	}
	if code, _, _ := e.getRaw("/v1/jobs/" + v3.ID + "/trace"); code != http.StatusNotFound {
		t.Errorf("trace of untraced job: status %d, want 404", code)
	}
}
