package server

// Live graphs: the service layer of internal/live. A stored graph can be
// promoted to a live graph (POST /v1/graphs/{id}/live), after which
// clients stream sequence-numbered delta batches into it, read placements
// lock-cheap from the current epoch's partition, and the controller
// auto-enqueues repartition jobs on the ordinary job queue whenever
// accumulated churn, imbalance or staleness crosses the configured policy
// thresholds. Finished jobs swap in atomically under the epoch counter;
// failed or cancelled runs return their churn to the counters so the
// drift is retried.

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/live"
	"repro/internal/obs"
)

// maxDeltaBatch bounds one POST /v1/graphs/{id}/updates batch.
const maxDeltaBatch = 1 << 20

// liveGraph is one promoted graph: the mutable overlay graph plus the
// controller and job-lifecycle state. lg has its own internal locking and
// the placement read path never touches ls.mu — lookups stay cheap while
// a repartition materializes or swaps.
type liveGraph struct {
	id     string
	lg     *live.Graph
	tracer *obs.Tracer // nil unless enabled with "trace": true

	mu       sync.Mutex
	ctrl     *live.Controller // guarded by mu
	k        int32            // guarded by mu
	opts     parhip.Options   // guarded by mu
	optsView jobOptions       // guarded by mu
	curJobID string           // guarded by mu: in-flight repartition job ("" idle)
	autoRuns int64            // guarded by mu: repartition jobs triggered (incl. initial)
	swaps    int64            // guarded by mu: completed epoch swaps
	lastErr  string           // guarded by mu: last failed/aborted run ("" none)
}

// liveManager owns the live-graph registry and the aggregate live metrics.
// The map mutex is held only for lookups and registration; all per-graph
// work runs under the liveGraph's own mutex or the live.Graph's internals.
type liveManager struct {
	jobs   *jobManager
	logger *slog.Logger

	mu   sync.RWMutex
	byID map[string]*liveGraph // guarded by mu

	stop     chan struct{} // closed once by close()
	stopOnce sync.Once

	// Aggregate metrics (atomics: touched on request paths).
	deltasApplied   atomic.Int64
	batches         atomic.Int64
	batchesReplayed atomic.Int64
	triggered       atomic.Int64
	swaps           atomic.Int64
	lookups         atomic.Int64
}

// sweepInterval paces the background policy sweep. Ingest-driven
// evaluation covers graphs that keep receiving batches; the sweep exists
// so the max-staleness trigger fires even when a graph goes quiet with
// deltas still pending.
const sweepInterval = 100 * time.Millisecond

func newLiveManager(jobs *jobManager, logger *slog.Logger) *liveManager {
	lm := &liveManager{
		jobs:   jobs,
		logger: logger,
		byID:   make(map[string]*liveGraph),
		stop:   make(chan struct{}),
	}
	go lm.sweep()
	return lm
}

// close stops the background sweep. Idempotent.
func (lm *liveManager) close() {
	lm.stopOnce.Do(func() { close(lm.stop) })
}

// sweep re-evaluates every live graph's policy on a clock, so triggers
// that depend on elapsed time (max staleness, debounce expiry) do not
// wait for the next delta batch to arrive.
func (lm *liveManager) sweep() {
	t := time.NewTicker(sweepInterval)
	defer t.Stop()
	for {
		select {
		case <-lm.stop:
			return
		case <-t.C:
		}
		lm.mu.RLock()
		graphs := make([]*liveGraph, 0, len(lm.byID))
		for _, ls := range lm.byID {
			graphs = append(graphs, ls)
		}
		lm.mu.RUnlock()
		for _, ls := range graphs {
			lm.evaluate(ls)
		}
	}
}

func (lm *liveManager) get(id string) (*liveGraph, bool) {
	lm.mu.RLock()
	defer lm.mu.RUnlock()
	ls, ok := lm.byID[id]
	return ls, ok
}

// isLive reports whether graph id has been promoted; the graph-delete
// handler refuses to drop the base graph of a live overlay.
func (lm *liveManager) isLive(id string) bool {
	_, ok := lm.get(id)
	return ok
}

// maxChurnFraction is the /metrics churn gauge: the largest churn
// fraction currently pending across live graphs.
func (lm *liveManager) maxChurnFraction() float64 {
	lm.mu.RLock()
	graphs := make([]*liveGraph, 0, len(lm.byID))
	for _, ls := range lm.byID {
		graphs = append(graphs, ls)
	}
	lm.mu.RUnlock()
	mx := 0.0
	for _, ls := range graphs {
		if c := ls.lg.Stats().ChurnFraction; c > mx {
			mx = c
		}
	}
	return mx
}

func (lm *liveManager) count() int {
	lm.mu.RLock()
	defer lm.mu.RUnlock()
	return len(lm.byID)
}

// enable promotes sg into a live graph and schedules the initial cold
// partition. Fails when the graph is already live.
func (lm *liveManager) enable(sg *storedGraph, k int32, opts parhip.Options, view jobOptions,
	policy live.Policy, trace bool) (*liveGraph, error) {
	ls := &liveGraph{
		id:       sg.ID,
		lg:       live.NewGraph(sg.g),
		ctrl:     live.NewController(policy),
		k:        k,
		opts:     opts,
		optsView: view,
	}
	if trace {
		ls.tracer = obs.NewTracer(1)
		ls.lg.SetTracer(ls.tracer)
	}
	lm.mu.Lock()
	if _, exists := lm.byID[sg.ID]; exists {
		lm.mu.Unlock()
		return nil, fmt.Errorf("graph %s is already live", sg.ID)
	}
	lm.byID[sg.ID] = ls
	lm.mu.Unlock()

	ls.mu.Lock()
	err := lm.startRepartitionLocked(ls, "initial")
	ls.mu.Unlock()
	if err != nil {
		lm.logger.Warn("live: initial partition not scheduled", "graph", ls.id, "err", err)
	}
	return ls, nil
}

// startRepartitionLocked freezes a snapshot and enqueues the repartition
// job, recording the trigger with the controller only once the job is
// actually queued. Callers hold ls.mu.
//
//parhip:holds mu
func (lm *liveManager) startRepartitionLocked(ls *liveGraph, reason string) error {
	snap, err := ls.lg.BeginRepartition(ls.k, ls.opts.Eps)
	if err != nil {
		return err
	}
	// The job enters the ordinary queue under a synthetic store entry
	// carrying the materialized snapshot: the cache key is built from the
	// snapshot's own fingerprint (plus the lifted previous partition), so
	// per-epoch results cache correctly and the job is visible in /v1/jobs
	// under the live graph's id.
	syn := &storedGraph{
		ID:          ls.id,
		Fingerprint: snap.G.Fingerprint(),
		N:           snap.G.NumNodes(),
		M:           snap.G.NumEdges(),
		g:           snap.G,
	}
	j, err := lm.jobs.submit(syn, ls.k, ls.opts, ls.optsView, snap.Prev, "", 0, false)
	if err != nil {
		ls.lg.AbortRepartition()
		return fmt.Errorf("enqueue repartition: %w", err)
	}
	now := time.Now()
	ls.ctrl.MarkTriggered(now)
	ls.curJobID = j.id
	ls.autoRuns++
	lm.triggered.Add(1)
	lm.logger.Info("live: repartition triggered",
		"graph", ls.id, "job", j.id, "reason", reason, "seq", snap.Seq,
		"n", snap.G.NumNodes(), "m", snap.G.NumEdges(), "warm", snap.Prev != nil)
	go lm.waitAndSwap(ls, j)
	return nil
}

// waitAndSwap blocks until j is terminal, then swaps the result in (or
// returns the snapshot's churn on failure) and re-evaluates the
// controller — drift that accumulated during the run may already warrant
// the next run.
func (lm *liveManager) waitAndSwap(ls *liveGraph, j *job) {
	<-j.done
	p, err := lm.jobs.resultPartition(j.id)

	ls.mu.Lock()
	ls.curJobID = ""
	if err != nil {
		ls.lg.AbortRepartition()
		ls.lastErr = fmt.Sprintf("job %s: %v", j.id, err)
		ls.mu.Unlock()
		lm.logger.Warn("live: repartition did not complete", "graph", ls.id, "job", j.id, "err", err)
		return
	}
	if err := ls.lg.CompleteRepartition(p); err != nil {
		ls.lastErr = fmt.Sprintf("job %s: swap: %v", j.id, err)
		ls.mu.Unlock()
		lm.logger.Error("live: swap failed", "graph", ls.id, "job", j.id, "err", err)
		return
	}
	ls.lastErr = ""
	ls.swaps++
	lm.swaps.Add(1)
	pl := ls.lg.Placement()
	lm.logger.Info("live: partition swapped",
		"graph", ls.id, "job", j.id, "epoch", pl.Epoch, "cut", pl.Cut(), "feasible", pl.Feasible())
	lm.evaluateLocked(ls)
	ls.mu.Unlock()
}

// evaluate runs one controller decision for ls and starts a repartition
// when it triggers.
func (lm *liveManager) evaluate(ls *liveGraph) live.Decision {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return lm.evaluateLocked(ls)
}

//parhip:holds mu
func (lm *liveManager) evaluateLocked(ls *liveGraph) live.Decision {
	st := ls.lg.Stats()
	d := ls.ctrl.Decide(live.State{
		Now:           time.Now(),
		ChurnFraction: st.ChurnFraction,
		Imbalance:     st.Imbalance,
		PendingDeltas: st.PendingDeltas,
		InFlight:      st.InFlight,
		Epoch:         st.Epoch,
	})
	if d.Trigger {
		if err := lm.startRepartitionLocked(ls, d.Reason); err != nil {
			lm.logger.Warn("live: trigger not enqueued", "graph", ls.id, "reason", d.Reason, "err", err)
		}
	} else {
		lm.logger.Debug("live: controller decision", "graph", ls.id, "reason", d.Reason, "detail", d.Detail)
	}
	return d
}

// --- wire forms ---------------------------------------------------------

// livePolicyView is the wire form of live.Policy.
type livePolicyView struct {
	// ChurnFraction of 0 selects the 0.05 default; negative disables.
	ChurnFraction  float64 `json:"churn_fraction,omitempty"`
	MaxImbalance   float64 `json:"max_imbalance,omitempty"`
	MinIntervalMS  int64   `json:"min_interval_ms,omitempty"`
	MaxStalenessMS int64   `json:"max_staleness_ms,omitempty"`
}

func (v livePolicyView) toPolicy() (live.Policy, error) {
	if v.MinIntervalMS < 0 || v.MaxStalenessMS < 0 {
		return live.Policy{}, fmt.Errorf("policy intervals must be >= 0")
	}
	if v.MaxImbalance < 0 {
		return live.Policy{}, fmt.Errorf("max_imbalance must be >= 0")
	}
	return live.Policy{
		ChurnFraction: v.ChurnFraction,
		MaxImbalance:  v.MaxImbalance,
		MinInterval:   time.Duration(v.MinIntervalMS) * time.Millisecond,
		MaxStaleness:  time.Duration(v.MaxStalenessMS) * time.Millisecond,
	}, nil
}

func policyView(p live.Policy) livePolicyView {
	return livePolicyView{
		ChurnFraction:  p.ChurnFraction,
		MaxImbalance:   p.MaxImbalance,
		MinIntervalMS:  p.MinInterval.Milliseconds(),
		MaxStalenessMS: p.MaxStaleness.Milliseconds(),
	}
}

type liveEnableRequest struct {
	K       int32          `json:"k"`
	Options jobOptions     `json:"options"`
	Policy  livePolicyView `json:"policy"`
	// Trace records live-graph spans (delta apply, materialize, swap),
	// downloadable from GET /v1/graphs/{id}/live/trace.
	Trace bool `json:"trace,omitempty"`
}

// deltaView is the wire form of one mutation.
type deltaView struct {
	Op string `json:"op"` // add_edge | remove_edge | add_node | set_node_weight
	U  int32  `json:"u,omitempty"`
	V  int32  `json:"v,omitempty"`
	W  int64  `json:"w,omitempty"`
}

func (d deltaView) toDelta() (live.Delta, error) {
	var op live.Op
	switch d.Op {
	case "add_edge":
		op = live.OpAddEdge
	case "remove_edge":
		op = live.OpRemoveEdge
	case "add_node":
		op = live.OpAddNode
	case "set_node_weight":
		op = live.OpSetNodeWeight
	default:
		return live.Delta{}, fmt.Errorf("unknown op %q", d.Op)
	}
	return live.Delta{Op: op, U: d.U, V: d.V, W: d.W}, nil
}

type updateRequest struct {
	Seq    int64       `json:"seq"`
	Deltas []deltaView `json:"deltas"`
}

type updateResponse struct {
	GraphID  string `json:"graph_id"`
	Seq      int64  `json:"seq"`
	Applied  int    `json:"applied"`
	Replayed bool   `json:"replayed,omitempty"`
	Epoch    int64  `json:"epoch"`
	// Decision echoes the controller's post-batch evaluation.
	Decision liveDecisionView `json:"decision"`
}

type liveDecisionView struct {
	Trigger bool   `json:"trigger"`
	Reason  string `json:"reason"`
	Detail  string `json:"detail,omitempty"`
}

// liveStatusView is the GET /v1/graphs/{id}/live payload.
type liveStatusView struct {
	GraphID string         `json:"graph_id"`
	K       int32          `json:"k"`
	Options jobOptions     `json:"options"`
	Policy  livePolicyView `json:"policy"`

	Epoch         int64   `json:"epoch"`
	Seq           int64   `json:"seq"`
	N             int32   `json:"n"`
	M             int64   `json:"m"`
	PendingDeltas int64   `json:"pending_deltas"`
	ChurnFraction float64 `json:"churn_fraction"`
	Imbalance     float64 `json:"imbalance"`

	InFlight         bool   `json:"in_flight"`
	RepartitionJobID string `json:"repartition_job_id,omitempty"`
	AutoRepartitions int64  `json:"auto_repartitions"`
	Swaps            int64  `json:"swaps"`
	LastError        string `json:"last_error,omitempty"`

	// Cut/Feasible describe the current epoch's partition on its snapshot
	// graph (absent before the first swap).
	Cut      *int64 `json:"cut,omitempty"`
	Feasible *bool  `json:"feasible,omitempty"`

	LastDecision liveDecisionView `json:"last_decision"`
}

func decisionView(d live.Decision) liveDecisionView {
	return liveDecisionView{Trigger: d.Trigger, Reason: d.Reason, Detail: d.Detail}
}

func (lm *liveManager) statusView(ls *liveGraph) liveStatusView {
	st := ls.lg.Stats()
	ls.mu.Lock()
	v := liveStatusView{
		GraphID:          ls.id,
		K:                ls.k,
		Options:          ls.optsView,
		Policy:           policyView(ls.ctrl.Policy()),
		Epoch:            st.Epoch,
		Seq:              st.Seq,
		N:                st.N,
		M:                st.M,
		PendingDeltas:    st.PendingDeltas,
		ChurnFraction:    st.ChurnFraction,
		Imbalance:        st.Imbalance,
		InFlight:         st.InFlight,
		RepartitionJobID: ls.curJobID,
		AutoRepartitions: ls.autoRuns,
		Swaps:            ls.swaps,
		LastError:        ls.lastErr,
		LastDecision:     decisionView(ls.ctrl.LastDecision()),
	}
	ls.mu.Unlock()
	if pl := ls.lg.Placement(); pl != nil {
		cut, feas := pl.Cut(), pl.Feasible()
		v.Cut, v.Feasible = &cut, &feas
	}
	return v
}

// --- handlers -----------------------------------------------------------

// handleLiveEnable promotes a stored graph to a live graph and schedules
// its initial partition. 409 when already live, 404 for unknown graphs.
func (s *Server) handleLiveEnable(w http.ResponseWriter, r *http.Request) {
	var req liveEnableRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode live request: %v", err)
		return
	}
	sg, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no graph %q", r.PathValue("id"))
		return
	}
	if req.K < 1 {
		writeError(w, http.StatusBadRequest, "k must be >= 1, got %d", req.K)
		return
	}
	if req.K > sg.N {
		writeError(w, http.StatusBadRequest, "k = %d exceeds graph %s's %d nodes", req.K, sg.ID, sg.N)
		return
	}
	opts, view, err := canonOptions(req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid options: %v", err)
		return
	}
	policy, err := req.Policy.toPolicy()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid policy: %v", err)
		return
	}
	ls, err := s.live.enable(sg, req.K, opts, view, policy, req.Trace)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, s.live.statusView(ls))
}

// handleLiveStatus serves GET /v1/graphs/{id}/live.
func (s *Server) handleLiveStatus(w http.ResponseWriter, r *http.Request) {
	ls, ok := s.live.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "graph %q is not live", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.live.statusView(ls))
}

// handleLiveTrace serves the live graph's span trace (delta applies,
// materializations, swaps) for graphs enabled with "trace": true.
func (s *Server) handleLiveTrace(w http.ResponseWriter, r *http.Request) {
	ls, ok := s.live.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "graph %q is not live", r.PathValue("id"))
		return
	}
	if ls.tracer == nil {
		writeError(w, http.StatusNotFound, "graph %s was not enabled with \"trace\": true", ls.id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = ls.tracer.WriteJSON(w)
}

// handleLiveUpdates applies one sequence-numbered delta batch and then
// lets the controller decide whether the accumulated drift warrants a
// repartition. Batch replays (seq at or below the last applied) are
// idempotent 200s; sequence gaps are 409s telling the client to resend.
func (s *Server) handleLiveUpdates(w http.ResponseWriter, r *http.Request) {
	ls, ok := s.live.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "graph %q is not live (POST /v1/graphs/{id}/live first)", r.PathValue("id"))
		return
	}
	var req updateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode update request: %v", err)
		return
	}
	if req.Seq < 1 {
		writeError(w, http.StatusBadRequest, "seq must be >= 1, got %d", req.Seq)
		return
	}
	if len(req.Deltas) > maxDeltaBatch {
		writeError(w, http.StatusRequestEntityTooLarge, "batch of %d deltas exceeds %d", len(req.Deltas), maxDeltaBatch)
		return
	}
	deltas := make([]live.Delta, len(req.Deltas))
	for i, dv := range req.Deltas {
		d, err := dv.toDelta()
		if err != nil {
			writeError(w, http.StatusBadRequest, "delta %d: %v", i, err)
			return
		}
		deltas[i] = d
	}
	res, err := ls.lg.ApplyBatch(req.Seq, deltas)
	if err != nil {
		if errors.Is(err, live.ErrSequenceGap) {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.live.batches.Add(1)
	if res.Replayed {
		s.live.batchesReplayed.Add(1)
	} else {
		s.live.deltasApplied.Add(int64(res.Applied))
	}
	d := s.live.evaluate(ls)
	resp := updateResponse{
		GraphID:  ls.id,
		Seq:      res.Seq,
		Applied:  res.Applied,
		Replayed: res.Replayed,
		Decision: decisionView(d),
	}
	if pl := ls.lg.Placement(); pl != nil {
		resp.Epoch = pl.Epoch
	}
	writeJSON(w, http.StatusOK, resp)
}

// placementView is the GET /v1/graphs/{id}/placement/{v} payload.
type placementView struct {
	GraphID string `json:"graph_id"`
	Node    int32  `json:"node"`
	Block   int32  `json:"block"`
	Epoch   int64  `json:"epoch"`
	// Provisional marks a node placed heuristically (added after the
	// epoch's snapshot) rather than by the partitioner.
	Provisional bool `json:"provisional,omitempty"`
}

// handlePlacement answers a single node's block from the current epoch's
// placement. The read path is one atomic pointer load plus array
// indexing — it stays this cheap during delta application and in-flight
// repartitions. 409 before the initial partition exists.
func (s *Server) handlePlacement(w http.ResponseWriter, r *http.Request) {
	ls, ok := s.live.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "graph %q is not live", r.PathValue("id"))
		return
	}
	v64, err := strconv.ParseInt(r.PathValue("v"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "node id %q: %v", r.PathValue("v"), err)
		return
	}
	s.live.lookups.Add(1)
	pl := ls.lg.Placement()
	if pl == nil {
		writeError(w, http.StatusConflict,
			"graph %s has no placement yet (initial partition in progress)", ls.id)
		return
	}
	b, ok := pl.Block(int32(v64))
	if !ok {
		writeError(w, http.StatusNotFound, "node %d not in placement (epoch %d answers %d nodes)",
			v64, pl.Epoch, pl.NumNodes())
		return
	}
	writeJSON(w, http.StatusOK, placementView{
		GraphID:     ls.id,
		Node:        int32(v64),
		Block:       b,
		Epoch:       pl.Epoch,
		Provisional: pl.Provisional(int32(v64)),
	})
}
