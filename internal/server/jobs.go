package server

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/mpi/transport"
	"repro/internal/obs"
	"repro/internal/sclp"
)

// JobState is the lifecycle of a partitioning job.
type JobState string

// Job states. A cache hit at submission time jumps straight to done.
// Cancelled is terminal: a queued job cancelled by DELETE (or an expired
// timeout_ms) never reaches a worker, and a running one unwinds its
// partitioner cooperatively, freeing the worker.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// PartitionFunc computes a partition; the production implementation wraps
// a parhip.Partitioner session. prev, when non-nil, requests a
// migration-aware repartitioning run seeded with that previous partition.
// It must honor ctx (return promptly with ctx.Err() once cancelled) and
// may report live progress through onProgress (never nil; called from the
// partitioner's coordinating rank). Tests substitute counting/blocking
// wrappers.
type PartitionFunc func(ctx context.Context, g *graph.Graph, k int32, opt parhip.Options,
	prev *parhip.Partition, onProgress func(parhip.ProgressEvent)) (parhip.Result, error)

// job is the manager-internal record. Every field is guarded by the
// manager's mutex — except ctx/cancel, which are set once at submission
// and safe to use concurrently; workers take the mutex for state
// transitions and release it around the actual partitioning call.
type job struct {
	id        string
	graphID   string
	g         *graph.Graph
	k         int32
	opts      parhip.Options
	optsView  jobOptions
	prev      *parhip.Partition // previous partition for repartition jobs
	prevJobID string            // source job of prev ("" for inline/none)
	repart    bool              // submitted with a previous partition
	key       string
	state     JobState
	cached    bool
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    *parhip.Result

	// ctx bounds the job's run: it carries the optional submission
	// timeout_ms deadline and is cancelled by DELETE /v1/jobs/{id}. Nil
	// for jobs answered from cache at submission.
	ctx       context.Context
	cancel    context.CancelFunc
	timeoutMS int64
	cancelReq bool // DELETE seen (distinguishes cancel from timeout)
	progress  *parhip.ProgressEvent

	// tracer records per-rank spans when the job was submitted with
	// "trace": true and actually ran the partitioner (never allocated for
	// cache hits). Served by GET /v1/jobs/{id}/trace once terminal.
	tracer *parhip.Tracer

	// done is closed exactly once when the job reaches a terminal state
	// (done, failed or cancelled — every transition funnels through
	// pushTimingLocked). The live manager blocks on it to swap results in
	// without polling.
	done chan struct{}
}

// JobTiming is one completed job's timing record, exposed by /v1/stats.
type JobTiming struct {
	ID        string  `json:"id"`
	GraphID   string  `json:"graph_id"`
	K         int32   `json:"k"`
	Cached    bool    `json:"cached"`
	Failed    bool    `json:"failed,omitempty"`
	Cancelled bool    `json:"cancelled,omitempty"`
	QueueMS   float64 `json:"queue_ms"`
	RunMS     float64 `json:"run_ms"`
	Cut       int64   `json:"cut"`
}

// recentTimings bounds the per-job timing history kept for /v1/stats.
const recentTimings = 64

// maxRetainedJobs bounds the finished-job records kept for polling. Beyond
// it the oldest finished jobs are evicted (later polls get 404), keeping a
// long-running daemon's memory bounded; queued/running jobs are never
// evicted.
const maxRetainedJobs = 4096

// jobManager owns the queue, the bounded worker pool and the result cache,
// and aggregates the service counters reported by /v1/stats.
//
// The queue is a mutex/cond-guarded slice rather than a channel so that a
// job cancelled while queued can be removed on the spot: its slot is free
// for new submissions immediately, instead of a corpse occupying channel
// capacity until a worker happens to dequeue it.
type jobManager struct {
	partition PartitionFunc
	wg        sync.WaitGroup
	cache     *resultCache

	mu       sync.Mutex
	qcond    *sync.Cond // signalled on enqueue and close
	queue    []*job     // pending jobs, FIFO; guarded by mu
	queueCap int
	closed   bool            // guarded by mu
	nextID   int64           // guarded by mu
	jobs     map[string]*job // guarded by mu
	order    []string        // submission order, for listing; guarded by mu
	workers  int
	running  int // guarded by mu

	draining bool // guarded by mu: shutdown drain deadline expired

	submitted   int64 // guarded by mu
	completed   int64 // guarded by mu
	failed      int64 // guarded by mu
	cancelled   int64 // guarded by mu
	infeasible  int64 // guarded by mu
	cacheHits   int64 // guarded by mu
	cacheMisses int64 // guarded by mu

	coreRuns    int64           // guarded by mu
	coarsenTime time.Duration   // guarded by mu
	initTime    time.Duration   // guarded by mu
	refineTime  time.Duration   // guarded by mu
	totalTime   time.Duration   // guarded by mu
	comm        mpi.Stats       // guarded by mu
	transport   transport.Stats // guarded by mu
	par         sclp.ParStats   // guarded by mu: intra-rank worksharing totals
	cutSum      int64           // guarded by mu

	// queueWait/runDur are the /metrics latency histograms, observed by
	// runJob for every job that occupies a worker (cache hits at
	// submission never queue and are excluded).
	queueWait *obs.Histogram
	runDur    *obs.Histogram

	recent []JobTiming // ring, newest last; guarded by mu
}

func newJobManager(workers, queueSize, cacheSize int, fn PartitionFunc, reg *obs.Registry) *jobManager {
	m := &jobManager{
		partition: fn,
		queueCap:  queueSize,
		cache:     newResultCache(cacheSize),
		jobs:      make(map[string]*job),
		workers:   workers,
		queueWait: reg.NewHistogram("parhipd_job_queue_wait_seconds",
			"Time jobs spent queued before a worker picked them up.", obs.DurationBuckets),
		runDur: reg.NewHistogram("parhipd_job_run_seconds",
			"Wall-clock partitioner run time per job (cache hits excluded).", obs.DurationBuckets),
	}
	m.qcond = sync.NewCond(&m.mu)
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// close drains the queue (workers finish every accepted job) and waits for
// the pool to exit. Submissions after close fail. Unbounded: a stuck job
// holds close forever — daemons should prefer shutdown with a deadline.
func (m *jobManager) close() { _ = m.shutdown(context.Background()) }

// shutdown stops accepting submissions and drains the queue like close,
// but bounds the wait by ctx: once the deadline passes, every job still
// queued or running is cancelled cooperatively (the partitioner unwinds at
// its next superstep) and the pool is waited for. Returns nil on a full
// drain, ctx.Err() when the drain was cut short. Idempotent and safe to
// call concurrently.
func (m *jobManager) shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.qcond.Broadcast()
	m.mu.Unlock()

	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Drain deadline expired: abort the stragglers. Queued jobs are dropped
	// at dequeue (the ctx check in runJob), running ones unwind through the
	// partitioner's cooperative cancellation; both land in the cancelled
	// terminal state, never in the cache.
	m.mu.Lock()
	m.draining = true
	for _, id := range m.order {
		if j := m.jobs[id]; (j.state == StateQueued || j.state == StateRunning) && j.cancel != nil {
			j.cancel()
		}
	}
	m.mu.Unlock()
	<-done
	return ctx.Err()
}

var (
	errQueueFull = fmt.Errorf("job queue full")
	errClosed    = fmt.Errorf("server shutting down")
)

// jobKey canonicalizes the (graph, previous partition, options) triple into
// the cache key. The options half lists every field that influences the
// result, with defaults already applied (canonOptions), so e.g. eps=0 and
// eps=0.03 share a key. Repartition jobs carry the previous partition's
// content checksum: the same graph repartitioned from two different
// previous states is two different results.
func jobKey(fingerprint string, k int32, prev *parhip.Partition, o parhip.Options) string {
	var b strings.Builder
	b.WriteString(fingerprint)
	b.WriteString("|k=")
	b.WriteString(strconv.FormatInt(int64(k), 10))
	b.WriteString("|prev=")
	if prev != nil {
		b.WriteString(prev.Checksum())
	} else {
		b.WriteString("none")
	}
	fmt.Fprintf(&b, "|mode=%d|class=%d|eps=%.17g|seed=%d|pes=%d|obj=%d|budget=%d",
		o.Mode, o.Class, o.Eps, o.Seed, o.PEs, o.Objective, o.EvoTimeBudget)
	return b.String()
}

// submit registers a job for sg. On a cache hit the job completes
// immediately without entering the queue; otherwise it is appended to the
// queue slice for the worker pool, or rejected with errQueueFull when the
// queue is at capacity. The whole decision runs under the manager mutex,
// making the capacity check atomic with the closed check and with
// registration (no partially registered jobs visible to concurrent
// submissions).
func (m *jobManager) submit(sg *storedGraph, k int32, opts parhip.Options, view jobOptions,
	prev *parhip.Partition, prevJobID string, timeoutMS int64, trace bool) (*job, error) {
	key := jobKey(sg.Fingerprint, k, prev, opts)
	now := time.Now()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errClosed
	}
	m.nextID++
	j := &job{
		id:        fmt.Sprintf("j%d", m.nextID),
		graphID:   sg.ID,
		g:         sg.g,
		k:         k,
		opts:      opts,
		optsView:  view,
		prev:      prev,
		prevJobID: prevJobID,
		repart:    prev != nil,
		key:       key,
		state:     StateQueued,
		submitted: now,
		timeoutMS: timeoutMS,
		done:      make(chan struct{}),
	}

	if res, ok := m.cache.get(key); ok {
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		m.submitted++
		m.cacheHits++
		m.finishLocked(j, res, true, now)
		return j, nil
	}

	if len(m.queue) >= m.queueCap {
		m.nextID--
		return nil, errQueueFull
	}

	// Like TimeoutMS, the trace flag is deliberately not part of the cache
	// key: tracing must not change the result, so traced and untraced twins
	// share an entry. The tracer is attached through Options.Trace, which
	// jobKey never reads. Allocated only past the cache-hit fast path — a
	// job answered from cache records no spans and has no trace.
	if trace {
		j.tracer = parhip.NewTracer(opts.PEs)
		j.opts.Trace = j.tracer
	}

	// The per-job context is rooted in Background, not the submission
	// request: the job outlives the HTTP exchange. The timeout clock
	// starts now, covering queue time as well as the run.
	ctx := context.Background()
	if timeoutMS > 0 {
		j.ctx, j.cancel = context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
	} else {
		j.ctx, j.cancel = context.WithCancel(ctx)
	}

	m.queue = append(m.queue, j)
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.submitted++
	m.qcond.Signal()
	if timeoutMS > 0 {
		// Realize a queue-time expiry eagerly: without this, a timed-out
		// job would keep reporting "queued" and holding its queue slot
		// until a worker happened to pop it. Firing after the job left the
		// queued state is a no-op.
		time.AfterFunc(time.Duration(timeoutMS)*time.Millisecond, func() { m.expireQueued(j) })
	}
	return j, nil
}

// expireQueued cancels j if its timeout fired while it was still waiting
// in the queue, freeing the slot immediately.
func (m *jobManager) expireQueued(j *job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j.state != StateQueued {
		return
	}
	for i, q := range m.queue {
		if q == j {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			break
		}
	}
	m.cancelLocked(j, fmt.Sprintf("timeout after %dms while queued", j.timeoutMS), time.Now())
}

// cancelJob implements DELETE /v1/jobs/{id}. Queued jobs transition to
// cancelled immediately (the worker pool drops them at dequeue); running
// jobs get their context cancelled and transition once the partitioner
// unwinds. The bool reports whether the job existed; the error is non-nil
// when the job is already in a non-cancellable terminal state.
func (m *jobManager) cancelJob(id string) (*job, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, false, nil
	}
	switch j.state {
	case StateQueued:
		j.cancelReq = true
		j.cancel()
		// Free the queue slot on the spot (the job may already be out of
		// the slice if a worker popped it a moment ago — the dequeue-side
		// state check drops it then).
		for i, q := range m.queue {
			if q == j {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				break
			}
		}
		m.cancelLocked(j, "cancelled while queued", time.Now())
	case StateRunning:
		j.cancelReq = true
		j.cancel() // the worker observes ctx and finishes the transition
	case StateCancelled:
		// Idempotent.
	default:
		return j, true, fmt.Errorf("job %s already %s", id, j.state)
	}
	return j, true, nil
}

// cancelLocked moves j to the cancelled terminal state. Callers hold m.mu.
//
//parhip:holds mu
func (m *jobManager) cancelLocked(j *job, msg string, now time.Time) {
	j.state = StateCancelled
	j.errMsg = msg
	if j.started.IsZero() {
		j.started = now
	}
	j.finished = now
	j.g = nil
	j.prev = nil
	if j.cancel != nil {
		j.cancel() // release the timeout timer
	}
	m.cancelled++
	m.pushTimingLocked(j)
}

func (m *jobManager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.qcond.Wait()
		}
		if len(m.queue) == 0 {
			// Closed and drained: every accepted job has been finished.
			m.mu.Unlock()
			return
		}
		j := m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()
		m.runJob(j)
	}
}

func (m *jobManager) runJob(j *job) {
	start := time.Now()
	m.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while queued: already terminal, never occupies a
		// worker (the dequeue just drops the corpse).
		m.mu.Unlock()
		return
	}
	if err := j.ctx.Err(); err != nil {
		// timeout_ms expired — or the shutdown drain cut the queue short.
		msg := "timeout expired while queued: " + err.Error()
		if m.draining && !j.cancelReq {
			msg = "cancelled: server shutdown drained the queue"
		}
		m.cancelLocked(j, msg, time.Now())
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = start
	m.running++
	m.queueWait.Observe(start.Sub(j.submitted).Seconds())

	// Re-check the cache: a twin job submitted while this one was queued
	// may have populated it in the meantime.
	if res, ok := m.cache.get(j.key); ok {
		m.cacheHits++
		m.running--
		m.finishLocked(j, res, true, time.Now())
		m.mu.Unlock()
		return
	}
	m.cacheMisses++
	g, k, opts, prev, ctx := j.g, j.k, j.opts, j.prev, j.ctx
	m.mu.Unlock()

	onProgress := func(ev parhip.ProgressEvent) {
		m.mu.Lock()
		j.progress = &ev
		m.mu.Unlock()
	}
	res, err := m.partition(ctx, g, k, opts, prev, onProgress)
	end := time.Now()

	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	m.runDur.Observe(end.Sub(start).Seconds())
	// Cancellation and timeout are terminal "cancelled", not "failed" —
	// and a result that limped in despite a cancelled context is treated
	// as cancelled too: the cache must never hold output of a cut-short
	// run, and the client that cancelled must not observe a "done".
	if cause := j.ctx.Err(); cause != nil ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		msg := "cancelled by client"
		if !j.cancelReq {
			msg = fmt.Sprintf("timeout after %dms", j.timeoutMS)
			if m.draining {
				msg = "cancelled: server shutdown drain deadline exceeded"
			}
		}
		if err != nil {
			msg += ": " + err.Error()
		}
		m.cancelLocked(j, msg, end)
		return
	}
	j.cancel() // release the timeout timer
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		j.finished = end
		j.g = nil
		j.prev = nil
		m.failed++
		m.pushTimingLocked(j)
		return
	}
	// Feasibility gate: the balance constraint is hard (§II-A), so a result
	// that is still infeasible after the core's rebalance stage is a failed
	// job, not a silently degraded done one. It is also never cached — a
	// later identical submission must not be served the bad partition.
	if !res.Feasible {
		j.state = StateFailed
		j.errMsg = fmt.Sprintf(
			"result infeasible: heaviest block %d exceeds Lmax %d by %d (imbalance %.4f)",
			res.Stats.MaxBlockWeight, res.Stats.Lmax, res.Stats.WorstOverload(), res.Imbalance)
		j.finished = end
		j.g = nil
		j.prev = nil
		m.failed++
		m.infeasible++
		m.pushTimingLocked(j)
		return
	}
	m.cache.put(j.key, &res)
	m.coreRuns++
	m.coarsenTime += res.Stats.CoarsenTime
	m.initTime += res.Stats.InitTime
	m.refineTime += res.Stats.RefineTime
	m.totalTime += res.Stats.TotalTime
	m.comm.Add(res.Stats.Comm)
	m.transport.Add(res.Stats.Transport)
	m.par.Add(res.Stats.Par)
	m.cutSum += res.Cut
	m.finishLocked(j, &res, false, end)
}

// finishLocked marks j done with res. The graph reference is dropped so a
// finished job no longer pins its (possibly deleted) graph in memory.
// Callers hold m.mu.
//
//parhip:holds mu
func (m *jobManager) finishLocked(j *job, res *parhip.Result, cached bool, now time.Time) {
	j.state = StateDone
	j.cached = cached
	j.result = res
	j.g = nil
	j.prev = nil
	if j.cancel != nil {
		j.cancel() // release the timeout timer
	}
	if j.started.IsZero() {
		j.started = now
	}
	j.finished = now
	m.completed++
	m.pushTimingLocked(j)
}

//parhip:holds mu
func (m *jobManager) pushTimingLocked(j *job) {
	close(j.done) // terminal: wake waiters (exactly one transition per job)
	t := JobTiming{
		ID:        j.id,
		GraphID:   j.graphID,
		K:         j.k,
		Cached:    j.cached,
		Failed:    j.state == StateFailed,
		Cancelled: j.state == StateCancelled,
		QueueMS:   float64(j.started.Sub(j.submitted)) / float64(time.Millisecond),
		RunMS:     float64(j.finished.Sub(j.started)) / float64(time.Millisecond),
	}
	if j.result != nil {
		t.Cut = j.result.Cut
	}
	m.recent = append(m.recent, t)
	if len(m.recent) > recentTimings {
		m.recent = m.recent[len(m.recent)-recentTimings:]
	}
	m.evictFinishedLocked()
}

// evictFinishedLocked drops the oldest finished jobs once the retained set
// exceeds maxRetainedJobs. Callers hold m.mu.
//
//parhip:holds mu
func (m *jobManager) evictFinishedLocked() {
	excess := len(m.jobs) - maxRetainedJobs
	if excess <= 0 {
		return
	}
	keep := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		if excess > 0 && (j.state == StateDone || j.state == StateFailed || j.state == StateCancelled) {
			delete(m.jobs, id)
			excess--
			continue
		}
		keep = append(keep, id)
	}
	m.order = keep
}

// graphInUse reports whether any queued or running job still references
// graph id. DELETE /v1/graphs/{id} refuses with 409 while this holds:
// jobs carry the *graph.Graph pointer, so the partitioner itself never
// races a vanished graph, but deleting the store entry mid-run would let
// the client re-upload a same-ID-looking graph and misattribute results.
func (m *jobManager) graphInUse(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		if j.graphID == id && (j.state == StateQueued || j.state == StateRunning) {
			return true
		}
	}
	return false
}

func (m *jobManager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// resultPartition returns the partition computed by a done job, for use as
// the previous partition of a repartition submission.
func (m *jobManager) resultPartition(id string) (*parhip.Partition, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("no job %q", id)
	}
	if j.state != StateDone || j.result == nil || j.result.Partition == nil {
		return nil, fmt.Errorf("job %s is %s; only done jobs can seed a repartition", id, j.state)
	}
	return j.result.Partition, nil
}
