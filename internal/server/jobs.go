package server

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/graph"
)

// JobState is the lifecycle of a partitioning job.
type JobState string

// Job states. A cache hit at submission time jumps straight to done.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// PartitionFunc computes a partition; the production implementation is
// parhip.Partition. Tests substitute a counting wrapper to prove the cache
// short-circuits recomputation.
type PartitionFunc func(g *graph.Graph, k int32, opt parhip.Options) (parhip.Result, error)

// job is the manager-internal record. Every field is guarded by the
// manager's mutex; workers take the mutex for state transitions and release
// it around the actual partitioning call.
type job struct {
	id        string
	graphID   string
	g         *graph.Graph
	k         int32
	opts      parhip.Options
	optsView  jobOptions
	key       string
	state     JobState
	cached    bool
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    *parhip.Result
}

// JobTiming is one completed job's timing record, exposed by /v1/stats.
type JobTiming struct {
	ID      string  `json:"id"`
	GraphID string  `json:"graph_id"`
	K       int32   `json:"k"`
	Cached  bool    `json:"cached"`
	Failed  bool    `json:"failed,omitempty"`
	QueueMS float64 `json:"queue_ms"`
	RunMS   float64 `json:"run_ms"`
	Cut     int64   `json:"cut"`
}

// recentTimings bounds the per-job timing history kept for /v1/stats.
const recentTimings = 64

// maxRetainedJobs bounds the finished-job records kept for polling. Beyond
// it the oldest finished jobs are evicted (later polls get 404), keeping a
// long-running daemon's memory bounded; queued/running jobs are never
// evicted.
const maxRetainedJobs = 4096

// jobManager owns the queue, the bounded worker pool and the result cache,
// and aggregates the service counters reported by /v1/stats.
type jobManager struct {
	partition PartitionFunc
	queue     chan *job
	wg        sync.WaitGroup
	cache     *resultCache

	mu      sync.Mutex
	closed  bool
	nextID  int64
	jobs    map[string]*job
	order   []string // submission order, for listing
	workers int
	running int

	submitted   int64
	completed   int64
	failed      int64
	infeasible  int64
	cacheHits   int64
	cacheMisses int64

	coreRuns    int64
	coarsenTime time.Duration
	initTime    time.Duration
	refineTime  time.Duration
	totalTime   time.Duration
	msgsSent    int64
	wordsSent   int64
	cutSum      int64

	recent []JobTiming // ring, newest last
}

func newJobManager(workers, queueSize, cacheSize int, fn PartitionFunc) *jobManager {
	m := &jobManager{
		partition: fn,
		queue:     make(chan *job, queueSize),
		cache:     newResultCache(cacheSize),
		jobs:      make(map[string]*job),
		workers:   workers,
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// close drains the queue (workers finish every accepted job) and waits for
// the pool to exit. Submissions after close fail.
func (m *jobManager) close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.queue)
	m.wg.Wait()
}

var (
	errQueueFull = fmt.Errorf("job queue full")
	errClosed    = fmt.Errorf("server shutting down")
)

// jobKey canonicalizes the (graph, options) pair into the cache key. The
// options half lists every field that influences the result, with defaults
// already applied (canonOptions), so e.g. eps=0 and eps=0.03 share a key.
func jobKey(fingerprint string, k int32, o parhip.Options) string {
	var b strings.Builder
	b.WriteString(fingerprint)
	b.WriteString("|k=")
	b.WriteString(strconv.FormatInt(int64(k), 10))
	fmt.Fprintf(&b, "|mode=%d|class=%d|eps=%.17g|seed=%d|pes=%d|obj=%d|budget=%d",
		o.Mode, o.Class, o.Eps, o.Seed, o.PEs, o.Objective, o.EvoTimeBudget)
	return b.String()
}

// submit registers a job for sg. On a cache hit the job completes
// immediately without entering the queue; otherwise it is enqueued for the
// worker pool, or rejected with errQueueFull when the queue is at capacity.
// The whole decision runs under the manager mutex: the enqueue is a
// non-blocking select, and holding the mutex makes it atomic with the
// closed check (no send on a closed queue) and with registration (no
// partially registered jobs visible to concurrent submissions).
func (m *jobManager) submit(sg *storedGraph, k int32, opts parhip.Options, view jobOptions) (*job, error) {
	key := jobKey(sg.Fingerprint, k, opts)
	now := time.Now()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errClosed
	}
	m.nextID++
	j := &job{
		id:        fmt.Sprintf("j%d", m.nextID),
		graphID:   sg.ID,
		g:         sg.g,
		k:         k,
		opts:      opts,
		optsView:  view,
		key:       key,
		state:     StateQueued,
		submitted: now,
	}

	if res, ok := m.cache.get(key); ok {
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		m.submitted++
		m.cacheHits++
		m.finishLocked(j, res, true, now)
		return j, nil
	}

	select {
	case m.queue <- j:
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		m.submitted++
		return j, nil
	default:
		m.nextID--
		return nil, errQueueFull
	}
}

func (m *jobManager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

func (m *jobManager) runJob(j *job) {
	start := time.Now()
	m.mu.Lock()
	j.state = StateRunning
	j.started = start
	m.running++

	// Re-check the cache: a twin job submitted while this one was queued
	// may have populated it in the meantime.
	if res, ok := m.cache.get(j.key); ok {
		m.cacheHits++
		m.running--
		m.finishLocked(j, res, true, time.Now())
		m.mu.Unlock()
		return
	}
	m.cacheMisses++
	g, k, opts := j.g, j.k, j.opts
	m.mu.Unlock()

	res, err := m.partition(g, k, opts)
	end := time.Now()

	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		j.finished = end
		j.g = nil
		m.failed++
		m.pushTimingLocked(j)
		return
	}
	// Feasibility gate: the balance constraint is hard (§II-A), so a result
	// that is still infeasible after the core's rebalance stage is a failed
	// job, not a silently degraded done one. It is also never cached — a
	// later identical submission must not be served the bad partition.
	if !res.Feasible {
		j.state = StateFailed
		j.errMsg = fmt.Sprintf(
			"result infeasible: heaviest block %d exceeds Lmax %d by %d (imbalance %.4f)",
			res.Stats.MaxBlockWeight, res.Stats.Lmax, res.Stats.WorstOverload(), res.Imbalance)
		j.finished = end
		j.g = nil
		m.failed++
		m.infeasible++
		m.pushTimingLocked(j)
		return
	}
	m.cache.put(j.key, &res)
	m.coreRuns++
	m.coarsenTime += res.Stats.CoarsenTime
	m.initTime += res.Stats.InitTime
	m.refineTime += res.Stats.RefineTime
	m.totalTime += res.Stats.TotalTime
	m.msgsSent += res.Stats.Comm.MessagesSent
	m.wordsSent += res.Stats.Comm.WordsSent
	m.cutSum += res.Cut
	m.finishLocked(j, &res, false, end)
}

// finishLocked marks j done with res. The graph reference is dropped so a
// finished job no longer pins its (possibly deleted) graph in memory.
// Callers hold m.mu.
func (m *jobManager) finishLocked(j *job, res *parhip.Result, cached bool, now time.Time) {
	j.state = StateDone
	j.cached = cached
	j.result = res
	j.g = nil
	if j.started.IsZero() {
		j.started = now
	}
	j.finished = now
	m.completed++
	m.pushTimingLocked(j)
}

func (m *jobManager) pushTimingLocked(j *job) {
	t := JobTiming{
		ID:      j.id,
		GraphID: j.graphID,
		K:       j.k,
		Cached:  j.cached,
		Failed:  j.state == StateFailed,
		QueueMS: float64(j.started.Sub(j.submitted)) / float64(time.Millisecond),
		RunMS:   float64(j.finished.Sub(j.started)) / float64(time.Millisecond),
	}
	if j.result != nil {
		t.Cut = j.result.Cut
	}
	m.recent = append(m.recent, t)
	if len(m.recent) > recentTimings {
		m.recent = m.recent[len(m.recent)-recentTimings:]
	}
	m.evictFinishedLocked()
}

// evictFinishedLocked drops the oldest finished jobs once the retained set
// exceeds maxRetainedJobs. Callers hold m.mu.
func (m *jobManager) evictFinishedLocked() {
	excess := len(m.jobs) - maxRetainedJobs
	if excess <= 0 {
		return
	}
	keep := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		if excess > 0 && (j.state == StateDone || j.state == StateFailed) {
			delete(m.jobs, id)
			excess--
			continue
		}
		keep = append(keep, id)
	}
	m.order = keep
}

func (m *jobManager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}
