package server

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

// genBig returns a graph large enough that an eco-mode run takes on the
// order of seconds — room to cancel it mid-flight.
func genBig() (*graph.Graph, []int32) {
	return gen.PlantedPartition(20000, 30, 16, 0.5, 1)
}

// blockingPartitionFn returns a PartitionFunc that parks until its context
// is cancelled (returning ctx.Err()) or the release channel is closed
// (returning a real partition). calls counts invocations.
func blockingPartitionFn(calls *atomic.Int64, release <-chan struct{}) PartitionFunc {
	return func(ctx context.Context, g *graph.Graph, k int32, opt parhip.Options,
		prev *parhip.Partition, onProgress func(parhip.ProgressEvent)) (parhip.Result, error) {
		calls.Add(1)
		select {
		case <-ctx.Done():
			return parhip.Result{}, ctx.Err()
		case <-release:
			return parhip.PartitionGraph(g, k, opt)
		}
	}
}

func (e *testEnv) awaitRunning(id string) {
	e.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var v jobView
		e.do("GET", "/v1/jobs/"+id, nil, &v)
		if v.State == StateRunning {
			return
		}
		if time.Now().After(deadline) {
			e.t.Fatalf("job %s never started running (state %s)", id, v.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCancelRunningJob: DELETE on a running job cancels its context, the
// worker is freed, the job lands in the cancelled terminal state, and the
// result endpoint answers 410.
func TestCancelRunningJob(t *testing.T) {
	var calls atomic.Int64
	var once sync.Once
	release := make(chan struct{})
	cfg := Config{Workers: 1}
	cfg.PartitionFn = blockingPartitionFn(&calls, release)
	e := newEnv(t, cfg)
	t.Cleanup(func() { once.Do(func() { close(release) }) })
	id := e.uploadMetis(testGraph(20))

	v, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":2,"options":{"pes":2}}`, id))
	e.awaitRunning(v.ID)

	code, raw := e.do("DELETE", "/v1/jobs/"+v.ID, nil, &v)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("cancel running job: status %d (%s)", code, raw)
	}
	v = e.await(v.ID)
	if v.State != StateCancelled {
		t.Fatalf("job ended %s, want cancelled", v.State)
	}
	if !strings.Contains(v.Error, "cancelled") {
		t.Fatalf("error %q does not mention cancellation", v.Error)
	}

	// The worker must be free again: a second job on the same single-worker
	// pool runs to completion once released.
	once.Do(func() { close(release) })
	v2, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":3,"options":{"pes":2}}`, id))
	if v2 = e.await(v2.ID); v2.State != StateDone {
		t.Fatalf("post-cancel job ended %s (%s): worker not freed", v2.State, v2.Error)
	}

	if code, _ := e.do("GET", "/v1/jobs/"+v.ID+"/result", nil, nil); code != http.StatusGone {
		t.Fatalf("result of cancelled job: status %d, want 410", code)
	}
	st := e.srv.Stats()
	if st.Jobs.Cancelled != 1 {
		t.Fatalf("stats cancelled = %d, want 1", st.Jobs.Cancelled)
	}
	if st.Running != 0 {
		t.Fatalf("running = %d after cancellation", st.Running)
	}
}

// TestCancelQueuedJobNeverRuns: a job cancelled while queued is dropped at
// dequeue — the partition function never sees it.
func TestCancelQueuedJobNeverRuns(t *testing.T) {
	var calls atomic.Int64
	var once sync.Once
	release := make(chan struct{})
	releaseOnce := func() { once.Do(func() { close(release) }) }
	cfg := Config{Workers: 1, QueueSize: 4}
	cfg.PartitionFn = blockingPartitionFn(&calls, release)
	e := newEnv(t, cfg)
	t.Cleanup(releaseOnce)
	id := e.uploadMetis(testGraph(21))

	// First job occupies the single worker; second sits in the queue.
	v1, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":2,"options":{"pes":2}}`, id))
	e.awaitRunning(v1.ID)
	v2, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":3,"options":{"pes":2}}`, id))

	var cv jobView
	code, raw := e.do("DELETE", "/v1/jobs/"+v2.ID, nil, &cv)
	if code != http.StatusOK || cv.State != StateCancelled {
		t.Fatalf("cancel queued job: status %d state %s (%s)", code, cv.State, raw)
	}

	// Double cancel is idempotent.
	if code, _ = e.do("DELETE", "/v1/jobs/"+v2.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("second cancel: status %d, want 200", code)
	}

	// Release the first job; the cancelled one must never invoke the
	// partitioner (calls stays at 1, from v1).
	releaseOnce()
	if v1 = e.await(v1.ID); v1.State != StateDone {
		t.Fatalf("first job ended %s (%s)", v1.State, v1.Error)
	}
	// Drain: submit a sentinel and wait for it, so the worker has certainly
	// passed the cancelled corpse in the queue.
	v3, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":4,"options":{"pes":2}}`, id))
	if v3 = e.await(v3.ID); v3.State != StateDone {
		t.Fatalf("sentinel ended %s", v3.State)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("partition fn called %d times, want 2 (cancelled job must not run)", got)
	}
	if st := e.srv.Stats(); st.Jobs.Cancelled != 1 {
		t.Fatalf("cancelled = %d, want 1", st.Jobs.Cancelled)
	}
}

// TestCancelQueuedJobFreesSlot: cancelling a queued job releases its
// queue-capacity slot immediately — a resubmission in the same window is
// accepted instead of bouncing off 429.
func TestCancelQueuedJobFreesSlot(t *testing.T) {
	var calls atomic.Int64
	var once sync.Once
	release := make(chan struct{})
	cfg := Config{Workers: 1, QueueSize: 1}
	cfg.PartitionFn = blockingPartitionFn(&calls, release)
	e := newEnv(t, cfg)
	t.Cleanup(func() { once.Do(func() { close(release) }) })
	id := e.uploadMetis(testGraph(26))

	v1, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":2,"options":{"pes":2}}`, id))
	e.awaitRunning(v1.ID)
	// Fill the single queue slot, then free it by cancelling.
	v2, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":3,"options":{"pes":2}}`, id))
	body := fmt.Sprintf(`{"graph_id":%q,"k":4,"options":{"pes":2}}`, id)
	if code, _ := e.do("POST", "/v1/jobs", []byte(body), nil); code != http.StatusTooManyRequests {
		t.Fatalf("queue not full before cancel: status %d", code)
	}
	if code, _ := e.do("DELETE", "/v1/jobs/"+v2.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel queued: status %d", code)
	}
	if code, raw := e.do("POST", "/v1/jobs", []byte(body), nil); code != http.StatusAccepted {
		t.Fatalf("submit after freeing the slot: status %d (%s), want 202", code, raw)
	}
	once.Do(func() { close(release) })
}

// TestCancelFinishedJobConflicts: terminal done/failed jobs refuse
// cancellation with 409; unknown jobs give 404.
func TestCancelFinishedJobConflicts(t *testing.T) {
	e := newEnv(t, Config{Workers: 1})
	id := e.uploadMetis(testGraph(22))
	v, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":2,"options":{"mode":"minimal","pes":2}}`, id))
	if v = e.await(v.ID); v.State != StateDone {
		t.Fatalf("job ended %s", v.State)
	}
	if code, _ := e.do("DELETE", "/v1/jobs/"+v.ID, nil, nil); code != http.StatusConflict {
		t.Fatalf("cancel done job: status %d, want 409", code)
	}
	if code, _ := e.do("DELETE", "/v1/jobs/j999", nil, nil); code != http.StatusNotFound {
		t.Fatalf("cancel unknown job: status %d, want 404", code)
	}
}

// TestJobTimeout: timeout_ms bounds the job's lifetime; expiry cancels it.
func TestJobTimeout(t *testing.T) {
	var calls atomic.Int64
	cfg := Config{Workers: 1}
	cfg.PartitionFn = blockingPartitionFn(&calls, nil) // parks until ctx fires
	e := newEnv(t, cfg)
	id := e.uploadMetis(testGraph(23))

	v, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":2,"timeout_ms":60,"options":{"pes":2}}`, id))
	if v.TimeoutMS != 60 {
		t.Fatalf("timeout_ms not echoed: %+v", v)
	}
	v = e.await(v.ID)
	if v.State != StateCancelled {
		t.Fatalf("timed-out job ended %s, want cancelled", v.State)
	}
	if !strings.Contains(v.Error, "timeout") {
		t.Fatalf("error %q does not mention the timeout", v.Error)
	}
	// Negative timeouts are rejected at the boundary.
	body := fmt.Sprintf(`{"graph_id":%q,"k":2,"timeout_ms":-5}`, id)
	if code, _ := e.do("POST", "/v1/jobs", []byte(body), nil); code != http.StatusBadRequest {
		t.Fatalf("negative timeout_ms: status %d, want 400", code)
	}
}

// TestQueuedJobTimeoutExpiresEagerly: a timeout firing while the job still
// waits in the queue cancels it on the spot — state flips to cancelled and
// the queue slot frees up — even though no worker ever touches it.
func TestQueuedJobTimeoutExpiresEagerly(t *testing.T) {
	var calls atomic.Int64
	var once sync.Once
	release := make(chan struct{})
	cfg := Config{Workers: 1, QueueSize: 1}
	cfg.PartitionFn = blockingPartitionFn(&calls, release)
	e := newEnv(t, cfg)
	t.Cleanup(func() { once.Do(func() { close(release) }) })
	id := e.uploadMetis(testGraph(27))

	// Occupy the only worker indefinitely, then queue a job with a short
	// timeout behind it.
	v1, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":2,"options":{"pes":2}}`, id))
	e.awaitRunning(v1.ID)
	v2, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":3,"timeout_ms":40,"options":{"pes":2}}`, id))

	v2 = e.await(v2.ID) // must go terminal without the worker ever freeing
	if v2.State != StateCancelled {
		t.Fatalf("queued job with expired timeout is %s, want cancelled", v2.State)
	}
	if !strings.Contains(v2.Error, "queued") {
		t.Fatalf("error %q does not mention queue-time expiry", v2.Error)
	}
	// The slot is free again: a new submission is accepted, not 429.
	body := fmt.Sprintf(`{"graph_id":%q,"k":4,"options":{"pes":2}}`, id)
	if code, raw := e.do("POST", "/v1/jobs", []byte(body), nil); code != http.StatusAccepted {
		t.Fatalf("submit after queued expiry: status %d (%s), want 202", code, raw)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("partition fn called %d times, want 1 (expired job must not run)", got)
	}
	once.Do(func() { close(release) })
}

// TestCancelledRunNeverCached: a run that produces a full result after its
// context was cancelled is still a cancelled job and its output must not
// enter the result cache.
func TestCancelledRunNeverCached(t *testing.T) {
	var calls atomic.Int64
	cfg := Config{Workers: 1}
	cfg.PartitionFn = func(ctx context.Context, g *graph.Graph, k int32, opt parhip.Options,
		prev *parhip.Partition, onProgress func(parhip.ProgressEvent)) (parhip.Result, error) {
		calls.Add(1)
		if calls.Load() == 1 {
			<-ctx.Done() // lose the race on purpose, then "finish" anyway
			return parhip.PartitionGraph(g, k, opt)
		}
		return parhip.PartitionGraph(g, k, opt)
	}
	e := newEnv(t, cfg)
	id := e.uploadMetis(testGraph(24))

	body := fmt.Sprintf(`{"graph_id":%q,"k":2,"options":{"mode":"minimal","pes":2}}`, id)
	v, _ := e.submit(body)
	e.awaitRunning(v.ID)
	e.do("DELETE", "/v1/jobs/"+v.ID, nil, nil)
	if v = e.await(v.ID); v.State != StateCancelled {
		t.Fatalf("job ended %s, want cancelled", v.State)
	}

	// The identical resubmission must recompute: nothing was cached.
	v2, _ := e.submit(body)
	if v2 = e.await(v2.ID); v2.State != StateDone || v2.Cached {
		t.Fatalf("resubmission: state=%s cached=%v", v2.State, v2.Cached)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("partition fn called %d times, want 2", got)
	}
}

// TestJobProgressExposed: live partitioner progress shows up in the job
// view while running and sticks around on completion.
func TestJobProgressExposed(t *testing.T) {
	emitted := make(chan struct{})
	release := make(chan struct{})
	cfg := Config{Workers: 1}
	cfg.PartitionFn = func(ctx context.Context, g *graph.Graph, k int32, opt parhip.Options,
		prev *parhip.Partition, onProgress func(parhip.ProgressEvent)) (parhip.Result, error) {
		onProgress(parhip.ProgressEvent{Phase: "refine", Cycle: 1, Cycles: 2, Level: 3,
			N: int64(g.NumNodes()), M: g.NumEdges(), Cut: 42, Imbalance: 0.01,
			Elapsed: 5 * time.Millisecond})
		close(emitted)
		<-release
		return parhip.PartitionGraph(g, k, opt)
	}
	e := newEnv(t, cfg)
	t.Cleanup(func() { close(release) })
	id := e.uploadMetis(testGraph(25))

	v, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":2,"options":{"mode":"minimal","pes":2}}`, id))
	<-emitted
	var running jobView
	e.do("GET", "/v1/jobs/"+v.ID, nil, &running)
	if running.Progress == nil {
		t.Fatal("running job view has no progress")
	}
	if running.Progress.Phase != "refine" || running.Progress.Cut != 42 ||
		running.Progress.Cycle != 1 || running.Progress.ElapsedMS != 5 {
		t.Fatalf("progress view %+v", running.Progress)
	}
}

// TestRealRunCancellation drives the production partitioner (no test
// double) through the whole stack: submit a real job, cancel it mid-run,
// and verify the cooperative abort reaches the simulated ranks.
func TestRealRunCancellation(t *testing.T) {
	e := newEnv(t, Config{Workers: 1})
	g, _ := genBig()
	id := e.uploadMetis(g)

	v, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":8,"options":{"mode":"eco","pes":4}}`, id))
	e.awaitRunning(v.ID)
	time.Sleep(30 * time.Millisecond) // let the ranks get into the pipeline
	start := time.Now()
	e.do("DELETE", "/v1/jobs/"+v.ID, nil, nil)
	v = e.await(v.ID)
	if v.State != StateCancelled {
		t.Fatalf("job ended %s (%s), want cancelled", v.State, v.Error)
	}
	if lat := time.Since(start); lat > 5*time.Second {
		t.Fatalf("cancellation of a real run took %v", lat)
	}
	if st := e.srv.Stats(); st.Running != 0 {
		t.Fatalf("running = %d after real cancellation", st.Running)
	}
}
