package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
)

// storedGraph is one uploaded graph plus the metadata the API reports.
type storedGraph struct {
	ID          string    `json:"id"`
	Fingerprint string    `json:"fingerprint"`
	N           int32     `json:"n"`
	M           int64     `json:"m"`
	UploadedAt  time.Time `json:"uploaded_at"`

	g *graph.Graph
}

// graphStore is an in-memory bounded map of uploaded graphs. Jobs hold
// the *graph.Graph pointer directly, so a delete can never crash a run —
// but the DELETE handler still refuses (409) while queued/running jobs or
// a live overlay reference the entry, so results are never attributed to
// a graph ID whose store slot was recycled underneath them.
type graphStore struct {
	mu     sync.Mutex
	cap    int
	nextID int64
	byID   map[string]*storedGraph
}

func newGraphStore(capacity int) *graphStore {
	if capacity < 1 {
		capacity = 1
	}
	return &graphStore{cap: capacity, byID: make(map[string]*storedGraph)}
}

var errStoreFull = fmt.Errorf("graph store full")

// add registers g and returns its metadata. Re-uploading a byte-identical
// graph returns the existing entry instead of storing a copy, so clients
// can idempotently re-upload without growing the store.
func (s *graphStore) add(g *graph.Graph, now time.Time) (*storedGraph, error) {
	fp := g.Fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sg := range s.byID {
		if sg.Fingerprint == fp {
			return sg, nil
		}
	}
	if len(s.byID) >= s.cap {
		return nil, errStoreFull
	}
	s.nextID++
	sg := &storedGraph{
		ID:          fmt.Sprintf("g%d", s.nextID),
		Fingerprint: fp,
		N:           g.NumNodes(),
		M:           g.NumEdges(),
		UploadedAt:  now,
		g:           g,
	}
	s.byID[sg.ID] = sg
	return sg, nil
}

func (s *graphStore) get(id string) (*storedGraph, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sg, ok := s.byID[id]
	return sg, ok
}

func (s *graphStore) delete(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[id]; !ok {
		return false
	}
	delete(s.byID, id)
	return true
}

func (s *graphStore) list() []*storedGraph {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*storedGraph, 0, len(s.byID))
	for _, sg := range s.byID {
		out = append(out, sg)
	}
	// IDs are "g<counter>", so shorter-then-lexicographic is numeric order.
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].ID) != len(out[j].ID) {
			return len(out[i].ID) < len(out[j].ID)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func (s *graphStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}

func (s *graphStore) capacity() int { return s.cap }
