package server

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestShutdownDrainsCompletedJobs: a Shutdown with a generous deadline
// waits for the running job to finish and returns nil; the job lands done.
func TestShutdownDrainsCompletedJobs(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	cfg := Config{Workers: 1}
	cfg.PartitionFn = blockingPartitionFn(&calls, release)
	e := newEnv(t, cfg)
	id := e.uploadMetis(testGraph(20))

	v, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":2,"options":{"pes":2}}`, id))
	e.awaitRunning(v.ID)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- e.srv.Shutdown(ctx)
	}()
	// The drain must be blocked on the running job, not racing past it.
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown returned %v with time to spare", err)
	}
	j, ok := e.srv.jobs.get(v.ID)
	if !ok || j.state != StateDone {
		t.Fatalf("job state after drained shutdown: %v, want done", j.state)
	}
}

// TestShutdownDeadlineCancelsStragglers: a Shutdown whose deadline expires
// while a job is still running (and another is queued) cancels both
// cooperatively, returns ctx.Err(), and the worker pool exits.
func TestShutdownDeadlineCancelsStragglers(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	defer close(release)
	cfg := Config{Workers: 1}
	cfg.PartitionFn = blockingPartitionFn(&calls, release)
	e := newEnv(t, cfg)
	id := e.uploadMetis(testGraph(20))

	running, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":2,"options":{"pes":2}}`, id))
	e.awaitRunning(running.ID)
	queued, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":3,"options":{"pes":2}}`, id))

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := e.srv.Shutdown(ctx)
	if err == nil {
		t.Fatal("Shutdown returned nil although a job could never finish")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Shutdown took %v; the deadline cut should be fast", elapsed)
	}
	for _, id := range []string{running.ID, queued.ID} {
		j, ok := e.srv.jobs.get(id)
		if !ok {
			t.Fatalf("job %s evicted during shutdown", id)
		}
		if j.state != StateCancelled {
			t.Errorf("job %s state %s after deadline-cut shutdown, want cancelled", id, j.state)
		}
		if !strings.Contains(j.errMsg, "shutdown") {
			t.Errorf("job %s error %q does not mention the shutdown", id, j.errMsg)
		}
	}
}
