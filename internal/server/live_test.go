package server

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

// stubPartitionFn returns a fast PartitionFunc producing a feasible
// round-robin partition — live control-flow tests don't need the real
// solver. calls counts invocations.
func stubPartitionFn(calls *atomic.Int64) PartitionFunc {
	return func(ctx context.Context, g *graph.Graph, k int32, opt parhip.Options,
		prev *parhip.Partition, onProgress func(parhip.ProgressEvent)) (parhip.Result, error) {
		calls.Add(1)
		assign := make([]int32, g.NumNodes())
		for v := range assign {
			assign[v] = int32(v) % k
		}
		p, err := parhip.NewPartition(g, assign, k, opt.Eps)
		if err != nil {
			return parhip.Result{}, err
		}
		return parhip.Result{Partition: p, Part: assign, Cut: p.Cut(), Feasible: true}, nil
	}
}

// enableLive promotes graph id and returns the initial status view.
func (e *testEnv) enableLive(id, body string) liveStatusView {
	e.t.Helper()
	var v liveStatusView
	code, raw := e.do("POST", "/v1/graphs/"+id+"/live", []byte(body), &v)
	if code != http.StatusCreated {
		e.t.Fatalf("enable live: status %d: %s", code, raw)
	}
	return v
}

// awaitLive polls the live status until cond holds.
func (e *testEnv) awaitLive(id string, what string, cond func(liveStatusView) bool) liveStatusView {
	e.t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var v liveStatusView
		code, raw := e.do("GET", "/v1/graphs/"+id+"/live", nil, &v)
		if code != http.StatusOK {
			e.t.Fatalf("live status: %d: %s", code, raw)
		}
		if cond(v) {
			return v
		}
		if time.Now().After(deadline) {
			e.t.Fatalf("live graph %s: timed out waiting for %s (status %+v)", id, what, v)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// deltaJSON renders gen edge deltas as a wire batch.
func deltaJSON(seq int64, ds []gen.EdgeDelta) string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"seq":%d,"deltas":[`, seq)
	for i, d := range ds {
		if i > 0 {
			b.WriteByte(',')
		}
		op := "remove_edge"
		if d.Add {
			op = "add_edge"
		}
		fmt.Fprintf(&b, `{"op":%q,"u":%d,"v":%d,"w":%d}`, op, d.U, d.V, d.W)
	}
	b.WriteString("]}")
	return b.String()
}

// TestLiveEndToEnd is the acceptance scenario: upload a graph, promote it
// to live, stream ~5%% edge churn in batches, and verify the controller
// auto-triggers repartitions whose final cut is within tolerance of a
// cold run on the drifted graph with <5%% node migration per warm run,
// while placement lookups answer correctly with a monotone epoch
// throughout.
func TestLiveEndToEnd(t *testing.T) {
	e := newEnv(t, Config{Workers: 2})
	g, _ := gen.PlantedPartition(3000, 30, 10, 0.4, 1)
	id := e.uploadMetis(g)

	// Eco mode: the migration-aware warm path keeps node movement tiny,
	// which the <5% migration assertion below depends on.
	e.enableLive(id, `{"k":8,"options":{"mode":"eco","pes":4},"policy":{"churn_fraction":0.05,"max_staleness_ms":100}}`)

	// The initial cold partition swaps in as epoch 1.
	st := e.awaitLive(id, "epoch 1", func(v liveStatusView) bool { return v.Epoch >= 1 })
	if st.AutoRepartitions < 1 {
		t.Fatalf("no initial repartition recorded: %+v", st)
	}

	// Placement answers immediately and consistently with the status.
	var pv placementView
	code, raw := e.do("GET", "/v1/graphs/"+id+"/placement/0", nil, &pv)
	if code != http.StatusOK {
		t.Fatalf("placement: %d: %s", code, raw)
	}
	if pv.Epoch < 1 || pv.Block < 0 || pv.Block >= 8 {
		t.Fatalf("placement view %+v", pv)
	}

	// Stream the perturbation as 10 sequence-numbered batches, with
	// placement lookups interleaved; epochs must never go backwards.
	deltas := gen.PerturbDeltas(g, 0.05, 7)
	batches := 10
	per := (len(deltas) + batches - 1) / batches
	lastEpoch := pv.Epoch
	seq := int64(0)
	for i := 0; i < len(deltas); i += per {
		endIdx := i + per
		if endIdx > len(deltas) {
			endIdx = len(deltas)
		}
		seq++
		var ur updateResponse
		code, raw := e.do("POST", "/v1/graphs/"+id+"/updates", []byte(deltaJSON(seq, deltas[i:endIdx])), &ur)
		if code != http.StatusOK {
			t.Fatalf("updates batch %d: %d: %s", seq, code, raw)
		}
		if ur.Applied != endIdx-i || ur.Replayed {
			t.Fatalf("batch %d: applied %d of %d (replayed=%v)", seq, ur.Applied, endIdx-i, ur.Replayed)
		}
		var pv placementView
		if code, raw := e.do("GET", "/v1/graphs/"+id+"/placement/42", nil, &pv); code != http.StatusOK {
			t.Fatalf("interleaved placement: %d: %s", code, raw)
		}
		if pv.Epoch < lastEpoch {
			t.Fatalf("epoch went backwards: %d -> %d", lastEpoch, pv.Epoch)
		}
		lastEpoch = pv.Epoch
	}

	// Idempotent replay: resending the last batch is a no-op.
	var ur updateResponse
	code, raw = e.do("POST", "/v1/graphs/"+id+"/updates", []byte(deltaJSON(seq, deltas[len(deltas)-1:])), &ur)
	if code != http.StatusOK || !ur.Replayed || ur.Applied != 0 {
		t.Fatalf("replay: %d %s (%+v)", code, raw, ur)
	}

	// Drain: churn + staleness triggers must incorporate every delta.
	final := e.awaitLive(id, "all deltas incorporated", func(v liveStatusView) bool {
		return v.PendingDeltas == 0 && !v.InFlight
	})
	if final.AutoRepartitions < 2 {
		t.Fatalf("controller never auto-triggered beyond the initial run: %+v", final)
	}
	if final.Epoch < 2 {
		t.Fatalf("no epoch swap beyond the initial partition: %+v", final)
	}
	if final.LastError != "" {
		t.Fatalf("live graph reports error: %s", final.LastError)
	}

	// The fully drained live graph is exactly the perturbed graph; its cut
	// must be within 5% of a cold run (plus slack for tiny cuts), matching
	// the library-level repartition acceptance.
	drifted := gen.ApplyEdgeDeltas(g, deltas)
	cold, err := parhip.PartitionGraph(drifted, 8, parhip.Options{Mode: parhip.Eco, PEs: 4, Eps: 0.03, Seed: 1})
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if final.Cut == nil {
		t.Fatal("final status has no cut")
	}
	if limit := cold.Cut + cold.Cut/20; *final.Cut > limit {
		t.Errorf("live cut %d more than 5%% above cold cut %d", *final.Cut, cold.Cut)
	}

	// Every warm auto-run must have migrated <5% of nodes.
	var jobs []jobView
	if code, raw := e.do("GET", "/v1/jobs", nil, &jobs); code != http.StatusOK {
		t.Fatalf("list jobs: %d: %s", code, raw)
	}
	warm := 0
	for _, jv := range jobs {
		if !jv.Repartition || jv.State != StateDone {
			continue
		}
		warm++
		var res resultView
		if code, raw := e.do("GET", "/v1/jobs/"+jv.ID+"/result", nil, &res); code != http.StatusOK {
			t.Fatalf("result %s: %d: %s", jv.ID, code, raw)
		}
		if frac := float64(res.MigratedNodes) / float64(g.NumNodes()); frac >= 0.05 {
			t.Errorf("job %s migrated %.1f%% of nodes, want <5%%", jv.ID, 100*frac)
		}
	}
	if warm == 0 {
		t.Fatal("no warm repartition job found")
	}
	t.Logf("epochs %d, auto runs %d, live cut %d vs cold %d",
		final.Epoch, final.AutoRepartitions, *final.Cut, cold.Cut)
}

func TestLiveEnableValidation(t *testing.T) {
	var calls atomic.Int64
	e := newEnv(t, Config{Workers: 1, PartitionFn: stubPartitionFn(&calls)})
	id := e.uploadMetis(graph.Grid2D(10, 10))

	if code, _ := e.do("POST", "/v1/graphs/nope/live", []byte(`{"k":2}`), nil); code != http.StatusNotFound {
		t.Fatalf("unknown graph: %d, want 404", code)
	}
	if code, _ := e.do("POST", "/v1/graphs/"+id+"/live", []byte(`{"k":0}`), nil); code != http.StatusBadRequest {
		t.Fatalf("k=0: %d, want 400", code)
	}
	if code, _ := e.do("POST", "/v1/graphs/"+id+"/live", []byte(`{"k":101}`), nil); code != http.StatusBadRequest {
		t.Fatalf("k>n: %d, want 400", code)
	}
	if code, _ := e.do("POST", "/v1/graphs/"+id+"/live", []byte(`{"k":2,"options":{"mode":"bogus"}}`), nil); code != http.StatusBadRequest {
		t.Fatalf("bad mode: %d, want 400", code)
	}
	if code, _ := e.do("POST", "/v1/graphs/"+id+"/live", []byte(`{"k":2,"policy":{"min_interval_ms":-1}}`), nil); code != http.StatusBadRequest {
		t.Fatalf("bad policy: %d, want 400", code)
	}
	e.enableLive(id, `{"k":2,"options":{"pes":2}}`)
	if code, _ := e.do("POST", "/v1/graphs/"+id+"/live", []byte(`{"k":2}`), nil); code != http.StatusConflict {
		t.Fatalf("double enable: %d, want 409", code)
	}
	if code, _ := e.do("POST", "/v1/graphs/"+id+"/updates", []byte(`{"seq":0,"deltas":[]}`), nil); code != http.StatusBadRequest {
		t.Fatalf("seq 0: %d, want 400", code)
	}
	if code, _ := e.do("POST", "/v1/graphs/nope/updates", []byte(`{"seq":1,"deltas":[]}`), nil); code != http.StatusNotFound {
		t.Fatalf("updates on non-live graph: %d, want 404", code)
	}
}

func TestLiveUpdatesSequencingOverHTTP(t *testing.T) {
	var calls atomic.Int64
	e := newEnv(t, Config{Workers: 1, PartitionFn: stubPartitionFn(&calls)})
	id := e.uploadMetis(graph.Grid2D(10, 10))
	// Churn disabled: sequencing only, no auto jobs beyond the initial.
	e.enableLive(id, `{"k":4,"options":{"pes":2},"policy":{"churn_fraction":-1}}`)
	e.awaitLive(id, "epoch 1", func(v liveStatusView) bool { return v.Epoch >= 1 })

	batch := `{"seq":1,"deltas":[{"op":"add_edge","u":0,"v":55}]}`
	var ur updateResponse
	if code, raw := e.do("POST", "/v1/graphs/"+id+"/updates", []byte(batch), &ur); code != http.StatusOK || ur.Applied != 1 {
		t.Fatalf("batch 1: %d: %s", code, raw)
	}
	// Replay is an idempotent 200.
	if code, raw := e.do("POST", "/v1/graphs/"+id+"/updates", []byte(batch), &ur); code != http.StatusOK || !ur.Replayed {
		t.Fatalf("replay: %d: %s", code, raw)
	}
	// Gap is a 409.
	gap := `{"seq":5,"deltas":[{"op":"add_edge","u":1,"v":50}]}`
	if code, raw := e.do("POST", "/v1/graphs/"+id+"/updates", []byte(gap), nil); code != http.StatusConflict {
		t.Fatalf("gap: %d: %s", code, raw)
	}
	// Unknown op and invalid delta are 400s that apply nothing.
	if code, _ := e.do("POST", "/v1/graphs/"+id+"/updates", []byte(`{"seq":2,"deltas":[{"op":"warp","u":1}]}`), nil); code != http.StatusBadRequest {
		t.Fatalf("unknown op: want 400")
	}
	if code, _ := e.do("POST", "/v1/graphs/"+id+"/updates", []byte(`{"seq":2,"deltas":[{"op":"add_edge","u":1,"v":999}]}`), nil); code != http.StatusBadRequest {
		t.Fatalf("out-of-range delta: want 400")
	}
	st := e.awaitLive(id, "seq 1", func(v liveStatusView) bool { return v.Seq == 1 })
	if st.PendingDeltas != 1 {
		t.Fatalf("pending deltas = %d, want 1 (one applied edge add)", st.PendingDeltas)
	}
}

func TestLivePlacementLifecycle(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	// The initial run parks until released: the pre-epoch window is
	// observable deterministically.
	blockFirst := func(ctx context.Context, g *graph.Graph, k int32, opt parhip.Options,
		prev *parhip.Partition, onProgress func(parhip.ProgressEvent)) (parhip.Result, error) {
		if calls.Add(1) == 1 {
			select {
			case <-ctx.Done():
				return parhip.Result{}, ctx.Err()
			case <-release:
			}
		}
		return stubPartitionFn(new(atomic.Int64))(ctx, g, k, opt, prev, onProgress)
	}
	e := newEnv(t, Config{Workers: 1, PartitionFn: blockFirst})
	id := e.uploadMetis(graph.Grid2D(10, 10))
	e.enableLive(id, `{"k":4,"options":{"pes":2},"policy":{"churn_fraction":-1}}`)

	// Before the first swap: no placement (409), status shows epoch 0.
	if code, _ := e.do("GET", "/v1/graphs/"+id+"/placement/0", nil, nil); code != http.StatusConflict {
		t.Fatalf("placement before epoch 1: %d, want 409", code)
	}
	st := e.awaitLive(id, "in flight", func(v liveStatusView) bool { return v.InFlight })
	if st.Epoch != 0 || st.RepartitionJobID == "" {
		t.Fatalf("pre-swap status %+v", st)
	}
	// Deltas are accepted while the initial run is still computing.
	var ur updateResponse
	if code, raw := e.do("POST", "/v1/graphs/"+id+"/updates",
		[]byte(`{"seq":1,"deltas":[{"op":"add_node","w":2}]}`), &ur); code != http.StatusOK {
		t.Fatalf("update during initial run: %d: %s", code, raw)
	}

	close(release)
	e.awaitLive(id, "epoch 1", func(v liveStatusView) bool { return v.Epoch >= 1 })

	// Round-robin stub: node v sits in block v%4.
	var pv placementView
	if code, raw := e.do("GET", "/v1/graphs/"+id+"/placement/7", nil, &pv); code != http.StatusOK {
		t.Fatalf("placement: %d: %s", code, raw)
	}
	if pv.Block != 7%4 || pv.Epoch != 1 {
		t.Fatalf("placement view %+v, want block 3 at epoch 1", pv)
	}
	// The node added mid-run got a provisional placement at the swap.
	if code, raw := e.do("GET", "/v1/graphs/"+id+"/placement/100", nil, &pv); code != http.StatusOK {
		t.Fatalf("provisional placement: %d: %s", code, raw)
	}
	if !pv.Provisional || pv.Block < 0 || pv.Block >= 4 {
		t.Fatalf("provisional view %+v", pv)
	}
	// Beyond the node count: 404.
	if code, _ := e.do("GET", "/v1/graphs/"+id+"/placement/101", nil, nil); code != http.StatusNotFound {
		t.Fatal("out-of-range placement should 404")
	}
	if code, _ := e.do("GET", "/v1/graphs/"+id+"/placement/notanumber", nil, nil); code != http.StatusBadRequest {
		t.Fatal("non-numeric node id should 400")
	}
}

// TestDeleteGraphGuards: deleting a stored graph is refused while jobs or
// a live overlay still reference it.
func TestDeleteGraphGuards(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	e := newEnv(t, Config{Workers: 1, PartitionFn: blockingPartitionFn(&calls, release)})

	// Guard 1: queued/running jobs.
	gid := e.uploadMetis(testGraph(3))
	v, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":2,"options":{"pes":2}}`, gid))
	e.awaitRunning(v.ID)
	if code, raw := e.do("DELETE", "/v1/graphs/"+gid, nil, nil); code != http.StatusConflict {
		t.Fatalf("delete with running job: %d: %s", code, raw)
	}
	close(release)
	if jv := e.await(v.ID); jv.State != StateDone {
		t.Fatalf("job ended %s (%s)", jv.State, jv.Error)
	}
	if code, _ := e.do("DELETE", "/v1/graphs/"+gid, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete after job finished: %d, want 204", code)
	}

	// Guard 2: live overlays pin their base graph for good.
	e2 := newEnv(t, Config{Workers: 1, PartitionFn: stubPartitionFn(&calls)})
	lid := e2.uploadMetis(graph.Grid2D(8, 8))
	e2.enableLive(lid, `{"k":2,"options":{"pes":2},"policy":{"churn_fraction":-1}}`)
	e2.awaitLive(lid, "epoch 1", func(v liveStatusView) bool { return v.Epoch >= 1 })
	if code, raw := e2.do("DELETE", "/v1/graphs/"+lid, nil, nil); code != http.StatusConflict {
		t.Fatalf("delete live graph: %d: %s", code, raw)
	}
}

// TestLiveTraceEndpoint: live graphs enabled with trace record apply,
// materialize and swap spans.
func TestLiveTraceEndpoint(t *testing.T) {
	var calls atomic.Int64
	e := newEnv(t, Config{Workers: 1, PartitionFn: stubPartitionFn(&calls)})
	id := e.uploadMetis(graph.Grid2D(8, 8))
	e.enableLive(id, `{"k":2,"options":{"pes":2},"policy":{"churn_fraction":-1},"trace":true}`)
	e.awaitLive(id, "epoch 1", func(v liveStatusView) bool { return v.Epoch >= 1 })
	if code, raw := e.do("POST", "/v1/graphs/"+id+"/updates",
		[]byte(`{"seq":1,"deltas":[{"op":"add_edge","u":0,"v":63}]}`), nil); code != http.StatusOK {
		t.Fatalf("update: %d: %s", code, raw)
	}
	code, raw := e.do("GET", "/v1/graphs/"+id+"/live/trace", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("trace: %d", code)
	}
	for _, span := range []string{"live.apply_batch", "live.materialize", "live.swap"} {
		if !strings.Contains(raw, span) {
			t.Errorf("trace missing span %q", span)
		}
	}
	// Untraced live graphs 404 the endpoint.
	id2 := e.uploadMetis(graph.Grid2D(9, 9))
	e.enableLive(id2, `{"k":2,"options":{"pes":2},"policy":{"churn_fraction":-1}}`)
	if code, _ := e.do("GET", "/v1/graphs/"+id2+"/live/trace", nil, nil); code != http.StatusNotFound {
		t.Fatalf("untraced trace endpoint: %d, want 404", code)
	}
}

// TestLiveMetricsExposed: the parhipd_live_* series appear on /metrics
// and move when the subsystem is exercised.
func TestLiveMetricsExposed(t *testing.T) {
	var calls atomic.Int64
	e := newEnv(t, Config{Workers: 1, PartitionFn: stubPartitionFn(&calls)})
	id := e.uploadMetis(graph.Grid2D(8, 8))
	e.enableLive(id, `{"k":2,"options":{"pes":2},"policy":{"churn_fraction":-1}}`)
	e.awaitLive(id, "epoch 1", func(v liveStatusView) bool { return v.Epoch >= 1 })
	e.do("POST", "/v1/graphs/"+id+"/updates", []byte(`{"seq":1,"deltas":[{"op":"add_edge","u":0,"v":63}]}`), nil)
	e.do("GET", "/v1/graphs/"+id+"/placement/0", nil, nil)

	code, raw := e.do("GET", "/metrics", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"parhipd_live_graphs 1",
		"parhipd_live_deltas_applied_total 1",
		"parhipd_live_batches_total 1",
		"parhipd_live_repartitions_triggered_total 1",
		"parhipd_live_swaps_total 1",
		"parhipd_live_placement_lookups_total 1",
		"parhipd_live_max_churn_fraction",
	} {
		if !strings.Contains(raw, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
