package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

// testEnv wraps an httptest server around a Server with a small, fast
// configuration.
type testEnv struct {
	t   *testing.T
	srv *Server
	ts  *httptest.Server
}

func newEnv(t *testing.T, cfg Config) *testEnv {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return &testEnv{t: t, srv: srv, ts: ts}
}

func (e *testEnv) do(method, path string, body []byte, out any) (int, string) {
	e.t.Helper()
	req, err := http.NewRequest(method, e.ts.URL+path, bytes.NewReader(body))
	if err != nil {
		e.t.Fatalf("%s %s: %v", method, path, err)
	}
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		e.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			e.t.Fatalf("%s %s: decode %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode, string(raw)
}

// uploadMetis uploads g in METIS text form and returns its graph ID.
func (e *testEnv) uploadMetis(g *graph.Graph) string {
	e.t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteMetis(&buf, g); err != nil {
		e.t.Fatalf("write metis: %v", err)
	}
	var meta storedGraph
	code, raw := e.do("POST", "/v1/graphs", buf.Bytes(), &meta)
	if code != http.StatusCreated {
		e.t.Fatalf("upload: status %d: %s", code, raw)
	}
	return meta.ID
}

// submit posts a job and returns its view.
func (e *testEnv) submit(body string) (jobView, int) {
	e.t.Helper()
	var v jobView
	code, raw := e.do("POST", "/v1/jobs", []byte(body), &v)
	if code != http.StatusAccepted && code != http.StatusOK {
		e.t.Fatalf("submit: status %d: %s", code, raw)
	}
	return v, code
}

// await polls a job until it leaves the queued/running states.
func (e *testEnv) await(id string) jobView {
	e.t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var v jobView
		code, raw := e.do("GET", "/v1/jobs/"+id, nil, &v)
		if code != http.StatusOK {
			e.t.Fatalf("poll %s: status %d: %s", id, code, raw)
		}
		if v.State == StateDone || v.State == StateFailed || v.State == StateCancelled {
			return v
		}
		if time.Now().After(deadline) {
			e.t.Fatalf("job %s stuck in state %s", id, v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func testGraph(seed uint64) *graph.Graph {
	g, _ := gen.PlantedPartition(600, 8, 8, 0.5, seed)
	return g
}

func TestEndToEnd(t *testing.T) {
	e := newEnv(t, Config{Workers: 2})
	g := testGraph(1)
	id := e.uploadMetis(g)

	v, code := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":4,"options":{"mode":"minimal","pes":2}}`, id))
	if code != http.StatusAccepted {
		t.Fatalf("cold submit returned %d, want 202", code)
	}
	v = e.await(v.ID)
	if v.State != StateDone {
		t.Fatalf("job ended %s (%s)", v.State, v.Error)
	}
	if v.Cached {
		t.Fatalf("first job reported cached")
	}

	var res resultView
	code, raw := e.do("GET", "/v1/jobs/"+v.ID+"/result", nil, &res)
	if code != http.StatusOK {
		t.Fatalf("result: status %d: %s", code, raw)
	}
	if int32(len(res.Part)) != g.NumNodes() {
		t.Fatalf("partition has %d entries for %d nodes", len(res.Part), g.NumNodes())
	}
	for i, b := range res.Part {
		if b < 0 || b >= 4 {
			t.Fatalf("node %d assigned out-of-range block %d", i, b)
		}
	}
	if got := parhip.EdgeCut(g, res.Part); got != res.Cut {
		t.Fatalf("reported cut %d but recomputed %d", res.Cut, got)
	}
	if !res.Feasible {
		t.Errorf("partition infeasible: imbalance %f", res.Imbalance)
	}
}

func TestUploadBinaryFormat(t *testing.T) {
	e := newEnv(t, Config{Workers: 1})
	g := testGraph(2)
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		t.Fatalf("write binary: %v", err)
	}
	var meta storedGraph
	code, raw := e.do("POST", "/v1/graphs", buf.Bytes(), &meta)
	if code != http.StatusCreated {
		t.Fatalf("binary upload: status %d: %s", code, raw)
	}
	if meta.N != g.NumNodes() || meta.M != g.NumEdges() {
		t.Fatalf("metadata (n=%d, m=%d) != graph (n=%d, m=%d)", meta.N, meta.M, g.NumNodes(), g.NumEdges())
	}
	if meta.Fingerprint != g.Fingerprint() {
		t.Fatalf("fingerprint mismatch")
	}

	// Re-uploading the identical graph (any format) is idempotent.
	id2 := e.uploadMetis(g)
	if id2 != meta.ID {
		t.Fatalf("re-upload created new graph %s, want %s", id2, meta.ID)
	}
}

func TestCacheHitSkipsRecomputation(t *testing.T) {
	var runs atomic.Int64
	cfg := Config{Workers: 2}
	cfg.PartitionFn = func(ctx context.Context, g *graph.Graph, k int32, opt parhip.Options, prev *parhip.Partition, onProgress func(parhip.ProgressEvent)) (parhip.Result, error) {
		runs.Add(1)
		return parhip.PartitionGraph(g, k, opt)
	}
	e := newEnv(t, cfg)
	id := e.uploadMetis(testGraph(3))

	// Eps 0 and eps 0.03 must canonicalize to the same cache key.
	first := fmt.Sprintf(`{"graph_id":%q,"k":2,"options":{"mode":"minimal","pes":2}}`, id)
	second := fmt.Sprintf(`{"graph_id":%q,"k":2,"options":{"mode":"minimal","pes":2,"eps":0.03,"seed":1}}`, id)

	v1, _ := e.submit(first)
	v1 = e.await(v1.ID)
	if v1.State != StateDone || v1.Cached {
		t.Fatalf("first job: state %s cached=%v", v1.State, v1.Cached)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("first job ran partitioner %d times", got)
	}

	v2, code := e.submit(second)
	if code != http.StatusOK {
		t.Fatalf("cached submit returned %d, want 200", code)
	}
	if v2.State != StateDone || !v2.Cached {
		t.Fatalf("second job: state %s cached=%v, want immediate cached done", v2.State, v2.Cached)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("cache hit still invoked the partitioner (%d runs)", got)
	}

	// Both jobs return identical results.
	var r1, r2 resultView
	e.do("GET", "/v1/jobs/"+v1.ID+"/result", nil, &r1)
	e.do("GET", "/v1/jobs/"+v2.ID+"/result", nil, &r2)
	if r1.Cut != r2.Cut || len(r1.Part) != len(r2.Part) {
		t.Fatalf("cached result differs: cut %d vs %d", r1.Cut, r2.Cut)
	}
	if !r2.Cached {
		t.Fatalf("second result not marked cached")
	}

	// The hit is visible in /v1/stats.
	st := e.srv.Stats()
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("stats cache hits/misses = %d/%d, want 1/1", st.Cache.Hits, st.Cache.Misses)
	}
	if st.Cache.HitRate != 0.5 {
		t.Fatalf("hit rate %f, want 0.5", st.Cache.HitRate)
	}
	if st.Core.Runs != 1 {
		t.Fatalf("core runs %d, want 1", st.Core.Runs)
	}

	// A different k misses the cache and recomputes.
	v3, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":3,"options":{"mode":"minimal","pes":2}}`, id))
	v3 = e.await(v3.ID)
	if v3.Cached {
		t.Fatalf("different k reported cached")
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("expected second computation for k=3, got %d runs", got)
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	const jobs = 12 // ≥ 8 concurrent partition jobs (acceptance criterion)
	e := newEnv(t, Config{Workers: 4, QueueSize: jobs})

	ids := make([]string, 3)
	for i := range ids {
		ids[i] = e.uploadMetis(testGraph(uint64(10 + i)))
	}

	var wg sync.WaitGroup
	errs := make(chan string, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"graph_id":%q,"k":%d,"options":{"mode":"minimal","pes":2,"seed":%d}}`,
				ids[i%len(ids)], 2+i%3, 1+i/6)
			v, _ := e.submit(body)
			v = e.await(v.ID)
			if v.State != StateDone {
				errs <- fmt.Sprintf("job %s: %s (%s)", v.ID, v.State, v.Error)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}

	st := e.srv.Stats()
	if st.Jobs.Submitted != jobs || st.Jobs.Completed != jobs {
		t.Fatalf("stats: submitted %d completed %d, want %d/%d",
			st.Jobs.Submitted, st.Jobs.Completed, jobs, jobs)
	}
	if st.Jobs.Failed != 0 {
		t.Fatalf("%d jobs failed", st.Jobs.Failed)
	}
	if st.QueueDepth != 0 || st.Running != 0 {
		t.Fatalf("work left after completion: depth %d running %d", st.QueueDepth, st.Running)
	}
	if len(st.RecentJobs) != jobs {
		t.Fatalf("recent timings has %d entries, want %d", len(st.RecentJobs), jobs)
	}
}

func TestQueueFull(t *testing.T) {
	block := make(chan struct{})
	var once sync.Once
	cfg := Config{Workers: 1, QueueSize: 1}
	cfg.PartitionFn = func(ctx context.Context, g *graph.Graph, k int32, opt parhip.Options, prev *parhip.Partition, onProgress func(parhip.ProgressEvent)) (parhip.Result, error) {
		<-block
		return parhip.PartitionGraph(g, k, opt)
	}
	e := newEnv(t, cfg)
	t.Cleanup(func() { once.Do(func() { close(block) }) })
	id := e.uploadMetis(testGraph(4))

	submit := func(k int) (int, string) {
		body := fmt.Sprintf(`{"graph_id":%q,"k":%d,"options":{"mode":"minimal","pes":2}}`, id, k)
		return e.do("POST", "/v1/jobs", []byte(body), nil)
	}
	// First job occupies the single worker; wait until it is running so the
	// queue slot is truly free for the second.
	code, raw := submit(2)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", code, raw)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.srv.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if code, raw = submit(3); code != http.StatusAccepted {
		t.Fatalf("second submit (fills queue): %d %s", code, raw)
	}
	if code, raw = submit(4); code != http.StatusTooManyRequests {
		t.Fatalf("third submit: %d %s, want 429", code, raw)
	}
	once.Do(func() { close(block) })
}

func TestValidationErrors(t *testing.T) {
	e := newEnv(t, Config{Workers: 1})
	id := e.uploadMetis(testGraph(5))

	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad k", fmt.Sprintf(`{"graph_id":%q,"k":0}`, id), http.StatusBadRequest},
		{"missing graph", `{"graph_id":"g999","k":2}`, http.StatusNotFound},
		{"bad mode", fmt.Sprintf(`{"graph_id":%q,"k":2,"options":{"mode":"turbo"}}`, id), http.StatusBadRequest},
		{"bad objective", fmt.Sprintf(`{"graph_id":%q,"k":2,"options":{"objective":"vibes"}}`, id), http.StatusBadRequest},
		{"unknown field", fmt.Sprintf(`{"graph_id":%q,"k":2,"blocks":9}`, id), http.StatusBadRequest},
		{"garbage body", `{"graph_id"`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, raw := e.do("POST", "/v1/jobs", []byte(tc.body), nil); code != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.name, code, strings.TrimSpace(raw), tc.want)
		}
	}

	if code, _ := e.do("POST", "/v1/graphs", []byte("not a graph at all"), nil); code != http.StatusBadRequest {
		t.Errorf("bad graph upload: status %d, want 400", code)
	}
	if code, _ := e.do("GET", "/v1/jobs/j999", nil, nil); code != http.StatusNotFound {
		t.Errorf("missing job: want 404, got %d", code)
	}
	if code, _ := e.do("GET", "/v1/jobs/j999/result", nil, nil); code != http.StatusNotFound {
		t.Errorf("missing job result: want 404, got %d", code)
	}
}

func TestResultBeforeDone(t *testing.T) {
	block := make(chan struct{})
	var once sync.Once
	cfg := Config{Workers: 1}
	cfg.PartitionFn = func(ctx context.Context, g *graph.Graph, k int32, opt parhip.Options, prev *parhip.Partition, onProgress func(parhip.ProgressEvent)) (parhip.Result, error) {
		<-block
		return parhip.PartitionGraph(g, k, opt)
	}
	e := newEnv(t, cfg)
	t.Cleanup(func() { once.Do(func() { close(block) }) })
	id := e.uploadMetis(testGraph(6))
	v, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":2,"options":{"mode":"minimal","pes":2}}`, id))
	if code, _ := e.do("GET", "/v1/jobs/"+v.ID+"/result", nil, nil); code != http.StatusConflict {
		t.Fatalf("result of unfinished job: status %d, want 409", code)
	}
	once.Do(func() { close(block) })
	if v = e.await(v.ID); v.State != StateDone {
		t.Fatalf("job ended %s", v.State)
	}
}

func TestGraphDeleteAfterJobFinished(t *testing.T) {
	e := newEnv(t, Config{Workers: 1})
	id := e.uploadMetis(testGraph(7))
	v, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":2,"options":{"mode":"minimal","pes":2}}`, id))
	// While the job is queued or running, the delete guard answers 409
	// (covered deterministically in TestDeleteGraphGuards); once the job
	// is done the graph can go, and its result stays readable.
	if v = e.await(v.ID); v.State != StateDone {
		t.Fatalf("job ended %s (%s)", v.State, v.Error)
	}
	if code, raw := e.do("DELETE", "/v1/graphs/"+id, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d %s", code, raw)
	}
	if code, _ := e.do("GET", "/v1/graphs/"+id, nil, nil); code != http.StatusNotFound {
		t.Fatalf("deleted graph still listed: %d", code)
	}
	if code, _ := e.do("GET", "/v1/jobs/"+v.ID+"/result", nil, nil); code != http.StatusOK {
		t.Fatalf("result unreadable after graph delete: %d", code)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newResultCache(2)
	r := func(cut int64) *parhip.Result { return &parhip.Result{Cut: cut} }
	c.put("a", r(1))
	c.put("b", r(2))
	if _, ok := c.get("a"); !ok { // refresh a; b is now LRU
		t.Fatal("a missing")
	}
	c.put("c", r(3)) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite being recently used")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.len() != 2 {
		t.Fatalf("cache len %d, want 2", c.len())
	}
}

func TestServerCloseDrainsQueue(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	e := &testEnv{t: t, srv: srv, ts: ts}
	id := e.uploadMetis(testGraph(8))
	var jobIDs []string
	for i := 0; i < 4; i++ {
		v, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":2,"options":{"mode":"minimal","pes":2,"seed":%d}}`, id, i+1))
		jobIDs = append(jobIDs, v.ID)
	}
	srv.Close() // must drain, not abandon
	for _, jid := range jobIDs {
		j, ok := srv.jobs.get(jid)
		if !ok {
			t.Fatalf("job %s vanished", jid)
		}
		srv.jobs.mu.Lock()
		state := j.state
		srv.jobs.mu.Unlock()
		if state != StateDone {
			t.Fatalf("job %s left in state %s after Close", jid, state)
		}
	}
	// Submissions after Close are rejected.
	code, _ := e.do("POST", "/v1/jobs", []byte(fmt.Sprintf(`{"graph_id":%q,"k":2}`, id)), nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit after Close: %d, want 503", code)
	}
}

// TestInfeasibleResultFailsJob: the feasibility gate turns an infeasible
// partitioner result into a failed job, counts it in infeasible_results,
// and never caches it (a resubmission must recompute).
func TestInfeasibleResultFailsJob(t *testing.T) {
	var calls atomic.Int64
	cfg := Config{Workers: 1}
	cfg.PartitionFn = func(ctx context.Context, g *graph.Graph, k int32, opt parhip.Options, prev *parhip.Partition, onProgress func(parhip.ProgressEvent)) (parhip.Result, error) {
		calls.Add(1)
		res := parhip.Result{
			Part:      make([]int32, g.NumNodes()), // everything in block 0
			Imbalance: float64(k) - 1,
			Feasible:  false,
		}
		res.Stats.Lmax = 10
		res.Stats.MaxBlockWeight = int64(g.NumNodes())
		return res, nil
	}
	e := newEnv(t, cfg)
	id := e.uploadMetis(testGraph(9))

	v, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":4,"options":{"pes":2}}`, id))
	v = e.await(v.ID)
	if v.State != StateFailed {
		t.Fatalf("infeasible job ended %s, want failed", v.State)
	}
	if !strings.Contains(v.Error, "infeasible") {
		t.Fatalf("error %q does not mention infeasibility", v.Error)
	}

	// The result endpoint must refuse, not serve the bad partition.
	code, raw := e.do("GET", "/v1/jobs/"+v.ID+"/result", nil, nil)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("result of infeasible job: status %d (%s), want 422", code, raw)
	}

	// Resubmitting the identical job must recompute: the bad result was
	// not cached.
	v2, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":4,"options":{"pes":2}}`, id))
	v2 = e.await(v2.ID)
	if v2.State != StateFailed || v2.Cached {
		t.Fatalf("resubmission: state=%s cached=%v", v2.State, v2.Cached)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("partition fn called %d times, want 2 (no caching of infeasible results)", got)
	}

	st := e.srv.Stats()
	if st.Jobs.InfeasibleResults != 2 {
		t.Fatalf("infeasible_results = %d, want 2", st.Jobs.InfeasibleResults)
	}
	if st.Jobs.Failed != 2 {
		t.Fatalf("failed = %d, want 2", st.Jobs.Failed)
	}
}

// TestStatsInfeasibleCounterZeroOnHealthyRuns: real runs never trip the
// gate now that feasibility is a core postcondition.
func TestStatsInfeasibleCounterZeroOnHealthyRuns(t *testing.T) {
	e := newEnv(t, Config{Workers: 2})
	id := e.uploadMetis(testGraph(10))
	v, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":3,"options":{"mode":"minimal","pes":2}}`, id))
	if v = e.await(v.ID); v.State != StateDone {
		t.Fatalf("job ended %s (%s)", v.State, v.Error)
	}
	if st := e.srv.Stats(); st.Jobs.InfeasibleResults != 0 {
		t.Fatalf("infeasible_results = %d, want 0", st.Jobs.InfeasibleResults)
	}
}

// TestRepartitionJobs exercises the dynamic-graph flow end to end: partition
// graph A, upload a churned revision B, repartition B seeded with A's job,
// and check the migration stats, the prev-aware cache key and the
// validation of bad prev references.
func TestRepartitionJobs(t *testing.T) {
	e := newEnv(t, Config{Workers: 2})
	g := testGraph(3)
	idA := e.uploadMetis(g)

	cold, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":4,"options":{"mode":"minimal","pes":2}}`, idA))
	if v := e.await(cold.ID); v.State != StateDone {
		t.Fatalf("cold job: %+v", v)
	}

	idB := e.uploadMetis(gen.Perturb(g, 0.05, 9))
	warm, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":4,"prev_job_id":%q,"options":{"mode":"minimal","pes":2}}`, idB, cold.ID))
	wv := e.await(warm.ID)
	if wv.State != StateDone {
		t.Fatalf("warm job: %+v", wv)
	}
	if !wv.Repartition || wv.PrevJobID != cold.ID {
		t.Errorf("warm job view lacks repartition marker: %+v", wv)
	}

	var res resultView
	if code, raw := e.do("GET", "/v1/jobs/"+warm.ID+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("warm result: status %d: %s", code, raw)
	}
	if !res.Repartition {
		t.Error("result body lacks repartition flag")
	}
	if res.MigratedNodes < 0 || res.MigratedNodes > int64(g.NumNodes()) {
		t.Errorf("implausible migrated_nodes %d", res.MigratedNodes)
	}
	if res.MigrationVolume < res.MigratedNodes {
		t.Errorf("migration_volume %d below migrated_nodes %d (unit weights)", res.MigrationVolume, res.MigratedNodes)
	}
	if len(res.Part) != int(g.NumNodes()) {
		t.Errorf("result part has %d entries, want %d", len(res.Part), g.NumNodes())
	}

	// Identical repartition submission hits the cache; the same options
	// WITHOUT prev must not (prev is part of the key).
	warm2, code := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":4,"prev_job_id":%q,"options":{"mode":"minimal","pes":2}}`, idB, cold.ID))
	if code != http.StatusOK || !warm2.Cached {
		t.Errorf("identical repartition submission not served from cache: code %d, %+v", code, warm2)
	}
	coldB, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":4,"options":{"mode":"minimal","pes":2}}`, idB))
	if coldB.Cached {
		t.Error("cold submission wrongly shared the repartition job's cache entry")
	}
	e.await(coldB.ID)

	// Inline prev: take the cold result's assignment and submit it directly.
	var coldRes resultView
	e.do("GET", "/v1/jobs/"+cold.ID+"/result", nil, &coldRes)
	prevJSON, _ := json.Marshal(coldRes.Part)
	inline, _ := e.submit(fmt.Sprintf(`{"graph_id":%q,"k":4,"prev":%s,"options":{"mode":"minimal","pes":2}}`, idB, prevJSON))
	if iv := e.await(inline.ID); iv.State != StateDone || !iv.Repartition {
		t.Errorf("inline-prev job: %+v", iv)
	}

	// Validation failures.
	for name, body := range map[string]string{
		"unknown prev job": fmt.Sprintf(`{"graph_id":%q,"k":4,"prev_job_id":"j999"}`, idB),
		"not-done prev":    fmt.Sprintf(`{"graph_id":%q,"k":4,"prev_job_id":%q,"prev":[0,1]}`, idB, cold.ID),
		"wrong k":          fmt.Sprintf(`{"graph_id":%q,"k":8,"prev_job_id":%q}`, idB, cold.ID),
		"bad inline len":   fmt.Sprintf(`{"graph_id":%q,"k":4,"prev":[0,1,2]}`, idB),
	} {
		var apiErr apiError
		if code, raw := e.do("POST", "/v1/jobs", []byte(body), &apiErr); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, code, raw)
		}
	}
}
