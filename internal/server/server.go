// Package server implements parhipd, a single-node graph-partitioning
// service wrapped around the parhip library: an HTTP API over an in-memory
// graph store, an asynchronous job manager with a bounded worker pool
// (default runtime.NumCPU workers), and an LRU result cache keyed by graph
// content fingerprint plus canonicalized options, so repeated requests for
// the same (graph, k, options) are answered without recomputation.
//
// API (all request/response bodies JSON unless noted):
//
//	POST   /v1/graphs            upload a graph (METIS text or binary format,
//	                             sniffed by magic; raw body) -> metadata
//	GET    /v1/graphs            list uploaded graphs
//	GET    /v1/graphs/{id}       one graph's metadata
//	DELETE /v1/graphs/{id}       drop a graph (409 while queued/running jobs
//	                             or a live overlay still reference it)
//	POST   /v1/graphs/{id}/live  promote the graph to a live graph: streamed
//	                             deltas, placement lookups and controller-
//	                             triggered continuous repartitioning
//	GET    /v1/graphs/{id}/live  live status: epoch, churn since last cut,
//	                             pending deltas, controller state
//	GET    /v1/graphs/{id}/live/trace  live-graph span trace (delta applies,
//	                             materializations, swaps; Chrome trace JSON)
//	POST   /v1/graphs/{id}/updates  apply one sequence-numbered delta batch
//	                             (idempotent on replay; 409 on a gap)
//	GET    /v1/graphs/{id}/placement/{v}  node v's block in the current
//	                             epoch, served lock-cheap during swaps
//	POST   /v1/jobs              submit a partition job -> job view (202;
//	                             200 when served from cache); the body may
//	                             set timeout_ms to bound queue+run time
//	GET    /v1/jobs              list jobs in submission order
//	GET    /v1/jobs/{id}         poll one job's state, timings and live
//	                             partitioner progress
//	DELETE /v1/jobs/{id}         cancel a queued or running job (200/202;
//	                             409 once done or failed)
//	GET    /v1/jobs/{id}/result  fetch the partition vector and metrics
//	GET    /v1/jobs/{id}/trace   download the Chrome trace-event JSON of a
//	                             job submitted with "trace": true (opens
//	                             in Perfetto with one track per rank)
//	GET    /v1/stats             queue depth, cache hit rate, per-job
//	                             timings, cumulative core statistics
//	GET    /metrics              Prometheus text exposition (counters,
//	                             gauges, latency histograms; non-JSON)
//	GET    /healthz              liveness probe
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"time"

	"repro"
	"repro/internal/graph"
	"repro/internal/mpi/transport"
	"repro/internal/obs"
)

// maxUploadBytes bounds an uploaded graph body (64 MiB covers every graph
// this environment can partition in reasonable time).
const maxUploadBytes = 64 << 20

// Config parameterizes a Server. The zero value gets sensible defaults.
type Config struct {
	// Workers is the worker pool size (default runtime.NumCPU()).
	Workers int
	// QueueSize bounds the number of queued-but-not-running jobs; further
	// submissions are rejected with 429 (default 4*Workers, min 16).
	QueueSize int
	// CacheSize is the LRU result cache capacity in entries (default 128).
	CacheSize int
	// MaxGraphs bounds the in-memory graph store (default 256).
	MaxGraphs int
	// CoreWorkers is the intra-rank worker-thread count every core run uses
	// for superstep compute (parhip.Options.Workers). 0 keeps the library
	// default. It is deliberately a server setting, not a job option:
	// results are bit-identical for any value, so it must never enter the
	// result cache key.
	CoreWorkers int
	// PartitionFn overrides the partitioning implementation (tests); the
	// default wraps parhip.Partition.
	PartitionFn PartitionFunc
	// Logger receives structured service events (live-controller decisions,
	// epoch swaps). Nil discards them; request logging stays with the
	// daemon's middleware.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 4 * c.Workers
		if c.QueueSize < 16 {
			c.QueueSize = 16
		}
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.MaxGraphs <= 0 {
		c.MaxGraphs = 256
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.PartitionFn == nil {
		coreWorkers := c.CoreWorkers
		c.PartitionFn = func(ctx context.Context, g *graph.Graph, k int32, opt parhip.Options,
			prev *parhip.Partition, onProgress func(parhip.ProgressEvent)) (parhip.Result, error) {
			// Applied after the cache key was built from opt: Workers only
			// changes wall-clock time, never the partition.
			opt.Workers = coreWorkers
			opts := []parhip.Option{parhip.WithK(k), parhip.WithOptions(opt),
				parhip.WithProgressFunc(onProgress)}
			if prev != nil {
				opts = append(opts, parhip.WithPrevious(prev))
			}
			p, err := parhip.New(g, opts...)
			if err != nil {
				return parhip.Result{}, err
			}
			return p.Run(ctx)
		}
	}
	return c
}

// Server is the parhipd HTTP service. Create with New, mount Handler, and
// Close on shutdown (drains accepted jobs).
type Server struct {
	cfg   Config
	store *graphStore
	jobs  *jobManager
	live  *liveManager
	mux   *http.ServeMux
	reg   *obs.Registry
	start time.Time
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	s := &Server{
		cfg:   cfg,
		store: newGraphStore(cfg.MaxGraphs),
		jobs:  newJobManager(cfg.Workers, cfg.QueueSize, cfg.CacheSize, cfg.PartitionFn, reg),
		mux:   http.NewServeMux(),
		reg:   reg,
		start: time.Now(),
	}
	s.live = newLiveManager(s.jobs, cfg.Logger)
	s.buildMetrics(reg)
	s.mux.HandleFunc("POST /v1/graphs", s.handleUpload)
	s.mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	s.mux.HandleFunc("GET /v1/graphs/{id}", s.handleGetGraph)
	s.mux.HandleFunc("DELETE /v1/graphs/{id}", s.handleDeleteGraph)
	s.mux.HandleFunc("POST /v1/graphs/{id}/live", s.handleLiveEnable)
	s.mux.HandleFunc("GET /v1/graphs/{id}/live", s.handleLiveStatus)
	s.mux.HandleFunc("GET /v1/graphs/{id}/live/trace", s.handleLiveTrace)
	s.mux.HandleFunc("POST /v1/graphs/{id}/updates", s.handleLiveUpdates)
	s.mux.HandleFunc("GET /v1/graphs/{id}/placement/{v}", s.handlePlacement)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

// Handler returns the HTTP handler for the service.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the job queue and stops the worker pool, waiting however
// long the jobs in flight take. Daemons should prefer Shutdown.
func (s *Server) Close() {
	s.live.close()
	s.jobs.close()
}

// Shutdown gracefully stops the service: no new submissions are accepted,
// queued and running jobs are drained until ctx's deadline, and past it
// the stragglers are cancelled cooperatively (they land in the cancelled
// terminal state). Returns nil when every accepted job finished, ctx.Err()
// when the drain was cut short.
func (s *Server) Shutdown(ctx context.Context) error {
	s.live.close()
	return s.jobs.shutdown(ctx)
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// --- graphs -----------------------------------------------------------

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	body := bufio.NewReaderSize(http.MaxBytesReader(w, r.Body, maxUploadBytes), 1<<16)
	prefix, _ := body.Peek(8)
	var (
		g   *graph.Graph
		err error
	)
	if graph.IsBinaryPrefix(prefix) {
		g, err = graph.ReadBinary(body)
	} else {
		g, err = graph.ReadMetis(body)
	}
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "graph exceeds %d bytes", maxUploadBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "parse graph: %v", err)
		return
	}
	sg, err := s.store.add(g, time.Now())
	if err != nil {
		writeError(w, http.StatusInsufficientStorage,
			"graph store full (%d graphs); DELETE /v1/graphs/{id} to free space", s.store.capacity())
		return
	}
	writeJSON(w, http.StatusCreated, sg)
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.list())
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	sg, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no graph %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, sg)
}

// handleDeleteGraph drops a stored graph. It refuses with 409 while the
// graph is still referenced: by a queued or running job (deleting the
// entry mid-run would let a re-upload reuse the slot and misattribute
// results) or by a live overlay (the overlay aliases the base CSR and
// continuously schedules jobs against it).
func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.live.isLive(id) {
		writeError(w, http.StatusConflict,
			"graph %s is live; live graphs cannot be deleted", id)
		return
	}
	if s.jobs.graphInUse(id) {
		writeError(w, http.StatusConflict,
			"graph %s has queued or running jobs; cancel them or retry once they finish", id)
		return
	}
	if !s.store.delete(id) {
		writeError(w, http.StatusNotFound, "no graph %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- jobs -------------------------------------------------------------

// jobOptions is the wire form of parhip.Options. Zero values select the
// library defaults; the canonical (default-applied) values are echoed back
// in job views.
type jobOptions struct {
	Mode        string  `json:"mode,omitempty"`      // fast | eco | minimal
	Class       string  `json:"class,omitempty"`     // social | mesh
	Eps         float64 `json:"eps,omitempty"`       // imbalance, default 0.03
	Seed        uint64  `json:"seed,omitempty"`      // default 1
	PEs         int     `json:"pes,omitempty"`       // simulated ranks, default 4
	Objective   string  `json:"objective,omitempty"` // cut | commvol | maxcommvol | maxquotdeg
	EvoBudgetMS int64   `json:"evo_budget_ms,omitempty"`
}

type jobRequest struct {
	GraphID string     `json:"graph_id"`
	K       int32      `json:"k"`
	Options jobOptions `json:"options"`
	// PrevJobID makes the job a migration-aware repartition run seeded
	// with the partition computed by an earlier done job — the natural
	// flow for a drifting graph: upload the new graph revision, then
	// submit with prev_job_id of the previous revision's job. Mutually
	// exclusive with Prev.
	PrevJobID string `json:"prev_job_id,omitempty"`
	// Prev inlines a previous partition (one block per node of the target
	// graph) for clients that keep partitions outside the service.
	Prev []int32 `json:"prev,omitempty"`
	// TimeoutMS optionally bounds the job's total lifetime (queue + run);
	// on expiry the job is cancelled. It is intentionally not part of the
	// options: a timeout must not change the result cache key.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Trace records per-rank spans during the run, downloadable as Chrome
	// trace-event JSON from GET /v1/jobs/{id}/trace once the job is
	// terminal. Like TimeoutMS it is not part of the options: tracing must
	// not change the result cache key, so a traced job can still be
	// answered from cache (in which case no trace exists).
	Trace bool `json:"trace,omitempty"`
}

// canonOptions maps the wire options onto parhip.Options with every default
// applied eagerly, so the cache key built from the result is canonical.
func canonOptions(o jobOptions) (parhip.Options, jobOptions, error) {
	var opt parhip.Options
	switch o.Mode {
	case "", "fast":
		opt.Mode = parhip.Fast
		o.Mode = "fast"
	case "eco":
		opt.Mode = parhip.Eco
	case "minimal":
		opt.Mode = parhip.Minimal
	default:
		return opt, o, fmt.Errorf("unknown mode %q (want fast, eco or minimal)", o.Mode)
	}
	switch o.Class {
	case "", "social":
		opt.Class = parhip.Social
		o.Class = "social"
	case "mesh":
		opt.Class = parhip.Mesh
	default:
		return opt, o, fmt.Errorf("unknown class %q (want social or mesh)", o.Class)
	}
	switch o.Objective {
	case "", "cut":
		opt.Objective = parhip.MinimizeCut
		o.Objective = "cut"
	case "commvol":
		opt.Objective = parhip.MinimizeCommVolume
	case "maxcommvol":
		opt.Objective = parhip.MinimizeMaxCommVolume
	case "maxquotdeg":
		opt.Objective = parhip.MinimizeMaxQuotientDegree
	default:
		return opt, o, fmt.Errorf("unknown objective %q", o.Objective)
	}
	if o.Eps < 0 {
		return opt, o, fmt.Errorf("eps must be >= 0, got %g", o.Eps)
	}
	if o.Eps > parhip.MaxEps {
		return opt, o, fmt.Errorf("eps must be <= %g, got %g", parhip.MaxEps, o.Eps)
	}
	if o.Eps == 0 {
		o.Eps = 0.03
	}
	opt.Eps = o.Eps
	if o.Seed == 0 {
		o.Seed = 1
	}
	opt.Seed = o.Seed
	if o.PEs < 0 {
		return opt, o, fmt.Errorf("pes must be >= 0, got %d", o.PEs)
	}
	if o.PEs == 0 {
		o.PEs = 4
	}
	opt.PEs = o.PEs
	if o.EvoBudgetMS < 0 {
		return opt, o, fmt.Errorf("evo_budget_ms must be >= 0, got %d", o.EvoBudgetMS)
	}
	opt.EvoTimeBudget = time.Duration(o.EvoBudgetMS) * time.Millisecond
	return opt, o, nil
}

// progressView is the wire form of the latest partitioner checkpoint of a
// running job (see parhip.ProgressEvent).
type progressView struct {
	Phase     string  `json:"phase"`
	Cycle     int     `json:"cycle"`
	Cycles    int     `json:"cycles"`
	Level     int     `json:"level"`
	N         int64   `json:"n"`
	M         int64   `json:"m"`
	Cut       int64   `json:"cut"`
	Imbalance float64 `json:"imbalance"`
	ElapsedMS float64 `json:"elapsed_ms"`
	CommMsgs  int64   `json:"comm_msgs"`
	CommBytes int64   `json:"comm_bytes"`
	// transport_frames/transport_bytes mirror the transport counters at
	// the checkpoint (see StatsView.Core.Transport).
	TransportFrames int64 `json:"transport_frames"`
	TransportBytes  int64 `json:"transport_bytes"`
}

// jobView is the wire form of a job's state.
type jobView struct {
	ID      string     `json:"id"`
	GraphID string     `json:"graph_id"`
	K       int32      `json:"k"`
	Options jobOptions `json:"options"`
	// Repartition reports that the job was submitted with a previous
	// partition (PrevJobID names its source job when it came from one).
	Repartition bool          `json:"repartition,omitempty"`
	PrevJobID   string        `json:"prev_job_id,omitempty"`
	TimeoutMS   int64         `json:"timeout_ms,omitempty"`
	State       JobState      `json:"state"`
	Cached      bool          `json:"cached"`
	Error       string        `json:"error,omitempty"`
	SubmittedAt time.Time     `json:"submitted_at"`
	QueueMS     float64       `json:"queue_ms,omitempty"`
	RunMS       float64       `json:"run_ms,omitempty"`
	Progress    *progressView `json:"progress,omitempty"`
	Cut         *int64        `json:"cut,omitempty"`
	Imbalance   *float64      `json:"imbalance,omitempty"`
	Feasible    *bool         `json:"feasible,omitempty"`
}

// viewLocked snapshots j; callers hold the manager mutex.
func viewLocked(j *job) jobView {
	v := jobView{
		ID:          j.id,
		GraphID:     j.graphID,
		K:           j.k,
		Options:     j.optsView,
		Repartition: j.repart,
		PrevJobID:   j.prevJobID,
		TimeoutMS:   j.timeoutMS,
		State:       j.state,
		Cached:      j.cached,
		Error:       j.errMsg,
		SubmittedAt: j.submitted,
	}
	if j.progress != nil {
		ev := *j.progress
		v.Progress = &progressView{
			Phase:           ev.Phase,
			Cycle:           ev.Cycle,
			Cycles:          ev.Cycles,
			Level:           ev.Level,
			N:               ev.N,
			M:               ev.M,
			Cut:             ev.Cut,
			Imbalance:       ev.Imbalance,
			ElapsedMS:       float64(ev.Elapsed) / float64(time.Millisecond),
			CommMsgs:        ev.CommMsgs,
			CommBytes:       ev.CommBytes,
			TransportFrames: ev.TransportFrames,
			TransportBytes:  ev.TransportBytes,
		}
	}
	if !j.started.IsZero() {
		v.QueueMS = float64(j.started.Sub(j.submitted)) / float64(time.Millisecond)
	}
	if !j.finished.IsZero() {
		v.RunMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	}
	if j.state == StateDone && j.result != nil {
		cut, imb, feas := j.result.Cut, j.result.Imbalance, j.result.Feasible
		v.Cut, v.Imbalance, v.Feasible = &cut, &imb, &feas
	}
	return v
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode job request: %v", err)
		return
	}
	if req.K < 1 {
		writeError(w, http.StatusBadRequest, "k must be >= 1, got %d", req.K)
		return
	}
	sg, ok := s.store.get(req.GraphID)
	if !ok {
		writeError(w, http.StatusNotFound, "no graph %q", req.GraphID)
		return
	}
	if req.K > sg.N {
		writeError(w, http.StatusBadRequest, "k = %d exceeds graph %s's %d nodes", req.K, sg.ID, sg.N)
		return
	}
	if req.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "timeout_ms must be >= 0, got %d", req.TimeoutMS)
		return
	}
	opts, view, err := canonOptions(req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid options: %v", err)
		return
	}
	var prev *parhip.Partition
	switch {
	case req.PrevJobID != "" && req.Prev != nil:
		writeError(w, http.StatusBadRequest, "prev_job_id and prev are mutually exclusive")
		return
	case req.PrevJobID != "":
		prev, err = s.jobs.resultPartition(req.PrevJobID)
		if err != nil {
			writeError(w, http.StatusBadRequest, "prev_job_id: %v", err)
			return
		}
	case req.Prev != nil:
		prev, err = parhip.NewPartition(sg.g, req.Prev, req.K, opts.Eps)
		if err != nil {
			writeError(w, http.StatusBadRequest, "prev: %v", err)
			return
		}
	}
	if prev != nil {
		// Repartitioning across graph revisions is the point, so the prev
		// job may reference a different (older) graph — but the node set
		// and block count must line up with this request.
		if prev.NumNodes() != sg.N {
			writeError(w, http.StatusBadRequest,
				"previous partition has %d nodes, graph %s has %d", prev.NumNodes(), sg.ID, sg.N)
			return
		}
		if prev.K() != req.K {
			writeError(w, http.StatusBadRequest,
				"previous partition has k=%d, job requests k=%d", prev.K(), req.K)
			return
		}
	}
	j, err := s.jobs.submit(sg, req.K, opts, view, prev, req.PrevJobID, req.TimeoutMS, req.Trace)
	switch {
	case errors.Is(err, errQueueFull):
		writeError(w, http.StatusTooManyRequests, "job queue full (%d queued)", s.cfg.QueueSize)
		return
	case errors.Is(err, errClosed):
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "submit: %v", err)
		return
	}
	s.jobs.mu.Lock()
	v := viewLocked(j)
	s.jobs.mu.Unlock()
	code := http.StatusAccepted
	if v.State == StateDone {
		code = http.StatusOK // answered from cache without queueing
	}
	writeJSON(w, code, v)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.jobs.mu.Lock()
	out := make([]jobView, 0, len(s.jobs.order))
	for _, id := range s.jobs.order {
		if j, ok := s.jobs.jobs[id]; ok {
			out = append(out, viewLocked(j))
		}
	}
	s.jobs.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	s.jobs.mu.Lock()
	v := viewLocked(j)
	s.jobs.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

// handleCancelJob cancels a queued or running job. Responses: 200 with the
// job view when the job is already terminal-cancelled (queued jobs land
// here immediately; repeated DELETEs are idempotent), 202 while a running
// job's partitioner is still unwinding (poll GET /v1/jobs/{id} until state
// is "cancelled"), 404 for unknown jobs and 409 for jobs that finished
// first.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok, err := s.jobs.cancelJob(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	s.jobs.mu.Lock()
	v := viewLocked(j)
	s.jobs.mu.Unlock()
	code := http.StatusOK
	if v.State == StateRunning {
		code = http.StatusAccepted // cancellation requested, still unwinding
	}
	writeJSON(w, code, v)
}

// resultView is the wire form of a finished job's partition. Repartition
// jobs additionally expose migration statistics against the previous
// partition they were seeded with.
type resultView struct {
	JobID       string  `json:"job_id"`
	GraphID     string  `json:"graph_id"`
	K           int32   `json:"k"`
	Cached      bool    `json:"cached"`
	Cut         int64   `json:"cut"`
	Imbalance   float64 `json:"imbalance"`
	Feasible    bool    `json:"feasible"`
	Repartition bool    `json:"repartition,omitempty"`
	// MigratedNodes/MigrationVolume report how many nodes a repartition
	// result moved off their previous block and their total node weight.
	MigratedNodes   int64   `json:"migrated_nodes,omitempty"`
	MigrationVolume int64   `json:"migration_volume,omitempty"`
	Part            []int32 `json:"part"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	s.jobs.mu.Lock()
	state, errMsg, cached, repart, res := j.state, j.errMsg, j.cached, j.repart, j.result
	s.jobs.mu.Unlock()
	switch state {
	case StateFailed:
		writeError(w, http.StatusUnprocessableEntity, "job failed: %s", errMsg)
	case StateCancelled:
		writeError(w, http.StatusGone, "job cancelled: %s", errMsg)
	case StateDone:
		v := resultView{
			JobID:       j.id,
			GraphID:     j.graphID,
			K:           j.k,
			Cached:      cached,
			Cut:         res.Cut,
			Imbalance:   res.Imbalance,
			Feasible:    res.Feasible,
			Repartition: repart,
			Part:        partSlice(res),
		}
		if repart {
			v.MigratedNodes = res.Stats.MigratedNodes
			v.MigrationVolume = res.Stats.MigrationVolume
		}
		writeJSON(w, http.StatusOK, v)
	default:
		writeError(w, http.StatusConflict, "job %s is %s; poll GET /v1/jobs/%s", j.id, state, j.id)
	}
}

// handleTrace serves the recorded span trace of a job submitted with
// "trace": true as Chrome trace-event JSON (one track per simulated rank;
// open in Perfetto or chrome://tracing). 404 when the job is unknown or
// was not submitted with the trace flag, 409 while it is still queued or
// running (the trace is complete only once the job is terminal), and 409
// when the job was answered from the result cache — a cache hit never ran
// the partitioner, so there is nothing to download.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	s.jobs.mu.Lock()
	state, cached, tracer := j.state, j.cached, j.tracer
	s.jobs.mu.Unlock()
	if tracer == nil {
		if cached {
			writeError(w, http.StatusConflict,
				"job %s was answered from cache; no trace was recorded", j.id)
			return
		}
		writeError(w, http.StatusNotFound,
			"job %s was not submitted with \"trace\": true", j.id)
		return
	}
	switch state {
	case StateDone, StateFailed, StateCancelled:
		// Terminal: the simulated ranks have unwound, the span set is
		// final. A failed or cancelled job still serves its partial trace —
		// often exactly the spans needed to see where it died.
	default:
		writeError(w, http.StatusConflict,
			"job %s is %s; the trace is available once the job is terminal", j.id, state)
		return
	}
	if cached {
		// Raced a twin: this job queued, but the worker-side cache re-check
		// answered it before the partitioner ran. The tracer exists but is
		// empty, which would mislead more than a clean refusal.
		writeError(w, http.StatusConflict,
			"job %s was answered from cache; no trace was recorded", j.id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", j.id+"-trace.json"))
	_ = tracer.WriteJSON(w)
}

// partSlice is the wire-form assignment array of a result (the JSON API
// speaks raw blocks). Result.Part aliases the Partition's storage, so this
// is allocation-free per request — important for large graphs polled
// repeatedly.
func partSlice(res *parhip.Result) []int32 {
	if res == nil {
		return nil
	}
	return res.Part
}

// --- stats ------------------------------------------------------------

// StatsView is the /v1/stats payload.
type StatsView struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	Running       int     `json:"running"`

	Jobs struct {
		Submitted int64 `json:"submitted"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
		// Cancelled counts jobs that reached the cancelled terminal state,
		// whether by DELETE /v1/jobs/{id} or an expired timeout_ms.
		Cancelled int64 `json:"cancelled"`
		// InfeasibleResults counts jobs failed by the feasibility gate:
		// the partitioner returned a result violating the hard balance
		// bound even after rebalancing. Always <= Failed.
		InfeasibleResults int64 `json:"infeasible_results"`
	} `json:"jobs"`

	Cache struct {
		Size     int     `json:"size"`
		Capacity int     `json:"capacity"`
		Hits     int64   `json:"hits"`
		Misses   int64   `json:"misses"`
		HitRate  float64 `json:"hit_rate"`
	} `json:"cache"`

	Graphs struct {
		Count    int `json:"count"`
		Capacity int `json:"capacity"`
	} `json:"graphs"`

	// Core aggregates parhip/core statistics over every job that actually
	// ran the partitioner (cache hits excluded).
	Core struct {
		Runs      int64   `json:"runs"`
		CoarsenMS float64 `json:"coarsen_ms"`
		InitMS    float64 `json:"init_ms"`
		RefineMS  float64 `json:"refine_ms"`
		TotalMS   float64 `json:"total_ms"`
		// Communication totals across the simulated ranks of those runs.
		// comm_bytes is the wire volume (8 bytes per payload word); the
		// neighbor_* fields isolate the sparse halo-exchange share, and the
		// *_exchanges fields count all-to-all supersteps by class.
		MessagesSent      int64 `json:"messages_sent"`
		WordsSent         int64 `json:"words_sent"`
		CommBytes         int64 `json:"comm_bytes"`
		NeighborMessages  int64 `json:"neighbor_messages"`
		NeighborWords     int64 `json:"neighbor_words"`
		DenseExchanges    int64 `json:"dense_exchanges"`
		NeighborExchanges int64 `json:"neighbor_exchanges"`
		CumulativeCut     int64 `json:"cumulative_cut"`
		// Transport is the transport-level view of the same traffic,
		// aggregated over those runs: frames/bytes actually handed to the
		// transport, plus the failure-path counters (reconnects, heartbeat
		// misses, peer failures — always zero on the in-process transport).
		Transport transport.Stats `json:"transport"`
		// Sclp is the intra-rank worksharing view of those runs (rank 0):
		// the wall-time split between the parallel propose and sequential
		// commit halves of the label-propagation supersteps, and the mean
		// propose-pass worker utilization.
		Sclp struct {
			Workers            int     `json:"workers"`
			Supersteps         int64   `json:"supersteps"`
			ProposeMS          float64 `json:"propose_ms"`
			CommitMS           float64 `json:"commit_ms"`
			WorkerBusyMS       float64 `json:"worker_busy_ms"`
			ProposeUtilization float64 `json:"propose_utilization"`
		} `json:"sclp"`
	} `json:"core"`

	// RecentJobs holds per-job timings for the last completed jobs,
	// newest last.
	RecentJobs []JobTiming `json:"recent_jobs"`
}

// Stats snapshots the service counters (also served at /v1/stats).
func (s *Server) Stats() StatsView {
	m := s.jobs
	var v StatsView
	v.UptimeSeconds = time.Since(s.start).Seconds()

	m.mu.Lock()
	v.QueueDepth = len(m.queue)
	v.QueueCapacity = m.queueCap
	v.Workers = m.workers
	v.Running = m.running
	v.Jobs.Submitted = m.submitted
	v.Jobs.Completed = m.completed
	v.Jobs.Failed = m.failed
	v.Jobs.Cancelled = m.cancelled
	v.Jobs.InfeasibleResults = m.infeasible
	v.Cache.Hits = m.cacheHits
	v.Cache.Misses = m.cacheMisses
	v.Core.Runs = m.coreRuns
	v.Core.CoarsenMS = float64(m.coarsenTime) / float64(time.Millisecond)
	v.Core.InitMS = float64(m.initTime) / float64(time.Millisecond)
	v.Core.RefineMS = float64(m.refineTime) / float64(time.Millisecond)
	v.Core.TotalMS = float64(m.totalTime) / float64(time.Millisecond)
	v.Core.MessagesSent = m.comm.MessagesSent
	v.Core.WordsSent = m.comm.WordsSent
	v.Core.CommBytes = m.comm.BytesSent()
	v.Core.NeighborMessages = m.comm.NeighborMessages
	v.Core.NeighborWords = m.comm.NeighborWords
	v.Core.DenseExchanges = m.comm.DenseExchanges
	v.Core.NeighborExchanges = m.comm.NeighborExchanges
	v.Core.Transport = m.transport
	v.Core.CumulativeCut = m.cutSum
	v.Core.Sclp.Workers = m.par.Workers
	v.Core.Sclp.Supersteps = m.par.Supersteps
	v.Core.Sclp.ProposeMS = float64(m.par.ProposeNS) / 1e6
	v.Core.Sclp.CommitMS = float64(m.par.CommitNS) / 1e6
	v.Core.Sclp.WorkerBusyMS = float64(m.par.BusyNS) / 1e6
	v.Core.Sclp.ProposeUtilization = m.par.Utilization()
	v.RecentJobs = append([]JobTiming(nil), m.recent...)
	m.mu.Unlock()

	if total := v.Cache.Hits + v.Cache.Misses; total > 0 {
		v.Cache.HitRate = float64(v.Cache.Hits) / float64(total)
	}
	v.Cache.Size = m.cache.len()
	v.Cache.Capacity = m.cache.capacity()
	v.Graphs.Count = s.store.len()
	v.Graphs.Capacity = s.store.capacity()
	return v
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
