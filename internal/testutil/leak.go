// Package testutil holds small helpers shared by the test suites.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// WaitNoLeak polls until the goroutine count drops back to at most
// base+slack, failing the test after a generous deadline. Bracketing with
// a retry loop absorbs unrelated runtime goroutines winding down.
func WaitNoLeak(t testing.TB, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
