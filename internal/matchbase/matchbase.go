// Package matchbase implements the comparison baseline of the paper's
// evaluation: a ParMETIS-style parallel multilevel partitioner built on
// heavy-edge matching.
//
// The coarsening phase computes a matching restricted to rank-local edges
// (heavy-edge heuristic: every unmatched node matches its heaviest
// unmatched local neighbour) and contracts matched pairs. A matching can at
// best halve the graph, and on complex networks with star-like structures
// it does far worse — the failure mode the paper identifies ("ParMetis
// cannot coarsen the graphs effectively so that the coarsening phase is
// stopped too early"). When coarsening stalls, the still-large coarsest
// graph is replicated on every PE for initial partitioning; a configurable
// per-PE memory budget models the paper's out-of-memory failures (reported
// as "*" in Tables II/III).
package matchbase

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/contract"
	"repro/internal/dgraph"
	"repro/internal/graph"
	"repro/internal/kaffpa"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/sclp"
)

// ErrMemoryBudget reports that replicating the coarsest graph would exceed
// the configured per-PE memory budget — the analogue of ParMETIS running
// out of memory on uk-2007/sk-2005/arabic in the paper.
var ErrMemoryBudget = errors.New("matchbase: coarsest graph exceeds the per-PE memory budget")

// Config parameterizes a baseline run.
type Config struct {
	K   int32
	Eps float64

	// MaxLevels bounds the coarsening depth.
	MaxLevels int
	// CoarsestPerBlock stops coarsening once GlobalN <= CoarsestPerBlock*K.
	CoarsestPerBlock int64
	MinCoarsest      int64
	// StallFactor stops coarsening when one matching round shrinks the
	// node count by less than this factor (ParMETIS stops "too early" on
	// complex networks because matchings cannot shrink them).
	StallFactor float64
	// MemoryBudgetNodes is the largest coarsest graph (in nodes) a PE may
	// replicate; 0 means unlimited. The run fails with ErrMemoryBudget
	// beyond it.
	MemoryBudgetNodes int64
	// RefineIters bounds the boundary refinement rounds per level.
	RefineIters int
	// Seed drives randomness.
	Seed uint64
	// Tracer, when non-nil, records per-rank spans (matching rounds,
	// exchange supersteps) for the run. Nil disables tracing at zero cost.
	Tracer *obs.Tracer
}

// DefaultConfig returns the baseline defaults.
func DefaultConfig(k int32) Config {
	return Config{
		K:                k,
		Eps:              0.03,
		MaxLevels:        40,
		CoarsestPerBlock: 100,
		MinCoarsest:      300,
		StallFactor:      0.95,
		RefineIters:      6,
		Seed:             1,
	}
}

func (c *Config) normalize() {
	if c.Eps <= 0 {
		c.Eps = 0.03
	}
	if c.MaxLevels <= 0 {
		c.MaxLevels = 40
	}
	if c.CoarsestPerBlock <= 0 {
		c.CoarsestPerBlock = 100
	}
	if c.MinCoarsest <= 0 {
		c.MinCoarsest = 300
	}
	if c.StallFactor <= 0 {
		c.StallFactor = 0.95
	}
	if c.RefineIters <= 0 {
		c.RefineIters = 6
	}
}

// Stats reports a baseline run.
type Stats struct {
	Levels    []int64 // global node count per level, fine to coarse
	LevelsM   []int64 // global edge count per level, parallel to Levels
	CoarsestN int64
	CoarsestM int64
	Stalled   bool // coarsening stopped by the stall detector
	Cut       int64
	Imbalance float64
	// Lmax is the balance bound the run enforced; MaxBlockWeight the
	// heaviest block of the result (Feasible iff MaxBlockWeight <= Lmax).
	Lmax           int64
	MaxBlockWeight int64
	Feasible       bool
	// Phase timings, mirroring core.Stats so baseline results compare
	// apples-to-apples in benches.
	CoarsenTime time.Duration
	InitTime    time.Duration
	RefineTime  time.Duration
	TotalTime   time.Duration
	Comm        mpi.Stats // whole-world traffic (filled by Run)
}

// parallelHeavyEdgeMatching computes a heavy-edge matching in two stages,
// the scheme parallel matchers like ParMETIS's use. Stage one matches each
// unmatched node to its heaviest unmatched *local* neighbour. Stage two
// handles cross-rank edges with a propose/accept handshake: every remaining
// unmatched node proposes to its heaviest unmatched ghost neighbour; owners
// process incoming proposals in deterministic order and accept the first
// for each still-unmatched target; acceptances are sent back (collective).
// Even so, a matching can at best halve the graph, and star-like structures
// leave most nodes unmatched — the coarsening failure the paper exploits.
// The returned labels merge matched pairs (label = min global ID) and leave
// unmatched nodes as singletons.
func parallelHeavyEdgeMatching(d *dgraph.DGraph, maxWeight int64, r *rng.RNG) []int64 {
	nl := d.NLocal()
	labels := make([]int64, d.NTotal())
	for v := int32(0); v < d.NTotal(); v++ {
		labels[v] = d.ToGlobal(v)
	}
	matched := make([]bool, nl)
	order := make([]int32, nl)
	for i := range order {
		order[i] = int32(i)
	}
	r.Shuffle(int(nl), func(i, j int) { order[i], order[j] = order[j], order[i] })

	// Stage 1: local matching.
	for _, v := range order {
		if matched[v] {
			continue
		}
		ws := d.EdgeWeights(v)
		var best int32 = -1
		var bestW int64 = -1
		for i, u := range d.Neighbors(v) {
			if u >= nl || matched[u] || u == v {
				continue
			}
			if d.NW[v]+d.NW[u] > maxWeight {
				continue
			}
			if ws[i] > bestW {
				best, bestW = u, ws[i]
			}
		}
		if best < 0 {
			continue
		}
		matched[v] = true
		matched[best] = true
		gv, gu := d.ToGlobal(v), d.ToGlobal(best)
		if gu < gv {
			gv = gu
		}
		labels[v] = gv
		labels[best] = gv
	}

	// Stage 2: cross-rank handshake over the halo-exchange plan's sparse
	// neighborhood topology — proposals target ghost owners and acceptances
	// return to proposer owners, both adjacent ranks by construction, so no
	// message touches a non-adjacent PE. Proposals carry (proposer, target);
	// owners accept greedily in (target, proposer) order for determinism
	// across runs.
	plan := d.Plan()
	for _, v := range order {
		if matched[v] {
			continue
		}
		ws := d.EdgeWeights(v)
		var best int32 = -1
		var bestW int64 = -1
		for i, u := range d.Neighbors(v) {
			if u < nl || u == v {
				continue // local neighbours were stage 1
			}
			if d.NW[v]+d.NW[u] > maxWeight {
				continue
			}
			if ws[i] > bestW {
				best, bestW = u, ws[i]
			}
		}
		if best < 0 {
			continue
		}
		plan.AddToRank(d.GhostOwner(best), d.ToGlobal(v), d.ToGlobal(best))
	}
	// Flatten and sort incoming proposals deterministically.
	var all []proposal
	plan.Exchange(func(src int32, buf []int64) {
		if len(buf)%2 != 0 {
			d.Comm.PoisonPeers()
			panic(fmt.Sprintf("matchbase: rank %d sent %d words of proposals (not pairs)", src, len(buf)))
		}
		for i := 0; i < len(buf); i += 2 {
			all = append(all, proposal{buf[i], buf[i+1]})
		}
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].target != all[j].target {
			return all[i].target < all[j].target
		}
		return all[i].proposer < all[j].proposer
	})
	for _, p := range all {
		lu, ok := d.ToLocal(p.target)
		if !ok || lu >= nl || matched[lu] {
			continue
		}
		matched[lu] = true
		label := p.proposer
		if p.target < label {
			label = p.target
		}
		labels[lu] = label
		plan.AddToRank(int32(d.Owner(p.proposer)), p.proposer, label)
	}
	plan.Exchange(func(src int32, buf []int64) {
		if len(buf)%2 != 0 {
			d.Comm.PoisonPeers()
			panic(fmt.Sprintf("matchbase: rank %d sent %d words of acceptances (not pairs)", src, len(buf)))
		}
		for i := 0; i < len(buf); i += 2 {
			lu, ok := d.ToLocal(buf[i])
			if ok && lu < nl {
				matched[lu] = true
				labels[lu] = buf[i+1]
			}
		}
	})
	return labels
}

// proposal is one cross-rank matching request.
type proposal struct{ proposer, target int64 }

// PartitionDistributed runs the baseline on a distributed graph. Collective.
// ctx is honored with the same contract as core.PartitionDistributed:
// checked between levels, backed by the world's cooperative abort inside
// them.
//
//parhip:collective
func PartitionDistributed(ctx context.Context, d *dgraph.DGraph, cfg Config) ([]int64, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.K < 1 {
		return nil, Stats{}, fmt.Errorf("matchbase: k = %d", cfg.K)
	}
	cfg.normalize()
	c := d.Comm
	start := time.Now()
	var st Stats
	shared := rng.New(cfg.Seed)
	local := rng.New(cfg.Seed).Split(uint64(c.Rank() + 1))
	totalWeight := d.GlobalNodeWeight()
	lmax := partition.Lmax(totalWeight, cfg.K, cfg.Eps)
	coarsestLimit := cfg.CoarsestPerBlock * int64(cfg.K)
	if coarsestLimit < cfg.MinCoarsest {
		coarsestLimit = cfg.MinCoarsest
	}
	// Matched pairs must stay contractible into a feasible partition.
	maxPair := lmax / 2
	if mw := d.MaxNodeWeightGlobal(); maxPair < mw {
		maxPair = mw
	}

	type levelRec struct {
		fine         *dgraph.DGraph
		coarse       *dgraph.DGraph
		fineToCoarse []int64
	}
	cur := d
	var levels []levelRec
	st.Levels = append(st.Levels, cur.GlobalN)
	st.LevelsM = append(st.LevelsM, cur.GlobalM)
	tCoarsen := time.Now()
	for lvl := 0; lvl < cfg.MaxLevels && cur.GlobalN > coarsestLimit; lvl++ {
		if err := ctx.Err(); err != nil {
			return nil, st, err
		}
		sp := c.Tracer().Begin(c.Rank(), "matchbase.match_round")
		labels := parallelHeavyEdgeMatching(cur, maxPair, local)
		// Owners may have matched nodes other ranks hold as ghosts; bring
		// the ghost labels in sync before contracting.
		cur.SyncGhosts(labels)
		res := contract.ParContract(cur, labels)
		c.Tracer().End2(sp, "level", int64(lvl), "coarse_n", res.Coarse.GlobalN)
		if float64(res.Coarse.GlobalN) >= cfg.StallFactor*float64(cur.GlobalN) {
			st.Stalled = true
			break
		}
		levels = append(levels, levelRec{fine: cur, coarse: res.Coarse, fineToCoarse: res.FineToCoarse})
		cur = res.Coarse
		st.Levels = append(st.Levels, cur.GlobalN)
		st.LevelsM = append(st.LevelsM, cur.GlobalM)
	}
	st.CoarsenTime = time.Since(tCoarsen)
	st.CoarsestN = cur.GlobalN
	st.CoarsestM = cur.GlobalM

	// Replicating the coarsest graph is where memory blows up when
	// coarsening stalled.
	if cfg.MemoryBudgetNodes > 0 && cur.GlobalN > cfg.MemoryBudgetNodes {
		st.TotalTime = time.Since(start)
		return nil, st, fmt.Errorf("%w: %d nodes > budget %d",
			ErrMemoryBudget, cur.GlobalN, cfg.MemoryBudgetNodes)
	}

	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	tInit := time.Now()
	coarsest := cur.Gather()
	// Initial partitioning: recursive bisection (PT-Scotch/ParMETIS style),
	// identical on all ranks via the shared seed.
	kc := kaffpa.DefaultConfig(cfg.K)
	kc.Eps = cfg.Eps
	kc.Seed = shared.Uint64()
	kc.CoarsestSize = coarsest.NumNodes() + 1 // no further coarsening inside
	best, err := kaffpa.Partition(coarsest, kc)
	if err != nil {
		return nil, st, err
	}
	st.InitTime = time.Since(tInit)

	tRefine := time.Now()
	curPart := make([]int64, cur.NTotal())
	for v := int32(0); v < cur.NTotal(); v++ {
		curPart[v] = int64(best[cur.ToGlobal(v)])
	}
	refine := func(dg *dgraph.DGraph, part []int64) {
		sclp.ParRefine(dg, part, sclp.ParRefineConfig{
			K: cfg.K, Lmax: lmax, Iterations: cfg.RefineIters, Seed: shared.Uint64(),
		})
	}
	refine(cur, curPart)
	for i := len(levels) - 1; i >= 0; i-- {
		if err := ctx.Err(); err != nil {
			return nil, st, err
		}
		lv := levels[i]
		curPart = contract.ParProject(lv.fine, lv.coarse, lv.fineToCoarse, curPart)
		refine(lv.fine, curPart)
	}
	st.RefineTime = time.Since(tRefine)

	st.Cut = d.EdgeCut(curPart)
	bw := d.BlockWeights(curPart, cfg.K)
	var mx int64
	st.Feasible = true
	for _, w := range bw {
		if w > mx {
			mx = w
		}
		if w > lmax {
			st.Feasible = false
		}
	}
	st.Imbalance = float64(mx)/(float64(totalWeight)/float64(cfg.K)) - 1
	st.Lmax = lmax
	st.MaxBlockWeight = mx
	st.TotalTime = time.Since(start)
	return curPart, st, nil
}

// Result is the outcome of a replicated-input run.
type Result struct {
	Part  partition.Partition
	Stats Stats
}

// Run partitions g with P simulated PEs using the baseline. It returns
// ErrMemoryBudget (wrapped) when the memory model aborts the run. Run is
// RunCtx with a background context.
func Run(P int, g *graph.Graph, cfg Config) (Result, error) {
	return RunCtx(context.Background(), P, g, cfg)
}

// RunCtx is Run bound to a context: cancellation unwinds every simulated
// rank cooperatively and returns ctx.Err().
func RunCtx(ctx context.Context, P int, g *graph.Graph, cfg Config) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	var res Result
	var runErr error
	world := mpi.NewWorld(P)
	world.SetTracer(cfg.Tracer)
	stop := world.WatchContext(ctx)
	defer stop()
	world.Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		part, st, err := PartitionDistributed(ctx, d, cfg)
		if err != nil {
			if c.Rank() == 0 {
				runErr = err
				res.Stats = st
			}
			return
		}
		// The gather is issued on every rank before any rank-dependent
		// branching: a collective inside the rank-0 arm would deadlock the
		// other ranks (caught by parhiplint's collective analyzer).
		parts := d.Comm.Allgatherv(part[:d.NLocal()])
		if c.Rank() == 0 {
			full := make(partition.Partition, d.GlobalN)
			var gv int64
			for _, p := range parts {
				for _, b := range p {
					full[gv] = int32(b)
					gv++
				}
			}
			st.Comm = world.TotalStats()
			res = Result{Part: full, Stats: st}
		}
	})
	if runErr == nil && res.Part == nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	return res, runErr
}
