package matchbase

import (
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func TestRunMeshFeasible(t *testing.T) {
	g := gen.DelaunayLike(2500, 1)
	res, err := Run(4, g, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	rep := partition.Evaluate(g, res.Part, 2, 0.03)
	if !rep.Feasible {
		t.Fatalf("infeasible: %v", rep)
	}
	if rep.Cut*4 > g.TotalEdgeWeight() {
		t.Fatalf("cut %d too large", rep.Cut)
	}
}

func TestMatchingCoarseningEffectiveOnMesh(t *testing.T) {
	// On a mesh, matching halves the graph per level: coarsening reaches
	// the limit without stalling.
	g := gen.DelaunayLike(4000, 2)
	res, err := Run(2, g, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Stalled {
		t.Fatalf("matching stalled on a mesh: levels %v", res.Stats.Levels)
	}
	if res.Stats.CoarsestN > 1000 {
		t.Fatalf("mesh coarsening stopped early at %d nodes", res.Stats.CoarsestN)
	}
}

func TestMatchingStallsOnStarOfCliques(t *testing.T) {
	// A hub-heavy graph: matching can shrink cliques but the paper's
	// observation is the contrast in shrink factor per level vs cluster
	// contraction. Verify matching needs many more levels than cluster
	// contraction to reach the same size.
	g := gen.StarOfCliques(200, 20, 3) // 4001 nodes
	res, err := Run(2, g, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	// Matching halves at best: expect at least log2(4001/600) ~ 3 levels.
	if len(res.Stats.Levels) < 3 {
		t.Fatalf("levels: %v", res.Stats.Levels)
	}
	for i := 1; i < len(res.Stats.Levels); i++ {
		shrink := float64(res.Stats.Levels[i]) / float64(res.Stats.Levels[i-1])
		if shrink < 0.45 {
			t.Fatalf("matching shrank by more than 2x in one level: %v", res.Stats.Levels)
		}
	}
}

func TestMemoryBudgetAbort(t *testing.T) {
	// A star graph is nearly unmatchable (one matched edge per hub):
	// coarsening stalls and the replicated coarsest graph exceeds a small
	// budget, reproducing the paper's "*" failures.
	g := graph.Star(5000)
	cfg := DefaultConfig(2)
	cfg.MemoryBudgetNodes = 1000
	_, err := Run(2, g, cfg)
	if err == nil {
		t.Fatal("expected memory-budget failure on a star graph")
	}
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestMemoryBudgetGenerousPasses(t *testing.T) {
	g := gen.DelaunayLike(1600, 4)
	cfg := DefaultConfig(2)
	cfg.MemoryBudgetNodes = 1 << 30
	if _, err := Run(2, g, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineWorseThanClusterContractionOnCommunities(t *testing.T) {
	// The paper's headline: on complex networks the cluster-contraction
	// system wins on quality. Compare coarsening effectiveness here (the
	// cut comparison lives in the experiment harness).
	g, _ := gen.PlantedPartition(4000, 40, 12, 0.3, 5)
	res, err := Run(2, g, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Levels) >= 2 {
		firstShrink := float64(res.Stats.Levels[1]) / float64(res.Stats.Levels[0])
		if firstShrink < 0.4 {
			t.Fatalf("matching shrank a complex network by %.2f in one level — too effective", firstShrink)
		}
	}
}

func TestRunInvalidK(t *testing.T) {
	g := graph.Path(10)
	if _, err := Run(1, g, Config{K: 0}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunSingleRank(t *testing.T) {
	g := gen.RGG(800, 6)
	res, err := Run(1, g, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := partition.Validate(g, res.Part, 4); err != nil {
		t.Fatal(err)
	}
	if !partition.IsFeasible(g, res.Part, 4, 0.03) {
		t.Errorf("infeasible (imbalance %.4f)", partition.Imbalance(g, res.Part, 4))
	}
}
