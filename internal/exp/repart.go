package exp

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// RepartPoint is one repartitioning measurement: a graph is partitioned
// cold, a churned copy is partitioned cold again and once more warm
// (seeded with the pre-churn partition through the migration-aware path),
// and the point records how the warm run's cut and migration compare.
type RepartPoint struct {
	Graph string
	N     int32
	M     int64
	K     int32
	PEs   int
	Churn float64
	// ColdCut is the cut of a from-scratch run on the churned graph;
	// WarmCut the cut of the repartition run on the same graph.
	ColdCut int64
	WarmCut int64
	// MigratedNodes/MigrationVolume are the warm run's moves relative to
	// the pre-churn partition.
	MigratedNodes   int64
	MigrationVolume int64
	ColdTime        time.Duration
	WarmTime        time.Duration
	Feasible        bool
}

// RepartOptions parameterizes RunRepartition.
type RepartOptions struct {
	K     int32   // blocks (default 16)
	PEs   int     // simulated ranks (default 8)
	Churn float64 // edge churn fraction between revisions (default 0.05)
	Scale int32   // instance size multiplier (default 1)
	Seed  uint64  // base seed (default 1)
}

// RunRepartition measures the dynamic-graph scenario on the benchmark
// set's social instances plus a mesh: cold vs warm cut and the migration
// volume. One point per instance.
func RunRepartition(opt RepartOptions) []RepartPoint {
	if opt.K <= 0 {
		opt.K = 16
	}
	if opt.PEs <= 0 {
		opt.PEs = 8
	}
	if opt.Churn <= 0 {
		opt.Churn = 0.05
	}
	if opt.Scale < 1 {
		opt.Scale = 1
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	var pts []RepartPoint
	for _, inst := range BenchmarkSet(opt.Scale) {
		g := inst.Gen(opt.Seed)
		g2 := gen.Perturb(g, opt.Churn, opt.Seed+41)

		cfg := core.FastConfig(opt.K, inst.Class)
		cfg.Seed = opt.Seed

		// A failed instance must be loud, not silently absent from the
		// bench trail: log and skip.
		skip := func(stage string, err error) {
			fmt.Fprintf(os.Stderr, "repartition: %s: %s run failed: %v (instance dropped)\n",
				inst.Name, stage, err)
		}
		prevRes, err := core.Run(opt.PEs, g, cfg)
		if err != nil {
			skip("previous", err)
			continue
		}

		tCold := time.Now()
		coldRes, err := core.Run(opt.PEs, g2, cfg)
		if err != nil {
			skip("cold", err)
			continue
		}
		coldTime := time.Since(tCold)

		warmCfg := cfg
		warmCfg.Prepartition = prevRes.Part
		warmCfg.PrevPartition = prevRes.Part
		tWarm := time.Now()
		warmRes, err := core.Run(opt.PEs, g2, warmCfg)
		if err != nil {
			skip("warm", err)
			continue
		}
		warmTime := time.Since(tWarm)

		pts = append(pts, RepartPoint{
			Graph:           inst.Name,
			N:               g2.NumNodes(),
			M:               g2.NumEdges(),
			K:               opt.K,
			PEs:             opt.PEs,
			Churn:           opt.Churn,
			ColdCut:         coldRes.Stats.Cut,
			WarmCut:         warmRes.Stats.Cut,
			MigratedNodes:   warmRes.Stats.MigratedNodes,
			MigrationVolume: warmRes.Stats.MigrationVolume,
			ColdTime:        coldTime,
			WarmTime:        warmTime,
			Feasible:        warmRes.Stats.Feasible,
		})
	}
	return pts
}

// WriteRepartition renders the repartitioning experiment as a text table.
func WriteRepartition(w io.Writer, pts []RepartPoint) {
	fmt.Fprintln(w, "Repartitioning under edge churn: cold vs warm cut and migration")
	fmt.Fprintf(w, "%-12s %9s %10s %5s %9s %9s %9s %8s %9s %9s\n",
		"graph", "n", "m", "k", "cold-cut", "warm-cut", "migrated", "mig%", "cold-s", "warm-s")
	for _, p := range pts {
		frac := 0.0
		if p.N > 0 {
			frac = 100 * float64(p.MigratedNodes) / float64(p.N)
		}
		fmt.Fprintf(w, "%-12s %9d %10d %5d %9d %9d %9d %7.1f%% %9.3f %9.3f\n",
			p.Graph, p.N, p.M, p.K, p.ColdCut, p.WarmCut,
			p.MigratedNodes, frac, p.ColdTime.Seconds(), p.WarmTime.Seconds())
	}
}

// RepartRecord is one RepartPoint in machine-readable form (snake_case,
// seconds-based, matching Record's conventions). migration_volume is the
// headline field: the node weight a serving system must reshuffle to adopt
// the warm partition.
type RepartRecord struct {
	Graph           string  `json:"graph"`
	N               int32   `json:"n"`
	M               int64   `json:"m"`
	K               int32   `json:"k"`
	PEs             int     `json:"pes"`
	Churn           float64 `json:"churn"`
	ColdCut         int64   `json:"cold_cut"`
	WarmCut         int64   `json:"warm_cut"`
	MigratedNodes   int64   `json:"migrated_nodes"`
	MigrationVolume int64   `json:"migration_volume"`
	MigratedFrac    float64 `json:"migrated_frac"`
	ColdSeconds     float64 `json:"cold_seconds"`
	WarmSeconds     float64 `json:"warm_seconds"`
	Feasible        bool    `json:"feasible"`
}

// RepartRecords converts repartitioning points to their wire form.
func RepartRecords(pts []RepartPoint) []RepartRecord {
	out := make([]RepartRecord, len(pts))
	for i, p := range pts {
		out[i] = RepartRecord{
			Graph:           p.Graph,
			N:               p.N,
			M:               p.M,
			K:               p.K,
			PEs:             p.PEs,
			Churn:           p.Churn,
			ColdCut:         p.ColdCut,
			WarmCut:         p.WarmCut,
			MigratedNodes:   p.MigratedNodes,
			MigrationVolume: p.MigrationVolume,
			ColdSeconds:     p.ColdTime.Seconds(),
			WarmSeconds:     p.WarmTime.Seconds(),
			Feasible:        p.Feasible,
		}
		if p.N > 0 {
			out[i].MigratedFrac = float64(p.MigratedNodes) / float64(p.N)
		}
	}
	return out
}
