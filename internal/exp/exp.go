// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§V) at reduced scale, comparing the
// ParHIP reproduction (fast/eco/minimal configurations) against the
// ParMETIS-style matching baseline on a synthetic benchmark set.
//
// Scales are laptop-sized and ranks are goroutines, so absolute numbers
// differ from the paper; the harness is built to reproduce the *shape* of
// the results — who wins, by roughly what factor, and where the baseline
// fails outright.
package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matchbase"
	"repro/internal/mpi"
	"repro/internal/partition"
)

// Instance is one benchmark graph (a Table I row).
type Instance struct {
	Name  string
	Type  string // "S" social/web, "M" mesh
	Class core.GraphClass
	Gen   func(seed uint64) *graph.Graph
}

// BenchmarkSet returns the synthetic analogue of Table I. scale multiplies
// the base node counts (scale 1 keeps every instance below ~20k nodes so a
// full table run stays in seconds-to-minutes territory).
func BenchmarkSet(scale int32) []Instance {
	if scale < 1 {
		scale = 1
	}
	s := func(n int32) int32 { return n * scale }
	return []Instance{
		// Social / web analogues (paper: amazon, youtube, enwiki, eu-2005,
		// in-2004, uk-2002, arabic, sk-2005, uk-2007).
		{"ba-social", "S", core.ClassSocial, func(seed uint64) *graph.Graph {
			return gen.BarabasiAlbert(s(6000), 5, seed)
		}},
		{"rmat-social", "S", core.ClassSocial, func(seed uint64) *graph.Graph {
			sc := 0
			for (int32(1) << sc) < s(8192) {
				sc++
			}
			return gen.RMAT(sc, 8, 0.57, 0.19, 0.19, seed)
		}},
		{"web-comm", "S", core.ClassSocial, func(seed uint64) *graph.Graph {
			g, _ := gen.PlantedPartition(s(8000), 60, 12, 0.5, seed)
			return g
		}},
		{"web-large", "S", core.ClassSocial, func(seed uint64) *graph.Graph {
			// Web-crawl analogue: a community core plus a large degree-one
			// fringe hanging off few hub pages. The fringe is what defeats
			// matching-based coarsening (a hub can match only one leaf per
			// level), while cluster contraction absorbs whole stars at
			// once — the paper's uk-2007 failure mode in miniature.
			return gen.WebCrawlLike(s(16000), 100, 10, 0.4, 160, seed)
		}},
		// Mesh analogues (paper: packing, channel, hugebubbles, nlpkkt240,
		// del*, rgg*).
		{"rgg", "M", core.ClassMesh, func(seed uint64) *graph.Graph {
			return gen.RGG(s(8000), seed)
		}},
		{"delaunay", "M", core.ClassMesh, func(seed uint64) *graph.Graph {
			return gen.DelaunayLike(s(8100), seed)
		}},
		{"mesh3d", "M", core.ClassMesh, func(seed uint64) *graph.Graph {
			side := int32(20)
			for side*side*side < s(8000) {
				side++
			}
			return gen.Mesh3D(side, side, side)
		}},
		{"bubbles", "M", core.ClassMesh, func(seed uint64) *graph.Graph {
			return gen.DelaunayLike(s(16000), seed+3)
		}},
	}
}

// addHubs wires hubCount hubs (randomly chosen nodes) to spokes random
// other nodes each.
func addHubs(b *graph.Builder, n, hubCount, spokes int32, seed uint64) {
	r := newRand(seed)
	for h := int32(0); h < hubCount; h++ {
		hub := r.Int31n(n)
		for s := int32(0); s < spokes; s++ {
			v := r.Int31n(n)
			if v != hub {
				b.AddEdge(hub, v)
			}
		}
	}
}

// AlgoStats aggregates repeated runs of one algorithm on one instance.
// Quality metrics are recomputed from the returned partition vectors, not
// trusted from the algorithms' own reports.
type AlgoStats struct {
	AvgCut       float64
	BestCut      int64
	AvgImbalance float64
	AvgTime      time.Duration
	// CommMsgs and CommBytes are the per-repetition average simulated-rank
	// traffic, so BENCH_*.json trajectories can record communication-volume
	// regressions alongside quality drift.
	CommMsgs  int64
	CommBytes int64
	// Feasible reports whether every repetition respected the hard balance
	// bound Lmax; WorstOverload is the largest observed excess over Lmax
	// (0 when Feasible). Recording both lets BENCH_*.json trajectories
	// catch balance regressions, not just cut/imbalance drift.
	Feasible      bool
	WorstOverload int64
	Failed        bool
	Reason        string
}

func (a AlgoStats) cutString() string {
	if a.Failed {
		return "*"
	}
	return fmt.Sprintf("%.0f", a.AvgCut)
}

func (a AlgoStats) bestString() string {
	if a.Failed {
		return "*"
	}
	return fmt.Sprintf("%d", a.BestCut)
}

func (a AlgoStats) timeString() string {
	if a.Failed {
		return "*"
	}
	return fmt.Sprintf("%.2f", a.AvgTime.Seconds())
}

// runner executes one partitioning attempt and returns the partition it
// produced plus the simulated-rank traffic of the run; the harness
// evaluates quality itself.
type runner func(g *graph.Graph, seed uint64) (part []int32, elapsed time.Duration, comm mpi.Stats, err error)

func repeat(g *graph.Graph, k int32, eps float64, reps int, r runner) AlgoStats {
	var st AlgoStats
	var sumCut, sumImb float64
	var sumTime time.Duration
	var sumComm mpi.Stats
	st.BestCut = int64(1) << 62
	st.Feasible = true
	for i := 0; i < reps; i++ {
		part, elapsed, comm, err := r(g, uint64(i+1))
		if err != nil {
			st.Failed = true
			st.Reason = err.Error()
			st.Feasible = false
			return st
		}
		cut := partition.EdgeCut(g, part)
		sumCut += float64(cut)
		sumTime += elapsed
		sumComm.Add(comm)
		if cut < st.BestCut {
			st.BestCut = cut
		}
		// One block-weight pass serves imbalance and overload both.
		var mx int64
		for _, w := range partition.BlockWeights(g, part, k) {
			if w > mx {
				mx = w
			}
		}
		total := g.TotalNodeWeight()
		if total > 0 {
			sumImb += float64(mx)/(float64(total)/float64(k)) - 1
		}
		if over := mx - partition.Lmax(total, k, eps); over > 0 {
			st.Feasible = false
			if over > st.WorstOverload {
				st.WorstOverload = over
			}
		}
	}
	st.AvgCut = sumCut / float64(reps)
	st.AvgImbalance = sumImb / float64(reps)
	st.AvgTime = sumTime / time.Duration(reps)
	st.CommMsgs = sumComm.MessagesSent / int64(reps)
	st.CommBytes = sumComm.BytesSent() / int64(reps)
	return st
}

// TableOptions configures a Table II / Table III run.
type TableOptions struct {
	K     int32
	PEs   int
	Reps  int
	Scale int32
	// Eps is the imbalance bound used both by the algorithms and by the
	// harness's feasibility evaluation (default 0.03, the paper's setting).
	Eps float64
	// BudgetDivisor sets the baseline's per-PE memory budget to
	// n/BudgetDivisor nodes (floored at twice the coarsest limit),
	// modelling the paper's fixed 512 GB against growing graphs. 0
	// disables the memory model.
	BudgetDivisor int64
}

// TableRow is one instance's results across the three algorithms.
type TableRow struct {
	Instance Instance
	N        int32
	M        int64
	Baseline AlgoStats
	Fast     AlgoStats
	Eco      AlgoStats
}

// RunTable executes the Table II (k=2) / Table III (k=32) experiment and
// returns one row per benchmark instance.
func RunTable(opt TableOptions) []TableRow {
	if opt.PEs <= 0 {
		opt.PEs = 4
	}
	if opt.Reps <= 0 {
		opt.Reps = 3
	}
	if opt.Eps <= 0 {
		opt.Eps = 0.03
	}
	var rows []TableRow
	for _, inst := range BenchmarkSet(opt.Scale) {
		g := inst.Gen(42)
		row := TableRow{Instance: inst, N: g.NumNodes(), M: g.NumEdges()}
		budget := int64(0)
		if opt.BudgetDivisor > 0 {
			budget = int64(g.NumNodes()) / opt.BudgetDivisor
			floor := 2 * matchbase.DefaultConfig(opt.K).CoarsestPerBlock * int64(opt.K)
			if budget < floor {
				budget = floor
			}
		}
		row.Baseline = repeat(g, opt.K, opt.Eps, opt.Reps, func(g *graph.Graph, seed uint64) ([]int32, time.Duration, mpi.Stats, error) {
			cfg := matchbase.DefaultConfig(opt.K)
			cfg.Eps = opt.Eps
			cfg.Seed = seed
			cfg.MemoryBudgetNodes = budget
			res, err := matchbase.Run(opt.PEs, g, cfg)
			if err != nil {
				return nil, 0, mpi.Stats{}, err
			}
			return res.Part, res.Stats.TotalTime, res.Stats.Comm, nil
		})
		row.Fast = repeat(g, opt.K, opt.Eps, opt.Reps, func(g *graph.Graph, seed uint64) ([]int32, time.Duration, mpi.Stats, error) {
			cfg := core.FastConfig(opt.K, inst.Class)
			cfg.Eps = opt.Eps
			cfg.Seed = seed
			res, err := core.Run(opt.PEs, g, cfg)
			if err != nil {
				return nil, 0, mpi.Stats{}, err
			}
			return res.Part, res.Stats.TotalTime, res.Stats.Comm, nil
		})
		row.Eco = repeat(g, opt.K, opt.Eps, opt.Reps, func(g *graph.Graph, seed uint64) ([]int32, time.Duration, mpi.Stats, error) {
			cfg := core.EcoConfig(opt.K, inst.Class)
			cfg.Eps = opt.Eps
			cfg.Seed = seed
			res, err := core.Run(opt.PEs, g, cfg)
			if err != nil {
				return nil, 0, mpi.Stats{}, err
			}
			return res.Part, res.Stats.TotalTime, res.Stats.Comm, nil
		})
		rows = append(rows, row)
	}
	return rows
}

// WriteTable renders rows in the layout of Tables II/III.
func WriteTable(w io.Writer, title string, rows []TableRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-12s %-2s %8s %9s | %9s %9s %7s | %9s %9s %7s | %9s %9s %7s\n",
		"graph", "T", "n", "m",
		"base.avg", "base.best", "t[s]",
		"fast.avg", "fast.best", "t[s]",
		"eco.avg", "eco.best", "t[s]")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-2s %8d %9d | %9s %9s %7s | %9s %9s %7s | %9s %9s %7s\n",
			r.Instance.Name, r.Instance.Type, r.N, r.M,
			r.Baseline.cutString(), r.Baseline.bestString(), r.Baseline.timeString(),
			r.Fast.cutString(), r.Fast.bestString(), r.Fast.timeString(),
			r.Eco.cutString(), r.Eco.bestString(), r.Eco.timeString())
	}
	// Geometric-mean improvement over the baseline where it solved the
	// instance (the aggregate the paper reports).
	logSumFast, logSumEco := 0.0, 0.0
	cnt := 0
	for _, r := range rows {
		if r.Baseline.Failed || r.Fast.Failed || r.Eco.Failed ||
			r.Baseline.AvgCut == 0 || r.Fast.AvgCut == 0 || r.Eco.AvgCut == 0 {
			continue
		}
		logSumFast += ln(r.Baseline.AvgCut / r.Fast.AvgCut)
		logSumEco += ln(r.Baseline.AvgCut / r.Eco.AvgCut)
		cnt++
	}
	if cnt > 0 {
		fmt.Fprintf(w, "geo-mean cut ratio baseline/fast = %.3f, baseline/eco = %.3f (over %d solved instances)\n",
			exp(logSumFast/float64(cnt)), exp(logSumEco/float64(cnt)), cnt)
	}
}
