package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matchbase"
	"repro/internal/mpi"
	"repro/internal/sclp"
)

// contractStep performs one parallel contraction and returns the coarse
// graph.
func contractStep(d *dgraph.DGraph, labels []int64) *dgraph.DGraph {
	return contract.ParContract(d, labels).Coarse
}

// WeakPoint is one data point of the Figure 5 weak-scaling experiment.
type WeakPoint struct {
	Family      string
	PEs         int
	N           int32
	M           int64
	FastPerEdge float64 // seconds per edge
	BasePerEdge float64
	FastCut     int64
	BaseCut     int64
	BaseFailed  bool
}

// RunWeakScaling reproduces Figure 5: for p in peList, partition the
// instance with baseNodes*p nodes of each family (rgg, delaunay) into k
// blocks with the fast configuration and the baseline, reporting time per
// edge. The paper uses 2^19 nodes per PE and k=16; the reduced-scale
// default is baseNodes per PE and k as given.
func RunWeakScaling(peList []int, baseNodes int32, k int32, seed uint64) []WeakPoint {
	var out []WeakPoint
	for _, fam := range []string{"rgg", "delaunay"} {
		for _, p := range peList {
			n := baseNodes * int32(p)
			var g *graph.Graph
			if fam == "rgg" {
				g = gen.RGG(n, seed)
			} else {
				g = gen.DelaunayLike(n, seed)
			}
			pt := WeakPoint{Family: fam, PEs: p, N: g.NumNodes(), M: g.NumEdges()}
			fastCfg := core.FastConfig(k, core.ClassMesh)
			fastCfg.Seed = seed
			fres, err := core.Run(p, g, fastCfg)
			if err == nil {
				pt.FastPerEdge = fres.Stats.TotalTime.Seconds() / float64(g.NumEdges())
				pt.FastCut = fres.Stats.Cut
			}
			bcfg := matchbase.DefaultConfig(k)
			bcfg.Seed = seed
			bres, berr := matchbase.Run(p, g, bcfg)
			if berr != nil {
				pt.BaseFailed = true
			} else {
				pt.BasePerEdge = bres.Stats.TotalTime.Seconds() / float64(g.NumEdges())
				pt.BaseCut = bres.Stats.Cut
			}
			out = append(out, pt)
		}
	}
	return out
}

// WriteWeakScaling renders Figure 5 as a text series.
func WriteWeakScaling(w io.Writer, pts []WeakPoint) {
	fmt.Fprintf(w, "Figure 5: weak scaling, time per edge [s] (k=16 in the paper)\n")
	fmt.Fprintf(w, "%-10s %4s %9s %10s | %12s %12s | %10s %10s\n",
		"family", "p", "n", "m", "fast[s/edge]", "base[s/edge]", "fastCut", "baseCut")
	for _, pt := range pts {
		base := "*"
		baseCut := "*"
		if !pt.BaseFailed {
			base = fmt.Sprintf("%.3e", pt.BasePerEdge)
			baseCut = fmt.Sprintf("%d", pt.BaseCut)
		}
		fmt.Fprintf(w, "%-10s %4d %9d %10d | %12.3e %12s | %10d %10s\n",
			pt.Family, pt.PEs, pt.N, pt.M, pt.FastPerEdge, base, pt.FastCut, baseCut)
	}
}

// StrongPoint is one data point of the Figure 6 strong-scaling experiment.
type StrongPoint struct {
	Instance   string
	PEs        int
	FastTime   time.Duration
	FastCut    int64
	BaseTime   time.Duration
	BaseCut    int64
	BaseFailed bool
	// MinimalTime is filled only for the web instance at the largest PE
	// count (the paper runs the minimal variant on uk-2007).
	MinimalTime time.Duration
	HasMinimal  bool
}

// StrongInstance describes one fixed graph for strong scaling.
type StrongInstance struct {
	Name  string
	Class core.GraphClass
	G     *graph.Graph
	// SkipBaseline marks instances the baseline cannot handle (the paper's
	// ParMETIS fails on all large web graphs); the harness still tries it
	// and records the failure.
	BudgetDivisor int64
}

// DefaultStrongInstances builds the Figure 6 instance set at reduced scale:
// two mesh families and a hub-dominated web analogue.
func DefaultStrongInstances(scale int32) []StrongInstance {
	if scale < 1 {
		scale = 1
	}
	web := gen.WebCrawlLike(24000*scale, 120, 10, 0.4, 200, 11)
	return []StrongInstance{
		{Name: "del", Class: core.ClassMesh, G: gen.DelaunayLike(16384*scale, 5)},
		{Name: "rgg", Class: core.ClassMesh, G: gen.RGG(16384*scale, 5)},
		{Name: "web", Class: core.ClassSocial, G: web, BudgetDivisor: 6},
	}
}

// RunStrongScaling reproduces Figure 6: fixed instances, growing PE counts.
func RunStrongScaling(instances []StrongInstance, peList []int, k int32, seed uint64) []StrongPoint {
	var out []StrongPoint
	for _, inst := range instances {
		for i, p := range peList {
			pt := StrongPoint{Instance: inst.Name, PEs: p}
			cfg := core.FastConfig(k, inst.Class)
			cfg.Seed = seed
			res, err := core.Run(p, inst.G, cfg)
			if err == nil {
				pt.FastTime = res.Stats.TotalTime
				pt.FastCut = res.Stats.Cut
			}
			bcfg := matchbase.DefaultConfig(k)
			bcfg.Seed = seed
			if inst.BudgetDivisor > 0 {
				bcfg.MemoryBudgetNodes = int64(inst.G.NumNodes()) / inst.BudgetDivisor
			}
			bres, berr := matchbase.Run(p, inst.G, bcfg)
			if berr != nil {
				pt.BaseFailed = true
			} else {
				pt.BaseTime = bres.Stats.TotalTime
				pt.BaseCut = bres.Stats.Cut
			}
			if inst.Name == "web" && i == len(peList)-1 {
				mcfg := core.MinimalConfig(k, inst.Class)
				mcfg.Seed = seed
				if mres, merr := core.Run(p, inst.G, mcfg); merr == nil {
					pt.MinimalTime = mres.Stats.TotalTime
					pt.HasMinimal = true
				}
			}
			out = append(out, pt)
		}
	}
	return out
}

// WriteStrongScaling renders Figure 6 as text series.
func WriteStrongScaling(w io.Writer, pts []StrongPoint) {
	fmt.Fprintf(w, "Figure 6: strong scaling, total time [s]\n")
	fmt.Fprintf(w, "%-8s %4s | %10s %10s | %10s %10s | %10s\n",
		"inst", "p", "fast[s]", "fastCut", "base[s]", "baseCut", "minimal[s]")
	for _, pt := range pts {
		bt, bc := "*", "*"
		if !pt.BaseFailed {
			bt = fmt.Sprintf("%.3f", pt.BaseTime.Seconds())
			bc = fmt.Sprintf("%d", pt.BaseCut)
		}
		min := ""
		if pt.HasMinimal {
			min = fmt.Sprintf("%.3f", pt.MinimalTime.Seconds())
		}
		fmt.Fprintf(w, "%-8s %4d | %10.3f %10d | %10s %10s | %10s\n",
			pt.Instance, pt.PEs, pt.FastTime.Seconds(), pt.FastCut, bt, bc, min)
	}
}

// ShrinkReport compares coarsening effectiveness of cluster contraction vs
// matching on one graph (the §V-B observation that one cluster-contraction
// step shrinks a web graph by orders of magnitude while matching halves it
// at best).
type ShrinkReport struct {
	Name          string
	N             int64
	ClusterLevels []int64
	MatchLevels   []int64
}

// RunShrink measures per-level graph sizes of both coarsening schemes.
func RunShrink(name string, g *graph.Graph, P int, u int64, seed uint64) ShrinkReport {
	rep := ShrinkReport{Name: name, N: int64(g.NumNodes())}
	// Cluster contraction levels.
	mpi.NewWorld(P).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		sizes := []int64{d.GlobalN}
		cur := d
		for i := 0; i < 8 && cur.GlobalN > 200; i++ {
			labels := sclp.ParCluster(cur, sclp.ParClusterConfig{
				U: u, Iterations: 3, DegreeOrder: true, Seed: seed,
			})
			res := contractStep(cur, labels)
			if res.GlobalN >= cur.GlobalN*19/20 {
				break
			}
			cur = res
			sizes = append(sizes, cur.GlobalN)
		}
		if c.Rank() == 0 {
			rep.ClusterLevels = sizes
		}
	})
	// Matching levels via the baseline's stats.
	cfg := matchbase.DefaultConfig(2)
	cfg.Seed = seed
	if res, err := matchbase.Run(P, g, cfg); err == nil {
		rep.MatchLevels = res.Stats.Levels
	}
	return rep
}

// WriteShrink renders the coarsening-effectiveness comparison.
func WriteShrink(w io.Writer, reps []ShrinkReport) {
	fmt.Fprintf(w, "Coarsening effectiveness (graph size per level)\n")
	for _, r := range reps {
		fmt.Fprintf(w, "%-12s n=%d\n  cluster contraction: %v\n  heavy-edge matching: %v\n",
			r.Name, r.N, r.ClusterLevels, r.MatchLevels)
		if len(r.ClusterLevels) >= 2 {
			fmt.Fprintf(w, "  first-step shrink: cluster %.1fx", float64(r.ClusterLevels[0])/float64(r.ClusterLevels[1]))
			if len(r.MatchLevels) >= 2 {
				fmt.Fprintf(w, ", matching %.1fx", float64(r.MatchLevels[0])/float64(r.MatchLevels[1]))
			}
			fmt.Fprintln(w)
		}
	}
}
