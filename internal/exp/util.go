package exp

import (
	"math"

	"repro/internal/rng"
)

func ln(x float64) float64  { return math.Log(x) }
func exp(x float64) float64 { return math.Exp(x) }

func newRand(seed uint64) *rng.RNG { return rng.New(seed) }
