package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
)

func TestBenchmarkSetShape(t *testing.T) {
	set := BenchmarkSet(1)
	if len(set) < 8 {
		t.Fatalf("benchmark set has %d instances", len(set))
	}
	social, mesh := 0, 0
	for _, inst := range set {
		switch inst.Type {
		case "S":
			social++
		case "M":
			mesh++
		default:
			t.Fatalf("instance %s has type %q", inst.Name, inst.Type)
		}
		g := inst.Gen(1)
		if g.NumNodes() < 1000 {
			t.Fatalf("instance %s too small: %d nodes", inst.Name, g.NumNodes())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("instance %s: %v", inst.Name, err)
		}
	}
	if social < 4 || mesh < 4 {
		t.Fatalf("set composition: %d social, %d mesh", social, mesh)
	}
}

func TestBenchmarkSetScale(t *testing.T) {
	small := BenchmarkSet(1)[0].Gen(1)
	big := BenchmarkSet(2)[0].Gen(1)
	if big.NumNodes() <= small.NumNodes() {
		t.Fatalf("scale 2 not larger: %d vs %d", big.NumNodes(), small.NumNodes())
	}
}

func TestRepeatAggregates(t *testing.T) {
	// Path of 12 nodes, k=2: a balanced half/half split cuts 1 edge; the
	// skewed 9/3 split cuts 1 edge but overloads block 0 (Lmax(12,2,0.03)=6).
	g := graph.Path(12)
	balanced := make([]int32, 12)
	skewed := make([]int32, 12)
	for v := 0; v < 12; v++ {
		if v >= 6 {
			balanced[v] = 1
		}
		if v >= 9 {
			skewed[v] = 1
		}
	}
	calls := 0
	st := repeat(g, 2, 0.03, 3, func(_ *graph.Graph, seed uint64) ([]int32, time.Duration, mpi.Stats, error) {
		calls++
		return balanced, 0, mpi.Stats{MessagesSent: 6, WordsSent: 12}, nil
	})
	if calls != 3 {
		t.Fatalf("runner called %d times", calls)
	}
	if st.BestCut != 1 || st.AvgCut != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Failed || !st.Feasible || st.WorstOverload != 0 {
		t.Fatalf("balanced run misreported: %+v", st)
	}
	if st.CommMsgs != 6 || st.CommBytes != 12*8 {
		t.Fatalf("comm aggregation: msgs=%d bytes=%d, want 6 and 96", st.CommMsgs, st.CommBytes)
	}

	st = repeat(g, 2, 0.03, 2, func(_ *graph.Graph, seed uint64) ([]int32, time.Duration, mpi.Stats, error) {
		return skewed, 0, mpi.Stats{}, nil
	})
	if st.Feasible || st.WorstOverload != 3 {
		t.Fatalf("skewed run: feasible=%v overload=%d, want false,3", st.Feasible, st.WorstOverload)
	}
}

func TestRecordsCarryBalanceFields(t *testing.T) {
	rows := []TableRow{{
		Instance: Instance{Name: "x", Type: "S"},
		N:        100, M: 200,
		Baseline: AlgoStats{Failed: true, Reason: "memory"},
		Fast:     AlgoStats{AvgCut: 10, BestCut: 8, Feasible: true},
		Eco:      AlgoStats{AvgCut: 9, BestCut: 7, WorstOverload: 4},
	}}
	recs := Records("t", 2, 4, rows)
	if len(recs) != 3 {
		t.Fatalf("%d records", len(recs))
	}
	for _, r := range recs {
		switch r.Algo {
		case "baseline":
			if r.Feasible || !r.Failed {
				t.Fatalf("failed baseline record: %+v", r)
			}
		case "fast":
			if !r.Feasible || r.WorstOverload != 0 {
				t.Fatalf("fast record: %+v", r)
			}
		case "eco":
			if r.Feasible || r.WorstOverload != 4 {
				t.Fatalf("eco record: %+v", r)
			}
		}
	}
}

func TestWriteTableRendersFailures(t *testing.T) {
	rows := []TableRow{{
		Instance: Instance{Name: "x", Type: "S"},
		N:        100, M: 200,
		Baseline: AlgoStats{Failed: true, Reason: "memory"},
		Fast:     AlgoStats{AvgCut: 10, BestCut: 8},
		Eco:      AlgoStats{AvgCut: 9, BestCut: 7},
	}}
	var buf bytes.Buffer
	WriteTable(&buf, "test", rows)
	out := buf.String()
	if !strings.Contains(out, "*") {
		t.Fatalf("failed baseline not rendered as *: %s", out)
	}
	if !strings.Contains(out, "x") {
		t.Fatal("instance name missing")
	}
}

func TestRunShrinkOnCommunityGraph(t *testing.T) {
	g, _ := gen.PlantedPartition(3000, 30, 10, 0.3, 1)
	rep := RunShrink("web", g, 2, 200, 1)
	if len(rep.ClusterLevels) < 2 {
		t.Fatalf("no cluster levels: %v", rep.ClusterLevels)
	}
	clusterShrink := float64(rep.ClusterLevels[0]) / float64(rep.ClusterLevels[1])
	if clusterShrink < 3 {
		t.Fatalf("cluster contraction shrink %.1fx too weak", clusterShrink)
	}
	if len(rep.MatchLevels) >= 2 {
		matchShrink := float64(rep.MatchLevels[0]) / float64(rep.MatchLevels[1])
		// Matching cannot beat 2x; cluster contraction should beat it
		// clearly on a community graph (the §V-B contrast).
		if matchShrink > 2.01 {
			t.Fatalf("matching shrink %.1fx exceeds the 2x bound", matchShrink)
		}
		if clusterShrink <= matchShrink {
			t.Fatalf("cluster %.1fx not better than matching %.1fx", clusterShrink, matchShrink)
		}
	}
	var buf bytes.Buffer
	WriteShrink(&buf, []ShrinkReport{rep})
	if !strings.Contains(buf.String(), "first-step shrink") {
		t.Fatal("shrink report missing summary line")
	}
}

func TestWeakScalingSmall(t *testing.T) {
	pts := RunWeakScaling([]int{1, 2}, 2048, 4, 1)
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	for _, pt := range pts {
		if pt.FastPerEdge <= 0 {
			t.Fatalf("missing fast time for %s p=%d", pt.Family, pt.PEs)
		}
		if pt.FastCut <= 0 {
			t.Fatalf("missing fast cut for %s p=%d", pt.Family, pt.PEs)
		}
	}
	var buf bytes.Buffer
	WriteWeakScaling(&buf, pts)
	if !strings.Contains(buf.String(), "rgg") {
		t.Fatal("weak scaling output missing family")
	}
}

func TestStrongScalingSmall(t *testing.T) {
	insts := []StrongInstance{
		{Name: "del", Class: 1, G: gen.DelaunayLike(4096, 5)},
	}
	pts := RunStrongScaling(insts, []int{1, 2}, 2, 1)
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, pt := range pts {
		if pt.FastTime <= 0 {
			t.Fatalf("missing time: %+v", pt)
		}
	}
	var buf bytes.Buffer
	WriteStrongScaling(&buf, pts)
	if !strings.Contains(buf.String(), "del") {
		t.Fatal("strong scaling output missing instance")
	}
}
