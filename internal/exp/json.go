package exp

import (
	"encoding/json"
	"io"
)

// Record is one machine-readable result row: a single algorithm on a single
// instance, averaged over repetitions. cmd/bench -json emits these so the
// perf trajectory can be recorded across PRs (BENCH_*.json).
type Record struct {
	Experiment string  `json:"experiment"` // e.g. "table2"
	Graph      string  `json:"graph"`
	Type       string  `json:"type"` // "S" social/web, "M" mesh
	Algo       string  `json:"algo"` // baseline | fast | eco
	N          int32   `json:"n"`
	M          int64   `json:"m"`
	K          int32   `json:"k"`
	PEs        int     `json:"pes"`
	Cut        float64 `json:"cut"`
	BestCut    int64   `json:"best_cut"`
	Imbalance  float64 `json:"imbalance"`
	// Feasible/WorstOverload record the hard balance constraint: whether
	// every repetition respected Lmax and, if not, by how much the worst
	// block exceeded it. Always emitted (no omitempty) so trajectory diffs
	// catch a flip to infeasible.
	Feasible      bool    `json:"feasible"`
	WorstOverload int64   `json:"worst_overload"`
	Seconds       float64 `json:"seconds"`
	// CommMsgs/CommBytes are the per-repetition average message count and
	// wire volume across the simulated ranks. Always emitted so the bench
	// trajectory records communication regressions, not just quality drift.
	CommMsgs  int64  `json:"comm_msgs"`
	CommBytes int64  `json:"comm_bytes"`
	Failed    bool   `json:"failed,omitempty"`
	Reason    string `json:"reason,omitempty"`
}

// Records flattens table rows into one Record per (instance, algorithm).
func Records(experiment string, k int32, pes int, rows []TableRow) []Record {
	var out []Record
	for _, r := range rows {
		for _, a := range []struct {
			name string
			st   AlgoStats
		}{
			{"baseline", r.Baseline},
			{"fast", r.Fast},
			{"eco", r.Eco},
		} {
			rec := Record{
				Experiment: experiment,
				Graph:      r.Instance.Name,
				Type:       r.Instance.Type,
				Algo:       a.name,
				N:          r.N,
				M:          r.M,
				K:          k,
				PEs:        pes,
				Failed:     a.st.Failed,
				Reason:     a.st.Reason,
			}
			if !a.st.Failed {
				rec.Cut = a.st.AvgCut
				rec.BestCut = a.st.BestCut
				rec.Imbalance = a.st.AvgImbalance
				rec.Feasible = a.st.Feasible
				rec.WorstOverload = a.st.WorstOverload
				rec.Seconds = a.st.AvgTime.Seconds()
				rec.CommMsgs = a.st.CommMsgs
				rec.CommBytes = a.st.CommBytes
			}
			out = append(out, rec)
		}
	}
	return out
}

// GraphProps is one Table I row in machine-readable form.
type GraphProps struct {
	Graph string `json:"graph"`
	Type  string `json:"type"`
	N     int32  `json:"n"`
	M     int64  `json:"m"`
}

// WeakRecord is one Figure 5 weak-scaling point in machine-readable form
// (snake_case keys, seconds-based units, matching Record's conventions).
type WeakRecord struct {
	Family         string  `json:"family"`
	PEs            int     `json:"pes"`
	N              int32   `json:"n"`
	M              int64   `json:"m"`
	FastSecPerEdge float64 `json:"fast_s_per_edge"`
	BaseSecPerEdge float64 `json:"base_s_per_edge,omitempty"`
	FastCut        int64   `json:"fast_cut"`
	BaseCut        int64   `json:"base_cut,omitempty"`
	BaseFailed     bool    `json:"base_failed,omitempty"`
}

// WeakRecords converts weak-scaling points to their wire form.
func WeakRecords(pts []WeakPoint) []WeakRecord {
	out := make([]WeakRecord, len(pts))
	for i, p := range pts {
		out[i] = WeakRecord{
			Family:         p.Family,
			PEs:            p.PEs,
			N:              p.N,
			M:              p.M,
			FastSecPerEdge: p.FastPerEdge,
			BaseSecPerEdge: p.BasePerEdge,
			FastCut:        p.FastCut,
			BaseCut:        p.BaseCut,
			BaseFailed:     p.BaseFailed,
		}
	}
	return out
}

// StrongRecord is one Figure 6 strong-scaling point in machine-readable
// form.
type StrongRecord struct {
	Instance       string  `json:"instance"`
	PEs            int     `json:"pes"`
	FastSeconds    float64 `json:"fast_seconds"`
	FastCut        int64   `json:"fast_cut"`
	BaseSeconds    float64 `json:"base_seconds,omitempty"`
	BaseCut        int64   `json:"base_cut,omitempty"`
	BaseFailed     bool    `json:"base_failed,omitempty"`
	MinimalSeconds float64 `json:"minimal_seconds,omitempty"`
}

// StrongRecords converts strong-scaling points to their wire form.
func StrongRecords(pts []StrongPoint) []StrongRecord {
	out := make([]StrongRecord, len(pts))
	for i, p := range pts {
		out[i] = StrongRecord{
			Instance:    p.Instance,
			PEs:         p.PEs,
			FastSeconds: p.FastTime.Seconds(),
			FastCut:     p.FastCut,
			BaseSeconds: p.BaseTime.Seconds(),
			BaseCut:     p.BaseCut,
			BaseFailed:  p.BaseFailed,
		}
		if p.HasMinimal {
			out[i].MinimalSeconds = p.MinimalTime.Seconds()
		}
	}
	return out
}

// ShrinkRecord is one coarsening-effectiveness report in machine-readable
// form.
type ShrinkRecord struct {
	Graph         string  `json:"graph"`
	N             int64   `json:"n"`
	ClusterLevels []int64 `json:"cluster_levels"`
	MatchLevels   []int64 `json:"match_levels"`
}

// ShrinkRecords converts shrink reports to their wire form.
func ShrinkRecords(reps []ShrinkReport) []ShrinkRecord {
	out := make([]ShrinkRecord, len(reps))
	for i, r := range reps {
		out[i] = ShrinkRecord{
			Graph:         r.Name,
			N:             r.N,
			ClusterLevels: r.ClusterLevels,
			MatchLevels:   r.MatchLevels,
		}
	}
	return out
}

// JSONReport is the complete cmd/bench -json document.
type JSONReport struct {
	Properties []GraphProps   `json:"properties,omitempty"`
	Records    []Record       `json:"records,omitempty"`
	Weak       []WeakRecord   `json:"weak_scaling,omitempty"`
	Strong     []StrongRecord `json:"strong_scaling,omitempty"`
	Shrink     []ShrinkRecord `json:"shrink,omitempty"`
	Repart     []RepartRecord `json:"repartition,omitempty"`
}

// WriteJSON renders the report as indented JSON.
func WriteJSON(w io.Writer, rep JSONReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
