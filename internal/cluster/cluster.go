// Package cluster joins one OS process to a multi-process ParHIP world
// over the TCP transport. It is the shared logic behind the
// `parhip -transport tcp -rank i -peers ...` launcher path and the
// cmd/parhip-worker binary: every process loads the same (replicated)
// input graph, joins the rendezvous mesh as one rank, runs the identical
// SPMD partition pipeline, and the process hosting rank 0 receives the
// assembled result. The partition is bit-identical to an in-process run
// with the same seed and configuration.
package cluster

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/mpi/transport"
)

// Config describes one process's share of a cluster run. Graph, Core and
// the peer table must be identical on every process (the graph is
// replicated, as in the paper's replicated-input experiments); Rank must
// be unique.
type Config struct {
	// Rank is the rank this process hosts, in [0, len(Peers)).
	Rank int
	// Peers is the rank-ordered table of listen addresses (host:port).
	// Its length is the world size.
	Peers []string
	// Graph is the replicated input graph.
	Graph *graph.Graph
	// Core is the partition configuration; identical on every process.
	Core core.Config

	// HeartbeatInterval / HeartbeatTimeout override the transport liveness
	// parameters when positive (defaults: 250ms / 5s).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// BootstrapTimeout bounds the rendezvous wait for slow-starting peers
	// (default 30s).
	BootstrapTimeout time.Duration
	// Logf, when non-nil, receives transport lifecycle debug lines.
	Logf func(format string, args ...any)
}

// Report is what one process's run produced.
type Report struct {
	Rank      int
	WorldSize int
	// IsRoot is true in the process hosting rank 0 — the only one whose
	// Result is populated.
	IsRoot bool
	// Result is the assembled partition and statistics (root only).
	Result core.Result
	// Transport is this process's transport counter snapshot.
	Transport transport.Stats
}

// ParsePeers splits a comma-separated rank-ordered address list
// ("host0:port0,host1:port1,...").
func ParsePeers(list string) ([]string, error) {
	parts := strings.Split(list, ",")
	peers := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !strings.Contains(p, ":") {
			return nil, fmt.Errorf("cluster: peer %q has no port", p)
		}
		peers = append(peers, p)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	return peers, nil
}

// CoreConfig maps the CLI mode/class vocabulary onto a core.Config, the
// same way the public parhip.Options mapping does. Every process of one
// run must be given identical arguments.
func CoreConfig(mode, class string, k int32, eps float64, seed uint64) (core.Config, error) {
	var cls core.GraphClass
	switch class {
	case "social":
		cls = core.ClassSocial
	case "mesh":
		cls = core.ClassMesh
	default:
		return core.Config{}, fmt.Errorf("cluster: unknown graph class %q (want social or mesh)", class)
	}
	var cfg core.Config
	switch mode {
	case "fast":
		cfg = core.FastConfig(k, cls)
	case "eco":
		cfg = core.EcoConfig(k, cls)
	case "minimal":
		cfg = core.MinimalConfig(k, cls)
	default:
		return core.Config{}, fmt.Errorf("cluster: unknown mode %q (want fast, eco or minimal)", mode)
	}
	if eps > 0 {
		cfg.Eps = eps
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	return cfg, nil
}

// Run joins the mesh as cfg.Rank, partitions, and returns this process's
// report. It blocks in the rendezvous until every peer process is up
// (bounded by BootstrapTimeout), and returns an error if a peer dies
// mid-run — the whole world aborts rather than hanging. Cancelling ctx
// aborts the world cooperatively across all processes.
func Run(ctx context.Context, cfg Config) (Report, error) {
	rep := Report{Rank: cfg.Rank, WorldSize: len(cfg.Peers), IsRoot: cfg.Rank == 0}
	if cfg.Graph == nil {
		return rep, fmt.Errorf("cluster: nil graph")
	}
	if cfg.Rank < 0 || cfg.Rank >= len(cfg.Peers) {
		return rep, fmt.Errorf("cluster: rank %d outside peer table of size %d", cfg.Rank, len(cfg.Peers))
	}
	tcp, err := transport.NewTCP(transport.TCPConfig{
		Self:              cfg.Rank,
		Addrs:             cfg.Peers,
		HeartbeatInterval: cfg.HeartbeatInterval,
		HeartbeatTimeout:  cfg.HeartbeatTimeout,
		BootstrapTimeout:  cfg.BootstrapTimeout,
		Logf:              cfg.Logf,
	})
	if err != nil {
		return rep, err
	}
	world, err := mpi.NewWorldOn(tcp)
	if err != nil {
		tcp.Close()
		return rep, fmt.Errorf("cluster: rendezvous failed: %w", err)
	}
	defer world.Close()
	res, err := core.RunOn(ctx, world, cfg.Graph, cfg.Core)
	rep.Transport = world.TransportStats()
	if err != nil {
		return rep, err
	}
	rep.Result = res
	return rep, nil
}
