package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary graph format: a fixed little-endian layout that loads an order of
// magnitude faster than the METIS text format for large graphs (KaHIP ships
// a comparable "parhip binary" format for the same reason).
//
// Layout (all little-endian):
//
//	magic   uint64  'PARHIPGB'
//	version uint64  (1)
//	n       uint64
//	m2      uint64  (number of adjacency entries = 2m)
//	xadj    n+1 × uint64
//	adj     m2  × uint32
//	adjw    m2  × int64
//	nw      n   × int64
const (
	binaryMagic   = 0x5041524849504742 // "PARHIPGB"
	binaryVersion = 1
)

// IsBinaryPrefix reports whether prefix (at least 8 bytes of a stream)
// starts with the binary graph format magic, letting callers sniff the
// format before choosing ReadBinary or ReadMetis.
func IsBinaryPrefix(prefix []byte) bool {
	return len(prefix) >= 8 && binary.LittleEndian.Uint64(prefix) == binaryMagic
}

// WriteBinary writes g in the binary graph format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	n := int(g.NumNodes())
	header := []uint64{binaryMagic, binaryVersion, uint64(n), uint64(len(g.Adj))}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.XAdj); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Adj); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.AdjW); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.NW); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reads a graph in the binary graph format and validates its
// structure.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var header [4]uint64
	for i := range header {
		if err := binary.Read(br, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("graph: binary header: %w", err)
		}
	}
	if header[0] != binaryMagic {
		return nil, fmt.Errorf("graph: bad binary magic %#x", header[0])
	}
	if header[1] != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d", header[1])
	}
	n := int64(header[2])
	m2 := int64(header[3])
	if n < 0 || n > 1<<31 || m2 < 0 || m2 > 1<<40 {
		return nil, fmt.Errorf("graph: implausible binary sizes n=%d m2=%d", n, m2)
	}
	g := &Graph{
		XAdj: make([]int64, n+1),
		Adj:  make([]NodeID, m2),
		AdjW: make([]int64, m2),
		NW:   make([]int64, n),
	}
	if err := binary.Read(br, binary.LittleEndian, g.XAdj); err != nil {
		return nil, fmt.Errorf("graph: binary xadj: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.Adj); err != nil {
		return nil, fmt.Errorf("graph: binary adj: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.AdjW); err != nil {
		return nil, fmt.Errorf("graph: binary adjw: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.NW); err != nil {
		return nil, fmt.Errorf("graph: binary nw: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary payload invalid: %w", err)
	}
	return g, nil
}
