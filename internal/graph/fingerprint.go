package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint returns a stable content hash of g: a SHA-256 over the CSR
// arrays (XAdj, Adj, AdjW) and node weights (NW), in a fixed little-endian
// encoding. Two graphs have equal fingerprints iff their serialized CSR
// representations are byte-identical, which makes the fingerprint a safe
// cache key for partitioning results: isomorphic graphs with different node
// orderings hash differently (the partition vector is ordering-dependent
// anyway), and any change to structure or weights changes the hash.
func (g *Graph) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	writeU64 := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	// Domain-separate the sections so (XAdj, Adj) boundaries are unambiguous
	// even though slice lengths are implied by n and 2m.
	writeU64(uint64(len(g.NW)))
	writeU64(uint64(len(g.Adj)))
	for _, x := range g.XAdj {
		writeU64(uint64(x))
	}
	for _, v := range g.Adj {
		binary.LittleEndian.PutUint32(buf[:4], uint32(v))
		h.Write(buf[:4])
	}
	for _, w := range g.AdjW {
		writeU64(uint64(w))
	}
	for _, w := range g.NW {
		writeU64(uint64(w))
	}
	return hex.EncodeToString(h.Sum(nil))
}
