package graph

import "testing"

func fpGraph(t *testing.T, edges [][2]int32, n int32) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func TestFingerprintDeterministic(t *testing.T) {
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	g1 := fpGraph(t, edges, 4)
	g2 := fpGraph(t, edges, 4)
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Fatalf("identical graphs produced different fingerprints")
	}
	if got := len(g1.Fingerprint()); got != 64 {
		t.Fatalf("fingerprint length = %d, want 64 hex chars", got)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpGraph(t, [][2]int32{{0, 1}, {1, 2}}, 4)
	fp := base.Fingerprint()

	// Extra edge changes the hash.
	moreEdges := fpGraph(t, [][2]int32{{0, 1}, {1, 2}, {2, 3}}, 4)
	if moreEdges.Fingerprint() == fp {
		t.Errorf("adding an edge did not change the fingerprint")
	}

	// Extra isolated node changes the hash.
	moreNodes := fpGraph(t, [][2]int32{{0, 1}, {1, 2}}, 5)
	if moreNodes.Fingerprint() == fp {
		t.Errorf("adding a node did not change the fingerprint")
	}

	// Changed edge weight changes the hash.
	b := NewBuilder(4)
	b.AddEdgeW(0, 1, 7)
	b.AddEdge(1, 2)
	if b.Build().Fingerprint() == fp {
		t.Errorf("changing an edge weight did not change the fingerprint")
	}

	// Changed node weight changes the hash.
	b2 := NewBuilder(4)
	b2.AddEdge(0, 1)
	b2.AddEdge(1, 2)
	b2.SetNodeWeight(3, 9)
	if b2.Build().Fingerprint() == fp {
		t.Errorf("changing a node weight did not change the fingerprint")
	}
}

func TestFingerprintSurvivesRoundTrip(t *testing.T) {
	g := fpGraph(t, [][2]int32{{0, 1}, {1, 2}, {2, 0}, {2, 3}}, 4)
	c := g.Clone()
	if g.Fingerprint() != c.Fingerprint() {
		t.Fatalf("clone fingerprint differs from original")
	}
}
