package graph

import (
	"testing"

	"repro/internal/rng"
)

func benchGraph(n int32, m int) *Graph {
	r := rng.New(42)
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := r.Int31n(n), r.Int31n(n)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

func BenchmarkBuilderBuild(b *testing.B) {
	r := rng.New(42)
	const n = 20000
	type edge struct{ u, v int32 }
	edges := make([]edge, 100000)
	for i := range edges {
		edges[i] = edge{r.Int31n(n), r.Int31n(n)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bu := NewBuilder(n)
		for _, e := range edges {
			if e.u != e.v {
				bu.AddEdge(e.u, e.v)
			}
		}
		bu.Build()
	}
}

func BenchmarkBFS(b *testing.B) {
	g := benchGraph(20000, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFS(g, 0)
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := benchGraph(20000, 60000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConnectedComponents(g)
	}
}

func BenchmarkDegreeOrder(b *testing.B) {
	g := benchGraph(20000, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DegreeOrder(g)
	}
}
