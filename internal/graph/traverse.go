package graph

// BFS performs a breadth-first search from source and returns the order in
// which nodes were discovered together with a distance array (-1 for
// unreachable nodes).
//
//lint:rawslice-ok BFS distance vector, not a partition
func BFS(g *Graph, source NodeID) (order []NodeID, dist []int32) {
	n := g.NumNodes()
	dist = make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	order = make([]NodeID, 0, n)
	queue := make([]NodeID, 0, n)
	dist[source] = 0
	queue = append(queue, source)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, u := range g.Neighbors(v) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return order, dist
}

// ConnectedComponents labels every node with a component ID in [0, count)
// and returns the labels and the component count.
//
//lint:rawslice-ok component IDs are cluster labels local to traversal, not a partition
func ConnectedComponents(g *Graph) (comp []int32, count int32) {
	n := g.NumNodes()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var stack []NodeID
	for s := int32(0); s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = count
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.Neighbors(v) {
				if comp[u] < 0 {
					comp[u] = count
					stack = append(stack, u)
				}
			}
		}
		count++
	}
	return comp, count
}

// IsConnected reports whether the graph has exactly one connected component
// (the empty graph is considered connected).
func IsConnected(g *Graph) bool {
	if g.NumNodes() == 0 {
		return true
	}
	_, cnt := ConnectedComponents(g)
	return cnt == 1
}

// DegreeOrder returns the node IDs sorted by ascending degree, with ties
// broken by node ID. The paper (§III-A) uses this ordering in the first
// label propagation round so that low-degree nodes settle before hubs.
func DegreeOrder(g *Graph) []NodeID {
	n := int(g.NumNodes())
	// Counting sort by degree: degrees are bounded by n-1.
	maxDeg := int(g.MaxDegree())
	cnt := make([]int32, maxDeg+2)
	for v := 0; v < n; v++ {
		cnt[g.Degree(int32(v))+1]++
	}
	for d := 1; d <= maxDeg+1; d++ {
		cnt[d] += cnt[d-1]
	}
	order := make([]NodeID, n)
	for v := 0; v < n; v++ {
		d := g.Degree(int32(v))
		order[cnt[d]] = int32(v)
		cnt[d]++
	}
	return order
}

// InducedSubgraph extracts the subgraph induced by the given nodes. It
// returns the subgraph and the mapping from subgraph IDs back to ids in g.
// Edges with exactly one endpoint in nodes are dropped.
func InducedSubgraph(g *Graph, nodes []NodeID) (*Graph, []NodeID) {
	toLocal := make(map[NodeID]NodeID, len(nodes))
	for i, v := range nodes {
		toLocal[v] = int32(i)
	}
	b := NewBuilder(int32(len(nodes)))
	back := make([]NodeID, len(nodes))
	for i, v := range nodes {
		back[i] = v
		b.SetNodeWeight(int32(i), g.NW[v])
		for j, u := range g.Neighbors(v) {
			lu, ok := toLocal[u]
			if !ok || u <= v { // add each edge once, from the smaller endpoint
				continue
			}
			b.AddEdgeW(int32(i), lu, g.EdgeWeights(v)[j])
		}
	}
	return b.Build(), back
}
