package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Fatalf("got %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(1))
	}
}

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdgeW(0, 1, 2)
	b.AddEdgeW(1, 0, 3) // reverse direction merges too
	b.AddEdgeW(0, 1, 1)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	if w, ok := g.HasEdge(0, 1); !ok || w != 6 {
		t.Fatalf("edge weight = %d, want 6", w)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderRejectsSelfLoops(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("AddEdge(0, 0) did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "self-loop") {
			t.Fatalf("panic message %v does not name the self-loop", r)
		}
	}()
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 0)
}

// TestBuilderWeightedRoundTrip drives weighted edges and node weights
// through Build and both I/O formats and checks they come back intact.
func TestBuilderWeightedRoundTrip(t *testing.T) {
	b := NewBuilder(4)
	b.SetNodeWeight(0, 7)
	b.SetNodeWeight(3, 2)
	b.AddEdgeW(0, 1, 5)
	b.AddEdgeW(1, 0, 3) // duplicate in the opposite direction: weights merge
	b.AddEdgeW(1, 2, 4)
	b.AddEdgeW(2, 3, 1)
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if w, ok := g.HasEdge(0, 1); !ok || w != 8 {
		t.Fatalf("merged edge weight = %d, want 8", w)
	}
	if w, ok := g.HasEdge(1, 0); !ok || w != 8 {
		t.Fatalf("reverse edge weight = %d, want 8", w)
	}
	if g.NW[0] != 7 || g.NW[1] != 1 || g.NW[3] != 2 {
		t.Fatalf("node weights: %v", g.NW)
	}

	var metis bytes.Buffer
	if err := WriteMetis(&metis, g); err != nil {
		t.Fatal(err)
	}
	gm, err := ReadMetis(&metis)
	if err != nil {
		t.Fatal(err)
	}
	var binary bytes.Buffer
	if err := WriteBinary(&binary, g); err != nil {
		t.Fatal(err)
	}
	gb, err := ReadBinary(&binary)
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]*Graph{"metis": gm, "binary": gb} {
		if got.Fingerprint() != g.Fingerprint() {
			t.Errorf("%s round trip changed the graph: %v vs %v", name, got, g)
		}
	}
}

func TestBuilderNodeWeights(t *testing.T) {
	b := NewBuilder(3)
	b.SetNodeWeight(1, 42)
	g := b.Build()
	if g.NW[0] != 1 || g.NW[1] != 42 {
		t.Fatalf("node weights: %v", g.NW)
	}
	if g.TotalNodeWeight() != 44 {
		t.Fatalf("total node weight = %d", g.TotalNodeWeight())
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestAdjacencySorted(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 4)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(0, 1)
	g := b.Build()
	nbrs := g.Neighbors(0)
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] >= nbrs[i] {
			t.Fatalf("adjacency not sorted: %v", nbrs)
		}
	}
}

func TestStandardGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n    int32
		m    int64
	}{
		{"path10", Path(10), 10, 9},
		{"cycle10", Cycle(10), 10, 10},
		{"complete6", Complete(6), 6, 15},
		{"star7", Star(7), 7, 6},
		{"grid4x5", Grid2D(4, 5), 20, 31},
	}
	for _, c := range cases {
		if c.g.NumNodes() != c.n || c.g.NumEdges() != c.m {
			t.Errorf("%s: n=%d m=%d, want n=%d m=%d",
				c.name, c.g.NumNodes(), c.g.NumEdges(), c.n, c.m)
		}
		if err := c.g.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	g := &Graph{
		XAdj: []int64{0, 1, 1},
		Adj:  []NodeID{1},
		AdjW: []int64{1},
		NW:   []int64{1, 1},
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted asymmetric graph")
	}
}

func TestValidateCatchesSelfLoop(t *testing.T) {
	g := &Graph{
		XAdj: []int64{0, 1},
		Adj:  []NodeID{0},
		AdjW: []int64{1},
		NW:   []int64{1},
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted self-loop")
	}
}

func TestValidateCatchesBadWeight(t *testing.T) {
	g := Path(3)
	g.NW[1] = 0
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted zero node weight")
	}
}

func TestClone(t *testing.T) {
	g := Cycle(5)
	c := g.Clone()
	c.NW[0] = 99
	c.AdjW[0] = 99
	if g.NW[0] == 99 || g.AdjW[0] == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestBFS(t *testing.T) {
	g := Path(5)
	order, dist := BFS(g, 0)
	if len(order) != 5 {
		t.Fatalf("order = %v", order)
	}
	for v := int32(0); v < 5; v++ {
		if dist[v] != v {
			t.Fatalf("dist[%d] = %d", v, dist[v])
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	order, dist := BFS(g, 0)
	if len(order) != 2 {
		t.Fatalf("reached %d nodes, want 2", len(order))
	}
	if dist[2] != -1 || dist[3] != -1 {
		t.Fatal("unreachable nodes should have dist -1")
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	comp, cnt := ConnectedComponents(g)
	if cnt != 3 {
		t.Fatalf("components = %d, want 3", cnt)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("nodes 0,1,2 should share a component")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] || comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatal("component labels wrong")
	}
	if !IsConnected(Cycle(4)) || IsConnected(g) {
		t.Fatal("IsConnected wrong")
	}
}

func TestDegreeOrder(t *testing.T) {
	g := Star(6) // centre has degree 5, leaves degree 1
	order := DegreeOrder(g)
	if order[len(order)-1] != 0 {
		t.Fatalf("hub should come last in degree order: %v", order)
	}
	for i := 1; i < len(order); i++ {
		if g.Degree(order[i-1]) > g.Degree(order[i]) {
			t.Fatalf("order not ascending by degree: %v", order)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Cycle(6)
	sub, back := InducedSubgraph(g, []NodeID{0, 1, 2, 3})
	if sub.NumNodes() != 4 || sub.NumEdges() != 3 {
		t.Fatalf("subgraph %v", sub)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if back[0] != 0 || back[3] != 3 {
		t.Fatalf("back map wrong: %v", back)
	}
}

func randomGraph(n int32, m int, seed uint64) *Graph {
	r := rng.New(seed)
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		u := r.Int31n(n)
		v := r.Int31n(n)
		if u != v {
			b.AddEdgeW(u, v, r.Int64n(5)+1)
		}
	}
	return b.Build()
}

func TestRandomGraphsValidate(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(50, 200, seed)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHandshakeLemma(t *testing.T) {
	// Sum of degrees equals twice the number of edges, for any built graph.
	f := func(seed uint64) bool {
		g := randomGraph(40, 150, seed)
		var sum int64
		for v := int32(0); v < g.NumNodes(); v++ {
			sum += int64(g.Degree(v))
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalEdgeWeightMatchesHasEdge(t *testing.T) {
	g := randomGraph(30, 100, 5)
	var total int64
	for u := int32(0); u < g.NumNodes(); u++ {
		for v := u + 1; v < g.NumNodes(); v++ {
			if w, ok := g.HasEdge(u, v); ok {
				total += w
			}
		}
	}
	if total != g.TotalEdgeWeight() {
		t.Fatalf("TotalEdgeWeight = %d, pairwise sum = %d", g.TotalEdgeWeight(), total)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() != 0 || g.MaxNodeWeight() != 0 {
		t.Fatal("empty graph maxima wrong")
	}
}

func TestWeightedDegree(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdgeW(0, 1, 4)
	b.AddEdgeW(0, 2, 6)
	g := b.Build()
	if g.WeightedDegree(0) != 10 {
		t.Fatalf("WeightedDegree = %d", g.WeightedDegree(0))
	}
}
