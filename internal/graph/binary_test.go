package graph

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(60, 240, seed)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			return false
		}
		for i := range g.XAdj {
			if g.XAdj[i] != g2.XAdj[i] {
				return false
			}
		}
		for i := range g.Adj {
			if g.Adj[i] != g2.Adj[i] || g.AdjW[i] != g2.AdjW[i] {
				return false
			}
		}
		for i := range g.NW {
			if g.NW[i] != g2.NW[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 0 {
		t.Fatal("empty graph round trip failed")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},
		{1, 2, 3},
		bytes.Repeat([]byte{0xff}, 64),
	}
	for i, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestBinaryRejectsTruncated(t *testing.T) {
	g := randomGraph(30, 90, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{8, 32, len(full) / 2, len(full) - 4} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestBinaryRejectsCorruptedPayload(t *testing.T) {
	g := Path(10)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt an adjacency entry beyond the node range; Validate catches it.
	data[len(data)-8*int(g.NumNodes())-8*len(g.Adj)-4] = 0xff
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Error("corrupted payload accepted")
	}
}
