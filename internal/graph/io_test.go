package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestMetisRoundTrip(t *testing.T) {
	g := randomGraph(25, 80, 9)
	var buf bytes.Buffer
	if err := WriteMetis(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadMetis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: %v -> %v", g, g2)
	}
	for v := int32(0); v < g.NumNodes(); v++ {
		if g2.NW[v] != g.NW[v] {
			t.Fatalf("node weight changed at %d", v)
		}
		a, b := g.Neighbors(v), g2.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("neighbour count changed at %d", v)
		}
		for i := range a {
			if a[i] != b[i] || g.EdgeWeights(v)[i] != g2.EdgeWeights(v)[i] {
				t.Fatalf("adjacency changed at node %d slot %d", v, i)
			}
		}
	}
}

func TestReadMetisUnweighted(t *testing.T) {
	in := "% comment\n3 2\n2\n1 3\n2\n"
	g, err := ReadMetis(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadMetisNodeWeightsOnly(t *testing.T) {
	in := "2 1 10\n5 2\n7 1\n"
	g, err := ReadMetis(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NW[0] != 5 || g.NW[1] != 7 {
		t.Fatalf("node weights: %v", g.NW)
	}
}

func TestReadMetisErrors(t *testing.T) {
	cases := []string{
		"",                   // no header
		"abc def\n",          // bad header
		"2 1 99\n2\n1\n",     // unsupported fmt
		"2 5\n2\n1\n",        // edge count mismatch
		"3 2\n2\n1 9\n2\n",   // neighbour out of range
		"2 1 10\n0 2\n1 1\n", // non-positive node weight
		"2 1 1\n2\n1\n",      // missing edge weight
	}
	for i, in := range cases {
		if _, err := ReadMetis(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error for %q", i, in)
		}
	}
}

func TestReadMetisTruncated(t *testing.T) {
	in := "4 3\n2\n1 3\n"
	if _, err := ReadMetis(strings.NewReader(in)); err == nil {
		t.Fatal("expected error for truncated file")
	}
}
