// Package graph provides the sequential compressed-sparse-row graph type
// used throughout the partitioner, together with builders, validation,
// traversal utilities and METIS-format I/O.
//
// Graphs are undirected and stored as symmetric adjacency arrays: every
// undirected edge {u, v} appears twice, once in the list of u and once in
// the list of v, with equal weight. Node and edge weights are positive
// int64 values. This matches the representation in the paper (§II-A,
// §IV-A): "the subgraphs are stored using a standard adjacency array
// representation".
package graph

import (
	"errors"
	"fmt"
)

// NodeID identifies a node. IDs are dense in [0, n).
type NodeID = int32

// Graph is an undirected graph in CSR form. The neighbours of node v are
// Adj[XAdj[v]:XAdj[v+1]] with parallel edge weights in AdjW. NW holds node
// weights. All fields may be read directly; mutate only through Builder.
type Graph struct {
	XAdj []int64  // length n+1; XAdj[0] == 0
	Adj  []NodeID // length 2m; neighbour lists
	AdjW []int64  // length 2m; edge weights, parallel to Adj
	NW   []int64  // length n; node weights
}

// NumNodes returns n, the number of nodes.
func (g *Graph) NumNodes() int32 { return int32(len(g.NW)) }

// NumEdges returns m, the number of undirected edges.
func (g *Graph) NumEdges() int64 { return int64(len(g.Adj)) / 2 }

// Degree returns the number of incident edge endpoints of v.
func (g *Graph) Degree(v NodeID) int32 {
	return int32(g.XAdj[v+1] - g.XAdj[v])
}

// Neighbors returns the neighbour slice of v. The slice aliases the graph's
// storage and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.Adj[g.XAdj[v]:g.XAdj[v+1]]
}

// EdgeWeights returns the edge-weight slice of v, parallel to Neighbors(v).
func (g *Graph) EdgeWeights(v NodeID) []int64 {
	return g.AdjW[g.XAdj[v]:g.XAdj[v+1]]
}

// TotalNodeWeight returns the sum of all node weights.
func (g *Graph) TotalNodeWeight() int64 {
	var s int64
	for _, w := range g.NW {
		s += w
	}
	return s
}

// TotalEdgeWeight returns the sum of weights over undirected edges (each
// edge counted once).
func (g *Graph) TotalEdgeWeight() int64 {
	var s int64
	for _, w := range g.AdjW {
		s += w
	}
	return s / 2
}

// MaxNodeWeight returns the largest node weight, or 0 for an empty graph.
func (g *Graph) MaxNodeWeight() int64 {
	var mw int64
	for _, w := range g.NW {
		if w > mw {
			mw = w
		}
	}
	return mw
}

// MaxDegree returns the largest degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int32 {
	var md int32
	for v := int32(0); v < g.NumNodes(); v++ {
		if d := g.Degree(v); d > md {
			md = d
		}
	}
	return md
}

// WeightedDegree returns the sum of edge weights incident to v.
func (g *Graph) WeightedDegree(v NodeID) int64 {
	var s int64
	for _, w := range g.EdgeWeights(v) {
		s += w
	}
	return s
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		XAdj: make([]int64, len(g.XAdj)),
		Adj:  make([]NodeID, len(g.Adj)),
		AdjW: make([]int64, len(g.AdjW)),
		NW:   make([]int64, len(g.NW)),
	}
	copy(c.XAdj, g.XAdj)
	copy(c.Adj, g.Adj)
	copy(c.AdjW, g.AdjW)
	copy(c.NW, g.NW)
	return c
}

// Validate checks structural invariants: monotone XAdj, in-range neighbour
// IDs, positive weights, no self-loops and symmetric adjacency (every edge
// (u,v,w) has a matching (v,u,w)). It returns a descriptive error for the
// first violation found.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	if len(g.XAdj) != int(n)+1 {
		return fmt.Errorf("graph: len(XAdj)=%d, want n+1=%d", len(g.XAdj), n+1)
	}
	if g.XAdj[0] != 0 {
		return errors.New("graph: XAdj[0] != 0")
	}
	if len(g.Adj) != len(g.AdjW) {
		return fmt.Errorf("graph: len(Adj)=%d != len(AdjW)=%d", len(g.Adj), len(g.AdjW))
	}
	if g.XAdj[n] != int64(len(g.Adj)) {
		return fmt.Errorf("graph: XAdj[n]=%d, want len(Adj)=%d", g.XAdj[n], len(g.Adj))
	}
	for v := int32(0); v < n; v++ {
		if g.XAdj[v+1] < g.XAdj[v] {
			return fmt.Errorf("graph: XAdj not monotone at node %d", v)
		}
		if g.NW[v] <= 0 {
			return fmt.Errorf("graph: non-positive weight %d at node %d", g.NW[v], v)
		}
	}
	for v := int32(0); v < n; v++ {
		for i := g.XAdj[v]; i < g.XAdj[v+1]; i++ {
			u := g.Adj[i]
			if u < 0 || u >= n {
				return fmt.Errorf("graph: neighbour %d of node %d out of range", u, v)
			}
			if u == v {
				return fmt.Errorf("graph: self-loop at node %d", v)
			}
			if g.AdjW[i] <= 0 {
				return fmt.Errorf("graph: non-positive edge weight %d on (%d,%d)", g.AdjW[i], v, u)
			}
		}
	}
	return g.validateSymmetry()
}

func (g *Graph) validateSymmetry() error {
	n := g.NumNodes()
	for v := int32(0); v < n; v++ {
		for i := g.XAdj[v]; i < g.XAdj[v+1]; i++ {
			u := g.Adj[i]
			w := g.AdjW[i]
			found := false
			for j := g.XAdj[u]; j < g.XAdj[u+1]; j++ {
				if g.Adj[j] == v && g.AdjW[j] == w {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("graph: edge (%d,%d,w=%d) has no symmetric twin", v, u, w)
			}
		}
	}
	return nil
}

// EdgeKey packs an undirected edge {u, v} into one comparable key (the
// smaller endpoint in the high half), so overlay maps and delta sets can
// index edges without caring about direction.
func EdgeKey(u, v NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// EdgeKeyEndpoints unpacks a key produced by EdgeKey, returning the smaller
// endpoint first.
func EdgeKeyEndpoints(k uint64) (NodeID, NodeID) {
	return NodeID(k >> 32), NodeID(uint32(k))
}

// HasEdge reports whether {u, v} is an edge and returns its weight.
func (g *Graph) HasEdge(u, v NodeID) (int64, bool) {
	for i := g.XAdj[u]; i < g.XAdj[u+1]; i++ {
		if g.Adj[i] == v {
			return g.AdjW[i], true
		}
	}
	return 0, false
}

// String returns a short summary, e.g. "graph(n=100, m=250)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.NumNodes(), g.NumEdges())
}
