package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates an edge list and produces a validated CSR graph.
// Edges may be added in either or both directions and in any order;
// duplicates are merged by summing their weights. Self-loops are rejected
// with a panic, like the other structural errors: the graph model is
// simple and undirected (Validate enforces the same invariant), and
// silently dropping them — the old behavior — hid generator bugs. Node
// weights default to 1.
type Builder struct {
	n       int32
	nw      []int64
	srcs    []NodeID
	dsts    []NodeID
	weights []int64
}

// NewBuilder returns a builder for a graph with n nodes, all with weight 1.
func NewBuilder(n int32) *Builder {
	nw := make([]int64, n)
	for i := range nw {
		nw[i] = 1
	}
	return &Builder{n: n, nw: nw}
}

// SetNodeWeight sets the weight of node v. It panics if v is out of range
// or w is not positive.
func (b *Builder) SetNodeWeight(v NodeID, w int64) {
	if v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: SetNodeWeight node %d out of range [0,%d)", v, b.n))
	}
	if w <= 0 {
		panic(fmt.Sprintf("graph: SetNodeWeight non-positive weight %d", w))
	}
	b.nw[v] = w
}

// AddEdge records the undirected edge {u, v} with weight 1. It panics on
// out-of-range endpoints and on self-loops (u == v).
func (b *Builder) AddEdge(u, v NodeID) { b.AddEdgeW(u, v, 1) }

// AddEdgeW records the undirected edge {u, v} with weight w. It panics on
// out-of-range endpoints, non-positive weight, or a self-loop (u == v) —
// the graph model is simple; callers sampling random endpoint pairs must
// skip or resample coincident pairs.
func (b *Builder) AddEdgeW(u, v NodeID, w int64) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: AddEdgeW endpoint out of range: (%d,%d), n=%d", u, v, b.n))
	}
	if w <= 0 {
		panic(fmt.Sprintf("graph: AddEdgeW non-positive weight %d", w))
	}
	if u == v {
		panic(fmt.Sprintf("graph: AddEdgeW self-loop at node %d (self-loops are not representable; skip or resample)", u))
	}
	b.srcs = append(b.srcs, u)
	b.dsts = append(b.dsts, v)
	b.weights = append(b.weights, w)
}

// Build produces the CSR graph. Duplicate edges (recorded in the same or
// opposite directions) are merged by summing weights.
func (b *Builder) Build() *Graph {
	n := b.n
	// Symmetrize: every recorded edge contributes both directions.
	total := 2 * len(b.srcs)
	deg := make([]int64, n+1)
	for i := range b.srcs {
		deg[b.srcs[i]+1]++
		deg[b.dsts[i]+1]++
	}
	for v := int32(0); v < n; v++ {
		deg[v+1] += deg[v]
	}
	adj := make([]NodeID, total)
	adjw := make([]int64, total)
	pos := make([]int64, n)
	for i := range b.srcs {
		u, v, w := b.srcs[i], b.dsts[i], b.weights[i]
		p := deg[u] + pos[u]
		adj[p], adjw[p] = v, w
		pos[u]++
		p = deg[v] + pos[v]
		adj[p], adjw[p] = u, w
		pos[v]++
	}
	// Sort each adjacency list and merge duplicates in place.
	xadj := make([]int64, n+1)
	out := int64(0)
	for v := int32(0); v < n; v++ {
		lo, hi := deg[v], deg[v+1]
		seg := adjSorter{adj[lo:hi], adjw[lo:hi]}
		sort.Sort(seg)
		xadj[v] = out
		for i := lo; i < hi; i++ {
			if out > xadj[v] && adj[out-1] == adj[i] {
				adjw[out-1] += adjw[i]
			} else {
				adj[out] = adj[i]
				adjw[out] = adjw[i]
				out++
			}
		}
	}
	xadj[n] = out
	return &Graph{
		XAdj: xadj,
		Adj:  adj[:out:out],
		AdjW: adjw[:out:out],
		NW:   b.nw,
	}
}

type adjSorter struct {
	ids []NodeID
	ws  []int64
}

func (s adjSorter) Len() int           { return len(s.ids) }
func (s adjSorter) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s adjSorter) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.ws[i], s.ws[j] = s.ws[j], s.ws[i]
}

// FromCSR constructs a graph directly from CSR arrays without copying.
// The caller asserts the arrays already satisfy the Graph invariants;
// Validate can be used to check.
func FromCSR(xadj []int64, adj []NodeID, adjw, nw []int64) *Graph {
	return &Graph{XAdj: xadj, Adj: adj, AdjW: adjw, NW: nw}
}

// Path returns a path graph with n unit-weight nodes.
func Path(n int32) *Graph {
	b := NewBuilder(n)
	for v := int32(0); v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.Build()
}

// Cycle returns a cycle graph with n unit-weight nodes (n >= 3).
func Cycle(n int32) *Graph {
	b := NewBuilder(n)
	for v := int32(0); v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	return b.Build()
}

// Complete returns the complete graph on n unit-weight nodes.
func Complete(n int32) *Graph {
	b := NewBuilder(n)
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Star returns a star with one centre (node 0) and n-1 leaves.
func Star(n int32) *Graph {
	b := NewBuilder(n)
	for v := int32(1); v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.Build()
}

// Grid2D returns the rows x cols grid graph with 4-neighbour connectivity.
func Grid2D(rows, cols int32) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int32) NodeID { return r*cols + c }
	for r := int32(0); r < rows; r++ {
		for c := int32(0); c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}
