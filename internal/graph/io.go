package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMetis writes g in METIS graph format: a header line "n m fmt" where
// fmt is 11 (node and edge weights), followed by one line per node listing
// "nodeweight (neighbour edgeweight)*" with 1-based neighbour IDs.
func WriteMetis(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d 11\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	for v := int32(0); v < g.NumNodes(); v++ {
		bw.WriteString(strconv.FormatInt(g.NW[v], 10))
		nbrs := g.Neighbors(v)
		ws := g.EdgeWeights(v)
		for i, u := range nbrs {
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(int64(u)+1, 10))
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(ws[i], 10))
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMetis parses a graph in METIS format. Supported fmt codes: 0 or
// absent (no weights), 1 (edge weights), 10 (node weights), 11 (both).
// Comment lines starting with '%' are skipped.
func ReadMetis(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	line, err := nextDataLine(sc)
	if err != nil {
		return nil, fmt.Errorf("graph: missing METIS header: %w", err)
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, fmt.Errorf("graph: malformed METIS header %q", line)
	}
	n64, err := strconv.ParseInt(fields[0], 10, 32)
	if err != nil {
		return nil, fmt.Errorf("graph: bad node count: %w", err)
	}
	m64, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("graph: bad edge count: %w", err)
	}
	hasNW, hasEW := false, false
	if len(fields) >= 3 {
		switch fields[2] {
		case "0", "00", "000":
		case "1", "001":
			hasEW = true
		case "10", "010":
			hasNW = true
		case "11", "011":
			hasNW, hasEW = true, true
		default:
			return nil, fmt.Errorf("graph: unsupported METIS fmt %q", fields[2])
		}
	}
	n := int32(n64)
	b := NewBuilder(n)
	for v := int32(0); v < n; v++ {
		line, err := nextDataLine(sc)
		if err != nil {
			return nil, fmt.Errorf("graph: missing line for node %d: %w", v+1, err)
		}
		toks := strings.Fields(line)
		i := 0
		if hasNW {
			if len(toks) == 0 {
				return nil, fmt.Errorf("graph: node %d: missing node weight", v+1)
			}
			w, err := strconv.ParseInt(toks[0], 10, 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("graph: node %d: bad node weight %q", v+1, toks[0])
			}
			b.SetNodeWeight(v, w)
			i = 1
		}
		for i < len(toks) {
			u, err := strconv.ParseInt(toks[i], 10, 32)
			if err != nil || u < 1 || u > n64 {
				return nil, fmt.Errorf("graph: node %d: bad neighbour %q", v+1, toks[i])
			}
			i++
			w := int64(1)
			if hasEW {
				if i >= len(toks) {
					return nil, fmt.Errorf("graph: node %d: missing edge weight", v+1)
				}
				w, err = strconv.ParseInt(toks[i], 10, 64)
				if err != nil || w <= 0 {
					return nil, fmt.Errorf("graph: node %d: bad edge weight %q", v+1, toks[i])
				}
				i++
			}
			// Each undirected edge appears twice in the file; add it once.
			if int32(u-1) > v {
				b.AddEdgeW(v, int32(u-1), w)
			}
		}
	}
	g := b.Build()
	if g.NumEdges() != m64 {
		return nil, fmt.Errorf("graph: header claims %d edges, parsed %d", m64, g.NumEdges())
	}
	return g, nil
}

func nextDataLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}
