package live

import (
	"fmt"
	"time"
)

// Policy holds the knobs deciding when accumulated drift on a live graph
// warrants an automatic repartition. The zero value triggers on the
// default churn fraction with no debounce; DefaultPolicy is the tuned
// server default.
type Policy struct {
	// ChurnFraction triggers when (edge adds + removes since the last
	// swap) / (edges at the last swap) reaches this fraction. 0 selects
	// the 0.05 default (the paper's 5%-churn operating point); negative
	// disables the churn trigger.
	ChurnFraction float64
	// MaxImbalance triggers when the live block-weight imbalance
	// (max/avg - 1) exceeds this bound, e.g. when node adds and weight
	// updates overload one block without much edge churn. 0 disables.
	MaxImbalance float64
	// MinInterval debounces: no trigger fires within this duration of the
	// previous one, no matter how hard the thresholds are exceeded. 0
	// means no debounce.
	MinInterval time.Duration
	// MaxStaleness triggers once any pending delta has waited this long,
	// even below every threshold — a trickle of updates must not stay
	// unincorporated forever. 0 disables.
	MaxStaleness time.Duration
}

// DefaultChurnFraction is the churn trigger applied when
// Policy.ChurnFraction is 0.
const DefaultChurnFraction = 0.05

// churnThreshold resolves the ChurnFraction knob's 0 default.
func (p Policy) churnThreshold() float64 {
	if p.ChurnFraction == 0 {
		return DefaultChurnFraction
	}
	return p.ChurnFraction
}

// State is the observation a Decide call judges: the live graph's
// accounting snapshot plus the clock. The server assembles it from
// Graph.Stats(); tests construct it directly.
type State struct {
	Now time.Time
	// ChurnFraction and Imbalance mirror Stats fields of the same name.
	ChurnFraction float64
	Imbalance     float64
	// PendingDeltas counts mutations no repartition snapshot has seen.
	PendingDeltas int64
	// InFlight reports an outstanding repartition; the controller never
	// stacks a second one.
	InFlight bool
	// Epoch is 0 until the initial partition exists; the controller only
	// repartitions, it never schedules the first cold run.
	Epoch int64
}

// Decision is the outcome of one Decide call.
type Decision struct {
	// Trigger is true when a repartition should be enqueued now.
	Trigger bool
	// Reason names the rule that fired ("churn", "imbalance",
	// "staleness") or why not ("in_flight", "no_pending", "no_epoch",
	// "debounce", "below_thresholds").
	Reason string
	// Detail is a human-readable elaboration for logs.
	Detail string
}

// Controller evaluates a Policy against successive State observations.
// It is a pure policy engine: no goroutines, no clock reads — the caller
// supplies time via State.Now and reports accepted triggers back with
// MarkTriggered, so the debounce window only starts when a job was
// actually enqueued (a queue-full rejection leaves the controller ready
// to fire again on the next observation). Not safe for concurrent use;
// the server serializes calls per live graph.
type Controller struct {
	policy Policy

	lastTrigger   time.Time // zero until the first MarkTriggered
	oldestPending time.Time // zero when no deltas are pending
	last          Decision
}

// NewController returns a controller applying p.
func NewController(p Policy) *Controller {
	return &Controller{policy: p}
}

// Policy returns the controller's policy.
func (c *Controller) Policy() Policy { return c.policy }

// Decide judges one observation. Rules, in order: never stack on an
// in-flight run; nothing pending means nothing to do (and resets the
// staleness clock); no trigger before the initial partition exists;
// debounce inside MinInterval; then churn, imbalance and staleness
// thresholds.
func (c *Controller) Decide(s State) Decision {
	d := c.decide(s)
	c.last = d
	return d
}

func (c *Controller) decide(s State) Decision {
	if s.InFlight {
		return Decision{Reason: "in_flight", Detail: "repartition already running"}
	}
	if s.PendingDeltas == 0 {
		c.oldestPending = time.Time{}
		return Decision{Reason: "no_pending", Detail: "no deltas since last snapshot"}
	}
	if c.oldestPending.IsZero() {
		c.oldestPending = s.Now
	}
	if s.Epoch == 0 {
		return Decision{Reason: "no_epoch", Detail: "initial partition not computed yet"}
	}
	if c.policy.MinInterval > 0 && !c.lastTrigger.IsZero() {
		if wait := c.policy.MinInterval - s.Now.Sub(c.lastTrigger); wait > 0 {
			return Decision{Reason: "debounce", Detail: fmt.Sprintf("min interval not elapsed (%v remaining)", wait.Round(time.Millisecond))}
		}
	}
	if th := c.policy.churnThreshold(); th >= 0 && s.ChurnFraction >= th {
		return Decision{Trigger: true, Reason: "churn",
			Detail: fmt.Sprintf("churn fraction %.4f >= %.4f", s.ChurnFraction, th)}
	}
	if c.policy.MaxImbalance > 0 && s.Imbalance > c.policy.MaxImbalance {
		return Decision{Trigger: true, Reason: "imbalance",
			Detail: fmt.Sprintf("imbalance %.4f > %.4f", s.Imbalance, c.policy.MaxImbalance)}
	}
	if c.policy.MaxStaleness > 0 && s.Now.Sub(c.oldestPending) >= c.policy.MaxStaleness {
		return Decision{Trigger: true, Reason: "staleness",
			Detail: fmt.Sprintf("pending deltas older than %v", c.policy.MaxStaleness)}
	}
	return Decision{Reason: "below_thresholds",
		Detail: fmt.Sprintf("churn %.4f, imbalance %.4f", s.ChurnFraction, s.Imbalance)}
}

// MarkTriggered records that a trigger was accepted (a job actually
// enqueued) at now: the debounce window restarts and the staleness clock
// resets. The server calls this only after a successful enqueue, so a
// full queue does not silently consume the trigger.
func (c *Controller) MarkTriggered(now time.Time) {
	c.lastTrigger = now
	c.oldestPending = time.Time{}
}

// LastDecision returns the most recent Decide outcome (zero before the
// first call). Exposed on the live status endpoint.
func (c *Controller) LastDecision() Decision { return c.last }
