package live

import (
	"errors"
	"sync"
	"testing"

	"repro"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
)

// applyAll wraps deltas into one batch at the next sequence number.
func applyAll(t *testing.T, g *Graph, seq int64, deltas ...Delta) BatchResult {
	t.Helper()
	res, err := g.ApplyBatch(seq, deltas)
	if err != nil {
		t.Fatalf("ApplyBatch(seq=%d): %v", seq, err)
	}
	return res
}

// completeWith runs a full Begin/solve/Complete cycle using a trivial
// round-robin partition of the snapshot graph.
func completeWith(t *testing.T, g *Graph, k int32) *parhip.Partition {
	t.Helper()
	snap, err := g.BeginRepartition(k, 0.03)
	if err != nil {
		t.Fatalf("BeginRepartition: %v", err)
	}
	assign := make([]int32, snap.G.NumNodes())
	for v := range assign {
		assign[v] = int32(v) % k
	}
	p, err := parhip.NewPartition(snap.G, assign, k, 0.03)
	if err != nil {
		t.Fatalf("NewPartition: %v", err)
	}
	if err := g.CompleteRepartition(p); err != nil {
		t.Fatalf("CompleteRepartition: %v", err)
	}
	return p
}

func TestApplyBatchMutations(t *testing.T) {
	lg := NewGraph(graph.Path(4)) // 0-1-2-3
	applyAll(t, lg, 1,
		Delta{Op: OpAddEdge, U: 0, V: 3},       // new edge, weight 1
		Delta{Op: OpAddEdge, U: 1, V: 2, W: 4}, // merge onto base edge
		Delta{Op: OpRemoveEdge, U: 2, V: 3},    // drop base edge
		Delta{Op: OpRemoveEdge, U: 0, V: 2},    // absent: no-op
		Delta{Op: OpAddNode, W: 7},             // node 4
		Delta{Op: OpAddEdge, U: 4, V: 0, W: 2}, // edge to the fresh node
		Delta{Op: OpSetNodeWeight, U: 1, W: 5}, // base-node override
	)
	mg := lg.Materialize()
	if err := mg.Validate(); err != nil {
		t.Fatalf("materialized graph invalid: %v", err)
	}
	if got, want := mg.NumNodes(), int32(5); got != want {
		t.Fatalf("n = %d, want %d", got, want)
	}
	// Edges now: {0,1}w1, {1,2}w5 (1+4), {0,3}w1, {0,4}w2 — {2,3} removed.
	if got, want := mg.NumEdges(), int64(4); got != want {
		t.Fatalf("m = %d, want %d", got, want)
	}
	if w, ok := mg.HasEdge(1, 2); !ok || w != 5 {
		t.Errorf("edge {1,2} = (%d,%v), want (5,true)", w, ok)
	}
	if _, ok := mg.HasEdge(2, 3); ok {
		t.Error("edge {2,3} should be removed")
	}
	if w, ok := mg.HasEdge(0, 4); !ok || w != 2 {
		t.Errorf("edge {0,4} = (%d,%v), want (2,true)", w, ok)
	}
	if mg.NW[1] != 5 || mg.NW[4] != 7 {
		t.Errorf("node weights NW[1]=%d NW[4]=%d, want 5 and 7", mg.NW[1], mg.NW[4])
	}

	s := lg.Stats()
	if s.EdgeAdds != 2 || s.EdgeRemoves != 1 || s.NodeAdds != 1 || s.WeightChanges != 2 {
		t.Errorf("churn counters = %+v, want adds=2 removes=1 nodeAdds=1 weightChanges=2", s)
	}
	if s.M != 4 || s.N != 5 || s.Seq != 1 {
		t.Errorf("stats m=%d n=%d seq=%d, want 4/5/1", s.M, s.N, s.Seq)
	}
}

func TestApplyBatchIdempotentReplay(t *testing.T) {
	lg := NewGraph(graph.Path(4))
	d := []Delta{{Op: OpAddEdge, U: 0, V: 2}}
	if res := applyAll(t, lg, 1, d...); res.Replayed || res.Applied != 1 {
		t.Fatalf("first apply = %+v", res)
	}
	// Retry of the same sequence: no-op, flagged as replay.
	res, err := lg.ApplyBatch(1, d)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !res.Replayed || res.Applied != 0 || res.Seq != 1 {
		t.Fatalf("replay result = %+v, want Replayed with seq 1", res)
	}
	if s := lg.Stats(); s.EdgeAdds != 1 || s.M != 4 {
		t.Fatalf("replay mutated state: %+v", s)
	}
	// A gap is an error and applies nothing.
	if _, err := lg.ApplyBatch(3, d); !errors.Is(err, ErrSequenceGap) {
		t.Fatalf("gap error = %v, want ErrSequenceGap", err)
	}
	if s := lg.Stats(); s.Seq != 1 {
		t.Fatalf("gap advanced seq to %d", s.Seq)
	}
}

func TestApplyBatchAtomicValidation(t *testing.T) {
	lg := NewGraph(graph.Path(4))
	_, err := lg.ApplyBatch(1, []Delta{
		{Op: OpAddEdge, U: 0, V: 2},
		{Op: OpAddEdge, U: 0, V: 99}, // out of range: whole batch must fail
	})
	if err == nil {
		t.Fatal("invalid batch accepted")
	}
	if s := lg.Stats(); s.Seq != 0 || s.EdgeAdds != 0 || s.M != 3 {
		t.Fatalf("failed batch leaked state: %+v", s)
	}
	// A batch may reference a node added earlier in the same batch.
	applyAll(t, lg, 1,
		Delta{Op: OpAddNode},
		Delta{Op: OpAddEdge, U: 4, V: 1},
	)
	if s := lg.Stats(); s.N != 5 || s.M != 4 {
		t.Fatalf("intra-batch node reference failed: %+v", s)
	}
	// Self-loops rejected.
	if _, err := lg.ApplyBatch(2, []Delta{{Op: OpAddEdge, U: 2, V: 2}}); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestMaterializeMatchesPerturb(t *testing.T) {
	// Applying gen.PerturbDeltas through the live overlay must land on
	// exactly the graph gen.Perturb builds — same fingerprint.
	base, _ := gen.PlantedPartition(800, 8, 8, 0.3, 42)
	deltas := gen.PerturbDeltas(base, 0.05, 7)
	want := gen.Perturb(base, 0.05, 7)

	lg := NewGraph(base)
	batch := make([]Delta, len(deltas))
	for i, d := range deltas {
		op := OpRemoveEdge
		if d.Add {
			op = OpAddEdge
		}
		batch[i] = Delta{Op: op, U: d.U, V: d.V, W: d.W}
	}
	applyAll(t, lg, 1, batch...)
	got := lg.Materialize()
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("live materialize fingerprint %s != Perturb fingerprint %s",
			got.Fingerprint(), want.Fingerprint())
	}
	// Materialize is deterministic across calls despite map iteration.
	if lg.Materialize().Fingerprint() != got.Fingerprint() {
		t.Fatal("Materialize not deterministic")
	}
}

func TestRepartitionLifecycle(t *testing.T) {
	lg := NewGraph(graph.Grid2D(8, 8))
	if lg.Placement() != nil {
		t.Fatal("placement before first partition")
	}

	// Cold run: no previous partition.
	snap, err := lg.BeginRepartition(4, 0.03)
	if err != nil {
		t.Fatalf("BeginRepartition: %v", err)
	}
	if snap.Prev != nil {
		t.Fatal("cold snapshot carries a previous partition")
	}
	if _, err := lg.BeginRepartition(4, 0.03); !errors.Is(err, ErrRepartitionInFlight) {
		t.Fatalf("second Begin = %v, want ErrRepartitionInFlight", err)
	}
	assign := make([]int32, snap.G.NumNodes())
	for v := range assign {
		assign[v] = int32(v) % 4
	}
	p, err := parhip.NewPartition(snap.G, assign, 4, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.CompleteRepartition(p); err != nil {
		t.Fatalf("CompleteRepartition: %v", err)
	}
	pl := lg.Placement()
	if pl == nil || pl.Epoch != 1 {
		t.Fatalf("placement after first swap = %+v, want epoch 1", pl)
	}
	if b, ok := pl.Block(5); !ok || b != 5%4 {
		t.Fatalf("Block(5) = (%d,%v)", b, ok)
	}

	// Drift, then a warm run: snapshot must lift the current placement.
	applyAll(t, lg, 1, Delta{Op: OpAddEdge, U: 0, V: 63})
	snap2, err := lg.BeginRepartition(4, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Prev == nil {
		t.Fatal("warm snapshot missing previous partition")
	}
	if got := snap2.Prev.Block(5); got != 5%4 {
		t.Fatalf("lifted prev Block(5) = %d", got)
	}
	if s := lg.Stats(); !s.InFlight || s.PendingDeltas != 0 {
		t.Fatalf("churn not moved into snapshot: %+v", s)
	}
	// Abort returns the churn.
	lg.AbortRepartition()
	if s := lg.Stats(); s.InFlight || s.EdgeAdds != 1 {
		t.Fatalf("abort did not restore churn: %+v", s)
	}

	// Complete a second cycle: epoch must increase monotonically.
	completeWith(t, lg, 4)
	if pl := lg.Placement(); pl.Epoch != 2 {
		t.Fatalf("epoch after second swap = %d, want 2", pl.Epoch)
	}
	if s := lg.Stats(); s.PendingDeltas != 0 || s.ChurnFraction != 0 {
		t.Fatalf("swap did not reset churn: %+v", s)
	}
	if err := lg.CompleteRepartition(p); err == nil {
		t.Fatal("CompleteRepartition without Begin accepted")
	}
}

func TestProvisionalPlacementOfAddedNodes(t *testing.T) {
	lg := NewGraph(graph.Grid2D(4, 4))
	completeWith(t, lg, 4)
	pl := lg.Placement()

	// A node added after the swap gets a provisional block at the same
	// epoch, visible immediately.
	applyAll(t, lg, 1, Delta{Op: OpAddNode, W: 3})
	pl2 := lg.Placement()
	if pl2.Epoch != pl.Epoch {
		t.Fatalf("node add changed epoch: %d -> %d", pl.Epoch, pl2.Epoch)
	}
	b, ok := pl2.Block(16)
	if !ok {
		t.Fatal("added node has no placement")
	}
	if b < 0 || b >= 4 {
		t.Fatalf("provisional block %d out of range", b)
	}
	if !pl2.Provisional(16) {
		t.Fatal("added node not flagged provisional")
	}
	if pl2.Provisional(3) {
		t.Fatal("base node flagged provisional")
	}
	// The old snapshot still answers only its own nodes — immutable.
	if _, ok := pl.Block(16); ok {
		t.Fatal("old placement snapshot answers for a node added later")
	}

	// Nodes added while a repartition is in flight get provisional blocks
	// at the swap.
	snap, err := lg.BeginRepartition(4, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	applyAll(t, lg, 2, Delta{Op: OpAddNode}, Delta{Op: OpAddNode})
	assign := make([]int32, snap.G.NumNodes())
	p, err := parhip.NewPartition(snap.G, assign, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.CompleteRepartition(p); err != nil {
		t.Fatal(err)
	}
	pl3 := lg.Placement()
	if pl3.NumNodes() != 19 {
		t.Fatalf("placement answers %d nodes, want 19", pl3.NumNodes())
	}
	for v := int32(17); v < 19; v++ {
		if _, ok := pl3.Block(v); !ok {
			t.Fatalf("in-flight-added node %d has no placement", v)
		}
	}
	if _, ok := pl3.Block(19); ok {
		t.Fatal("placement answers beyond node count")
	}
}

func TestChurnFractionAccounting(t *testing.T) {
	lg := NewGraph(graph.Cycle(100)) // m = 100
	completeWith(t, lg, 4)
	var batch []Delta
	for v := int32(0); v < 5; v++ {
		batch = append(batch, Delta{Op: OpRemoveEdge, U: v, V: v + 1})
	}
	applyAll(t, lg, 1, batch...)
	s := lg.Stats()
	if s.ChurnFraction != 0.05 {
		t.Fatalf("churn fraction = %g, want 0.05 (5 of 100 edges)", s.ChurnFraction)
	}
	if s.Imbalance < 0 {
		t.Fatalf("imbalance unknown after swap: %g", s.Imbalance)
	}
}

func TestLiveTracerSpans(t *testing.T) {
	tr := obs.NewTracer(1)
	lg := NewGraph(graph.Path(8))
	lg.SetTracer(tr)
	applyAll(t, lg, 1, Delta{Op: OpAddEdge, U: 0, V: 7})
	completeWith(t, lg, 2)
	names := tr.SpanNames(0)
	for _, want := range []string{"live.apply_batch", "live.materialize", "live.swap"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("span %q not recorded (have %v)", want, names)
		}
	}
}

// TestConcurrentReadersNeverTorn hammers placement lookups while batches
// apply and epochs swap; under -race this proves the lock-free read path.
func TestConcurrentReadersNeverTorn(t *testing.T) {
	lg := NewGraph(graph.Grid2D(16, 16))
	completeWith(t, lg, 4)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				pl := lg.Placement()
				if pl == nil {
					t.Error("placement vanished")
					return
				}
				if pl.Epoch < lastEpoch {
					t.Errorf("epoch went backwards: %d -> %d", lastEpoch, pl.Epoch)
					return
				}
				lastEpoch = pl.Epoch
				n := pl.NumNodes()
				for v := int32(0); v < n; v += 37 {
					if b, ok := pl.Block(v); !ok || b < 0 || b >= pl.K() {
						t.Errorf("torn read: Block(%d) = (%d,%v) at epoch %d", v, b, ok, pl.Epoch)
						return
					}
				}
			}
		}()
	}

	seq := int64(0)
	for i := 0; i < 30; i++ {
		seq++
		u := int32(i % 255)
		applyAll(t, lg, seq,
			Delta{Op: OpRemoveEdge, U: u, V: u + 1},
			Delta{Op: OpAddEdge, U: u, V: (u + 7) % 256},
			Delta{Op: OpAddNode},
		)
		if i%5 == 4 {
			completeWith(t, lg, 4)
		}
	}
	close(stop)
	wg.Wait()

	if pl := lg.Placement(); pl.Epoch != 7 {
		t.Fatalf("final epoch = %d, want 7 (1 initial + 6 swaps)", pl.Epoch)
	}
}
