package live

import (
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestControllerChurnTrigger(t *testing.T) {
	c := NewController(Policy{}) // default 5% churn
	base := State{Now: t0, Epoch: 1, PendingDeltas: 10}

	s := base
	s.ChurnFraction = 0.01
	if d := c.Decide(s); d.Trigger {
		t.Fatalf("triggered below threshold: %+v", d)
	}
	s.ChurnFraction = 0.05
	d := c.Decide(s)
	if !d.Trigger || d.Reason != "churn" {
		t.Fatalf("no churn trigger at threshold: %+v", d)
	}
	if got := c.LastDecision(); got != d {
		t.Fatalf("LastDecision = %+v, want %+v", got, d)
	}
}

func TestControllerSuppressions(t *testing.T) {
	c := NewController(Policy{})
	hot := State{Now: t0, Epoch: 1, PendingDeltas: 10, ChurnFraction: 0.5}

	s := hot
	s.InFlight = true
	if d := c.Decide(s); d.Trigger || d.Reason != "in_flight" {
		t.Fatalf("in-flight not suppressed: %+v", d)
	}
	s = hot
	s.PendingDeltas = 0
	if d := c.Decide(s); d.Trigger || d.Reason != "no_pending" {
		t.Fatalf("no-pending not suppressed: %+v", d)
	}
	s = hot
	s.Epoch = 0
	if d := c.Decide(s); d.Trigger || d.Reason != "no_epoch" {
		t.Fatalf("epoch 0 not suppressed: %+v", d)
	}
	// Negative churn knob disables the churn rule entirely.
	c2 := NewController(Policy{ChurnFraction: -1})
	if d := c2.Decide(hot); d.Trigger {
		t.Fatalf("disabled churn rule triggered: %+v", d)
	}
}

func TestControllerDebounce(t *testing.T) {
	c := NewController(Policy{MinInterval: time.Minute})
	hot := State{Now: t0, Epoch: 1, PendingDeltas: 10, ChurnFraction: 0.5}

	if d := c.Decide(hot); !d.Trigger {
		t.Fatalf("first trigger suppressed: %+v", d)
	}
	c.MarkTriggered(t0)

	s := hot
	s.Now = t0.Add(30 * time.Second)
	if d := c.Decide(s); d.Trigger || d.Reason != "debounce" {
		t.Fatalf("debounce failed: %+v", d)
	}
	s.Now = t0.Add(61 * time.Second)
	if d := c.Decide(s); !d.Trigger {
		t.Fatalf("trigger after debounce window suppressed: %+v", d)
	}
}

func TestControllerImbalanceTrigger(t *testing.T) {
	c := NewController(Policy{ChurnFraction: -1, MaxImbalance: 0.10})
	s := State{Now: t0, Epoch: 1, PendingDeltas: 3, Imbalance: 0.08}
	if d := c.Decide(s); d.Trigger {
		t.Fatalf("triggered below imbalance bound: %+v", d)
	}
	s.Imbalance = 0.12
	if d := c.Decide(s); !d.Trigger || d.Reason != "imbalance" {
		t.Fatalf("no imbalance trigger: %+v", d)
	}
}

func TestControllerStalenessTrigger(t *testing.T) {
	c := NewController(Policy{ChurnFraction: -1, MaxStaleness: time.Minute})
	s := State{Now: t0, Epoch: 1, PendingDeltas: 1, ChurnFraction: 0.001}

	// First observation with pending deltas starts the staleness clock.
	if d := c.Decide(s); d.Trigger {
		t.Fatalf("early staleness trigger: %+v", d)
	}
	s.Now = t0.Add(59 * time.Second)
	if d := c.Decide(s); d.Trigger {
		t.Fatalf("staleness triggered before bound: %+v", d)
	}
	s.Now = t0.Add(61 * time.Second)
	if d := c.Decide(s); !d.Trigger || d.Reason != "staleness" {
		t.Fatalf("no staleness trigger: %+v", d)
	}
	c.MarkTriggered(s.Now)

	// Draining the queue resets the clock: a later trickle starts fresh.
	s2 := State{Now: s.Now.Add(time.Second), Epoch: 2}
	c.Decide(s2) // no pending
	s2.PendingDeltas = 1
	s2.Now = s2.Now.Add(30 * time.Second)
	if d := c.Decide(s2); d.Trigger {
		t.Fatalf("staleness clock not reset: %+v", d)
	}
}
