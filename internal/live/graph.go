// Package live implements server-side mutable graphs for the streaming
// ingestion + continuous repartitioning subsystem: a compact delta overlay
// (edge adds/removes, node adds, weight updates) layered over an immutable
// CSR base graph, with sequence-numbered idempotent batch application,
// churn and imbalance accounting since the last partition, epoch-stamped
// placement snapshots served lock-free, and a Controller policy engine
// that decides when accumulated drift warrants an automatic repartition.
//
// The division of labor with internal/server: this package owns the data
// structure and the policy (both pure, deterministic, unit-testable);
// the server owns scheduling — it applies client batches, consults the
// Controller, enqueues Repartition jobs on materialized snapshots and
// swaps finished partitions back in with CompleteRepartition.
package live

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Op identifies a mutation kind.
type Op uint8

// Mutation kinds accepted by ApplyBatch.
const (
	// OpAddEdge inserts the undirected edge {U, V} with weight W (0 means
	// 1). Adding an edge that already exists merges by summing weights.
	OpAddEdge Op = iota + 1
	// OpRemoveEdge removes the undirected edge {U, V}. Removing an absent
	// edge is a no-op, not an error (streams may race their own removals).
	OpRemoveEdge
	// OpAddNode appends one node with weight W (0 means 1). U and V are
	// ignored; the new node's ID is the node count before the append.
	OpAddNode
	// OpSetNodeWeight sets node U's weight to W (> 0 required).
	OpSetNodeWeight
)

// String returns the wire name of the op.
func (o Op) String() string {
	switch o {
	case OpAddEdge:
		return "add_edge"
	case OpRemoveEdge:
		return "remove_edge"
	case OpAddNode:
		return "add_node"
	case OpSetNodeWeight:
		return "set_node_weight"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Delta is one mutation. See the Op constants for field semantics.
type Delta struct {
	Op   Op
	U, V graph.NodeID
	W    int64
}

// ErrSequenceGap is returned by ApplyBatch when a batch arrives with a
// sequence number beyond the next expected one — the client lost a batch
// and must resend from the gap.
var ErrSequenceGap = errors.New("live: sequence gap")

// ErrRepartitionInFlight is returned by BeginRepartition while a previous
// snapshot has not been completed or aborted.
var ErrRepartitionInFlight = errors.New("live: repartition already in flight")

// edgeState is the overlay entry for one touched undirected edge: its
// current effective weight (0 = absent) and whether the base CSR carries
// the edge (so Materialize knows which loop emits it).
type edgeState struct {
	eff    int64
	inBase bool
}

// Graph is a mutable graph: an immutable CSR base plus a compact overlay
// of touched edges, node-weight overrides and appended nodes. All mutation
// goes through ApplyBatch under an internal mutex; placement lookups are
// served lock-free from an atomically swapped epoch-stamped snapshot, so
// reads stay cheap during delta application and repartition swaps.
type Graph struct {
	mu   sync.Mutex
	base *graph.Graph
	// baseN/baseM are the base graph's node/edge counts (immutable).
	baseN int32
	baseM int64

	overlay map[uint64]edgeState   // guarded by mu: graph.EdgeKey -> state
	nwOver  map[graph.NodeID]int64 // guarded by mu: base-node weight overrides
	extraNW []int64                // guarded by mu: weights of appended nodes
	n       int32                  // guarded by mu: current node count
	curM    int64                  // guarded by mu: current undirected edge count
	lastSeq int64                  // guarded by mu: highest applied batch sequence

	// Churn accounting since the last snapshot handed to a repartition
	// (BeginRepartition zeroes these into marks; Abort restores them).
	edgeAdds      int64 // guarded by mu
	edgeRemoves   int64 // guarded by mu
	nodeAdds      int64 // guarded by mu
	weightChanges int64 // guarded by mu
	mAtSwap       int64 // guarded by mu: edge count at the last swap (churn denominator)

	inFlight bool     // guarded by mu: a BeginRepartition snapshot is outstanding
	marks    [4]int64 // guarded by mu: churn counters moved into the in-flight snapshot

	blockWeights []int64 // guarded by mu: live per-block node weight (nil before epoch 1)

	placement atomic.Pointer[Placement]

	tracer *obs.Tracer // set once before use; nil = disabled
}

// NewGraph wraps base (which must stay immutable — the overlay aliases it)
// into a live graph at sequence 0, epoch 0, with no placement.
func NewGraph(base *graph.Graph) *Graph {
	return &Graph{
		base:    base,
		baseN:   base.NumNodes(),
		baseM:   base.NumEdges(),
		overlay: make(map[uint64]edgeState),
		nwOver:  make(map[graph.NodeID]int64),
		n:       base.NumNodes(),
		curM:    base.NumEdges(),
		mAtSwap: base.NumEdges(),
	}
}

// SetTracer attaches a span tracer recording apply/materialize/swap spans
// on rank track 0. Call before the graph is shared; nil disables tracing.
func (g *Graph) SetTracer(t *obs.Tracer) { g.tracer = t }

// BatchResult reports what ApplyBatch did.
type BatchResult struct {
	// Replayed is true when the batch's sequence number was at or below
	// the last applied one: the batch was already incorporated (or is a
	// duplicate of one that was) and nothing was applied. Idempotent
	// retries land here.
	Replayed bool
	// Applied is the number of deltas applied (0 when Replayed).
	Applied int
	// Seq echoes the highest applied sequence number after the call.
	Seq int64
}

// ApplyBatch validates and applies one sequence-numbered batch of deltas.
// Batches must arrive with consecutive sequence numbers starting at 1;
// a batch at or below the last applied sequence is a no-op replay (retries
// are idempotent), a batch beyond the next expected number fails with
// ErrSequenceGap. Validation runs before any delta is applied, so a batch
// is applied atomically or not at all.
func (g *Graph) ApplyBatch(seq int64, deltas []Delta) (BatchResult, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if seq <= g.lastSeq {
		return BatchResult{Replayed: true, Seq: g.lastSeq}, nil
	}
	if seq != g.lastSeq+1 {
		return BatchResult{Seq: g.lastSeq}, fmt.Errorf("%w: got seq %d, want %d", ErrSequenceGap, seq, g.lastSeq+1)
	}
	if err := g.validateLocked(deltas); err != nil {
		return BatchResult{Seq: g.lastSeq}, err
	}
	sp := g.tracer.Begin(0, "live.apply_batch")
	for _, d := range deltas {
		g.applyLocked(d)
	}
	g.lastSeq = seq
	g.tracer.End3(sp, "deltas", int64(len(deltas)), "n", int64(g.n), "m", g.curM)
	return BatchResult{Applied: len(deltas), Seq: seq}, nil
}

// validateLocked checks every delta against the state the batch would see,
// including nodes added earlier in the same batch.
//
//parhip:holds mu
func (g *Graph) validateLocked(deltas []Delta) error {
	simN := g.n
	for i, d := range deltas {
		switch d.Op {
		case OpAddEdge, OpRemoveEdge:
			if d.U < 0 || d.U >= simN || d.V < 0 || d.V >= simN {
				return fmt.Errorf("live: delta %d (%s): endpoint out of range: (%d,%d), n=%d", i, d.Op, d.U, d.V, simN)
			}
			if d.U == d.V {
				return fmt.Errorf("live: delta %d (%s): self-loop at node %d", i, d.Op, d.U)
			}
			if d.Op == OpAddEdge && d.W < 0 {
				return fmt.Errorf("live: delta %d (add_edge): negative weight %d", i, d.W)
			}
		case OpAddNode:
			if d.W < 0 {
				return fmt.Errorf("live: delta %d (add_node): negative weight %d", i, d.W)
			}
			simN++
		case OpSetNodeWeight:
			if d.U < 0 || d.U >= simN {
				return fmt.Errorf("live: delta %d (set_node_weight): node %d out of range, n=%d", i, d.U, simN)
			}
			if d.W <= 0 {
				return fmt.Errorf("live: delta %d (set_node_weight): non-positive weight %d", i, d.W)
			}
		default:
			return fmt.Errorf("live: delta %d: unknown op %d", i, uint8(d.Op))
		}
	}
	return nil
}

// edgeStateLocked returns the current overlay state of {u, v}, consulting
// the base CSR on first touch.
//
//parhip:holds mu
func (g *Graph) edgeStateLocked(u, v graph.NodeID) edgeState {
	key := graph.EdgeKey(u, v)
	if st, ok := g.overlay[key]; ok {
		return st
	}
	if u < g.baseN && v < g.baseN {
		if w, ok := g.base.HasEdge(u, v); ok {
			return edgeState{eff: w, inBase: true}
		}
	}
	return edgeState{}
}

//parhip:holds mu
func (g *Graph) applyLocked(d Delta) {
	switch d.Op {
	case OpAddEdge:
		w := d.W
		if w == 0 {
			w = 1
		}
		st := g.edgeStateLocked(d.U, d.V)
		if st.eff == 0 {
			g.curM++
			g.edgeAdds++
		} else {
			g.weightChanges++ // merge onto an existing edge is a weight update
		}
		st.eff += w
		g.overlay[graph.EdgeKey(d.U, d.V)] = st
	case OpRemoveEdge:
		st := g.edgeStateLocked(d.U, d.V)
		if st.eff == 0 {
			return // absent: removal is a no-op
		}
		st.eff = 0
		g.overlay[graph.EdgeKey(d.U, d.V)] = st
		g.curM--
		g.edgeRemoves++
	case OpAddNode:
		w := d.W
		if w == 0 {
			w = 1
		}
		g.extraNW = append(g.extraNW, w)
		g.n++
		g.nodeAdds++
		g.placeNewNodeLocked(w)
	case OpSetNodeWeight:
		old := g.nodeWeightLocked(d.U)
		if d.U >= g.baseN {
			g.extraNW[d.U-g.baseN] = d.W
		} else {
			g.nwOver[d.U] = d.W
		}
		g.weightChanges++
		if p := g.placement.Load(); p != nil && g.blockWeights != nil {
			if b, ok := p.Block(d.U); ok {
				g.blockWeights[b] += d.W - old
			}
		}
	}
}

// placeNewNodeLocked provisionally assigns the just-appended node to the
// least-loaded block of the current placement (ties to the lowest block
// ID) and publishes a new snapshot carrying the extended extra table.
// Provisional placements are deterministic, answer lookups immediately,
// and are replaced by real assignments at the next epoch swap. Before the
// first partition there is nothing to extend.
//
//parhip:holds mu
func (g *Graph) placeNewNodeLocked(w int64) {
	p := g.placement.Load()
	if p == nil || g.blockWeights == nil {
		return
	}
	best := int32(0)
	for b := int32(1); b < int32(len(g.blockWeights)); b++ {
		if g.blockWeights[b] < g.blockWeights[best] {
			best = b
		}
	}
	g.blockWeights[best] += w
	next := &Placement{
		Epoch: p.Epoch,
		part:  p.part,
		extra: append(append([]int32(nil), p.extra...), best),
	}
	g.placement.Store(next)
}

// nodeWeightLocked returns node v's current weight.
//
//parhip:holds mu
func (g *Graph) nodeWeightLocked(v graph.NodeID) int64 {
	if v >= g.baseN {
		return g.extraNW[v-g.baseN]
	}
	if w, ok := g.nwOver[v]; ok {
		return w
	}
	return g.base.NW[v]
}

// Materialize compacts overlay + base into a fresh immutable CSR graph —
// the form the solver consumes. The result is deterministic: the Builder
// canonicalizes adjacency order, so overlay map iteration order never
// shows through.
func (g *Graph) Materialize() *graph.Graph {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.materializeLocked()
}

//parhip:holds mu
func (g *Graph) materializeLocked() *graph.Graph {
	sp := g.tracer.Begin(0, "live.materialize")
	b := graph.NewBuilder(g.n)
	for v := graph.NodeID(0); v < g.n; v++ {
		if w := g.nodeWeightLocked(v); w != 1 {
			b.SetNodeWeight(v, w)
		}
	}
	// Base edges, with overlay overrides.
	for v := graph.NodeID(0); v < g.baseN; v++ {
		ws := g.base.EdgeWeights(v)
		for i, u := range g.base.Neighbors(v) {
			if u <= v {
				continue
			}
			if st, ok := g.overlay[graph.EdgeKey(v, u)]; ok {
				if st.eff > 0 {
					b.AddEdgeW(v, u, st.eff)
				}
				continue
			}
			b.AddEdgeW(v, u, ws[i])
		}
	}
	// Overlay-only edges (pairs absent from the base CSR).
	for key, st := range g.overlay {
		if st.inBase || st.eff <= 0 {
			continue
		}
		u, v := graph.EdgeKeyEndpoints(key)
		b.AddEdgeW(u, v, st.eff)
	}
	mg := b.Build()
	g.tracer.End2(sp, "n", int64(mg.NumNodes()), "m", mg.NumEdges())
	return mg
}

// Snapshot is the frozen input of one repartition run: the materialized
// graph and, once an initial partition exists, the current placement
// lifted onto it as the previous partition (nil on the cold, first run).
type Snapshot struct {
	G    *graph.Graph
	Prev *parhip.Partition
	Seq  int64 // last applied batch sequence included in G
}

// BeginRepartition freezes the current state into a Snapshot for a solver
// run and moves the churn counters into the snapshot (they restart at
// zero, counting drift the run will not see). Only one snapshot may be
// outstanding; complete it with CompleteRepartition or return its churn
// with AbortRepartition. k and eps parameterize the previous partition
// lifted from the current placement; they are ignored on the cold first
// run (no placement yet).
func (g *Graph) BeginRepartition(k int32, eps float64) (*Snapshot, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inFlight {
		return nil, ErrRepartitionInFlight
	}
	mg := g.materializeLocked()
	snap := &Snapshot{G: mg, Seq: g.lastSeq}
	if p := g.placement.Load(); p != nil {
		assign := make([]int32, g.n)
		for v := graph.NodeID(0); v < g.n; v++ {
			b, _ := p.Block(v)
			assign[v] = b
		}
		prev, err := parhip.NewPartition(mg, assign, k, eps)
		if err != nil {
			return nil, fmt.Errorf("live: lift previous partition: %w", err)
		}
		snap.Prev = prev
	}
	g.marks = [4]int64{g.edgeAdds, g.edgeRemoves, g.nodeAdds, g.weightChanges}
	g.edgeAdds, g.edgeRemoves, g.nodeAdds, g.weightChanges = 0, 0, 0, 0
	g.inFlight = true
	return snap, nil
}

// AbortRepartition abandons the outstanding snapshot (the solver run
// failed or was cancelled) and returns its churn to the live counters so
// the controller sees the still-unincorporated drift.
func (g *Graph) AbortRepartition() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.inFlight {
		return
	}
	g.edgeAdds += g.marks[0]
	g.edgeRemoves += g.marks[1]
	g.nodeAdds += g.marks[2]
	g.weightChanges += g.marks[3]
	g.marks = [4]int64{}
	g.inFlight = false
}

// CompleteRepartition atomically swaps in the partition computed on the
// outstanding snapshot: the epoch increments, nodes appended since the
// snapshot get fresh provisional placements, and the per-block weight
// accounting is rebuilt against current node weights. Readers never
// observe a torn state — they see the old epoch until the single atomic
// store publishes the new one.
func (g *Graph) CompleteRepartition(p *parhip.Partition) error {
	if p == nil {
		return errors.New("live: CompleteRepartition: nil partition")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.inFlight {
		return errors.New("live: CompleteRepartition without BeginRepartition")
	}
	if p.NumNodes() > g.n {
		return fmt.Errorf("live: partition assigns %d nodes, live graph has %d", p.NumNodes(), g.n)
	}
	sp := g.tracer.Begin(0, "live.swap")
	old := g.placement.Load()
	epoch := int64(1)
	if old != nil {
		epoch = old.Epoch + 1
	}
	k := p.K()
	bw := make([]int64, k)
	for v := graph.NodeID(0); v < p.NumNodes(); v++ {
		bw[p.Block(v)] += g.nodeWeightLocked(v)
	}
	// Nodes appended after the snapshot: provisional, least-loaded block.
	extra := make([]int32, 0, g.n-p.NumNodes())
	for v := p.NumNodes(); v < g.n; v++ {
		best := int32(0)
		for b := int32(1); b < k; b++ {
			if bw[b] < bw[best] {
				best = b
			}
		}
		bw[best] += g.nodeWeightLocked(v)
		extra = append(extra, best)
	}
	g.blockWeights = bw
	g.mAtSwap = g.curM
	g.marks = [4]int64{}
	g.inFlight = false
	g.placement.Store(&Placement{Epoch: epoch, part: p, extra: extra})
	g.tracer.End2(sp, "epoch", epoch, "n", int64(g.n))
	return nil
}

// Placement is one epoch's immutable placement snapshot: the swapped-in
// partition plus provisional blocks for nodes appended since its snapshot
// was taken. Lookups are pure reads; a *Placement never mutates after
// publication.
type Placement struct {
	// Epoch counts swaps: 1 after the initial partition, incrementing on
	// every completed repartition. Monotonically increasing per Graph.
	Epoch int64

	part  *parhip.Partition
	extra []int32
}

// K returns the block count.
func (p *Placement) K() int32 { return p.part.K() }

// NumNodes returns how many nodes the placement answers for.
func (p *Placement) NumNodes() int32 { return p.part.NumNodes() + int32(len(p.extra)) }

// Block returns node v's block. ok is false when v is beyond the nodes the
// placement knows about (added after the snapshot this placement extends).
func (p *Placement) Block(v graph.NodeID) (int32, bool) {
	if v < 0 {
		return 0, false
	}
	if v < p.part.NumNodes() {
		return p.part.Block(v), true
	}
	if i := v - p.part.NumNodes(); int(i) < len(p.extra) {
		return p.extra[i], true
	}
	return 0, false
}

// Provisional reports whether node v's block is a provisional assignment
// (appended after the partition's snapshot) rather than a solver result.
func (p *Placement) Provisional(v graph.NodeID) bool {
	return v >= p.part.NumNodes() && v < p.NumNodes()
}

// Partition returns the underlying solver partition (immutable).
func (p *Placement) Partition() *parhip.Partition { return p.part }

// Cut returns the partition's edge cut on its snapshot graph.
func (p *Placement) Cut() int64 { return p.part.Cut() }

// Feasible reports the partition's feasibility on its snapshot graph.
func (p *Placement) Feasible() bool { return p.part.Feasible() }

// Placement returns the current epoch's placement snapshot (nil before the
// first partition). The load is a single atomic pointer read — safe and
// cheap to call concurrently with ApplyBatch and CompleteRepartition.
func (g *Graph) Placement() *Placement { return g.placement.Load() }

// Stats is a point-in-time accounting snapshot for the controller and the
// status API.
type Stats struct {
	Seq   int64 // last applied batch sequence
	N     int32 // current node count
	M     int64 // current undirected edge count
	Epoch int64 // 0 before the first partition

	// Churn since the last snapshot handed to a repartition run.
	EdgeAdds      int64
	EdgeRemoves   int64
	NodeAdds      int64
	WeightChanges int64
	// PendingDeltas is the sum of the four counters above: mutations no
	// materialized snapshot has seen yet.
	PendingDeltas int64
	// ChurnFraction is (EdgeAdds+EdgeRemoves)/max(1, edges at last swap).
	ChurnFraction float64
	// Imbalance is the live max/avg-1 block weight imbalance under current
	// node weights and provisional placements (-1 before the first
	// partition).
	Imbalance float64
	// InFlight reports an outstanding BeginRepartition snapshot.
	InFlight bool
}

// Stats snapshots the accounting state.
func (g *Graph) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := Stats{
		Seq:           g.lastSeq,
		N:             g.n,
		M:             g.curM,
		EdgeAdds:      g.edgeAdds,
		EdgeRemoves:   g.edgeRemoves,
		NodeAdds:      g.nodeAdds,
		WeightChanges: g.weightChanges,
		InFlight:      g.inFlight,
		Imbalance:     -1,
	}
	s.PendingDeltas = s.EdgeAdds + s.EdgeRemoves + s.NodeAdds + s.WeightChanges
	den := g.mAtSwap
	if den < 1 {
		den = 1
	}
	s.ChurnFraction = float64(s.EdgeAdds+s.EdgeRemoves) / float64(den)
	if p := g.placement.Load(); p != nil {
		s.Epoch = p.Epoch
		if len(g.blockWeights) > 0 {
			var total, mx int64
			for _, w := range g.blockWeights {
				total += w
				if w > mx {
					mx = w
				}
			}
			if total > 0 {
				s.Imbalance = float64(mx)/(float64(total)/float64(len(g.blockWeights))) - 1
			} else {
				s.Imbalance = 0
			}
		}
	}
	return s
}
