// Package hashtab implements open-addressing hash tables with linear
// probing.
//
// The paper (§IV-A) observes that during label propagation "hashing with
// linear probing is much faster than using the hash map of the STL" for
// aggregating the edge weight towards each neighbouring cluster, because the
// number of distinct keys is bounded by the node degree and the table is
// reused across nodes. These tables fill the same role here: they are
// allocation-free in steady state and support O(keys) reset via a key log.
//
// The *In constructors carve the backing arrays out of an arena instead of
// the heap, so per-superstep tables (one per worker lane, one per contraction
// shard) recycle their memory across V-cycle levels. Growth beyond the
// initial capacity falls back to plain heap slices — an arena is a bump
// allocator and cannot free the outgrown arrays early.
package hashtab

import "repro/internal/arena"

// AccumulatorI64 maps int64 keys to accumulated int64 values. It is designed
// for the aggregate-then-scan-then-reset pattern of label propagation: Add
// accumulates into a slot, Keys exposes the occupied keys, and Reset clears
// exactly the touched slots.
type AccumulatorI64 struct {
	keys    []int64
	vals    []int64
	used    []bool
	touched []int
	mask    uint64
	size    int
}

// NewAccumulatorI64 returns a table with capacity for at least capacity keys
// before growth. Capacity is rounded up to a power of two and doubled to
// keep the load factor at most 1/2.
func NewAccumulatorI64(capacity int) *AccumulatorI64 {
	n := 16
	for n < 2*capacity {
		n *= 2
	}
	return &AccumulatorI64{
		keys:    make([]int64, n),
		vals:    make([]int64, n),
		used:    make([]bool, n),
		touched: make([]int, 0, capacity),
		mask:    uint64(n - 1),
	}
}

// NewAccumulatorI64In is NewAccumulatorI64 with the backing arrays carved
// from ar. A nil arena degrades to heap allocation.
func NewAccumulatorI64In(ar *arena.Arena, capacity int) *AccumulatorI64 {
	n := 16
	for n < 2*capacity {
		n *= 2
	}
	return &AccumulatorI64{
		keys:    ar.Int64s(n),
		vals:    ar.Int64s(n),
		used:    ar.Bools(n),
		touched: ar.Ints(capacity)[:0],
		mask:    uint64(n - 1),
	}
}

func hash64(x int64) uint64 {
	z := uint64(x) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Add accumulates delta into the value for key, inserting the key with value
// delta if absent.
//
//parhip:hotpath
func (t *AccumulatorI64) Add(key, delta int64) {
	if 2*(t.size+1) > len(t.keys) {
		t.grow()
	}
	i := hash64(key) & t.mask
	for {
		if !t.used[i] {
			t.used[i] = true
			t.keys[i] = key
			t.vals[i] = delta
			t.touched = append(t.touched, int(i))
			t.size++
			return
		}
		if t.keys[i] == key {
			t.vals[i] += delta
			return
		}
		i = (i + 1) & t.mask
	}
}

// Get returns the accumulated value for key and whether the key is present.
//
//parhip:hotpath
func (t *AccumulatorI64) Get(key int64) (int64, bool) {
	i := hash64(key) & t.mask
	for t.used[i] {
		if t.keys[i] == key {
			return t.vals[i], true
		}
		i = (i + 1) & t.mask
	}
	return 0, false
}

// Len returns the number of distinct keys in the table.
func (t *AccumulatorI64) Len() int { return t.size }

// ForEach calls fn for every (key, value) pair in insertion-touch order.
func (t *AccumulatorI64) ForEach(fn func(key, val int64)) {
	for _, i := range t.touched {
		fn(t.keys[i], t.vals[i])
	}
}

// Reset removes all keys. Only slots touched since the previous Reset are
// cleared, so a Reset after aggregating deg(v) keys costs O(deg(v)).
func (t *AccumulatorI64) Reset() {
	for _, i := range t.touched {
		t.used[i] = false
	}
	t.touched = t.touched[:0]
	t.size = 0
}

func (t *AccumulatorI64) grow() {
	oldKeys, oldVals, oldUsed := t.keys, t.vals, t.used
	n := 2 * len(oldKeys)
	t.keys = make([]int64, n)
	t.vals = make([]int64, n)
	t.used = make([]bool, n)
	t.touched = t.touched[:0]
	t.mask = uint64(n - 1)
	t.size = 0
	for i, u := range oldUsed {
		if u {
			t.Add(oldKeys[i], oldVals[i])
		}
	}
}

// MapI64 maps int64 keys to int64 values with last-write-wins semantics.
// It is used for global-to-local ID translation of ghost nodes and for
// cluster-ID deduplication during contraction.
type MapI64 struct {
	keys []int64
	vals []int64
	used []bool
	mask uint64
	size int
}

// NewMapI64 returns a map with capacity for at least capacity keys before
// growth.
func NewMapI64(capacity int) *MapI64 {
	n := 16
	for n < 2*capacity {
		n *= 2
	}
	return &MapI64{
		keys: make([]int64, n),
		vals: make([]int64, n),
		used: make([]bool, n),
		mask: uint64(n - 1),
	}
}

// Put sets the value for key, overwriting any previous value.
//
//parhip:hotpath
func (m *MapI64) Put(key, val int64) {
	if 2*(m.size+1) > len(m.keys) {
		m.grow()
	}
	i := hash64(key) & m.mask
	for {
		if !m.used[i] {
			m.used[i] = true
			m.keys[i] = key
			m.vals[i] = val
			m.size++
			return
		}
		if m.keys[i] == key {
			m.vals[i] = val
			return
		}
		i = (i + 1) & m.mask
	}
}

// PutIfAbsent inserts (key, val) if key is not present and returns the value
// now stored for key together with whether an insert happened.
//
//parhip:hotpath
func (m *MapI64) PutIfAbsent(key, val int64) (int64, bool) {
	if 2*(m.size+1) > len(m.keys) {
		m.grow()
	}
	i := hash64(key) & m.mask
	for {
		if !m.used[i] {
			m.used[i] = true
			m.keys[i] = key
			m.vals[i] = val
			m.size++
			return val, true
		}
		if m.keys[i] == key {
			return m.vals[i], false
		}
		i = (i + 1) & m.mask
	}
}

// Get returns the value stored for key and whether the key is present.
//
//parhip:hotpath
func (m *MapI64) Get(key int64) (int64, bool) {
	i := hash64(key) & m.mask
	for m.used[i] {
		if m.keys[i] == key {
			return m.vals[i], true
		}
		i = (i + 1) & m.mask
	}
	return 0, false
}

// Len returns the number of distinct keys.
func (m *MapI64) Len() int { return m.size }

// ForEach calls fn for every (key, value) pair in unspecified order.
func (m *MapI64) ForEach(fn func(key, val int64)) {
	for i, u := range m.used {
		if u {
			fn(m.keys[i], m.vals[i])
		}
	}
}

func (m *MapI64) grow() {
	oldKeys, oldVals, oldUsed := m.keys, m.vals, m.used
	n := 2 * len(oldKeys)
	m.keys = make([]int64, n)
	m.vals = make([]int64, n)
	m.used = make([]bool, n)
	m.mask = uint64(n - 1)
	m.size = 0
	for i, u := range oldUsed {
		if u {
			m.Put(oldKeys[i], oldVals[i])
		}
	}
}

// SetI64 is a set of int64 keys built on the same probing scheme.
type SetI64 struct {
	m MapI64
}

// NewSetI64 returns a set with capacity for at least capacity keys before
// growth.
func NewSetI64(capacity int) *SetI64 {
	return &SetI64{m: *NewMapI64(capacity)}
}

// Insert adds key to the set and reports whether it was newly inserted.
func (s *SetI64) Insert(key int64) bool {
	_, inserted := s.m.PutIfAbsent(key, 0)
	return inserted
}

// Contains reports whether key is in the set.
func (s *SetI64) Contains(key int64) bool {
	_, ok := s.m.Get(key)
	return ok
}

// Len returns the number of keys in the set.
func (s *SetI64) Len() int { return s.m.size }

// ForEach calls fn for every key in unspecified order.
func (s *SetI64) ForEach(fn func(key int64)) {
	s.m.ForEach(func(k, _ int64) { fn(k) })
}

// AccumulatorPairI64 maps (int64, int64) key pairs to accumulated int64
// values with the same open-addressing scheme as AccumulatorI64. The
// contraction step keys quotient edges by their (source, destination)
// coarse IDs; composing the pair into one int64 as src*coarseN+dst
// overflows once coarseN exceeds ~3·10^9, silently merging unrelated
// edges, so the pair is stored as-is.
type AccumulatorPairI64 struct {
	keysA   []int64
	keysB   []int64
	vals    []int64
	used    []bool
	touched []int
	mask    uint64
	size    int
}

// NewAccumulatorPairI64 returns a table with capacity for at least capacity
// pairs before growth.
func NewAccumulatorPairI64(capacity int) *AccumulatorPairI64 {
	n := 16
	for n < 2*capacity {
		n *= 2
	}
	return &AccumulatorPairI64{
		keysA:   make([]int64, n),
		keysB:   make([]int64, n),
		vals:    make([]int64, n),
		used:    make([]bool, n),
		touched: make([]int, 0, capacity),
		mask:    uint64(n - 1),
	}
}

// NewAccumulatorPairI64In is NewAccumulatorPairI64 with the backing arrays
// carved from ar. A nil arena degrades to heap allocation.
func NewAccumulatorPairI64In(ar *arena.Arena, capacity int) *AccumulatorPairI64 {
	n := 16
	for n < 2*capacity {
		n *= 2
	}
	return &AccumulatorPairI64{
		keysA:   ar.Int64s(n),
		keysB:   ar.Int64s(n),
		vals:    ar.Int64s(n),
		used:    ar.Bools(n),
		touched: ar.Ints(capacity)[:0],
		mask:    uint64(n - 1),
	}
}

// hashPair64 mixes both halves of the key through two rounds of hash64 so
// pairs like (a, b) and (b, a) land in unrelated slots.
func hashPair64(a, b int64) uint64 {
	return hash64(int64(hash64(a)) ^ b)
}

// Add accumulates delta into the value for (a, b), inserting the pair with
// value delta if absent.
func (t *AccumulatorPairI64) Add(a, b, delta int64) {
	if 2*(t.size+1) > len(t.keysA) {
		t.grow()
	}
	i := hashPair64(a, b) & t.mask
	for {
		if !t.used[i] {
			t.used[i] = true
			t.keysA[i] = a
			t.keysB[i] = b
			t.vals[i] = delta
			t.touched = append(t.touched, int(i))
			t.size++
			return
		}
		if t.keysA[i] == a && t.keysB[i] == b {
			t.vals[i] += delta
			return
		}
		i = (i + 1) & t.mask
	}
}

// Get returns the accumulated value for (a, b) and whether the pair is
// present.
func (t *AccumulatorPairI64) Get(a, b int64) (int64, bool) {
	i := hashPair64(a, b) & t.mask
	for t.used[i] {
		if t.keysA[i] == a && t.keysB[i] == b {
			return t.vals[i], true
		}
		i = (i + 1) & t.mask
	}
	return 0, false
}

// Len returns the number of distinct pairs in the table.
func (t *AccumulatorPairI64) Len() int { return t.size }

// ForEach calls fn for every (a, b, value) triple in insertion-touch order.
func (t *AccumulatorPairI64) ForEach(fn func(a, b, val int64)) {
	for _, i := range t.touched {
		fn(t.keysA[i], t.keysB[i], t.vals[i])
	}
}

// Reset removes all pairs, clearing only the touched slots.
func (t *AccumulatorPairI64) Reset() {
	for _, i := range t.touched {
		t.used[i] = false
	}
	t.touched = t.touched[:0]
	t.size = 0
}

func (t *AccumulatorPairI64) grow() {
	oldA, oldB, oldVals, oldUsed := t.keysA, t.keysB, t.vals, t.used
	n := 2 * len(oldA)
	t.keysA = make([]int64, n)
	t.keysB = make([]int64, n)
	t.vals = make([]int64, n)
	t.used = make([]bool, n)
	t.touched = t.touched[:0]
	t.mask = uint64(n - 1)
	t.size = 0
	for i, u := range oldUsed {
		if u {
			t.Add(oldA[i], oldB[i], oldVals[i])
		}
	}
}
