package hashtab

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestAccumulatorBasic(t *testing.T) {
	a := NewAccumulatorI64(4)
	a.Add(10, 5)
	a.Add(20, 7)
	a.Add(10, 3)
	if v, ok := a.Get(10); !ok || v != 8 {
		t.Fatalf("Get(10) = %d, %v; want 8, true", v, ok)
	}
	if v, ok := a.Get(20); !ok || v != 7 {
		t.Fatalf("Get(20) = %d, %v; want 7, true", v, ok)
	}
	if _, ok := a.Get(30); ok {
		t.Fatal("Get(30) found absent key")
	}
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2", a.Len())
	}
}

func TestAccumulatorReset(t *testing.T) {
	a := NewAccumulatorI64(4)
	for i := int64(0); i < 10; i++ {
		a.Add(i, i)
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatalf("Len after reset = %d", a.Len())
	}
	for i := int64(0); i < 10; i++ {
		if _, ok := a.Get(i); ok {
			t.Fatalf("key %d survived reset", i)
		}
	}
	// Table is reusable after reset.
	a.Add(100, 1)
	if v, _ := a.Get(100); v != 1 {
		t.Fatal("reuse after reset failed")
	}
}

func TestAccumulatorGrowth(t *testing.T) {
	a := NewAccumulatorI64(2)
	const n = 10000
	for i := int64(0); i < n; i++ {
		a.Add(i*7919, 2)
	}
	if a.Len() != n {
		t.Fatalf("Len = %d, want %d", a.Len(), n)
	}
	for i := int64(0); i < n; i++ {
		if v, ok := a.Get(i * 7919); !ok || v != 2 {
			t.Fatalf("key %d lost after growth", i*7919)
		}
	}
}

func TestAccumulatorForEachSum(t *testing.T) {
	a := NewAccumulatorI64(8)
	r := rng.New(1)
	want := int64(0)
	for i := 0; i < 1000; i++ {
		k := r.Int64n(100)
		a.Add(k, 3)
		want += 3
	}
	got := int64(0)
	a.ForEach(func(_, v int64) { got += v })
	if got != want {
		t.Fatalf("ForEach sum = %d, want %d", got, want)
	}
}

func TestAccumulatorAgainstMap(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := NewAccumulatorI64(4)
		ref := make(map[int64]int64)
		for i := 0; i < 500; i++ {
			k := r.Int64n(64) - 32
			d := r.Int64n(9) - 4
			a.Add(k, d)
			ref[k] += d
		}
		if a.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if got, ok := a.Get(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMapBasic(t *testing.T) {
	m := NewMapI64(4)
	m.Put(1, 100)
	m.Put(2, 200)
	m.Put(1, 111)
	if v, ok := m.Get(1); !ok || v != 111 {
		t.Fatalf("Get(1) = %d, %v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMapPutIfAbsent(t *testing.T) {
	m := NewMapI64(4)
	v, ins := m.PutIfAbsent(5, 50)
	if !ins || v != 50 {
		t.Fatalf("first PutIfAbsent = %d, %v", v, ins)
	}
	v, ins = m.PutIfAbsent(5, 99)
	if ins || v != 50 {
		t.Fatalf("second PutIfAbsent = %d, %v; want 50, false", v, ins)
	}
}

func TestMapGrowthAgainstMap(t *testing.T) {
	m := NewMapI64(2)
	ref := make(map[int64]int64)
	r := rng.New(77)
	for i := 0; i < 20000; i++ {
		k := r.Int64n(5000)
		v := r.Int64n(1 << 30)
		m.Put(k, v)
		ref[k] = v
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(ref))
	}
	for k, v := range ref {
		if got, ok := m.Get(k); !ok || got != v {
			t.Fatalf("mismatch at key %d", k)
		}
	}
}

func TestMapForEachCount(t *testing.T) {
	m := NewMapI64(4)
	for i := int64(0); i < 100; i++ {
		m.Put(i, i*i)
	}
	count := 0
	m.ForEach(func(k, v int64) {
		if v != k*k {
			t.Fatalf("ForEach wrong value for key %d", k)
		}
		count++
	})
	if count != 100 {
		t.Fatalf("ForEach visited %d entries", count)
	}
}

func TestMapNegativeKeys(t *testing.T) {
	m := NewMapI64(4)
	m.Put(-1, 10)
	m.Put(-1<<62, 20)
	if v, ok := m.Get(-1); !ok || v != 10 {
		t.Fatal("negative key lookup failed")
	}
	if v, ok := m.Get(-1 << 62); !ok || v != 20 {
		t.Fatal("large negative key lookup failed")
	}
}

func TestSetBasic(t *testing.T) {
	s := NewSetI64(4)
	if !s.Insert(3) {
		t.Fatal("first insert reported duplicate")
	}
	if s.Insert(3) {
		t.Fatal("second insert reported new")
	}
	if !s.Contains(3) || s.Contains(4) {
		t.Fatal("Contains wrong")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSetManyKeys(t *testing.T) {
	s := NewSetI64(1)
	for i := int64(0); i < 5000; i++ {
		s.Insert(i * 31)
	}
	if s.Len() != 5000 {
		t.Fatalf("Len = %d", s.Len())
	}
	seen := 0
	s.ForEach(func(k int64) {
		if k%31 != 0 {
			t.Fatalf("unexpected key %d", k)
		}
		seen++
	})
	if seen != 5000 {
		t.Fatalf("ForEach visited %d", seen)
	}
}
