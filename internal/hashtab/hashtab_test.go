package hashtab

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestAccumulatorBasic(t *testing.T) {
	a := NewAccumulatorI64(4)
	a.Add(10, 5)
	a.Add(20, 7)
	a.Add(10, 3)
	if v, ok := a.Get(10); !ok || v != 8 {
		t.Fatalf("Get(10) = %d, %v; want 8, true", v, ok)
	}
	if v, ok := a.Get(20); !ok || v != 7 {
		t.Fatalf("Get(20) = %d, %v; want 7, true", v, ok)
	}
	if _, ok := a.Get(30); ok {
		t.Fatal("Get(30) found absent key")
	}
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2", a.Len())
	}
}

func TestAccumulatorReset(t *testing.T) {
	a := NewAccumulatorI64(4)
	for i := int64(0); i < 10; i++ {
		a.Add(i, i)
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatalf("Len after reset = %d", a.Len())
	}
	for i := int64(0); i < 10; i++ {
		if _, ok := a.Get(i); ok {
			t.Fatalf("key %d survived reset", i)
		}
	}
	// Table is reusable after reset.
	a.Add(100, 1)
	if v, _ := a.Get(100); v != 1 {
		t.Fatal("reuse after reset failed")
	}
}

func TestAccumulatorGrowth(t *testing.T) {
	a := NewAccumulatorI64(2)
	const n = 10000
	for i := int64(0); i < n; i++ {
		a.Add(i*7919, 2)
	}
	if a.Len() != n {
		t.Fatalf("Len = %d, want %d", a.Len(), n)
	}
	for i := int64(0); i < n; i++ {
		if v, ok := a.Get(i * 7919); !ok || v != 2 {
			t.Fatalf("key %d lost after growth", i*7919)
		}
	}
}

func TestAccumulatorForEachSum(t *testing.T) {
	a := NewAccumulatorI64(8)
	r := rng.New(1)
	want := int64(0)
	for i := 0; i < 1000; i++ {
		k := r.Int64n(100)
		a.Add(k, 3)
		want += 3
	}
	got := int64(0)
	a.ForEach(func(_, v int64) { got += v })
	if got != want {
		t.Fatalf("ForEach sum = %d, want %d", got, want)
	}
}

func TestAccumulatorAgainstMap(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := NewAccumulatorI64(4)
		ref := make(map[int64]int64)
		for i := 0; i < 500; i++ {
			k := r.Int64n(64) - 32
			d := r.Int64n(9) - 4
			a.Add(k, d)
			ref[k] += d
		}
		if a.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if got, ok := a.Get(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMapBasic(t *testing.T) {
	m := NewMapI64(4)
	m.Put(1, 100)
	m.Put(2, 200)
	m.Put(1, 111)
	if v, ok := m.Get(1); !ok || v != 111 {
		t.Fatalf("Get(1) = %d, %v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMapPutIfAbsent(t *testing.T) {
	m := NewMapI64(4)
	v, ins := m.PutIfAbsent(5, 50)
	if !ins || v != 50 {
		t.Fatalf("first PutIfAbsent = %d, %v", v, ins)
	}
	v, ins = m.PutIfAbsent(5, 99)
	if ins || v != 50 {
		t.Fatalf("second PutIfAbsent = %d, %v; want 50, false", v, ins)
	}
}

func TestMapGrowthAgainstMap(t *testing.T) {
	m := NewMapI64(2)
	ref := make(map[int64]int64)
	r := rng.New(77)
	for i := 0; i < 20000; i++ {
		k := r.Int64n(5000)
		v := r.Int64n(1 << 30)
		m.Put(k, v)
		ref[k] = v
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(ref))
	}
	for k, v := range ref {
		if got, ok := m.Get(k); !ok || got != v {
			t.Fatalf("mismatch at key %d", k)
		}
	}
}

func TestMapForEachCount(t *testing.T) {
	m := NewMapI64(4)
	for i := int64(0); i < 100; i++ {
		m.Put(i, i*i)
	}
	count := 0
	m.ForEach(func(k, v int64) {
		if v != k*k {
			t.Fatalf("ForEach wrong value for key %d", k)
		}
		count++
	})
	if count != 100 {
		t.Fatalf("ForEach visited %d entries", count)
	}
}

func TestMapNegativeKeys(t *testing.T) {
	m := NewMapI64(4)
	m.Put(-1, 10)
	m.Put(-1<<62, 20)
	if v, ok := m.Get(-1); !ok || v != 10 {
		t.Fatal("negative key lookup failed")
	}
	if v, ok := m.Get(-1 << 62); !ok || v != 20 {
		t.Fatal("large negative key lookup failed")
	}
}

func TestSetBasic(t *testing.T) {
	s := NewSetI64(4)
	if !s.Insert(3) {
		t.Fatal("first insert reported duplicate")
	}
	if s.Insert(3) {
		t.Fatal("second insert reported new")
	}
	if !s.Contains(3) || s.Contains(4) {
		t.Fatal("Contains wrong")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSetManyKeys(t *testing.T) {
	s := NewSetI64(1)
	for i := int64(0); i < 5000; i++ {
		s.Insert(i * 31)
	}
	if s.Len() != 5000 {
		t.Fatalf("Len = %d", s.Len())
	}
	seen := 0
	s.ForEach(func(k int64) {
		if k%31 != 0 {
			t.Fatalf("unexpected key %d", k)
		}
		seen++
	})
	if seen != 5000 {
		t.Fatalf("ForEach visited %d", seen)
	}
}

func TestAccumulatorPairI64Basic(t *testing.T) {
	acc := NewAccumulatorPairI64(4)
	acc.Add(1, 2, 10)
	acc.Add(1, 2, 5)
	acc.Add(2, 1, 7) // reversed pair is a distinct key
	if v, ok := acc.Get(1, 2); !ok || v != 15 {
		t.Fatalf("Get(1,2) = %d,%v, want 15,true", v, ok)
	}
	if v, ok := acc.Get(2, 1); !ok || v != 7 {
		t.Fatalf("Get(2,1) = %d,%v, want 7,true", v, ok)
	}
	if _, ok := acc.Get(3, 3); ok {
		t.Fatal("Get(3,3) found a missing pair")
	}
	if acc.Len() != 2 {
		t.Fatalf("Len = %d, want 2", acc.Len())
	}
	acc.Reset()
	if acc.Len() != 0 {
		t.Fatalf("Len after reset = %d", acc.Len())
	}
	if _, ok := acc.Get(1, 2); ok {
		t.Fatal("pair survived reset")
	}
}

// TestAccumulatorPairI64BoundaryKeys exercises the pair keying exactly
// where the old composite cu*coarseN+cv key broke: coarse ID spaces beyond
// ~3·10^9 where the product overflows int64. Each collision pair below
// composes to the identical (wrapped) int64 under the old scheme but must
// stay distinct as a pair.
func TestAccumulatorPairI64BoundaryKeys(t *testing.T) {
	const coarseN = int64(4_000_000_000) // cu*coarseN overflows for cu >= ~2.3e9
	collisions := [][2][2]int64{
		// (a1,b1) and (a2,b2) with a1*coarseN+b1 == a2*coarseN+b2 mod 2^64.
		{{1 << 62, 5}, {0, 5}},                           // (1<<62)*coarseN wraps to 0
		{{coarseN - 1, 7}, {coarseN - 1 - (1 << 62), 7}}, // same wrap further up
		{{3_000_000_001, 0}, {3_000_000_001, 0}},         // identity sanity pair
	}
	for _, c := range collisions {
		acc := NewAccumulatorPairI64(8)
		acc.Add(c[0][0], c[0][1], 3)
		acc.Add(c[1][0], c[1][1], 4)
		same := c[0] == c[1]
		if same {
			if v, _ := acc.Get(c[0][0], c[0][1]); v != 7 || acc.Len() != 1 {
				t.Errorf("identical pair %v: val=%d len=%d, want 7,1", c[0], v, acc.Len())
			}
			continue
		}
		if acc.Len() != 2 {
			t.Errorf("pairs %v and %v merged (len=%d)", c[0], c[1], acc.Len())
		}
		if v, _ := acc.Get(c[0][0], c[0][1]); v != 3 {
			t.Errorf("pair %v accumulated %d, want 3", c[0], v)
		}
		if v, _ := acc.Get(c[1][0], c[1][1]); v != 4 {
			t.Errorf("pair %v accumulated %d, want 4", c[1], v)
		}
	}
}

func TestAccumulatorPairI64GrowKeepsPairs(t *testing.T) {
	acc := NewAccumulatorPairI64(2)
	const n = 500
	base := int64(3_000_000_000)
	for i := int64(0); i < n; i++ {
		acc.Add(base+i, base+2*i, i)
	}
	if acc.Len() != n {
		t.Fatalf("Len = %d, want %d", acc.Len(), n)
	}
	var count int
	acc.ForEach(func(a, b, v int64) {
		i := a - base
		if b != base+2*i || v != i {
			t.Errorf("pair (%d,%d)=%d corrupted across growth", a, b, v)
		}
		count++
	})
	if count != n {
		t.Fatalf("ForEach visited %d pairs, want %d", count, n)
	}
}
