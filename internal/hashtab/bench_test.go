package hashtab

import (
	"testing"

	"repro/internal/rng"
)

// The accumulate/scan/reset pattern of label propagation, comparing the
// linear-probing table against the built-in map (the paper's STL-hash-map
// observation, §IV-A).

func BenchmarkAccumulatorLP(b *testing.B) {
	r := rng.New(1)
	keys := make([]int64, 64)
	for i := range keys {
		keys[i] = r.Int64n(1 << 30)
	}
	acc := NewAccumulatorI64(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Reset()
		for _, k := range keys {
			acc.Add(k, 1)
		}
		var sum int64
		acc.ForEach(func(_, v int64) { sum += v })
	}
}

func BenchmarkBuiltinMapLP(b *testing.B) {
	r := rng.New(1)
	keys := make([]int64, 64)
	for i := range keys {
		keys[i] = r.Int64n(1 << 30)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := make(map[int64]int64, 64)
		for _, k := range keys {
			m[k]++
		}
		var sum int64
		for _, v := range m {
			sum += v
		}
	}
}

func BenchmarkMapPutGet(b *testing.B) {
	m := NewMapI64(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i % 4096)
		m.Put(k, int64(i))
		m.Get(k)
	}
}

func BenchmarkSetInsert(b *testing.B) {
	s := NewSetI64(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(int64(i % 8192))
	}
}
