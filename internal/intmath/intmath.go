// Package intmath provides exact integer arithmetic helpers for the
// balance computations: 128-bit multiply/divide with floor semantics and
// saturating addition. The balance bound Lmax and the per-rank headroom
// claims must never lose precision to float64 rounding (block weights can
// exceed 2^53), so every product is carried out in 128 bits.
package intmath

import (
	"math"
	"math/bits"
)

// MulDivFloor returns floor(a*num/den) for a, num >= 0 and den > 0. The
// product is computed in 128 bits so no intermediate overflow occurs;
// quotients beyond MaxInt64 saturate to MaxInt64.
func MulDivFloor(a, num, den int64) int64 {
	if a < 0 || num < 0 || den <= 0 {
		panic("intmath: MulDivFloor requires a >= 0, num >= 0, den > 0")
	}
	hi, lo := bits.Mul64(uint64(a), uint64(num))
	if hi >= uint64(den) {
		return math.MaxInt64 // quotient needs more than 64 bits
	}
	q, _ := bits.Div64(hi, lo, uint64(den))
	if q > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(q)
}

// SatAdd returns a+b for non-negative a and b, saturating at MaxInt64.
func SatAdd(a, b int64) int64 {
	if a < 0 || b < 0 {
		panic("intmath: SatAdd requires non-negative operands")
	}
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// CeilDiv returns ceil(a/b) for a >= 0 and b > 0.
func CeilDiv(a, b int64) int64 {
	if a < 0 || b <= 0 {
		panic("intmath: CeilDiv requires a >= 0, b > 0")
	}
	if a == 0 {
		return 0
	}
	return (a-1)/b + 1 // overflow-safe form of (a+b-1)/b
}
