package intmath

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/rng"
)

func refMulDivFloor(a, num, den int64) int64 {
	x := new(big.Int).Mul(big.NewInt(a), big.NewInt(num))
	x.Quo(x, big.NewInt(den))
	if !x.IsInt64() || x.Int64() > math.MaxInt64 {
		return math.MaxInt64
	}
	return x.Int64()
}

func TestMulDivFloorBoundaries(t *testing.T) {
	cases := []struct{ a, num, den int64 }{
		{0, 0, 1},
		{1, 1, 1},
		{math.MaxInt64, 1, 1},
		{math.MaxInt64, math.MaxInt64, math.MaxInt64},
		{math.MaxInt64, 3, 100},
		{1 << 62, 29, 100},
		{100, 29, 100},
		{1<<53 + 1, 7, 100}, // above float64's exact-integer range
		{3_000_000_000, 3_000_000_001, 1},
		{math.MaxInt64, 2, 1}, // saturates
	}
	for _, c := range cases {
		got := MulDivFloor(c.a, c.num, c.den)
		want := refMulDivFloor(c.a, c.num, c.den)
		if got != want {
			t.Errorf("MulDivFloor(%d,%d,%d) = %d, want %d", c.a, c.num, c.den, got, want)
		}
	}
}

func TestMulDivFloorRandomAgainstBigInt(t *testing.T) {
	r := rng.New(7)
	for i := 0; i < 2000; i++ {
		a := int64(r.Uint64() >> (1 + r.Intn(40)))
		num := int64(r.Uint64() >> (1 + r.Intn(40)))
		den := int64(r.Uint64()>>(1+r.Intn(40))) + 1
		got := MulDivFloor(a, num, den)
		want := refMulDivFloor(a, num, den)
		if got != want {
			t.Fatalf("MulDivFloor(%d,%d,%d) = %d, want %d", a, num, den, got, want)
		}
	}
}

func TestSatAdd(t *testing.T) {
	if got := SatAdd(1, 2); got != 3 {
		t.Fatalf("SatAdd(1,2) = %d", got)
	}
	if got := SatAdd(math.MaxInt64, 1); got != math.MaxInt64 {
		t.Fatalf("SatAdd overflow = %d, want MaxInt64", got)
	}
	if got := SatAdd(math.MaxInt64-5, 5); got != math.MaxInt64 {
		t.Fatalf("SatAdd exact = %d, want MaxInt64", got)
	}
}

func TestCeilDiv(t *testing.T) {
	for _, c := range []struct{ a, b, want int64 }{
		{0, 3, 0}, {1, 3, 1}, {3, 3, 1}, {4, 3, 2}, {math.MaxInt64 - 2, math.MaxInt64, 1},
	} {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
