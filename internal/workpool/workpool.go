// Package workpool provides the per-rank worker pool behind the
// intra-rank parallel supersteps: a fixed set of persistent goroutines
// that execute the chunks of one parallel pass and then go back to sleep.
//
// Determinism contract: Run hands out chunk indices [0, n) exactly once
// each, but in no particular assignment to workers — so everything a chunk
// computes must be a function of the chunk index alone (per-chunk RNG
// streams, disjoint output ranges), never of the worker that happened to
// run it or of the worker count. Under that discipline a pool of any size
// produces bit-identical results, which is what the sclp and contract
// worksharing passes rely on.
//
// A nil *Pool (and a pool of size 1) executes chunks inline on the calling
// goroutine, so serial fallbacks need no separate code path.
package workpool

import (
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a fixed-size set of persistent workers owned by one rank. It is
// not safe to issue concurrent Run calls on one Pool; ranks own their pool
// exclusively.
type Pool struct {
	size int
	jobs chan *job
	wg   sync.WaitGroup
}

// job is one Run invocation: a chunked task drained via an atomic cursor.
type job struct {
	fn   func(worker, chunk int)
	n    int
	next atomic.Int64
	busy atomic.Int64 // summed nanoseconds workers spent on chunks
	wg   sync.WaitGroup
}

// New returns a pool of the given size. Size s runs chunks on the caller
// plus s-1 persistent helper goroutines; sizes below 1 are clamped to 1
// (no helpers). Call Close when the pool's rank is done to join the
// helpers.
func New(size int) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{size: size}
	if size > 1 {
		p.jobs = make(chan *job)
		for w := 1; w < size; w++ {
			p.wg.Add(1)
			go p.worker(w, p.jobs)
		}
	}
	return p
}

func (p *Pool) worker(id int, jobs <-chan *job) {
	defer p.wg.Done()
	for j := range jobs {
		j.run(id)
		j.wg.Done()
	}
}

func (j *job) run(worker int) {
	start := time.Now()
	for {
		c := int(j.next.Add(1)) - 1
		if c >= j.n {
			break
		}
		j.fn(worker, c)
	}
	j.busy.Add(int64(time.Since(start)))
}

// Run executes fn(worker, chunk) for every chunk in [0, n), distributing
// chunks across the pool, and returns once all chunks completed. The
// worker argument is in [0, Size()) and identifies the executing lane —
// use it to index per-worker scratch (accumulators, RNG state), never to
// influence results. The returned duration is the summed busy time of all
// participating lanes (for utilization: busy / (elapsed * Size())).
//
// On a nil pool, a size-1 pool, or n <= 1 the chunks run inline on the
// caller.
func (p *Pool) Run(n int, fn func(worker, chunk int)) time.Duration {
	if n <= 0 {
		return 0
	}
	if p == nil || p.size == 1 || n == 1 {
		start := time.Now()
		for c := 0; c < n; c++ {
			fn(0, c)
		}
		return time.Since(start)
	}
	j := &job{fn: fn, n: n}
	helpers := p.size - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	j.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		p.jobs <- j
	}
	j.run(0)
	j.wg.Wait()
	return time.Duration(j.busy.Load())
}

// Chunks returns how many chunks n items split into at the given target
// chunk size. The count is a function of n and target alone — never of the
// pool size — which is the first half of the bit-identity contract: the same
// input yields the same chunk grid no matter how many workers drain it.
func Chunks(n, target int) int {
	if n <= 0 {
		return 0
	}
	if target < 1 {
		target = 1
	}
	return (n + target - 1) / target
}

// Bounds returns the half-open item range [lo, hi) of chunk c when n items
// are split into nchunks balanced chunks (sizes differ by at most one).
func Bounds(n, nchunks, c int) (lo, hi int) {
	return c * n / nchunks, (c + 1) * n / nchunks
}

// Size returns the number of lanes (1 for a nil pool).
func (p *Pool) Size() int {
	if p == nil {
		return 1
	}
	return p.size
}

// Close terminates the helper goroutines and waits for them to exit, so a
// closed pool leaks nothing. Nil-safe; Close is idempotent only in the
// sense that a size-1 pool has nothing to close — do not call it twice on
// a pooled instance.
func (p *Pool) Close() {
	if p == nil || p.jobs == nil {
		return
	}
	close(p.jobs)
	p.jobs = nil
	p.wg.Wait()
}
