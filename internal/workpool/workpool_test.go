package workpool

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCoversEveryChunkExactlyOnce(t *testing.T) {
	for _, size := range []int{1, 2, 4, 8} {
		p := New(size)
		const n = 1000
		var hits [n]atomic.Int32
		p.Run(n, func(_, chunk int) { hits[chunk].Add(1) })
		for c := range hits {
			if got := hits[c].Load(); got != 1 {
				t.Errorf("size %d: chunk %d ran %d times", size, c, got)
			}
		}
		p.Close()
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Size() != 1 {
		t.Fatalf("nil pool size = %d", p.Size())
	}
	var sum int
	p.Run(10, func(worker, chunk int) {
		if worker != 0 {
			t.Errorf("worker = %d on nil pool", worker)
		}
		sum += chunk
	})
	if sum != 45 {
		t.Errorf("sum = %d", sum)
	}
	p.Close() // must not panic
}

func TestWorkerIndexInRange(t *testing.T) {
	p := New(4)
	defer p.Close()
	var bad atomic.Int32
	p.Run(64, func(worker, _ int) {
		if worker < 0 || worker >= 4 {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Error("worker index out of [0, size)")
	}
}

func TestDeterministicResultAcrossSizes(t *testing.T) {
	// A chunked computation whose output depends only on the chunk index
	// must be identical for any pool size.
	compute := func(size int) []int64 {
		p := New(size)
		defer p.Close()
		out := make([]int64, 256)
		p.Run(len(out), func(_, chunk int) {
			v := int64(chunk)
			for i := 0; i < 1000; i++ {
				v = v*6364136223846793005 + 1442695040888963407
			}
			out[chunk] = v
		})
		return out
	}
	want := compute(1)
	for _, size := range []int{2, 3, 8} {
		got := compute(size)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("size %d: out[%d] = %d, want %d", size, i, got[i], want[i])
			}
		}
	}
}

func TestCloseJoinsHelpers(t *testing.T) {
	before := runtime.NumGoroutine()
	p := New(8)
	p.Run(100, func(_, _ int) {})
	p.Close()
	// Helpers must have exited synchronously.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines after Close: %d > %d before New", g, before)
	}
}

func TestBusyTimeReported(t *testing.T) {
	p := New(2)
	defer p.Close()
	busy := p.Run(8, func(_, _ int) { time.Sleep(time.Millisecond) })
	if busy < 8*time.Millisecond {
		t.Errorf("busy = %v, want >= 8ms", busy)
	}
}
