package sclp

import (
	"sort"

	"repro/internal/dgraph"
	"repro/internal/hashtab"
	"repro/internal/intmath"
)

// ParRebalanceConfig controls the dedicated distributed rebalancing pass.
type ParRebalanceConfig struct {
	K    int32
	Lmax int64
	// MaxRounds caps the number of move rounds; 0 means "until feasible or
	// no progress". Every round strictly reduces the total overload, so the
	// pass always terminates.
	MaxRounds int
}

// ParRebalance restores the hard balance constraint of §II-A: it moves
// minimum-cut-damage nodes out of overloaded blocks into blocks with
// remaining headroom until every block weight respects Lmax. part has
// NTotal entries with ghosts in sync (maintained). It returns the global
// number of moves performed and whether the partition is feasible
// afterwards; false is only possible when no progress can be made even
// with a block's entire headroom concentrated on a single rank (e.g. a
// node heavier than every block's remaining headroom). Since the total headroom under
// Lmax >= ceil(c(V)/k) is always at least the total overload, unit-weight
// (and generally max-node-weight <= Lmax - min-block-weight) instances
// always end feasible. Collective.
//
//parhip:collective
func ParRebalance(d *dgraph.DGraph, part []int64, cfg ParRebalanceConfig) (int64, bool) {
	k := cfg.K
	if k < 1 {
		return 0, false
	}
	nl := d.NLocal()
	localContrib := make([]int64, k)
	for v := int32(0); v < nl; v++ {
		localContrib[part[v]] += d.NW[v]
	}
	blockWeight := d.Comm.AllreduceSum(localContrib)
	headroom := make([]int64, k)
	demand := make([]int64, k)
	conn := hashtab.NewAccumulatorI64(64)
	changedSet := newDirtySet(nl)
	var totalMoves int64

	feasible := func() bool {
		for _, w := range blockWeight {
			if w > cfg.Lmax {
				return false
			}
		}
		return true
	}

	// stalls counts consecutive zero-move rounds. The first stall switches
	// the headroom claims to concentrated mode (a rank's proportional share
	// can land below a heavy node's weight even when the full headroom
	// would fit it); further stalls rotate the concentration target through
	// the demanding ranks, and only after every rank has had its turn does
	// the pass give up. All decisions flow from allreduced values, so the
	// ranks stay in lockstep.
	stalls := 0
	for round := 0; ; round++ {
		// Superstep boundary: cancelled worlds unwind here.
		d.Comm.CheckAbort()
		// blockWeight is rank-consistent, so every rank takes the same
		// branch and the collectives below stay symmetric.
		if feasible() {
			return totalMoves, true
		}
		if cfg.MaxRounds > 0 && round >= cfg.MaxRounds {
			return totalMoves, false
		}
		if stalls > d.Comm.Size() {
			return totalMoves, false
		}

		// Demand: the weight this rank wants to evacuate from overloaded
		// blocks, claimed against every block that still has headroom.
		var evacuate int64
		for v := int32(0); v < nl; v++ {
			if blockWeight[part[v]] > cfg.Lmax {
				evacuate += d.NW[v]
			}
		}
		for b := int32(0); b < k; b++ {
			demand[b] = 0
			if evacuate > 0 && blockWeight[b] < cfg.Lmax {
				demand[b] = evacuate
			}
		}
		claimHeadroom(d.Comm, blockWeight, demand, cfg.Lmax, round, stalls > 0, headroom)

		// Eviction quotas keep P ranks from each independently draining the
		// full overload (paying up to P times the necessary cut damage):
		// this rank may start evictions from block b while it has removed
		// less than its contribution-proportional share of the overload.
		// The +1 keeps rounding from stalling progress; summed over ranks
		// the quotas always cover the overload.
		quota := make([]int64, k)
		for b := int32(0); b < k; b++ {
			if over := blockWeight[b] - cfg.Lmax; over > 0 {
				quota[b] = intmath.MulDivFloor(over, localContrib[b], blockWeight[b]) + 1
			}
		}

		moved := rebalanceRound(d, part, blockWeight, localContrib, headroom, quota,
			cfg.Lmax, conn, changedSet)
		exchangeLabels(d, part, nil, changedSet)
		blockWeight = d.Comm.AllreduceSum(localContrib)
		global := d.Comm.AllreduceSum1(moved)
		totalMoves += global
		if global == 0 {
			stalls++
		} else {
			stalls = 0
		}
	}
}

// rebalanceCandidate is one local node of an overloaded block, ranked by
// the cut damage its cheapest eviction would cause.
type rebalanceCandidate struct {
	v      int32
	damage int64
}

// rebalanceRound evicts local nodes from overloaded blocks in ascending
// cut-damage order, respecting this rank's claimed headroom shares (so the
// union of all ranks' moves cannot push any block past Lmax) and its
// eviction quotas (so ranks do not jointly over-drain). blockWeight and
// localContrib are updated with the local view of the moves.
func rebalanceRound(d *dgraph.DGraph, part []int64,
	blockWeight, localContrib, headroom, quota []int64, lmax int64,
	conn *hashtab.AccumulatorI64, changedSet *dirtySet) int64 {

	nl := d.NLocal()
	var cands []rebalanceCandidate
	for v := int32(0); v < nl; v++ {
		if blockWeight[part[v]] <= lmax {
			continue
		}
		// Cheapest eviction: internal connection minus the strongest
		// foreign connection (boundary nodes with strong outside ties rank
		// first; interior nodes pay their full internal connectivity).
		var own, bestForeign int64
		conn.Reset()
		ws := d.EdgeWeights(v)
		for i, nb := range d.Neighbors(v) {
			if part[nb] == part[v] {
				own += ws[i]
			} else {
				conn.Add(part[nb], ws[i])
			}
		}
		conn.ForEach(func(_, c int64) {
			if c > bestForeign {
				bestForeign = c
			}
		})
		cands = append(cands, rebalanceCandidate{v: v, damage: own - bestForeign})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].damage != cands[j].damage {
			return cands[i].damage < cands[j].damage
		}
		return cands[i].v < cands[j].v
	})

	evicted := make([]int64, len(blockWeight))
	var moved int64
	for _, cand := range cands {
		v := cand.v
		cur := part[v]
		if blockWeight[cur] <= lmax {
			continue // block already drained by earlier moves
		}
		if evicted[cur] >= quota[cur] {
			continue // this rank's share of the overload is done
		}
		nw := d.NW[v]
		// Re-evaluate the best target against the current local view:
		// strongest-connected block first, then the lightest block with
		// remaining claimed headroom as fallback.
		conn.Reset()
		ws := d.EdgeWeights(v)
		for i, nb := range d.Neighbors(v) {
			if part[nb] != cur {
				conn.Add(part[nb], ws[i])
			}
		}
		best := int64(-1)
		var bestConn int64 = -1
		conn.ForEach(func(b, c int64) {
			if headroom[b] >= nw && blockWeight[b]+nw <= lmax && c > bestConn {
				best, bestConn = b, c
			}
		})
		if best < 0 {
			for b := int64(0); b < int64(len(blockWeight)); b++ {
				if b == cur || headroom[b] < nw || blockWeight[b]+nw > lmax {
					continue
				}
				if best < 0 || blockWeight[b] < blockWeight[best] {
					best = b
				}
			}
		}
		if best < 0 {
			continue
		}
		blockWeight[cur] -= nw
		blockWeight[best] += nw
		localContrib[cur] -= nw
		localContrib[best] += nw
		headroom[best] -= nw
		evicted[cur] += nw
		part[v] = best
		moved++
		if d.IsInterface(v) {
			changedSet.add(v)
		}
	}
	return moved
}
