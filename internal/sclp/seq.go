// Package sclp implements size-constrained label propagation (§III-A of
// the paper), sequentially and in parallel over a distributed graph.
//
// Label propagation starts with every node in its own cluster and
// repeatedly moves each node to the eligible neighbouring cluster with the
// strongest edge connection, breaking ties randomly. A cluster is eligible
// when moving the node keeps its weight within the upper bound U. With
// U = Lmax/f the algorithm computes the clusterings contracted during
// coarsening; with U = Lmax it doubles as the local search used during
// uncoarsening, where nodes of overloaded blocks are forced to move out.
package sclp

import (
	"repro/internal/graph"
	"repro/internal/hashtab"
	"repro/internal/rng"
)

// ClusterConfig controls the sequential clustering run.
type ClusterConfig struct {
	// U is the upper bound on cluster weight (paper: max(max_v c(v), W)).
	U int64
	// Iterations is the number of label propagation rounds (paper: ell).
	Iterations int
	// DegreeOrder traverses nodes in ascending-degree order in the first
	// round (paper §III-A); later rounds use random order.
	DegreeOrder bool
	// Constraint, when non-nil, restricts clusters to stay within one
	// block of a reference partition: a node may only join clusters whose
	// members share its constraint label. This realizes the V-cycle rule
	// that "each cluster of the computed clustering is a subset of a block
	// of the input partition" (§IV-D), which keeps cut edges uncontracted.
	//lint:rawslice-ok internal SPMD plumbing: the raw assignment slice is the working representation; wrapped in *parhip.Partition at the public boundary
	Constraint []int32
	// Seed drives traversal order and tie breaking.
	Seed uint64
}

// Cluster runs size-constrained label propagation and returns a cluster
// label per node. Labels are drawn from the node ID space (a cluster's
// label is the ID of one of its members); they are not contiguous.
//
//lint:rawslice-ok internal SPMD plumbing: the raw assignment slice is the working representation; wrapped in *parhip.Partition at the public boundary
func Cluster(g *graph.Graph, cfg ClusterConfig) []int32 {
	n := g.NumNodes()
	labels := make([]int32, n)
	weight := make([]int64, n) // weight[label] = cluster weight
	for v := int32(0); v < n; v++ {
		labels[v] = v
		weight[v] = g.NW[v]
	}
	if n == 0 || cfg.Iterations <= 0 {
		return labels
	}
	r := rng.New(cfg.Seed)
	conn := hashtab.NewAccumulatorI64(64)
	var order []int32
	if cfg.DegreeOrder {
		order = graph.DegreeOrder(g)
	} else {
		order = r.Perm(int(n))
	}
	for iter := 0; iter < cfg.Iterations; iter++ {
		if iter > 0 {
			r.Shuffle(int(n), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		moved := 0
		for _, v := range order {
			if moveNode(g, v, labels, weight, cfg.Constraint, cfg.U, conn, r) {
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	return labels
}

// moveNode evaluates node v and moves it to the strongest eligible cluster.
// It reports whether the label changed.
func moveNode(g *graph.Graph, v int32, labels []int32, weight []int64,
	constraint []int32, u int64, conn *hashtab.AccumulatorI64, r *rng.RNG) bool {

	nbrs := g.Neighbors(v)
	if len(nbrs) == 0 {
		return false
	}
	ws := g.EdgeWeights(v)
	conn.Reset()
	for i, nb := range nbrs {
		if constraint != nil && constraint[nb] != constraint[v] {
			continue
		}
		conn.Add(int64(labels[nb]), ws[i])
	}
	cur := labels[v]
	curConn, _ := conn.Get(int64(cur))
	best := cur
	bestConn := curConn
	ties := 1
	conn.ForEach(func(label, c int64) {
		l := int32(label)
		if l == cur {
			return
		}
		// Eligible when the target stays within the bound after the move.
		if weight[l]+g.NW[v] > u {
			return
		}
		switch {
		case c > bestConn:
			best, bestConn, ties = l, c, 1
		case c == bestConn && l != cur:
			// Reservoir sampling over tied candidates for random tie
			// breaking (staying put participates as the incumbent).
			ties++
			if r.Intn(ties) == 0 {
				best = l
			}
		}
	})
	if best == cur {
		return false
	}
	weight[cur] -= g.NW[v]
	weight[best] += g.NW[v]
	labels[v] = best
	return true
}

// RefineConfig controls the sequential refinement run.
type RefineConfig struct {
	// K is the number of blocks.
	K int32
	// Lmax is the tight balance bound (1+eps)*ceil(c(V)/k).
	Lmax int64
	// Iterations is the number of refinement rounds (paper: r, default 6).
	Iterations int
	// Seed drives traversal order and tie breaking.
	Seed uint64
}

// Refine improves partition p in place using label propagation with the
// balance constraint of the partitioning problem (§III-A, last paragraph):
// a node of a non-overloaded block moves only to an eligible block with
// connection at least as strong as its own block's (so the cut never
// increases); a node of an overloaded block moves to its strongest eligible
// other block regardless, trading cut for balance. Returns the number of
// moves performed.
//
//lint:rawslice-ok internal SPMD plumbing: the raw assignment slice is the working representation; wrapped in *parhip.Partition at the public boundary
func Refine(g *graph.Graph, p []int32, cfg RefineConfig) int {
	n := g.NumNodes()
	if n == 0 || cfg.Iterations <= 0 {
		return 0
	}
	weight := make([]int64, cfg.K)
	for v := int32(0); v < n; v++ {
		weight[p[v]] += g.NW[v]
	}
	r := rng.New(cfg.Seed)
	conn := hashtab.NewAccumulatorI64(64)
	order := r.Perm(int(n))
	totalMoves := 0
	for iter := 0; iter < cfg.Iterations; iter++ {
		if iter > 0 {
			r.Shuffle(int(n), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		moved := 0
		for _, v := range order {
			if refineNode(g, v, p, weight, cfg.Lmax, conn, r) {
				moved++
			}
		}
		totalMoves += moved
		if moved == 0 {
			break
		}
	}
	return totalMoves
}

func refineNode(g *graph.Graph, v int32, p []int32, weight []int64,
	lmax int64, conn *hashtab.AccumulatorI64, r *rng.RNG) bool {

	nbrs := g.Neighbors(v)
	if len(nbrs) == 0 {
		return false
	}
	ws := g.EdgeWeights(v)
	conn.Reset()
	for i, nb := range nbrs {
		conn.Add(int64(p[nb]), ws[i])
	}
	cur := p[v]
	overloaded := weight[cur] > lmax
	curConn, _ := conn.Get(int64(cur))

	best := int32(-1)
	var bestConn int64 = -1
	ties := 0
	conn.ForEach(func(label, c int64) {
		b := int32(label)
		if b == cur {
			return
		}
		if weight[b]+g.NW[v] > lmax {
			return
		}
		switch {
		case c > bestConn:
			best, bestConn, ties = b, c, 1
		case c == bestConn:
			ties++
			if r.Intn(ties) == 0 {
				best = b
			}
		}
	})
	if best < 0 {
		if !overloaded {
			return false
		}
		// Overloaded node with no eligible neighbouring block: fall back to
		// the globally lightest block so feasibility can always be
		// restored. (Extension beyond the paper's rule, which only
		// considers neighbouring blocks; without it a block with no
		// boundary to an underloaded block could stay overloaded forever.)
		for b := int32(0); b < int32(len(weight)); b++ {
			if b == cur {
				continue
			}
			if best < 0 || weight[b] < weight[best] {
				best = b
			}
		}
		if best < 0 || weight[best]+g.NW[v] > lmax {
			return false
		}
	}
	if !overloaded {
		// Never worsen the cut: require at least as strong a connection,
		// and only take equal-connection moves when they help balance.
		if bestConn < curConn {
			return false
		}
		if bestConn == curConn && weight[best]+g.NW[v] >= weight[cur] {
			return false
		}
	}
	weight[cur] -= g.NW[v]
	weight[best] += g.NW[v]
	p[v] = best
	return true
}
