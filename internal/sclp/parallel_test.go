package sclp

import (
	"testing"

	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/partition"
)

func TestParClusterGhostsSynced(t *testing.T) {
	g := gen.RGG(400, 1)
	mpi.NewWorld(4).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		labels := ParCluster(d, ParClusterConfig{U: 30, Iterations: 3, Seed: 1})
		// Pull owners' labels and compare with our ghost copies.
		check := append([]int64(nil), labels...)
		d.SyncGhosts(check)
		for v := d.NLocal(); v < d.NTotal(); v++ {
			if check[v] != labels[v] {
				t.Errorf("rank %d: ghost %d stale: have %d, owner has %d",
					c.Rank(), v, labels[v], check[v])
				return
			}
		}
	})
}

func TestParClusterSizeConstraintGlobally(t *testing.T) {
	g := gen.RGG(600, 2)
	const U = 25
	mpi.NewWorld(4).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		labels := ParCluster(d, ParClusterConfig{U: U, Iterations: 3, Seed: 2})
		// Aggregate true global cluster weights.
		local := make(map[int64]int64)
		for v := int32(0); v < d.NLocal(); v++ {
			local[labels[v]] += d.NW[v]
		}
		var flat []int64
		for l, w := range local {
			flat = append(flat, l, w)
		}
		parts := c.Allgatherv(flat)
		if c.Rank() == 0 {
			total := make(map[int64]int64)
			for _, p := range parts {
				for i := 0; i+1 < len(p); i += 2 {
					total[p[i]] += p[i+1]
				}
			}
			for l, w := range total {
				// The coarsening constraint is soft (locally maintained
				// weights), so allow a bounded overshoot: one extra local
				// contribution per rank.
				if w > U*int64(c.Size()) {
					t.Errorf("cluster %d weight %d far above U=%d", l, w, U)
				}
			}
		}
	})
}

func TestParClusterTwoCliquesAcrossRanks(t *testing.T) {
	// Two 6-cliques joined by an edge, nodes interleaved across ranks so
	// clusters must form across PE boundaries.
	b := graph.NewBuilder(12)
	for u := int32(0); u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			b.AddEdge(u, v)
			b.AddEdge(u+6, v+6)
		}
	}
	b.AddEdge(5, 6)
	g := b.Build()
	mpi.NewWorld(3).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		labels := ParCluster(d, ParClusterConfig{U: 6, Iterations: 8, Seed: 5})
		// All local nodes of the same clique share a label.
		for v := int32(0); v < d.NLocal(); v++ {
			gv := d.ToGlobal(v)
			for u := int32(0); u < d.NLocal(); u++ {
				gu := d.ToGlobal(u)
				sameClique := (gv < 6) == (gu < 6)
				if sameClique && labels[v] != labels[u] {
					t.Errorf("rank %d: nodes %d,%d in one clique but labels %d,%d",
						c.Rank(), gv, gu, labels[v], labels[u])
					return
				}
			}
		}
	})
}

func TestParClusterMatchesSequentialShrink(t *testing.T) {
	// Parallel clustering should shrink a community graph about as well as
	// the sequential algorithm (not identically — different orders).
	g, _ := gen.PlantedPartition(2000, 20, 10, 0.2, 7)
	seqLabels := Cluster(g, ClusterConfig{U: 200, Iterations: 3, DegreeOrder: true, Seed: 1})
	seqDistinct := make(map[int32]bool)
	for _, l := range seqLabels {
		seqDistinct[l] = true
	}
	mpi.NewWorld(4).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		labels := ParCluster(d, ParClusterConfig{U: 200, Iterations: 3, DegreeOrder: true, Seed: 1})
		local := make(map[int64]bool)
		for v := int32(0); v < d.NLocal(); v++ {
			local[labels[v]] = true
		}
		var flat []int64
		for l := range local {
			flat = append(flat, l)
		}
		parts := c.Allgatherv(flat)
		if c.Rank() == 0 {
			global := make(map[int64]bool)
			for _, p := range parts {
				for _, l := range p {
					global[l] = true
				}
			}
			if len(global) > 4*len(seqDistinct)+50 {
				t.Errorf("parallel found %d clusters, sequential %d", len(global), len(seqDistinct))
			}
		}
	})
}

func TestParClusterConstraint(t *testing.T) {
	g := gen.RGG(300, 3)
	mpi.NewWorld(3).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		constraint := make([]int64, d.NTotal())
		for v := int32(0); v < d.NTotal(); v++ {
			constraint[v] = d.ToGlobal(v) % 2
		}
		labels := ParCluster(d, ParClusterConfig{
			U: 50, Iterations: 4, Constraint: constraint, Seed: 4,
		})
		// A node's label names a cluster representative; under the
		// constraint that representative must share the node's class.
		for v := int32(0); v < d.NLocal(); v++ {
			if labels[v]%2 != constraint[v] {
				t.Errorf("rank %d: node %d (class %d) in cluster %d",
					c.Rank(), d.ToGlobal(v), constraint[v], labels[v])
				return
			}
		}
	})
}

func TestParRefineImprovesCut(t *testing.T) {
	g := gen.DelaunayLike(1600, 4)
	const k = 2
	lmax := partition.Lmax(g.TotalNodeWeight(), k, 0.03)
	mpi.NewWorld(4).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		part := make([]int64, d.NTotal())
		for v := int32(0); v < d.NTotal(); v++ {
			part[v] = d.ToGlobal(v) % 2 // poor but balanced start
		}
		before := d.EdgeCut(part)
		moves := ParRefine(d, part, ParRefineConfig{K: k, Lmax: lmax, Iterations: 6, Seed: 3})
		after := d.EdgeCut(part)
		if moves == 0 {
			t.Error("no moves on an odd/even partition")
		}
		if after >= before {
			t.Errorf("cut %d -> %d", before, after)
		}
		bw := d.BlockWeights(part, k)
		for b, w := range bw {
			if w > lmax {
				t.Errorf("block %d weight %d exceeds lmax %d", b, w, lmax)
			}
		}
	})
}

func TestParRefineNeverExceedsLmax(t *testing.T) {
	g := gen.RGG(800, 6)
	const k = 4
	lmax := partition.Lmax(g.TotalNodeWeight(), k, 0.03)
	mpi.NewWorld(4).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		part := make([]int64, d.NTotal())
		for v := int32(0); v < d.NTotal(); v++ {
			part[v] = d.ToGlobal(v) % k
		}
		ParRefine(d, part, ParRefineConfig{K: k, Lmax: lmax, Iterations: 5, Seed: 6})
		for b, w := range d.BlockWeights(part, k) {
			if w > lmax {
				t.Errorf("block %d weight %d exceeds lmax %d", b, w, lmax)
			}
		}
	})
}

func TestParRefineGhostConsistency(t *testing.T) {
	g := gen.DelaunayLike(900, 8)
	const k = 3
	lmax := partition.Lmax(g.TotalNodeWeight(), k, 0.03)
	mpi.NewWorld(3).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		part := make([]int64, d.NTotal())
		for v := int32(0); v < d.NTotal(); v++ {
			part[v] = d.ToGlobal(v) % k
		}
		ParRefine(d, part, ParRefineConfig{K: k, Lmax: lmax, Iterations: 4, Seed: 7})
		check := append([]int64(nil), part...)
		d.SyncGhosts(check)
		for v := d.NLocal(); v < d.NTotal(); v++ {
			if check[v] != part[v] {
				t.Errorf("rank %d: ghost %d stale after refine", c.Rank(), v)
				return
			}
		}
	})
}

func TestParRefineSingleRankMatchesConstraints(t *testing.T) {
	// On one rank the parallel refinement reduces to the sequential
	// behaviour: cut never worsens from a good start.
	g := gen.DelaunayLike(400, 9)
	const k = 2
	n := g.NumNodes()
	lmax := partition.Lmax(g.TotalNodeWeight(), k, 0.03)
	mpi.NewWorld(1).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		part := make([]int64, d.NTotal())
		for v := int32(0); v < d.NTotal(); v++ {
			if d.ToGlobal(v) >= int64(n)/2 {
				part[v] = 1
			}
		}
		before := d.EdgeCut(part)
		ParRefine(d, part, ParRefineConfig{K: k, Lmax: lmax, Iterations: 4, Seed: 8})
		if after := d.EdgeCut(part); after > before {
			t.Errorf("cut worsened %d -> %d", before, after)
		}
	})
}

func TestParRefineUnevenLocalCounts(t *testing.T) {
	// Regression: with 197 nodes on 4 ranks the local counts are 50/49/49/49.
	// A phase count derived from ceil(nLocal/chunk) differs across ranks
	// (8 vs 7), desynchronizing the per-phase collectives and deadlocking.
	// Every rank must execute a fixed number of phases.
	g := graph.Path(197)
	lmax := partition.Lmax(g.TotalNodeWeight(), 2, 0.03)
	mpi.NewWorld(4).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		part := make([]int64, d.NTotal())
		for v := int32(0); v < d.NTotal(); v++ {
			part[v] = d.ToGlobal(v) % 2
		}
		ParRefine(d, part, ParRefineConfig{K: 2, Lmax: lmax, Iterations: 3, PhasesPerRound: 8, Seed: 1})
	})
}

func TestParClusterUnevenLocalCounts(t *testing.T) {
	g := gen.RGG(197, 5)
	mpi.NewWorld(4).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		ParCluster(d, ParClusterConfig{U: 20, Iterations: 3, PhasesPerRound: 8, Seed: 2})
	})
}

func TestParClusterEmptyRanks(t *testing.T) {
	g := graph.Path(3)
	mpi.NewWorld(5).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		labels := ParCluster(d, ParClusterConfig{U: 3, Iterations: 3, Seed: 1})
		if int32(len(labels)) != d.NTotal() {
			t.Errorf("rank %d: %d labels", c.Rank(), len(labels))
		}
	})
}
