package sclp

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

// clusterWeights returns the total node weight per label.
func clusterWeights(g *graph.Graph, labels []int32) map[int32]int64 {
	w := make(map[int32]int64)
	for v := int32(0); v < g.NumNodes(); v++ {
		w[labels[v]] += g.NW[v]
	}
	return w
}

func TestClusterTwoCliques(t *testing.T) {
	// Two 5-cliques joined by one edge: LP should find the cliques.
	b := graph.NewBuilder(10)
	for u := int32(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			b.AddEdge(u, v)
			b.AddEdge(u+5, v+5)
		}
	}
	b.AddEdge(4, 5)
	g := b.Build()
	labels := Cluster(g, ClusterConfig{U: 5, Iterations: 10, Seed: 1})
	for v := int32(1); v < 5; v++ {
		if labels[v] != labels[0] {
			t.Fatalf("clique 1 split: %v", labels)
		}
	}
	for v := int32(6); v < 10; v++ {
		if labels[v] != labels[5] {
			t.Fatalf("clique 2 split: %v", labels)
		}
	}
	if labels[0] == labels[5] {
		t.Fatalf("cliques merged despite U=5: %v", labels)
	}
}

func TestClusterRespectsSizeConstraint(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.RGG(300, seed)
		const U = 20
		labels := Cluster(g, ClusterConfig{U: U, Iterations: 5, Seed: seed})
		for _, w := range clusterWeights(g, labels) {
			if w > U {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterUnitBound(t *testing.T) {
	// U=1 on a unit-weight graph: the only feasible clustering is singletons
	// (paper §II-A).
	g := gen.RGG(100, 2)
	labels := Cluster(g, ClusterConfig{U: 1, Iterations: 5, Seed: 3})
	for v := int32(0); v < g.NumNodes(); v++ {
		if labels[v] != v {
			t.Fatalf("node %d moved under U=1", v)
		}
	}
}

func TestClusterShrinksCommunityGraph(t *testing.T) {
	g, _ := gen.PlantedPartition(2000, 20, 10, 0.2, 7)
	labels := Cluster(g, ClusterConfig{U: 200, Iterations: 3, DegreeOrder: true, Seed: 1})
	distinct := make(map[int32]bool)
	for _, l := range labels {
		distinct[l] = true
	}
	// Cluster contraction is aggressive on community graphs: expect far
	// fewer clusters than nodes (paper: "orders of magnitude").
	if len(distinct) > 400 {
		t.Fatalf("%d clusters from 2000 nodes; clustering ineffective", len(distinct))
	}
}

func TestClusterConstraintRespected(t *testing.T) {
	g := gen.RGG(200, 4)
	constraint := make([]int32, 200)
	for v := range constraint {
		constraint[v] = int32(v % 2)
	}
	labels := Cluster(g, ClusterConfig{U: 50, Iterations: 5, Constraint: constraint, Seed: 5})
	// Every cluster must be a subset of one constraint block.
	repBlock := make(map[int32]int32)
	for v := int32(0); v < 200; v++ {
		if b, ok := repBlock[labels[v]]; ok {
			if b != constraint[v] {
				t.Fatalf("cluster %d spans constraint blocks", labels[v])
			}
		} else {
			repBlock[labels[v]] = constraint[v]
		}
	}
}

func TestClusterDeterminism(t *testing.T) {
	g := gen.RGG(300, 9)
	a := Cluster(g, ClusterConfig{U: 30, Iterations: 4, Seed: 42})
	b := Cluster(g, ClusterConfig{U: 30, Iterations: 4, Seed: 42})
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestClusterZeroIterations(t *testing.T) {
	g := graph.Path(5)
	labels := Cluster(g, ClusterConfig{U: 10, Iterations: 0, Seed: 1})
	for v := int32(0); v < 5; v++ {
		if labels[v] != v {
			t.Fatal("zero iterations should leave singletons")
		}
	}
}

func TestClusterIsolatedNodes(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.Build() // nodes 2, 3 isolated
	labels := Cluster(g, ClusterConfig{U: 4, Iterations: 3, Seed: 1})
	if labels[2] != 2 || labels[3] != 3 {
		t.Fatal("isolated nodes must keep their own cluster")
	}
}

func TestRefineImprovesCut(t *testing.T) {
	g := gen.DelaunayLike(1024, 3)
	n := g.NumNodes()
	k := int32(2)
	lmax := partition.Lmax(g.TotalNodeWeight(), k, 0.03)
	// Start from a poor but balanced partition: odd/even node IDs.
	p := make([]int32, n)
	for v := int32(0); v < n; v++ {
		p[v] = v % 2
	}
	before := partition.EdgeCut(g, partition.Partition(p))
	moves := Refine(g, p, RefineConfig{K: k, Lmax: lmax, Iterations: 6, Seed: 1})
	after := partition.EdgeCut(g, partition.Partition(p))
	if moves == 0 {
		t.Fatal("refinement made no moves on an odd/even partition")
	}
	if after >= before {
		t.Fatalf("cut did not improve: %d -> %d", before, after)
	}
	if !partition.IsFeasible(g, partition.Partition(p), k, 0.03) {
		t.Fatal("refinement broke feasibility")
	}
}

func TestRefineNeverWorsensFromGoodStart(t *testing.T) {
	// From a contiguous (good) partition, refinement must not increase the
	// cut: non-overloaded nodes only take moves with >= connection.
	f := func(seed uint64) bool {
		g := gen.DelaunayLike(400, seed)
		n := g.NumNodes()
		k := int32(2)
		p := make([]int32, n)
		for v := int32(0); v < n; v++ {
			if v >= n/2 {
				p[v] = 1
			}
		}
		before := partition.EdgeCut(g, partition.Partition(p))
		lmax := partition.Lmax(g.TotalNodeWeight(), k, 0.03)
		Refine(g, p, RefineConfig{K: k, Lmax: lmax, Iterations: 4, Seed: seed})
		after := partition.EdgeCut(g, partition.Partition(p))
		return after <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestRefineRepairsOverload(t *testing.T) {
	// All nodes in block 0 of 2: block 0 is overloaded, refinement must move
	// nodes out even at a cut cost.
	g := gen.RGG(500, 11)
	n := g.NumNodes()
	p := make([]int32, n)
	lmax := partition.Lmax(g.TotalNodeWeight(), 2, 0.03)
	Refine(g, p, RefineConfig{K: 2, Lmax: lmax, Iterations: 20, Seed: 2})
	bw := partition.BlockWeights(g, partition.Partition(p), 2)
	if bw[0] > lmax {
		t.Fatalf("block 0 still overloaded: %v (lmax %d)", bw, lmax)
	}
}

func TestRefineRespectsLmax(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.RGG(300, seed)
		n := g.NumNodes()
		k := int32(4)
		r := rng.New(seed)
		p := make([]int32, n)
		for v := range p {
			p[v] = r.Int31n(k)
		}
		lmax := partition.Lmax(g.TotalNodeWeight(), k, 0.03)
		bwBefore := partition.BlockWeights(g, partition.Partition(p), k)
		maxBefore := int64(0)
		for _, w := range bwBefore {
			if w > maxBefore {
				maxBefore = w
			}
		}
		Refine(g, p, RefineConfig{K: k, Lmax: lmax, Iterations: 6, Seed: seed})
		for _, w := range partition.BlockWeights(g, partition.Partition(p), k) {
			// Blocks within the bound stay within; pre-overloaded blocks
			// must not grow.
			if w > lmax && w > maxBefore {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
