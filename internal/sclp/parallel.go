package sclp

import (
	"sort"

	"repro/internal/dgraph"
	"repro/internal/hashtab"
	"repro/internal/intmath"
	"repro/internal/mpi"
	"repro/internal/rng"
)

// ParClusterConfig controls the parallel clustering run (§IV-A/B).
type ParClusterConfig struct {
	// U is the cluster weight bound; during coarsening the constraint is
	// soft and enforced against locally maintained block weights only.
	U int64
	// Iterations is the number of label propagation rounds.
	Iterations int
	// DegreeOrder traverses local nodes by ascending local degree in the
	// first round (the paper parallelizes the degree ordering "by
	// considering only the local nodes").
	DegreeOrder bool
	// PhasesPerRound splits each round into communication phases: after
	// each phase the labels of changed interface nodes are exchanged with
	// adjacent PEs. This realizes the paper's overlapped phase scheme
	// (updates from phase kappa arrive before phase kappa+1) in BSP form.
	PhasesPerRound int
	// Constraint, when non-nil, has NTotal entries (ghosts in sync) and
	// restricts moves to clusters with the same constraint label (V-cycle
	// rule, §IV-D).
	Constraint []int64
	// Seed drives traversal order and tie breaking; each rank derives its
	// own stream.
	Seed uint64
}

// ParCluster runs parallel size-constrained label propagation on the
// distributed graph and returns a label per local+ghost node (ghost entries
// synchronized). Labels are global node IDs of cluster representatives.
// Collective.
//
//parhip:collective
func ParCluster(d *dgraph.DGraph, cfg ParClusterConfig) []int64 {
	if cfg.PhasesPerRound < 1 {
		cfg.PhasesPerRound = 8
	}
	nt := d.NTotal()
	labels := make([]int64, nt)
	for v := int32(0); v < nt; v++ {
		labels[v] = d.ToGlobal(v)
	}
	// Locally maintained cluster weights (paper §IV-B, coarsening): each PE
	// tracks the weights of clusters containing its local and ghost nodes.
	weight := hashtab.NewMapI64(int(nt) + 16)
	for v := int32(0); v < nt; v++ {
		weight.Put(labels[v], d.NW[v])
	}
	r := rng.New(cfg.Seed).Split(uint64(d.Comm.Rank()))
	conn := hashtab.NewAccumulatorI64(64)

	order := localOrder(d, cfg.DegreeOrder, r)
	changedSet := newDirtySet(d.NLocal())
	tracer := d.Comm.Tracer()
	rank := d.Comm.Rank()

	for iter := 0; iter < cfg.Iterations; iter++ {
		if iter > 0 {
			r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		var movedLocal int64
		// Every rank executes exactly PhasesPerRound phases regardless of
		// its local node count (phases are collective synchronization
		// points; ranks with few or no local nodes still participate).
		for ph := 0; ph < cfg.PhasesPerRound; ph++ {
			// Superstep boundary: a cancelled world unwinds here instead of
			// computing another phase (see mpi.Comm.CheckAbort).
			d.Comm.CheckAbort()
			sp := tracer.Begin(rank, "sclp.cluster_superstep")
			movedBefore := movedLocal
			start := ph * len(order) / cfg.PhasesPerRound
			end := (ph + 1) * len(order) / cfg.PhasesPerRound
			for _, v := range order[start:end] {
				if parMoveNode(d, v, labels, weight, cfg.Constraint, cfg.U, conn, r) {
					movedLocal++
					if d.IsInterface(v) {
						changedSet.add(v)
					}
				}
			}
			exchangeLabels(d, labels, weight, changedSet)
			tracer.End2(sp, "moves", movedLocal-movedBefore, "phase", int64(iter*cfg.PhasesPerRound+ph))
		}
		if d.Comm.AllreduceSum1(movedLocal) == 0 {
			break
		}
	}
	return labels
}

// localOrder computes the traversal order of local nodes.
func localOrder(d *dgraph.DGraph, degreeOrder bool, r *rng.RNG) []int32 {
	nl := int(d.NLocal())
	order := make([]int32, nl)
	for i := range order {
		order[i] = int32(i)
	}
	if degreeOrder {
		sort.Slice(order, func(i, j int) bool {
			di, dj := d.Degree(order[i]), d.Degree(order[j])
			if di != dj {
				return di < dj
			}
			return order[i] < order[j]
		})
	} else {
		r.Shuffle(nl, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	return order
}

// parMoveNode is the parallel counterpart of moveNode: cluster weights come
// from the locally maintained map.
//
//parhip:hotpath
func parMoveNode(d *dgraph.DGraph, v int32, labels []int64, weight *hashtab.MapI64,
	constraint []int64, u int64, conn *hashtab.AccumulatorI64, r *rng.RNG) bool {

	nbrs := d.Neighbors(v)
	if len(nbrs) == 0 {
		return false
	}
	ws := d.EdgeWeights(v)
	conn.Reset()
	for i, nb := range nbrs {
		if constraint != nil && constraint[nb] != constraint[v] {
			continue
		}
		conn.Add(labels[nb], ws[i])
	}
	cur := labels[v]
	curConn, _ := conn.Get(cur)
	best := cur
	bestConn := curConn
	ties := 1
	nw := d.NW[v]
	conn.ForEach(func(label, c int64) {
		if label == cur {
			return
		}
		lw, _ := weight.Get(label)
		if lw+nw > u {
			return
		}
		switch {
		case c > bestConn:
			best, bestConn, ties = label, c, 1
		case c == bestConn && label != cur:
			ties++
			if r.Intn(ties) == 0 {
				best = label
			}
		}
	})
	if best == cur {
		return false
	}
	cw, _ := weight.Get(cur)
	weight.Put(cur, cw-nw)
	bw, _ := weight.Get(best)
	weight.Put(best, bw+nw)
	labels[v] = best
	return true
}

// dirtySet tracks the interface nodes changed during one phase: a stack
// preserving (deterministic) insertion order for staging, and a bitset for
// O(1) dedup. Both are reused across phases without reallocation — the
// steady superstep path allocates nothing here.
type dirtySet struct {
	stack []int32
	bits  []uint64
}

func newDirtySet(n int32) *dirtySet {
	return &dirtySet{bits: make([]uint64, (int(n)+63)/64)}
}

//parhip:hotpath
func (s *dirtySet) add(v int32) {
	w, b := v>>6, uint64(1)<<(uint(v)&63)
	if s.bits[w]&b == 0 {
		s.bits[w] |= b
		s.stack = append(s.stack, v)
	}
}

func (s *dirtySet) reset() {
	for _, v := range s.stack {
		s.bits[v>>6] = 0
	}
	s.stack = s.stack[:0]
}

// exchangeLabels pushes the changed interface nodes' labels to the adjacent
// PEs holding their ghosts (plan-based sparse exchange) and applies the
// incoming updates, moving each reassigned ghost's weight between the
// locally tracked clusters when weight is non-nil. The dirty set is drained
// for the next phase. Collective.
//
//parhip:collective
func exchangeLabels(d *dgraph.DGraph, labels []int64, weight *hashtab.MapI64, changed *dirtySet) {
	var onUpdate func(ghost int32, old, new int64)
	if weight != nil {
		onUpdate = func(ghost int32, old, new int64) {
			gw := d.NW[ghost]
			ow, _ := weight.Get(old)
			weight.Put(old, ow-gw)
			nw, _ := weight.Get(new)
			weight.Put(new, nw+gw)
		}
	}
	d.PushGhostsFunc(labels, changed.stack, onUpdate)
	changed.reset()
}

// ParRefineConfig controls the parallel refinement run (§IV-B,
// uncoarsening): the number of blocks is small, the constraint is tight,
// and exact global block weights are restored by one allreduce at the end
// of every computation phase.
type ParRefineConfig struct {
	K    int32
	Lmax int64
	// Iterations is the number of refinement rounds (paper: r = 6).
	Iterations int
	// PhasesPerRound splits rounds into phases; block weights are made
	// exact after each phase.
	PhasesPerRound int
	// Seed drives traversal order and tie breaking per rank.
	Seed uint64
	// Prev, when non-nil (NTotal entries, this level's projection of the
	// previous partition), makes refinement migration-aware: a node sitting
	// on its previous block only leaves it for a strict connectivity gain,
	// and among equally connected targets the previous block always wins
	// the tie — so cut-neutral churn never migrates nodes. Nil leaves the
	// behavior (including the RNG stream) exactly as before.
	Prev []int64
}

// ParRefine improves the distributed partition part (NTotal entries, ghosts
// synced; values in [0, K)) in place and returns the global number of moves.
// To keep concurrent phases from overshooting Lmax, each rank limits the
// weight it adds to any block during one phase to a claimed share of the
// block's remaining headroom; shares are demand-proportional (see
// claimHeadroom), so with exact weights at phase starts blocks never exceed
// Lmax and positive headroom is always usable by some rank. Collective.
//
//parhip:collective
func ParRefine(d *dgraph.DGraph, part []int64, cfg ParRefineConfig) int64 {
	if cfg.PhasesPerRound < 1 {
		cfg.PhasesPerRound = 8
	}
	if cfg.Iterations <= 0 {
		return 0
	}
	k := cfg.K
	nl := d.NLocal()
	// localContrib[b] = node weight local nodes contribute to block b.
	localContrib := make([]int64, k)
	for v := int32(0); v < nl; v++ {
		localContrib[part[v]] += d.NW[v]
	}
	blockWeight := d.Comm.AllreduceSum(localContrib)
	headroom := make([]int64, k) // weight this rank may still add per block
	demand := make([]int64, k)
	// Global max node weight, for the fast headroom path below.
	maxNW := d.MaxNodeWeightGlobal()
	P := int64(d.Comm.Size())
	r := rng.New(cfg.Seed).Split(uint64(d.Comm.Rank()))
	conn := hashtab.NewAccumulatorI64(64)
	order := localOrder(d, false, r)
	changedSet := newDirtySet(nl)
	tracer := d.Comm.Tracer()
	rank := d.Comm.Rank()
	var totalMoves int64

	for iter := 0; iter < cfg.Iterations; iter++ {
		if iter > 0 {
			r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		var movedLocal int64
		// Fixed phase count on every rank (see ParCluster): phases are
		// collective synchronization points.
		for ph := 0; ph < cfg.PhasesPerRound; ph++ {
			// Superstep boundary: cancelled worlds unwind here.
			d.Comm.CheckAbort()
			sp := tracer.Begin(rank, "sclp.refine_superstep")
			movedBefore := movedLocal
			start := ph * len(order) / cfg.PhasesPerRound
			end := (ph + 1) * len(order) / cfg.PhasesPerRound
			phase := order[start:end]
			// Fast path: when every block with headroom can take a uniform
			// h/P share that still fits the heaviest node, the old local
			// split is exact and costs no communication. Only tight blocks
			// (0 < h, h/P < maxNW — the starvation regime) need the
			// demand-proportional claim. The choice is made from
			// rank-consistent data, so all ranks agree on whether the
			// claimHeadroom collective runs.
			tight := false
			for b := int32(0); b < k; b++ {
				if h := cfg.Lmax - blockWeight[b]; h > 0 && h/P < maxNW {
					tight = true
					break
				}
			}
			if tight {
				refineDemand(d, phase, part, blockWeight, cfg.Lmax, conn, demand)
				claimHeadroom(d.Comm, blockWeight, demand, cfg.Lmax,
					iter*cfg.PhasesPerRound+ph, false, headroom)
			} else {
				for b := int32(0); b < k; b++ {
					h := cfg.Lmax - blockWeight[b]
					if h < 0 {
						h = 0
					}
					headroom[b] = h / P
				}
			}
			for _, v := range phase {
				if parRefineNode(d, v, part, cfg.Prev, blockWeight, localContrib, headroom, cfg.Lmax, conn, r) {
					movedLocal++
					if d.IsInterface(v) {
						changedSet.add(v)
					}
				}
			}
			exchangeLabels(d, part, nil, changedSet)
			// Restore exact block weights (one allreduce per phase).
			blockWeight = d.Comm.AllreduceSum(localContrib)
			tracer.End2(sp, "moves", movedLocal-movedBefore, "phase", int64(iter*cfg.PhasesPerRound+ph))
		}
		moved := d.Comm.AllreduceSum1(movedLocal)
		totalMoves += moved
		if moved == 0 {
			break
		}
	}
	return totalMoves
}

// refineDemand fills demand[b] with the weight of this phase's nodes that
// could plausibly move into block b: boundary weight adjacent to b, plus —
// for nodes of overloaded blocks, whose fallback may target any block —
// their weight credited to the globally lightest block. blockWeight is the
// phase-start global vector (identical on every rank), so the lightest
// block is chosen consistently.
func refineDemand(d *dgraph.DGraph, phase []int32, part []int64,
	blockWeight []int64, lmax int64, conn *hashtab.AccumulatorI64, demand []int64) {

	for b := range demand {
		demand[b] = 0
	}
	lightest := int64(0)
	for b := 1; b < len(blockWeight); b++ {
		if blockWeight[b] < blockWeight[lightest] {
			lightest = int64(b)
		}
	}
	for _, v := range phase {
		cur := part[v]
		nw := d.NW[v]
		conn.Reset()
		for _, nb := range d.Neighbors(v) {
			if part[nb] != cur {
				conn.Add(part[nb], 1)
			}
		}
		conn.ForEach(func(b, _ int64) { demand[b] += nw })
		if blockWeight[cur] > lmax && lightest != cur {
			if _, adjacent := conn.Get(lightest); !adjacent {
				demand[lightest] += nw
			}
		}
	}
}

// claimHeadroom splits every block's remaining headroom h = Lmax -
// blockWeight[b] across the ranks and writes this rank's share into out.
// Shares are proportional to the ranks' demands (largest-remainder style:
// integer floors first, then the residual is handed out unit-wise across
// the demanding ranks starting at a rotating offset), so h > 0 with any
// demand is always usable by someone — unlike the old uniform h/P split,
// which floored to zero for every rank whenever h < P and let nearly-full
// blocks starve. When no rank demands a block, its whole headroom rotates
// to one rank per phase so fallback moves remain possible. With
// concentrate set, proportional splitting is skipped and each block's
// whole headroom goes to one demanding rank (rotating per round) — the
// rebalancer's escape hatch when proportional shares all land below a
// heavy node's weight. All inputs are rank-consistent, so every rank
// computes the identical allocation. Collective.
//
//parhip:collective
func claimHeadroom(c *mpi.Comm, blockWeight, demand []int64, lmax int64, round int,
	concentrate bool, out []int64) {

	all := c.Allgatherv(demand)
	P := c.Size()
	rank := c.Rank()
	var dem []int
	for b := range blockWeight {
		out[b] = 0
		h := lmax - blockWeight[b]
		if h <= 0 {
			continue
		}
		var total int64
		dem = dem[:0]
		for r := 0; r < P; r++ {
			if all[r][b] > 0 {
				total += all[r][b]
				dem = append(dem, r)
			}
		}
		if total == 0 {
			// No demand recorded: rotate the whole headroom to one rank so
			// positive headroom can still absorb fallback moves.
			if (round+b)%P == rank {
				out[b] = h
			}
			continue
		}
		if concentrate {
			if dem[(round+b)%len(dem)] == rank {
				out[b] = h
			}
			continue
		}
		var assigned int64
		for _, r := range dem {
			s := intmath.MulDivFloor(h, all[r][b], total)
			assigned += s
			if r == rank {
				out[b] = s
			}
		}
		// Residual round: the few units lost to flooring go to the
		// demanding ranks, one slot rotating per phase.
		residual := h - assigned
		if residual > 0 {
			q := residual / int64(len(dem))
			rem := residual % int64(len(dem))
			for j, r := range dem {
				extra := q
				if int64((j+round)%len(dem)) < rem {
					extra++
				}
				if r == rank {
					out[b] += extra
				}
			}
		}
	}
}

//parhip:hotpath
func parRefineNode(d *dgraph.DGraph, v int32, part, prev []int64,
	blockWeight, localContrib, headroom []int64, lmax int64,
	conn *hashtab.AccumulatorI64, r *rng.RNG) bool {

	nbrs := d.Neighbors(v)
	if len(nbrs) == 0 {
		return false
	}
	ws := d.EdgeWeights(v)
	conn.Reset()
	for i, nb := range nbrs {
		conn.Add(part[nb], ws[i])
	}
	cur := part[v]
	nw := d.NW[v]
	overloaded := blockWeight[cur] > lmax
	curConn, _ := conn.Get(cur)

	// prevB is the node's block in the previous partition (-1 when the run
	// is not migration-aware). It wins connectivity ties and pins the node
	// against cut-neutral moves; with prevB == -1 every branch below
	// reduces to the original logic, including the RNG call sequence.
	prevB := int64(-1)
	if prev != nil {
		prevB = prev[v]
	}

	//lint:hotpath-ok never escapes the frame: only called here and captured by ForEach, which does not retain its callback
	eligible := func(b int64) bool {
		return blockWeight[b]+nw <= lmax && headroom[b] >= nw
	}
	best := int64(-1)
	var bestConn int64 = -1
	ties := 0
	conn.ForEach(func(label, c int64) {
		if label == cur || !eligible(label) {
			return
		}
		switch {
		case c > bestConn:
			best, bestConn, ties = label, c, 1
		case c == bestConn:
			if label == prevB {
				best = label // the previous block wins every tie
				return
			}
			if best == prevB {
				return // ...and never loses one it already won
			}
			ties++
			if r.Intn(ties) == 0 {
				best = label
			}
		}
	})
	if best < 0 {
		if !overloaded {
			return false
		}
		// Overloaded node with no eligible neighbouring block: lightest
		// eligible block overall (see the sequential variant).
		for b := int64(0); b < int64(len(blockWeight)); b++ {
			if b == cur || !eligible(b) {
				continue
			}
			if best < 0 || blockWeight[b] < blockWeight[best] {
				best = b
			}
		}
		if best < 0 {
			return false
		}
	}
	if !overloaded {
		if bestConn < curConn {
			return false
		}
		if bestConn == curConn {
			if cur == prevB {
				return false // cut-neutral move off the previous block: never
			}
			if best != prevB && blockWeight[best]+nw >= blockWeight[cur] {
				return false
			}
		}
	}
	blockWeight[cur] -= nw
	blockWeight[best] += nw
	localContrib[cur] -= nw
	localContrib[best] += nw
	headroom[best] -= nw
	part[v] = best
	return true
}
