package sclp

import (
	"time"

	"repro/internal/arena"
	"repro/internal/dgraph"
	"repro/internal/hashtab"
	"repro/internal/intmath"
	"repro/internal/mpi"
	"repro/internal/rng"
	"repro/internal/workpool"
)

// ParClusterConfig controls the parallel clustering run (§IV-A/B).
type ParClusterConfig struct {
	// U is the cluster weight bound; during coarsening the constraint is
	// soft and enforced against locally maintained block weights only.
	U int64
	// Iterations is the number of label propagation rounds.
	Iterations int
	// DegreeOrder traverses local nodes by ascending local degree in the
	// first round (the paper parallelizes the degree ordering "by
	// considering only the local nodes").
	DegreeOrder bool
	// PhasesPerRound splits each round into communication phases: after
	// each phase the labels of changed interface nodes are exchanged with
	// adjacent PEs. This realizes the paper's overlapped phase scheme
	// (updates from phase kappa arrive before phase kappa+1) in BSP form.
	PhasesPerRound int
	// Constraint, when non-nil, has NTotal entries (ghosts in sync) and
	// restricts moves to clusters with the same constraint label (V-cycle
	// rule, §IV-D).
	Constraint []int64
	// Seed drives traversal order and tie breaking; each rank derives its
	// own stream.
	Seed uint64
	// Pool, when non-nil, runs the propose half of every superstep on its
	// workers. Results are bit-identical for any pool size (nil included):
	// chunk grids and per-chunk RNG streams depend only on the phase, and
	// moves are decided by a sequential commit pass that re-selects in
	// traversal order.
	Pool *workpool.Pool
	// Arena, when non-nil, supplies the per-call scratch (traversal order,
	// proposal buffer, dirty-set bits, accumulator backing arrays). The
	// caller resets it after the call returns; nil falls back to the heap.
	Arena *arena.Arena
	// Stats, when non-nil, accumulates the propose/commit split timings and
	// worker busy time of every superstep.
	Stats *ParStats
}

// ParCluster runs parallel size-constrained label propagation on the
// distributed graph and returns a label per local+ghost node (ghost entries
// synchronized). Labels are global node IDs of cluster representatives.
// Collective.
//
//parhip:collective
func ParCluster(d *dgraph.DGraph, cfg ParClusterConfig) []int64 {
	if cfg.PhasesPerRound < 1 {
		cfg.PhasesPerRound = 8
	}
	nt := d.NTotal()
	labels := make([]int64, nt)
	for v := int32(0); v < nt; v++ {
		labels[v] = d.ToGlobal(v)
	}
	// Locally maintained cluster weights (paper §IV-B, coarsening): each PE
	// tracks the weights of clusters containing its local and ghost nodes.
	weight := hashtab.NewMapI64(int(nt) + 16)
	for v := int32(0); v < nt; v++ {
		weight.Put(labels[v], d.NW[v])
	}
	r := rng.New(cfg.Seed).Split(uint64(d.Comm.Rank()))
	conn := hashtab.NewAccumulatorI64In(cfg.Arena, 64)

	nl := d.NLocal()
	order := localOrder(d, cfg.DegreeOrder, r, cfg.Arena)
	props := cfg.Arena.Int64s(len(order))
	lanes := newLanes(cfg.Pool, cfg.Arena)
	var crng rng.RNG
	changedSet := newDirtySetIn(nl, cfg.Arena)
	casc := newDirtySetIn(nl, cfg.Arena)
	tracer := d.Comm.Tracer()
	rank := d.Comm.Rank()

	for iter := 0; iter < cfg.Iterations; iter++ {
		if iter > 0 {
			r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		var movedLocal int64
		// Every rank executes exactly PhasesPerRound phases regardless of
		// its local node count (phases are collective synchronization
		// points; ranks with few or no local nodes still participate).
		for ph := 0; ph < cfg.PhasesPerRound; ph++ {
			// Superstep boundary: a cancelled world unwinds here instead of
			// computing another phase (see mpi.Comm.CheckAbort).
			d.Comm.CheckAbort()
			sp := tracer.Begin(rank, "sclp.cluster_superstep")
			movedBefore := movedLocal
			start := ph * len(order) / cfg.PhasesPerRound
			end := (ph + 1) * len(order) / cfg.PhasesPerRound
			phase := order[start:end]
			phaseProps := props[start:end]
			// The phase seed is drawn from the rank stream whether or not the
			// phase has nodes, keeping the stream aligned across ranks with
			// different local counts.
			phaseSeed := r.Uint64()

			// Parallel propose: workers evaluate disjoint chunks of the
			// traversal order against the frozen phase-start state.
			psp := tracer.Begin(rank, "sclp.propose")
			pt0 := time.Now() //lint:determinism-ok stats timing only, never feeds partition state
			busy := proposeCluster(d, cfg.Pool, lanes, phaseSeed, phase, phaseProps,
				labels, weight, cfg.Constraint, cfg.U)
			proposeDur := time.Since(pt0) //lint:determinism-ok stats timing only, never feeds partition state
			tracer.End2(psp, "busy_ns", int64(busy), "nodes", int64(len(phase)))

			// Sequential commit: re-run the selection in traversal order
			// against current labels and weights for every node the stale
			// propose flagged, plus every node a committed move dirtied —
			// marking the moved node's local neighbors keeps the
			// Gauss-Seidel cascades (move one node, its neighbor becomes
			// attractive, ...) that a pure propose filter would cut off.
			csp := tracer.Begin(rank, "sclp.commit")
			ct0 := time.Now() //lint:determinism-ok stats timing only, never feeds partition state
			crng.Reseed(commitSeed(phaseSeed))
			for i, v := range phase {
				if (phaseProps[i] >= 0 || casc.has(v)) &&
					commitClusterMove(d, v, labels, weight, cfg.Constraint, cfg.U, conn, &crng) {
					movedLocal++
					for _, nb := range d.Neighbors(v) {
						if nb < nl {
							casc.add(nb)
						}
					}
					if d.IsInterface(v) {
						changedSet.add(v)
					}
				}
			}
			casc.reset()
			commitDur := time.Since(ct0) //lint:determinism-ok stats timing only, never feeds partition state
			tracer.End1(csp, "moves", movedLocal-movedBefore)
			cfg.Stats.observe(cfg.Pool.Size(), proposeDur, commitDur, busy)

			exchangeLabels(d, labels, weight, changedSet)
			tracer.End2(sp, "moves", movedLocal-movedBefore, "phase", int64(iter*cfg.PhasesPerRound+ph))
		}
		if d.Comm.AllreduceSum1(movedLocal) == 0 {
			break
		}
	}
	return labels
}

// localOrder computes the traversal order of local nodes, with the order
// slice (and the degree sort's scratch) carved from ar when non-nil.
func localOrder(d *dgraph.DGraph, degreeOrder bool, r *rng.RNG, ar *arena.Arena) []int32 {
	nl := int(d.NLocal())
	order := ar.Int32s(nl)
	for i := range order {
		order[i] = int32(i)
	}
	if degreeOrder {
		countingSortByDegree(d, order, ar)
	} else {
		r.Shuffle(nl, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	return order
}

// dirtySet tracks the interface nodes changed during one phase: a stack
// preserving (deterministic) insertion order for staging, and a bitset for
// O(1) dedup. Both are reused across phases without reallocation — the
// steady superstep path allocates nothing here.
type dirtySet struct {
	stack []int32
	bits  []uint64
}

func newDirtySet(n int32) *dirtySet {
	return newDirtySetIn(n, nil)
}

// newDirtySetIn carves the bitset from ar when non-nil; the stack still
// grows on the heap (its size is data-dependent).
func newDirtySetIn(n int32, ar *arena.Arena) *dirtySet {
	return &dirtySet{bits: ar.Uint64s((int(n) + 63) / 64)}
}

//parhip:hotpath
func (s *dirtySet) add(v int32) {
	w, b := v>>6, uint64(1)<<(uint(v)&63)
	if s.bits[w]&b == 0 {
		s.bits[w] |= b
		s.stack = append(s.stack, v)
	}
}

//parhip:hotpath
func (s *dirtySet) has(v int32) bool {
	return s.bits[v>>6]&(uint64(1)<<(uint(v)&63)) != 0
}

func (s *dirtySet) reset() {
	for _, v := range s.stack {
		s.bits[v>>6] = 0
	}
	s.stack = s.stack[:0]
}

// exchangeLabels pushes the changed interface nodes' labels to the adjacent
// PEs holding their ghosts (plan-based sparse exchange) and applies the
// incoming updates, moving each reassigned ghost's weight between the
// locally tracked clusters when weight is non-nil. The dirty set is drained
// for the next phase. Collective.
//
//parhip:collective
func exchangeLabels(d *dgraph.DGraph, labels []int64, weight *hashtab.MapI64, changed *dirtySet) {
	var onUpdate func(ghost int32, old, new int64)
	if weight != nil {
		onUpdate = func(ghost int32, old, new int64) {
			gw := d.NW[ghost]
			ow, _ := weight.Get(old)
			weight.Put(old, ow-gw)
			nw, _ := weight.Get(new)
			weight.Put(new, nw+gw)
		}
	}
	d.PushGhostsFunc(labels, changed.stack, onUpdate)
	changed.reset()
}

// ParRefineConfig controls the parallel refinement run (§IV-B,
// uncoarsening): the number of blocks is small, the constraint is tight,
// and exact global block weights are restored by one allreduce at the end
// of every computation phase.
type ParRefineConfig struct {
	K    int32
	Lmax int64
	// Iterations is the number of refinement rounds (paper: r = 6).
	Iterations int
	// PhasesPerRound splits rounds into phases; block weights are made
	// exact after each phase.
	PhasesPerRound int
	// Seed drives traversal order and tie breaking per rank.
	Seed uint64
	// Prev, when non-nil (NTotal entries, this level's projection of the
	// previous partition), makes refinement migration-aware: a node sitting
	// on its previous block only leaves it for a strict connectivity gain,
	// and among equally connected targets the previous block always wins
	// the tie — so cut-neutral churn never migrates nodes. Nil leaves the
	// behavior (including the RNG stream) exactly as before.
	Prev []int64
	// Pool, Arena, Stats: see ParClusterConfig.
	Pool  *workpool.Pool
	Arena *arena.Arena
	Stats *ParStats
}

// ParRefine improves the distributed partition part (NTotal entries, ghosts
// synced; values in [0, K)) in place and returns the global number of moves.
// To keep concurrent phases from overshooting Lmax, each rank limits the
// weight it adds to any block during one phase to a claimed share of the
// block's remaining headroom; shares are demand-proportional (see
// claimHeadroom), so with exact weights at phase starts blocks never exceed
// Lmax and positive headroom is always usable by some rank. Collective.
//
//parhip:collective
func ParRefine(d *dgraph.DGraph, part []int64, cfg ParRefineConfig) int64 {
	if cfg.PhasesPerRound < 1 {
		cfg.PhasesPerRound = 8
	}
	if cfg.Iterations <= 0 {
		return 0
	}
	k := cfg.K
	nl := d.NLocal()
	// localContrib[b] = node weight local nodes contribute to block b.
	localContrib := cfg.Arena.Int64s(int(k))
	for v := int32(0); v < nl; v++ {
		localContrib[part[v]] += d.NW[v]
	}
	blockWeight := d.Comm.AllreduceSum(localContrib)
	headroom := cfg.Arena.Int64s(int(k)) // weight this rank may still add per block
	demand := cfg.Arena.Int64s(int(k))
	// Global max node weight, for the fast headroom path below.
	maxNW := d.MaxNodeWeightGlobal()
	P := int64(d.Comm.Size())
	r := rng.New(cfg.Seed).Split(uint64(d.Comm.Rank()))
	conn := hashtab.NewAccumulatorI64In(cfg.Arena, 64)
	order := localOrder(d, false, r, cfg.Arena)
	props := cfg.Arena.Int64s(len(order))
	lanes := newLanes(cfg.Pool, cfg.Arena)
	var crng rng.RNG
	changedSet := newDirtySetIn(nl, cfg.Arena)
	casc := newDirtySetIn(nl, cfg.Arena)
	tracer := d.Comm.Tracer()
	rank := d.Comm.Rank()
	var totalMoves int64

	for iter := 0; iter < cfg.Iterations; iter++ {
		if iter > 0 {
			r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		var movedLocal int64
		// Fixed phase count on every rank (see ParCluster): phases are
		// collective synchronization points.
		for ph := 0; ph < cfg.PhasesPerRound; ph++ {
			// Superstep boundary: cancelled worlds unwind here.
			d.Comm.CheckAbort()
			sp := tracer.Begin(rank, "sclp.refine_superstep")
			movedBefore := movedLocal
			start := ph * len(order) / cfg.PhasesPerRound
			end := (ph + 1) * len(order) / cfg.PhasesPerRound
			phase := order[start:end]
			phaseProps := props[start:end]
			// Fast path: when every block with headroom can take a uniform
			// h/P share that still fits the heaviest node, the old local
			// split is exact and costs no communication. Only tight blocks
			// (0 < h, h/P < maxNW — the starvation regime) need the
			// demand-proportional claim. The choice is made from
			// rank-consistent data, so all ranks agree on whether the
			// claimHeadroom collective runs.
			tight := false
			for b := int32(0); b < k; b++ {
				if h := cfg.Lmax - blockWeight[b]; h > 0 && h/P < maxNW {
					tight = true
					break
				}
			}
			if tight {
				refineDemand(d, phase, part, blockWeight, cfg.Lmax, conn, demand)
				claimHeadroom(d.Comm, blockWeight, demand, cfg.Lmax,
					iter*cfg.PhasesPerRound+ph, false, headroom)
			} else {
				for b := int32(0); b < k; b++ {
					h := cfg.Lmax - blockWeight[b]
					if h < 0 {
						h = 0
					}
					headroom[b] = h / P
				}
			}
			// Phase seed: drawn on every rank regardless of local node count
			// (see ParCluster).
			phaseSeed := r.Uint64()

			// Parallel propose against the frozen phase-start part, block
			// weights and headroom shares.
			psp := tracer.Begin(rank, "sclp.propose")
			pt0 := time.Now() //lint:determinism-ok stats timing only, never feeds partition state
			busy := proposeRefine(d, cfg.Pool, lanes, phaseSeed, phase, phaseProps,
				part, cfg.Prev, blockWeight, headroom, cfg.Lmax)
			proposeDur := time.Since(pt0) //lint:determinism-ok stats timing only, never feeds partition state
			tracer.End2(psp, "busy_ns", int64(busy), "nodes", int64(len(phase)))

			// Sequential commit in traversal order; headroom is consumed
			// here, so the claimed shares still bound what this rank adds.
			// Like the clustering commit, a committed move dirties the moved
			// node's local neighbors so same-phase cascades survive the
			// propose filter.
			csp := tracer.Begin(rank, "sclp.commit")
			ct0 := time.Now() //lint:determinism-ok stats timing only, never feeds partition state
			crng.Reseed(commitSeed(phaseSeed))
			for i, v := range phase {
				if (phaseProps[i] >= 0 || casc.has(v)) &&
					commitRefineMove(d, v, part, cfg.Prev, blockWeight, localContrib, headroom, cfg.Lmax, conn, &crng) {
					movedLocal++
					for _, nb := range d.Neighbors(v) {
						if nb < nl {
							casc.add(nb)
						}
					}
					if d.IsInterface(v) {
						changedSet.add(v)
					}
				}
			}
			casc.reset()
			commitDur := time.Since(ct0) //lint:determinism-ok stats timing only, never feeds partition state
			tracer.End1(csp, "moves", movedLocal-movedBefore)
			cfg.Stats.observe(cfg.Pool.Size(), proposeDur, commitDur, busy)

			exchangeLabels(d, part, nil, changedSet)
			// Restore exact block weights (one allreduce per phase).
			blockWeight = d.Comm.AllreduceSum(localContrib)
			tracer.End2(sp, "moves", movedLocal-movedBefore, "phase", int64(iter*cfg.PhasesPerRound+ph))
		}
		moved := d.Comm.AllreduceSum1(movedLocal)
		totalMoves += moved
		if moved == 0 {
			break
		}
	}
	return totalMoves
}

// refineDemand fills demand[b] with the weight of this phase's nodes that
// could plausibly move into block b: boundary weight adjacent to b, plus —
// for nodes of overloaded blocks, whose fallback may target any block —
// their weight credited to the globally lightest block. blockWeight is the
// phase-start global vector (identical on every rank), so the lightest
// block is chosen consistently.
func refineDemand(d *dgraph.DGraph, phase []int32, part []int64,
	blockWeight []int64, lmax int64, conn *hashtab.AccumulatorI64, demand []int64) {

	for b := range demand {
		demand[b] = 0
	}
	lightest := int64(0)
	for b := 1; b < len(blockWeight); b++ {
		if blockWeight[b] < blockWeight[lightest] {
			lightest = int64(b)
		}
	}
	for _, v := range phase {
		cur := part[v]
		nw := d.NW[v]
		conn.Reset()
		for _, nb := range d.Neighbors(v) {
			if part[nb] != cur {
				conn.Add(part[nb], 1)
			}
		}
		conn.ForEach(func(b, _ int64) { demand[b] += nw })
		if blockWeight[cur] > lmax && lightest != cur {
			if _, adjacent := conn.Get(lightest); !adjacent {
				demand[lightest] += nw
			}
		}
	}
}

// claimHeadroom splits every block's remaining headroom h = Lmax -
// blockWeight[b] across the ranks and writes this rank's share into out.
// Shares are proportional to the ranks' demands (largest-remainder style:
// integer floors first, then the residual is handed out unit-wise across
// the demanding ranks starting at a rotating offset), so h > 0 with any
// demand is always usable by someone — unlike the old uniform h/P split,
// which floored to zero for every rank whenever h < P and let nearly-full
// blocks starve. When no rank demands a block, its whole headroom rotates
// to one rank per phase so fallback moves remain possible. With
// concentrate set, proportional splitting is skipped and each block's
// whole headroom goes to one demanding rank (rotating per round) — the
// rebalancer's escape hatch when proportional shares all land below a
// heavy node's weight. All inputs are rank-consistent, so every rank
// computes the identical allocation. Collective.
//
//parhip:collective
func claimHeadroom(c *mpi.Comm, blockWeight, demand []int64, lmax int64, round int,
	concentrate bool, out []int64) {

	all := c.Allgatherv(demand)
	P := c.Size()
	rank := c.Rank()
	var dem []int
	for b := range blockWeight {
		out[b] = 0
		h := lmax - blockWeight[b]
		if h <= 0 {
			continue
		}
		var total int64
		dem = dem[:0]
		for r := 0; r < P; r++ {
			if all[r][b] > 0 {
				total += all[r][b]
				dem = append(dem, r)
			}
		}
		if total == 0 {
			// No demand recorded: rotate the whole headroom to one rank so
			// positive headroom can still absorb fallback moves.
			if (round+b)%P == rank {
				out[b] = h
			}
			continue
		}
		if concentrate {
			if dem[(round+b)%len(dem)] == rank {
				out[b] = h
			}
			continue
		}
		var assigned int64
		for _, r := range dem {
			s := intmath.MulDivFloor(h, all[r][b], total)
			assigned += s
			if r == rank {
				out[b] = s
			}
		}
		// Residual round: the few units lost to flooring go to the
		// demanding ranks, one slot rotating per phase.
		residual := h - assigned
		if residual > 0 {
			q := residual / int64(len(dem))
			rem := residual % int64(len(dem))
			for j, r := range dem {
				extra := q
				if int64((j+round)%len(dem)) < rem {
					extra++
				}
				if r == rank {
					out[b] += extra
				}
			}
		}
	}
}
