package sclp

import (
	"testing"

	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/partition"
)

// TestParRefineNeverOvershootsProperty: over random graphs, skewed starts
// and rank counts, ParRefine must never push a block past Lmax that was not
// already past it, and must never worsen an existing overload.
func TestParRefineNeverOvershootsProperty(t *testing.T) {
	type gcase struct {
		name string
		g    *graph.Graph
	}
	cases := []gcase{
		{"rgg", gen.RGG(500, 21)},
		{"ba", gen.BarabasiAlbert(400, 4, 22)},
		{"del", gen.DelaunayLike(450, 23)},
	}
	for _, gc := range cases {
		for _, P := range []int{1, 2, 4} {
			for _, k := range []int32{2, 3, 5} {
				lmax := partition.Lmax(gc.g.TotalNodeWeight(), k, 0.03)
				mpi.NewWorld(P).Run(func(c *mpi.Comm) {
					d := dgraph.FromGraph(c, gc.g)
					part := make([]int64, d.NTotal())
					for v := int32(0); v < d.NTotal(); v++ {
						gv := d.ToGlobal(v)
						if gv < int64(gc.g.NumNodes())/3 {
							part[v] = 0 // skew: the first third piles onto block 0
						} else {
							part[v] = gv % int64(k)
						}
					}
					before := d.BlockWeights(part, k)
					ParRefine(d, part, ParRefineConfig{K: k, Lmax: lmax, Iterations: 4, Seed: 5})
					after := d.BlockWeights(part, k)
					if c.Rank() != 0 {
						return
					}
					for b := int32(0); b < k; b++ {
						limit := lmax
						if before[b] > limit {
							limit = before[b]
						}
						if after[b] > limit {
							t.Errorf("%s P=%d k=%d: block %d grew to %d (start %d, lmax %d)",
								gc.name, P, k, b, after[b], before[b], lmax)
						}
					}
				})
			}
		}
	}
}

// TestParRefineDrainsStarvedHeadroom reproduces the h/P starvation case:
// every underloaded block's headroom is below the rank count, so the old
// uniform split floored every rank's share to zero and the overloaded
// block could never drain. The demand-proportional claim must still move
// the excess out.
func TestParRefineDrainsStarvedHeadroom(t *testing.T) {
	const (
		n = 160
		k = 8
		P = 4
	)
	g := graph.Path(n)
	lmax := partition.Lmax(g.TotalNodeWeight(), k, 0.05) // ceil=20 -> 21
	if lmax != 21 {
		t.Fatalf("test setup: lmax = %d, want 21", lmax)
	}
	// Block sizes 24,20,20,20,19,19,19,19: block 0 is 3 over Lmax and every
	// target's headroom (1 or 2) is below P=4.
	sizes := []int64{24, 20, 20, 20, 19, 19, 19, 19}
	blockOf := make([]int64, n)
	v := 0
	for b, s := range sizes {
		for i := int64(0); i < s; i++ {
			blockOf[v] = int64(b)
			v++
		}
	}
	mpi.NewWorld(P).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		part := make([]int64, d.NTotal())
		for v := int32(0); v < d.NTotal(); v++ {
			part[v] = blockOf[d.ToGlobal(v)]
		}
		ParRefine(d, part, ParRefineConfig{K: k, Lmax: lmax, Iterations: 6, Seed: 9})
		bw := d.BlockWeights(part, k)
		if c.Rank() != 0 {
			return
		}
		for b, w := range bw {
			if w > lmax {
				t.Errorf("block %d still at %d > lmax %d after refine (starved headroom)",
					b, w, lmax)
			}
		}
	})
}

// TestParRebalanceRestoresFeasibility: heavily skewed partitions across
// several graph families and rank counts must come out feasible, with
// ghosts in sync and the partition still valid.
func TestParRebalanceRestoresFeasibility(t *testing.T) {
	graphs := []*graph.Graph{
		gen.RGG(600, 31),
		gen.BarabasiAlbert(500, 4, 32),
		graph.Path(257),
	}
	for _, g := range graphs {
		for _, P := range []int{1, 3, 4} {
			for _, k := range []int32{2, 4, 8} {
				lmax := partition.Lmax(g.TotalNodeWeight(), k, 0.03)
				mpi.NewWorld(P).Run(func(c *mpi.Comm) {
					d := dgraph.FromGraph(c, g)
					part := make([]int64, d.NTotal()) // everything in block 0
					moves, feasible := ParRebalance(d, part, ParRebalanceConfig{K: k, Lmax: lmax})
					bw := d.BlockWeights(part, k)
					check := append([]int64(nil), part...)
					d.SyncGhosts(check)
					for v := d.NLocal(); v < d.NTotal(); v++ {
						if check[v] != part[v] {
							t.Errorf("P=%d k=%d rank %d: ghost %d stale after rebalance", P, k, c.Rank(), v)
							return
						}
					}
					for v := int32(0); v < d.NLocal(); v++ {
						if part[v] < 0 || part[v] >= int64(k) {
							t.Errorf("P=%d k=%d: node %d has block %d", P, k, v, part[v])
							return
						}
					}
					if c.Rank() != 0 {
						return
					}
					if !feasible {
						t.Errorf("P=%d k=%d: rebalance reported infeasible (moves=%d, bw=%v, lmax=%d)",
							P, k, moves, bw, lmax)
					}
					for b, w := range bw {
						if w > lmax {
							t.Errorf("P=%d k=%d: block %d weight %d > lmax %d", P, k, b, w, lmax)
						}
					}
				})
			}
		}
	}
}

// TestParRebalanceNoOpWhenFeasible: a feasible partition is left untouched.
func TestParRebalanceNoOpWhenFeasible(t *testing.T) {
	g := gen.DelaunayLike(300, 41)
	const k = 3
	lmax := partition.Lmax(g.TotalNodeWeight(), k, 0.1)
	mpi.NewWorld(2).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		part := make([]int64, d.NTotal())
		for v := int32(0); v < d.NTotal(); v++ {
			part[v] = d.ToGlobal(v) % k
		}
		before := append([]int64(nil), part...)
		moves, feasible := ParRebalance(d, part, ParRebalanceConfig{K: k, Lmax: lmax})
		if moves != 0 || !feasible {
			t.Errorf("rank %d: moves=%d feasible=%v on a feasible input", c.Rank(), moves, feasible)
		}
		for v := range part {
			if part[v] != before[v] {
				t.Errorf("rank %d: node %d moved on a feasible input", c.Rank(), v)
				return
			}
		}
	})
}

// TestParRebalanceHeavyNodesAcrossRanks: when every rank's proportional
// headroom share lands below the weight of the nodes that must move, the
// proportional round stalls; the concentrated retry (whole headroom to one
// demanding rank) must still restore feasibility. Construction: block 0
// holds four weight-6 nodes (24 > Lmax 20), two per rank; block 1 holds
// weight 10, so each rank's proportional share of the headroom (10/2 = 5)
// is below the node weight 6, but the full headroom fits one node.
func TestParRebalanceHeavyNodesAcrossRanks(t *testing.T) {
	b := graph.NewBuilder(8)
	weights := []int64{6, 6, 3, 3, 6, 6, 2, 2}
	blocks := []int64{0, 0, 1, 1, 0, 0, 1, 1}
	for v, w := range weights {
		b.SetNodeWeight(int32(v), w)
	}
	for v := int32(0); v < 7; v++ {
		b.AddEdge(v, v+1)
	}
	g := b.Build()
	const lmax = 20
	mpi.NewWorld(2).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g) // rank 0 owns nodes 0-3, rank 1 owns 4-7
		part := make([]int64, d.NTotal())
		for v := int32(0); v < d.NTotal(); v++ {
			part[v] = blocks[d.ToGlobal(v)]
		}
		moves, feasible := ParRebalance(d, part, ParRebalanceConfig{K: 2, Lmax: lmax})
		bw := d.BlockWeights(part, 2)
		if c.Rank() != 0 {
			return
		}
		if !feasible {
			t.Fatalf("stalled on heavy nodes: moves=%d bw=%v lmax=%d", moves, bw, lmax)
		}
		for b, w := range bw {
			if w > lmax {
				t.Errorf("block %d weight %d > lmax %d", b, w, lmax)
			}
		}
		if moves == 0 {
			t.Error("feasible without moves on an infeasible input")
		}
	})
}

// TestParRebalanceImpossible: a node heavier than Lmax cannot be placed;
// the pass must terminate and report infeasible rather than loop.
func TestParRebalanceImpossible(t *testing.T) {
	b := graph.NewBuilder(4)
	b.SetNodeWeight(0, 100)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	const k = 2
	lmax := partition.Lmax(g.TotalNodeWeight(), k, 0.03) // ceil(103/2)=52 -> 53
	mpi.NewWorld(2).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		part := make([]int64, d.NTotal()) // all in block 0: weight 103 > 53
		_, feasible := ParRebalance(d, part, ParRebalanceConfig{K: k, Lmax: lmax})
		if feasible {
			t.Errorf("rank %d: reported feasible with an unplaceable node", c.Rank())
		}
	})
}
