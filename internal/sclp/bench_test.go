package sclp

import (
	"fmt"
	"testing"

	"repro/internal/arena"
	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/partition"
	"repro/internal/workpool"
)

func BenchmarkClusterCommunity(b *testing.B) {
	g, _ := gen.PlantedPartition(20000, 100, 10, 0.5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cluster(g, ClusterConfig{U: 600, Iterations: 3, DegreeOrder: true, Seed: uint64(i + 1)})
	}
}

func BenchmarkClusterMesh(b *testing.B) {
	g := gen.DelaunayLike(20000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cluster(g, ClusterConfig{U: 600, Iterations: 3, DegreeOrder: true, Seed: uint64(i + 1)})
	}
}

func BenchmarkRefineSeq(b *testing.B) {
	g := gen.DelaunayLike(20000, 2)
	lmax := partition.Lmax(g.TotalNodeWeight(), 4, 0.03)
	base := make([]int32, g.NumNodes())
	for v := int32(0); v < g.NumNodes(); v++ {
		base[v] = v % 4
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := append([]int32(nil), base...)
		Refine(g, p, RefineConfig{K: 4, Lmax: lmax, Iterations: 6, Seed: uint64(i + 1)})
	}
}

func BenchmarkParClusterP4(b *testing.B) {
	g, _ := gen.PlantedPartition(20000, 100, 10, 0.5, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mpi.NewWorld(4).Run(func(c *mpi.Comm) {
			d := dgraph.FromGraph(c, g)
			ParCluster(d, ParClusterConfig{U: 600, Iterations: 3, DegreeOrder: true, Seed: uint64(i + 1)})
		})
	}
}

// BenchmarkParClusterWorkers measures the intra-rank worksharing speedup
// of the propose/commit superstep split on a large mesh hosted by a single
// rank (P=1 isolates the worker pool from rank-level parallelism). The
// partition is bit-identical across the sub-benchmarks by construction
// (TestWorkerBitIdentity); only the wall clock may differ.
func BenchmarkParClusterWorkers(b *testing.B) {
	g := gen.DelaunayLike(200000, 5)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			pool := workpool.New(w)
			defer pool.Close()
			ar := arena.New()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ar.Reset()
				mpi.NewWorld(1).Run(func(c *mpi.Comm) {
					d := dgraph.FromGraph(c, g)
					ParCluster(d, ParClusterConfig{U: 6000, Iterations: 3, DegreeOrder: true,
						Seed: uint64(i + 1), Pool: pool, Arena: ar})
				})
			}
		})
	}
}

// benchGraph is the shared instance for the label-exchange benchmarks: a
// community graph whose random cross edges give every rank interface nodes
// towards every other rank.
func benchExchangeGraph() *graph.Graph {
	g, _ := gen.PlantedPartition(8000, 50, 8, 0.5, 7)
	return g
}

// BenchmarkExchangeLabels measures one plan-based label-exchange superstep
// (every interface node dirty — the worst case). Compare allocs/op against
// BenchmarkExchangeLabelsDense: the steady path stages into reusable
// buffers and recycles message payloads through the world's pool, so it
// must report a small fraction of the dense baseline's allocations
// (TestExchangeLabelsAllocRatio enforces >= 5x).
func BenchmarkExchangeLabels(b *testing.B) {
	g := benchExchangeGraph()
	b.ReportAllocs()
	b.ResetTimer()
	mpi.NewWorld(4).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		labels := make([]int64, d.NTotal())
		for v := int32(0); v < d.NTotal(); v++ {
			labels[v] = d.ToGlobal(v)
		}
		iface := interfaceNodes(d)
		ds := newDirtySet(d.NLocal())
		for i := 0; i < b.N; i++ {
			for _, v := range iface {
				ds.add(v)
			}
			exchangeLabels(d, labels, nil, ds)
		}
	})
}

// BenchmarkExchangeLabelsDense is the pre-plan baseline: freshly allocated
// [][]int64 buffers, (globalID, label) pairs over the dense Alltoallv, and
// hash-lookup decoding. Kept as the allocation yardstick the plan-based
// path is measured against.
func BenchmarkExchangeLabelsDense(b *testing.B) {
	g := benchExchangeGraph()
	b.ReportAllocs()
	b.ResetTimer()
	mpi.NewWorld(4).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		labels := make([]int64, d.NTotal())
		for v := int32(0); v < d.NTotal(); v++ {
			labels[v] = d.ToGlobal(v)
		}
		iface := interfaceNodes(d)
		for i := 0; i < b.N; i++ {
			out := make([][]int64, c.Size())
			for _, v := range iface {
				for _, rk := range d.AdjacentRanks(v) {
					out[rk] = append(out[rk], d.ToGlobal(v), labels[v])
				}
			}
			in := c.Alltoallv(out)
			for _, buf := range in {
				for j := 0; j+1 < len(buf); j += 2 {
					lu, ok := d.ToLocal(buf[j])
					if !ok || !d.IsGhost(lu) {
						continue
					}
					labels[lu] = buf[j+1]
				}
			}
		}
	})
}

func interfaceNodes(d *dgraph.DGraph) []int32 {
	var iface []int32
	for v := int32(0); v < d.NLocal(); v++ {
		if d.IsInterface(v) {
			iface = append(iface, v)
		}
	}
	return iface
}

// TestExchangeLabelsAllocRatio is the allocation regression guard for the
// acceptance criterion: the plan-based exchange must report at least 5x
// fewer allocs/op than the dense baseline.
func TestExchangeLabelsAllocRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	plan := testing.Benchmark(BenchmarkExchangeLabels)
	dense := testing.Benchmark(BenchmarkExchangeLabelsDense)
	pa, da := plan.AllocsPerOp(), dense.AllocsPerOp()
	t.Logf("allocs/op: plan=%d dense=%d", pa, da)
	if pa == 0 {
		return
	}
	if da/pa < 5 {
		t.Errorf("plan-based exchange allocates %d/op vs dense %d/op: ratio %.1f < 5",
			pa, da, float64(da)/float64(pa))
	}
}

// BenchmarkSuperstepTracerDisabled measures one full label-exchange
// superstep with the per-superstep tracer instrumentation on its disabled
// (nil tracer) path — exactly what production runs without -trace execute.
// Pair with BenchmarkExchangeLabels (which predates the instrumentation
// hooks in the phase loop): allocs/op must be identical, i.e. the disabled
// tracer adds zero allocations to the superstep hot path.
func BenchmarkSuperstepTracerDisabled(b *testing.B) {
	g := benchExchangeGraph()
	b.ReportAllocs()
	b.ResetTimer()
	mpi.NewWorld(4).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		tracer := c.Tracer() // nil: no SetTracer call
		labels := make([]int64, d.NTotal())
		for v := int32(0); v < d.NTotal(); v++ {
			labels[v] = d.ToGlobal(v)
		}
		iface := interfaceNodes(d)
		ds := newDirtySet(d.NLocal())
		for i := 0; i < b.N; i++ {
			sp := tracer.Begin(c.Rank(), "sclp.cluster_superstep")
			for _, v := range iface {
				ds.add(v)
			}
			exchangeLabels(d, labels, nil, ds)
			tracer.End2(sp, "moves", int64(len(iface)), "phase", int64(i))
		}
	})
}

// TestDisabledTracerZeroAllocOverhead is the acceptance criterion for the
// observability PR: the instrumented superstep with a nil tracer must
// allocate no more per op than the identical uninstrumented superstep.
func TestDisabledTracerZeroAllocOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	plain := testing.Benchmark(BenchmarkExchangeLabels)
	traced := testing.Benchmark(BenchmarkSuperstepTracerDisabled)
	pa, ta := plain.AllocsPerOp(), traced.AllocsPerOp()
	t.Logf("allocs/op: plain=%d traced(nil)=%d", pa, ta)
	if ta > pa {
		t.Errorf("disabled tracer adds allocations to the superstep: %d > %d allocs/op", ta, pa)
	}
}

func BenchmarkParRefineP4(b *testing.B) {
	g := gen.DelaunayLike(20000, 4)
	lmax := partition.Lmax(g.TotalNodeWeight(), 4, 0.03)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mpi.NewWorld(4).Run(func(c *mpi.Comm) {
			d := dgraph.FromGraph(c, g)
			part := make([]int64, d.NTotal())
			for v := int32(0); v < d.NTotal(); v++ {
				part[v] = d.ToGlobal(v) % 4
			}
			ParRefine(d, part, ParRefineConfig{K: 4, Lmax: lmax, Iterations: 6, Seed: uint64(i + 1)})
		})
	}
}
