package sclp

import (
	"testing"

	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/mpi"
	"repro/internal/partition"
)

func BenchmarkClusterCommunity(b *testing.B) {
	g, _ := gen.PlantedPartition(20000, 100, 10, 0.5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cluster(g, ClusterConfig{U: 600, Iterations: 3, DegreeOrder: true, Seed: uint64(i + 1)})
	}
}

func BenchmarkClusterMesh(b *testing.B) {
	g := gen.DelaunayLike(20000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cluster(g, ClusterConfig{U: 600, Iterations: 3, DegreeOrder: true, Seed: uint64(i + 1)})
	}
}

func BenchmarkRefineSeq(b *testing.B) {
	g := gen.DelaunayLike(20000, 2)
	lmax := partition.Lmax(g.TotalNodeWeight(), 4, 0.03)
	base := make([]int32, g.NumNodes())
	for v := int32(0); v < g.NumNodes(); v++ {
		base[v] = v % 4
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := append([]int32(nil), base...)
		Refine(g, p, RefineConfig{K: 4, Lmax: lmax, Iterations: 6, Seed: uint64(i + 1)})
	}
}

func BenchmarkParClusterP4(b *testing.B) {
	g, _ := gen.PlantedPartition(20000, 100, 10, 0.5, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mpi.NewWorld(4).Run(func(c *mpi.Comm) {
			d := dgraph.FromGraph(c, g)
			ParCluster(d, ParClusterConfig{U: 600, Iterations: 3, DegreeOrder: true, Seed: uint64(i + 1)})
		})
	}
}

func BenchmarkParRefineP4(b *testing.B) {
	g := gen.DelaunayLike(20000, 4)
	lmax := partition.Lmax(g.TotalNodeWeight(), 4, 0.03)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mpi.NewWorld(4).Run(func(c *mpi.Comm) {
			d := dgraph.FromGraph(c, g)
			part := make([]int64, d.NTotal())
			for v := int32(0); v < d.NTotal(); v++ {
				part[v] = d.ToGlobal(v) % 4
			}
			ParRefine(d, part, ParRefineConfig{K: 4, Lmax: lmax, Iterations: 6, Seed: uint64(i + 1)})
		})
	}
}
