package sclp

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// TestParClusterTraced runs clustering under an enabled tracer and checks
// every rank's track carries superstep and exchange spans, and that the
// serialized trace is valid Chrome trace-event JSON — the acceptance
// criterion that a traced run opens in Perfetto with per-rank sclp tracks.
func TestParClusterTraced(t *testing.T) {
	g, _ := gen.PlantedPartition(2000, 50, 4, 0.5, 11)
	const P = 4
	tr := obs.NewTracer(P)
	w := mpi.NewWorld(P)
	w.SetTracer(tr)
	w.Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		ParCluster(d, ParClusterConfig{U: 600, Iterations: 2, PhasesPerRound: 4, Seed: 5})
	})
	for rank := 0; rank < P; rank++ {
		names := strings.Join(tr.SpanNames(rank), ",")
		for _, want := range []string{"sclp.cluster_superstep", "dgraph.push_ghosts", "mpi.neighbor_alltoallv"} {
			if !strings.Contains(names, want) {
				t.Errorf("rank %d track lacks %q spans (has: %s)", rank, want, names)
			}
		}
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatal("traceEvents missing or not an array")
	}
}
