package sclp

import (
	"time"

	"repro/internal/arena"
	"repro/internal/dgraph"
	"repro/internal/hashtab"
	"repro/internal/rng"
	"repro/internal/workpool"
)

// proposeChunk is the number of traversal-order nodes one propose chunk
// covers. A phase's chunk count is derived from its length alone — never
// from the worker count — so the per-chunk RNG streams, and with them the
// proposals, are bit-identical for any pool size.
const proposeChunk = 256

// ParStats aggregates one rank's intra-rank worksharing measurements: the
// wall-clock split between the parallel propose pass and the sequential
// commit pass of every superstep, and the summed busy time of the worker
// lanes during propose (BusyNS / (ProposeNS * Workers) is the propose-pass
// utilization).
type ParStats struct {
	Workers    int
	Supersteps int64
	ProposeNS  int64 // wall time of the parallel propose passes
	CommitNS   int64 // wall time of the sequential commit passes
	BusyNS     int64 // summed per-lane busy time inside propose passes
}

// Add accumulates o into s; Workers adopts o's value when set.
func (s *ParStats) Add(o ParStats) {
	if o.Workers > 0 {
		s.Workers = o.Workers
	}
	s.Supersteps += o.Supersteps
	s.ProposeNS += o.ProposeNS
	s.CommitNS += o.CommitNS
	s.BusyNS += o.BusyNS
}

// Utilization returns the mean fraction of propose wall time the worker
// lanes spent busy, in [0, 1]; 0 when nothing was measured.
func (s *ParStats) Utilization() float64 {
	if s == nil || s.Workers <= 0 || s.ProposeNS <= 0 {
		return 0
	}
	u := float64(s.BusyNS) / (float64(s.ProposeNS) * float64(s.Workers))
	if u > 1 {
		u = 1
	}
	return u
}

// observe folds one superstep's measurements into s. Nil-safe.
func (s *ParStats) observe(workers int, propose, commit, busy time.Duration) {
	if s == nil {
		return
	}
	s.Workers = workers
	s.Supersteps++
	s.ProposeNS += int64(propose)
	s.CommitNS += int64(commit)
	s.BusyNS += int64(busy)
}

// lane is the per-worker scratch of a propose pass: a connectivity
// accumulator and a generator reseeded at every chunk boundary. Lanes are
// indexed by the workpool worker ID; no state survives from one chunk into
// the next, so which lane runs a chunk cannot influence results.
type lane struct {
	conn *hashtab.AccumulatorI64
	rng  rng.RNG
}

// newLanes allocates one lane per pool worker, with the accumulator backing
// arrays carved from ar (heap when ar is nil).
func newLanes(pool *workpool.Pool, ar *arena.Arena) []lane {
	lanes := make([]lane, pool.Size())
	for i := range lanes {
		lanes[i].conn = hashtab.NewAccumulatorI64In(ar, 64)
	}
	return lanes
}

// chunkSeed derives the tie-breaking RNG seed of one propose chunk. A pure
// function of (phaseSeed, chunk): the streams are identical no matter which
// worker runs the chunk or how many workers exist.
func chunkSeed(phaseSeed uint64, chunk int) uint64 {
	return phaseSeed ^ (uint64(chunk)+1)*0x9e3779b97f4a7c15
}

// commitSeed derives the seed of a phase's sequential commit RNG stream.
// A different mixing constant than chunkSeed keeps it uncorrelated with
// every propose chunk stream; since the commit pass runs in traversal
// order on one goroutine, a single per-phase stream is deterministic and
// independent of the worker count.
func commitSeed(phaseSeed uint64) uint64 {
	return phaseSeed ^ 0xbf58476d1ce4e5b9
}

// proposeCluster is the parallel half of one clustering superstep: every
// chunk of the phase's traversal order evaluates its nodes against the
// phase-start labels and cluster weights (both frozen during the pass) and
// records the winning target label — or -1 for "stay" — in props. props is
// indexed by traversal position, so chunk writes are disjoint. Returns the
// summed lane busy time.
func proposeCluster(d *dgraph.DGraph, pool *workpool.Pool, lanes []lane, phaseSeed uint64,
	phase []int32, props []int64, labels []int64, weight *hashtab.MapI64,
	constraint []int64, u int64) time.Duration {

	nchunks := workpool.Chunks(len(phase), proposeChunk)
	return pool.Run(nchunks, func(worker, chunk int) {
		ln := &lanes[worker]
		ln.rng.Reseed(chunkSeed(phaseSeed, chunk))
		lo, hi := workpool.Bounds(len(phase), nchunks, chunk)
		for i := lo; i < hi; i++ {
			props[i] = proposeClusterNode(d, phase[i], labels, weight, constraint, u, ln.conn, &ln.rng)
		}
	})
}

// proposeClusterNode evaluates one node against the phase-start state and
// returns the cluster label it proposes to join, or -1 to stay. It mutates
// nothing shared: labels and weight are only read.
//
//parhip:hotpath
func proposeClusterNode(d *dgraph.DGraph, v int32, labels []int64, weight *hashtab.MapI64,
	constraint []int64, u int64, conn *hashtab.AccumulatorI64, r *rng.RNG) int64 {

	nbrs := d.Neighbors(v)
	if len(nbrs) == 0 {
		return -1
	}
	ws := d.EdgeWeights(v)
	conn.Reset()
	for i, nb := range nbrs {
		if constraint != nil && constraint[nb] != constraint[v] {
			continue
		}
		conn.Add(labels[nb], ws[i])
	}
	cur := labels[v]
	curConn, _ := conn.Get(cur)
	best := cur
	bestConn := curConn
	ties := 1
	nw := d.NW[v]
	conn.ForEach(func(label, c int64) {
		if label == cur {
			return
		}
		lw, _ := weight.Get(label)
		if lw+nw > u {
			return
		}
		switch {
		case c > bestConn:
			best, bestConn, ties = label, c, 1
		case c == bestConn && label != cur:
			ties++
			if r.Intn(ties) == 0 {
				best = label
			}
		}
	})
	if best == cur {
		return -1
	}
	return best
}

// commitClusterMove finalizes one move during the sequential commit pass.
// The stale proposal (or the cascade dirty-set) only decided that the node
// is worth re-examining; the actual decision re-runs the full selection against the
// current labels and cluster weights, so a committed move is exactly the
// one the sequential kernel would have made at this point of the
// traversal. Because commits run one at a time in traversal order with a
// dedicated commit RNG stream, the result is independent of how the
// propose pass was scheduled.
//
//parhip:hotpath
func commitClusterMove(d *dgraph.DGraph, v int32, labels []int64,
	weight *hashtab.MapI64, constraint []int64, u int64,
	conn *hashtab.AccumulatorI64, r *rng.RNG) bool {

	b := proposeClusterNode(d, v, labels, weight, constraint, u, conn, r)
	if b < 0 {
		return false
	}
	cur := labels[v]
	nw := d.NW[v]
	bw, _ := weight.Get(b) // fits: the selection enforced bw+nw <= u
	cw, _ := weight.Get(cur)
	weight.Put(cur, cw-nw)
	weight.Put(b, bw+nw)
	labels[v] = b
	return true
}

// proposeRefine is the parallel half of one refinement superstep; see
// proposeCluster. blockWeight and headroom are the phase-start vectors,
// frozen during the pass.
func proposeRefine(d *dgraph.DGraph, pool *workpool.Pool, lanes []lane, phaseSeed uint64,
	phase []int32, props []int64, part, prev []int64,
	blockWeight, headroom []int64, lmax int64) time.Duration {

	nchunks := workpool.Chunks(len(phase), proposeChunk)
	return pool.Run(nchunks, func(worker, chunk int) {
		ln := &lanes[worker]
		ln.rng.Reseed(chunkSeed(phaseSeed, chunk))
		lo, hi := workpool.Bounds(len(phase), nchunks, chunk)
		for i := lo; i < hi; i++ {
			props[i] = proposeRefineNode(d, phase[i], part, prev, blockWeight, headroom, lmax, ln.conn, &ln.rng)
		}
	})
}

// proposeRefineNode evaluates one node and returns the block it selects,
// or -1 to stay. The selection logic — eligibility, previous-block tie
// pinning, the overloaded fallback to the lightest eligible block, and the
// non-overloaded acceptance rules — matches the sequential kernel this
// pass replaced. It runs in two roles: during the parallel propose pass it
// sees phase-start state and its verdict only *flags* the node for
// re-examination; during the sequential commit pass it re-runs against
// current state and its verdict is final. Nodes whose stale verdict said
// "stay" still get re-examined when a same-phase committed move dirtied
// them (see the cascade dirty-set in ParRefine).
//
//parhip:hotpath
func proposeRefineNode(d *dgraph.DGraph, v int32, part, prev []int64,
	blockWeight, headroom []int64, lmax int64,
	conn *hashtab.AccumulatorI64, r *rng.RNG) int64 {

	nbrs := d.Neighbors(v)
	if len(nbrs) == 0 {
		return -1
	}
	ws := d.EdgeWeights(v)
	conn.Reset()
	for i, nb := range nbrs {
		conn.Add(part[nb], ws[i])
	}
	cur := part[v]
	nw := d.NW[v]
	overloaded := blockWeight[cur] > lmax
	curConn, _ := conn.Get(cur)

	// prevB is the node's block in the previous partition (-1 when the run
	// is not migration-aware). It wins connectivity ties and pins the node
	// against cut-neutral moves.
	prevB := int64(-1)
	if prev != nil {
		prevB = prev[v]
	}

	//lint:hotpath-ok never escapes the frame: only called here and captured by ForEach, which does not retain its callback
	eligible := func(b int64) bool {
		return blockWeight[b]+nw <= lmax && headroom[b] >= nw
	}
	best := int64(-1)
	var bestConn int64 = -1
	ties := 0
	conn.ForEach(func(label, c int64) {
		if label == cur || !eligible(label) {
			return
		}
		switch {
		case c > bestConn:
			best, bestConn, ties = label, c, 1
		case c == bestConn:
			if label == prevB {
				best = label // the previous block wins every tie
				return
			}
			if best == prevB {
				return // ...and never loses one it already won
			}
			ties++
			if r.Intn(ties) == 0 {
				best = label
			}
		}
	})
	if best < 0 {
		if !overloaded {
			return -1
		}
		// Overloaded node with no eligible neighbouring block: lightest
		// eligible block overall (see the sequential variant).
		for b := int64(0); b < int64(len(blockWeight)); b++ {
			if b == cur || !eligible(b) {
				continue
			}
			if best < 0 || blockWeight[b] < blockWeight[best] {
				best = b
			}
		}
		return best
	}
	if !overloaded {
		if bestConn < curConn {
			return -1
		}
		if bestConn == curConn {
			if cur == prevB {
				return -1 // cut-neutral move off the previous block: never
			}
			if best != prevB && blockWeight[best]+nw >= blockWeight[cur] {
				return -1
			}
		}
	}
	return best
}

// commitRefineMove finalizes one refinement proposal during the sequential
// commit pass: the full selection of proposeRefineNode re-runs against the
// current part, block weights and remaining headroom, so a committed move
// is exactly the one the sequential kernel would have made at this point
// of the traversal (the stale proposal only decided that the node is worth
// re-examining). headroom is decremented here and only here, so the union
// of committed moves keeps every block within the rank's claimed share and
// Lmax is never exceeded.
//
//parhip:hotpath
func commitRefineMove(d *dgraph.DGraph, v int32, part, prev []int64,
	blockWeight, localContrib, headroom []int64, lmax int64,
	conn *hashtab.AccumulatorI64, r *rng.RNG) bool {

	b := proposeRefineNode(d, v, part, prev, blockWeight, headroom, lmax, conn, r)
	if b < 0 {
		return false
	}
	cur := part[v]
	nw := d.NW[v]
	blockWeight[cur] -= nw
	blockWeight[b] += nw
	localContrib[cur] -= nw
	localContrib[b] += nw
	headroom[b] -= nw
	part[v] = b
	return true
}

// countingSortByDegree reorders order — currently the identity permutation
// over the local nodes — ascending by local degree with ties broken by node
// ID, in O(n + maxDegree) time and without a comparator closure. Filling
// the buckets by increasing node ID makes the sort stable, so the result is
// exactly the permutation the old sort.Slice comparator produced.
func countingSortByDegree(d *dgraph.DGraph, order []int32, ar *arena.Arena) {
	maxDeg := int32(0)
	for _, v := range order {
		if dg := d.Degree(v); dg > maxDeg {
			maxDeg = dg
		}
	}
	counts := ar.Ints(int(maxDeg) + 2)
	for _, v := range order {
		counts[d.Degree(v)+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	out := ar.Int32s(len(order))
	for v := int32(0); v < int32(len(order)); v++ {
		dg := d.Degree(v)
		out[counts[dg]] = v
		counts[dg]++
	}
	copy(order, out)
}
