package gen

import (
	"math"
	"sort"
	"testing"

	"repro/internal/graph"
)

func TestRGGBasic(t *testing.T) {
	g := RGG(2000, 1)
	if g.NumNodes() != 2000 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper's radius sits exactly at the connectivity threshold
	// (pi*r^2*n ~ ln n), so at this small n we check for a giant component
	// rather than strict connectivity.
	comp, cnt := graph.ConnectedComponents(g)
	sizes := make([]int32, cnt)
	for _, c := range comp {
		sizes[c]++
	}
	var giant int32
	for _, s := range sizes {
		if s > giant {
			giant = s
		}
	}
	if giant < g.NumNodes()*95/100 {
		t.Fatalf("giant component has %d of %d nodes", giant, g.NumNodes())
	}
	// Expected average degree ~ n * pi * r^2 = pi * 0.55^2 * ln n ~ 7.2.
	avg := float64(2*g.NumEdges()) / float64(g.NumNodes())
	if avg < 4 || avg > 12 {
		t.Fatalf("average degree %v outside plausible range", avg)
	}
}

func TestRGGDeterminism(t *testing.T) {
	a := RGG(500, 7)
	b := RGG(500, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	c := RGG(500, 8)
	if a.NumEdges() == c.NumEdges() {
		t.Log("different seeds produced same edge count (possible but unlikely)")
	}
}

func TestRGGTiny(t *testing.T) {
	for _, n := range []int32{0, 1, 2, 3} {
		g := RGG(n, 1)
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestDelaunayLike(t *testing.T) {
	g := DelaunayLike(1024, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(g) {
		t.Fatal("mesh not connected")
	}
	// Triangulated grid: m = 2*side*(side-1) + (side-1)^2; avg degree < 6.
	avg := float64(2*g.NumEdges()) / float64(g.NumNodes())
	if avg < 4 || avg > 6 {
		t.Fatalf("average degree %v, want ~5.9", avg)
	}
	if md := g.MaxDegree(); md > 8 {
		t.Fatalf("max degree %d too large for a planar mesh", md)
	}
}

func TestRMATPowerLaw(t *testing.T) {
	g := RMAT(12, 8, 0.57, 0.19, 0.19, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	if n != 1<<12 {
		t.Fatalf("n = %d", n)
	}
	degs := make([]int, n)
	for v := int32(0); v < n; v++ {
		degs[v] = int(g.Degree(v))
	}
	sort.Ints(degs)
	maxDeg := degs[n-1]
	med := degs[n/2]
	// Heavy tail: the max degree should dwarf the median.
	if med > 0 && maxDeg < 20*med {
		t.Fatalf("degree distribution not heavy-tailed: max=%d median=%d", maxDeg, med)
	}
	if maxDeg < 50 {
		t.Fatalf("max degree %d too small for RMAT scale 12", maxDeg)
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(3000, 4, 2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(g) {
		t.Fatal("BA graph should be connected")
	}
	// Preferential attachment: maximum degree grows like sqrt(n), far above
	// the mean of ~2*mAttach.
	if md := g.MaxDegree(); md < 30 {
		t.Fatalf("max degree %d; BA graph should have hubs", md)
	}
}

func TestPlantedPartitionCommunities(t *testing.T) {
	g, comm := PlantedPartition(4000, 16, 12, 0.5, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(comm) != 4000 {
		t.Fatalf("community labels length %d", len(comm))
	}
	// Count intra vs inter community edge endpoints: community structure
	// means the majority of edges are internal.
	var intra, inter int64
	for v := int32(0); v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(v) {
			if comm[u] == comm[v] {
				intra++
			} else {
				inter++
			}
		}
	}
	if intra < 5*inter {
		t.Fatalf("intra=%d inter=%d: planted structure too weak", intra, inter)
	}
}

func TestMesh3D(t *testing.T) {
	g := Mesh3D(5, 6, 7)
	if g.NumNodes() != 210 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	want := int64(4*6*7 + 5*5*7 + 5*6*6)
	if g.NumEdges() != want {
		t.Fatalf("m = %d, want %d", g.NumEdges(), want)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStarOfCliques(t *testing.T) {
	g := StarOfCliques(10, 8, 1)
	if g.NumNodes() != 81 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(g) {
		t.Fatal("star of cliques should be connected")
	}
	if g.Degree(0) != 10 {
		t.Fatalf("hub degree %d", g.Degree(0))
	}
}

func TestWebCrawlLike(t *testing.T) {
	g := WebCrawlLike(10000, 50, 10, 0.4, 100, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 10000 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	// Half the nodes are the degree-one fringe.
	leaves := 0
	for v := int32(0); v < g.NumNodes(); v++ {
		if g.Degree(v) == 1 {
			leaves++
		}
	}
	if leaves < 4000 {
		t.Fatalf("only %d degree-1 leaves; fringe missing", leaves)
	}
	// Hubs have high degree (fringe/hubCount ≈ 50 leaves each on average).
	if md := g.MaxDegree(); md < 40 {
		t.Fatalf("max degree %d; hubs missing", md)
	}
}

func TestWebCrawlLikeDeterminism(t *testing.T) {
	a := WebCrawlLike(2000, 20, 8, 0.4, 40, 9)
	b := WebCrawlLike(2000, 20, 8, 0.4, 40, 9)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
}

func TestWebCrawlLikeEdgeCases(t *testing.T) {
	for _, n := range []int32{10, 100} {
		g := WebCrawlLike(n, 4, 4, 0.5, 2, 1)
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestByFamilyAll(t *testing.T) {
	for _, f := range []Family{FamilyRGG, FamilyDelaunay, FamilyRMAT, FamilyBA, FamilyWeb, FamilyMesh3D, FamilyGrid} {
		g, err := ByFamily(f, 1000, 11)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if g.NumNodes() < 100 {
			t.Fatalf("%s: too few nodes (%d)", f, g.NumNodes())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
	}
}

func TestByFamilyUnknown(t *testing.T) {
	if _, err := ByFamily("nope", 100, 1); err == nil {
		t.Fatal("expected error for unknown family")
	}
}

func TestRGGRadiusFormula(t *testing.T) {
	// Sanity check the constant in the generator against the paper: radius
	// = 0.55*sqrt(ln n / n).
	n := 10000.0
	r := 0.55 * math.Sqrt(math.Log(n)/n)
	if r <= 0 || r >= 1 {
		t.Fatalf("radius %v out of (0,1)", r)
	}
}

func TestPerturb(t *testing.T) {
	g, _ := PlantedPartition(2000, 20, 8, 0.5, 1)
	g2 := Perturb(g, 0.05, 9)
	if g2.NumNodes() != g.NumNodes() {
		t.Fatalf("node count changed: %d -> %d", g.NumNodes(), g2.NumNodes())
	}
	if err := g2.Validate(); err != nil {
		t.Fatalf("perturbed graph invalid: %v", err)
	}
	if g2.Fingerprint() == g.Fingerprint() {
		t.Fatal("5% churn left the graph identical")
	}
	// Edge count stays within a few percent (drops are re-inserted; only
	// merges with existing edges shrink the count).
	lo, hi := g.NumEdges()*93/100, g.NumEdges()*107/100
	if m := g2.NumEdges(); m < lo || m > hi {
		t.Fatalf("edge count drifted too far: %d -> %d", g.NumEdges(), m)
	}
	// Count differing adjacency entries to confirm actual churn happened.
	if Perturb(g, 0, 9).Fingerprint() != g.Fingerprint() {
		t.Fatal("frac=0 should be a structural no-op")
	}
}

func TestPerturbDeltasDeterministicAndEquivalent(t *testing.T) {
	g, _ := PlantedPartition(1500, 15, 8, 0.5, 3)
	d1 := PerturbDeltas(g, 0.05, 11)
	d2 := PerturbDeltas(g, 0.05, 11)
	if len(d1) == 0 || len(d1) != len(d2) {
		t.Fatalf("delta stream not deterministic: %d vs %d deltas", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("delta %d differs across runs: %+v vs %+v", i, d1[i], d2[i])
		}
	}
	// Removals come first (scan order), then one insertion per removal.
	removes, adds := 0, 0
	for i, d := range d1 {
		if d.Add {
			adds++
		} else {
			if adds > 0 {
				t.Fatalf("delta %d: removal after an insertion", i)
			}
			removes++
		}
	}
	if adds != removes {
		t.Fatalf("adds=%d removes=%d, want equal", adds, removes)
	}
	// Perturb must be exactly ApplyEdgeDeltas over PerturbDeltas.
	if ApplyEdgeDeltas(g, d1).Fingerprint() != Perturb(g, 0.05, 11).Fingerprint() {
		t.Fatal("ApplyEdgeDeltas(PerturbDeltas) differs from Perturb")
	}
	// Applying no deltas is a structural no-op.
	if ApplyEdgeDeltas(g, nil).Fingerprint() != g.Fingerprint() {
		t.Fatal("empty delta stream changed the graph")
	}
}
