// Package gen generates the synthetic graph families used by the
// experimental evaluation.
//
// Two families reproduce the paper's scalable inputs exactly (at smaller
// exponents): random geometric graphs rggX and Delaunay-like meshes delX.
// The complex-network instances of the paper (web crawls, social networks)
// are proprietary or too large for this environment, so the package
// substitutes generators with the same structural properties: R-MAT and
// Barabási-Albert graphs for heavy-tailed degree distributions, and
// planted-partition graphs for community structure. DESIGN.md §2 records
// the substitution rationale.
package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// RGG returns a random geometric graph with n nodes: points drawn uniformly
// from the unit square, connected when their Euclidean distance is below
// 0.55*sqrt(ln n / n) — the radius used by the paper (§V-A), chosen so the
// graph is almost certainly connected.
func RGG(n int32, seed uint64) *graph.Graph {
	if n <= 1 {
		return graph.NewBuilder(max32(n, 0)).Build()
	}
	r := rng.New(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := int32(0); i < n; i++ {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	radius := 0.55 * math.Sqrt(math.Log(float64(n))/float64(n))
	// Bucket the unit square into cells of side >= radius; only points in
	// the same or adjacent cells can be within radius of each other.
	cells := int32(1 / radius)
	if cells < 1 {
		cells = 1
	}
	cellOf := func(i int32) (int32, int32) {
		cx := int32(xs[i] * float64(cells))
		cy := int32(ys[i] * float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cx, cy
	}
	// Counting sort points into cells.
	cellCount := make([]int32, cells*cells+1)
	for i := int32(0); i < n; i++ {
		cx, cy := cellOf(i)
		cellCount[cy*cells+cx+1]++
	}
	for c := int32(1); c <= cells*cells; c++ {
		cellCount[c] += cellCount[c-1]
	}
	cellNodes := make([]int32, n)
	fill := make([]int32, cells*cells)
	for i := int32(0); i < n; i++ {
		cx, cy := cellOf(i)
		c := cy*cells + cx
		cellNodes[cellCount[c]+fill[c]] = i
		fill[c]++
	}
	b := graph.NewBuilder(n)
	r2 := radius * radius
	for i := int32(0); i < n; i++ {
		cx, cy := cellOf(i)
		for dy := int32(-1); dy <= 1; dy++ {
			for dx := int32(-1); dx <= 1; dx++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || ny < 0 || nx >= cells || ny >= cells {
					continue
				}
				c := ny*cells + nx
				for _, j := range cellNodes[cellCount[c]:cellCount[c+1]] {
					if j <= i {
						continue
					}
					ddx := xs[i] - xs[j]
					ddy := ys[i] - ys[j]
					if ddx*ddx+ddy*ddy < r2 {
						b.AddEdge(i, j)
					}
				}
			}
		}
	}
	return b.Build()
}

// DelaunayLike returns a planar triangulated mesh on approximately n nodes.
// It substitutes for the paper's Delaunay triangulations of random points
// (delX family): a jittered sqrt(n) x sqrt(n) grid is triangulated by
// splitting each quad along a pseudo-randomly chosen diagonal, yielding a
// planar mesh with average degree ~6, no community structure and the
// locality profile of a Delaunay mesh.
func DelaunayLike(n int32, seed uint64) *graph.Graph {
	side := int32(math.Round(math.Sqrt(float64(n))))
	if side < 2 {
		side = 2
	}
	r := rng.New(seed)
	total := side * side
	b := graph.NewBuilder(total)
	id := func(row, col int32) graph.NodeID { return row*side + col }
	for row := int32(0); row < side; row++ {
		for col := int32(0); col < side; col++ {
			if col+1 < side {
				b.AddEdge(id(row, col), id(row, col+1))
			}
			if row+1 < side {
				b.AddEdge(id(row, col), id(row+1, col))
			}
			if row+1 < side && col+1 < side {
				if r.Bool() {
					b.AddEdge(id(row, col), id(row+1, col+1))
				} else {
					b.AddEdge(id(row, col+1), id(row+1, col))
				}
			}
		}
	}
	return b.Build()
}

// RMAT returns an R-MAT (Kronecker-style) graph with 2^scale nodes and
// approximately edgeFactor*2^scale undirected edges. Quadrant probabilities
// (a, b, c) follow the usual convention with d = 1-a-b-c; the Graph500
// parameters (0.57, 0.19, 0.19) produce the heavy-tailed degree
// distribution of web graphs. Duplicate edges and self-loops are dropped,
// so the realized edge count is slightly below the target.
func RMAT(scale int, edgeFactor int, a, b, c float64, seed uint64) *graph.Graph {
	n := int32(1) << scale
	r := rng.New(seed)
	bu := graph.NewBuilder(n)
	target := int64(edgeFactor) * int64(n)
	for e := int64(0); e < target; e++ {
		var u, v int32
		for bit := scale - 1; bit >= 0; bit-- {
			p := r.Float64()
			switch {
			case p < a:
				// top-left quadrant: no bits set
			case p < a+b:
				v |= 1 << bit
			case p < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u != v {
			bu.AddEdge(u, v)
		}
	}
	return bu.Build()
}

// BarabasiAlbert returns a preferential-attachment graph: nodes arrive one
// at a time and connect to mAttach existing nodes chosen proportionally to
// degree, producing a power-law degree distribution characteristic of
// social networks.
func BarabasiAlbert(n int32, mAttach int, seed uint64) *graph.Graph {
	if mAttach < 1 {
		mAttach = 1
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	// targets holds one entry per edge endpoint: sampling uniformly from it
	// is sampling proportional to degree.
	targets := make([]int32, 0, 2*int(n)*mAttach)
	start := int32(mAttach)
	if start >= n {
		start = n - 1
	}
	// Seed clique among the first mAttach+1 nodes.
	for u := int32(0); u <= start; u++ {
		for v := u + 1; v <= start; v++ {
			b.AddEdge(u, v)
			targets = append(targets, u, v)
		}
	}
	for v := start + 1; v < n; v++ {
		attached := make(map[int32]bool, mAttach)
		for len(attached) < mAttach {
			var t int32
			if len(targets) == 0 {
				t = r.Int31n(v)
			} else {
				t = targets[r.Intn(len(targets))]
			}
			if t != v {
				attached[t] = true
			}
		}
		for t := range attached {
			b.AddEdge(v, t)
			targets = append(targets, v, t)
		}
	}
	return b.Build()
}

// PlantedPartition returns a graph with explicit community structure:
// communities whose sizes follow a truncated power law, dense inside
// (expected internal degree degIn per node) and sparse across (expected
// external degree degOut per node). It also returns the ground-truth
// community of each node. This family stands in for the paper's web graphs
// whose community structure is what cluster contraction exploits.
//
//lint:rawslice-ok internal SPMD plumbing: the raw assignment slice is the working representation; wrapped in *parhip.Partition at the public boundary
func PlantedPartition(n int32, communities int32, degIn, degOut float64, seed uint64) (*graph.Graph, []int32) {
	if communities < 1 {
		communities = 1
	}
	r := rng.New(seed)
	// Power-law community sizes: weight_i ~ (i+1)^-0.8, scaled to sum n.
	weights := make([]float64, communities)
	var wsum float64
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -0.8)
		wsum += weights[i]
	}
	sizes := make([]int32, communities)
	var assigned int32
	for i := range sizes {
		sizes[i] = int32(float64(n) * weights[i] / wsum)
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		assigned += sizes[i]
	}
	// Fix rounding drift on the largest community.
	sizes[0] += n - assigned
	if sizes[0] < 1 {
		sizes[0] = 1
	}
	comm := make([]int32, 0, n)
	for i, s := range sizes {
		for j := int32(0); j < s; j++ {
			comm = append(comm, int32(i))
		}
	}
	comm = comm[:n]
	// Shuffle node->community assignment so community members are not
	// contiguous in ID space (the parallel scatter is by contiguous range).
	r.Shuffle(int(n), func(i, j int) { comm[i], comm[j] = comm[j], comm[i] })
	members := make([][]int32, communities)
	for v := int32(0); v < n; v++ {
		members[comm[v]] = append(members[comm[v]], v)
	}
	b := graph.NewBuilder(n)
	// Internal edges: for each community, draw size*degIn/2 random pairs.
	for _, ms := range members {
		s := len(ms)
		if s < 2 {
			continue
		}
		internal := int64(float64(s) * degIn / 2)
		for e := int64(0); e < internal; e++ {
			u := ms[r.Intn(s)]
			v := ms[r.Intn(s)]
			if u != v {
				b.AddEdge(u, v)
			}
		}
	}
	// External edges: n*degOut/2 random cross pairs.
	external := int64(float64(n) * degOut / 2)
	for e := int64(0); e < external; e++ {
		u := r.Int31n(n)
		v := r.Int31n(n)
		if u != v && comm[u] != comm[v] {
			b.AddEdge(u, v)
		}
	}
	return b.Build(), comm
}

// WebCrawlLike returns a web-crawl analogue: half the nodes form a
// planted-partition community core (communities of power-law size, dense
// inside), the other half is a degree-one leaf fringe attached to hubCount
// hub nodes of the core. Real crawls have exactly this shape — strong
// communities plus an enormous page fringe — and the fringe is what makes
// matching-based coarsening stall (each hub matches at most one leaf per
// level) while cluster contraction absorbs whole stars in one step.
func WebCrawlLike(n int32, communities int32, degIn, degOut float64, hubCount int32, seed uint64) *graph.Graph {
	coreN := n / 2
	if coreN < communities {
		coreN = communities
	}
	if hubCount < 1 {
		hubCount = 1
	}
	if hubCount > coreN {
		hubCount = coreN
	}
	coreG, _ := PlantedPartition(coreN, communities, degIn, degOut, seed)
	b := graph.NewBuilder(n)
	for v := int32(0); v < coreN; v++ {
		ws := coreG.EdgeWeights(v)
		for i, u := range coreG.Neighbors(v) {
			if u > v {
				b.AddEdgeW(v, u, ws[i])
			}
		}
	}
	r := rng.New(seed ^ 0xfeedface)
	hubs := make([]int32, hubCount)
	for i := range hubs {
		hubs[i] = r.Int31n(coreN)
	}
	for leaf := coreN; leaf < n; leaf++ {
		b.AddEdge(leaf, hubs[r.Intn(len(hubs))])
	}
	return b.Build()
}

// Mesh3D returns an x*y*z grid with 6-neighbour connectivity, standing in
// for the paper's 3D numerical meshes ("packing", "channel").
func Mesh3D(x, y, z int32) *graph.Graph {
	n := x * y * z
	b := graph.NewBuilder(n)
	id := func(i, j, k int32) graph.NodeID { return (i*y+j)*z + k }
	for i := int32(0); i < x; i++ {
		for j := int32(0); j < y; j++ {
			for k := int32(0); k < z; k++ {
				if i+1 < x {
					b.AddEdge(id(i, j, k), id(i+1, j, k))
				}
				if j+1 < y {
					b.AddEdge(id(i, j, k), id(i, j+1, k))
				}
				if k+1 < z {
					b.AddEdge(id(i, j, k), id(i, j, k+1))
				}
			}
		}
	}
	return b.Build()
}

// StarOfCliques returns a pathological complex-network shape: hub nodes
// connected to many cliques. Matching-based coarsening stalls on it (stars
// admit only one matched edge), while cluster contraction collapses each
// clique; it is used by the coarsening-effectiveness experiment.
func StarOfCliques(cliques, cliqueSize int32, seed uint64) *graph.Graph {
	n := cliques*cliqueSize + 1
	b := graph.NewBuilder(n)
	hub := graph.NodeID(0)
	for c := int32(0); c < cliques; c++ {
		base := 1 + c*cliqueSize
		for i := int32(0); i < cliqueSize; i++ {
			for j := i + 1; j < cliqueSize; j++ {
				b.AddEdge(base+i, base+j)
			}
		}
		b.AddEdge(hub, base)
	}
	return b.Build()
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// Family identifies a named generator for the experiment harness.
type Family string

// Families used by the experiment harness.
const (
	FamilyRGG      Family = "rgg"
	FamilyDelaunay Family = "delaunay"
	FamilyRMAT     Family = "rmat"
	FamilyBA       Family = "ba"
	FamilyWeb      Family = "web"
	FamilyMesh3D   Family = "mesh3d"
	FamilyGrid     Family = "grid"
)

// ByFamily generates a graph of the requested family with about n nodes.
// It returns an error for unknown family names.
func ByFamily(f Family, n int32, seed uint64) (*graph.Graph, error) {
	switch f {
	case FamilyRGG:
		return RGG(n, seed), nil
	case FamilyDelaunay:
		return DelaunayLike(n, seed), nil
	case FamilyRMAT:
		scale := 0
		for (int32(1) << scale) < n {
			scale++
		}
		return RMAT(scale, 8, 0.57, 0.19, 0.19, seed), nil
	case FamilyBA:
		return BarabasiAlbert(n, 5, seed), nil
	case FamilyWeb:
		g, _ := PlantedPartition(n, maxI32(n/256, 4), 12, 1.0, seed)
		return g, nil
	case FamilyMesh3D:
		side := int32(math.Cbrt(float64(n)))
		if side < 2 {
			side = 2
		}
		return Mesh3D(side, side, side), nil
	case FamilyGrid:
		side := int32(math.Sqrt(float64(n)))
		if side < 2 {
			side = 2
		}
		return graph.Grid2D(side, side), nil
	}
	return nil, fmt.Errorf("gen: unknown family %q", f)
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// Perturb returns a copy of g with roughly frac of its undirected edges
// churned: each edge is dropped with probability frac, and one fresh
// uniform-random edge is inserted per dropped edge (a new random endpoint
// pair may coincide with an existing edge, in which case the weights
// merge). Node count and node weights are preserved; inserted edges have
// weight 1. Perturb models graph drift between partitioning runs — the
// dynamic-graph scenario the repartitioning API serves — so examples,
// benchmarks and tests can exercise Repartition realistically.
func Perturb(g *graph.Graph, frac float64, seed uint64) *graph.Graph {
	return ApplyEdgeDeltas(g, PerturbDeltas(g, frac, seed))
}

// EdgeDelta is one undirected edge mutation produced by PerturbDeltas:
// an insertion (Add) of {U, V} with weight W, or a removal. The delta
// stream uses the same semantics as the live-graph update API: adding an
// edge that already exists merges by summing weights, removing an absent
// edge is a no-op.
type EdgeDelta struct {
	Add  bool
	U, V graph.NodeID
	W    int64
}

// PerturbDeltas returns the edge-delta stream Perturb applies: for each
// dropped edge a removal (in adjacency scan order), then one weight-1
// insertion at uniform-random endpoints per removal. The stream is
// deterministic under seed, and ApplyEdgeDeltas(g, PerturbDeltas(g, frac,
// seed)) is identical to Perturb(g, frac, seed) — loadgen's stream mode
// and the live-graph tests feed these deltas incrementally instead of
// diffing whole graphs.
func PerturbDeltas(g *graph.Graph, frac float64, seed uint64) []EdgeDelta {
	n := g.NumNodes()
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	r := rng.New(seed)
	var deltas []EdgeDelta
	for v := int32(0); v < n; v++ {
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			if u <= v {
				continue // each undirected edge handled once
			}
			if frac > 0 && r.Float64() < frac {
				deltas = append(deltas, EdgeDelta{U: v, V: u, W: ws[i]})
			}
		}
	}
	dropped := len(deltas)
	if n >= 2 {
		for i := 0; i < dropped; i++ {
			u := r.Int31n(n)
			v := r.Int31n(n - 1)
			if v >= u {
				v++
			}
			deltas = append(deltas, EdgeDelta{Add: true, U: u, V: v, W: 1})
		}
	}
	return deltas
}

// ApplyEdgeDeltas applies an edge-delta stream to g and returns the
// resulting graph. Node count and node weights are preserved. Deltas are
// applied in order with merge-on-add semantics: an insertion on an
// existing (or earlier-inserted) edge sums weights, a removal zeroes the
// edge whatever its weight, and a removal of an absent edge is a no-op.
func ApplyEdgeDeltas(g *graph.Graph, deltas []EdgeDelta) *graph.Graph {
	n := g.NumNodes()
	// Effective weight of every touched edge (0 = absent).
	eff := make(map[uint64]int64, len(deltas))
	baseWeight := func(u, v graph.NodeID) int64 {
		w, ok := g.HasEdge(u, v)
		if !ok {
			return 0
		}
		return w
	}
	for _, d := range deltas {
		key := graph.EdgeKey(d.U, d.V)
		w, ok := eff[key]
		if !ok {
			w = baseWeight(d.U, d.V)
		}
		if d.Add {
			w += d.W
		} else {
			w = 0
		}
		eff[key] = w
	}
	b := graph.NewBuilder(n)
	for v := int32(0); v < n; v++ {
		if g.NW[v] != 1 {
			b.SetNodeWeight(v, g.NW[v])
		}
	}
	for v := int32(0); v < n; v++ {
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			if u <= v {
				continue
			}
			if w, ok := eff[graph.EdgeKey(v, u)]; ok {
				if w > 0 {
					b.AddEdgeW(v, u, w)
				}
				continue
			}
			b.AddEdgeW(v, u, ws[i])
		}
	}
	for key, w := range eff {
		if w <= 0 {
			continue
		}
		u, v := graph.EdgeKeyEndpoints(key)
		if _, ok := g.HasEdge(u, v); ok {
			continue // already emitted (possibly overridden) above
		}
		b.AddEdgeW(u, v, w)
	}
	return b.Build()
}
