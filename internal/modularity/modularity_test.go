package modularity

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestModularityKnownValues(t *testing.T) {
	// Two disjoint triangles joined by one edge, clustered as the two
	// triangles: a classic textbook case with high modularity.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(3, 5)
	b.AddEdge(2, 3)
	g := b.Build()
	clusters := []int32{0, 0, 0, 1, 1, 1}
	q := Modularity(g, clusters)
	// m = 7; in_0 = in_1 = 6 (twice 3 intra edges); tot_0 = tot_1 = 7.
	want := 2 * (6.0/14.0 - (7.0/14.0)*(7.0/14.0))
	if math.Abs(q-want) > 1e-12 {
		t.Fatalf("Q = %v, want %v", q, want)
	}
}

func TestModularitySingletonAndWhole(t *testing.T) {
	g := gen.RGG(200, 1)
	// All in one cluster: Q = 1 - 1 = 0 exactly when one cluster holds all
	// degree: in = 2m, tot = 2m -> Q = 1 - 1 = 0.
	one := make([]int32, 200)
	if q := Modularity(g, one); math.Abs(q) > 1e-12 {
		t.Fatalf("single-cluster Q = %v, want 0", q)
	}
	// Singletons: in_c = 0, so Q = -sum (deg_v/2m)^2 < 0.
	single := make([]int32, 200)
	for v := range single {
		single[v] = int32(v)
	}
	if q := Modularity(g, single); q >= 0 {
		t.Fatalf("singleton Q = %v, want negative", q)
	}
}

func TestModularityEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(3).Build()
	if q := Modularity(g, []int32{0, 1, 2}); q != 0 {
		t.Fatalf("edgeless Q = %v", q)
	}
}

func TestModularityBounded(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.RGG(150, seed)
		r := rng.New(seed)
		c := make([]int32, 150)
		for v := range c {
			c[v] = r.Int31n(5)
		}
		q := Modularity(g, c)
		return q >= -1 && q <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterRecoversPlantedCommunities(t *testing.T) {
	g, truth := gen.PlantedPartition(3000, 12, 12, 0.5, 3)
	clusters, q := Cluster(g, DefaultConfig())
	if q < 0.4 {
		t.Fatalf("modularity %v too low for a strongly planted graph", q)
	}
	// The clustering should align with the planted communities: measure
	// pairwise agreement on a sample.
	r := rng.New(7)
	agree, total := 0, 0
	for i := 0; i < 20000; i++ {
		u := r.Int31n(3000)
		v := r.Int31n(3000)
		if u == v {
			continue
		}
		sameTruth := truth[u] == truth[v]
		sameFound := clusters[u] == clusters[v]
		if sameTruth == sameFound {
			agree++
		}
		total++
	}
	if float64(agree)/float64(total) < 0.85 {
		t.Fatalf("pair agreement %.2f with planted communities", float64(agree)/float64(total))
	}
}

func TestClusterBeatsTrivialBaselines(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 4, 5)
	clusters, q := Cluster(g, DefaultConfig())
	if len(clusters) != 2000 {
		t.Fatal("wrong assignment length")
	}
	one := make([]int32, 2000)
	if q <= Modularity(g, one) {
		t.Fatalf("Q=%v not better than the single-cluster baseline", q)
	}
	single := make([]int32, 2000)
	for v := range single {
		single[v] = int32(v)
	}
	if q <= Modularity(g, single) {
		t.Fatalf("Q=%v not better than singletons", q)
	}
}

func TestClusterTwoCliques(t *testing.T) {
	b := graph.NewBuilder(10)
	for u := int32(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			b.AddEdge(u, v)
			b.AddEdge(u+5, v+5)
		}
	}
	b.AddEdge(4, 5)
	g := b.Build()
	clusters, q := Cluster(g, DefaultConfig())
	if clusters[0] != clusters[4] || clusters[5] != clusters[9] {
		t.Fatalf("cliques split: %v", clusters)
	}
	if clusters[0] == clusters[5] {
		t.Fatalf("cliques merged: %v", clusters)
	}
	if q < 0.3 {
		t.Fatalf("Q = %v", q)
	}
}

func TestClusterDeterminism(t *testing.T) {
	g := gen.RGG(500, 9)
	cfg := DefaultConfig()
	cfg.Seed = 42
	a, qa := Cluster(g, cfg)
	b2, qb := Cluster(g, cfg)
	if qa != qb {
		t.Fatalf("modularity differs: %v vs %v", qa, qb)
	}
	for v := range a {
		if a[v] != b2[v] {
			t.Fatal("assignments differ for the same seed")
		}
	}
}

func TestClusterEmptyAndTiny(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	c, q := Cluster(empty, DefaultConfig())
	if len(c) != 0 || q != 0 {
		t.Fatal("empty graph")
	}
	single := graph.NewBuilder(1).Build()
	c, _ = Cluster(single, DefaultConfig())
	if len(c) != 1 {
		t.Fatal("one-node graph")
	}
}
