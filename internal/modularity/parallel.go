package modularity

import (
	"repro/internal/contract"
	"repro/internal/dgraph"
	"repro/internal/hashtab"
	"repro/internal/rng"
)

// ParConfig controls the distributed multilevel modularity clustering.
type ParConfig struct {
	// Levels bounds the contraction depth.
	Levels int
	// Iterations is the local-move sweep count per level.
	Iterations int
	// PhasesPerRound is the halo-exchange granularity per sweep.
	PhasesPerRound int
	// Seed drives traversal order and tie breaking (identical on every
	// rank; per-rank streams are derived).
	Seed uint64
}

// DefaultParConfig returns sensible defaults.
func DefaultParConfig() ParConfig {
	return ParConfig{Levels: 10, Iterations: 8, PhasesPerRound: 8, Seed: 1}
}

// ParCluster computes a modularity clustering of the distributed graph: a
// parallel Louvain built from the same pieces as the partitioner (label
// propagation with modularity gain, parallel cluster contraction). It
// returns one cluster ID per local node (cluster IDs are global and dense
// in [0, #clusters)). Collective.
//
//parhip:collective
func ParCluster(d *dgraph.DGraph, cfg ParConfig) []int64 {
	if cfg.Levels <= 0 {
		cfg.Levels = 10
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 8
	}
	if cfg.PhasesPerRound <= 0 {
		cfg.PhasesPerRound = 8
	}
	shared := rng.New(cfg.Seed)

	cur := d
	self := make([]int64, cur.NTotal()) // intra-weight absorbed per node
	type levelRec struct {
		fine         *dgraph.DGraph
		coarse       *dgraph.DGraph
		fineToCoarse []int64
	}
	var levels []levelRec
	for level := 0; level < cfg.Levels; level++ {
		labels, moved := parSweep(cur, self, cfg, shared.Uint64())
		if moved == 0 {
			break
		}
		res := contract.ParContract(cur, labels)
		if res.Coarse.GlobalN >= cur.GlobalN {
			break
		}
		// New self weights: members' self plus intra-cluster edge weight,
		// routed to the coarse owners.
		coarseSelfLocal := liftSelfWeights(cur, res, labels, self)
		levels = append(levels, levelRec{fine: cur, coarse: res.Coarse, fineToCoarse: res.FineToCoarse})
		cur = res.Coarse
		self = make([]int64, cur.NTotal())
		copy(self, coarseSelfLocal)
		cur.SyncGhosts(self)
	}

	// Final clusters: the coarsest nodes themselves; project down.
	out := make([]int64, cur.NTotal())
	for v := int32(0); v < cur.NTotal(); v++ {
		out[v] = cur.ToGlobal(v)
	}
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		out = contract.ParProject(lv.fine, lv.coarse, lv.fineToCoarse, out)
	}
	return out[:d.NLocal()]
}

// liftSelfWeights computes, for each coarse-local node, the total internal
// weight of its cluster: member self weights plus intra-cluster fine edges.
// Collective.
//
//parhip:collective
func liftSelfWeights(fine *dgraph.DGraph, res *contract.ParResult, labels []int64, self []int64) []int64 {
	c := fine.Comm
	size := c.Size()
	acc := hashtab.NewAccumulatorI64(int(fine.NLocal()) + 16)
	// Coarse IDs for ghosts: derive from labels via the same mapping used
	// for local nodes is not directly exposed; instead use global labels —
	// two fine nodes share a coarse node iff they share a label, so the
	// intra-edge test compares labels.
	for v := int32(0); v < fine.NLocal(); v++ {
		cu := res.FineToCoarse[v]
		acc.Add(cu, self[v])
		ws := fine.EdgeWeights(v)
		for i, u := range fine.Neighbors(v) {
			if labels[u] != labels[v] {
				continue
			}
			// Count each intra edge once globally: from the endpoint with
			// the smaller global ID.
			if fine.ToGlobal(v) < fine.ToGlobal(u) {
				acc.Add(cu, ws[i])
			}
		}
	}
	coarse := res.Coarse
	out := make([][]int64, size)
	acc.ForEach(func(cu, w int64) {
		if w == 0 {
			return
		}
		o := coarse.Owner(cu)
		out[o] = append(out[o], cu, w)
	})
	in := c.Alltoallv(out)
	coarseSelf := make([]int64, coarse.NLocal())
	lo := coarse.FirstGlobal()
	for _, buf := range in {
		for i := 0; i+1 < len(buf); i += 2 {
			coarseSelf[buf[i]-lo] += buf[i+1]
		}
	}
	return coarseSelf
}

// parSweep runs modularity-gain label propagation on one level and returns
// labels (NTotal, ghosts synced) and the global move count. Collective.
//
//parhip:collective
func parSweep(d *dgraph.DGraph, self []int64, cfg ParConfig, seed uint64) ([]int64, int64) {
	nt := d.NTotal()
	labels := make([]int64, nt)
	deg := make([]int64, nt)
	var m2Local int64
	for v := int32(0); v < nt; v++ {
		labels[v] = d.ToGlobal(v)
		var wd int64
		if v < d.NLocal() {
			for _, w := range d.EdgeWeights(v) {
				wd += w
			}
			m2Local += wd + 2*self[v]
		} else {
			// Ghost degrees come from the owners below.
			wd = 0
		}
		deg[v] = wd + 2*self[v]
	}
	d.SyncGhosts(deg)
	m2 := float64(d.Comm.AllreduceSum1(m2Local))
	if m2 == 0 {
		return labels, 0
	}
	// Locally tracked cluster degree totals (approximate across ranks,
	// exact for the clusters of local+ghost nodes — the same localized
	// scheme as coarsening weights in §IV-B).
	tot := hashtab.NewMapI64(int(nt) + 16)
	for v := int32(0); v < nt; v++ {
		old, _ := tot.Get(labels[v])
		tot.Put(labels[v], old+deg[v])
	}
	r := rng.New(seed).Split(uint64(d.Comm.Rank()))
	conn := hashtab.NewAccumulatorI64(64)
	order := r.Perm(int(d.NLocal()))
	changed := make(map[int32]bool)
	var movedTotal int64
	for iter := 0; iter < cfg.Iterations; iter++ {
		if iter > 0 {
			r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		var movedLocal int64
		for ph := 0; ph < cfg.PhasesPerRound; ph++ {
			start := ph * len(order) / cfg.PhasesPerRound
			end := (ph + 1) * len(order) / cfg.PhasesPerRound
			for _, v := range order[start:end] {
				if parModMove(d, v, labels, deg, tot, m2, conn, r) {
					movedLocal++
					if d.IsInterface(v) {
						changed[v] = true
					}
				}
			}
			exchangeModLabels(d, labels, deg, tot, changed)
		}
		moved := d.Comm.AllreduceSum1(movedLocal)
		movedTotal += moved
		if moved == 0 {
			break
		}
	}
	return labels, movedTotal
}

func parModMove(d *dgraph.DGraph, v int32, labels, deg []int64,
	tot *hashtab.MapI64, m2 float64, conn *hashtab.AccumulatorI64, r *rng.RNG) bool {

	nbrs := d.Neighbors(v)
	if len(nbrs) == 0 {
		return false
	}
	ws := d.EdgeWeights(v)
	conn.Reset()
	for i, nb := range nbrs {
		conn.Add(labels[nb], ws[i])
	}
	cur := labels[v]
	dv := float64(deg[v])
	gain := func(c int64, connW float64) float64 {
		t, _ := tot.Get(c)
		tf := float64(t)
		if c == cur {
			tf -= dv
		}
		return connW - dv*tf/m2
	}
	curConn, _ := conn.Get(cur)
	best := cur
	bestGain := gain(cur, float64(curConn))
	ties := 1
	conn.ForEach(func(label, c int64) {
		if label == cur {
			return
		}
		gn := gain(label, float64(c))
		switch {
		case gn > bestGain:
			best, bestGain, ties = label, gn, 1
		case gn == bestGain && label != cur:
			ties++
			if r.Intn(ties) == 0 {
				best = label
			}
		}
	})
	if best == cur {
		return false
	}
	tc, _ := tot.Get(cur)
	tot.Put(cur, tc-deg[v])
	tb, _ := tot.Get(best)
	tot.Put(best, tb+deg[v])
	labels[v] = best
	return true
}

// exchangeModLabels propagates changed interface labels and keeps the local
// cluster-degree totals consistent for ghost moves. Collective.
//
//parhip:collective
func exchangeModLabels(d *dgraph.DGraph, labels, deg []int64, tot *hashtab.MapI64, changed map[int32]bool) {
	size := d.Comm.Size()
	out := make([][]int64, size)
	for v := range changed {
		for _, rk := range d.AdjacentRanks(v) {
			out[rk] = append(out[rk], d.ToGlobal(v), labels[v])
		}
	}
	clear(changed)
	in := d.Comm.Alltoallv(out)
	for _, buf := range in {
		for i := 0; i+1 < len(buf); i += 2 {
			lu, ok := d.ToLocal(buf[i])
			if !ok || !d.IsGhost(lu) {
				continue
			}
			old := labels[lu]
			nl := buf[i+1]
			if old == nl {
				continue
			}
			to, _ := tot.Get(old)
			tot.Put(old, to-deg[lu])
			tn, _ := tot.Get(nl)
			tot.Put(nl, tn+deg[lu])
			labels[lu] = nl
		}
	}
}
