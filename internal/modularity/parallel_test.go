package modularity

import (
	"testing"

	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
)

// gatherClusters assembles the full clustering from per-rank local slices.
func gatherClusters(d *dgraph.DGraph, local []int64) []int32 {
	parts := d.Comm.Allgatherv(local)
	out := make([]int32, d.GlobalN)
	// Cluster IDs are global node IDs at the coarsest level; compress to
	// small ints for Modularity().
	dense := make(map[int64]int32)
	var gv int64
	for _, p := range parts {
		for _, c := range p {
			id, ok := dense[c]
			if !ok {
				id = int32(len(dense))
				dense[c] = id
			}
			out[gv] = id
			gv++
		}
	}
	return out
}

func TestParClusterPlanted(t *testing.T) {
	g, _ := gen.PlantedPartition(4000, 16, 12, 0.5, 3)
	seqClusters, seqQ := Cluster(g, DefaultConfig())
	_ = seqClusters
	mpi.NewWorld(4).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		local := ParCluster(d, DefaultParConfig())
		if int32(len(local)) != d.NLocal() {
			t.Errorf("rank %d: %d cluster entries for %d local nodes", c.Rank(), len(local), d.NLocal())
			return
		}
		full := gatherClusters(d, local)
		if c.Rank() != 0 {
			return
		}
		q := Modularity(g, full)
		if q < 0.4 {
			t.Errorf("parallel modularity %v too low", q)
		}
		// Within striking distance of the sequential result.
		if q < seqQ-0.15 {
			t.Errorf("parallel Q=%v far below sequential Q=%v", q, seqQ)
		}
	})
}

func TestParClusterTwoCliquesAcrossRanks(t *testing.T) {
	b := graph.NewBuilder(12)
	for u := int32(0); u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			b.AddEdge(u, v)
			b.AddEdge(u+6, v+6)
		}
	}
	b.AddEdge(5, 6)
	g := b.Build()
	mpi.NewWorld(3).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		local := ParCluster(d, DefaultParConfig())
		full := gatherClusters(d, local)
		if c.Rank() != 0 {
			return
		}
		if full[0] != full[5] || full[6] != full[11] {
			t.Errorf("cliques split: %v", full)
		}
		if full[0] == full[6] {
			t.Errorf("cliques merged: %v", full)
		}
	})
}

func TestParClusterSingleRankMatchesShape(t *testing.T) {
	g := gen.BarabasiAlbert(1500, 4, 7)
	mpi.NewWorld(1).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		local := ParCluster(d, DefaultParConfig())
		full := gatherClusters(d, local)
		q := Modularity(g, full)
		if q <= 0 {
			t.Errorf("single-rank parallel Q = %v", q)
		}
	})
}

func TestParClusterEmptyRanks(t *testing.T) {
	g := graph.Path(3)
	mpi.NewWorld(5).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		local := ParCluster(d, DefaultParConfig())
		if int32(len(local)) != d.NLocal() {
			t.Errorf("rank %d: wrong length", c.Rank())
		}
	})
}
