// Package modularity implements the graph-clustering generalization the
// paper names as future work (§VI): "generalize our algorithm for graph
// clustering w.r.t. modularity … to compute graph clusterings of huge
// unstructured graphs in a short amount of time".
//
// The same machinery as partitioning is reused: label propagation drives
// the clustering (here with modularity gain instead of cut gain and no
// size constraint), cluster contraction builds the hierarchy, and a
// refinement sweep on each level plays the role of the coarsest-level
// algorithm. The result is a Louvain-style multilevel modularity
// clusterer built from the partitioner's parts.
package modularity

import (
	"repro/internal/contract"
	"repro/internal/graph"
	"repro/internal/hashtab"
	"repro/internal/rng"
)

// Modularity returns Newman's modularity of the clustering:
// Q = sum_c [ in_c/(2m) - (tot_c/(2m))^2 ], with in_c twice the weight of
// intra-cluster edges and tot_c the total weighted degree of cluster c.
// The empty graph has modularity 0.
//
//lint:rawslice-ok clustering labels consumed via the public Clustering wrapper
func Modularity(g *graph.Graph, clusters []int32) float64 {
	n := g.NumNodes()
	// Remap cluster IDs to dense indices in first-occurrence order so the
	// floating-point accumulation order (and thus the result, bit for bit)
	// is deterministic.
	dense := make(map[int32]int32, 64)
	idOf := func(c int32) int32 {
		if d, ok := dense[c]; ok {
			return d
		}
		d := int32(len(dense))
		dense[c] = d
		return d
	}
	in := make([]float64, 0, 64)
	tot := make([]float64, 0, 64)
	var m2 float64
	for v := int32(0); v < n; v++ {
		cv := idOf(clusters[v])
		for int(cv) >= len(tot) {
			in = append(in, 0)
			tot = append(tot, 0)
		}
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			w := float64(ws[i])
			m2 += w
			tot[cv] += w
			if clusters[u] == clusters[v] {
				in[cv] += w
			}
		}
	}
	if m2 == 0 {
		return 0
	}
	var q float64
	for c := range tot {
		q += in[c]/m2 - (tot[c]/m2)*(tot[c]/m2)
	}
	return q
}

// Config controls the multilevel clustering.
type Config struct {
	// Levels bounds the contraction depth (0 = until no improvement).
	Levels int
	// Iterations is the label propagation sweep count per level.
	Iterations int
	// Seed drives traversal order and tie breaking.
	Seed uint64
}

// DefaultConfig returns sensible defaults.
func DefaultConfig() Config {
	return Config{Levels: 10, Iterations: 8, Seed: 1}
}

// Cluster computes a modularity clustering of g. It returns the cluster
// assignment and its modularity.
//
//lint:rawslice-ok clustering labels consumed via the public Clustering wrapper
func Cluster(g *graph.Graph, cfg Config) ([]int32, float64) {
	if cfg.Levels <= 0 {
		cfg.Levels = 10
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 8
	}
	r := rng.New(cfg.Seed)
	n := g.NumNodes()
	assign := make([]int32, n)
	for v := int32(0); v < n; v++ {
		assign[v] = v
	}
	if n == 0 {
		return assign, 0
	}
	cur := g
	// The Graph type has no self-loops, but Louvain on coarse levels needs
	// the intra-cluster weight absorbed by each coarse node; track it in a
	// parallel array.
	self := make([]float64, n)
	// maps[i] translates level-i node IDs to level-i+1 (coarser) IDs.
	var maps [][]int32
	for level := 0; level < cfg.Levels; level++ {
		labels, moved := sweep(cur, self, cfg.Iterations, r)
		if moved == 0 {
			break
		}
		cg, f2c := contract.Contract(cur, labels)
		if cg.NumNodes() >= cur.NumNodes() {
			break
		}
		// New self weights: members' self weights plus intra-cluster edges.
		newSelf := make([]float64, cg.NumNodes())
		for v := int32(0); v < cur.NumNodes(); v++ {
			newSelf[f2c[v]] += self[v]
			ws := cur.EdgeWeights(v)
			for i, u := range cur.Neighbors(v) {
				if u > v && f2c[u] == f2c[v] {
					newSelf[f2c[v]] += float64(ws[i])
				}
			}
		}
		self = newSelf
		maps = append(maps, f2c)
		cur = cg
	}
	// Compose the hierarchy down to the input level.
	final := make([]int32, cur.NumNodes())
	for i := range final {
		final[i] = int32(i)
	}
	for i := len(maps) - 1; i >= 0; i-- {
		final = contract.Project(final, maps[i])
	}
	return final, Modularity(g, final)
}

// sweep runs modularity-gain label propagation: node v moves to the
// neighbouring cluster maximizing
//
//	deltaQ ∝ conn(v, c) - deg(v)*tot(c)/(2m)
//
// (the Louvain local move criterion). self[v] carries the intra-weight a
// coarse node absorbed from its cluster (counted twice in its degree, the
// usual self-loop convention). Returns labels and the move count.
func sweep(g *graph.Graph, self []float64, iterations int, r *rng.RNG) ([]int32, int) {
	n := g.NumNodes()
	labels := make([]int32, n)
	tot := make([]float64, n) // total weighted degree per cluster
	deg := make([]float64, n)
	var m2 float64
	for v := int32(0); v < n; v++ {
		labels[v] = v
		deg[v] = float64(g.WeightedDegree(v)) + 2*self[v]
		tot[v] = deg[v]
		m2 += deg[v]
	}
	if m2 == 0 {
		return labels, 0
	}
	conn := hashtab.NewAccumulatorI64(64)
	order := r.Perm(int(n))
	totalMoves := 0
	for iter := 0; iter < iterations; iter++ {
		if iter > 0 {
			r.Shuffle(int(n), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		moves := 0
		for _, v := range order {
			if moveByModularity(g, v, labels, tot, deg, m2, conn, r) {
				moves++
			}
		}
		totalMoves += moves
		if moves == 0 {
			break
		}
	}
	return labels, totalMoves
}

func moveByModularity(g *graph.Graph, v int32, labels []int32,
	tot, deg []float64, m2 float64, conn *hashtab.AccumulatorI64, r *rng.RNG) bool {

	nbrs := g.Neighbors(v)
	if len(nbrs) == 0 {
		return false
	}
	ws := g.EdgeWeights(v)
	conn.Reset()
	for i, u := range nbrs {
		conn.Add(int64(labels[u]), ws[i])
	}
	cur := labels[v]
	// Gain of staying: connection to own cluster minus expected, with own
	// contribution removed from tot.
	gain := func(c int32, connW float64) float64 {
		t := tot[c]
		if c == cur {
			t -= deg[v]
		}
		return connW - deg[v]*t/m2
	}
	curConn, _ := conn.Get(int64(cur))
	best := cur
	bestGain := gain(cur, float64(curConn))
	ties := 1
	conn.ForEach(func(label, c int64) {
		l := int32(label)
		if l == cur {
			return
		}
		gn := gain(l, float64(c))
		switch {
		case gn > bestGain:
			best, bestGain, ties = l, gn, 1
		case gn == bestGain && l != cur:
			ties++
			if r.Intn(ties) == 0 {
				best = l
			}
		}
	})
	if best == cur {
		return false
	}
	tot[cur] -= deg[v]
	tot[best] += deg[v]
	labels[v] = best
	return true
}
