package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterminismAnalyzer guards the reproducibility contract of the decision
// packages (core, sclp, contract, evo): for a fixed seed — and in the
// parallel setting a fixed (seed, rank) pair — runs must be bit-identical.
// Three sources of hidden nondeterminism are flagged:
//
//   - time.Now / time.Since: wall-clock values must never influence
//     partition state. Timing for Stats is fine — annotate the line
//     //lint:determinism-ok <reason>.
//   - global math/rand (and math/rand/v2): all randomness flows through
//     internal/rng streams derived from the run seed.
//   - range over a map: Go randomizes iteration order, so any map range
//     whose body does more than commutative integer accumulation
//     (+=, -=, ++, --) can leak the order into results. Iterate sorted
//     keys, use internal/hashtab, or annotate.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbids wall-clock, global math/rand and order-dependent map ranges in decision packages",
	Run:  runDeterminism,
}

// determinismScope lists the packages (by final import-path element) whose
// decisions feed partition state.
var determinismScope = map[string]bool{
	"core":     true,
	"sclp":     true,
	"contract": true,
	"evo":      true,
}

func runDeterminism(p *Pass) {
	path := p.Pkg.Path()
	if !determinismScope[path[strings.LastIndex(path, "/")+1:]] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkForbiddenPkg(p, n)
			case *ast.RangeStmt:
				checkMapRange(p, n)
			}
			return true
		})
	}
}

// checkForbiddenPkg flags time.Now/time.Since and any use of math/rand.
func checkForbiddenPkg(p *Pass, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pkgName.Imported().Path() {
	case "time":
		if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
			if !p.lintOK("determinism", sel.Pos()) {
				p.Reportf(sel.Pos(),
					"time.%s in a determinism-scoped package: wall-clock values must not influence partition state (annotate //lint:determinism-ok <reason> for Stats-only timing)",
					sel.Sel.Name)
			}
		}
	case "math/rand", "math/rand/v2":
		if !p.lintOK("determinism", sel.Pos()) {
			p.Reportf(sel.Pos(),
				"global math/rand is not seeded per run: use an internal/rng stream derived from the run seed")
		}
	}
}

// checkMapRange flags ranges over map values unless the body is pure
// commutative accumulation or the statement carries an escape hatch.
func checkMapRange(p *Pass, r *ast.RangeStmt) {
	tv, ok := p.Info.Types[r.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if commutativeBody(r.Body) || p.lintOK("determinism", r.Pos()) {
		return
	}
	p.Reportf(r.Pos(),
		"map iteration order is randomized: values flowing out of this range are nondeterministic; iterate sorted keys (or annotate //lint:determinism-ok <reason>)")
}

// commutativeBody reports whether every statement is an order-independent
// integer accumulation: x++, x--, x += e, x -= e (optionally wrapped in an
// if). Anything else — appends, index writes, calls — may expose order.
func commutativeBody(b *ast.BlockStmt) bool {
	var ok func(s ast.Stmt) bool
	ok = func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.IncDecStmt:
			return true
		case *ast.AssignStmt:
			return s.Tok == token.ADD_ASSIGN || s.Tok == token.SUB_ASSIGN
		case *ast.IfStmt:
			if s.Init != nil || s.Else != nil {
				return false
			}
			for _, inner := range s.Body.List {
				if !ok(inner) {
					return false
				}
			}
			return true
		}
		return false
	}
	for _, s := range b.List {
		if !ok(s) {
			return false
		}
	}
	return true
}
