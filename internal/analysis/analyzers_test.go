package analysis

import "testing"

func TestCollectiveFixtures(t *testing.T) {
	runFixture(t, []*Analyzer{CollectiveAnalyzer}, "collective/dirty", "collective/clean")
}

func TestMutexGuardFixtures(t *testing.T) {
	runFixture(t, []*Analyzer{MutexGuardAnalyzer}, "mutexguard/dirty", "mutexguard/clean")
}

func TestDeterminismFixtures(t *testing.T) {
	runFixture(t, []*Analyzer{DeterminismAnalyzer}, "det/core", "det/sclp", "det/other")
}

func TestHotpathFixtures(t *testing.T) {
	runFixture(t, []*Analyzer{HotpathAnalyzer}, "hotpath/dirty", "hotpath/clean")
}

func TestAPIAuditFixtures(t *testing.T) {
	runFixture(t, []*Analyzer{APIAuditAnalyzer}, "apiaudit/dirty", "apiaudit/clean")
}

// TestModuleIsLintClean is the in-tree CI gate mirror: the whole module
// must produce zero findings from the full suite — every violation is
// either fixed or carries a reviewed escape annotation.
func TestModuleIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; covered by the CI lint step")
	}
	mod, err := LoadModule("../..")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := RunAnalyzers(mod, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
