package analysis

import (
	"regexp"
	"testing"
)

// wantRe extracts a fixture expectation from a comment: the first
// backquoted regexp after the word "want". The form is a trailing or
// standalone comment on the line the diagnostic is expected at:
//
//	c.Barrier() // want `collective Barrier called in a rank-dependent branch`
//
// The pattern may share the comment with other prose (mutexguard fixtures
// combine it with the "guarded by" annotation under test).
var wantRe = regexp.MustCompile("want `([^`]*)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// runFixture loads the given import paths from testdata/src, runs the
// analyzers over everything loaded (dependencies included, so a finding in
// a stub package fails the test too), and compares the diagnostics against
// the fixtures' want comments by (file, line, message-regexp).
func runFixture(t *testing.T, analyzers []*Analyzer, importPaths ...string) {
	t.Helper()
	mod, err := LoadPackages("testdata/src", importPaths...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", importPaths, err)
	}
	requested := make(map[string]bool, len(importPaths))
	for _, p := range importPaths {
		requested[p] = true
	}
	var wants []*expectation
	for _, pkg := range mod.Packages {
		if !requested[pkg.Path] {
			continue
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v",
							mod.Fset.Position(c.Pos()), m[1], err)
					}
					pos := mod.Fset.Position(c.Pos())
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	diags := RunAnalyzers(mod, analyzers)
outer:
	for _, d := range diags {
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				continue outer
			}
		}
		t.Errorf("unexpected finding: %s", d)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}
