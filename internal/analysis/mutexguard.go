package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// MutexGuardAnalyzer enforces documented mutex guards: a struct field whose
// doc or line comment says "guarded by <mu>" may only be accessed inside
// functions that visibly hold that mutex — a <recv>.<mu>.Lock()/RLock()
// call in the same function (closures included), or a //parhip:holds <mu>
// directive in the function's doc for the *Locked helper convention where
// the caller holds the lock. The check is deliberately flow-insensitive:
// it proves the discipline is written down and locally plausible, not that
// every interleaving is safe (-race covers that). Escape hatch:
// //lint:mutexguard-ok <reason> on the function doc (e.g. constructors
// publishing the value after setup).
var MutexGuardAnalyzer = &Analyzer{
	Name: "mutexguard",
	Doc:  "accesses to fields documented 'guarded by <mu>' must hold that mutex",
	Run:  runMutexGuard,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

func runMutexGuard(p *Pass) {
	guards := collectGuards(p)
	if len(guards) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedAccesses(p, fd, guards)
		}
	}
}

// collectGuards maps each annotated field object to the name of its
// guarding mutex, validating that the mutex is a sibling field.
func collectGuards(p *Pass) map[*types.Var]string {
	guards := map[*types.Var]string{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			names := map[string]bool{}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					names[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				mu := guardName(fld.Doc, fld.Comment)
				if mu == "" {
					continue
				}
				if !names[mu] {
					p.Reportf(fld.Pos(), "field documented as guarded by %q, but the struct has no such field", mu)
					continue
				}
				for _, name := range fld.Names {
					if v, ok := p.Info.Defs[name].(*types.Var); ok {
						guards[v] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardName(groups ...*ast.CommentGroup) string {
	for _, g := range groups {
		if g == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(g.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkGuardedAccesses reports guarded-field accesses in fd made without
// the required mutex held.
func checkGuardedAccesses(p *Pass, fd *ast.FuncDecl, guards map[*types.Var]string) {
	if docHas(fd.Doc, "//lint:mutexguard-ok") {
		return
	}
	held := heldMutexes(p, fd)
	reported := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := p.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		v, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		mu, guarded := guards[v]
		if !guarded || held[mu] {
			return true
		}
		if p.lintOK("mutexguard", sel.Pos()) {
			return true
		}
		// One report per (function, field) keeps a missing lock from
		// flooding the output.
		key := fd.Name.Name + "." + v.Name()
		if reported[key] {
			return true
		}
		reported[key] = true
		p.Reportf(sel.Pos(),
			"%s accesses %s (guarded by %s) without holding %s: lock it, or annotate the function //parhip:holds %s if callers hold it",
			fd.Name.Name, v.Name(), mu, mu, mu)
		return true
	})
}

// heldMutexes returns the set of mutex field names fd visibly holds:
// declared via //parhip:holds <mu>, or locked anywhere in the body
// (x.<mu>.Lock / x.<mu>.RLock, closures included — flow-insensitive).
func heldMutexes(p *Pass, fd *ast.FuncDecl) map[string]bool {
	held := map[string]bool{}
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if rest, ok := strings.CutPrefix(c.Text, "//parhip:holds "); ok {
				for _, mu := range strings.Fields(rest) {
					held[mu] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if muSel, ok := sel.X.(*ast.SelectorExpr); ok {
			held[muSel.Sel.Name] = true
		} else if id, ok := sel.X.(*ast.Ident); ok {
			held[id.Name] = true
		}
		return true
	})
	return held
}
