// Package clean holds the sanctioned mutex-guard shapes.
package clean

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// newCounter touches the field before the value is published; the escape
// hatch documents why no lock is needed.
//
//lint:mutexguard-ok construction: the counter is not yet shared
func newCounter(seed int) *counter {
	c := &counter{}
	c.n = seed
	return c
}

// Add holds the documented mutex for the access.
func (c *counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
}

// Snapshot locks inside a closure; the check is flow-insensitive and
// accepts a lock anywhere in the function body.
func (c *counter) Snapshot() int {
	var n int
	func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		n = c.n
	}()
	return n
}

// addLocked follows the *Locked convention: the caller holds mu.
//
//parhip:holds mu
func (c *counter) addLocked(d int) {
	c.n += d
}

// Double uses the caller-holds helper under the lock.
func (c *counter) Double() {
	c.mu.Lock()
	c.addLocked(c.n)
	c.mu.Unlock()
}

var _ = newCounter
