// Package dirty seeds mutex-guard violations.
package dirty

import "sync"

type counter struct {
	mu   sync.Mutex
	n    int // guarded by mu
	misc int // guarded by lock; want `guarded by "lock", but the struct has no such field`
}

// Add locks the documented mutex before touching the field.
func (c *counter) Add(d int) {
	c.mu.Lock()
	c.n += d
	c.misc++
	c.mu.Unlock()
}

// Peek reads the guarded field without the lock.
func (c *counter) Peek() int {
	return c.n // want `Peek accesses n \(guarded by mu\) without holding mu`
}
