// Package dirty seeds every allocation pattern the hotpath analyzer
// forbids inside //parhip:hotpath functions.
package dirty

import (
	"fmt"
	"sync"
)

func sum(xs ...int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

func sink(v interface{}) {}

func helper() {}

// Hot violates every hot-path rule.
//
//parhip:hotpath
func Hot(a, b int64) string {
	s := sum(a, b)              // want `variadic call in a hot path`
	msg := fmt.Sprintf("%d", s) // want `fmt.Sprintf in a hot path`
	sink(s)                     // want `basic value boxed into interface`
	var v interface{}
	v = s // want `basic value boxed into interface`
	_ = v
	f := func() int64 { return s } // want `closure stored in a hot path`
	_ = f
	go helper() // want `go statement in a hot path`
	return msg
}

// locked embeds a mutex the way the production structs do (obs.Tracer,
// the server's jobManager): calls through the field still resolve to
// sync.(*Mutex).Lock.
type locked struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	n   int64
	out chan int64
}

// HotLocked violates the synchronization rules.
//
//parhip:hotpath
func (l *locked) HotLocked(x int64) int64 {
	l.mu.Lock() // want `sync.Mutex.Lock in a hot path`
	l.n += x
	l.mu.Unlock() // want `sync.Mutex.Unlock in a hot path`
	l.rw.RLock()  // want `sync.RWMutex.RLock in a hot path`
	n := l.n
	l.rw.RUnlock() // want `sync.RWMutex.RUnlock in a hot path`
	l.out <- n     // want `channel send in a hot path`
	return n
}

// Cold is unannotated: the same patterns pass without comment.
func Cold(a, b int64) string {
	return fmt.Sprintf("%d", sum(a, b))
}

// ColdLocked is unannotated: locking outside hot paths is fine.
func (l *locked) ColdLocked(x int64) {
	l.mu.Lock()
	l.n += x
	l.mu.Unlock()
	l.out <- x
}
