// Package dirty seeds every allocation pattern the hotpath analyzer
// forbids inside //parhip:hotpath functions.
package dirty

import "fmt"

func sum(xs ...int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

func sink(v interface{}) {}

func helper() {}

// Hot violates every hot-path rule.
//
//parhip:hotpath
func Hot(a, b int64) string {
	s := sum(a, b)              // want `variadic call in a hot path`
	msg := fmt.Sprintf("%d", s) // want `fmt.Sprintf in a hot path`
	sink(s)                     // want `basic value boxed into interface`
	var v interface{}
	v = s // want `basic value boxed into interface`
	_ = v
	f := func() int64 { return s } // want `closure stored in a hot path`
	_ = f
	go helper() // want `go statement in a hot path`
	return msg
}

// Cold is unannotated: the same patterns pass without comment.
func Cold(a, b int64) string {
	return fmt.Sprintf("%d", sum(a, b))
}
