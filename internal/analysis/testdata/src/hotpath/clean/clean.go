// Package clean holds hot-path shapes the analyzer must accept.
package clean

import "sync"

// Grow uses builtin append: a compiler intrinsic whose variadic signature
// never materializes an argument slice.
//
//parhip:hotpath
func Grow(xs []int64, x int64) []int64 {
	xs = append(xs, x)
	if len(xs) > 4 {
		xs = xs[:4]
	}
	return xs
}

// Each takes a callback; calling through a func parameter is not boxing.
//
//parhip:hotpath
func Each(xs []int64, f func(int64)) {
	for _, x := range xs {
		f(x)
	}
}

// SumEach passes a literal directly as a call argument: those are commonly
// inlined and deliberately not flagged.
//
//parhip:hotpath
func SumEach(xs []int64) int64 {
	var s int64
	Each(xs, func(x int64) { s += x })
	return s
}

// Logged documents a benchmark-verified exception with the escape hatch.
//
//parhip:hotpath
func Logged(log func(args ...interface{}), n int64) {
	//lint:hotpath-ok fixture: verified allocation-free by benchmark
	log("n", n)
}

// guarded documents the escape hatch for a deliberate, uncontended lock
// (the tracer's span buffer: a disabled tracer never reaches it).
type guarded struct {
	mu sync.Mutex
	n  int64
}

//parhip:hotpath
func (g *guarded) Bump(x int64) {
	//lint:hotpath-ok fixture: lock held only in the disabled-tracer slow path
	g.mu.Lock()
	g.n += x
	//lint:hotpath-ok fixture: paired with the annotated Lock above
	g.mu.Unlock()
}
