// Package other is outside the determinism scope: wall-clock use here is
// legitimate (servers time things) and must not be flagged.
package other

import "time"

// Uptime may read the clock: "other" is not a decision package.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}
