// Package sclp sits in the determinism scope and holds the shapes the
// analyzer must accept: annotated Stats timing, commutative accumulation,
// and sorted-key iteration.
package sclp

import "sort"

// Sum is commutative integer accumulation: iteration order cannot leak.
func Sum(m map[int64]int64) int64 {
	var s int64
	for _, v := range m {
		s += v
	}
	return s
}

// CountBig mixes guarded commutative accumulation; still order-free.
func CountBig(m map[int64]int64, cut int64) int64 {
	var n int64
	for _, v := range m {
		if v > cut {
			n++
		}
	}
	return n
}

// SortedKeys iterates deterministically; collecting the keys is annotated
// because the subsequent sort removes the order dependence.
func SortedKeys(m map[int64]int64) []int64 {
	keys := make([]int64, 0, len(m))
	//lint:determinism-ok keys are sorted before any use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
