// Package core sits in the determinism scope (import-path base "core") and
// seeds every forbidden nondeterminism source.
package core

import (
	"math/rand"
	"time"
)

// Jitter leaks wall-clock into a decision value.
func Jitter() int64 {
	t := time.Now() // want `time.Now in a determinism-scoped package`
	return t.Unix()
}

// Elapsed leaks a wall-clock interval.
func Elapsed(start time.Time) bool {
	return time.Since(start) > time.Second // want `time.Since in a determinism-scoped package`
}

// Shuffle uses the unseeded global math/rand stream.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand`
}

// Collect leaks map iteration order into a slice.
func Collect(m map[int64]int64) []int64 {
	var out []int64
	for k := range m { // want `map iteration order is randomized`
		out = append(out, k)
	}
	return out
}
