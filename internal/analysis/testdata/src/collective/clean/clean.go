// Package clean holds SPMD shapes the collective analyzer must accept.
package clean

import "mpi"

// Symmetric issues the same collectives on every rank; the rank-dependent
// branch does only local work.
func Symmetric(c *mpi.Comm) int64 {
	var local int64
	if c.Rank() == 0 {
		local = 1
	}
	c.Barrier()
	return c.AllreduceSum1(local)
}

// Replicated branches on an allreduced value: collective results are
// identical on every rank by the SPMD contract, so the barrier cannot
// diverge even though the reduced value derives from the rank.
func Replicated(c *mpi.Comm) {
	n := c.AllreduceSum1(int64(c.Rank()))
	if n > 0 {
		c.Barrier()
	}
}

// TransportSymmetric drains the transport error identically on every rank
// (the abort broadcast replicates the failure world-wide), so the early
// return ahead of the heartbeat barrier cannot diverge: no rank-derived
// value feeds the condition.
func TransportSymmetric(c *mpi.Comm) {
	if c.Err() != nil {
		return
	}
	c.Barrier()
}

// Annotated documents a reviewed exception with the escape hatch.
func Annotated(c *mpi.Comm) {
	if c.Rank() == 0 {
		//lint:collective-ok fixture: reviewed exception
		c.Barrier()
	}
}
