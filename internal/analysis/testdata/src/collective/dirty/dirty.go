// Package dirty seeds every shape of SPMD collective divergence the
// analyzer must catch.
package dirty

import "mpi"

// Leader gathers only on rank zero: the other ranks never enter the
// collective and deadlock.
func Leader(c *mpi.Comm) []int64 {
	if c.Rank() == 0 {
		return c.Allgatherv(nil) // want `collective Allgatherv called in a rank-dependent branch`
	}
	return nil
}

// EarlyReturn diverges via the classic guard-return shape.
func EarlyReturn(c *mpi.Comm) {
	if c.Rank() != 0 {
		return
	}
	c.Barrier() // want `collective Barrier called in a rank-dependent branch`
}

// Tainted branches on a variable derived from the rank.
func Tainted(c *mpi.Comm) {
	leader := c.Rank() == 0
	if leader {
		c.Barrier() // want `collective Barrier called in a rank-dependent branch`
	}
}

// Broadcast is a module-level collective: calls to it are checked like the
// mpi primitives.
//
//parhip:collective
func Broadcast(c *mpi.Comm) {
	c.Bcast(nil)
}

// Indirect diverges through the annotated module collective.
func Indirect(c *mpi.Comm) {
	if c.Rank() == 0 {
		Broadcast(c) // want `collective Broadcast called in a rank-dependent branch`
	}
}

// TransportDrain mishandles a transport error path: only rank 0 checks the
// transport error and bails out before the world-wide heartbeat barrier,
// leaving every other rank parked in it until the liveness timeout fires.
// The rank taint must survive the compound condition.
func TransportDrain(c *mpi.Comm) {
	if c.Rank() == 0 && c.Err() != nil {
		return
	}
	c.Barrier() // want `collective Barrier called in a rank-dependent branch`
}

// InClosure diverges inside a world.Run body: function literals are scanned
// as functions in their own right.
func InClosure(w *mpi.World) {
	w.Run(func(c *mpi.Comm) {
		if c.Rank() == 0 {
			c.Barrier() // want `collective Barrier called in a rank-dependent branch`
		}
	})
}
