// Package clean holds the sanctioned API shapes: documented wrapper types,
// the NewPartition adapter, deprecations and annotated escapes.
package clean

// Partition is the documented wrapper: a named int32-slice type passes.
type Partition []int32

// Assign returns the wrapper.
func Assign(n int) Partition { return make(Partition, n) }

// NewPartition is the sanctioned raw-slice boundary adapter.
func NewPartition(raw []int32) Partition { return Partition(raw) }

// Legacy returns a raw slice for v1 compatibility.
//
// Deprecated: use Assign.
func Legacy(n int) []int32 { return make([]int32, n) }

// Ranks returns PE ranks, not a partition; the escape documents that.
//
//lint:rawslice-ok rank list, not a partition
func Ranks() []int32 { return nil }

// unexported declarations are outside the audit.
func unexported() []int32 { return nil }

var _ = unexported
