// Package dirty seeds bare-[]int32 leaks through an exported API.
package dirty

// Assign returns a raw partition slice.
func Assign(n int) []int32 { // want `exported Assign has a bare \[\]int32`
	return make([]int32, n)
}

// Apply takes a raw partition slice.
func Apply(part []int32) { // want `exported Apply has a bare \[\]int32`
}

// Config carries a raw partition field.
type Config struct {
	K       int
	Initial []int32 // want `exported field Config.\[Initial\] carries a bare \[\]int32`
}

// Picker is an exported func type with a raw partition parameter.
type Picker func(part []int32) int32 // want `exported func type Picker has a bare \[\]int32`
