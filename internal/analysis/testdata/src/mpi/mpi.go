// Package mpi is a fixture stub of the project's communicator. The
// collective analyzer keys on the package *name* and the primitive method
// names, so this stub exercises the same code paths as the real
// internal/mpi without dragging the full transport into fixture loads.
package mpi

// Comm is the per-rank handle.
type Comm struct {
	rank, size int
}

// Rank returns this rank's index.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.size }

// Barrier blocks until every rank arrives.
func (c *Comm) Barrier() {}

// Err reports the first transport failure observed by this process's
// world (nil while healthy). Not a collective: it reads local state.
func (c *Comm) Err() error { return nil }

// Bcast broadcasts from rank 0.
func (c *Comm) Bcast(xs []int64) {}

// Allgatherv concatenates every rank's contribution.
func (c *Comm) Allgatherv(xs []int64) []int64 { return xs }

// AllreduceSum1 sums a scalar across ranks.
func (c *Comm) AllreduceSum1(x int64) int64 { return x }

// World runs an SPMD body on every rank.
type World struct{ comms []*Comm }

// Run invokes f once per rank.
func (w *World) Run(f func(c *Comm)) {
	for _, c := range w.comms {
		f(c)
	}
}
