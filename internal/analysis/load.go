package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked module package.
type Package struct {
	Path  string // import path ("repro", "repro/internal/mpi", ...)
	Dir   string
	Files []*ast.File // non-test files only
	Types *types.Package
	Info  *types.Info
}

// Module is the loaded view of the whole module: every package parsed and
// type-checked, plus the module-wide collective-function index.
type Module struct {
	Fset     *token.FileSet
	Packages []*Package // topological order (dependencies first)

	collective map[*types.Func]bool
}

// mpiCollectives names the communication primitives of internal/mpi that
// are collective: every rank of the world (or, for NeighborAlltoallv, the
// plan topology) must call them in the same order. Point-to-point
// Send/Recv/TryRecv are deliberately absent.
var mpiCollectives = map[string]bool{
	"Barrier":           true,
	"Bcast":             true,
	"BcastI64":          true,
	"Gather":            true,
	"Allgatherv":        true,
	"Alltoallv":         true,
	"AlltoallvFunc":     true,
	"AllreduceSum":      true,
	"AllreduceMax":      true,
	"AllreduceMin":      true,
	"AllreduceSum1":     true,
	"AllreduceMax1":     true,
	"AllreduceMin1":     true,
	"ExScanSum":         true,
	"NeighborAlltoallv": true,
}

// IsCollective reports whether fn must be issued in the same order on every
// rank: an mpi primitive from the table above, or any module function whose
// doc comment carries the //parhip:collective directive.
func (m *Module) IsCollective(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Name() == "mpi" && mpiCollectives[fn.Name()] {
		return true
	}
	return m.collective[fn]
}

// buildCollectiveIndex scans every package's function docs for the
// //parhip:collective directive.
func (m *Module) buildCollectiveIndex() {
	m.collective = make(map[*types.Func]bool)
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !docHas(fd.Doc, "//parhip:collective") {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					m.collective[obj] = true
				}
			}
		}
	}
}

// disableCgo makes go/build (and hence the source importer) resolve the
// standard library in its pure-Go configuration, so type-checking net and
// friends from GOROOT source never needs a C toolchain. build.Default is
// package-global state initialized from the environment before main; the
// mutation is process-wide and idempotent.
var disableCgo = sync.Once{}

// stdImporter returns the shared source-code importer for standard-library
// packages. Source mode parses GOROOT — always shipped with the toolchain —
// so the loader works without pre-compiled export data.
func stdImporter(fset *token.FileSet) types.Importer {
	disableCgo.Do(func() { build.Default.CgoEnabled = false })
	return importer.ForCompiler(fset, "source", nil)
}

// moduleImporter resolves module-local import paths from the packages
// loaded so far and everything else through the stdlib source importer.
type moduleImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := mi.local[path]; ok {
		return p, nil
	}
	return mi.std.Import(path)
}

// LoadModule parses and type-checks every package of the module rooted at
// root (the directory containing go.mod). Test files are excluded: the
// invariants guard production code, and test packages routinely use
// time.Now or raw slices as fixtures.
func LoadModule(root string) (*Module, error) {
	modName, err := moduleName(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	parsed := make(map[string]*parsedPkg, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modName
		if rel != "." {
			path = modName + "/" + filepath.ToSlash(rel)
		}
		pp, err := parseDir(fset, dir, path)
		if err != nil {
			return nil, err
		}
		if pp != nil {
			parsed[path] = pp
		}
	}
	return check(fset, parsed)
}

// LoadPackages parses and type-checks the packages found under the given
// gopath-style source root (dir/<importpath>/*.go), resolving imports
// between them. It is the fixture loader used by analysistest.
func LoadPackages(srcRoot string, importPaths ...string) (*Module, error) {
	fset := token.NewFileSet()
	parsed := make(map[string]*parsedPkg)
	var add func(path string) error
	add = func(path string) error {
		if _, ok := parsed[path]; ok {
			return nil
		}
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			return nil // not local: resolved as stdlib at check time
		}
		pp, err := parseDir(fset, dir, path)
		if err != nil {
			return err
		}
		if pp == nil {
			return fmt.Errorf("analysis: no Go files in %s", dir)
		}
		parsed[path] = pp
		for _, imp := range pp.imports {
			if err := add(imp); err != nil {
				return err
			}
		}
		return nil
	}
	for _, p := range importPaths {
		if err := add(p); err != nil {
			return nil, err
		}
	}
	return check(fset, parsed)
}

type parsedPkg struct {
	path    string
	dir     string
	files   []*ast.File
	imports []string
}

// parseDir parses the non-test Go files of dir. It returns nil when the
// directory holds no buildable Go files.
func parseDir(fset *token.FileSet, dir, path string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pp := &parsedPkg{path: path, dir: dir}
	seen := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pp.files = append(pp.files, f)
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if !seen[p] {
				seen[p] = true
				pp.imports = append(pp.imports, p)
			}
		}
	}
	if len(pp.files) == 0 {
		return nil, nil
	}
	sort.Strings(pp.imports)
	return pp, nil
}

// check type-checks the parsed packages in dependency order.
func check(fset *token.FileSet, parsed map[string]*parsedPkg) (*Module, error) {
	mi := &moduleImporter{
		local: make(map[string]*types.Package, len(parsed)),
		std:   stdImporter(fset),
	}
	mod := &Module{Fset: fset}
	// Topological order over module-local imports (stdlib edges resolve
	// through the importer and cannot cycle back into the module).
	state := make(map[string]int, len(parsed)) // 0 new, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		pp, ok := parsed[path]
		if !ok || state[path] == 2 {
			return nil
		}
		if state[path] == 1 {
			return fmt.Errorf("analysis: import cycle through %s", path)
		}
		state[path] = 1
		for _, imp := range pp.imports {
			if err := visit(imp); err != nil {
				return err
			}
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: mi}
		tpkg, err := conf.Check(path, fset, pp.files, info)
		if err != nil {
			return fmt.Errorf("analysis: type-checking %s: %w", path, err)
		}
		mi.local[path] = tpkg
		mod.Packages = append(mod.Packages, &Package{
			Path:  path,
			Dir:   pp.dir,
			Files: pp.files,
			Types: tpkg,
			Info:  info,
		})
		state[path] = 2
		return nil
	}
	paths := make([]string, 0, len(parsed))
	for p := range parsed {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	mod.buildCollectiveIndex()
	return mod, nil
}

// moduleName extracts the module path from a go.mod file.
func moduleName(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if name, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(name), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// packageDirs lists every directory under root holding Go files, skipping
// hidden trees and testdata (fixtures are loaded by analysistest, not here).
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}
