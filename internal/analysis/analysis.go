// Package analysis is the project's static-analysis framework: a small,
// dependency-free driver (go/parser + go/types + go/importer, no
// golang.org/x/tools) plus the five project-invariant analyzers wired into
// CI through cmd/parhiplint and into `go test` through the fixture tests.
//
// The framework mechanizes invariants the compiler cannot see:
//
//   - collective  — SPMD collective discipline: every rank must issue mpi
//     collectives in the same order, so a collective call inside a
//     rank-dependent branch is a latent deadlock.
//   - mutexguard  — fields documented "guarded by <mu>" may only be touched
//     by functions that lock that mutex (or are annotated as holding it).
//   - determinism — core/sclp/contract/evo decisions must be reproducible:
//     no time.Now, no global math/rand, no order-dependent map iteration.
//   - hotpath     — functions annotated //parhip:hotpath must stay
//     allocation-free: no variadic calls, fmt, int boxing, stored closures.
//   - apiaudit    — partitions cross exported APIs under documented names,
//     never as bare []int32 (the api_audit_test.go rule, all packages).
//
// Escape hatches are line- or declaration-scoped comments of the form
// //lint:<analyzer>-ok <reason>; the reason is mandatory by convention and
// reviewed like code. Two positive annotations drive analyzers:
// //parhip:hotpath (function doc) opts a function into the hotpath checks,
// and //parhip:collective (function doc) marks a function as an SPMD
// collective so calls to it are checked like mpi primitives.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for file:line reporting.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// IsCollective reports whether fn is an SPMD collective: an mpi
	// primitive or a module function annotated //parhip:collective. Set by
	// the driver from the whole-module index; never nil.
	IsCollective func(fn *types.Func) bool

	directives map[string]map[int][]string // file -> line -> raw comment texts
	report     func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// buildDirectives indexes every comment by (file, line) so escape hatches
// can be resolved in O(1) per candidate position.
func (p *Pass) buildDirectives() {
	p.directives = make(map[string]map[int][]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := p.Fset.Position(c.Pos())
				m := p.directives[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					p.directives[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], c.Text)
			}
		}
	}
}

// lintOK reports whether a //lint:<name>-ok escape hatch covers pos: on the
// same line (trailing comment) or the line directly above it.
func (p *Pass) lintOK(name string, pos token.Pos) bool {
	needle := "//lint:" + name + "-ok"
	position := p.Fset.Position(pos)
	lines := p.directives[position.Filename]
	for _, l := range []int{position.Line, position.Line - 1} {
		for _, text := range lines[l] {
			if strings.HasPrefix(text, needle) {
				return true
			}
		}
	}
	return false
}

// docHas reports whether a comment group contains a comment line starting
// with the given directive prefix (e.g. "//parhip:hotpath").
func docHas(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, directive) {
			return true
		}
	}
	return false
}

// RunAnalyzers executes every analyzer over every package of the module and
// returns the findings sorted by position.
func RunAnalyzers(mod *Module, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range mod.Packages {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:     a,
				Fset:         mod.Fset,
				Files:        pkg.Files,
				Pkg:          pkg.Types,
				Info:         pkg.Info,
				IsCollective: mod.IsCollective,
				report:       func(d Diagnostic) { diags = append(diags, d) },
			}
			pass.buildDirectives()
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		CollectiveAnalyzer,
		MutexGuardAnalyzer,
		DeterminismAnalyzer,
		HotpathAnalyzer,
		APIAuditAnalyzer,
	}
}
