package analysis

import (
	"go/ast"
	"go/types"
)

// CollectiveAnalyzer flags mpi collective calls that are only reachable on
// a subset of ranks. The SPMD execution model (DESIGN.md §7) requires every
// rank of a world to issue the same collectives in the same order; a
// collective lexically inside a branch whose condition derives from
// comm.Rank() — or following a rank-dependent early return — deadlocks the
// ranks that skip it. Escape hatch: //lint:collective-ok <reason> on the
// call (or the line above it) for deliberately symmetric constructs.
var CollectiveAnalyzer = &Analyzer{
	Name: "collective",
	Doc:  "flags mpi collectives reachable only on a subset of ranks (SPMD divergence)",
	Run:  runCollective,
}

func runCollective(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &collectiveScan{pass: p, tainted: map[types.Object]bool{}}
			c.taint(fd.Body)
			c.scanStmts(fd.Body.List, false)
			// Function literals are scanned as functions in their own
			// right (SPMD rank bodies live in world.Run closures). Taint
			// is shared: closures capture the enclosing variables.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					c.scanStmts(fl.Body.List, false)
				}
				return true
			})
		}
	}
}

type collectiveScan struct {
	pass    *Pass
	tainted map[types.Object]bool // variables carrying rank-derived values
}

// taint records, to a fixpoint, every variable assigned (directly or
// transitively) from a Rank() call anywhere in the function body. The
// analysis is flow-insensitive: order of assignment does not matter.
func (c *collectiveScan) taint(body *ast.BlockStmt) {
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.pass.Info.Defs[id]
				if obj == nil {
					obj = c.pass.Info.Uses[id]
				}
				if obj == nil || c.tainted[obj] {
					continue
				}
				if c.rankDependent(as.Rhs[i]) {
					c.tainted[obj] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			return
		}
	}
}

// rankDependent reports whether expr mentions comm.Rank() or a tainted
// variable. Calls to collective functions sanitize: their results are
// replicated across ranks by the SPMD contract (an Allreduce of a
// rank-local value is globally identical), so branching on them cannot
// diverge — without this, a rank-seeded RNG would taint every multilevel
// loop downstream of the first contraction.
func (c *collectiveScan) rankDependent(expr ast.Expr) bool {
	dep := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Rank" {
				dep = true
				return false
			}
			if fn := calleeFunc(c.pass.Info, n); fn != nil && c.pass.IsCollective(fn) {
				return false
			}
		case *ast.Ident:
			if obj := c.pass.Info.Uses[n]; obj != nil && c.tainted[obj] {
				dep = true
				return false
			}
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return dep
}

// scanStmts walks a statement list. rankCtx means control flow reaching
// these statements already diverged across ranks — every collective call is
// then a finding. A rank-dependent branch that terminates (return/break/
// continue) flips rankCtx for the remainder of the enclosing list: the
// classic `if rank != 0 { return }; Barrier()` divergence.
func (c *collectiveScan) scanStmts(stmts []ast.Stmt, rankCtx bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.IfStmt:
			dep := rankCtx || c.rankDependent(s.Cond)
			c.reportStmt(s.Init, rankCtx)
			c.scanStmts(s.Body.List, dep)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				c.scanStmts(e.List, dep)
			case *ast.IfStmt:
				c.scanStmts([]ast.Stmt{e}, dep)
			}
			if dep && !rankCtx && (terminates(s.Body) || elseTerminates(s.Else)) {
				rankCtx = true
			}
		case *ast.SwitchStmt:
			dep := rankCtx || (s.Tag != nil && c.rankDependent(s.Tag))
			for _, cc := range s.Body.List {
				clause := cc.(*ast.CaseClause)
				cdep := dep
				for _, e := range clause.List {
					if c.rankDependent(e) {
						cdep = true
					}
				}
				c.scanStmts(clause.Body, cdep)
			}
		case *ast.ForStmt:
			dep := rankCtx || (s.Cond != nil && c.rankDependent(s.Cond))
			c.scanStmts(s.Body.List, dep)
		case *ast.RangeStmt:
			c.scanStmts(s.Body.List, rankCtx)
		case *ast.BlockStmt:
			c.scanStmts(s.List, rankCtx)
		case *ast.LabeledStmt:
			c.scanStmts([]ast.Stmt{s.Stmt}, rankCtx)
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				c.scanStmts(cc.(*ast.CommClause).Body, rankCtx)
			}
		case *ast.TypeSwitchStmt:
			for _, cc := range s.Body.List {
				c.scanStmts(cc.(*ast.CaseClause).Body, rankCtx)
			}
		default:
			c.reportStmt(stmt, rankCtx)
		}
	}
}

// reportStmt flags every collective call inside stmt when rankCtx holds.
// Function literals are skipped: defining a closure issues no collective;
// its body is analyzed when scanning the enclosing function finds calls.
func (c *collectiveScan) reportStmt(stmt ast.Stmt, rankCtx bool) {
	if stmt == nil || !rankCtx {
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(c.pass.Info, call)
		if fn == nil || !c.pass.IsCollective(fn) {
			return true
		}
		if c.pass.lintOK("collective", call.Pos()) {
			return true
		}
		c.pass.Reportf(call.Pos(),
			"collective %s called in a rank-dependent branch: ranks that skip it deadlock the others; hoist it out or annotate //lint:collective-ok <reason>",
			fn.Name())
		return true
	})
}

// calleeFunc resolves the called function object, when statically known.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return obj
		}
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			return obj
		}
	}
	return nil
}

// terminates reports whether a block's statement list always leaves the
// enclosing list early (lexical approximation: any top-level return or
// branch statement). panic deliberately does not count: a panicking rank
// takes the whole process down, so validation guards like
// `if rankDependent { panic(...) }` cannot strand peers in a collective.
func terminates(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		switch s.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return true
		}
	}
	return false
}

func elseTerminates(e ast.Stmt) bool {
	switch e := e.(type) {
	case *ast.BlockStmt:
		return terminates(e)
	case *ast.IfStmt:
		return terminates(e.Body) || elseTerminates(e.Else)
	}
	return false
}
