package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// APIAuditAnalyzer generalizes the root package's v2 API audit (previously
// a hand-rolled AST walk in api_audit_test.go) to every package: no
// exported, non-deprecated declaration may accept, return or carry a bare
// []int32. Partitions travel under documented names — *parhip.Partition at
// the public boundary, partition.Partition and friends internally — so
// that a slice of block IDs is never confused with a slice of anything
// else. Named types whose underlying is []int32 pass: the rule targets
// anonymous slices, not the wrappers.
//
// Escapes: "Deprecated:" markers (v1 compatibility), the NewPartition
// boundary adapter, and //lint:rawslice-ok <reason> for internal SPMD
// plumbing where the raw assignment slice is the working representation.
var APIAuditAnalyzer = &Analyzer{
	Name: "apiaudit",
	Doc:  "exported declarations must not carry bare []int32 partitions",
	Run:  runAPIAudit,
}

// rawSliceAllowlist names the sanctioned raw-assignment adapters: the
// single entry points wrapping a raw slice into the value type.
var rawSliceAllowlist = map[string]bool{
	"NewPartition": true,
}

func runAPIAudit(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				auditFuncDecl(p, d)
			case *ast.GenDecl:
				auditGenDecl(p, d)
			}
		}
	}
}

func isDeprecated(groups ...*ast.CommentGroup) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if strings.Contains(c.Text, "Deprecated:") {
				return true
			}
		}
	}
	return false
}

// hasBareInt32Slice reports whether the type expression contains a literal
// []int32 (named int32-slice types pass — the point is a documented name).
func hasBareInt32Slice(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		arr, ok := n.(*ast.ArrayType)
		if !ok || arr.Len != nil {
			return true
		}
		if id, ok := arr.Elt.(*ast.Ident); ok && id.Name == "int32" {
			found = true
			return false
		}
		return true
	})
	return found
}

func fieldsHaveBareInt32(fl *ast.FieldList) bool {
	if fl == nil {
		return false
	}
	for _, f := range fl.List {
		if hasBareInt32Slice(f.Type) {
			return true
		}
	}
	return false
}

// receiverExported reports whether a method's receiver base type is
// exported; methods on unexported types are not part of the package API.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func auditFuncDecl(p *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() || !receiverExported(d) ||
		isDeprecated(d.Doc) || rawSliceAllowlist[d.Name.Name] ||
		p.lintOK("rawslice", d.Pos()) {
		return
	}
	if fieldsHaveBareInt32(d.Type.Params) || fieldsHaveBareInt32(d.Type.Results) {
		p.Reportf(d.Pos(),
			"exported %s has a bare []int32 in its signature; use a documented partition type, deprecate it, or annotate //lint:rawslice-ok <reason>",
			d.Name.Name)
	}
}

func auditGenDecl(p *Pass, d *ast.GenDecl) {
	if d.Tok != token.TYPE && d.Tok != token.VAR {
		return
	}
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok || !ts.Name.IsExported() ||
			isDeprecated(d.Doc, ts.Doc, ts.Comment) || p.lintOK("rawslice", ts.Pos()) {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			// Non-struct named types (e.g. Clustering) are the documented
			// wrappers the rule asks for — but a func type with a bare
			// []int32 parameter still counts.
			if ft, isFunc := ts.Type.(*ast.FuncType); isFunc {
				if fieldsHaveBareInt32(ft.Params) || fieldsHaveBareInt32(ft.Results) {
					p.Reportf(ts.Pos(), "exported func type %s has a bare []int32", ts.Name.Name)
				}
			}
			continue
		}
		for _, f := range st.Fields.List {
			if isDeprecated(f.Doc, f.Comment) || !hasBareInt32Slice(f.Type) ||
				p.lintOK("rawslice", f.Pos()) {
				continue
			}
			exported := false
			for _, n := range f.Names {
				if n.IsExported() {
					exported = true
				}
			}
			if exported {
				p.Reportf(f.Pos(),
					"exported field %s.%v carries a bare []int32; use a documented partition type, deprecate it, or annotate //lint:rawslice-ok <reason>",
					ts.Name.Name, f.Names)
			}
		}
	}
}
