package analysis

import (
	"go/ast"
	"go/types"
)

// HotpathAnalyzer keeps functions annotated //parhip:hotpath free of the
// allocation patterns that PR 6's zero-alloc design work eliminated by
// hand (the tracer's fixed-arity End1/2/3 instead of variadics, value-only
// ghost exchange). Inside an annotated function it flags:
//
//   - variadic calls passing arguments (the call site allocates the
//     argument slice — the exact escape the tracer API avoids);
//   - any call into package fmt (formatting allocates);
//   - boxing an integer/float/bool into an interface (call arguments,
//     assignments, returns);
//   - function literals in stored positions (assigned, returned, placed in
//     a composite or channel: those always escape to the heap; literals
//     passed directly as call arguments are commonly inlined and are not
//     flagged) and go statements;
//   - sync.Mutex / sync.RWMutex lock operations (Lock, Unlock, RLock,
//     RUnlock, TryLock, TryRLock): a contended lock parks the goroutine —
//     the worksharing kernels (PR 9) keep their inner loops lock-free by
//     design, with disjoint writes and a sequential commit pass;
//   - channel sends: a send synchronizes (and parks when the buffer is
//     full), which belongs at superstep boundaries, not inside kernels.
//
// The analyzer is an upper bound, not a proof: the alloc-ratio benchmarks
// (obs TestNilTracerZeroAllocs, sclp TestExchangeLabelsAllocRatio) remain
// the ground truth. A pattern verified cheap by benchmark can be annotated
// //lint:hotpath-ok <reason>.
var HotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "forbids allocation patterns in functions annotated //parhip:hotpath",
	Run:  runHotpath,
}

func runHotpath(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !docHas(fd.Doc, "//parhip:hotpath") {
				continue
			}
			checkHotpathBody(p, fd)
		}
	}
}

func checkHotpathBody(p *Pass, fd *ast.FuncDecl) {
	report := func(n ast.Node, format string, args ...any) {
		if !p.lintOK("hotpath", n.Pos()) {
			p.Reportf(n.Pos(), format, args...)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, n, report)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					checkBoxing(p, n.Lhs[i], rhs, report)
				}
				if fl, ok := rhs.(*ast.FuncLit); ok {
					report(fl, "closure stored in a hot path: the function literal escapes to the heap")
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if fl, ok := res.(*ast.FuncLit); ok {
					report(fl, "closure returned from a hot path: the function literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				e := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if fl, ok := e.(*ast.FuncLit); ok {
					report(fl, "closure stored in a composite literal in a hot path")
				}
			}
		case *ast.SendStmt:
			report(n, "channel send in a hot path: sends synchronize and can park the goroutine")
		case *ast.GoStmt:
			report(n, "go statement in a hot path: goroutine spawn allocates")
		}
		return true
	})
}

func checkHotCall(p *Pass, call *ast.CallExpr, report func(ast.Node, string, ...any)) {
	if isBuiltinCall(p, call) {
		// append/copy/len and friends are compiler intrinsics: append's
		// variadic signature never materializes an argument slice.
		return
	}
	fn := calleeFunc(p.Info, call)
	if fn != nil {
		if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
			report(call, "fmt.%s in a hot path: formatting allocates", fn.Name())
			return
		}
		if recv := mutexLockOp(fn); recv != "" {
			report(call, "sync.%s.%s in a hot path: a contended lock parks the goroutine (restructure for disjoint writes + sequential commit)", recv, fn.Name())
			return
		}
	}
	sig := calleeSignature(p.Info, call)
	if sig == nil {
		return
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= sig.Params().Len() {
		report(call, "variadic call in a hot path allocates the argument slice (use a fixed-arity variant)")
	}
	// Interface boxing at argument positions.
	n := sig.Params().Len()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis.IsValid() {
				continue
			}
			if s, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
				paramType = s.Elem()
			}
		case i < n:
			paramType = sig.Params().At(i).Type()
		}
		if paramType != nil && boxesBasic(p, paramType, arg) {
			report(arg, "basic value boxed into interface in a hot path (argument escapes to the heap)")
		}
	}
}

// mutexLockOp returns the receiver type name ("Mutex" or "RWMutex") when
// fn is a lock operation on a sync mutex, and "" otherwise. Calls through
// an embedded mutex field (m.mu.Lock()) resolve to the same *types.Func,
// so they are caught too.
func mutexLockOp(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil || pkg.Path() != "sync" {
		return ""
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	switch name := named.Obj().Name(); name {
	case "Mutex", "RWMutex":
		return name
	}
	return ""
}

func isBuiltinCall(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Info.Uses[id]
	_, builtin := obj.(*types.Builtin)
	return builtin
}

func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// checkBoxing flags assignments of basic values into interface-typed
// destinations.
func checkBoxing(p *Pass, lhs, rhs ast.Expr, report func(ast.Node, string, ...any)) {
	ltv, ok := p.Info.Types[lhs]
	if !ok {
		return
	}
	if boxesBasic(p, ltv.Type, rhs) {
		report(rhs, "basic value boxed into interface in a hot path")
	}
}

// boxesBasic reports whether assigning expr to a destination of type dst
// converts a basic (numeric/bool) value into an interface.
func boxesBasic(p *Pass, dst types.Type, expr ast.Expr) bool {
	if dst == nil {
		return false
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return false
	}
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	b, isBasic := tv.Type.Underlying().(*types.Basic)
	if !isBasic {
		return false
	}
	return b.Info()&(types.IsNumeric|types.IsBoolean) != 0
}
