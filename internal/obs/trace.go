// Package obs is the observability substrate of the repro: a low-overhead
// span tracer that serializes runs as Chrome trace-event JSON (openable in
// Perfetto / chrome://tracing, one track per simulated rank), and a small
// metrics registry (counters, gauges, fixed-bucket histograms) rendered in
// Prometheus text exposition format.
//
// The package is dependency-free (stdlib only) so every layer — mpi, dgraph,
// sclp, matchbase, core, server — can import it without cycles. Both halves
// are built around the same discipline: when observability is off it must
// cost nothing. A nil *Tracer is a valid, disabled tracer; Begin/End on it
// perform no clock reads and no allocations, so instrumentation can stay in
// superstep hot loops permanently.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// maxSpanArgs is the number of key/value arguments one span can carry. The
// fixed array keeps span recording allocation-free apart from amortized
// buffer growth.
const maxSpanArgs = 3

// Arg is one span annotation (e.g. moves per superstep, words per
// exchange). Values are int64 — every quantity the pipeline reports
// (counts, bytes, levels) is integral.
type Arg struct {
	Key string
	Val int64
}

// event is one completed span, stored in the owning rank's buffer.
type event struct {
	name  string
	start int64 // nanoseconds since the tracer epoch
	dur   int64 // nanoseconds
	args  [maxSpanArgs]Arg
	nargs int
}

// rankTrack is one rank's span buffer. Each simulated rank appends from its
// own goroutine; the mutex exists for the reader side (WriteJSON while or
// after a run) and costs one uncontended lock per span when enabled.
type rankTrack struct {
	mu     sync.Mutex
	events []event
}

// Tracer records spans on a fixed set of rank tracks. Create one with
// NewTracer when tracing is requested; pass nil everywhere otherwise — all
// methods are nil-safe no-ops, and the disabled path performs zero
// allocations and zero clock reads.
type Tracer struct {
	epoch  time.Time
	tracks []rankTrack
}

// NewTracer returns an enabled tracer with one track per rank in
// [0, ranks). Spans recorded against ranks outside the range are dropped
// (never a panic: rank counts can differ between pipeline stages).
func NewTracer(ranks int) *Tracer {
	if ranks < 1 {
		ranks = 1
	}
	return &Tracer{epoch: time.Now(), tracks: make([]rankTrack, ranks)}
}

// Ranks returns the number of rank tracks (0 for a nil tracer).
func (t *Tracer) Ranks() int {
	if t == nil {
		return 0
	}
	return len(t.tracks)
}

// Span is an in-flight span handle returned by Begin. The zero Span (from a
// nil or out-of-range tracer) is inert: End on it does nothing.
type Span struct {
	t     *Tracer
	rank  int32
	start int64
	name  string
}

// Begin opens a span named name on the given rank's track. On a nil tracer
// it returns the inert zero Span without reading the clock.
//
//parhip:hotpath
func (t *Tracer) Begin(rank int, name string) Span {
	if t == nil || rank < 0 || rank >= len(t.tracks) {
		return Span{}
	}
	return Span{t: t, rank: int32(rank), name: name, start: int64(time.Since(t.epoch))}
}

// record closes sp with the given args copied into the event buffer.
//
//parhip:hotpath
func (t *Tracer) record(sp Span, a0, a1, a2 Arg, nargs int) {
	end := int64(time.Since(t.epoch))
	tr := &t.tracks[sp.rank]
	//lint:hotpath-ok per-rank track: only that rank's goroutine ends spans, so the lock is uncontended; it guards WriteJSON racing a live run
	tr.mu.Lock()
	tr.events = append(tr.events, event{
		name:  sp.name,
		start: sp.start,
		dur:   end - sp.start,
		args:  [maxSpanArgs]Arg{a0, a1, a2},
		nargs: nargs,
	})
	//lint:hotpath-ok paired with the annotated Lock above
	tr.mu.Unlock()
}

// End closes the span with no annotations. Inert on the zero Span.
//
//parhip:hotpath
func (t *Tracer) End(sp Span) {
	if sp.t == nil {
		return
	}
	sp.t.record(sp, Arg{}, Arg{}, Arg{}, 0)
}

// End1 closes the span with one annotation. The fixed-arity End variants
// exist instead of a variadic signature so that disabled-path callers never
// construct an argument slice — escape analysis would otherwise heap-
// allocate it even when the tracer is nil.
//
//parhip:hotpath
func (t *Tracer) End1(sp Span, k string, v int64) {
	if sp.t == nil {
		return
	}
	sp.t.record(sp, Arg{k, v}, Arg{}, Arg{}, 1)
}

// End2 closes the span with two annotations.
//
//parhip:hotpath
func (t *Tracer) End2(sp Span, k1 string, v1 int64, k2 string, v2 int64) {
	if sp.t == nil {
		return
	}
	sp.t.record(sp, Arg{k1, v1}, Arg{k2, v2}, Arg{}, 2)
}

// End3 closes the span with three annotations.
//
//parhip:hotpath
func (t *Tracer) End3(sp Span, k1 string, v1 int64, k2 string, v2 int64, k3 string, v3 int64) {
	if sp.t == nil {
		return
	}
	sp.t.record(sp, Arg{k1, v1}, Arg{k2, v2}, Arg{k3, v3}, 3)
}

// SpanCount returns the total number of recorded spans across all tracks
// (0 for a nil tracer).
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	n := 0
	for r := range t.tracks {
		tr := &t.tracks[r]
		tr.mu.Lock()
		n += len(tr.events)
		tr.mu.Unlock()
	}
	return n
}

// WriteJSON renders every recorded span as a Chrome trace-event document:
//
//	{"displayTimeUnit":"ms","traceEvents":[...]}
//
// Events use the complete-event form ("ph":"X") with microsecond
// timestamps; pid 0 carries one tid per rank plus thread_name metadata, so
// Perfetto and chrome://tracing show one named track per rank. Safe to call
// while spans are still being recorded (the snapshot is per-track
// consistent).
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[]}`)
		return err
	}
	bw := &errWriter{w: w}
	bw.printf(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	for r := range t.tracks {
		if !first {
			bw.printf(",")
		}
		first = false
		bw.printf(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":"rank %d"}}`, r, r)
	}
	for r := range t.tracks {
		tr := &t.tracks[r]
		tr.mu.Lock()
		evs := make([]event, len(tr.events))
		copy(evs, tr.events)
		tr.mu.Unlock()
		for _, ev := range evs {
			bw.printf(",\n")
			bw.printf(`{"ph":"X","pid":0,"tid":%d,"name":%q,"ts":%.3f,"dur":%.3f`,
				r, ev.name, float64(ev.start)/1e3, float64(ev.dur)/1e3)
			if ev.nargs > 0 {
				bw.printf(`,"args":{`)
				for i := 0; i < ev.nargs; i++ {
					if i > 0 {
						bw.printf(",")
					}
					bw.printf(`%q:%d`, ev.args[i].Key, ev.args[i].Val)
				}
				bw.printf("}")
			}
			bw.printf("}")
		}
	}
	bw.printf("]}\n")
	return bw.err
}

// errWriter latches the first write error so the emit loop stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// SpanNames returns the distinct span names recorded on the given rank's
// track, sorted. Test helper.
func (t *Tracer) SpanNames(rank int) []string {
	if t == nil || rank < 0 || rank >= len(t.tracks) {
		return nil
	}
	tr := &t.tracks[rank]
	tr.mu.Lock()
	seen := make(map[string]bool, 8)
	for _, ev := range tr.events {
		seen[ev.name] = true
	}
	tr.mu.Unlock()
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
