package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestTraceJSONWellFormed records spans on several ranks and checks the
// serialized document parses as Chrome trace-event JSON with one metadata-
// named track per rank and correct per-event fields.
func TestTraceJSONWellFormed(t *testing.T) {
	tr := NewTracer(3)
	for rank := 0; rank < 3; rank++ {
		sp := tr.Begin(rank, "sclp.superstep")
		tr.End2(sp, "moves", int64(10*rank), "phase", 1)
		sp2 := tr.Begin(rank, "mpi.alltoallv")
		tr.End1(sp2, "words", 128)
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Name string          `json:"name"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, sb.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	metaTracks := map[int]bool{}
	spanTracks := map[int]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "thread_name" {
				t.Errorf("metadata event name = %q", ev.Name)
			}
			metaTracks[ev.Tid] = true
		case "X":
			spanTracks[ev.Tid]++
			if ev.Dur < 0 {
				t.Errorf("negative duration on %q", ev.Name)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	for rank := 0; rank < 3; rank++ {
		if !metaTracks[rank] {
			t.Errorf("rank %d missing thread_name metadata", rank)
		}
		if spanTracks[rank] != 2 {
			t.Errorf("rank %d has %d spans, want 2", rank, spanTracks[rank])
		}
	}
	if got := tr.SpanCount(); got != 6 {
		t.Errorf("SpanCount = %d, want 6", got)
	}
	names := tr.SpanNames(1)
	want := []string{"mpi.alltoallv", "sclp.superstep"}
	if len(names) != len(want) || names[0] != want[0] || names[1] != want[1] {
		t.Errorf("SpanNames(1) = %v, want %v", names, want)
	}
}

// TestTracerArgsSerialized checks span args survive the JSON round trip.
func TestTracerArgsSerialized(t *testing.T) {
	tr := NewTracer(1)
	sp := tr.Begin(0, "x")
	tr.End3(sp, "a", 1, "b", 2, "c", 3)
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"args":{"a":1,"b":2,"c":3}`) {
		t.Errorf("args not serialized: %s", sb.String())
	}
}

// TestNilTracerSafe exercises every method on a nil tracer.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin(0, "x")
	tr.End(sp)
	tr.End1(sp, "k", 1)
	tr.End2(sp, "k", 1, "k2", 2)
	tr.End3(sp, "k", 1, "k2", 2, "k3", 3)
	if tr.Ranks() != 0 || tr.SpanCount() != 0 || tr.SpanNames(0) != nil {
		t.Error("nil tracer not inert")
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"traceEvents":[]`) {
		t.Errorf("nil tracer JSON = %s", sb.String())
	}
}

// TestOutOfRangeRankDropped checks spans against out-of-range ranks are
// dropped rather than panicking.
func TestOutOfRangeRankDropped(t *testing.T) {
	tr := NewTracer(2)
	tr.End(tr.Begin(5, "x"))
	tr.End(tr.Begin(-1, "x"))
	if tr.SpanCount() != 0 {
		t.Errorf("out-of-range spans recorded: %d", tr.SpanCount())
	}
}

// TestNilTracerZeroAllocs is the acceptance check that the disabled-tracer
// path — exactly the Begin/End2 pattern used per sclp superstep — performs
// zero allocations.
func TestNilTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	moves := int64(42)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin(3, "sclp.superstep")
		tr.End2(sp, "moves", moves, "phase", 2)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestPrometheusExposition is a golden test for the text format: counter,
// gauge, func collectors, and histogram with cumulative buckets, all
// sorted by name.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("parhipd_jobs_submitted_total", "Jobs accepted.")
	g := r.NewGauge("parhipd_queue_depth", "Jobs waiting to run.")
	r.GaugeFunc("parhipd_workers_busy", "Workers currently running a job.", func() float64 { return 2 })
	h := r.NewHistogram("parhipd_job_run_seconds", "Wall time of job execution.", []float64{0.1, 1, 10})
	c.Add(5)
	c.Inc()
	g.Set(3)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.7)
	h.Observe(42)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP parhipd_job_run_seconds Wall time of job execution.
# TYPE parhipd_job_run_seconds histogram
parhipd_job_run_seconds_bucket{le="0.1"} 1
parhipd_job_run_seconds_bucket{le="1"} 3
parhipd_job_run_seconds_bucket{le="10"} 3
parhipd_job_run_seconds_bucket{le="+Inf"} 4
parhipd_job_run_seconds_sum 43.25
parhipd_job_run_seconds_count 4
# HELP parhipd_jobs_submitted_total Jobs accepted.
# TYPE parhipd_jobs_submitted_total counter
parhipd_jobs_submitted_total 6
# HELP parhipd_queue_depth Jobs waiting to run.
# TYPE parhipd_queue_depth gauge
parhipd_queue_depth 3
# HELP parhipd_workers_busy Workers currently running a job.
# TYPE parhipd_workers_busy gauge
parhipd_workers_busy 2
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", sb.String(), want)
	}
}

// TestHistogramQuantile checks quantile estimation against known bucket
// placements.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h_seconds", "test", []float64{0.01, 0.1, 1, 10})
	if _, ok := h.Quantile(0.5); ok {
		t.Error("empty histogram reported a quantile")
	}
	// 90 fast observations, 9 medium, 1 slow.
	for i := 0; i < 90; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.05)
	}
	h.Observe(5)
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if v, ok := h.Quantile(0.5); !ok || v != 0.01 {
		t.Errorf("P50 = %v (%v), want 0.01", v, ok)
	}
	if v, ok := h.Quantile(0.95); !ok || v != 0.1 {
		t.Errorf("P95 = %v (%v), want 0.1", v, ok)
	}
	if v, ok := h.Quantile(0.99); !ok || v != 0.1 {
		t.Errorf("P99 = %v (%v), want 0.1", v, ok)
	}
	if v, ok := h.Quantile(1); !ok || v != 10 {
		t.Errorf("P100 = %v (%v), want 10", v, ok)
	}
}

// TestHistogramOverflowQuantile checks the +Inf bucket reports the largest
// finite bound rather than Inf.
func TestHistogramOverflowQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h2_seconds", "test", []float64{1})
	h.Observe(100)
	if v, ok := h.Quantile(0.5); !ok || math.IsInf(v, 1) || v != 1 {
		t.Errorf("overflow quantile = %v (%v), want 1", v, ok)
	}
}

// TestDuplicateMetricPanics guards metric-name collisions at registration.
func TestDuplicateMetricPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.NewCounter("dup_total", "y")
}

// BenchmarkDisabledTracerSuperstep measures the per-superstep cost of the
// instrumentation with tracing off; the 0 allocs/op report is the
// acceptance criterion.
func BenchmarkDisabledTracerSuperstep(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(0, "sclp.superstep")
		tr.End2(sp, "moves", int64(i), "phase", 1)
	}
}

// BenchmarkEnabledTracerSuperstep is the enabled-path counterpart, for
// eyeballing the cost when tracing is on.
func BenchmarkEnabledTracerSuperstep(b *testing.B) {
	tr := NewTracer(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(0, "sclp.superstep")
		tr.End2(sp, "moves", int64(i), "phase", 1)
	}
}
