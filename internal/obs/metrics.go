package obs

import (
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics and renders them in Prometheus text
// exposition format (version 0.0.4). Collectors register once at startup;
// WritePrometheus emits them sorted by name so the output is stable for
// golden tests and scrape diffing.
type Registry struct {
	mu   sync.Mutex
	cols []collector
}

type collector interface {
	metricName() string
	write(w *errWriter)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) register(c collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.cols {
		if have.metricName() == c.metricName() {
			panic("obs: duplicate metric " + c.metricName())
		}
	}
	r.cols = append(r.cols, c)
}

// WritePrometheus renders every registered metric in text exposition
// format, sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	cols := make([]collector, len(r.cols))
	copy(cols, r.cols)
	r.mu.Unlock()
	sort.Slice(cols, func(i, j int) bool { return cols[i].metricName() < cols[j].metricName() })
	bw := &errWriter{w: w}
	for _, c := range cols {
		c.write(bw)
	}
	return bw.err
}

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Add increments the counter by d (d must be >= 0).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }

func (c *Counter) write(w *errWriter) {
	w.printf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v.Load())
}

// Gauge is a settable int64 metric.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) write(w *errWriter) {
	w.printf("# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.v.Load())
}

// funcCollector renders a value computed at scrape time. Used to expose
// state that already lives elsewhere (e.g. jobManager fields) without
// double bookkeeping.
type funcCollector struct {
	name string
	help string
	typ  string // "gauge" or "counter"
	fn   func() float64
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&funcCollector{name: name, help: help, typ: "gauge", fn: fn})
}

// CounterFunc registers a counter whose value is computed by fn at scrape
// time. fn must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&funcCollector{name: name, help: help, typ: "counter", fn: fn})
}

func (f *funcCollector) metricName() string { return f.name }

func (f *funcCollector) write(w *errWriter) {
	w.printf("# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		f.name, f.help, f.name, f.typ, f.name, formatFloat(f.fn()))
}

// Histogram is a fixed-bucket histogram of float64 observations (typically
// seconds). Buckets are cumulative in the exposition output, matching
// Prometheus semantics: bucket{le="x"} counts observations <= x, and a
// final le="+Inf" bucket equals _count.
type Histogram struct {
	name   string
	help   string
	bounds []float64 // sorted upper bounds, +Inf excluded

	mu     sync.Mutex
	counts []uint64 // len(bounds)+1; last is the overflow (+Inf) bucket
	sum    float64
	total  uint64
}

// DurationBuckets is a general-purpose latency bucket ladder in seconds,
// spanning 1ms to ~4min in powers of 4.
var DurationBuckets = []float64{0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384, 65.536, 262.144}

// NewHistogram registers and returns a histogram with the given bucket
// upper bounds (seconds by convention). Bounds must be sorted ascending;
// the +Inf bucket is implicit.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not sorted: " + name)
		}
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.register(h)
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Quantile returns an upper-bound estimate for the q-quantile (0 <= q <= 1)
// from the bucket counts: the upper bound of the first bucket whose
// cumulative count reaches q*total. Returns 0 with ok=false when empty;
// observations landing in the +Inf bucket report the largest finite bound.
func (h *Histogram) Quantile(q float64) (v float64, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0, false
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i], true
			}
			// +Inf bucket: best available bound is the largest finite one.
			if len(h.bounds) > 0 {
				return h.bounds[len(h.bounds)-1], true
			}
			return math.Inf(1), true
		}
	}
	return math.Inf(1), true
}

func (h *Histogram) metricName() string { return h.name }

func (h *Histogram) write(w *errWriter) {
	h.mu.Lock()
	counts := make([]uint64, len(h.counts))
	copy(counts, h.counts)
	sum := h.sum
	total := h.total
	h.mu.Unlock()
	w.printf("# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	var cum uint64
	for i, b := range h.bounds {
		cum += counts[i]
		w.printf("%s_bucket{le=%q} %d\n", h.name, formatFloat(b), cum)
	}
	w.printf("%s_bucket{le=\"+Inf\"} %d\n", h.name, total)
	w.printf("%s_sum %s\n%s_count %d\n", h.name, formatFloat(sum), h.name, total)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, integral values without a trailing ".0".
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
