// Package kaffpa implements the sequential multilevel partitioner that
// plays the role of KaFFPa (§II-C) in the reproduction: cluster-contraction
// coarsening via size-constrained label propagation, initial partitioning
// by recursive bisection with greedy graph growing, and refinement by label
// propagation plus FM-style local search.
//
// It is used in three places: to create the individuals of the evolutionary
// algorithm's initial population, as the engine of KaFFPaE's combine
// operation (with the parents' cut edges forbidden from contraction), and
// standalone as a reference sequential partitioner.
package kaffpa

import (
	"fmt"

	"repro/internal/contract"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/sclp"
)

// Config holds the parameters of a multilevel run. The zero value is not
// usable; fill in K and call Normalize, or use DefaultConfig.
type Config struct {
	K   int32   // number of blocks
	Eps float64 // imbalance parameter (paper default 0.03)

	// SizeFactor is f in U = max(max_v c(v), Lmax/f) during coarsening.
	SizeFactor float64
	// CoarsenIters and RefineIters are the label propagation iteration
	// counts (paper defaults: 3 and 6).
	CoarsenIters int
	RefineIters  int
	// FMRounds bounds the FM refinement rounds per level.
	FMRounds int
	// CoarsestSize stops coarsening once n <= max(CoarsestSize, 2K).
	CoarsestSize int32
	// InitialTries is the number of independent initial partitioning
	// attempts on the coarsest graph.
	InitialTries int
	// UseFlows additionally runs max-flow/min-cut refinement over adjacent
	// block pairs at every level (KaHIP's flow technique, §II-C). More
	// expensive, typically better cuts on mesh-like graphs.
	UseFlows bool
	// Seed drives all randomness in the run.
	Seed uint64

	// Constraint, when non-nil, forbids contraction across its labels:
	// every cluster stays inside one constraint class, so edges between
	// classes survive to the coarsest level. The combine operator passes
	// the composite labels of two parent partitions here (§II-C).
	//lint:rawslice-ok internal SPMD plumbing: the raw assignment slice is the working representation; wrapped in *parhip.Partition at the public boundary
	Constraint []int32
	// InitialPartition, when non-nil, is applied at the coarsest level
	// instead of running initial partitioning. It must be constant on each
	// constraint class (callers pass a parent partition together with a
	// Constraint that refines it).
	//lint:rawslice-ok internal SPMD plumbing: the raw assignment slice is the working representation; wrapped in *parhip.Partition at the public boundary
	InitialPartition []int32
}

// DefaultConfig returns the paper's defaults for a k-way partition.
func DefaultConfig(k int32) Config {
	return Config{
		K:            k,
		Eps:          0.03,
		SizeFactor:   14,
		CoarsenIters: 3,
		RefineIters:  6,
		FMRounds:     3,
		CoarsestSize: 0, // derived from K in Normalize
		InitialTries: 4,
		Seed:         1,
	}
}

// Normalize fills derived defaults in place.
func (c *Config) Normalize() {
	if c.Eps <= 0 {
		c.Eps = 0.03
	}
	if c.SizeFactor <= 0 {
		c.SizeFactor = 14
	}
	if c.CoarsenIters <= 0 {
		c.CoarsenIters = 3
	}
	if c.RefineIters <= 0 {
		c.RefineIters = 6
	}
	if c.FMRounds <= 0 {
		c.FMRounds = 3
	}
	if c.InitialTries <= 0 {
		c.InitialTries = 4
	}
	if c.CoarsestSize <= 0 {
		c.CoarsestSize = 20 * c.K
		if c.CoarsestSize < 60 {
			c.CoarsestSize = 60
		}
	}
}

// level records one step of the multilevel hierarchy.
type level struct {
	g            *graph.Graph
	fineToCoarse []int32 // maps this level's nodes to the next-coarser level
}

// Partition computes a k-way partition of g. It returns an error for
// invalid configurations; the partition is feasible whenever a feasible
// partition is reachable by the refinement moves (on pathological inputs
// with giant node weights the bound may be unattainable).
//
//lint:rawslice-ok internal SPMD plumbing: the raw assignment slice is the working representation; wrapped in *parhip.Partition at the public boundary
func Partition(g *graph.Graph, cfg Config) ([]int32, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("kaffpa: k = %d", cfg.K)
	}
	if cfg.Constraint != nil && int32(len(cfg.Constraint)) != g.NumNodes() {
		return nil, fmt.Errorf("kaffpa: constraint has %d entries for %d nodes", len(cfg.Constraint), g.NumNodes())
	}
	if cfg.InitialPartition != nil && int32(len(cfg.InitialPartition)) != g.NumNodes() {
		return nil, fmt.Errorf("kaffpa: initial partition has %d entries for %d nodes", len(cfg.InitialPartition), g.NumNodes())
	}
	cfg.Normalize()
	if cfg.K == 1 {
		return make([]int32, g.NumNodes()), nil
	}
	if g.NumNodes() == 0 {
		return []int32{}, nil
	}
	r := rng.New(cfg.Seed)
	total := g.TotalNodeWeight()
	lmax := partition.Lmax(total, cfg.K, cfg.Eps)

	// Coarsening phase: size-constrained label propagation + contraction.
	u := int64(float64(lmax) / cfg.SizeFactor)
	if mw := g.MaxNodeWeight(); u < mw {
		u = mw
	}
	cur := g
	constraint := cfg.Constraint
	initPart := cfg.InitialPartition
	var levels []level
	for cur.NumNodes() > cfg.CoarsestSize {
		labels := sclp.Cluster(cur, sclp.ClusterConfig{
			U:           u,
			Iterations:  cfg.CoarsenIters,
			DegreeOrder: true,
			Constraint:  constraint,
			Seed:        r.Uint64(),
		})
		cg, f2c := contract.Contract(cur, labels)
		if cg.NumNodes() >= cur.NumNodes()*19/20 {
			break // coarsening stalled
		}
		levels = append(levels, level{g: cur, fineToCoarse: f2c})
		if constraint != nil {
			constraint = projectDown(constraint, f2c, cg.NumNodes())
		}
		if initPart != nil {
			initPart = projectDown(initPart, f2c, cg.NumNodes())
		}
		cur = cg
	}

	// Initial partitioning of the coarsest graph.
	var p []int32
	if initPart != nil {
		p = append([]int32(nil), initPart...)
		// The inherited partition is already feasible on the coarsest graph
		// (same cut and balance as on the finest level); refine it.
		fmRefine(cur, p, cfg.K, lmax, cfg.FMRounds, r.Uint64())
	} else {
		p = initialPartition(cur, cfg.K, cfg.Eps, cfg.InitialTries, r)
	}
	sclp.Refine(cur, p, sclp.RefineConfig{K: cfg.K, Lmax: lmax, Iterations: cfg.RefineIters, Seed: r.Uint64()})

	// Uncoarsening: project and locally improve at every level.
	for i := len(levels) - 1; i >= 0; i-- {
		p = contract.Project(p, levels[i].fineToCoarse)
		sclp.Refine(levels[i].g, p, sclp.RefineConfig{K: cfg.K, Lmax: lmax, Iterations: cfg.RefineIters, Seed: r.Uint64()})
		fmRefine(levels[i].g, p, cfg.K, lmax, cfg.FMRounds, r.Uint64())
		if cfg.UseFlows {
			flow.Refine(levels[i].g, p, flow.RefineConfig{
				K: cfg.K, Lmax: lmax, Rounds: 1, Seed: r.Uint64(),
			})
		}
	}
	return p, nil
}

// projectDown maps per-fine-node labels to the coarse level. Each cluster
// must be label-homogeneous (guaranteed when the labels were used as the
// clustering constraint); the representative member's label is taken.
func projectDown(labels []int32, fineToCoarse []int32, coarseN int32) []int32 {
	out := make([]int32, coarseN)
	seen := make([]bool, coarseN)
	for v, c := range fineToCoarse {
		if !seen[c] {
			out[c] = labels[v]
			seen[c] = true
		}
	}
	return out
}

// CompositeConstraint builds the constraint labels for a combine operation:
// nodes get equal labels iff they share a block in both parents, so no cut
// edge of either parent can be contracted (§II-C).
//
//lint:rawslice-ok internal SPMD plumbing: the raw assignment slice is the working representation; wrapped in *parhip.Partition at the public boundary
func CompositeConstraint(p1, p2 []int32, k int32) []int32 {
	out := make([]int32, len(p1))
	for v := range p1 {
		out[v] = p1[v]*k + p2[v]
	}
	return out
}
