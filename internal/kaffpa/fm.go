package kaffpa

import (
	"container/heap"

	"repro/internal/graph"
	"repro/internal/hashtab"
	"repro/internal/rng"
)

// moveCand is a candidate move in the gain priority queue.
type moveCand struct {
	gain   int64
	rand   uint32 // random tiebreak among equal gains
	node   int32
	target int32
	stamp  uint32 // node stamp at push time; stale entries are skipped
}

type gainHeap []moveCand

func (h gainHeap) Len() int { return len(h) }
func (h gainHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].rand > h[j].rand
}
func (h gainHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x any)   { *h = append(*h, x.(moveCand)) }
func (h *gainHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// fmRefine performs rounds of greedy k-way boundary refinement in the
// spirit of Fiduccia-Mattheyses: boundary nodes are kept in a max-gain
// priority queue and moved while gain is non-negative and the balance bound
// permits, each node at most once per round. It returns the number of moves
// performed and never increases the edge cut.
func fmRefine(g *graph.Graph, p []int32, k int32, lmax int64, maxRounds int, seed uint64) int {
	n := g.NumNodes()
	if n == 0 || k < 2 {
		return 0
	}
	r := rng.New(seed)
	weight := make([]int64, k)
	for v := int32(0); v < n; v++ {
		weight[p[v]] += g.NW[v]
	}
	conn := hashtab.NewAccumulatorI64(64)
	stamp := make([]uint32, n)
	movedRound := make([]uint32, n) // round number when last moved; 0 = never
	totalMoves := 0

	// bestMove computes the best foreign-target move of v under lmax.
	bestMove := func(v int32) (int32, int64, bool) {
		conn.Reset()
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			conn.Add(int64(p[u]), ws[i])
		}
		curConn, _ := conn.Get(int64(p[v]))
		var bt int32 = -1
		var bg int64
		found := false
		conn.ForEach(func(label, c int64) {
			b := int32(label)
			if b == p[v] || weight[b]+g.NW[v] > lmax {
				return
			}
			gain := c - curConn
			if !found || gain > bg || (gain == bg && weight[b] < weight[bt]) {
				bt, bg, found = b, gain, true
			}
		})
		return bt, bg, found
	}

	for round := uint32(1); round <= uint32(maxRounds); round++ {
		h := gainHeap{}
		for v := int32(0); v < n; v++ {
			boundary := false
			for _, u := range g.Neighbors(v) {
				if p[u] != p[v] {
					boundary = true
					break
				}
			}
			if !boundary {
				continue
			}
			if t, gain, ok := bestMove(v); ok && gain >= 0 {
				h = append(h, moveCand{gain: gain, rand: r.Uint32(), node: v, target: t, stamp: stamp[v]})
			}
		}
		heap.Init(&h)
		roundMoves := 0
		for h.Len() > 0 {
			c := heap.Pop(&h).(moveCand)
			v := c.node
			if stamp[v] != c.stamp || movedRound[v] == round {
				continue // stale or already moved this round
			}
			t, gain, ok := bestMove(v)
			if !ok || gain < 0 {
				continue
			}
			if gain < c.gain {
				// Gain decayed since push; requeue with the fresh value.
				stamp[v]++
				heap.Push(&h, moveCand{gain: gain, rand: r.Uint32(), node: v, target: t, stamp: stamp[v]})
				continue
			}
			if gain == 0 && weight[t]+g.NW[v] >= weight[p[v]] {
				continue // zero-gain moves only when they improve balance
			}
			weight[p[v]] -= g.NW[v]
			weight[t] += g.NW[v]
			p[v] = t
			movedRound[v] = round
			stamp[v]++
			roundMoves++
			// Neighbours' gains changed; requeue them.
			for _, u := range g.Neighbors(v) {
				if movedRound[u] == round {
					continue
				}
				if ut, ugain, uok := bestMove(u); uok && ugain >= 0 {
					stamp[u]++
					heap.Push(&h, moveCand{gain: ugain, rand: r.Uint32(), node: u, target: ut, stamp: stamp[u]})
				}
			}
		}
		totalMoves += roundMoves
		if roundMoves == 0 {
			break
		}
	}
	return totalMoves
}
