package kaffpa

import (
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

func TestFMRefineImprovesBadPartition(t *testing.T) {
	g := gen.DelaunayLike(900, 1)
	n := g.NumNodes()
	p := make([]int32, n)
	for v := int32(0); v < n; v++ {
		p[v] = v % 2
	}
	lmax := partition.Lmax(g.TotalNodeWeight(), 2, 0.03)
	before := partition.EdgeCut(g, p)
	moves := fmRefine(g, p, 2, lmax, 10, 7)
	after := partition.EdgeCut(g, p)
	if moves == 0 || after >= before {
		t.Fatalf("fm: cut %d -> %d (%d moves)", before, after, moves)
	}
	if !partition.IsFeasible(g, p, 2, 0.03) {
		t.Fatal("fm broke balance")
	}
}

func TestFMNeverWorsens(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.RGG(300, seed)
		n := g.NumNodes()
		r := rng.New(seed)
		k := int32(4)
		p := make([]int32, n)
		for v := range p {
			p[v] = r.Int31n(k)
		}
		lmax := partition.Lmax(g.TotalNodeWeight(), k, 0.10)
		before := partition.EdgeCut(g, p)
		fmRefine(g, p, k, lmax, 5, seed)
		return partition.EdgeCut(g, p) <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestFMNoOpCases(t *testing.T) {
	g := graph.Path(10)
	p := make([]int32, 10)
	if fmRefine(g, p, 1, 100, 3, 1) != 0 {
		t.Fatal("k=1 should be a no-op")
	}
	empty := graph.NewBuilder(0).Build()
	if fmRefine(empty, nil, 2, 100, 3, 1) != 0 {
		t.Fatal("empty graph should be a no-op")
	}
}

func TestGrowBisectionBalanced(t *testing.T) {
	g := gen.DelaunayLike(400, 3)
	total := g.TotalNodeWeight()
	r := rng.New(5)
	p := growBisection(g, total/2, partition.Lmax(total, 2, 0.03), r)
	bw := partition.BlockWeights(g, p, 2)
	if bw[0] < total*4/10 || bw[0] > total*6/10 {
		t.Fatalf("grossly unbalanced bisection: %v", bw)
	}
}

func TestRecursiveBisectCoversBlocks(t *testing.T) {
	g := gen.RGG(500, 4)
	r := rng.New(9)
	for _, k := range []int32{2, 3, 5, 8} {
		p := recursiveBisect(g, k, 0.03, r)
		seen := make(map[int32]bool)
		for _, b := range p {
			if b < 0 || b >= k {
				t.Fatalf("k=%d: block %d out of range", k, b)
			}
			seen[b] = true
		}
		if int32(len(seen)) != k {
			t.Fatalf("k=%d: only %d blocks used", k, len(seen))
		}
	}
}

func TestPartitionPathK2(t *testing.T) {
	g := graph.Path(100)
	p, err := Partition(g, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	rep := partition.Evaluate(g, p, 2, 0.03)
	if !rep.Feasible {
		t.Fatalf("infeasible: %v", rep)
	}
	// A path's optimal bipartition cuts one edge; allow slack but demand
	// near-optimality.
	if rep.Cut > 3 {
		t.Fatalf("path cut %d, want <= 3", rep.Cut)
	}
}

func TestPartitionQualityVsRandom(t *testing.T) {
	g, _ := gen.PlantedPartition(3000, 12, 10, 0.5, 6)
	k := int32(4)
	p, err := Partition(g, DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	if !partition.IsFeasible(g, p, k, 0.03) {
		t.Fatalf("infeasible partition, imbalance %v", partition.Imbalance(g, p, k))
	}
	cut := partition.EdgeCut(g, p)
	// Random baseline: expected cut ~ (1 - 1/k) * total edge weight.
	r := rng.New(1)
	rp := make([]int32, g.NumNodes())
	for v := range rp {
		rp[v] = r.Int31n(k)
	}
	randCut := partition.EdgeCut(g, rp)
	if cut*3 > randCut {
		t.Fatalf("multilevel cut %d not well below random cut %d", cut, randCut)
	}
}

func TestPartitionFeasibleAcrossFamilies(t *testing.T) {
	fams := []gen.Family{gen.FamilyRGG, gen.FamilyDelaunay, gen.FamilyBA, gen.FamilyWeb}
	for _, fam := range fams {
		g, err := gen.ByFamily(fam, 1200, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int32{2, 7} {
			cfg := DefaultConfig(k)
			cfg.Seed = 3
			p, err := Partition(g, cfg)
			if err != nil {
				t.Fatalf("%s k=%d: %v", fam, k, err)
			}
			if err := partition.Validate(g, p, k); err != nil {
				t.Fatalf("%s k=%d: %v", fam, k, err)
			}
			if !partition.IsFeasible(g, p, k, 0.03) {
				t.Errorf("%s k=%d infeasible (imbalance %.4f)", fam, k,
					partition.Imbalance(g, p, k))
			}
		}
	}
}

func TestPartitionK1AndEmpty(t *testing.T) {
	g := gen.RGG(100, 1)
	p, err := Partition(g, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range p {
		if b != 0 {
			t.Fatal("k=1 must assign everything to block 0")
		}
	}
	empty := graph.NewBuilder(0).Build()
	if p, err := Partition(empty, DefaultConfig(2)); err != nil || len(p) != 0 {
		t.Fatalf("empty graph: %v %v", p, err)
	}
}

func TestPartitionInvalidConfig(t *testing.T) {
	g := graph.Path(10)
	if _, err := Partition(g, Config{K: 0}); err == nil {
		t.Fatal("expected error for k=0")
	}
	cfg := DefaultConfig(2)
	cfg.Constraint = make([]int32, 3)
	if _, err := Partition(g, cfg); err == nil {
		t.Fatal("expected error for wrong-length constraint")
	}
	cfg = DefaultConfig(2)
	cfg.InitialPartition = make([]int32, 3)
	if _, err := Partition(g, cfg); err == nil {
		t.Fatal("expected error for wrong-length initial partition")
	}
}

func TestCompositeConstraint(t *testing.T) {
	p1 := []int32{0, 0, 1, 1}
	p2 := []int32{0, 1, 0, 1}
	c := CompositeConstraint(p1, p2, 2)
	// All four combinations must be distinct.
	seen := make(map[int32]bool)
	for _, v := range c {
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Fatalf("composite labels %v", c)
	}
}

// The combine guarantee from §II-C: with the parents' cut edges forbidden
// from contraction and the better parent applied at the coarsest level, the
// offspring is at least as good as the better parent.
func TestCombineNeverWorseThanBetterParent(t *testing.T) {
	g, _ := gen.PlantedPartition(1500, 10, 8, 0.8, 3)
	k := int32(4)
	mk := func(seed uint64) []int32 {
		cfg := DefaultConfig(k)
		cfg.Seed = seed
		p, err := Partition(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1 := mk(10)
	p2 := mk(20)
	c1 := partition.EdgeCut(g, p1)
	c2 := partition.EdgeCut(g, p2)
	better := p1
	betterCut := c1
	if c2 < c1 {
		better, betterCut = p2, c2
	}
	cfg := DefaultConfig(k)
	cfg.Seed = 30
	cfg.Constraint = CompositeConstraint(p1, p2, k)
	cfg.InitialPartition = better
	child, err := Partition(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	childCut := partition.EdgeCut(g, child)
	if childCut > betterCut {
		t.Fatalf("offspring cut %d worse than better parent %d", childCut, betterCut)
	}
	if !partition.IsFeasible(g, child, k, 0.03) {
		t.Fatal("offspring infeasible")
	}
}

func TestProjectDown(t *testing.T) {
	labels := []int32{5, 5, 7, 7, 9}
	f2c := []int32{0, 0, 1, 1, 2}
	got := projectDown(labels, f2c, 3)
	want := []int32{5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("projectDown %v, want %v", got, want)
		}
	}
}

func TestUseFlowsNeverWorseAndFeasible(t *testing.T) {
	g := gen.DelaunayLike(2500, 14)
	k := int32(4)
	base := DefaultConfig(k)
	base.Seed = 5
	p0, err := Partition(g, base)
	if err != nil {
		t.Fatal(err)
	}
	withFlows := base
	withFlows.UseFlows = true
	p1, err := Partition(g, withFlows)
	if err != nil {
		t.Fatal(err)
	}
	if !partition.IsFeasible(g, p1, k, 0.03) {
		t.Fatal("flows broke feasibility")
	}
	// Flow refinement applied as a post-pass never worsens (its accept
	// rule requires a strict local improvement).
	c0 := partition.EdgeCut(g, p0)
	post := append([]int32(nil), p0...)
	lmax := partition.Lmax(g.TotalNodeWeight(), k, 0.03)
	flow.Refine(g, post, flow.RefineConfig{K: k, Lmax: lmax, Rounds: 2, Seed: 9})
	if cp := partition.EdgeCut(g, post); cp > c0 {
		t.Fatalf("flow post-pass worsened the cut: %d -> %d", c0, cp)
	}
	if !partition.IsFeasible(g, post, k, 0.03) {
		t.Fatal("flow post-pass broke feasibility")
	}
}

func TestPartitionDeterminism(t *testing.T) {
	g := gen.RGG(800, 12)
	cfg := DefaultConfig(4)
	cfg.Seed = 77
	a, _ := Partition(g, cfg)
	b, _ := Partition(g, cfg)
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("same seed produced different partitions")
		}
	}
}
