package kaffpa

import (
	"repro/internal/graph"
	"repro/internal/intmath"
	"repro/internal/partition"
	"repro/internal/rng"
)

// growBisection grows block 0 from a random seed node by BFS until its
// weight reaches target0; remaining nodes form block 1. Disconnected
// leftovers restart from fresh seeds. The result is then polished with
// two-way FM.
func growBisection(g *graph.Graph, target0 int64, lmax int64, r *rng.RNG) []int32 {
	n := g.NumNodes()
	p := make([]int32, n)
	for v := range p {
		p[v] = 1
	}
	visited := make([]bool, n)
	var w0 int64
	queue := make([]int32, 0, n)
	for w0 < target0 {
		// Find an unvisited seed (random probes, then linear fallback).
		seed := int32(-1)
		for tries := 0; tries < 10; tries++ {
			c := r.Int31n(n)
			if !visited[c] {
				seed = c
				break
			}
		}
		if seed < 0 {
			for v := int32(0); v < n; v++ {
				if !visited[v] {
					seed = v
					break
				}
			}
		}
		if seed < 0 {
			break // everything visited
		}
		visited[seed] = true
		queue = append(queue[:0], seed)
		for len(queue) > 0 && w0 < target0 {
			v := queue[0]
			queue = queue[1:]
			p[v] = 0
			w0 += g.NW[v]
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	fmRefine(g, p, 2, lmax, 8, r.Uint64())
	return p
}

// recursiveBisect partitions g into k blocks by recursive bisection with
// greedy graph growing, the classic initial-partitioning scheme of
// multilevel partitioners. Block sizes are proportional to floor/ceil
// splits of k, so uneven k values are handled.
func recursiveBisect(g *graph.Graph, k int32, eps float64, r *rng.RNG) []int32 {
	p := make([]int32, g.NumNodes())
	bisectInto(g, k, eps, r, p, 0)
	return p
}

// bisectInto writes a k-way partition of g into out (same node order as g)
// using block IDs firstBlock..firstBlock+k-1.
func bisectInto(g *graph.Graph, k int32, eps float64, r *rng.RNG, out []int32, firstBlock int32) {
	if k <= 1 {
		for v := range out {
			out[v] = firstBlock
		}
		return
	}
	total := g.TotalNodeWeight()
	k0 := k / 2
	k1 := k - k0
	target0 := intmath.MulDivFloor(total, int64(k0), int64(k))
	// The side bound must leave room for the recursion: side i may weigh at
	// most k_i * Lmax(total, k, eps), but we also keep it near the
	// proportional target to help the deeper splits.
	lmaxSide := partition.ScaledBound(target0, eps)
	if lmaxSide < target0 {
		lmaxSide = target0
	}
	p2 := growBisection(g, target0, lmaxSide, r)
	var nodes0, nodes1 []graph.NodeID
	for v := int32(0); v < g.NumNodes(); v++ {
		if p2[v] == 0 {
			nodes0 = append(nodes0, v)
		} else {
			nodes1 = append(nodes1, v)
		}
	}
	sub0, back0 := graph.InducedSubgraph(g, nodes0)
	sub1, back1 := graph.InducedSubgraph(g, nodes1)
	out0 := make([]int32, sub0.NumNodes())
	out1 := make([]int32, sub1.NumNodes())
	bisectInto(sub0, k0, eps, r, out0, firstBlock)
	bisectInto(sub1, k1, eps, r, out1, firstBlock+k0)
	for i, v := range back0 {
		out[v] = out0[i]
	}
	for i, v := range back1 {
		out[v] = out1[i]
	}
}

// initialPartition computes a k-way partition of the (coarsest) graph:
// tries independent recursive-bisection attempts and keeps the best by
// (feasible, cut) lexicographic order.
func initialPartition(g *graph.Graph, k int32, eps float64, tries int, r *rng.RNG) []int32 {
	if tries < 1 {
		tries = 1
	}
	lmax := partition.Lmax(g.TotalNodeWeight(), k, eps)
	var best []int32
	var bestCut int64
	bestFeasible := false
	for t := 0; t < tries; t++ {
		p := recursiveBisect(g, k, eps, r)
		fmRefine(g, p, k, lmax, 4, r.Uint64())
		cut := partition.EdgeCut(g, p)
		feas := partition.IsFeasible(g, p, k, eps)
		better := false
		switch {
		case best == nil:
			better = true
		case feas && !bestFeasible:
			better = true
		case feas == bestFeasible && cut < bestCut:
			better = true
		}
		if better {
			best, bestCut, bestFeasible = p, cut, feas
		}
	}
	return best
}
