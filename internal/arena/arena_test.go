package arena

import "testing"

func TestAllocZeroedAndDisjoint(t *testing.T) {
	a := New()
	x := a.Int64s(100)
	y := a.Int64s(100)
	for i := range x {
		x[i] = int64(i) + 1
	}
	for i, v := range y {
		if v != 0 {
			t.Fatalf("y[%d] = %d, want zeroed", i, v)
		}
	}
	y[0] = 7
	if x[99] != 100 {
		t.Fatal("allocations alias")
	}
}

func TestResetRecycles(t *testing.T) {
	a := New()
	first := a.Int64s(64)
	first[0] = 42
	a.Reset()
	second := a.Int64s(64)
	if &first[0] != &second[0] {
		t.Error("Reset did not recycle the slab")
	}
	if second[0] != 0 {
		t.Errorf("recycled slab not zeroed: %d", second[0])
	}
}

func TestLargeAllocationGetsOwnSlab(t *testing.T) {
	a := New()
	big := a.Int32s(3 * slabMin)
	if len(big) != 3*slabMin {
		t.Fatalf("len = %d", len(big))
	}
	// A later small allocation must not collide with the big slab.
	small := a.Ints(10)
	small[0] = 1
	if big[0] != 0 {
		t.Error("allocations alias")
	}
}

func TestNilArenaFallsBackToMake(t *testing.T) {
	var a *Arena
	s := a.Int64s(5)
	if len(s) != 5 {
		t.Fatalf("len = %d", len(s))
	}
	a.Reset() // must not panic
	if a.HeldBytes() != 0 {
		t.Error("nil arena holds bytes")
	}
}

func TestSteadyStateNoAllocs(t *testing.T) {
	a := New()
	// Warm up the slabs.
	a.Int64s(1000)
	a.Int32s(1000)
	a.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		_ = a.Int64s(1000)
		_ = a.Int32s(1000)
		a.Reset()
	})
	if allocs != 0 {
		t.Errorf("steady-state arena use allocates %v/op, want 0", allocs)
	}
}

func TestZeroLengthAlloc(t *testing.T) {
	a := New()
	if s := a.Bools(0); s != nil {
		t.Errorf("zero-length alloc: %v", s)
	}
	if s := a.Uint64s(0); s != nil {
		t.Errorf("zero-length alloc: %v", s)
	}
}
