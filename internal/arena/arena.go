// Package arena provides a slab-based bump allocator for the per-level
// scratch of the partitioning pipeline: traversal orders, dirty sets,
// proposal buffers and hash-table backing arrays that live for exactly one
// pipeline stage. Instead of reallocating them on every V-cycle level and
// label-propagation round, a stage allocates from the rank's arena and the
// caller calls Reset when the stage's scratch is dead — the slabs are kept
// and recycled, so the steady state allocates nothing.
//
// An Arena is NOT safe for concurrent use: allocate during the sequential
// setup of a superstep (before worker goroutines start), never from inside
// a worker kernel. Returned slices are zeroed — scratch contents must be a
// deterministic function of the run, never of what a recycled slab held
// before.
package arena

// slabMin is the smallest slab an arena allocates, in elements. Larger
// requests get a dedicated slab of exactly the requested size.
const slabMin = 4096

// slab is one growth unit of a typed sub-allocator.
type typedArena[T any] struct {
	slabs [][]T
	cur   int // index of the slab being bumped
	off   int // next free element in slabs[cur]
}

func (a *typedArena[T]) alloc(n int) []T {
	if n == 0 {
		return nil
	}
	for a.cur < len(a.slabs) {
		s := a.slabs[a.cur]
		if a.off+n <= len(s) {
			out := s[a.off : a.off+n : a.off+n]
			a.off += n
			clear(out)
			return out
		}
		a.cur++
		a.off = 0
	}
	size := n
	if size < slabMin {
		size = slabMin
	}
	s := make([]T, size)
	a.slabs = append(a.slabs, s)
	a.cur = len(a.slabs) - 1
	a.off = n
	return s[0:n:n]
}

func (a *typedArena[T]) reset() {
	a.cur = 0
	a.off = 0
}

// held reports the total number of elements across all slabs.
func (a *typedArena[T]) held() int {
	var t int
	for _, s := range a.slabs {
		t += len(s)
	}
	return t
}

// Arena hands out zeroed typed slices carved from recycled slabs. The zero
// value is ready to use; a nil *Arena is also valid — every allocator
// method falls back to a plain make, so callers can thread an optional
// arena without branching.
type Arena struct {
	i64  typedArena[int64]
	i32  typedArena[int32]
	ints typedArena[int]
	u64  typedArena[uint64]
	bs   typedArena[bool]
}

// New returns an empty arena.
func New() *Arena { return &Arena{} }

// Int64s returns a zeroed []int64 of length n.
func (a *Arena) Int64s(n int) []int64 {
	if a == nil {
		return make([]int64, n)
	}
	return a.i64.alloc(n)
}

// Int32s returns a zeroed []int32 of length n.
//
//lint:rawslice-ok allocator primitive: the slice is raw scratch storage, not a partition
func (a *Arena) Int32s(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	return a.i32.alloc(n)
}

// Ints returns a zeroed []int of length n.
func (a *Arena) Ints(n int) []int {
	if a == nil {
		return make([]int, n)
	}
	return a.ints.alloc(n)
}

// Uint64s returns a zeroed []uint64 of length n.
func (a *Arena) Uint64s(n int) []uint64 {
	if a == nil {
		return make([]uint64, n)
	}
	return a.u64.alloc(n)
}

// Bools returns a zeroed []bool of length n.
func (a *Arena) Bools(n int) []bool {
	if a == nil {
		return make([]bool, n)
	}
	return a.bs.alloc(n)
}

// Reset recycles every slab: all slices previously handed out are dead and
// the next allocations reuse their memory. Nil-safe.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.i64.reset()
	a.i32.reset()
	a.ints.reset()
	a.u64.reset()
	a.bs.reset()
}

// HeldBytes reports the memory the arena is holding across all typed
// slabs, for observability.
func (a *Arena) HeldBytes() int64 {
	if a == nil {
		return 0
	}
	return int64(a.i64.held())*8 + int64(a.i32.held())*4 +
		int64(a.ints.held())*8 + int64(a.u64.held())*8 + int64(a.bs.held())
}
