package contract

import (
	"testing"

	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/partition"
	"repro/internal/sclp"
)

// parallelContractOf runs the parallel pipeline (cluster + contract) and
// gathers the coarse graph for inspection.
func parallelContractOf(t *testing.T, g *graph.Graph, P int, u int64, iters int, seed uint64) (coarse *graph.Graph) {
	t.Helper()
	var out *graph.Graph
	mpi.NewWorld(P).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		labels := sclp.ParCluster(d, sclp.ParClusterConfig{U: u, Iterations: iters, DegreeOrder: true, Seed: seed})
		res := ParContract(d, labels)
		if err := res.Coarse.Validate(); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		gathered := res.Coarse.Gather()
		if c.Rank() == 0 {
			out = gathered
		}
	})
	return out
}

func TestParContractPreservesTotals(t *testing.T) {
	g, _ := gen.PlantedPartition(1500, 15, 10, 0.4, 1)
	coarse := parallelContractOf(t, g, 4, 150, 3, 1)
	if coarse.TotalNodeWeight() != g.TotalNodeWeight() {
		t.Fatalf("node weight %d != %d", coarse.TotalNodeWeight(), g.TotalNodeWeight())
	}
	if coarse.NumNodes() >= g.NumNodes() {
		t.Fatalf("no shrink: %d -> %d", g.NumNodes(), coarse.NumNodes())
	}
	if err := coarse.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParContractCommunityShrink(t *testing.T) {
	// On a community graph one parallel contraction should shrink by a
	// large factor (the paper reports orders of magnitude on web graphs).
	g, _ := gen.PlantedPartition(4000, 40, 12, 0.3, 2)
	coarse := parallelContractOf(t, g, 4, 200, 3, 2)
	if coarse.NumNodes() > g.NumNodes()/5 {
		t.Fatalf("weak shrink: %d -> %d", g.NumNodes(), coarse.NumNodes())
	}
}

func TestParContractMatchesSequentialOnSameLabels(t *testing.T) {
	// With identical labels, parallel contraction must produce exactly the
	// sequential coarse graph (up to the deterministic ID order both use).
	g := gen.RGG(500, 3)
	n := g.NumNodes()
	labels32 := make([]int32, n)
	for v := int32(0); v < n; v++ {
		labels32[v] = v / 7 * 7 // cluster = floor(v/7)*7, a valid node ID
	}
	seqCoarse, _ := Contract(g, labels32)
	mpi.NewWorld(4).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		labels := make([]int64, d.NTotal())
		for v := int32(0); v < d.NTotal(); v++ {
			labels[v] = d.ToGlobal(v) / 7 * 7
		}
		res := ParContract(d, labels)
		got := res.Coarse.Gather()
		if c.Rank() != 0 {
			return
		}
		if got.NumNodes() != seqCoarse.NumNodes() || got.NumEdges() != seqCoarse.NumEdges() {
			t.Errorf("parallel %v vs sequential %v", got, seqCoarse)
			return
		}
		// Sequential Contract assigns coarse IDs by first occurrence, and
		// parallel by sorted label: with labels = floor(v/7)*7 both yield
		// ascending order of cluster representative, so graphs match 1:1.
		for v := int32(0); v < got.NumNodes(); v++ {
			if got.NW[v] != seqCoarse.NW[v] {
				t.Errorf("node weight mismatch at %d: %d vs %d", v, got.NW[v], seqCoarse.NW[v])
				return
			}
			a, b := got.Neighbors(v), seqCoarse.Neighbors(v)
			if len(a) != len(b) {
				t.Errorf("degree mismatch at %d", v)
				return
			}
			for i := range a {
				if a[i] != b[i] || got.EdgeWeights(v)[i] != seqCoarse.EdgeWeights(v)[i] {
					t.Errorf("edge mismatch at %d", v)
					return
				}
			}
		}
	})
}

func TestParContractSingletonLabels(t *testing.T) {
	// Identity clustering: coarse graph == fine graph.
	g := gen.RGG(200, 5)
	mpi.NewWorld(3).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		labels := make([]int64, d.NTotal())
		for v := int32(0); v < d.NTotal(); v++ {
			labels[v] = d.ToGlobal(v)
		}
		res := ParContract(d, labels)
		if res.Coarse.GlobalN != int64(g.NumNodes()) || res.Coarse.GlobalM != g.NumEdges() {
			t.Errorf("identity contraction changed size: n=%d m=%d",
				res.Coarse.GlobalN, res.Coarse.GlobalM)
		}
	})
}

func TestParProjectRoundTrip(t *testing.T) {
	// Project a coarse partition down and verify cut and balance are
	// preserved (§III invariant, parallel edition).
	g, _ := gen.PlantedPartition(1200, 12, 9, 0.4, 7)
	const k = 3
	mpi.NewWorld(4).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		labels := sclp.ParCluster(d, sclp.ParClusterConfig{U: 100, Iterations: 3, Seed: 7})
		res := ParContract(d, labels)
		coarse := res.Coarse
		// Partition coarse nodes by global coarse ID parity.
		coarsePart := make([]int64, coarse.NTotal())
		for v := int32(0); v < coarse.NTotal(); v++ {
			coarsePart[v] = coarse.ToGlobal(v) % k
		}
		coarseCut := coarse.EdgeCut(coarsePart)
		coarseBW := coarse.BlockWeights(coarsePart, k)
		finePart := ParProject(d, coarse, res.FineToCoarse, coarsePart)
		fineCut := d.EdgeCut(finePart)
		fineBW := d.BlockWeights(finePart, k)
		if fineCut != coarseCut {
			t.Errorf("cut not preserved: coarse %d fine %d", coarseCut, fineCut)
		}
		for b := 0; b < k; b++ {
			if fineBW[b] != coarseBW[b] {
				t.Errorf("block %d weight: coarse %d fine %d", b, coarseBW[b], fineBW[b])
			}
		}
	})
}

func TestParContractTwoLevels(t *testing.T) {
	// Contraction composes: contract twice and check weight conservation.
	g, _ := gen.PlantedPartition(2000, 30, 10, 0.3, 9)
	mpi.NewWorld(4).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		l1 := sclp.ParCluster(d, sclp.ParClusterConfig{U: 60, Iterations: 3, Seed: 1})
		r1 := ParContract(d, l1)
		l2 := sclp.ParCluster(r1.Coarse, sclp.ParClusterConfig{U: 200, Iterations: 3, Seed: 2})
		r2 := ParContract(r1.Coarse, l2)
		if w := r2.Coarse.GlobalNodeWeight(); w != g.TotalNodeWeight() {
			t.Errorf("weight after two contractions %d != %d", w, g.TotalNodeWeight())
		}
		if r2.Coarse.GlobalN > r1.Coarse.GlobalN {
			t.Errorf("second contraction grew the graph")
		}
		if err := r2.Coarse.Validate(); err != nil {
			t.Error(err)
		}
	})
}

func TestParProjectThenRefineFeasible(t *testing.T) {
	g := gen.RGG(900, 11)
	const k = 2
	lmax := partition.Lmax(g.TotalNodeWeight(), k, 0.03)
	mpi.NewWorld(3).Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		labels := sclp.ParCluster(d, sclp.ParClusterConfig{U: lmax / 14, Iterations: 3, Seed: 3})
		res := ParContract(d, labels)
		coarse := res.Coarse
		coarsePart := make([]int64, coarse.NTotal())
		for v := int32(0); v < coarse.NTotal(); v++ {
			coarsePart[v] = coarse.ToGlobal(v) % k
		}
		finePart := ParProject(d, coarse, res.FineToCoarse, coarsePart)
		sclp.ParRefine(d, finePart, sclp.ParRefineConfig{K: k, Lmax: lmax, Iterations: 8, Seed: 4})
		for b, w := range d.BlockWeights(finePart, k) {
			if w > lmax {
				t.Errorf("block %d weight %d > lmax %d after refine", b, w, lmax)
			}
		}
	})
}
