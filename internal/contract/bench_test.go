package contract

import (
	"testing"

	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/mpi"
	"repro/internal/sclp"
)

func BenchmarkContractSeq(b *testing.B) {
	g, _ := gen.PlantedPartition(20000, 100, 10, 0.5, 1)
	labels := sclp.Cluster(g, sclp.ClusterConfig{U: 600, Iterations: 3, DegreeOrder: true, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Contract(g, labels)
	}
}

func BenchmarkParContractP4(b *testing.B) {
	g, _ := gen.PlantedPartition(20000, 100, 10, 0.5, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mpi.NewWorld(4).Run(func(c *mpi.Comm) {
			d := dgraph.FromGraph(c, g)
			labels := sclp.ParCluster(d, sclp.ParClusterConfig{U: 600, Iterations: 3, Seed: 1})
			ParContract(d, labels)
		})
	}
}
