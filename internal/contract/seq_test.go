package contract

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/sclp"
)

func TestContractPath(t *testing.T) {
	g := graph.Path(6)
	labels := []int32{0, 0, 0, 1, 1, 1}
	cg, f2c := Contract(g, labels)
	if cg.NumNodes() != 2 || cg.NumEdges() != 1 {
		t.Fatalf("coarse %v", cg)
	}
	if cg.NW[0] != 3 || cg.NW[1] != 3 {
		t.Fatalf("coarse weights %v", cg.NW)
	}
	if w, _ := cg.HasEdge(0, 1); w != 1 {
		t.Fatalf("coarse edge weight %d", w)
	}
	if f2c[0] != f2c[2] || f2c[0] == f2c[3] {
		t.Fatalf("fine-to-coarse %v", f2c)
	}
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestContractParallelEdgesSum(t *testing.T) {
	// 4-cycle contracted into two pairs: the two cut edges between the
	// pairs merge into one coarse edge of weight 2.
	g := graph.Cycle(4)
	labels := []int32{7, 7, 9, 9}
	cg, _ := Contract(g, labels)
	if cg.NumNodes() != 2 || cg.NumEdges() != 1 {
		t.Fatalf("coarse %v", cg)
	}
	if w, _ := cg.HasEdge(0, 1); w != 2 {
		t.Fatalf("merged edge weight %d, want 2", w)
	}
}

func TestContractSingletons(t *testing.T) {
	g := gen.RGG(100, 1)
	labels := make([]int32, 100)
	for v := range labels {
		labels[v] = int32(v)
	}
	cg, f2c := Contract(g, labels)
	if cg.NumNodes() != 100 || cg.NumEdges() != g.NumEdges() {
		t.Fatalf("identity contraction changed the graph: %v vs %v", cg, g)
	}
	for v, c := range f2c {
		if int32(v) != c {
			t.Fatal("identity contraction should keep IDs")
		}
	}
}

func TestContractAllOneCluster(t *testing.T) {
	g := gen.RGG(50, 2)
	labels := make([]int32, 50)
	cg, _ := Contract(g, labels)
	if cg.NumNodes() != 1 || cg.NumEdges() != 0 {
		t.Fatalf("coarse %v", cg)
	}
	if cg.NW[0] != g.TotalNodeWeight() {
		t.Fatalf("weight %d", cg.NW[0])
	}
}

// The central invariant from §III: a partition of the coarse graph
// corresponds to a partition of the fine graph with the same cut and
// balance.
func TestContractPreservesCutAndBalance(t *testing.T) {
	f := func(seed uint64) bool {
		g, _ := gen.PlantedPartition(500, 10, 8, 0.5, seed)
		labels := sclp.Cluster(g, sclp.ClusterConfig{U: 40, Iterations: 3, Seed: seed})
		cg, f2c := Contract(g, labels)
		if cg.Validate() != nil {
			return false
		}
		// Total node weight is preserved.
		if cg.TotalNodeWeight() != g.TotalNodeWeight() {
			return false
		}
		// Random coarse partition projects to a fine partition with the
		// same cut and block weights.
		r := rng.New(seed)
		k := int32(3)
		cp := make([]int32, cg.NumNodes())
		for v := range cp {
			cp[v] = r.Int31n(k)
		}
		fp := Project(cp, f2c)
		coarseCut := partition.EdgeCut(cg, partition.Partition(cp))
		fineCut := partition.EdgeCut(g, partition.Partition(fp))
		if coarseCut != fineCut {
			return false
		}
		cbw := partition.BlockWeights(cg, partition.Partition(cp), k)
		fbw := partition.BlockWeights(g, partition.Partition(fp), k)
		for i := range cbw {
			if cbw[i] != fbw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestContractEdgeWeightConservation(t *testing.T) {
	// Total coarse edge weight + internal (contracted) weight = total fine
	// edge weight.
	g := gen.RGG(400, 5)
	labels := sclp.Cluster(g, sclp.ClusterConfig{U: 30, Iterations: 3, Seed: 5})
	cg, f2c := Contract(g, labels)
	var internal int64
	for v := int32(0); v < g.NumNodes(); v++ {
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			if u > v && f2c[u] == f2c[v] {
				internal += ws[i]
			}
		}
	}
	if cg.TotalEdgeWeight()+internal != g.TotalEdgeWeight() {
		t.Fatalf("edge weight not conserved: coarse %d + internal %d != fine %d",
			cg.TotalEdgeWeight(), internal, g.TotalEdgeWeight())
	}
}

func TestProject(t *testing.T) {
	f2c := []int32{0, 0, 1, 1, 2}
	cp := []int32{5, 6, 7}
	fp := Project(cp, f2c)
	want := []int32{5, 5, 6, 6, 7}
	for i := range want {
		if fp[i] != want[i] {
			t.Fatalf("projected %v, want %v", fp, want)
		}
	}
}
