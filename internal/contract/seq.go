// Package contract implements cluster contraction and uncoarsening (§III
// and §IV-C of the paper), sequentially and in parallel.
//
// Contracting a clustering replaces each cluster by a single coarse node
// whose weight is the total weight of the cluster's members; coarse nodes
// are connected iff their clusters are adjacent, with edge weight equal to
// the total weight of the fine edges between them. By construction, a
// partition of the coarse graph induces a partition of the fine graph with
// the same cut and balance.
package contract

import (
	"repro/internal/graph"
	"repro/internal/hashtab"
)

// Contract builds the coarse graph for the given cluster labels (arbitrary
// values; nodes with equal labels form one cluster). It returns the coarse
// graph and the fine-to-coarse node map. Coarse IDs are assigned in order
// of the smallest fine node ID in each cluster, making the result
// deterministic.
//
//lint:rawslice-ok internal SPMD plumbing: the raw assignment slice is the working representation; wrapped in *parhip.Partition at the public boundary
func Contract(g *graph.Graph, labels []int32) (*graph.Graph, []int32) {
	n := g.NumNodes()
	// Assign contiguous coarse IDs by first occurrence.
	lmap := hashtab.NewMapI64(1024)
	fineToCoarse := make([]int32, n)
	var coarseN int32
	for v := int32(0); v < n; v++ {
		id, inserted := lmap.PutIfAbsent(int64(labels[v]), int64(coarseN))
		if inserted {
			coarseN++
		}
		fineToCoarse[v] = int32(id)
	}
	b := graph.NewBuilder(coarseN)
	cw := make([]int64, coarseN)
	for v := int32(0); v < n; v++ {
		cw[fineToCoarse[v]] += g.NW[v]
	}
	for c := int32(0); c < coarseN; c++ {
		b.SetNodeWeight(c, cw[c])
	}
	for v := int32(0); v < n; v++ {
		cv := fineToCoarse[v]
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			cu := fineToCoarse[u]
			if cv < cu { // add each coarse edge pair once; builder sums duplicates
				b.AddEdgeW(cv, cu, ws[i])
			}
		}
	}
	return b.Build(), fineToCoarse
}

// Project transfers a coarse partition to the fine level: fine node v is
// assigned the block of its coarse representative.
//
//lint:rawslice-ok internal SPMD plumbing: the raw assignment slice is the working representation; wrapped in *parhip.Partition at the public boundary
func Project(coarsePart []int32, fineToCoarse []int32) []int32 {
	fine := make([]int32, len(fineToCoarse))
	for v, c := range fineToCoarse {
		fine[v] = coarsePart[c]
	}
	return fine
}
