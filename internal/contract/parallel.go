package contract

import (
	"fmt"
	"sort"

	"repro/internal/arena"
	"repro/internal/dgraph"
	"repro/internal/hashtab"
	"repro/internal/mpi"
	"repro/internal/workpool"
)

// ParResult is the outcome of one parallel contraction step.
type ParResult struct {
	// Coarse is the contracted distributed graph with a fresh uniform node
	// distribution over the coarse ID space.
	Coarse *dgraph.DGraph
	// FineToCoarse maps each local fine node to its global coarse node ID
	// (the mapping C of §IV-C).
	FineToCoarse []int64
}

// ParContract contracts the clustering given by labels (NTotal entries,
// ghosts in sync; label values are global fine node IDs) following §IV-C:
//
//  1. Each cluster ID is sent to the rank owning that ID in the fine
//     distribution, which counts its distinct IDs.
//  2. A prefix sum over the distinct counts yields the mapping q from
//     cluster IDs to the contiguous coarse ID space.
//  3. Ranks query q for every cluster ID they reference (local and ghost)
//     and derive C(v) = q(label(v)).
//  4. Each rank builds its local weighted quotient edges by hashing and
//     sends every coarse edge and node-weight contribution to the rank
//     owning the coarse source node in the new uniform distribution.
//  5. Owners aggregate and assemble the coarse distributed graph.
//
// Collective.
//
//parhip:collective
func ParContract(fine *dgraph.DGraph, labels []int64) *ParResult {
	return ParContractWith(fine, labels, ContractOptions{})
}

// ContractOptions configures the intra-rank worksharing of ParContract.
// The zero value runs everything on the calling goroutine with heap
// scratch; results are bit-identical for any option combination.
type ContractOptions struct {
	// Pool, when non-nil, fills the per-shard quotient accumulators of
	// step 4 in parallel.
	Pool *workpool.Pool
	// Arena, when non-nil, backs the shard accumulators; the caller resets
	// it after the contraction's scratch is dead.
	Arena *arena.Arena
}

// quotientShard is the number of local fine nodes one quotient-accumulation
// shard covers. Like the sclp propose chunks, the shard count is a function
// of the node count alone, so the shard tables — and the shard-order merge
// into the exchange below — are identical for any worker count.
const quotientShard = 2048

// ParContractWith is ParContract with explicit worksharing options.
// Collective.
//
//parhip:collective
func ParContractWith(fine *dgraph.DGraph, labels []int64, opt ContractOptions) *ParResult {
	c := fine.Comm
	size := c.Size()
	nl := fine.NLocal()
	// One sharder serves every owner-routed exchange of the contraction;
	// its per-destination buffers are recycled between steps.
	sh := mpi.NewSharder(c)

	// Step 1: route distinct local cluster IDs to their responsible ranks.
	seen := hashtab.NewSetI64(int(nl) + 16)
	for v := int32(0); v < nl; v++ {
		l := labels[v]
		if seen.Insert(l) {
			sh.Add(fine.Owner(l), l)
		}
	}
	distinct := hashtab.NewSetI64(64)
	var respLabels []int64
	sh.Exchange(func(_ int, buf []int64) {
		for _, l := range buf {
			if distinct.Insert(l) {
				respLabels = append(respLabels, l)
			}
		}
	})
	// Deterministic coarse IDs: sort the responsible labels.
	sort.Slice(respLabels, func(i, j int) bool { return respLabels[i] < respLabels[j] })

	// Step 2: contiguous coarse ID space via an exclusive prefix sum.
	myCount := int64(len(respLabels))
	offset := c.ExScanSum(myCount)
	coarseN := c.AllreduceSum1(myCount)
	q := hashtab.NewMapI64(len(respLabels) + 16)
	for i, l := range respLabels {
		q.Put(l, offset+int64(i))
	}

	// Step 3: query q for every referenced cluster ID (local and ghost).
	// The query lists must survive until the answers return (positions
	// correlate them), so this exchange keeps explicit per-rank buffers and
	// runs them through the pooled collective.
	queries := hashtab.NewSetI64(int(fine.NTotal()) + 16)
	queryByResp := make([][]int64, size)
	for v := int32(0); v < fine.NTotal(); v++ {
		l := labels[v]
		if queries.Insert(l) {
			queryByResp[fine.Owner(l)] = append(queryByResp[fine.Owner(l)], l)
		}
	}
	replies := make([][]int64, size)
	c.AlltoallvFunc(queryByResp, func(rk int, buf []int64) {
		if len(buf) == 0 {
			return
		}
		ans := make([]int64, len(buf))
		for i, l := range buf {
			id, ok := q.Get(l)
			if !ok {
				// A ghost-only cluster ID never observed by a local node of
				// any rank cannot occur: every cluster has at least one
				// member, and that member's rank reported the label.
				panic("contract: unknown cluster ID queried")
			}
			ans[i] = id
		}
		replies[rk] = ans
	})
	labelToCoarse := hashtab.NewMapI64(int(fine.NTotal()) + 16)
	c.AlltoallvFunc(replies, func(rk int, ans []int64) {
		if len(ans) != len(queryByResp[rk]) {
			c.PoisonPeers()
			panic(fmt.Sprintf("contract: rank %d answered %d of %d cluster queries",
				rk, len(ans), len(queryByResp[rk])))
		}
		for i, l := range queryByResp[rk] {
			labelToCoarse.Put(l, ans[i])
		}
	})
	cOf := func(v int32) int64 {
		id, ok := labelToCoarse.Get(labels[v])
		if !ok {
			panic("contract: missing coarse mapping")
		}
		return id
	}
	fineToCoarse := make([]int64, nl)
	for v := int32(0); v < nl; v++ {
		fineToCoarse[v] = cOf(v)
	}

	// Step 4: local quotient edges and node weights, routed to coarse
	// owners under the new uniform distribution.
	coarseVtx := dgraph.UniformVtxDist(coarseN, size)
	ownerOfCoarse := func(id int64) int {
		lo, hi := 0, size
		for lo+1 < hi {
			mid := (lo + hi) / 2
			if coarseVtx[mid] <= id {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo
	}
	// Accumulate local quotient edges keyed by the (cu, cv) pair, sharded
	// over fixed node ranges so the pool's workers fill disjoint tables. A
	// composite cu*coarseN+cv key would overflow int64 once coarseN exceeds
	// ~3·10^9, silently merging unrelated coarse edges. A pair occurring in
	// several shards is sent once per shard; the receiver-side sort-and-merge
	// below already combines contributions from different ranks, so
	// cross-shard duplicates collapse the same way and the coarse graph is
	// identical for any shard count or worker schedule.
	nshards := workpool.Chunks(int(nl), quotientShard)
	edgeAccs := make([]*hashtab.AccumulatorPairI64, nshards)
	nodeAccs := make([]*hashtab.AccumulatorI64, nshards)
	for s := 0; s < nshards; s++ {
		slo, shi := workpool.Bounds(int(nl), nshards, s)
		edgeAccs[s] = hashtab.NewAccumulatorPairI64In(opt.Arena, 1024)
		nodeAccs[s] = hashtab.NewAccumulatorI64In(opt.Arena, shi-slo+16)
	}
	tracer := c.Tracer()
	qsp := tracer.Begin(c.Rank(), "contract.quotient")
	busy := opt.Pool.Run(nshards, func(_, s int) {
		slo, shi := workpool.Bounds(int(nl), nshards, s)
		edgeAcc, nodeAcc := edgeAccs[s], nodeAccs[s]
		for v := int32(slo); v < int32(shi); v++ {
			cu := fineToCoarse[v]
			nodeAcc.Add(cu, fine.NW[v])
			ws := fine.EdgeWeights(v)
			for i, u := range fine.Neighbors(v) {
				cv := cOf(u)
				if cv != cu {
					edgeAcc.Add(cu, cv, ws[i])
				}
			}
		}
	})
	tracer.End2(qsp, "busy_ns", int64(busy), "shards", int64(nshards))
	lo := coarseVtx[c.Rank()]
	cLocal := int32(coarseVtx[c.Rank()+1] - lo)
	type triple struct{ src, dst, w int64 }
	var edges []triple
	for _, edgeAcc := range edgeAccs {
		edgeAcc.ForEach(func(cu, cv, w int64) {
			sh.Add(ownerOfCoarse(cu), cu, cv, w)
		})
	}
	sh.Exchange(func(rk int, buf []int64) {
		if len(buf)%3 != 0 {
			c.PoisonPeers()
			panic(fmt.Sprintf("contract: rank %d sent %d words of quotient edges (not triples)", rk, len(buf)))
		}
		for i := 0; i < len(buf); i += 3 {
			edges = append(edges, triple{buf[i], buf[i+1], buf[i+2]})
		}
	})
	nw := make([]int64, cLocal)
	for _, nodeAcc := range nodeAccs {
		nodeAcc.ForEach(func(cu, w int64) {
			sh.Add(ownerOfCoarse(cu), cu, w)
		})
	}
	sh.Exchange(func(rk int, buf []int64) {
		if len(buf)%2 != 0 {
			c.PoisonPeers()
			panic(fmt.Sprintf("contract: rank %d sent %d words of node weights (not pairs)", rk, len(buf)))
		}
		for i := 0; i < len(buf); i += 2 {
			nw[buf[i]-lo] += buf[i+1]
		}
	})

	// Step 5: assemble the local coarse subgraph.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].src != edges[j].src {
			return edges[i].src < edges[j].src
		}
		return edges[i].dst < edges[j].dst
	})
	xadj := make([]int64, cLocal+1)
	var adjG, adjW []int64
	e := 0
	for v := int32(0); v < cLocal; v++ {
		src := lo + int64(v)
		for e < len(edges) && edges[e].src == src {
			// Merge duplicates (contributions from different fine ranks).
			dst, w := edges[e].dst, edges[e].w
			e++
			for e < len(edges) && edges[e].src == src && edges[e].dst == dst {
				w += edges[e].w
				e++
			}
			adjG = append(adjG, dst)
			adjW = append(adjW, w)
		}
		xadj[v+1] = int64(len(adjG))
	}
	coarse := dgraph.Build(c, coarseVtx, nw, xadj, adjG, adjW)
	return &ParResult{Coarse: coarse, FineToCoarse: fineToCoarse}
}

// ParLift transfers a partition of the fine graph up to the coarse graph.
// It requires the clustering to be partition-homogeneous (every cluster
// inside one block), which holds when the partition was used as the
// clustering constraint (V-cycles, §IV-D): each fine rank sends
// (C(v), block(v)) pairs to the coarse owners, which adopt the (consistent)
// value. The returned slice has coarse.NTotal() entries with ghosts synced.
// Collective.
//
//parhip:collective
func ParLift(fine *dgraph.DGraph, coarse *dgraph.DGraph, fineToCoarse []int64, finePart []int64) []int64 {
	c := fine.Comm
	sh := mpi.NewSharder(c)
	seen := hashtab.NewSetI64(int(fine.NLocal()) + 16)
	for v := int32(0); v < fine.NLocal(); v++ {
		cu := fineToCoarse[v]
		if seen.Insert(cu) {
			sh.Add(coarse.Owner(cu), cu, finePart[v])
		}
	}
	coarsePart := make([]int64, coarse.NTotal())
	sh.Exchange(func(rk int, buf []int64) {
		if len(buf)%2 != 0 {
			c.PoisonPeers()
			panic(fmt.Sprintf("contract: rank %d sent %d words of block assignments (not pairs)", rk, len(buf)))
		}
		for i := 0; i < len(buf); i += 2 {
			lu, ok := coarse.ToLocal(buf[i])
			if !ok || coarse.IsGhost(lu) {
				continue
			}
			coarsePart[lu] = buf[i+1]
		}
	})
	coarse.SyncGhosts(coarsePart)
	return coarsePart
}

// ParProject transfers a partition of the coarse graph down to the fine
// graph: every fine local node asks the owner of its coarse representative
// for that node's block (§IV-C, uncoarsening), and ghost entries of the
// result are synchronized. coarsePart must hold one value per coarse-local
// node (extra ghost entries are ignored). Collective.
//
//parhip:collective
func ParProject(fine *dgraph.DGraph, coarse *dgraph.DGraph, fineToCoarse []int64, coarsePart []int64) []int64 {
	finePart := make([]int64, fine.NTotal())
	answers := coarse.LookupI64(coarsePart[:coarse.NLocal()], fineToCoarse)
	copy(finePart, answers)
	fine.SyncGhosts(finePart)
	return finePart
}
