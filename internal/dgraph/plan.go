package dgraph

import (
	"fmt"
	"sort"

	"repro/internal/mpi"
)

// ExchangePlan is the precomputed halo-exchange structure of one
// distributed graph level (§IV-A: changed labels of interface nodes travel
// only to the adjacent PEs holding ghost copies). It is built once in
// finalize() and then drives every ghost synchronization on the level
// through sparse neighborhood collectives with reusable staging buffers, so
// the steady path neither touches non-adjacent ranks nor allocates
// per-superstep buffers.
//
// The central trick is that no setup communication is needed: for a
// symmetric adjacency, the set of vertices rank s must send to rank r (s's
// local vertices with a neighbor owned by r) equals the set of s-owned
// ghosts held by r, and both sides can order it by global ID locally —
// s's interface list ascending by local ID is ascending by global ID, and r
// sorts its ghosts-owned-by-s the same way. Full syncs therefore carry
// values only (half the volume of (id, value) pairs), and sparse pushes
// carry (position-in-send-list, value) pairs that the receiver resolves
// with one array index instead of a hash lookup.
type ExchangePlan struct {
	topo *mpi.Topology
	nbrs []int32 // adjacent ranks, ascending

	// Send side: for neighbor slot i, sendVtx[sendOff[i]:sendOff[i+1]]
	// lists this rank's interface vertices whose values neighbor i needs,
	// ascending by local (= global) ID.
	sendOff []int32
	sendVtx []int32

	// Recv side: for neighbor slot i, recvGhost[recvOff[i]:recvOff[i+1]]
	// holds the local ghost IDs in exactly the order neighbor i's send list
	// produces them.
	recvOff   []int32
	recvGhost []int32

	// Per-interface-vertex routing, CSR over local nodes and parallel to
	// AdjacentRanks: adjPlan[adjOff[v]+j] packs (neighbor slot << 32 |
	// position of v in that neighbor's send list) for the j-th adjacent
	// rank of v.
	adjPlan []int64

	// sendBuf is the per-neighbor staging area, reused across exchanges
	// (truncated, never freed).
	sendBuf [][]int64
}

// buildPlan derives the exchange plan from the finalized adjacency
// metadata. Collective (topology construction verifies symmetry with one
// dense exchange).
func (d *DGraph) buildPlan() {
	p := &ExchangePlan{}

	// Neighbor set: distinct ghost-owner ranks, ascending. slotOf maps a
	// rank to its neighbor slot.
	slotOf := make([]int32, d.Comm.Size())
	for i := range slotOf {
		slotOf[i] = -1
	}
	for _, o := range d.ghostOwner {
		slotOf[o] = 0
	}
	for r, s := range slotOf {
		if s == 0 {
			slotOf[r] = int32(len(p.nbrs))
			p.nbrs = append(p.nbrs, int32(r))
		}
	}

	// Send lists: counting pass, then fill ascending by local ID, recording
	// each vertex's position in the lists it appears in.
	counts := make([]int32, len(p.nbrs))
	for v := int32(0); v < d.nLocal; v++ {
		for _, r := range d.AdjacentRanks(v) {
			counts[slotOf[r]]++
		}
	}
	p.sendOff = make([]int32, len(p.nbrs)+1)
	for i, c := range counts {
		p.sendOff[i+1] = p.sendOff[i] + c
	}
	p.sendVtx = make([]int32, p.sendOff[len(p.nbrs)])
	p.adjPlan = make([]int64, len(d.adjRankDat))
	next := append([]int32(nil), p.sendOff[:len(p.nbrs)]...)
	for v := int32(0); v < d.nLocal; v++ {
		base := d.adjRankOff[v]
		for j, r := range d.AdjacentRanks(v) {
			slot := slotOf[r]
			pos := next[slot] - p.sendOff[slot]
			p.sendVtx[next[slot]] = v
			next[slot]++
			p.adjPlan[base+int32(j)] = int64(slot)<<32 | int64(pos)
		}
	}

	// Recv lists: ghosts grouped by owner slot, each group ascending by
	// global ID — the sender's order.
	gcounts := make([]int32, len(p.nbrs))
	for _, o := range d.ghostOwner {
		gcounts[slotOf[o]]++
	}
	p.recvOff = make([]int32, len(p.nbrs)+1)
	for i, c := range gcounts {
		p.recvOff[i+1] = p.recvOff[i] + c
	}
	p.recvGhost = make([]int32, p.recvOff[len(p.nbrs)])
	gnext := append([]int32(nil), p.recvOff[:len(p.nbrs)]...)
	for gi, o := range d.ghostOwner {
		slot := slotOf[o]
		p.recvGhost[gnext[slot]] = d.nLocal + int32(gi)
		gnext[slot]++
	}
	for i := range p.nbrs {
		grp := p.recvGhost[p.recvOff[i]:p.recvOff[i+1]]
		sort.Slice(grp, func(a, b int) bool {
			return d.ToGlobal(grp[a]) < d.ToGlobal(grp[b])
		})
	}

	nbrInts := make([]int, len(p.nbrs))
	for i, r := range p.nbrs {
		nbrInts[i] = int(r)
	}
	p.topo = mpi.NewTopology(d.Comm, nbrInts)
	p.sendBuf = make([][]int64, len(p.nbrs))
	d.plan = p
}

// Plan returns the level's halo-exchange plan.
func (d *DGraph) Plan() *ExchangePlan { return d.plan }

// Topology returns the sparse rank topology the plan exchanges over.
func (p *ExchangePlan) Topology() *mpi.Topology { return p.topo }

// NeighborRanks returns the adjacent ranks in ascending order. The slice
// must not be modified.
//
//lint:rawslice-ok list of PE ranks, not a partition
func (p *ExchangePlan) NeighborRanks() []int32 { return p.nbrs }

// SendList returns the interface vertices shipped to the i-th neighbor on a
// full sync, in wire order. The slice must not be modified.
//
//lint:rawslice-ok plan send list of local node IDs, not a partition
func (p *ExchangePlan) SendList(i int) []int32 {
	return p.sendVtx[p.sendOff[i]:p.sendOff[i+1]]
}

// resetStaging truncates every staging buffer (keeping capacity).
func (p *ExchangePlan) resetStaging() {
	for i := range p.sendBuf {
		p.sendBuf[i] = p.sendBuf[i][:0]
	}
}

// AddToRank stages vals for delivery to rank r on the next Exchange. r must
// be an adjacent rank (the matching baseline routes its cross-rank matching
// handshake through this; proposal targets are ghost owners, so adjacency
// holds by construction).
func (p *ExchangePlan) AddToRank(r int32, vals ...int64) {
	i := sort.Search(len(p.nbrs), func(i int) bool { return p.nbrs[i] >= r })
	if i == len(p.nbrs) || p.nbrs[i] != r {
		panic(fmt.Sprintf("dgraph: AddToRank(%d): not an adjacent rank", r))
	}
	p.sendBuf[i] = append(p.sendBuf[i], vals...)
}

// Exchange ships the staged buffers over the neighborhood topology and
// hands each neighbor's payload to recv (data is only valid during the
// callback), then resets the staging for reuse. Collective (SPMD order).
func (p *ExchangePlan) Exchange(recv func(src int32, data []int64)) {
	c := p.topo.Comm()
	sp := c.Tracer().Begin(c.Rank(), "dgraph.plan_exchange")
	p.topo.NeighborAlltoallv(p.sendBuf, func(i int, data []int64) {
		recv(p.nbrs[i], data)
	})
	p.resetStaging()
	c.Tracer().End(sp)
}
