// Package dgraph implements the distributed graph data structure from
// §IV-A of the paper.
//
// Every rank owns a contiguous range of global node IDs. A rank stores the
// CSR adjacency of its local nodes; endpoints outside the local range are
// ghost (halo) nodes, appended after the local nodes in local ID space.
// Global IDs of local nodes translate to local IDs by subtracting the range
// start; ghost nodes are translated through a hash table, exactly as the
// paper describes. For each ghost node the owning rank is stored for O(1)
// lookup.
package dgraph

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/hashtab"
	"repro/internal/mpi"
)

// DGraph is one rank's share of a distributed graph plus its ghost halo.
type DGraph struct {
	Comm *mpi.Comm

	// GlobalN and GlobalM are the global node and undirected edge counts.
	GlobalN int64
	GlobalM int64

	// VtxDist has size+1 entries; rank p owns global IDs
	// [VtxDist[p], VtxDist[p+1]).
	VtxDist []int64

	// CSR over local nodes. Adj holds local IDs: values below NLocal()
	// are local nodes, values >= NLocal() index ghosts.
	XAdj []int64
	//lint:rawslice-ok CSR adjacency in local-index space, not a partition
	Adj  []int32
	AdjW []int64

	// NW holds node weights for local nodes followed by ghosts.
	NW []int64

	nLocal      int32
	ghostGlobal []int64 // global ID per ghost, in local-ID order
	ghostOwner  []int32 // owning rank per ghost
	g2l         *hashtab.MapI64

	// Adjacent-rank lists in CSR form: the distinct ranks owning ghost
	// neighbours of local node v are adjRankDat[adjRankOff[v]:adjRankOff[v+1]]
	// (empty for non-interface nodes). Used to push label updates only to
	// PEs that can see them (§IV-A).
	adjRankOff []int32
	adjRankDat []int32

	// plan is the precomputed halo-exchange plan (see plan.go), built once
	// in finalize().
	plan *ExchangePlan
}

// UniformVtxDist splits n nodes into size contiguous chunks of nearly equal
// size (the first n mod size chunks are one larger).
func UniformVtxDist(n int64, size int) []int64 {
	vd := make([]int64, size+1)
	base := n / int64(size)
	rem := n % int64(size)
	for p := 0; p < size; p++ {
		vd[p+1] = vd[p] + base
		if int64(p) < rem {
			vd[p+1]++
		}
	}
	return vd
}

// FromGraph builds this rank's share of g using a uniform contiguous node
// distribution. Every rank must pass an identical g (SPMD); only the local
// slice and halo are retained.
func FromGraph(c *mpi.Comm, g *graph.Graph) *DGraph {
	n := int64(g.NumNodes())
	vd := UniformVtxDist(n, c.Size())
	return FromGraphDist(c, g, vd)
}

// FromGraphDist is FromGraph with an explicit node distribution.
func FromGraphDist(c *mpi.Comm, g *graph.Graph, vtxdist []int64) *DGraph {
	lo := vtxdist[c.Rank()]
	hi := vtxdist[c.Rank()+1]
	nLocal := int32(hi - lo)
	d := &DGraph{
		Comm:    c,
		GlobalN: int64(g.NumNodes()),
		GlobalM: g.NumEdges(),
		VtxDist: vtxdist,
		nLocal:  nLocal,
		g2l:     hashtab.NewMapI64(16),
	}
	d.XAdj = make([]int64, nLocal+1)
	nw := make([]int64, nLocal)
	for v := int32(0); v < nLocal; v++ {
		gv := lo + int64(v)
		d.XAdj[v+1] = d.XAdj[v] + int64(g.Degree(int32(gv)))
		nw[v] = g.NW[gv]
	}
	d.Adj = make([]int32, d.XAdj[nLocal])
	d.AdjW = make([]int64, d.XAdj[nLocal])
	pos := 0
	for v := int32(0); v < nLocal; v++ {
		gv := int32(lo + int64(v))
		ws := g.EdgeWeights(gv)
		for i, u := range g.Neighbors(gv) {
			gu := int64(u)
			var lu int32
			if gu >= lo && gu < hi {
				lu = int32(gu - lo)
			} else {
				lu = d.internGhost(gu)
			}
			d.Adj[pos] = lu
			d.AdjW[pos] = ws[i]
			pos++
		}
	}
	d.NW = append(nw, make([]int64, len(d.ghostGlobal))...)
	for i, gu := range d.ghostGlobal {
		d.NW[int(nLocal)+i] = g.NW[gu]
	}
	d.finalize()
	return d
}

// internGhost returns the local ID for global node gu, creating a ghost
// entry if needed. Only valid during construction.
func (d *DGraph) internGhost(gu int64) int32 {
	if lu, ok := d.g2l.Get(gu); ok {
		return int32(lu)
	}
	lu := d.nLocal + int32(len(d.ghostGlobal))
	d.ghostGlobal = append(d.ghostGlobal, gu)
	d.ghostOwner = append(d.ghostOwner, int32(d.Owner(gu)))
	d.g2l.Put(gu, int64(lu))
	return lu
}

// finalize computes the per-node adjacent-rank lists and derives the
// level's halo-exchange plan. Collective (plan construction verifies the
// rank topology).
func (d *DGraph) finalize() {
	d.adjRankOff = make([]int32, d.nLocal+1)
	var scratch []int32
	for v := int32(0); v < d.nLocal; v++ {
		scratch = scratch[:0]
		for _, u := range d.Neighbors(v) {
			if u >= d.nLocal {
				scratch = append(scratch, d.ghostOwner[u-d.nLocal])
			}
		}
		d.adjRankOff[v+1] = d.adjRankOff[v]
		if len(scratch) == 0 {
			continue
		}
		sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
		prev := int32(-1)
		for _, r := range scratch {
			if r != prev {
				d.adjRankDat = append(d.adjRankDat, r)
				d.adjRankOff[v+1]++
				prev = r
			}
		}
	}
	d.buildPlan()
}

// NLocal returns the number of nodes this rank owns.
func (d *DGraph) NLocal() int32 { return d.nLocal }

// NGhost returns the number of ghost nodes on this rank.
func (d *DGraph) NGhost() int32 { return int32(len(d.ghostGlobal)) }

// NTotal returns local + ghost node count (the length of per-node arrays).
func (d *DGraph) NTotal() int32 { return d.nLocal + int32(len(d.ghostGlobal)) }

// FirstGlobal returns the first global ID owned by this rank.
func (d *DGraph) FirstGlobal() int64 { return d.VtxDist[d.Comm.Rank()] }

// IsGhost reports whether local ID v refers to a ghost node.
func (d *DGraph) IsGhost(v int32) bool { return v >= d.nLocal }

// IsInterface reports whether local node v has a neighbour on another rank.
func (d *DGraph) IsInterface(v int32) bool {
	return v < d.nLocal && d.adjRankOff[v+1] > d.adjRankOff[v]
}

// AdjacentRanks returns the ranks owning ghost neighbours of local node v
// (empty for interior nodes). The slice must not be modified.
//
//lint:rawslice-ok list of PE ranks, not a partition
func (d *DGraph) AdjacentRanks(v int32) []int32 {
	return d.adjRankDat[d.adjRankOff[v]:d.adjRankOff[v+1]]
}

// ToGlobal converts a local ID (local node or ghost) to its global ID.
func (d *DGraph) ToGlobal(v int32) int64 {
	if v < d.nLocal {
		return d.FirstGlobal() + int64(v)
	}
	return d.ghostGlobal[v-d.nLocal]
}

// ToLocal converts a global ID to a local ID. ok is false when the node is
// neither local nor a known ghost.
func (d *DGraph) ToLocal(g int64) (int32, bool) {
	lo := d.FirstGlobal()
	if g >= lo && g < d.VtxDist[d.Comm.Rank()+1] {
		return int32(g - lo), true
	}
	lu, ok := d.g2l.Get(g)
	return int32(lu), ok
}

// Owner returns the rank owning global node g.
func (d *DGraph) Owner(g int64) int {
	// Binary search: largest p with VtxDist[p] <= g.
	lo, hi := 0, len(d.VtxDist)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if d.VtxDist[mid] <= g {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// GhostOwner returns the rank owning ghost with local ID v.
func (d *DGraph) GhostOwner(v int32) int32 { return d.ghostOwner[v-d.nLocal] }

// Degree returns the degree of local node v.
func (d *DGraph) Degree(v int32) int32 { return int32(d.XAdj[v+1] - d.XAdj[v]) }

// Neighbors returns the local-ID neighbour list of local node v; entries
// >= NLocal() are ghosts. The slice aliases internal storage.
//
//lint:rawslice-ok local node IDs in CSR order, not a partition
func (d *DGraph) Neighbors(v int32) []int32 { return d.Adj[d.XAdj[v]:d.XAdj[v+1]] }

// EdgeWeights returns edge weights parallel to Neighbors(v).
func (d *DGraph) EdgeWeights(v int32) []int64 { return d.AdjW[d.XAdj[v]:d.XAdj[v+1]] }

// LocalNodeWeight returns the total weight of this rank's local nodes.
func (d *DGraph) LocalNodeWeight() int64 {
	var s int64
	for v := int32(0); v < d.nLocal; v++ {
		s += d.NW[v]
	}
	return s
}

// GlobalNodeWeight returns the total node weight across all ranks
// (collective).
func (d *DGraph) GlobalNodeWeight() int64 {
	return d.Comm.AllreduceSum1(d.LocalNodeWeight())
}

// MaxNodeWeightGlobal returns the maximum node weight across all ranks
// (collective).
func (d *DGraph) MaxNodeWeightGlobal() int64 {
	var mw int64
	for v := int32(0); v < d.nLocal; v++ {
		if d.NW[v] > mw {
			mw = d.NW[v]
		}
	}
	return d.Comm.AllreduceMax1(mw)
}

// Validate checks local structural invariants and, collectively, that ghost
// metadata is consistent with the owners' data.
func (d *DGraph) Validate() error {
	if d.XAdj[0] != 0 || len(d.XAdj) != int(d.nLocal)+1 {
		return fmt.Errorf("dgraph: bad XAdj shape")
	}
	for v := int32(0); v < d.nLocal; v++ {
		if d.XAdj[v+1] < d.XAdj[v] {
			return fmt.Errorf("dgraph: XAdj not monotone at %d", v)
		}
	}
	nt := d.NTotal()
	for i, u := range d.Adj {
		if u < 0 || u >= nt {
			return fmt.Errorf("dgraph: adjacency entry %d out of range", i)
		}
		if d.AdjW[i] <= 0 {
			return fmt.Errorf("dgraph: non-positive edge weight at slot %d", i)
		}
	}
	for i, g := range d.ghostGlobal {
		if g >= d.FirstGlobal() && g < d.VtxDist[d.Comm.Rank()+1] {
			return fmt.Errorf("dgraph: ghost %d is actually local", i)
		}
		if int(d.ghostOwner[i]) != d.Owner(g) {
			return fmt.Errorf("dgraph: ghost %d owner mismatch", i)
		}
	}
	// Ghost node weights must match the owners' values.
	queries := append([]int64(nil), d.ghostGlobal...)
	answers := d.LookupI64(d.NW[:d.nLocal], queries)
	for i := range queries {
		if answers[i] != d.NW[int(d.nLocal)+i] {
			return fmt.Errorf("dgraph: ghost %d weight stale: have %d, owner has %d",
				i, d.NW[int(d.nLocal)+i], answers[i])
		}
	}
	return nil
}

// LookupI64 answers point queries against a distributed per-local-node
// array: queries are global node IDs, and the result holds, for each query,
// vals[q - ownerFirst] read on q's owner. Queries may target any rank (not
// just plan neighbors — uncoarsening projection asks arbitrary coarse
// owners), so the exchange is a dense all-to-all, but it runs on the
// pooled-buffer collective so received payloads are recycled. Collective:
// all ranks must call.
func (d *DGraph) LookupI64(vals []int64, queries []int64) []int64 {
	size := d.Comm.Size()
	// Group queries by owner, remembering the original position.
	byOwner := make([][]int64, size)
	posByOwner := make([][]int32, size)
	for qi, q := range queries {
		o := d.Owner(q)
		byOwner[o] = append(byOwner[o], q)
		posByOwner[o] = append(posByOwner[o], int32(qi))
	}
	// Answer what we own.
	replies := make([][]int64, size)
	lo := d.FirstGlobal()
	d.Comm.AlltoallvFunc(byOwner, func(r int, qs []int64) {
		if len(qs) == 0 {
			return
		}
		ans := make([]int64, len(qs))
		for i, q := range qs {
			ans[i] = vals[q-lo]
		}
		replies[r] = ans
	})
	out := make([]int64, len(queries))
	d.Comm.AlltoallvFunc(replies, func(r int, ans []int64) {
		if len(ans) != len(posByOwner[r]) {
			d.Comm.PoisonPeers()
			panic(fmt.Sprintf("dgraph: rank %d answered %d of %d queries",
				r, len(ans), len(posByOwner[r])))
		}
		for i, pos := range posByOwner[r] {
			out[pos] = ans[i]
		}
	})
	return out
}

// SyncGhosts overwrites the ghost tail of vals (indices NLocal()..NTotal())
// with the owners' current local values. vals must have NTotal() entries.
// The exchange follows the precomputed plan: values only (both sides know
// the wire order), adjacent ranks only, staging buffers reused. Collective.
//
//parhip:collective
func (d *DGraph) SyncGhosts(vals []int64) {
	sp := d.Comm.Tracer().Begin(d.Comm.Rank(), "dgraph.sync_ghosts")
	p := d.plan
	for i := range p.nbrs {
		buf := p.sendBuf[i][:0]
		for _, v := range p.sendVtx[p.sendOff[i]:p.sendOff[i+1]] {
			buf = append(buf, vals[v])
		}
		p.sendBuf[i] = buf
	}
	p.topo.NeighborAlltoallv(p.sendBuf, func(i int, data []int64) {
		ghosts := p.recvGhost[p.recvOff[i]:p.recvOff[i+1]]
		if len(data) != len(ghosts) {
			d.Comm.PoisonPeers()
			panic(fmt.Sprintf("dgraph: ghost sync from rank %d carried %d values for %d ghosts",
				p.nbrs[i], len(data), len(ghosts)))
		}
		for j, g := range ghosts {
			vals[g] = data[j]
		}
	})
	p.resetStaging()
	d.Comm.Tracer().End(sp)
}

// syncGhostsDense is the pre-plan implementation (point queries through the
// dense all-to-all). It is retained as the test oracle the plan-based path
// is verified against.
func (d *DGraph) syncGhostsDense(vals []int64) {
	answers := d.LookupI64(vals[:d.nLocal], d.ghostGlobal)
	copy(vals[d.nLocal:], answers)
}

// PushGhosts propagates updated values of the given changed local interface
// nodes to the ranks holding them as ghosts, updating their vals arrays in
// place. Nodes in changed that are not interface nodes are skipped. This is
// the update-exchange from §IV-A, realized as one sparse neighborhood
// exchange per phase. Collective.
//
//parhip:collective
//lint:rawslice-ok changed is a list of local node IDs, not a partition
func (d *DGraph) PushGhosts(vals []int64, changed []int32) {
	d.PushGhostsFunc(vals, changed, nil)
}

// PushGhostsFunc is PushGhosts with an update hook: when onUpdate is
// non-nil it is invoked for every ghost whose value actually changes,
// before the write, with the ghost's local ID and the old and new values.
// Label propagation uses it to migrate locally tracked cluster weights.
//
// Wire protocol: for each changed vertex v and each adjacent rank, the
// plan's staging receives the pair (position of v in that neighbor's send
// list, vals[v]). A malformed incoming buffer — odd length or an
// out-of-range position — poisons the peers and panics loudly instead of
// being silently truncated. Collective.
//
//parhip:collective
//lint:rawslice-ok changed is a list of local node IDs, not a partition
func (d *DGraph) PushGhostsFunc(vals []int64, changed []int32, onUpdate func(ghost int32, old, new int64)) {
	sp := d.Comm.Tracer().Begin(d.Comm.Rank(), "dgraph.push_ghosts")
	p := d.plan
	p.resetStaging()
	for _, v := range changed {
		base := d.adjRankOff[v]
		for j := base; j < d.adjRankOff[v+1]; j++ {
			packed := p.adjPlan[j]
			slot := packed >> 32
			pos := packed & 0xffffffff
			p.sendBuf[slot] = append(p.sendBuf[slot], pos, vals[v])
		}
	}
	p.topo.NeighborAlltoallv(p.sendBuf, func(i int, data []int64) {
		if len(data)%2 != 0 {
			d.Comm.PoisonPeers()
			panic(fmt.Sprintf("dgraph: ghost push from rank %d carried %d words (odd, not (pos, value) pairs)",
				p.nbrs[i], len(data)))
		}
		ghosts := p.recvGhost[p.recvOff[i]:p.recvOff[i+1]]
		for j := 0; j < len(data); j += 2 {
			pos := data[j]
			if pos < 0 || pos >= int64(len(ghosts)) {
				d.Comm.PoisonPeers()
				panic(fmt.Sprintf("dgraph: ghost push from rank %d names position %d of %d",
					p.nbrs[i], pos, len(ghosts)))
			}
			g := ghosts[pos]
			nv := data[j+1]
			if onUpdate != nil && vals[g] != nv {
				onUpdate(g, vals[g], nv)
			}
			vals[g] = nv
		}
	})
	p.resetStaging()
	d.Comm.Tracer().End1(sp, "changed", int64(len(changed)))
}

// pushGhostsDense is the pre-plan implementation ((globalID, value) pairs
// over the dense all-to-all, silently skipping unknown IDs). It is retained
// as the test oracle the plan-based path is verified against.
func (d *DGraph) pushGhostsDense(vals []int64, changed []int32) {
	size := d.Comm.Size()
	out := make([][]int64, size)
	for _, v := range changed {
		for _, r := range d.AdjacentRanks(v) {
			out[r] = append(out[r], d.ToGlobal(v), vals[v])
		}
	}
	in := d.Comm.Alltoallv(out)
	for _, buf := range in {
		for i := 0; i+1 < len(buf); i += 2 {
			if lu, ok := d.ToLocal(buf[i]); ok && lu >= d.nLocal {
				vals[lu] = buf[i+1]
			}
		}
	}
}

// Gather replicates the full distributed graph on every rank. The paper
// uses this on the coarsest graph before running the evolutionary
// partitioner ("the distributed coarse graph is then collected on each
// PE"). Collective.
//
//parhip:collective
func (d *DGraph) Gather() *graph.Graph {
	// Serialize local part: [nLocal, then per node: weight, degree,
	// (globalNbr, w)*].
	var buf []int64
	buf = append(buf, int64(d.nLocal))
	for v := int32(0); v < d.nLocal; v++ {
		buf = append(buf, d.NW[v], int64(d.Degree(v)))
		ws := d.EdgeWeights(v)
		for i, u := range d.Neighbors(v) {
			buf = append(buf, d.ToGlobal(u), ws[i])
		}
	}
	parts := d.Comm.Allgatherv(buf)
	n := d.GlobalN
	xadj := make([]int64, n+1)
	nw := make([]int64, n)
	var adj []int32
	var adjw []int64
	var gv int64
	for _, part := range parts {
		i := 0
		cnt := part[i]
		i++
		for c := int64(0); c < cnt; c++ {
			nw[gv] = part[i]
			deg := part[i+1]
			i += 2
			xadj[gv+1] = xadj[gv] + deg
			for e := int64(0); e < deg; e++ {
				adj = append(adj, int32(part[i]))
				adjw = append(adjw, part[i+1])
				i += 2
			}
			gv++
		}
	}
	if gv != n {
		panic(fmt.Sprintf("dgraph: gather reconstructed %d of %d nodes", gv, n))
	}
	return graph.FromCSR(xadj, adj, adjw, nw)
}

// EdgeCut computes the global weight of edges crossing between different
// values of part, where part has NTotal() entries (ghost entries must be in
// sync). Collective.
//
//parhip:collective
func (d *DGraph) EdgeCut(part []int64) int64 {
	var local int64
	for v := int32(0); v < d.nLocal; v++ {
		ws := d.EdgeWeights(v)
		for i, u := range d.Neighbors(v) {
			if part[v] != part[u] {
				local += ws[i]
			}
		}
	}
	// Each cut edge is seen from both endpoints: twice on one rank if both
	// endpoints are local, once on each of two ranks otherwise.
	return d.Comm.AllreduceSum1(local) / 2
}

// BlockWeights returns the global node weight of blocks 0..k-1 under part
// (NTotal() entries; only local entries are read). Collective.
//
//parhip:collective
func (d *DGraph) BlockWeights(part []int64, k int32) []int64 {
	local := make([]int64, k)
	for v := int32(0); v < d.nLocal; v++ {
		local[part[v]] += d.NW[v]
	}
	return d.Comm.AllreduceSum(local)
}

// GhostFraction returns the fraction of adjacency entries referring to
// ghosts, the locality measure the paper reports for del vs rgg graphs
// (§V-B). Collective.
//
//parhip:collective
func (d *DGraph) GhostFraction() float64 {
	var ghost int64
	for _, u := range d.Adj {
		if u >= d.nLocal {
			ghost++
		}
	}
	tot := d.Comm.AllreduceSum([]int64{ghost, int64(len(d.Adj))})
	if tot[1] == 0 {
		return 0
	}
	return float64(tot[0]) / float64(tot[1])
}
