package dgraph

import (
	"fmt"

	"repro/internal/hashtab"
	"repro/internal/mpi"
)

// Build constructs a distributed graph when each rank already holds the CSR
// rows of its own contiguous range with neighbours given as global IDs:
// nw[i] is the weight of global node vtxdist[rank]+i, and that node's
// neighbours are adjGlobal[xadj[i]:xadj[i+1]] with weights adjw. Ghost
// weights are fetched from the owners, and the global edge count is
// computed collectively. The parallel contraction algorithm uses this to
// assemble each coarse level. Collective.
//
//parhip:collective
func Build(c *mpi.Comm, vtxdist []int64, nw []int64, xadj []int64, adjGlobal []int64, adjw []int64) *DGraph {
	if len(vtxdist) != c.Size()+1 {
		panic(fmt.Sprintf("dgraph: vtxdist has %d entries for %d ranks", len(vtxdist), c.Size()))
	}
	lo := vtxdist[c.Rank()]
	hi := vtxdist[c.Rank()+1]
	nLocal := int32(hi - lo)
	if int32(len(nw)) != nLocal || len(xadj) != int(nLocal)+1 {
		panic("dgraph: Build called with inconsistent local arrays")
	}
	d := &DGraph{
		Comm:    c,
		GlobalN: vtxdist[c.Size()],
		VtxDist: vtxdist,
		nLocal:  nLocal,
		g2l:     hashtab.NewMapI64(16),
		XAdj:    xadj,
	}
	d.Adj = make([]int32, len(adjGlobal))
	d.AdjW = adjw
	for i, gu := range adjGlobal {
		if gu >= lo && gu < hi {
			d.Adj[i] = int32(gu - lo)
		} else {
			d.Adj[i] = d.internGhost(gu)
		}
	}
	d.NW = append(append([]int64(nil), nw...), make([]int64, len(d.ghostGlobal))...)
	d.finalize()
	// Fetch ghost node weights from their owners.
	if d.Comm.Size() > 0 {
		answers := d.LookupI64(d.NW[:d.nLocal], d.ghostGlobal)
		copy(d.NW[d.nLocal:], answers)
	}
	var localEdges int64
	for i, u := range d.Adj {
		_ = i
		if u < d.nLocal {
			localEdges++ // counted twice (both endpoints local)
		} else {
			localEdges += 1 // ghost edge: counted once here, once on the other owner
		}
	}
	d.GlobalM = c.AllreduceSum1(localEdges) / 2
	return d
}
