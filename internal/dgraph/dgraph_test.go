package dgraph

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
)

// runP executes fn on a P-rank world.
func runP(t *testing.T, P int, fn func(c *mpi.Comm)) {
	t.Helper()
	mpi.NewWorld(P).Run(fn)
}

func TestUniformVtxDist(t *testing.T) {
	vd := UniformVtxDist(10, 4)
	want := []int64{0, 3, 6, 8, 10}
	for i := range want {
		if vd[i] != want[i] {
			t.Fatalf("vtxdist = %v, want %v", vd, want)
		}
	}
	vd = UniformVtxDist(2, 4) // more ranks than nodes
	if vd[4] != 2 {
		t.Fatalf("vtxdist = %v", vd)
	}
}

func TestFromGraphPartitionsNodes(t *testing.T) {
	g := graph.Cycle(10)
	runP(t, 4, func(c *mpi.Comm) {
		d := FromGraph(c, g)
		total := c.AllreduceSum1(int64(d.NLocal()))
		if total != 10 {
			t.Errorf("local counts sum to %d", total)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		if d.GlobalM != g.NumEdges() {
			t.Errorf("GlobalM = %d", d.GlobalM)
		}
	})
}

func TestGlobalLocalRoundTrip(t *testing.T) {
	g := gen.RGG(200, 3)
	runP(t, 3, func(c *mpi.Comm) {
		d := FromGraph(c, g)
		for v := int32(0); v < d.NTotal(); v++ {
			gid := d.ToGlobal(v)
			lu, ok := d.ToLocal(gid)
			if !ok || lu != v {
				t.Errorf("rank %d: roundtrip failed for local %d (global %d)", c.Rank(), v, gid)
				return
			}
		}
	})
}

func TestOwnerConsistent(t *testing.T) {
	g := graph.Path(17)
	runP(t, 4, func(c *mpi.Comm) {
		d := FromGraph(c, g)
		for gid := int64(0); gid < d.GlobalN; gid++ {
			o := d.Owner(gid)
			if gid >= d.VtxDist[o+1] || gid < d.VtxDist[o] {
				t.Errorf("Owner(%d) = %d but range is [%d,%d)", gid, o, d.VtxDist[o], d.VtxDist[o+1])
				return
			}
		}
	})
}

func TestGhostsMatchCutEdges(t *testing.T) {
	// In a path split into contiguous chunks each interior rank has exactly
	// 2 ghosts (one per side).
	g := graph.Path(20)
	runP(t, 4, func(c *mpi.Comm) {
		d := FromGraph(c, g)
		want := int32(2)
		if c.Rank() == 0 || c.Rank() == 3 {
			want = 1
		}
		if d.NGhost() != want {
			t.Errorf("rank %d: %d ghosts, want %d", c.Rank(), d.NGhost(), want)
		}
	})
}

func TestAdjacentRanks(t *testing.T) {
	g := graph.Path(8)
	runP(t, 4, func(c *mpi.Comm) {
		d := FromGraph(c, g)
		// Each rank owns 2 nodes; node 0 of interior ranks touches the rank
		// to the left, node 1 the rank to the right.
		if c.Rank() == 1 {
			if len(d.AdjacentRanks(0)) != 1 || d.AdjacentRanks(0)[0] != 0 {
				t.Errorf("rank 1 node 0 adjacent ranks: %v", d.AdjacentRanks(0))
			}
			if len(d.AdjacentRanks(1)) != 1 || d.AdjacentRanks(1)[0] != 2 {
				t.Errorf("rank 1 node 1 adjacent ranks: %v", d.AdjacentRanks(1))
			}
		}
		if !d.IsInterface(0) && c.Rank() > 0 {
			t.Errorf("rank %d node 0 should be interface", c.Rank())
		}
	})
}

func TestGatherReconstructs(t *testing.T) {
	g := gen.RGG(150, 5)
	runP(t, 4, func(c *mpi.Comm) {
		d := FromGraph(c, g)
		got := d.Gather()
		if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
			t.Errorf("gather: %v vs %v", got, g)
			return
		}
		for v := int32(0); v < g.NumNodes(); v++ {
			if got.NW[v] != g.NW[v] || got.Degree(v) != g.Degree(v) {
				t.Errorf("gather: node %d differs", v)
				return
			}
			a, b := g.Neighbors(v), got.Neighbors(v)
			for i := range a {
				if a[i] != b[i] || g.EdgeWeights(v)[i] != got.EdgeWeights(v)[i] {
					t.Errorf("gather: adjacency of %d differs", v)
					return
				}
			}
		}
	})
}

func TestLookupI64(t *testing.T) {
	g := graph.Cycle(12)
	runP(t, 3, func(c *mpi.Comm) {
		d := FromGraph(c, g)
		// Store global ID * 10 as the value on each owner.
		vals := make([]int64, d.NLocal())
		for v := int32(0); v < d.NLocal(); v++ {
			vals[v] = d.ToGlobal(v) * 10
		}
		queries := []int64{0, 5, 11, int64(c.Rank())}
		got := d.LookupI64(vals, queries)
		for i, q := range queries {
			if got[i] != q*10 {
				t.Errorf("rank %d: lookup(%d) = %d", c.Rank(), q, got[i])
			}
		}
	})
}

func TestSyncGhosts(t *testing.T) {
	g := graph.Cycle(12)
	runP(t, 4, func(c *mpi.Comm) {
		d := FromGraph(c, g)
		vals := make([]int64, d.NTotal())
		for v := int32(0); v < d.NLocal(); v++ {
			vals[v] = d.ToGlobal(v) + 100
		}
		d.SyncGhosts(vals)
		for v := d.NLocal(); v < d.NTotal(); v++ {
			if vals[v] != d.ToGlobal(v)+100 {
				t.Errorf("rank %d: ghost %d not synced: %d", c.Rank(), v, vals[v])
			}
		}
	})
}

func TestPushGhosts(t *testing.T) {
	g := graph.Cycle(12)
	runP(t, 4, func(c *mpi.Comm) {
		d := FromGraph(c, g)
		vals := make([]int64, d.NTotal())
		// Everyone writes a recognizable value to every local node and
		// pushes all of them.
		changed := make([]int32, d.NLocal())
		for v := int32(0); v < d.NLocal(); v++ {
			vals[v] = d.ToGlobal(v)*7 + 1
			changed[v] = v
		}
		d.PushGhosts(vals, changed)
		for v := d.NLocal(); v < d.NTotal(); v++ {
			if vals[v] != d.ToGlobal(v)*7+1 {
				t.Errorf("rank %d: ghost %d has %d", c.Rank(), v, vals[v])
			}
		}
	})
}

func TestEdgeCutDistributed(t *testing.T) {
	g := graph.Path(16)
	runP(t, 4, func(c *mpi.Comm) {
		d := FromGraph(c, g)
		part := make([]int64, d.NTotal())
		// Block = global ID / 8: one cut edge in the middle of the path.
		for v := int32(0); v < d.NTotal(); v++ {
			part[v] = d.ToGlobal(v) / 8
		}
		if cut := d.EdgeCut(part); cut != 1 {
			t.Errorf("cut = %d, want 1", cut)
		}
	})
}

func TestBlockWeightsDistributed(t *testing.T) {
	g := graph.Path(16)
	runP(t, 4, func(c *mpi.Comm) {
		d := FromGraph(c, g)
		part := make([]int64, d.NTotal())
		for v := int32(0); v < d.NTotal(); v++ {
			part[v] = d.ToGlobal(v) % 2
		}
		bw := d.BlockWeights(part, 2)
		if bw[0] != 8 || bw[1] != 8 {
			t.Errorf("block weights %v", bw)
		}
	})
}

func TestGlobalWeightAndMax(t *testing.T) {
	b := graph.NewBuilder(6)
	for v := int32(0); v < 6; v++ {
		b.SetNodeWeight(v, int64(v)+1)
	}
	b.AddEdge(0, 5)
	g := b.Build()
	runP(t, 3, func(c *mpi.Comm) {
		d := FromGraph(c, g)
		if w := d.GlobalNodeWeight(); w != 21 {
			t.Errorf("global weight %d", w)
		}
		if mw := d.MaxNodeWeightGlobal(); mw != 6 {
			t.Errorf("max weight %d", mw)
		}
	})
}

func TestBuildFromParts(t *testing.T) {
	// Assemble a 4-cycle manually: rank owns nodes [2r, 2r+2).
	runP(t, 2, func(c *mpi.Comm) {
		vtxdist := []int64{0, 2, 4}
		lo := vtxdist[c.Rank()]
		nw := []int64{1, 1}
		var xadj []int64
		var adjG, adjw []int64
		xadj = append(xadj, 0)
		for i := int64(0); i < 2; i++ {
			gv := lo + i
			nbrs := []int64{(gv + 1) % 4, (gv + 3) % 4}
			for _, u := range nbrs {
				adjG = append(adjG, u)
				adjw = append(adjw, 1)
			}
			xadj = append(xadj, int64(len(adjG)))
		}
		d := Build(c, vtxdist, nw, xadj, adjG, adjw)
		if d.GlobalN != 4 || d.GlobalM != 4 {
			t.Errorf("rank %d: n=%d m=%d", c.Rank(), d.GlobalN, d.GlobalM)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		got := d.Gather()
		if got.NumNodes() != 4 || got.NumEdges() != 4 {
			t.Errorf("gathered %v", got)
		}
	})
}

func TestGhostFraction(t *testing.T) {
	g := graph.Path(16)
	runP(t, 4, func(c *mpi.Comm) {
		d := FromGraph(c, g)
		// A 16-path has 15 edges -> 30 adjacency entries; 3 cut edges
		// contribute 6 ghost entries.
		got := d.GhostFraction()
		want := 6.0 / 30.0
		if got < want-1e-9 || got > want+1e-9 {
			t.Errorf("ghost fraction %v, want %v", got, want)
		}
	})
}

func TestSingleRankNoGhosts(t *testing.T) {
	g := gen.RGG(100, 1)
	runP(t, 1, func(c *mpi.Comm) {
		d := FromGraph(c, g)
		if d.NGhost() != 0 {
			t.Errorf("%d ghosts on single rank", d.NGhost())
		}
		if err := d.Validate(); err != nil {
			t.Error(err)
		}
	})
}

func TestEmptyRankRanges(t *testing.T) {
	// More ranks than nodes: high ranks own nothing and must not crash.
	g := graph.Path(3)
	runP(t, 5, func(c *mpi.Comm) {
		d := FromGraph(c, g)
		if err := d.Validate(); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		got := d.Gather()
		if got.NumNodes() != 3 || got.NumEdges() != 2 {
			t.Errorf("rank %d gathered %v", c.Rank(), got)
		}
	})
}
