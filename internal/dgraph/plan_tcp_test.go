package dgraph

import (
	"sync"
	"testing"

	"repro/internal/mpi"
	"repro/internal/mpi/transport"
	"repro/internal/rng"
)

// TestPropertyPlanExchangeMatchesDenseOracleTCP is the cross-backend twin
// of TestPropertyPlanExchangeMatchesDenseOracle: the same 50 random
// (graph, rank count) instances run over a real loopback TCP world, and
// the plan-based SyncGhosts/PushGhosts must stay bit-identical to the
// dense oracles — serialization through the wire must not perturb a
// single label.
func TestPropertyPlanExchangeMatchesDenseOracleTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 50 networked worlds in -short mode")
	}
	for trial := 0; trial < 50; trial++ {
		seed := uint64(trial + 1)
		P := trial%7 + 1
		g := randomGraph(seed)
		ts, err := transport.Loopback(P, transport.TCPConfig{})
		if err != nil {
			t.Fatalf("trial %d: Loopback: %v", trial, err)
		}
		trs := make([]transport.Transport, P)
		for i, tr := range ts {
			trs[i] = tr
		}
		ws, err := mpi.JoinWorlds(trs...)
		if err != nil {
			t.Fatalf("trial %d: JoinWorlds: %v", trial, err)
		}
		var mu sync.Mutex
		failed := false
		mpi.RunAll(ws, func(c *mpi.Comm) {
			d := FromGraph(c, g)
			r := rng.New(seed).Split(uint64(c.Rank() + 101))

			valsPlan := make([]int64, d.NTotal())
			valsDense := make([]int64, d.NTotal())
			for v := int32(0); v < d.NLocal(); v++ {
				x := r.Int64n(1 << 30)
				valsPlan[v] = x
				valsDense[v] = x
			}
			d.SyncGhosts(valsPlan)
			d.syncGhostsDense(valsDense)
			for v := range valsPlan {
				if valsPlan[v] != valsDense[v] {
					mu.Lock()
					failed = true
					mu.Unlock()
					return
				}
			}

			var changed []int32
			for v := int32(0); v < d.NLocal(); v++ {
				if d.IsInterface(v) && r.Intn(3) == 0 {
					x := r.Int64n(1 << 30)
					valsPlan[v] = x
					valsDense[v] = x
					changed = append(changed, v)
				}
			}
			d.PushGhosts(valsPlan, changed)
			d.pushGhostsDense(valsDense, changed)
			for v := range valsPlan {
				if valsPlan[v] != valsDense[v] {
					mu.Lock()
					failed = true
					mu.Unlock()
					return
				}
			}
		})
		for i, w := range ws {
			if err := w.Err(); err != nil {
				t.Fatalf("trial %d: world %d transport error: %v", trial, i, err)
			}
			w.Close()
		}
		if failed {
			t.Fatalf("trial %d (seed %d, P=%d): plan exchange over tcp diverged from dense oracle", trial, seed, P)
		}
	}
}
