package dgraph

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/rng"
)

// Property tests over random graphs and rank counts: the distributed view
// must agree with the sequential graph no matter how nodes are split.

func TestPropertyDistributedMatchesSequential(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		P := int(pRaw%6) + 1
		r := rng.New(seed)
		n := r.Int31n(120) + 5
		b := graph.NewBuilder(n)
		for i := 0; i < int(n)*3; i++ {
			u, v := r.Int31n(n), r.Int31n(n)
			if u != v {
				b.AddEdgeW(u, v, r.Int64n(4)+1)
			}
		}
		g := b.Build()
		ok := true
		mpi.NewWorld(P).Run(func(c *mpi.Comm) {
			d := FromGraph(c, g)
			if d.Validate() != nil {
				ok = false
				return
			}
			// Per-node degree and weighted degree agree with g.
			for v := int32(0); v < d.NLocal(); v++ {
				gv := int32(d.ToGlobal(v))
				if d.Degree(v) != g.Degree(gv) || d.NW[v] != g.NW[gv] {
					ok = false
					return
				}
				var wd int64
				for _, w := range d.EdgeWeights(v) {
					wd += w
				}
				if wd != g.WeightedDegree(gv) {
					ok = false
					return
				}
			}
			// Global aggregates.
			if d.GlobalNodeWeight() != g.TotalNodeWeight() {
				ok = false
			}
			if d.GlobalM != g.NumEdges() {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEdgeCutMatchesSequential(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		P := int(pRaw%5) + 1
		g := gen.RGG(150, seed)
		k := int64(4)
		// Sequential reference cut of block(v) = v mod k.
		var ref int64
		for v := int32(0); v < g.NumNodes(); v++ {
			ws := g.EdgeWeights(v)
			for i, u := range g.Neighbors(v) {
				if int64(v)%k != int64(u)%k {
					ref += ws[i]
				}
			}
		}
		ref /= 2
		ok := true
		mpi.NewWorld(P).Run(func(c *mpi.Comm) {
			d := FromGraph(c, g)
			part := make([]int64, d.NTotal())
			for v := int32(0); v < d.NTotal(); v++ {
				part[v] = d.ToGlobal(v) % k
			}
			if d.EdgeCut(part) != ref {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGatherIdentity(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		P := int(pRaw%4) + 1
		g := gen.BarabasiAlbert(80, 3, seed)
		ok := true
		mpi.NewWorld(P).Run(func(c *mpi.Comm) {
			d := FromGraph(c, g)
			got := d.Gather()
			if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
				ok = false
				return
			}
			for v := int32(0); v < g.NumNodes(); v++ {
				a, b := g.Neighbors(v), got.Neighbors(v)
				if len(a) != len(b) {
					ok = false
					return
				}
				for i := range a {
					if a[i] != b[i] {
						ok = false
						return
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
