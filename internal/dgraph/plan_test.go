package dgraph

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/rng"
)

// randomGraph builds a connected-ish random weighted graph for plan tests.
func randomGraph(seed uint64) *graph.Graph {
	r := rng.New(seed)
	n := r.Int31n(150) + 4
	b := graph.NewBuilder(n)
	// A spine keeps most nodes non-isolated; random extra edges create
	// irregular cross-rank adjacency.
	for v := int32(1); v < n; v++ {
		if r.Intn(4) != 0 {
			b.AddEdgeW(v-1, v, r.Int64n(5)+1)
		}
	}
	for i := int32(0); i < n*2; i++ {
		u, v := r.Int31n(n), r.Int31n(n)
		if u != v {
			b.AddEdgeW(u, v, r.Int64n(5)+1)
		}
	}
	return b.Build()
}

func TestPlanStructureConsistent(t *testing.T) {
	g := randomGraph(11)
	const P = 4
	mpi.NewWorld(P).Run(func(c *mpi.Comm) {
		d := FromGraph(c, g)
		p := d.Plan()
		// Every ghost owner appears as a neighbor and vice versa.
		owners := map[int32]bool{}
		for gi := range d.ghostGlobal {
			owners[d.ghostOwner[gi]] = true
		}
		if len(owners) != len(p.nbrs) {
			t.Errorf("rank %d: %d ghost owners but %d plan neighbors", c.Rank(), len(owners), len(p.nbrs))
		}
		for _, r := range p.nbrs {
			if !owners[r] {
				t.Errorf("rank %d: neighbor %d owns no ghosts here", c.Rank(), r)
			}
		}
		// Send lists contain interface vertices ascending, each adjacent to
		// the neighbor in question.
		for i := range p.nbrs {
			list := p.SendList(i)
			for j, v := range list {
				if j > 0 && list[j-1] >= v {
					t.Errorf("rank %d: send list for %d not ascending", c.Rank(), p.nbrs[i])
				}
				found := false
				for _, r := range d.AdjacentRanks(v) {
					if r == p.nbrs[i] {
						found = true
					}
				}
				if !found {
					t.Errorf("rank %d: vertex %d in send list for %d but not adjacent", c.Rank(), v, p.nbrs[i])
				}
			}
		}
		// Counterpart cardinality: my recv count from neighbor i must equal
		// that neighbor's send count towards me. Verified by exchanging the
		// counts themselves.
		out := make([][]int64, len(p.nbrs))
		for i := range p.nbrs {
			out[i] = []int64{int64(len(p.SendList(i)))}
		}
		p.topo.NeighborAlltoallv(out, func(i int, data []int64) {
			want := int64(p.recvOff[i+1] - p.recvOff[i])
			if data[0] != want {
				t.Errorf("rank %d: neighbor %d sends %d values, I expect %d ghosts",
					c.Rank(), p.nbrs[i], data[0], want)
			}
		})
	})
}

// TestPropertyPlanExchangeMatchesDenseOracle drives the plan-based
// SyncGhosts/PushGhosts and the retained dense oracles over 50 random
// (graph, rank count) instances and requires bit-identical label/ghost
// state from both paths.
func TestPropertyPlanExchangeMatchesDenseOracle(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		seed := uint64(trial + 1)
		P := trial%7 + 1
		g := randomGraph(seed)
		failed := false
		mpi.NewWorld(P).Run(func(c *mpi.Comm) {
			d := FromGraph(c, g)
			r := rng.New(seed).Split(uint64(c.Rank() + 101))

			// Full sync: random local values, ghost tails filled both ways.
			valsPlan := make([]int64, d.NTotal())
			valsDense := make([]int64, d.NTotal())
			for v := int32(0); v < d.NLocal(); v++ {
				x := r.Int64n(1 << 30)
				valsPlan[v] = x
				valsDense[v] = x
			}
			d.SyncGhosts(valsPlan)
			d.syncGhostsDense(valsDense)
			for v := range valsPlan {
				if valsPlan[v] != valsDense[v] {
					failed = true
					return
				}
			}

			// Sparse push: mutate a random subset of interface nodes and
			// push through both paths.
			var changed []int32
			for v := int32(0); v < d.NLocal(); v++ {
				if d.IsInterface(v) && r.Intn(3) == 0 {
					x := r.Int64n(1 << 30)
					valsPlan[v] = x
					valsDense[v] = x
					changed = append(changed, v)
				}
			}
			d.PushGhosts(valsPlan, changed)
			d.pushGhostsDense(valsDense, changed)
			for v := range valsPlan {
				if valsPlan[v] != valsDense[v] {
					failed = true
					return
				}
			}
		})
		if failed {
			t.Fatalf("trial %d (seed %d, P=%d): plan-based exchange diverged from dense oracle", trial, seed, P)
		}
	}
}

// TestSyncGhostsSendsNothingToNonAdjacentRanks is the comm-volume
// regression guard of the sparse plan: on a path graph split into
// contiguous chunks, only consecutive ranks share interface edges, and a
// plan-based sync must keep every other pair silent.
func TestSyncGhostsSendsNothingToNonAdjacentRanks(t *testing.T) {
	const P = 4
	g := graph.Path(400) // rank r only adjacent to r-1 and r+1
	w := mpi.NewWorld(P)
	// Construction (plan handshake included) in a first Run; the traffic
	// snapshot in between then isolates the steady-state syncs.
	ds := make([]*DGraph, P)
	vals := make([][]int64, P)
	w.Run(func(c *mpi.Comm) {
		d := FromGraph(c, g)
		ds[c.Rank()] = d
		vs := make([]int64, d.NTotal())
		for v := int32(0); v < d.NLocal(); v++ {
			vs[v] = d.ToGlobal(v) * 3
		}
		vals[c.Rank()] = vs
	})
	var before [P][P]int64
	for s := 0; s < P; s++ {
		for dst := 0; dst < P; dst++ {
			before[s][dst] = w.PairMessages(s, dst)
		}
	}
	w.Run(func(c *mpi.Comm) {
		d := ds[c.Rank()]
		for i := 0; i < 5; i++ {
			d.SyncGhosts(vals[c.Rank()])
		}
	})
	for s := 0; s < P; s++ {
		for dst := 0; dst < P; dst++ {
			delta := w.PairMessages(s, dst) - before[s][dst]
			adjacent := dst == s-1 || dst == s+1
			if s == dst {
				continue
			}
			if !adjacent && delta > 0 {
				t.Errorf("non-adjacent pair %d->%d exchanged %d messages during SyncGhosts", s, dst, delta)
			}
			if adjacent && delta == 0 {
				t.Errorf("adjacent pair %d->%d exchanged nothing", s, dst)
			}
		}
	}
}

// TestPushGhostsMalformedBuffersPanicLoudly verifies the decode hardening:
// an odd-length pair buffer or an out-of-range position must poison the
// world and panic with a diagnosable message, never silently truncate.
func TestPushGhostsMalformedBuffersPanicLoudly(t *testing.T) {
	for _, tc := range []struct {
		name    string
		payload []int64
		want    string
	}{
		{"odd-length", []int64{42}, "odd"},
		{"position-out-of-range", []int64{1 << 40, 7}, "position"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				p := recover()
				if p == nil {
					t.Fatal("expected a loud panic for a malformed pair buffer")
				}
				msg := fmt.Sprint(p)
				if !strings.Contains(msg, tc.want) && !strings.Contains(msg, "poisoned") {
					t.Fatalf("unhelpful panic: %v", msg)
				}
			}()
			g := graph.Path(40)
			mpi.NewWorld(2).Run(func(c *mpi.Comm) {
				d := FromGraph(c, g)
				if c.Rank() == 0 {
					// Stage a malformed buffer through the plan's raw staging
					// API; this lines up with rank 1's PushGhosts superstep.
					d.Plan().AddToRank(1, tc.payload...)
					d.Plan().Exchange(func(int32, []int64) {})
				} else {
					vals := make([]int64, d.NTotal())
					d.PushGhosts(vals, nil)
				}
			})
		})
	}
}
