package core

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestWorkerBitIdentity is the contract of the intra-rank worksharing
// design (propose in parallel over a worker-count-independent chunk grid,
// commit sequentially in traversal order): the partition is bit-identical
// for every worker count. It compares Workers=1 against Workers∈{2,4,8},
// element by element, on a mesh and a social graph across PE counts —
// any divergence means a kernel read state it should not have, or the
// chunk/seed grid leaked the worker count.
func TestWorkerBitIdentity(t *testing.T) {
	type family struct {
		name  string
		g     *graph.Graph
		class GraphClass
	}
	families := []family{
		{"mesh", gen.DelaunayLike(3600, 2), ClassMesh},
		{"social", mustPlanted(4000, 30, 10, 0.5, 7), ClassSocial},
	}
	pes := []int{1, 4, 8}
	workerCounts := []int{2, 4, 8}
	if testing.Short() {
		pes = []int{1, 4}
		workerCounts = []int{4}
	}
	for _, fam := range families {
		for _, P := range pes {
			t.Run(fmt.Sprintf("%s/P=%d", fam.name, P), func(t *testing.T) {
				cfg := FastConfig(8, fam.class)
				cfg.Seed = 12345
				cfg.Workers = 1
				base, err := Run(P, fam.g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range workerCounts {
					cfg.Workers = w
					res, err := Run(P, fam.g, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if len(res.Part) != len(base.Part) {
						t.Fatalf("workers=%d: partition length %d != %d", w, len(res.Part), len(base.Part))
					}
					for v := range base.Part {
						if res.Part[v] != base.Part[v] {
							t.Fatalf("workers=%d: node %d assigned block %d, workers=1 assigned %d (first divergence; cut %d vs %d)",
								w, v, res.Part[v], base.Part[v], res.Stats.Cut, base.Stats.Cut)
						}
					}
					if res.Stats.Cut != base.Stats.Cut {
						t.Fatalf("workers=%d: identical partition but cut %d != %d", w, res.Stats.Cut, base.Stats.Cut)
					}
				}
			})
		}
	}
}

func mustPlanted(n, comm int32, degIn, degOut float64, seed uint64) *graph.Graph {
	g, _ := gen.PlantedPartition(n, comm, degIn, degOut, seed)
	return g
}
