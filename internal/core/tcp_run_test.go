package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/mpi"
	"repro/internal/mpi/transport"
	"repro/internal/partition"
	"repro/internal/testutil"
)

// partChecksum hashes a full assignment the way the public Partition
// value does (k, then every block ID), so cross-backend equality here
// implies equal parhip.Partition checksums.
func partChecksum(k int32, p partition.Partition) string {
	h := sha256.New()
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(k))
	h.Write(buf[:])
	for _, b := range p {
		binary.LittleEndian.PutUint32(buf[:], uint32(b))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// TestPartitionCrossBackendIdentical is the satellite acceptance test: a
// full PartitionDistributed run must produce a bit-identical partition
// (same cut, same checksum, same assignment) whether the ranks talk
// through in-process mailboxes or over real loopback TCP connections.
func TestPartitionCrossBackendIdentical(t *testing.T) {
	base := runtime.NumGoroutine()
	g, _ := gen.PlantedPartition(1500, 12, 9, 0.5, 7)
	const P = 3
	cfg := FastConfig(4, ClassSocial)
	cfg.Seed = 42

	inproc, err := RunCtx(context.Background(), P, g, cfg)
	if err != nil {
		t.Fatalf("inproc run: %v", err)
	}

	ts, err := transport.Loopback(P, transport.TCPConfig{})
	if err != nil {
		t.Fatalf("Loopback: %v", err)
	}
	trs := make([]transport.Transport, P)
	for i, tr := range ts {
		trs[i] = tr
	}
	ws, err := mpi.JoinWorlds(trs...)
	if err != nil {
		t.Fatalf("JoinWorlds: %v", err)
	}
	// One RunOn per world, concurrently — exactly what P OS processes do.
	results := make([]Result, P)
	errs := make([]error, P)
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w *mpi.World) {
			defer wg.Done()
			results[i], errs[i] = RunOn(context.Background(), w, g, cfg)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tcp run, world %d: %v", i, err)
		}
	}
	for i, w := range ws {
		w.Close()
		if i != 0 && results[i].Part != nil {
			t.Errorf("world %d (not hosting rank 0) returned a populated result", i)
		}
	}
	tcp := results[0]
	if tcp.Part == nil {
		t.Fatal("tcp run returned no partition on rank 0's world")
	}

	if tcp.Stats.Cut != inproc.Stats.Cut {
		t.Errorf("cut differs: tcp=%d inproc=%d", tcp.Stats.Cut, inproc.Stats.Cut)
	}
	if got, want := partChecksum(cfg.K, tcp.Part), partChecksum(cfg.K, inproc.Part); got != want {
		t.Errorf("checksum differs: tcp=%s inproc=%s", got, want)
	}
	if len(tcp.Part) != len(inproc.Part) {
		t.Fatalf("assignment length differs: tcp=%d inproc=%d", len(tcp.Part), len(inproc.Part))
	}
	for v := range inproc.Part {
		if tcp.Part[v] != inproc.Part[v] {
			t.Fatalf("assignment diverges at node %d: tcp=%d inproc=%d", v, tcp.Part[v], inproc.Part[v])
		}
	}
	// The networked run must have actually used the wire, and the stats
	// plumbing must have captured it.
	if tcp.Stats.Transport.FramesSent == 0 || tcp.Stats.Transport.BytesSent == 0 {
		t.Errorf("tcp run reported no transport traffic: %+v", tcp.Stats.Transport)
	}
	testutil.WaitNoLeak(t, base, 2)
}
