// Package core implements ParHIP, the overall parallel system of the paper
// (§IV-E): recursive parallel cluster coarsening, initial partitioning of
// the replicated coarsest graph by the distributed evolutionary algorithm
// KaFFPaE, parallel uncoarsening with size-constrained label propagation as
// local search, and iterated V-cycles.
package core

import (
	"fmt"
	"time"

	"repro/internal/contract"
	"repro/internal/dgraph"
	"repro/internal/evo"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/sclp"
)

// GraphClass selects the coarsening size-constraint factor f (§V-A: 14 on
// social networks and web graphs, 20000 on mesh type networks).
type GraphClass int

// Graph classes.
const (
	ClassSocial GraphClass = iota
	ClassMesh
)

// Config parameterizes a ParHIP run.
type Config struct {
	K   int32
	Eps float64

	// Class picks the default SizeFactor; SizeFactor overrides when > 0.
	Class      GraphClass
	SizeFactor float64

	// CoarsenIters / RefineIters are the label propagation iteration
	// counts (paper: 3 and 6).
	CoarsenIters int
	RefineIters  int

	// VCycles is the number of multilevel iterations (fast 2, eco 5,
	// minimal 1).
	VCycles int

	// CoarsestPerBlock stops coarsening once GlobalN <= CoarsestPerBlock*K
	// (the paper uses 10000*k at web scale; the reduced-scale default is
	// 100). MinCoarsest is an absolute floor.
	CoarsestPerBlock int64
	MinCoarsest      int64

	// PhasesPerRound is the label propagation communication granularity.
	PhasesPerRound int

	// EvoPopulation and EvoRounds control KaFFPaE on the coarsest graph;
	// EvoRounds = 0 computes only the initial population (fast/minimal).
	// EvoTimeBudget, when positive, replaces EvoRounds by a wall-clock
	// budget divided by the number of PEs (eco: t_p = t_1/p).
	EvoPopulation int
	EvoRounds     int
	EvoTimeBudget time.Duration

	// Objective is the fitness the evolutionary algorithm minimizes on the
	// coarsest graph (§VI extension; default: edge cut). Label propagation
	// refinement remains cut-driven.
	Objective evo.Objective

	// Prepartition, when non-nil (one block per global node), is fed into
	// the first V-cycle exactly like the previous cycle's solution: cut
	// edges survive coarsening and the evolutionary population is seeded
	// with it, so the result is never worse (§VI: "This prepartition could
	// be directly fed into the first V-cycle and consecutively be
	// improved"). It must be a feasible k-way partition.
	Prepartition []int32

	// Seed drives all randomness (identical value on every rank).
	Seed uint64
}

func (c *Config) normalize() {
	if c.Eps <= 0 {
		c.Eps = 0.03
	}
	if c.SizeFactor <= 0 {
		if c.Class == ClassMesh {
			c.SizeFactor = 20000
		} else {
			c.SizeFactor = 14
		}
	}
	if c.CoarsenIters <= 0 {
		c.CoarsenIters = 3
	}
	if c.RefineIters <= 0 {
		c.RefineIters = 6
	}
	if c.VCycles <= 0 {
		c.VCycles = 1
	}
	if c.CoarsestPerBlock <= 0 {
		c.CoarsestPerBlock = 100
	}
	if c.MinCoarsest <= 0 {
		c.MinCoarsest = 300
	}
	if c.PhasesPerRound <= 0 {
		c.PhasesPerRound = 8
	}
	if c.EvoPopulation <= 0 {
		c.EvoPopulation = 3
	}
}

// FastConfig mirrors the paper's fast setting: 2 V-cycles, evolutionary
// algorithm computes the initial population only.
func FastConfig(k int32, class GraphClass) Config {
	return Config{K: k, Class: class, VCycles: 2, EvoRounds: 0, Seed: 1}
}

// EcoConfig mirrors the paper's eco setting: 5 V-cycles and an actual
// evolutionary search on the coarsest graph.
func EcoConfig(k int32, class GraphClass) Config {
	return Config{K: k, Class: class, VCycles: 5, EvoRounds: 3, Seed: 1}
}

// MinimalConfig mirrors the paper's minimal variant: a single V-cycle.
func MinimalConfig(k int32, class GraphClass) Config {
	return Config{K: k, Class: class, VCycles: 1, EvoRounds: 0, Seed: 1}
}

// LevelStat records one hierarchy level of the first V-cycle.
type LevelStat struct {
	N int64
	M int64
}

// Stats reports what a run did.
type Stats struct {
	Levels      []LevelStat // fine-to-coarse, first V-cycle, incl. input
	CoarsenTime time.Duration
	InitTime    time.Duration
	RefineTime  time.Duration
	// RebalanceTime is the time spent in the explicit post-V-cycle
	// rebalancing stage (zero when the partition came out feasible).
	RebalanceTime time.Duration
	TotalTime     time.Duration
	Cut           int64
	Imbalance     float64
	// Lmax is the hard balance bound (1+eps)*ceil(c(V)/k) the run enforced;
	// MaxBlockWeight is the heaviest block of the result. Their difference
	// is the worst overload (<= 0 iff Feasible).
	Lmax           int64
	MaxBlockWeight int64
	// RebalanceMoves counts nodes moved by the explicit rebalance stage.
	RebalanceMoves int64
	Feasible       bool
	Comm           mpi.Stats // whole-world traffic (filled by Run)
}

// WorstOverload returns by how much the heaviest block exceeds Lmax
// (0 for feasible results).
func (s Stats) WorstOverload() int64 {
	if over := s.MaxBlockWeight - s.Lmax; over > 0 {
		return over
	}
	return 0
}

// levelRec keeps the objects needed to walk back up the hierarchy.
type levelRec struct {
	fine         *dgraph.DGraph
	coarse       *dgraph.DGraph
	fineToCoarse []int64
}

// PartitionDistributed runs ParHIP on an already distributed graph and
// returns this rank's NTotal-length block assignment (ghosts synced)
// together with run statistics. Collective; cfg must be identical on every
// rank.
func PartitionDistributed(d *dgraph.DGraph, cfg Config) ([]int64, Stats, error) {
	if cfg.K < 1 {
		return nil, Stats{}, fmt.Errorf("core: k = %d", cfg.K)
	}
	cfg.normalize()
	c := d.Comm
	startAll := time.Now()
	var st Stats
	if cfg.K == 1 {
		part := make([]int64, d.NTotal())
		st.Feasible = true
		st.MaxBlockWeight = d.GlobalNodeWeight()
		st.Lmax = partition.Lmax(st.MaxBlockWeight, 1, cfg.Eps)
		st.TotalTime = time.Since(startAll)
		return part, st, nil
	}
	// Shared stream: identical on every rank, used for cross-rank-consistent
	// decisions (level seeds, the per-cycle size factor f).
	shared := rng.New(cfg.Seed)
	totalWeight := d.GlobalNodeWeight()
	lmax := partition.Lmax(totalWeight, cfg.K, cfg.Eps)
	coarsestLimit := cfg.CoarsestPerBlock * int64(cfg.K)
	if coarsestLimit < cfg.MinCoarsest {
		coarsestLimit = cfg.MinCoarsest
	}
	maxNW := d.MaxNodeWeightGlobal()

	var part []int64 // current partition on the finest level (NTotal, synced)
	if cfg.Prepartition != nil {
		if int64(len(cfg.Prepartition)) != d.GlobalN {
			return nil, Stats{}, fmt.Errorf("core: prepartition has %d entries for %d nodes",
				len(cfg.Prepartition), d.GlobalN)
		}
		part = make([]int64, d.NTotal())
		for v := int32(0); v < d.NTotal(); v++ {
			part[v] = int64(cfg.Prepartition[d.ToGlobal(v)])
		}
	}
	for cycle := 0; cycle < cfg.VCycles; cycle++ {
		f := cfg.SizeFactor
		if cycle > 0 {
			// Later V-cycles diversify with a random factor f in [10, 25]
			// (§V-A); drawn from the shared stream so all ranks agree.
			f = float64(shared.IntRange(10, 25))
		}
		u := int64(float64(lmax) / f)
		if u < maxNW {
			u = maxNW
		}

		// --- Parallel coarsening ---
		tCoarsen := time.Now()
		cur := d
		var constraint []int64
		if part != nil {
			constraint = part
		}
		var levels []levelRec
		if cycle == 0 {
			st.Levels = append(st.Levels, LevelStat{N: d.GlobalN, M: d.GlobalM})
		}
		for cur.GlobalN > coarsestLimit {
			labels := sclp.ParCluster(cur, sclp.ParClusterConfig{
				U:              u,
				Iterations:     cfg.CoarsenIters,
				DegreeOrder:    true,
				PhasesPerRound: cfg.PhasesPerRound,
				Constraint:     constraint,
				Seed:           shared.Uint64(),
			})
			res := contract.ParContract(cur, labels)
			if res.Coarse.GlobalN >= cur.GlobalN*19/20 {
				break // coarsening stalled
			}
			if constraint != nil {
				constraint = contract.ParLift(cur, res.Coarse, res.FineToCoarse, constraint)
			}
			levels = append(levels, levelRec{fine: cur, coarse: res.Coarse, fineToCoarse: res.FineToCoarse})
			cur = res.Coarse
			if cycle == 0 {
				st.Levels = append(st.Levels, LevelStat{N: cur.GlobalN, M: cur.GlobalM})
			}
		}
		st.CoarsenTime += time.Since(tCoarsen)

		// --- Initial partitioning: replicate coarsest graph, run KaFFPaE ---
		tInit := time.Now()
		coarsest := cur.Gather()
		var initial []int32
		if constraint != nil {
			initial = gatherPart(cur, constraint)
		}
		evoCfg := evo.Config{
			K:              cfg.K,
			Eps:            cfg.Eps,
			PopulationSize: cfg.EvoPopulation,
			Rounds:         cfg.EvoRounds,
			MutationProb:   0.1,
			MigrateEvery:   2,
			Seed:           shared.Uint64(),
			Initial:        initial,
			Objective:      cfg.Objective,
		}
		if cfg.EvoTimeBudget > 0 {
			evoCfg.TimeBudget = cfg.EvoTimeBudget / time.Duration(c.Size())
		}
		best := evo.Evolve(c, coarsest, evoCfg)
		st.InitTime += time.Since(tInit)

		// --- Parallel uncoarsening with label propagation local search ---
		tRefine := time.Now()
		curPart := make([]int64, cur.NTotal())
		for v := int32(0); v < cur.NTotal(); v++ {
			curPart[v] = int64(best[cur.ToGlobal(v)])
		}
		sclp.ParRefine(cur, curPart, sclp.ParRefineConfig{
			K: cfg.K, Lmax: lmax, Iterations: cfg.RefineIters,
			PhasesPerRound: cfg.PhasesPerRound, Seed: shared.Uint64(),
		})
		for i := len(levels) - 1; i >= 0; i-- {
			lv := levels[i]
			curPart = contract.ParProject(lv.fine, lv.coarse, lv.fineToCoarse, curPart)
			sclp.ParRefine(lv.fine, curPart, sclp.ParRefineConfig{
				K: cfg.K, Lmax: lmax, Iterations: cfg.RefineIters,
				PhasesPerRound: cfg.PhasesPerRound, Seed: shared.Uint64(),
			})
		}
		st.RefineTime += time.Since(tRefine)
		part = curPart
	}

	maxBlock := func(bw []int64) int64 {
		var mx int64
		for _, w := range bw {
			if w > mx {
				mx = w
			}
		}
		return mx
	}
	mx := maxBlock(d.BlockWeights(part, cfg.K))

	// Feasibility is a postcondition, not a report: when refinement left a
	// block over Lmax, run the dedicated distributed rebalancing stage.
	// (The check is rank-consistent: BlockWeights is an allreduce.)
	if mx > lmax {
		tReb := time.Now()
		st.RebalanceMoves, _ = sclp.ParRebalance(d, part, sclp.ParRebalanceConfig{
			K: cfg.K, Lmax: lmax,
		})
		st.RebalanceTime = time.Since(tReb)
		mx = maxBlock(d.BlockWeights(part, cfg.K))
	}

	st.Cut = d.EdgeCut(part)
	st.Lmax = lmax
	st.MaxBlockWeight = mx
	st.Imbalance = float64(mx)/(float64(totalWeight)/float64(cfg.K)) - 1
	st.Feasible = mx <= lmax
	st.TotalTime = time.Since(startAll)
	return part, st, nil
}

// gatherPart assembles the full global partition (one entry per global
// node) from a distributed NTotal-length assignment. Collective.
func gatherPart(d *dgraph.DGraph, part []int64) []int32 {
	parts := d.Comm.Allgatherv(part[:d.NLocal()])
	out := make([]int32, d.GlobalN)
	var gv int64
	for _, p := range parts {
		for _, b := range p {
			out[gv] = int32(b)
			gv++
		}
	}
	return out
}

// Result is the outcome of a replicated-input run.
type Result struct {
	Part  partition.Partition
	Stats Stats
}

// Run partitions g with P simulated PEs and returns the full partition and
// the statistics observed on rank 0. It is the entry point used by the
// examples and the experiment harness.
func Run(P int, g *graph.Graph, cfg Config) (Result, error) {
	var res Result
	var runErr error
	world := mpi.NewWorld(P)
	world.Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		part, st, err := PartitionDistributed(d, cfg)
		if err != nil {
			if c.Rank() == 0 {
				runErr = err
			}
			return
		}
		full := gatherPart(d, part)
		if c.Rank() == 0 {
			st.Comm = world.TotalStats()
			res = Result{Part: full, Stats: st}
		}
	})
	return res, runErr
}
