// Package core implements ParHIP, the overall parallel system of the paper
// (§IV-E): recursive parallel cluster coarsening, initial partitioning of
// the replicated coarsest graph by the distributed evolutionary algorithm
// KaFFPaE, parallel uncoarsening with size-constrained label propagation as
// local search, and iterated V-cycles.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/arena"
	"repro/internal/contract"
	"repro/internal/dgraph"
	"repro/internal/evo"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/mpi/transport"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/sclp"
	"repro/internal/workpool"
)

// Phase identifies what part of the multilevel pipeline a Progress event
// was emitted from.
type Phase string

// Phases of one V-cycle, plus the terminal "done" event.
const (
	PhaseCoarsen   Phase = "coarsen"
	PhaseInit      Phase = "init"
	PhaseRefine    Phase = "refine"
	PhaseRebalance Phase = "rebalance"
	PhaseDone      Phase = "done"
)

// Progress is one checkpoint of a running partition, delivered to
// Config.OnProgress on rank 0. Cut and Imbalance are -1 when the phase has
// not computed them (coarsening tracks graph shrinkage, not quality).
type Progress struct {
	Phase     Phase
	Cycle     int // V-cycle index, 0-based
	Cycles    int // total V-cycles configured
	Level     int // hierarchy level: 0 = finest/input graph
	N, M      int64
	Cut       int64
	Imbalance float64
	Elapsed   time.Duration
	// CommMsgs and CommBytes are the whole-world traffic accumulated since
	// the run started (a monotone counter snapshot, not a per-phase delta),
	// so live observers can watch communication volume grow phase by phase.
	CommMsgs  int64
	CommBytes int64
	// TransportFrames and TransportBytes are the transport-level view of
	// the same traffic (frames sent by the ranks hosted in this process);
	// on a networked backend they include wire framing overhead and track
	// only this process's share of the world.
	TransportFrames int64
	TransportBytes  int64
}

// GraphClass selects the coarsening size-constraint factor f (§V-A: 14 on
// social networks and web graphs, 20000 on mesh type networks).
type GraphClass int

// Graph classes.
const (
	ClassSocial GraphClass = iota
	ClassMesh
)

// Config parameterizes a ParHIP run.
type Config struct {
	K   int32
	Eps float64

	// Class picks the default SizeFactor; SizeFactor overrides when > 0.
	Class      GraphClass
	SizeFactor float64

	// CoarsenIters / RefineIters are the label propagation iteration
	// counts (paper: 3 and 6).
	CoarsenIters int
	RefineIters  int

	// VCycles is the number of multilevel iterations (fast 2, eco 5,
	// minimal 1).
	VCycles int

	// CoarsestPerBlock stops coarsening once GlobalN <= CoarsestPerBlock*K
	// (the paper uses 10000*k at web scale; the reduced-scale default is
	// 100). MinCoarsest is an absolute floor.
	CoarsestPerBlock int64
	MinCoarsest      int64

	// PhasesPerRound is the label propagation communication granularity.
	PhasesPerRound int

	// EvoPopulation and EvoRounds control KaFFPaE on the coarsest graph;
	// EvoRounds = 0 computes only the initial population (fast/minimal).
	// EvoTimeBudget, when positive, replaces EvoRounds by a wall-clock
	// budget divided by the number of PEs (eco: t_p = t_1/p).
	EvoPopulation int
	EvoRounds     int
	EvoTimeBudget time.Duration

	// Objective is the fitness the evolutionary algorithm minimizes on the
	// coarsest graph (§VI extension; default: edge cut). Label propagation
	// refinement remains cut-driven.
	Objective evo.Objective

	// Prepartition, when non-nil (one block per global node), is fed into
	// the first V-cycle exactly like the previous cycle's solution: cut
	// edges survive coarsening and the evolutionary population is seeded
	// with it, so the result is never worse (§VI: "This prepartition could
	// be directly fed into the first V-cycle and consecutively be
	// improved"). It must be a feasible k-way partition.
	//lint:rawslice-ok internal SPMD plumbing: the raw assignment slice is the working representation; wrapped in *parhip.Partition at the public boundary
	Prepartition []int32

	// PrevPartition, when non-nil (one block per global node), is the
	// previous partition of a repartitioning run and makes the whole
	// pipeline migration-aware: it is lifted through the hierarchy
	// alongside the solution, label propagation refinement keeps nodes on
	// their previous block when a move is cut-neutral (sclp move penalty),
	// the coarsest-level evolutionary selection breaks fitness ties in
	// favour of fewer moves, and Stats reports MigratedNodes and
	// MigrationVolume against it. Callers normally set it to the same
	// slice as Prepartition.
	//lint:rawslice-ok internal SPMD plumbing: the raw assignment slice is the working representation; wrapped in *parhip.Partition at the public boundary
	PrevPartition []int32

	// Workers sizes the per-rank worker pool behind the parallel propose
	// passes of label propagation and contract's quotient accumulation.
	// 0 (the default) resolves to runtime.NumCPU() divided by the number
	// of ranks hosted in this process, so in-process worlds do not
	// oversubscribe the machine while one-rank-per-process (TCP) worlds
	// get the whole node; values below 1 after resolution are clamped to 1
	// (serial). Partitions are bit-identical for every worker count.
	Workers int

	// Seed drives all randomness (identical value on every rank).
	Seed uint64

	// OnProgress, when non-nil, receives checkpoint events (one per
	// coarsening/refinement level plus phase transitions) on rank 0 only.
	// It must be set — or left nil — identically on every rank: refinement
	// checkpoints compute the current cut and block weights, which are
	// collectives, so a mixed configuration deadlocks. The callback runs on
	// rank 0's goroutine and must not block for long.
	OnProgress func(Progress)

	// Tracer, when non-nil, records per-rank spans across the whole run:
	// pipeline phases and levels here, sclp supersteps, and mpi exchanges
	// (RunCtx attaches it to the world it creates). Nil — the default —
	// disables tracing at zero cost. Must be identical on every rank.
	Tracer *obs.Tracer
}

func (c *Config) normalize() {
	if c.Eps <= 0 {
		c.Eps = 0.03
	}
	if c.SizeFactor <= 0 {
		if c.Class == ClassMesh {
			c.SizeFactor = 20000
		} else {
			c.SizeFactor = 14
		}
	}
	if c.CoarsenIters <= 0 {
		c.CoarsenIters = 3
	}
	if c.RefineIters <= 0 {
		c.RefineIters = 6
	}
	if c.VCycles <= 0 {
		c.VCycles = 1
	}
	if c.CoarsestPerBlock <= 0 {
		c.CoarsestPerBlock = 100
	}
	if c.MinCoarsest <= 0 {
		c.MinCoarsest = 300
	}
	if c.PhasesPerRound <= 0 {
		c.PhasesPerRound = 8
	}
	if c.EvoPopulation <= 0 {
		c.EvoPopulation = 3
	}
}

// FastConfig mirrors the paper's fast setting: 2 V-cycles, evolutionary
// algorithm computes the initial population only.
func FastConfig(k int32, class GraphClass) Config {
	return Config{K: k, Class: class, VCycles: 2, EvoRounds: 0, Seed: 1}
}

// EcoConfig mirrors the paper's eco setting: 5 V-cycles and an actual
// evolutionary search on the coarsest graph.
func EcoConfig(k int32, class GraphClass) Config {
	return Config{K: k, Class: class, VCycles: 5, EvoRounds: 3, Seed: 1}
}

// MinimalConfig mirrors the paper's minimal variant: a single V-cycle.
func MinimalConfig(k int32, class GraphClass) Config {
	return Config{K: k, Class: class, VCycles: 1, EvoRounds: 0, Seed: 1}
}

// LevelStat records one hierarchy level of the first V-cycle.
type LevelStat struct {
	N int64
	M int64
}

// Stats reports what a run did.
type Stats struct {
	Levels      []LevelStat // fine-to-coarse, first V-cycle, incl. input
	CoarsenTime time.Duration
	InitTime    time.Duration
	RefineTime  time.Duration
	// RebalanceTime is the time spent in the explicit post-V-cycle
	// rebalancing stage (zero when the partition came out feasible).
	RebalanceTime time.Duration
	TotalTime     time.Duration
	Cut           int64
	Imbalance     float64
	// Lmax is the hard balance bound (1+eps)*ceil(c(V)/k) the run enforced;
	// MaxBlockWeight is the heaviest block of the result. Their difference
	// is the worst overload (<= 0 iff Feasible).
	Lmax           int64
	MaxBlockWeight int64
	// RebalanceMoves counts nodes moved by the explicit rebalance stage.
	RebalanceMoves int64
	// MigratedNodes and MigrationVolume report, for runs with a
	// Config.PrevPartition, how many nodes ended on a different block than
	// before and their total node weight. Zero otherwise.
	MigratedNodes   int64
	MigrationVolume int64
	Feasible        bool
	// Par reports this rank's intra-rank worksharing measurements: the
	// resolved worker count, superstep propose/commit wall-clock split and
	// summed worker busy time.
	Par  sclp.ParStats
	Comm mpi.Stats // whole-world traffic (filled by Run)
	// Transport is the transport-level counter snapshot of this process's
	// world (filled by Run alongside Comm). On the in-process backend it
	// mirrors Comm; on TCP it additionally reports reconnects and
	// heartbeat misses.
	Transport transport.Stats
}

// WorstOverload returns by how much the heaviest block exceeds Lmax
// (0 for feasible results).
func (s Stats) WorstOverload() int64 {
	if over := s.MaxBlockWeight - s.Lmax; over > 0 {
		return over
	}
	return 0
}

// levelRec keeps the objects needed to walk back up the hierarchy.
type levelRec struct {
	fine         *dgraph.DGraph
	coarse       *dgraph.DGraph
	fineToCoarse []int64
	// prevFine is the previous partition projected onto fine (NTotal
	// entries), kept only for migration-aware runs so refinement at this
	// level can apply the move penalty.
	prevFine []int64
}

// PartitionDistributed runs ParHIP on an already distributed graph and
// returns this rank's NTotal-length block assignment (ghosts synced)
// together with run statistics. Collective; cfg must be identical on every
// rank.
//
// Cancellation contract: ctx is checked between pipeline stages (each
// coarsening level, before and after initial partitioning, each refinement
// level, before rebalancing); inside a stage the mpi world's cooperative
// abort takes over (see mpi.World.Abort), so a rank never runs more than
// roughly one superstep past cancellation. A cancelled rank returns
// ctx.Err(); ranks cut short inside a collective unwind through the abort
// panic that mpi.World.Run swallows. Callers running their own world must
// pair a non-background ctx with mpi.World.WatchContext, as RunCtx does —
// otherwise ranks still blocked in collectives are never woken.
func PartitionDistributed(ctx context.Context, d *dgraph.DGraph, cfg Config) ([]int64, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.K < 1 {
		return nil, Stats{}, fmt.Errorf("core: k = %d", cfg.K)
	}
	cfg.normalize()
	c := d.Comm
	startAll := time.Now() //lint:determinism-ok stats timing, never partition state
	// report emits a progress checkpoint on rank 0. Callers must compute
	// any collective quantities (cut, block weights) on every rank before
	// calling it.
	report := func(p Progress) {
		if cfg.OnProgress == nil || c.Rank() != 0 {
			return
		}
		p.Cycles = cfg.VCycles
		p.Elapsed = time.Since(startAll) //lint:determinism-ok stats timing, never partition state
		// WorldStats reads atomics only — no collective, safe on rank 0 alone.
		ws := c.WorldStats()
		p.CommMsgs = ws.MessagesSent
		p.CommBytes = ws.BytesSent()
		ts := c.TransportStats()
		p.TransportFrames = ts.FramesSent
		p.TransportBytes = ts.BytesSent
		cfg.OnProgress(p)
	}
	var st Stats
	if cfg.K == 1 {
		part := make([]int64, d.NTotal())
		st.Feasible = true
		st.MaxBlockWeight = d.GlobalNodeWeight()
		st.Lmax = partition.Lmax(st.MaxBlockWeight, 1, cfg.Eps)
		st.TotalTime = time.Since(startAll) //lint:determinism-ok stats timing, never partition state
		return part, st, nil
	}
	// Per-rank worker pool and scratch arena for the intra-rank parallel
	// supersteps. The pool's helpers live for the whole run and are joined
	// on return; the arena is reset between pipeline stages, so per-level
	// scratch recycles instead of reallocating.
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.NumCPU() / c.LocalRankCount()
	}
	if workers < 1 {
		workers = 1
	}
	pool := workpool.New(workers)
	defer pool.Close()
	ar := arena.New()
	st.Par.Workers = workers
	// Shared stream: identical on every rank, used for cross-rank-consistent
	// decisions (level seeds, the per-cycle size factor f).
	shared := rng.New(cfg.Seed)
	totalWeight := d.GlobalNodeWeight()
	lmax := partition.Lmax(totalWeight, cfg.K, cfg.Eps)
	maxBlock := func(bw []int64) int64 {
		var mx int64
		for _, w := range bw {
			if w > mx {
				mx = w
			}
		}
		return mx
	}
	imbalanceOf := func(mx int64) float64 {
		return float64(mx)/(float64(totalWeight)/float64(cfg.K)) - 1
	}
	coarsestLimit := cfg.CoarsestPerBlock * int64(cfg.K)
	if coarsestLimit < cfg.MinCoarsest {
		coarsestLimit = cfg.MinCoarsest
	}
	maxNW := d.MaxNodeWeightGlobal()

	var part []int64 // current partition on the finest level (NTotal, synced)
	if cfg.Prepartition != nil {
		if int64(len(cfg.Prepartition)) != d.GlobalN {
			return nil, Stats{}, fmt.Errorf("core: prepartition has %d entries for %d nodes",
				len(cfg.Prepartition), d.GlobalN)
		}
		part = make([]int64, d.NTotal())
		for v := int32(0); v < d.NTotal(); v++ {
			part[v] = int64(cfg.Prepartition[d.ToGlobal(v)])
		}
	}
	// prevFine is the migration reference on the finest level; when set it
	// is lifted through every hierarchy alongside the solution so each
	// refinement level can apply the move penalty against it.
	var prevFine []int64
	if cfg.PrevPartition != nil {
		if int64(len(cfg.PrevPartition)) != d.GlobalN {
			return nil, Stats{}, fmt.Errorf("core: previous partition has %d entries for %d nodes",
				len(cfg.PrevPartition), d.GlobalN)
		}
		prevFine = make([]int64, d.NTotal())
		for v := int32(0); v < d.NTotal(); v++ {
			prevFine[v] = int64(cfg.PrevPartition[d.ToGlobal(v)])
		}
	}
	for cycle := 0; cycle < cfg.VCycles; cycle++ {
		if err := ctx.Err(); err != nil {
			return nil, st, err
		}
		f := cfg.SizeFactor
		if cycle > 0 {
			// Later V-cycles diversify with a random factor f in [10, 25]
			// (§V-A); drawn from the shared stream so all ranks agree.
			f = float64(shared.IntRange(10, 25))
		}
		u := int64(float64(lmax) / f)
		if u < maxNW {
			u = maxNW
		}

		// --- Parallel coarsening ---
		tCoarsen := time.Now() //lint:determinism-ok stats timing, never partition state
		cur := d
		var constraint []int64
		if part != nil {
			constraint = part
		}
		// prevCur tracks the migration reference at the current level; it is
		// lifted in lockstep with the coarsening (rank-consistent: every
		// rank agrees on whether the extra ParLift collective runs).
		prevCur := prevFine
		prevTracksConstraint := cycle == 0 && prevCur != nil && constraint != nil &&
			len(cfg.Prepartition) > 0 && &cfg.Prepartition[0] == &cfg.PrevPartition[0]
		var levels []levelRec
		if cycle == 0 {
			st.Levels = append(st.Levels, LevelStat{N: d.GlobalN, M: d.GlobalM})
		}
		for cur.GlobalN > coarsestLimit {
			if err := ctx.Err(); err != nil {
				return nil, st, err
			}
			spLvl := c.Tracer().Begin(c.Rank(), "core.coarsen_level")
			labels := sclp.ParCluster(cur, sclp.ParClusterConfig{
				U:              u,
				Iterations:     cfg.CoarsenIters,
				DegreeOrder:    true,
				PhasesPerRound: cfg.PhasesPerRound,
				Constraint:     constraint,
				Seed:           shared.Uint64(),
				Pool:           pool,
				Arena:          ar,
				Stats:          &st.Par,
			})
			res := contract.ParContractWith(cur, labels, contract.ContractOptions{Pool: pool, Arena: ar})
			c.Tracer().End2(spLvl, "level", int64(len(levels)), "coarse_n", res.Coarse.GlobalN)
			// The level's sclp/contract scratch is dead; recycle the slabs.
			ar.Reset()
			if res.Coarse.GlobalN >= cur.GlobalN*19/20 {
				break // coarsening stalled
			}
			if constraint != nil {
				constraint = contract.ParLift(cur, res.Coarse, res.FineToCoarse, constraint)
			}
			rec := levelRec{fine: cur, coarse: res.Coarse, fineToCoarse: res.FineToCoarse}
			if prevCur != nil {
				rec.prevFine = prevCur
				if prevTracksConstraint {
					// First V-cycle of a repartition run: the constraint IS the
					// previous partition, so reuse its lift instead of paying a
					// second collective.
					prevCur = constraint
				} else {
					prevCur = contract.ParLift(cur, res.Coarse, res.FineToCoarse, prevCur)
				}
			}
			levels = append(levels, rec)
			cur = res.Coarse
			if cycle == 0 {
				st.Levels = append(st.Levels, LevelStat{N: cur.GlobalN, M: cur.GlobalM})
			}
			report(Progress{Phase: PhaseCoarsen, Cycle: cycle, Level: len(levels),
				N: cur.GlobalN, M: cur.GlobalM, Cut: -1, Imbalance: -1})
		}
		st.CoarsenTime += time.Since(tCoarsen) //lint:determinism-ok stats timing, never partition state
		if err := ctx.Err(); err != nil {
			return nil, st, err
		}

		// --- Initial partitioning: replicate coarsest graph, run KaFFPaE ---
		tInit := time.Now() //lint:determinism-ok stats timing, never partition state
		spInit := c.Tracer().Begin(c.Rank(), "core.initial_partition")
		coarsest := cur.Gather()
		var initial []int32
		if constraint != nil {
			initial = gatherPart(cur, constraint)
		}
		evoCfg := evo.Config{
			K:              cfg.K,
			Eps:            cfg.Eps,
			PopulationSize: cfg.EvoPopulation,
			Rounds:         cfg.EvoRounds,
			MutationProb:   0.1,
			MigrateEvery:   2,
			Seed:           shared.Uint64(),
			Initial:        initial,
			Objective:      cfg.Objective,
		}
		if prevCur != nil {
			// Migration-aware selection on the coarsest graph: fitness ties go
			// to the individual closer to the previous partition.
			if prevTracksConstraint {
				evoCfg.MigrationRef = initial
			} else {
				evoCfg.MigrationRef = gatherPart(cur, prevCur)
			}
		}
		if cfg.EvoTimeBudget > 0 {
			evoCfg.TimeBudget = cfg.EvoTimeBudget / time.Duration(c.Size())
		}
		best := evo.Evolve(ctx, c, coarsest, evoCfg)
		if evoCfg.MigrationRef != nil {
			// Block IDs are arbitrary: a fresh evolutionary winner may be
			// structurally close to the previous partition yet label every
			// block differently, which would count as wholesale migration.
			// Relabel to maximize the weighted overlap with the reference
			// (deterministic, identical on every rank — the coarsest graph
			// is replicated) so the move penalty and the migration stats
			// measure real movement, not label permutation.
			remapBlocks(best, evoCfg.MigrationRef, cfg.K, coarsest.NW)
		}
		c.Tracer().End2(spInit, "cycle", int64(cycle), "coarsest_n", int64(coarsest.NumNodes()))
		st.InitTime += time.Since(tInit) //lint:determinism-ok stats timing, never partition state
		if err := ctx.Err(); err != nil {
			return nil, st, err
		}
		// The coarsest graph is replicated, so rank 0 can score the initial
		// partition locally — no collective needed.
		if cfg.OnProgress != nil && c.Rank() == 0 {
			report(Progress{Phase: PhaseInit, Cycle: cycle, Level: len(levels),
				N: int64(coarsest.NumNodes()), M: coarsest.NumEdges(),
				Cut:       partition.EdgeCut(coarsest, best),
				Imbalance: partition.Imbalance(coarsest, best, cfg.K)})
		}

		// --- Parallel uncoarsening with label propagation local search ---
		tRefine := time.Now() //lint:determinism-ok stats timing, never partition state
		curPart := make([]int64, cur.NTotal())
		for v := int32(0); v < cur.NTotal(); v++ {
			curPart[v] = int64(best[cur.ToGlobal(v)])
		}
		// reportRefine computes the current cut and imbalance (collectives,
		// executed on every rank — gated on OnProgress, which the Config
		// contract requires to be rank-consistent) and emits a checkpoint.
		reportRefine := func(dg *dgraph.DGraph, p []int64, level int) {
			if cfg.OnProgress == nil {
				return
			}
			cut := dg.EdgeCut(p)
			mx := maxBlock(dg.BlockWeights(p, cfg.K))
			report(Progress{Phase: PhaseRefine, Cycle: cycle, Level: level,
				N: dg.GlobalN, M: dg.GlobalM, Cut: cut, Imbalance: imbalanceOf(mx)})
		}
		spRef := c.Tracer().Begin(c.Rank(), "core.refine_level")
		sclp.ParRefine(cur, curPart, sclp.ParRefineConfig{
			K: cfg.K, Lmax: lmax, Iterations: cfg.RefineIters,
			PhasesPerRound: cfg.PhasesPerRound, Seed: shared.Uint64(),
			Prev: prevCur,
			Pool: pool, Arena: ar, Stats: &st.Par,
		})
		c.Tracer().End1(spRef, "level", int64(len(levels)))
		ar.Reset()
		reportRefine(cur, curPart, len(levels))
		for i := len(levels) - 1; i >= 0; i-- {
			if err := ctx.Err(); err != nil {
				return nil, st, err
			}
			lv := levels[i]
			spRef = c.Tracer().Begin(c.Rank(), "core.refine_level")
			curPart = contract.ParProject(lv.fine, lv.coarse, lv.fineToCoarse, curPart)
			sclp.ParRefine(lv.fine, curPart, sclp.ParRefineConfig{
				K: cfg.K, Lmax: lmax, Iterations: cfg.RefineIters,
				PhasesPerRound: cfg.PhasesPerRound, Seed: shared.Uint64(),
				Prev: lv.prevFine,
				Pool: pool, Arena: ar, Stats: &st.Par,
			})
			c.Tracer().End1(spRef, "level", int64(i))
			ar.Reset()
			reportRefine(lv.fine, curPart, i)
		}
		st.RefineTime += time.Since(tRefine) //lint:determinism-ok stats timing, never partition state
		part = curPart
	}
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}

	mx := maxBlock(d.BlockWeights(part, cfg.K))

	// Feasibility is a postcondition, not a report: when refinement left a
	// block over Lmax, run the dedicated distributed rebalancing stage.
	// (The check is rank-consistent: BlockWeights is an allreduce.)
	if mx > lmax {
		tReb := time.Now() //lint:determinism-ok stats timing, never partition state
		spReb := c.Tracer().Begin(c.Rank(), "core.rebalance")
		st.RebalanceMoves, _ = sclp.ParRebalance(d, part, sclp.ParRebalanceConfig{
			K: cfg.K, Lmax: lmax,
		})
		c.Tracer().End1(spReb, "moves", st.RebalanceMoves)
		st.RebalanceTime = time.Since(tReb) //lint:determinism-ok stats timing, never partition state
		mx = maxBlock(d.BlockWeights(part, cfg.K))
		report(Progress{Phase: PhaseRebalance, Cycle: cfg.VCycles - 1, Level: 0,
			N: d.GlobalN, M: d.GlobalM, Cut: -1, Imbalance: imbalanceOf(mx)})
	}

	st.Cut = d.EdgeCut(part)
	st.Lmax = lmax
	st.MaxBlockWeight = mx
	st.Imbalance = imbalanceOf(mx)
	st.Feasible = mx <= lmax
	if prevFine != nil {
		var movedN, movedW int64
		for v := int32(0); v < d.NLocal(); v++ {
			if part[v] != prevFine[v] {
				movedN++
				movedW += d.NW[v]
			}
		}
		st.MigratedNodes = d.Comm.AllreduceSum1(movedN)
		st.MigrationVolume = d.Comm.AllreduceSum1(movedW)
	}
	st.TotalTime = time.Since(startAll) //lint:determinism-ok stats timing, never partition state
	report(Progress{Phase: PhaseDone, Cycle: cfg.VCycles - 1, Level: 0,
		N: d.GlobalN, M: d.GlobalM, Cut: st.Cut, Imbalance: st.Imbalance})
	return part, st, nil
}

// remapBlocks relabels p's blocks in place to maximize the node-weighted
// agreement with ref: the (block, ref-block) pairs are claimed greedily by
// descending overlap weight, and blocks left over keep distinct unused
// labels in ascending order. Deterministic in its inputs.
func remapBlocks(p, ref []int32, k int32, nw []int64) {
	type pair struct {
		w        int64
		from, to int32
	}
	overlap := make([]int64, int(k)*int(k))
	for v := range p {
		overlap[int(p[v])*int(k)+int(ref[v])] += nw[v]
	}
	pairs := make([]pair, 0, len(overlap))
	for i, w := range overlap {
		if w > 0 {
			pairs = append(pairs, pair{w, int32(i / int(k)), int32(i % int(k))})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].w != pairs[j].w {
			return pairs[i].w > pairs[j].w
		}
		if pairs[i].from != pairs[j].from {
			return pairs[i].from < pairs[j].from
		}
		return pairs[i].to < pairs[j].to
	})
	mapping := make([]int32, k)
	fromUsed := make([]bool, k)
	toUsed := make([]bool, k)
	for i := range mapping {
		mapping[i] = -1
	}
	for _, pr := range pairs {
		if fromUsed[pr.from] || toUsed[pr.to] {
			continue
		}
		mapping[pr.from] = pr.to
		fromUsed[pr.from], toUsed[pr.to] = true, true
	}
	next := int32(0)
	for from := int32(0); from < k; from++ {
		if mapping[from] >= 0 {
			continue
		}
		for toUsed[next] {
			next++
		}
		mapping[from] = next
		toUsed[next] = true
	}
	for v := range p {
		p[v] = mapping[p[v]]
	}
}

// gatherPart assembles the full global partition (one entry per global
// node) from a distributed NTotal-length assignment. Collective.
//
//parhip:collective
func gatherPart(d *dgraph.DGraph, part []int64) []int32 {
	parts := d.Comm.Allgatherv(part[:d.NLocal()])
	out := make([]int32, d.GlobalN)
	var gv int64
	for _, p := range parts {
		for _, b := range p {
			out[gv] = int32(b)
			gv++
		}
	}
	return out
}

// Result is the outcome of a replicated-input run.
type Result struct {
	Part  partition.Partition
	Stats Stats
}

// Run partitions g with P simulated PEs and returns the full partition and
// the statistics observed on rank 0. It is the entry point used by the
// examples and the experiment harness. Run is RunCtx with a background
// context (not cancellable).
func Run(P int, g *graph.Graph, cfg Config) (Result, error) {
	return RunCtx(context.Background(), P, g, cfg)
}

// RunCtx is Run bound to a context: when ctx is cancelled or its deadline
// passes, every simulated rank unwinds cooperatively (no goroutine outlives
// the call) and RunCtx returns ctx.Err(). A run that completed before the
// cancellation was observed still returns its result.
func RunCtx(ctx context.Context, P int, g *graph.Graph, cfg Config) (Result, error) {
	return RunOn(ctx, mpi.NewWorld(P), g, cfg)
}

// RunOn is RunCtx over a caller-provided world — the multi-process entry
// point. With a networked transport the world hosts a subset of the ranks
// (for TCP, one per process); every process calls RunOn with the same
// graph and config, and only the process hosting rank 0 receives the
// populated Result (the others get a zero Result and a nil error). A
// transport failure — a peer process dying mid-run — aborts the world
// and surfaces as an error on every surviving process. The caller keeps
// ownership of the world and closes it after RunOn returns.
func RunOn(ctx context.Context, world *mpi.World, g *graph.Graph, cfg Config) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	var res Result
	var runErr error
	world.SetTracer(cfg.Tracer)
	stop := world.WatchContext(ctx)
	defer stop()
	world.Run(func(c *mpi.Comm) {
		d := dgraph.FromGraph(c, g)
		part, st, err := PartitionDistributed(ctx, d, cfg)
		if err != nil {
			if c.Rank() == 0 {
				runErr = err
			}
			return
		}
		// gatherPart is collective: it completes only if every rank got
		// here, so res is set iff the whole pipeline finished.
		full := gatherPart(d, part)
		if c.Rank() == 0 {
			st.Comm = world.TotalStats()
			st.Transport = world.TransportStats()
			res = Result{Part: full, Stats: st}
		}
	})
	if runErr != nil {
		return Result{}, runErr
	}
	// Ranks cut short inside a collective unwind via the abort panic
	// without setting runErr; surface the transport failure or the
	// cancellation explicitly. A fully assembled result beats a late
	// cancellation, though.
	if err := world.Err(); err != nil && res.Part == nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil && res.Part == nil {
		return Result{}, err
	}
	return res, nil
}
