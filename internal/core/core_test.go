package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func TestRunFastSocial(t *testing.T) {
	g, _ := gen.PlantedPartition(4000, 30, 10, 0.5, 1)
	res, err := Run(4, g, FastConfig(2, ClassSocial))
	if err != nil {
		t.Fatal(err)
	}
	rep := partition.Evaluate(g, res.Part, 2, 0.03)
	if !rep.Feasible {
		t.Fatalf("infeasible: %v", rep)
	}
	// The planted cross-community edges are ~ n*degOut/2; a community-aware
	// partitioner must cut far less than total edge weight.
	if rep.Cut*4 > g.TotalEdgeWeight() {
		t.Fatalf("cut %d too large vs m=%d", rep.Cut, g.TotalEdgeWeight())
	}
	if len(res.Stats.Levels) < 2 {
		t.Fatalf("no coarsening happened: %v", res.Stats.Levels)
	}
}

func TestRunMeshK4(t *testing.T) {
	g := gen.DelaunayLike(3600, 2)
	cfg := FastConfig(4, ClassMesh)
	res, err := Run(4, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := partition.Evaluate(g, res.Part, 4, 0.03)
	if !rep.Feasible {
		t.Fatalf("infeasible: %v", rep)
	}
	// A 60x60 triangulated mesh split into 4 has cut Theta(side); demand
	// well below a random partition (~3/4 of all edges).
	if rep.Cut*4 > g.TotalEdgeWeight() {
		t.Fatalf("mesh cut %d too large", rep.Cut)
	}
}

func TestRunCoarseningShrinksSocialFast(t *testing.T) {
	g, _ := gen.PlantedPartition(6000, 50, 12, 0.3, 3)
	res, err := Run(4, g, FastConfig(2, ClassSocial))
	if err != nil {
		t.Fatal(err)
	}
	lv := res.Stats.Levels
	if len(lv) < 2 {
		t.Fatal("no levels recorded")
	}
	// First contraction should shrink aggressively on a community graph
	// (paper: "two orders of magnitude" at web scale; demand >= 4x here).
	if lv[1].N*4 > lv[0].N {
		t.Fatalf("first contraction %d -> %d too weak", lv[0].N, lv[1].N)
	}
}

func TestRunEcoAtLeastAsGoodAsFast(t *testing.T) {
	g, _ := gen.PlantedPartition(3000, 20, 10, 0.8, 4)
	fast, err := Run(2, g, FastConfig(4, ClassSocial))
	if err != nil {
		t.Fatal(err)
	}
	eco, err := Run(2, g, EcoConfig(4, ClassSocial))
	if err != nil {
		t.Fatal(err)
	}
	fc := partition.EdgeCut(g, fast.Part)
	ec := partition.EdgeCut(g, eco.Part)
	// Eco spends much more effort; allow slack for randomness but it must
	// not be much worse.
	if ec > fc*11/10 {
		t.Fatalf("eco cut %d much worse than fast cut %d", ec, fc)
	}
}

func TestRunVariousPEcounts(t *testing.T) {
	g, _ := gen.PlantedPartition(2500, 16, 9, 0.5, 5)
	for _, P := range []int{1, 2, 3, 8} {
		res, err := Run(P, g, FastConfig(2, ClassSocial))
		if err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		if err := partition.Validate(g, res.Part, 2); err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		if !partition.IsFeasible(g, res.Part, 2, 0.03) {
			t.Errorf("P=%d: infeasible (imbalance %.4f)", P,
				partition.Imbalance(g, res.Part, 2))
		}
	}
}

func TestRunK1(t *testing.T) {
	g := gen.RGG(500, 6)
	res, err := Run(2, g, FastConfig(1, ClassMesh))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Part {
		if b != 0 {
			t.Fatal("k=1 must put everything in block 0")
		}
	}
}

func TestRunInvalidK(t *testing.T) {
	g := graph.Path(10)
	if _, err := Run(2, g, Config{K: 0}); err == nil {
		t.Fatal("expected error for k=0")
	}
}

func TestRunSmallGraphNoCoarsening(t *testing.T) {
	// Graph below the coarsest limit: evolutionary algorithm runs directly.
	g := graph.Cycle(64)
	cfg := FastConfig(2, ClassMesh)
	res, err := Run(2, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := partition.Evaluate(g, res.Part, 2, 0.03)
	if !rep.Feasible {
		t.Fatalf("infeasible: %v", rep)
	}
	if rep.Cut > 4 {
		t.Fatalf("cycle cut %d", rep.Cut)
	}
}

func TestRunDeterministicWithRounds(t *testing.T) {
	g, _ := gen.PlantedPartition(1500, 12, 9, 0.5, 8)
	cfg := FastConfig(2, ClassSocial)
	cfg.Seed = 99
	a, err := Run(2, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(2, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The evolutionary exchange makes strict determinism across runs hard
	// (TryRecvAny timing), but with EvoRounds=0 and fixed seeds the
	// pipeline is deterministic.
	ca := partition.EdgeCut(g, a.Part)
	cb := partition.EdgeCut(g, b.Part)
	if ca != cb {
		t.Logf("cut %d vs %d: nondeterminism from migrant timing", ca, cb)
	}
	if !partition.IsFeasible(g, a.Part, 2, 0.03) || !partition.IsFeasible(g, b.Part, 2, 0.03) {
		t.Fatal("infeasible result")
	}
}

func TestPrepartitionNeverWorsened(t *testing.T) {
	g, _ := gen.PlantedPartition(2000, 15, 9, 0.5, 11)
	k := int32(4)
	// A feasible but mediocre starting point: hash placement.
	pre := make([]int32, g.NumNodes())
	for v := int32(0); v < g.NumNodes(); v++ {
		pre[v] = v % k
	}
	preCut := partition.EdgeCut(g, pre)
	cfg := FastConfig(k, ClassSocial)
	cfg.Prepartition = pre
	res, err := Run(2, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cut := partition.EdgeCut(g, res.Part)
	if cut > preCut {
		t.Fatalf("prepartition worsened: %d -> %d", preCut, cut)
	}
	// A hash placement on a community graph is terrible; demand a large
	// improvement, not mere non-worsening.
	if cut*2 > preCut {
		t.Fatalf("prepartition barely improved: %d -> %d", preCut, cut)
	}
	if !partition.IsFeasible(g, res.Part, k, 0.03) {
		t.Fatal("result infeasible")
	}
}

func TestPrepartitionWrongLength(t *testing.T) {
	g := gen.RGG(100, 1)
	cfg := FastConfig(2, ClassMesh)
	cfg.Prepartition = make([]int32, 5)
	if _, err := Run(1, g, cfg); err == nil {
		t.Fatal("expected error for wrong-length prepartition")
	}
}

func TestStatsPopulated(t *testing.T) {
	g, _ := gen.PlantedPartition(2000, 15, 9, 0.5, 9)
	res, err := Run(2, g, FastConfig(2, ClassSocial))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.TotalTime <= 0 || st.Cut <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if st.Comm.MessagesSent == 0 {
		t.Fatal("no communication recorded on a 2-rank run")
	}
	if st.Cut != partition.EdgeCut(g, res.Part) {
		t.Fatalf("stats cut %d != recomputed %d", st.Cut, partition.EdgeCut(g, res.Part))
	}
}

func TestConfigsDiffer(t *testing.T) {
	f := FastConfig(4, ClassSocial)
	e := EcoConfig(4, ClassSocial)
	m := MinimalConfig(4, ClassSocial)
	if f.VCycles != 2 || e.VCycles != 5 || m.VCycles != 1 {
		t.Fatal("V-cycle counts wrong")
	}
	var c Config
	c.K = 2
	c.Class = ClassMesh
	c.normalize()
	if c.SizeFactor != 20000 {
		t.Fatalf("mesh size factor %v", c.SizeFactor)
	}
	c = Config{K: 2}
	c.normalize()
	if c.SizeFactor != 14 {
		t.Fatalf("social size factor %v", c.SizeFactor)
	}
}

func TestRemapBlocks(t *testing.T) {
	// p is ref with blocks renamed 0->2, 1->0, 2->1; remapping must undo it.
	ref := []int32{0, 0, 1, 1, 2, 2}
	p := []int32{2, 2, 0, 0, 1, 1}
	nw := []int64{1, 1, 1, 1, 1, 1}
	remapBlocks(p, ref, 3, nw)
	for i := range p {
		if p[i] != ref[i] {
			t.Fatalf("remap failed at %d: %v vs %v", i, p, ref)
		}
	}

	// Weighted overlap wins: block 0 of p overlaps ref-block 1 with weight
	// 10 vs ref-block 0 with weight 2, so it must take label 1.
	ref = []int32{1, 0, 0}
	p = []int32{0, 0, 0}
	nw = []int64{10, 1, 1}
	remapBlocks(p, ref, 2, nw)
	if p[0] != 1 {
		t.Fatalf("weighted remap picked %d, want 1", p[0])
	}

	// Every block keeps a distinct label even when unmatched.
	p = []int32{0, 1, 2, 3}
	ref = []int32{0, 0, 0, 0}
	remapBlocks(p, ref, 4, []int64{1, 1, 1, 1})
	seen := map[int32]bool{}
	for _, b := range p {
		if b < 0 || b >= 4 || seen[b] {
			t.Fatalf("remap produced invalid labels: %v", p)
		}
		seen[b] = true
	}
}

// TestPrevPartitionStats checks the migration accounting of a
// migration-aware distributed run end to end.
func TestPrevPartitionStats(t *testing.T) {
	g, planted := gen.PlantedPartition(1200, 8, 8, 0.5, 3)
	k := int32(8)
	cfg := MinimalConfig(k, ClassSocial)
	cfg.Prepartition = planted
	cfg.PrevPartition = planted
	res, err := Run(4, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for v, b := range res.Part {
		if b != planted[v] {
			want++
		}
	}
	if res.Stats.MigratedNodes != want {
		t.Errorf("MigratedNodes = %d, recount says %d", res.Stats.MigratedNodes, want)
	}
	if res.Stats.MigrationVolume != want { // unit node weights
		t.Errorf("MigrationVolume = %d, want %d", res.Stats.MigrationVolume, want)
	}
	// A run without PrevPartition reports zero.
	res2, err := Run(4, g, MinimalConfig(k, ClassSocial))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.MigratedNodes != 0 || res2.Stats.MigrationVolume != 0 {
		t.Errorf("cold run reported migration: %+v", res2.Stats)
	}
}
