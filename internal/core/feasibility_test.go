package core

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

// TestRunFeasibilityFuzz asserts the PR's central postcondition: core.Run
// returns Feasible=true over randomized {graph family, k, eps, P}
// combinations — the explicit rebalance stage must catch whatever
// refinement leaves overloaded. Unit node weights guarantee a feasible
// assignment always exists (Lmax >= ceil(c(V)/k) >= 1), so any
// Feasible=false here is a bug, not bad luck.
func TestRunFeasibilityFuzz(t *testing.T) {
	families := []struct {
		name string
		gen  func(n int32, seed uint64) *graph.Graph
	}{
		{"ba", func(n int32, seed uint64) *graph.Graph { return gen.BarabasiAlbert(n, 4, seed) }},
		{"rgg", func(n int32, seed uint64) *graph.Graph { return gen.RGG(n, seed) }},
		{"del", func(n int32, seed uint64) *graph.Graph { return gen.DelaunayLike(n, seed) }},
		{"planted", func(n int32, seed uint64) *graph.Graph {
			g, _ := gen.PlantedPartition(n, 12, 6, 0.4, seed)
			return g
		}},
		{"path", func(n int32, seed uint64) *graph.Graph { return gen.BarabasiAlbert(n, 1, seed) }},
	}
	ks := []int32{2, 3, 5, 8}
	epss := []float64{0.03, 0.07, 0.29, 0.5}
	pes := []int{1, 2, 4, 7}

	configs := 100
	if testing.Short() {
		configs = 24
	}
	r := rng.New(2026)
	for i := 0; i < configs; i++ {
		fam := families[r.Intn(len(families))]
		k := ks[r.Intn(len(ks))]
		eps := epss[r.Intn(len(epss))]
		P := pes[r.Intn(len(pes))]
		n := int32(120 + r.Intn(380))
		seed := r.Uint64()

		g := fam.gen(n, seed)
		cfg := MinimalConfig(k, ClassSocial)
		if i%3 == 0 {
			cfg = FastConfig(k, ClassSocial)
		}
		cfg.Eps = eps
		cfg.Seed = seed + 1
		name := fmt.Sprintf("cfg %d: %s n=%d k=%d eps=%g P=%d seed=%d",
			i, fam.name, g.NumNodes(), k, eps, P, seed)

		res, err := Run(P, g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Stats.Feasible {
			t.Fatalf("%s: Feasible=false (lmax=%d maxBlock=%d overload=%d)",
				name, res.Stats.Lmax, res.Stats.MaxBlockWeight, res.Stats.WorstOverload())
		}
		// The stats flag must agree with an independent check of the actual
		// partition vector.
		if !partition.IsFeasible(g, res.Part, k, eps) {
			t.Fatalf("%s: stats say feasible but the partition vector is not", name)
		}
		if err := partition.Validate(g, res.Part, k); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestStatsBalanceFields: Lmax/MaxBlockWeight are filled consistently with
// the returned partition.
func TestStatsBalanceFields(t *testing.T) {
	g := gen.RGG(900, 3)
	const k, eps = 4, 0.03
	res, err := Run(4, g, FastConfig(k, ClassMesh))
	if err != nil {
		t.Fatal(err)
	}
	wantLmax := partition.Lmax(g.TotalNodeWeight(), k, eps)
	if res.Stats.Lmax != wantLmax {
		t.Errorf("Stats.Lmax = %d, want %d", res.Stats.Lmax, wantLmax)
	}
	var mx int64
	for _, w := range partition.BlockWeights(g, res.Part, k) {
		if w > mx {
			mx = w
		}
	}
	if res.Stats.MaxBlockWeight != mx {
		t.Errorf("Stats.MaxBlockWeight = %d, want %d", res.Stats.MaxBlockWeight, mx)
	}
	if got, want := res.Stats.WorstOverload(), int64(0); res.Stats.Feasible && got != want {
		t.Errorf("feasible but WorstOverload = %d", got)
	}
}
