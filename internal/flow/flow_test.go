package flow

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

func TestMaxFlowTextbook(t *testing.T) {
	// Classic 4-node example: s=0, t=3.
	//   0->1 cap 3, 0->2 cap 2, 1->2 cap 5, 1->3 cap 2, 2->3 cap 3
	// Max flow = 5.
	nw := NewNetwork(4)
	nw.AddArc(0, 1, 3, 0)
	nw.AddArc(0, 2, 2, 0)
	nw.AddArc(1, 2, 5, 0)
	nw.AddArc(1, 3, 2, 0)
	nw.AddArc(2, 3, 3, 0)
	if f := nw.MaxFlow(0, 3); f != 5 {
		t.Fatalf("max flow %d, want 5", f)
	}
	reach := nw.MinCutFromSource(0)
	if !reach[0] || reach[3] {
		t.Fatalf("cut sides wrong: %v", reach)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	nw := NewNetwork(3)
	nw.AddArc(0, 1, 7, 0)
	if f := nw.MaxFlow(0, 2); f != 0 {
		t.Fatalf("flow to unreachable sink = %d", f)
	}
}

func TestMaxFlowParallelArcs(t *testing.T) {
	nw := NewNetwork(2)
	nw.AddArc(0, 1, 2, 0)
	nw.AddArc(0, 1, 3, 0)
	if f := nw.MaxFlow(0, 1); f != 5 {
		t.Fatalf("parallel arcs flow %d, want 5", f)
	}
}

func TestMaxFlowUndirectedPath(t *testing.T) {
	// Path 0-1-2-3 with undirected capacity 4 per edge: flow = 4.
	nw := NewNetwork(4)
	for v := int32(0); v < 3; v++ {
		nw.AddArc(v, v+1, 4, 4)
	}
	if f := nw.MaxFlow(0, 3); f != 4 {
		t.Fatalf("path flow %d, want 4", f)
	}
}

func TestMaxFlowPanicsOnEqualTerminals(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNetwork(2).MaxFlow(1, 1)
}

// Min cut equals max flow on random small networks (checked against a
// brute-force enumeration of s-t cuts).
func TestMaxFlowMinCutDuality(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		const n = 8
		type arc struct {
			u, v int32
			c    int64
		}
		var arcs []arc
		nw := NewNetwork(n)
		for i := 0; i < 16; i++ {
			u := r.Int31n(n)
			v := r.Int31n(n)
			if u == v {
				continue
			}
			c := r.Int64n(9) + 1
			nw.AddArc(u, v, c, 0)
			arcs = append(arcs, arc{u, v, c})
		}
		got := nw.MaxFlow(0, n-1)
		// Brute force: minimum over all subsets S with 0 in S, n-1 not in S
		// of the capacity crossing S -> V\S.
		best := int64(1) << 62
		for mask := 0; mask < 1<<n; mask++ {
			if mask&1 == 0 || mask&(1<<(n-1)) != 0 {
				continue
			}
			var capSum int64
			for _, a := range arcs {
				if mask&(1<<a.u) != 0 && mask&(1<<a.v) == 0 {
					capSum += a.c
				}
			}
			if capSum < best {
				best = capSum
			}
		}
		return got == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRefineNeverWorsens(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.DelaunayLike(400, seed)
		n := g.NumNodes()
		r := rng.New(seed)
		k := int32(3)
		p := make([]int32, n)
		for v := range p {
			p[v] = r.Int31n(k)
		}
		lmax := partition.Lmax(g.TotalNodeWeight(), k, 0.20)
		before := partition.EdgeCut(g, p)
		Refine(g, p, RefineConfig{K: k, Lmax: lmax, Rounds: 2, Seed: seed})
		return partition.EdgeCut(g, p) <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestRefineImprovesJaggedBoundary(t *testing.T) {
	// A 30x30 grid split by a jagged (sawtooth) boundary: the min cut
	// through the corridor is the straight line.
	const side = 30
	g := graph.Grid2D(side, side)
	p := make([]int32, side*side)
	for r := int32(0); r < side; r++ {
		boundary := side/2 + (r%4 - 2) // sawtooth between rows
		for c := int32(0); c < side; c++ {
			if c >= boundary {
				p[r*side+c] = 1
			}
		}
	}
	lmax := partition.Lmax(g.TotalNodeWeight(), 2, 0.10)
	before := partition.EdgeCut(g, p)
	gain := Refine(g, p, RefineConfig{K: 2, Lmax: lmax, Rounds: 3, Seed: 1})
	after := partition.EdgeCut(g, p)
	if gain <= 0 || after >= before {
		t.Fatalf("flow refinement: cut %d -> %d (gain %d)", before, after, gain)
	}
	if !partition.IsFeasible(g, p, 2, 0.10) {
		t.Fatal("balance violated")
	}
	if after != before-gain {
		t.Fatalf("reported gain %d inconsistent: %d -> %d", gain, before, after)
	}
}

func TestRefineRespectsBalance(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.RGG(300, seed)
		n := g.NumNodes()
		k := int32(2)
		p := make([]int32, n)
		for v := int32(0); v < n; v++ {
			p[v] = v % 2
		}
		lmax := partition.Lmax(g.TotalNodeWeight(), k, 0.03)
		Refine(g, p, RefineConfig{K: k, Lmax: lmax, Rounds: 2, Seed: seed})
		return partition.IsFeasible(g, p, k, 0.03)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestRefineKWay(t *testing.T) {
	g := gen.DelaunayLike(1600, 7)
	k := int32(4)
	r := rng.New(3)
	p := make([]int32, g.NumNodes())
	// Blocky but noisy start: quadrant plus noise.
	side := int32(40)
	for v := int32(0); v < g.NumNodes(); v++ {
		row, col := v/side, v%side
		p[v] = (row/(side/2))*2 + col/(side/2)
		if r.Float64() < 0.05 {
			p[v] = r.Int31n(k)
		}
	}
	lmax := partition.Lmax(g.TotalNodeWeight(), k, 0.10)
	before := partition.EdgeCut(g, p)
	Refine(g, p, RefineConfig{K: k, Lmax: lmax, Rounds: 3, Seed: 4})
	after := partition.EdgeCut(g, p)
	if after >= before {
		t.Fatalf("k-way flow refinement did not improve: %d -> %d", before, after)
	}
}

func TestGrowCorridorBudget(t *testing.T) {
	g := graph.Grid2D(10, 10)
	p := make([]int32, 100)
	for v := int32(0); v < 100; v++ {
		if v%10 >= 5 {
			p[v] = 1
		}
	}
	corridor := growCorridor(g, p, 0, 1, 12)
	var w int64
	for _, v := range corridor {
		w += g.NW[v]
		if p[v] != 0 {
			t.Fatalf("corridor contains node of wrong block")
		}
	}
	// Budget is a soft stop: at most budget + one node weight.
	if w > 13 {
		t.Fatalf("corridor weight %d exceeds budget", w)
	}
	if len(corridor) == 0 {
		t.Fatal("empty corridor on a split grid")
	}
}
