// Package flow implements max-flow/min-cut based local refinement, the
// flow technique of the KaHIP framework the paper builds on (§II-C:
// "KaHIP implements many different algorithms, for example flow-based
// methods and more-localized local searches").
//
// The package provides a push-relabel max-flow solver and a pairwise
// refinement that extracts a corridor around the boundary between two
// blocks, computes a minimum cut separating the block cores through the
// corridor, and adopts it when it improves the edge cut without violating
// the balance bound.
package flow

// Network is a directed flow network with residual bookkeeping. Nodes are
// dense int32 IDs; parallel arcs are allowed.
type Network struct {
	n     int32
	heads [][]int32 // arc indices per node
	to    []int32
	cap   []int64
	flow  []int64
}

// NewNetwork returns an empty network with n nodes.
func NewNetwork(n int32) *Network {
	return &Network{n: n, heads: make([][]int32, n)}
}

// NumNodes returns the node count.
func (nw *Network) NumNodes() int32 { return nw.n }

// AddArc adds a directed arc u->v with the given capacity and its residual
// twin v->u with reverse capacity. For an undirected edge of weight w use
// AddArc(u, v, w, w).
func (nw *Network) AddArc(u, v int32, capacity, reverse int64) {
	i := int32(len(nw.to))
	nw.to = append(nw.to, v, u)
	nw.cap = append(nw.cap, capacity, reverse)
	nw.flow = append(nw.flow, 0, 0)
	nw.heads[u] = append(nw.heads[u], i)
	nw.heads[v] = append(nw.heads[v], i+1)
}

func (nw *Network) residual(arc int32) int64 { return nw.cap[arc] - nw.flow[arc] }

// MaxFlow computes the maximum s-t flow with FIFO push-relabel and the gap
// heuristic. It panics if s == t.
func (nw *Network) MaxFlow(s, t int32) int64 {
	if s == t {
		panic("flow: source equals sink")
	}
	n := nw.n
	height := make([]int32, n)
	excess := make([]int64, n)
	countAt := make([]int32, 2*n+1) // nodes per height, for the gap heuristic
	inQueue := make([]bool, n)
	var queue []int32

	height[s] = n
	for _, v := range height {
		countAt[v]++
	}
	// Saturate source arcs.
	for _, a := range nw.heads[s] {
		if a%2 == 1 && nw.cap[a] == 0 {
			continue
		}
		d := nw.residual(a)
		if d <= 0 {
			continue
		}
		v := nw.to[a]
		nw.flow[a] += d
		nw.flow[a^1] -= d
		excess[v] += d
		excess[s] -= d
		if v != t && v != s && !inQueue[v] {
			inQueue[v] = true
			queue = append(queue, v)
		}
	}

	push := func(v int32, a int32) {
		u := nw.to[a]
		d := nw.residual(a)
		if d > excess[v] {
			d = excess[v]
		}
		nw.flow[a] += d
		nw.flow[a^1] -= d
		excess[v] -= d
		excess[u] += d
		if u != s && u != t && !inQueue[u] {
			inQueue[u] = true
			queue = append(queue, u)
		}
	}

	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		for excess[v] > 0 {
			// Push to admissible arcs.
			pushed := false
			for _, a := range nw.heads[v] {
				if nw.residual(a) > 0 && height[v] == height[nw.to[a]]+1 {
					push(v, a)
					pushed = true
					if excess[v] == 0 {
						break
					}
				}
			}
			if excess[v] == 0 {
				break
			}
			if !pushed {
				// Relabel with the gap heuristic.
				old := height[v]
				minH := int32(2*n + 1)
				for _, a := range nw.heads[v] {
					if nw.residual(a) > 0 && height[nw.to[a]] < minH {
						minH = height[nw.to[a]]
					}
				}
				if minH >= 2*n {
					height[v] = 2 * n
				} else {
					height[v] = minH + 1
				}
				countAt[old]--
				countAt[height[v]]++
				if countAt[old] == 0 && old < n {
					// Gap: lift every node above the gap out of reach.
					for u := int32(0); u < n; u++ {
						if u != s && height[u] > old && height[u] <= n {
							countAt[height[u]]--
							height[u] = n + 1
							countAt[height[u]]++
						}
					}
				}
				if height[v] >= 2*n {
					break // unreachable; excess stays (flows back implicitly)
				}
			}
		}
	}
	var out int64
	for _, a := range nw.heads[t] {
		// Incoming flow at t is the negative flow on t's outgoing residual
		// twins.
		out -= nw.flow[a]
	}
	return out
}

// MinCutFromSource returns, after MaxFlow, the set of nodes reachable from
// s in the residual network: reachable[v] == true puts v on the source side
// of a minimum cut.
func (nw *Network) MinCutFromSource(s int32) []bool {
	reach := make([]bool, nw.n)
	reach[s] = true
	stack := []int32{s}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range nw.heads[v] {
			u := nw.to[a]
			if !reach[u] && nw.residual(a) > 0 {
				reach[u] = true
				stack = append(stack, u)
			}
		}
	}
	return reach
}
