package flow

import (
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

// RefineConfig controls pairwise flow refinement.
type RefineConfig struct {
	K    int32
	Lmax int64
	// CorridorFactor scales the corridor weight grown into each side of a
	// block-pair boundary: each side contributes up to
	// CorridorFactor*(Lmax - weight(other block)) node weight, KaFFPa's
	// "area" rule. Values around 1 are conservative; larger corridors
	// allow bigger improvements but risk rejected (unbalanced) cuts.
	CorridorFactor float64
	// Rounds is the number of sweeps over adjacent block pairs.
	Rounds int
	// Seed drives the pair ordering.
	Seed uint64
}

// Refine improves partition p in place by computing minimum cuts through
// corridors around the boundaries of adjacent block pairs. It never
// increases the edge cut and never breaks a satisfied balance bound.
// It returns the total cut improvement.
//
//lint:rawslice-ok internal SPMD plumbing: the raw assignment slice is the working representation; wrapped in *parhip.Partition at the public boundary
func Refine(g *graph.Graph, p []int32, cfg RefineConfig) int64 {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.CorridorFactor <= 0 {
		cfg.CorridorFactor = 1
	}
	r := rng.New(cfg.Seed)
	var total int64
	for round := 0; round < cfg.Rounds; round++ {
		pairs := adjacentPairs(g, p, cfg.K)
		r.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
		var roundGain int64
		for _, pr := range pairs {
			roundGain += refinePair(g, p, pr[0], pr[1], cfg)
		}
		total += roundGain
		if roundGain == 0 {
			break
		}
	}
	return total
}

// adjacentPairs lists the edges of the quotient graph.
func adjacentPairs(g *graph.Graph, p []int32, k int32) [][2]int32 {
	seen := make(map[int64]bool)
	var out [][2]int32
	for v := int32(0); v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(v) {
			a, b := p[v], p[u]
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			key := int64(a)*int64(k) + int64(b)
			if !seen[key] {
				seen[key] = true
				out = append(out, [2]int32{a, b})
			}
		}
	}
	return out
}

// refinePair runs one flow refinement between blocks a and b and returns
// the cut improvement (0 when the candidate cut was rejected).
func refinePair(g *graph.Graph, p []int32, a, b int32, cfg RefineConfig) int64 {
	wa, wb := int64(0), int64(0)
	for v := int32(0); v < g.NumNodes(); v++ {
		switch p[v] {
		case a:
			wa += g.NW[v]
		case b:
			wb += g.NW[v]
		}
	}
	// Corridor budget per side (KaFFPa's area rule): what the other side
	// could still absorb under Lmax, scaled.
	budgetA := int64(cfg.CorridorFactor * float64(cfg.Lmax-wb))
	budgetB := int64(cfg.CorridorFactor * float64(cfg.Lmax-wa))
	if budgetA <= 0 || budgetB <= 0 {
		return 0
	}
	corridorA := growCorridor(g, p, a, b, budgetA)
	corridorB := growCorridor(g, p, b, a, budgetB)
	if len(corridorA) == 0 && len(corridorB) == 0 {
		return 0
	}
	// Build the flow network: corridor nodes + super source (block-a core)
	// + super sink (block-b core).
	inCorridor := make(map[int32]int32) // node -> network id
	id := int32(2)                      // 0 = source, 1 = sink
	for _, v := range corridorA {
		inCorridor[v] = id
		id++
	}
	for _, v := range corridorB {
		inCorridor[v] = id
		id++
	}
	nw := NewNetwork(id)
	corridorNodes := make([]int32, 0, len(inCorridor))
	for v, nv := range inCorridor {
		corridorNodes = append(corridorNodes, v)
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			if p[u] != a && p[u] != b {
				continue // other blocks do not participate in the network
			}
			nu, inside := inCorridor[u]
			if inside {
				if u > v { // one arc pair per undirected edge
					nw.AddArc(nv, nu, ws[i], ws[i])
				}
				continue
			}
			// Edge to a block core: connect to the super terminal.
			if p[u] == a {
				nw.AddArc(0, nv, ws[i], 0)
			} else {
				nw.AddArc(nv, 1, ws[i], 0)
			}
		}
	}
	before := localCut(g, p, corridorNodes, inCorridor)
	nw.MaxFlow(0, 1)
	reach := nw.MinCutFromSource(0)
	// Candidate assignment: source side -> a, sink side -> b.
	old := make(map[int32]int32, len(inCorridor))
	for v, nv := range inCorridor {
		old[v] = p[v]
		if reach[nv] {
			p[v] = a
		} else {
			p[v] = b
		}
	}
	// Accept only if the cut improves and balance holds for both blocks.
	after := localCut(g, p, corridorNodes, inCorridor)
	nwa, nwb := int64(0), int64(0)
	for v := int32(0); v < g.NumNodes(); v++ {
		switch p[v] {
		case a:
			nwa += g.NW[v]
		case b:
			nwb += g.NW[v]
		}
	}
	balancedBefore := wa <= cfg.Lmax && wb <= cfg.Lmax
	balancedAfter := nwa <= cfg.Lmax && nwb <= cfg.Lmax
	if after < before && (balancedAfter || !balancedBefore) {
		return before - after
	}
	// Reject: roll back.
	for v, bl := range old {
		p[v] = bl
	}
	return 0
}

// growCorridor collects nodes of block `from` reachable by BFS from the
// (from, to) boundary, stopping when the collected node weight exceeds
// budget.
func growCorridor(g *graph.Graph, p []int32, from, to int32, budget int64) []int32 {
	var frontier []int32
	inSet := make(map[int32]bool)
	for v := int32(0); v < g.NumNodes(); v++ {
		if p[v] != from {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if p[u] == to {
				frontier = append(frontier, v)
				inSet[v] = true
				break
			}
		}
	}
	var out []int32
	var weight int64
	queue := frontier
	for len(queue) > 0 && weight < budget {
		v := queue[0]
		queue = queue[1:]
		out = append(out, v)
		weight += g.NW[v]
		for _, u := range g.Neighbors(v) {
			if p[u] == from && !inSet[u] {
				inSet[u] = true
				queue = append(queue, u)
			}
		}
	}
	return out
}

// localCut returns the cut weight of all edges incident to the corridor:
// edges whose assignment the refinement can change. Edges between two
// corridor nodes are counted once; edges leaving the corridor (to block
// cores or to other blocks) once as well, so comparing before/after values
// is an exact cut delta.
func localCut(g *graph.Graph, p []int32, nodes []int32, inCorridor map[int32]int32) int64 {
	var cut int64
	for _, v := range nodes {
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			if _, inside := inCorridor[u]; inside && u < v {
				continue // counted from the smaller endpoint
			}
			if p[u] != p[v] {
				cut += ws[i]
			}
		}
	}
	return cut
}

// Evaluate is a convenience wrapper for tests: total cut of p.
//
//lint:rawslice-ok internal SPMD plumbing: the raw assignment slice is the working representation; wrapped in *parhip.Partition at the public boundary
func Evaluate(g *graph.Graph, p []int32) int64 {
	return partition.EdgeCut(g, p)
}
