package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func twoBlocksOfPath(n int32) (*graph.Graph, Partition) {
	g := graph.Path(n)
	p := New(n)
	for v := n / 2; v < n; v++ {
		p[v] = 1
	}
	return g, p
}

func TestEdgeCutPath(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	if cut := EdgeCut(g, p); cut != 1 {
		t.Fatalf("cut = %d, want 1", cut)
	}
}

func TestEdgeCutAllOneBlock(t *testing.T) {
	g := graph.Complete(8)
	p := New(8)
	if cut := EdgeCut(g, p); cut != 0 {
		t.Fatalf("cut = %d, want 0", cut)
	}
}

func TestEdgeCutWeighted(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdgeW(0, 1, 7)
	g := b.Build()
	p := Partition{0, 1}
	if cut := EdgeCut(g, p); cut != 7 {
		t.Fatalf("cut = %d, want 7", cut)
	}
}

func TestBlockWeights(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	bw := BlockWeights(g, p, 2)
	if bw[0] != 5 || bw[1] != 5 {
		t.Fatalf("block weights = %v", bw)
	}
}

func TestLmax(t *testing.T) {
	// total 100, k=4, eps=0.03: ceil(100/4)=25, 25*1.03=25.75 -> 25
	if l := Lmax(100, 4, 0.03); l != 25 {
		t.Fatalf("Lmax = %d, want 25", l)
	}
	// total 10, k=3: ceil=4, 4*1.03=4.12 -> 4
	if l := Lmax(10, 3, 0.03); l != 4 {
		t.Fatalf("Lmax = %d, want 4", l)
	}
	if l := Lmax(100, 2, 0.5); l != 75 {
		t.Fatalf("Lmax = %d, want 75", l)
	}
}

func TestImbalance(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	if im := Imbalance(g, p, 2); im != 0 {
		t.Fatalf("imbalance = %v, want 0", im)
	}
	p2 := New(10) // everything in block 0, k=2
	if im := Imbalance(g, p2, 2); im != 1 {
		t.Fatalf("imbalance = %v, want 1", im)
	}
}

func TestIsFeasible(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	if !IsFeasible(g, p, 2, 0.03) {
		t.Fatal("balanced bipartition should be feasible")
	}
	p2 := New(10)
	if IsFeasible(g, p2, 2, 0.03) {
		t.Fatal("everything-in-one-block should be infeasible")
	}
	p3 := p.Clone()
	p3[0] = 5
	if IsFeasible(g, p3, 2, 0.03) {
		t.Fatal("out-of-range block should be infeasible")
	}
}

func TestBoundaryNodes(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	bn := BoundaryNodes(g, p)
	if len(bn) != 2 || bn[0] != 4 || bn[1] != 5 {
		t.Fatalf("boundary = %v, want [4 5]", bn)
	}
}

func TestCommunicationVolume(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	// Nodes 4 and 5 each see one foreign block.
	if cv := CommunicationVolume(g, p, 2); cv != 2 {
		t.Fatalf("comm vol = %d, want 2", cv)
	}
	// Star with leaves alternating blocks: hub sees 1 foreign block (hub in
	// block 0, half the leaves in block 1), each block-1 leaf sees 1.
	s := graph.Star(5)
	sp := Partition{0, 1, 0, 1, 0}
	if cv := CommunicationVolume(s, sp, 2); cv != 3 {
		t.Fatalf("star comm vol = %d, want 3", cv)
	}
}

func TestMaxQuotientDegree(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	if d := MaxQuotientDegree(g, p, 2); d != 1 {
		t.Fatalf("path bipartition max quotient degree = %d", d)
	}
	// Star with hub in block 0 and leaves in blocks 1..4: block 0 touches 4
	// blocks.
	s := graph.Star(5)
	sp := Partition{0, 1, 2, 3, 0}
	if d := MaxQuotientDegree(s, sp, 4); d != 3 {
		t.Fatalf("star max quotient degree = %d, want 3", d)
	}
	// Single block: degree 0.
	if d := MaxQuotientDegree(g, New(10), 2); d != 0 {
		t.Fatalf("single-block quotient degree = %d", d)
	}
}

func TestMaxCommVolume(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	// Each block sends exactly one (node, block) pair.
	if v := MaxCommVolume(g, p, 2); v != 1 {
		t.Fatalf("path max comm volume = %d", v)
	}
	// The max is bounded by the total.
	s := graph.Star(6)
	sp := Partition{0, 1, 1, 0, 1, 0}
	if mx, tot := MaxCommVolume(s, sp, 2), CommunicationVolume(s, sp, 2); mx > tot {
		t.Fatalf("max %d exceeds total %d", mx, tot)
	}
}

func TestQuotientGraph(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	q := QuotientGraph(g, p, 2)
	if q.NumNodes() != 2 || q.NumEdges() != 1 {
		t.Fatalf("quotient %v", q)
	}
	if q.NW[0] != 5 || q.NW[1] != 5 {
		t.Fatalf("quotient node weights %v", q.NW)
	}
	if w, ok := q.HasEdge(0, 1); !ok || w != 1 {
		t.Fatalf("quotient edge weight %d", w)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property from the paper (§III): contracting a clustering preserves cut and
// balance; the quotient graph's total edge weight equals the original cut.
func TestQuotientPreservesCut(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		b := graph.NewBuilder(30)
		for i := 0; i < 120; i++ {
			u, v := r.Int31n(30), r.Int31n(30)
			if u != v {
				b.AddEdgeW(u, v, r.Int64n(4)+1)
			}
		}
		g := b.Build()
		k := int32(4)
		p := New(30)
		for v := range p {
			p[v] = r.Int31n(k)
		}
		q := QuotientGraph(g, p, k)
		return q.TotalEdgeWeight() == EdgeCut(g, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestValidatePartition(t *testing.T) {
	g := graph.Path(5)
	if err := Validate(g, New(5), 2); err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, New(4), 2); err == nil {
		t.Fatal("expected error for wrong length")
	}
	bad := New(5)
	bad[2] = 7
	if err := Validate(g, bad, 2); err == nil {
		t.Fatal("expected error for out-of-range block")
	}
}

func TestEvaluateReport(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	rep := Evaluate(g, p, 2, 0.03)
	if rep.Cut != 1 || !rep.Feasible || rep.Boundary != 2 {
		t.Fatalf("report %+v", rep)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestNumBlocks(t *testing.T) {
	p := Partition{0, 2, 1, 2}
	if p.NumBlocks() != 3 {
		t.Fatalf("NumBlocks = %d", p.NumBlocks())
	}
	if New(0).NumBlocks() != 0 {
		t.Fatal("empty partition should have 0 blocks")
	}
}
