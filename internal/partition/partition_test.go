package partition

import (
	"math"
	"math/big"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func twoBlocksOfPath(n int32) (*graph.Graph, Partition) {
	g := graph.Path(n)
	p := New(n)
	for v := n / 2; v < n; v++ {
		p[v] = 1
	}
	return g, p
}

func TestEdgeCutPath(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	if cut := EdgeCut(g, p); cut != 1 {
		t.Fatalf("cut = %d, want 1", cut)
	}
}

func TestEdgeCutAllOneBlock(t *testing.T) {
	g := graph.Complete(8)
	p := New(8)
	if cut := EdgeCut(g, p); cut != 0 {
		t.Fatalf("cut = %d, want 0", cut)
	}
}

func TestEdgeCutWeighted(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdgeW(0, 1, 7)
	g := b.Build()
	p := Partition{0, 1}
	if cut := EdgeCut(g, p); cut != 7 {
		t.Fatalf("cut = %d, want 7", cut)
	}
}

func TestBlockWeights(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	bw := BlockWeights(g, p, 2)
	if bw[0] != 5 || bw[1] != 5 {
		t.Fatalf("block weights = %v", bw)
	}
}

func TestLmax(t *testing.T) {
	// total 100, k=4, eps=0.03: ceil(100/4)=25, 25*1.03=25.75 -> 25
	if l := Lmax(100, 4, 0.03); l != 25 {
		t.Fatalf("Lmax = %d, want 25", l)
	}
	// total 10, k=3: ceil=4, 4*1.03=4.12 -> 4
	if l := Lmax(10, 3, 0.03); l != 4 {
		t.Fatalf("Lmax = %d, want 4", l)
	}
	if l := Lmax(100, 2, 0.5); l != 75 {
		t.Fatalf("Lmax = %d, want 75", l)
	}
}

func TestImbalance(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	if im := Imbalance(g, p, 2); im != 0 {
		t.Fatalf("imbalance = %v, want 0", im)
	}
	p2 := New(10) // everything in block 0, k=2
	if im := Imbalance(g, p2, 2); im != 1 {
		t.Fatalf("imbalance = %v, want 1", im)
	}
}

func TestIsFeasible(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	if !IsFeasible(g, p, 2, 0.03) {
		t.Fatal("balanced bipartition should be feasible")
	}
	p2 := New(10)
	if IsFeasible(g, p2, 2, 0.03) {
		t.Fatal("everything-in-one-block should be infeasible")
	}
	p3 := p.Clone()
	p3[0] = 5
	if IsFeasible(g, p3, 2, 0.03) {
		t.Fatal("out-of-range block should be infeasible")
	}
}

func TestBoundaryNodes(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	bn := BoundaryNodes(g, p)
	if len(bn) != 2 || bn[0] != 4 || bn[1] != 5 {
		t.Fatalf("boundary = %v, want [4 5]", bn)
	}
}

func TestCommunicationVolume(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	// Nodes 4 and 5 each see one foreign block.
	if cv := CommunicationVolume(g, p, 2); cv != 2 {
		t.Fatalf("comm vol = %d, want 2", cv)
	}
	// Star with leaves alternating blocks: hub sees 1 foreign block (hub in
	// block 0, half the leaves in block 1), each block-1 leaf sees 1.
	s := graph.Star(5)
	sp := Partition{0, 1, 0, 1, 0}
	if cv := CommunicationVolume(s, sp, 2); cv != 3 {
		t.Fatalf("star comm vol = %d, want 3", cv)
	}
}

func TestMaxQuotientDegree(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	if d := MaxQuotientDegree(g, p, 2); d != 1 {
		t.Fatalf("path bipartition max quotient degree = %d", d)
	}
	// Star with hub in block 0 and leaves in blocks 1..4: block 0 touches 4
	// blocks.
	s := graph.Star(5)
	sp := Partition{0, 1, 2, 3, 0}
	if d := MaxQuotientDegree(s, sp, 4); d != 3 {
		t.Fatalf("star max quotient degree = %d, want 3", d)
	}
	// Single block: degree 0.
	if d := MaxQuotientDegree(g, New(10), 2); d != 0 {
		t.Fatalf("single-block quotient degree = %d", d)
	}
}

func TestMaxCommVolume(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	// Each block sends exactly one (node, block) pair.
	if v := MaxCommVolume(g, p, 2); v != 1 {
		t.Fatalf("path max comm volume = %d", v)
	}
	// The max is bounded by the total.
	s := graph.Star(6)
	sp := Partition{0, 1, 1, 0, 1, 0}
	if mx, tot := MaxCommVolume(s, sp, 2), CommunicationVolume(s, sp, 2); mx > tot {
		t.Fatalf("max %d exceeds total %d", mx, tot)
	}
}

func TestQuotientGraph(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	q := QuotientGraph(g, p, 2)
	if q.NumNodes() != 2 || q.NumEdges() != 1 {
		t.Fatalf("quotient %v", q)
	}
	if q.NW[0] != 5 || q.NW[1] != 5 {
		t.Fatalf("quotient node weights %v", q.NW)
	}
	if w, ok := q.HasEdge(0, 1); !ok || w != 1 {
		t.Fatalf("quotient edge weight %d", w)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property from the paper (§III): contracting a clustering preserves cut and
// balance; the quotient graph's total edge weight equals the original cut.
func TestQuotientPreservesCut(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		b := graph.NewBuilder(30)
		for i := 0; i < 120; i++ {
			u, v := r.Int31n(30), r.Int31n(30)
			if u != v {
				b.AddEdgeW(u, v, r.Int64n(4)+1)
			}
		}
		g := b.Build()
		k := int32(4)
		p := New(30)
		for v := range p {
			p[v] = r.Int31n(k)
		}
		q := QuotientGraph(g, p, k)
		return q.TotalEdgeWeight() == EdgeCut(g, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestValidatePartition(t *testing.T) {
	g := graph.Path(5)
	if err := Validate(g, New(5), 2); err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, New(4), 2); err == nil {
		t.Fatal("expected error for wrong length")
	}
	bad := New(5)
	bad[2] = 7
	if err := Validate(g, bad, 2); err == nil {
		t.Fatal("expected error for out-of-range block")
	}
}

func TestEvaluateReport(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	rep := Evaluate(g, p, 2, 0.03)
	if rep.Cut != 1 || !rep.Feasible || rep.Boundary != 2 {
		t.Fatalf("report %+v", rep)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestNumBlocks(t *testing.T) {
	p := Partition{0, 2, 1, 2}
	if p.NumBlocks() != 3 {
		t.Fatalf("NumBlocks = %d", p.NumBlocks())
	}
	if New(0).NumBlocks() != 0 {
		t.Fatal("empty partition should have 0 blocks")
	}
}

// refLmax computes floor((1+eps)*ceil(total/k)) with exact rational
// arithmetic, interpreting eps as its shortest round-trip decimal — the
// reference the production Lmax must match.
func refLmax(total int64, k int32, eps float64) int64 {
	ceil := (total + int64(k) - 1) / int64(k)
	r := new(big.Rat)
	if _, ok := r.SetString(strconv.FormatFloat(eps, 'g', -1, 64)); !ok {
		r.SetFloat64(eps)
	}
	r.Add(r, big.NewRat(1, 1))
	r.Mul(r, new(big.Rat).SetInt64(ceil))
	q := new(big.Int).Quo(r.Num(), r.Denom())
	if !q.IsInt64() {
		return math.MaxInt64
	}
	return q.Int64()
}

// TestLmaxExactRegression covers the float64 truncation bug: the old
// int64((1+eps)*float64(ceil)) formula lost a unit whenever the binary
// rounding of 1+eps fell just below the decimal product (eps=0.29,
// ceil=100 gave 128 instead of 129) and was wrong wholesale above 2^53.
func TestLmaxExactRegression(t *testing.T) {
	epsTable := []float64{0.03, 0.07, 0.29, 0.5}
	totals := []int64{10, 100, 400, 999, 12345, 1_000_000,
		1 << 40, 1<<53 + 1, 1 << 60, math.MaxInt64 / 2}
	ks := []int32{1, 2, 3, 4, 7, 32, 127}
	for _, eps := range epsTable {
		for _, total := range totals {
			for _, k := range ks {
				got := Lmax(total, k, eps)
				want := refLmax(total, k, eps)
				if got != want {
					t.Errorf("Lmax(%d, %d, %g) = %d, want %d", total, k, eps, got, want)
				}
			}
		}
	}
	// The motivating case from the issue: eps=0.29, ceil=100.
	if got := Lmax(400, 4, 0.29); got != 129 {
		t.Errorf("Lmax(400, 4, 0.29) = %d, want 129 (old float path gave 128)", got)
	}
	// Beyond 2^53 the float path could not even represent the ceil exactly.
	if got, want := Lmax(1<<60, 1, 0.5), int64(1<<60+1<<59); got != want {
		t.Errorf("Lmax(2^60, 1, 0.5) = %d, want %d", got, want)
	}
}

func TestLmaxRandomAgainstBigRat(t *testing.T) {
	r := rng.New(11)
	for i := 0; i < 3000; i++ {
		total := int64(r.Uint64() >> (1 + r.Intn(50)))
		k := int32(1 + r.Intn(512))
		// Decimal-ish eps values of varying precision, plus raw floats.
		var eps float64
		switch r.Intn(3) {
		case 0:
			eps = float64(r.Intn(1000)) / 1000
		case 1:
			eps = float64(r.Intn(100)) / 100
		default:
			eps = float64(r.Uint64()%(1<<30)) / float64(1<<31)
		}
		got := Lmax(total, k, eps)
		want := refLmax(total, k, eps)
		if got != want {
			t.Fatalf("Lmax(%d, %d, %v) = %d, want %d", total, k, eps, got, want)
		}
	}
}

func TestLmaxDegenerateEps(t *testing.T) {
	if got := Lmax(100, 4, 0); got != 25 {
		t.Errorf("eps=0: got %d, want 25", got)
	}
	if got := Lmax(100, 4, -1); got != 25 {
		t.Errorf("eps<0: got %d, want 25", got)
	}
	if got := Lmax(100, 4, math.NaN()); got != 25 {
		t.Errorf("eps=NaN: got %d, want 25", got)
	}
	if got := Lmax(100, 4, math.Inf(1)); got != math.MaxInt64 {
		t.Errorf("eps=+Inf: got %d, want MaxInt64", got)
	}
	// Tiny eps beyond the int64 decimal range takes the big.Rat fallback.
	if got, want := Lmax(1<<60, 1, 1e-300), int64(1<<60); got != want {
		t.Errorf("eps=1e-300: got %d, want %d", got, want)
	}
}

func TestWorstOverload(t *testing.T) {
	g, p := twoBlocksOfPath(10)
	if o := WorstOverload(g, p, 2, 0.03); o != 0 {
		t.Fatalf("balanced overload = %d, want 0", o)
	}
	q := New(10) // everything in block 0 of 2: weight 10 vs Lmax(10,2,0.03)=5
	if o := WorstOverload(g, q, 2, 0.03); o != 5 {
		t.Fatalf("overload = %d, want 5", o)
	}
}
