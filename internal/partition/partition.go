// Package partition defines the partition representation and the quality
// metrics used throughout the reproduction: edge cut, balance, boundary
// size, communication volume and the quotient graph (paper §II-A).
package partition

import (
	"fmt"
	"math"
	"math/big"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/intmath"
)

// Partition assigns every node a block ID in [0, k). It is stored as a
// plain slice indexed by node ID.
type Partition []int32

// New returns a partition of n nodes, all assigned to block 0.
func New(n int32) Partition { return make(Partition, n) }

// Clone returns a copy of p.
func (p Partition) Clone() Partition {
	c := make(Partition, len(p))
	copy(c, p)
	return c
}

// NumBlocks returns 1 + the largest block ID present (0 for an empty
// partition).
func (p Partition) NumBlocks() int32 {
	var mx int32 = -1
	for _, b := range p {
		if b > mx {
			mx = b
		}
	}
	return mx + 1
}

// EdgeCut returns the total weight of edges whose endpoints lie in
// different blocks.
func EdgeCut(g *graph.Graph, p Partition) int64 {
	var cut int64
	n := g.NumNodes()
	for v := int32(0); v < n; v++ {
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			if p[v] != p[u] {
				cut += ws[i]
			}
		}
	}
	return cut / 2 // every cut edge counted from both endpoints
}

// BlockWeights returns the total node weight per block for a partition
// into k blocks.
func BlockWeights(g *graph.Graph, p Partition, k int32) []int64 {
	w := make([]int64, k)
	for v := int32(0); v < g.NumNodes(); v++ {
		w[p[v]] += g.NW[v]
	}
	return w
}

// Lmax returns the balance bound (1+eps)*ceil(totalWeight/k) from §II-A,
// rounded down to an integer: block weights are integral, so
// c(V_i) <= (1+eps)*ceil is equivalent to c(V_i) <= floor((1+eps)*ceil).
//
// The product is evaluated exactly. Every layer (core, matchbase, kaffpa,
// sclp tests, the server via core.Stats) must obtain the bound from this
// one function so the constraint is identical across coarsening,
// refinement, rebalancing and the final feasibility check.
func Lmax(totalWeight int64, k int32, eps float64) int64 {
	if totalWeight < 0 || k < 1 {
		return 0
	}
	return ScaledBound(intmath.CeilDiv(totalWeight, int64(k)), eps)
}

// ScaledBound returns floor((1+eps)*w) for w >= 0, computed exactly: eps is
// interpreted as the decimal number the caller wrote (its shortest
// round-trip representation, so eps=0.29 means exactly 29/100), and the
// scaling runs in 128-bit integer arithmetic. The previous float64 formula
// truncated (eps=0.29 with w=100 gave 128 instead of 129) and lost
// precision entirely for weights above 2^53.
func ScaledBound(w int64, eps float64) int64 {
	if w <= 0 || eps <= 0 || math.IsNaN(eps) {
		return w
	}
	if math.IsInf(eps, 1) {
		return math.MaxInt64
	}
	if num, den, ok := decimalParts(eps); ok {
		return intmath.SatAdd(w, intmath.MulDivFloor(w, num, den))
	}
	return scaledBoundBig(w, eps)
}

// decimalParts decomposes a positive finite eps into num/den == the value
// of eps's shortest round-trip decimal representation. ok is false when the
// decimal exponent is too extreme for 64-bit integers (the caller falls
// back to big.Rat).
func decimalParts(eps float64) (num, den int64, ok bool) {
	s := strconv.FormatFloat(eps, 'g', -1, 64)
	mant, exp10 := s, 0
	if i := strings.IndexAny(s, "eE"); i >= 0 {
		e, err := strconv.Atoi(s[i+1:])
		if err != nil {
			return 0, 0, false
		}
		mant, exp10 = s[:i], e
	}
	if i := strings.IndexByte(mant, '.'); i >= 0 {
		exp10 -= len(mant) - i - 1
		mant = mant[:i] + mant[i+1:]
	}
	n, err := strconv.ParseInt(mant, 10, 64)
	if err != nil || n < 0 {
		return 0, 0, false
	}
	num, den = n, 1
	for ; exp10 > 0; exp10-- {
		if num > math.MaxInt64/10 {
			return 0, 0, false
		}
		num *= 10
	}
	for ; exp10 < 0; exp10++ {
		if den > math.MaxInt64/10 {
			return 0, 0, false
		}
		den *= 10
	}
	return num, den, true
}

// scaledBoundBig is the arbitrary-precision fallback for eps values whose
// decimal form does not fit 64-bit integers.
func scaledBoundBig(w int64, eps float64) int64 {
	r := new(big.Rat)
	if _, ok := r.SetString(strconv.FormatFloat(eps, 'g', -1, 64)); !ok {
		r.SetFloat64(eps)
	}
	r.Add(r, big.NewRat(1, 1))
	r.Mul(r, new(big.Rat).SetInt64(w))
	q := new(big.Int).Quo(r.Num(), r.Denom())
	if !q.IsInt64() {
		return math.MaxInt64
	}
	return q.Int64()
}

// WorstOverload returns by how much the heaviest block exceeds the balance
// bound Lmax (0 for feasible partitions). Benchmarks record it alongside
// the cut so balance regressions are visible in BENCH_*.json trajectories.
func WorstOverload(g *graph.Graph, p Partition, k int32, eps float64) int64 {
	lmax := Lmax(g.TotalNodeWeight(), k, eps)
	var worst int64
	for _, w := range BlockWeights(g, p, k) {
		if over := w - lmax; over > worst {
			worst = over
		}
	}
	return worst
}

// Imbalance returns max_i c(V_i)/(c(V)/k) - 1, the conventional imbalance
// measure. A perfectly balanced partition has imbalance 0.
func Imbalance(g *graph.Graph, p Partition, k int32) float64 {
	bw := BlockWeights(g, p, k)
	total := g.TotalNodeWeight()
	if total == 0 {
		return 0
	}
	avg := float64(total) / float64(k)
	var mx int64
	for _, w := range bw {
		if w > mx {
			mx = w
		}
	}
	return float64(mx)/avg - 1
}

// IsFeasible reports whether every block weight respects Lmax for the given
// eps, and whether all block IDs are within [0, k).
func IsFeasible(g *graph.Graph, p Partition, k int32, eps float64) bool {
	for _, b := range p {
		if b < 0 || b >= k {
			return false
		}
	}
	lmax := Lmax(g.TotalNodeWeight(), k, eps)
	for _, w := range BlockWeights(g, p, k) {
		if w > lmax {
			return false
		}
	}
	return true
}

// BoundaryNodes returns the nodes with at least one neighbour in a
// different block (§II-A).
func BoundaryNodes(g *graph.Graph, p Partition) []graph.NodeID {
	var out []graph.NodeID
	for v := int32(0); v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(v) {
			if p[v] != p[u] {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

// CommunicationVolume returns the total communication volume of the
// partition: for every node, the number of distinct foreign blocks among
// its neighbours, summed over all nodes. This is the "more realistic"
// objective mentioned in §I and §VI.
func CommunicationVolume(g *graph.Graph, p Partition, k int32) int64 {
	seen := make([]int32, k)
	for i := range seen {
		seen[i] = -1
	}
	var vol int64
	for v := int32(0); v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(v) {
			if p[u] != p[v] && seen[p[u]] != v {
				seen[p[u]] = v
				vol++
			}
		}
	}
	return vol
}

// MaxQuotientDegree returns the largest number of distinct neighbouring
// blocks over all blocks — the "maximum quotient graph degree" objective
// mentioned in §VI. For k PEs it bounds the number of communication
// partners of the busiest PE.
func MaxQuotientDegree(g *graph.Graph, p Partition, k int32) int32 {
	adj := make(map[int64]bool)
	for v := int32(0); v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(v) {
			if p[u] != p[v] {
				adj[int64(p[v])*int64(k)+int64(p[u])] = true
			}
		}
	}
	deg := make([]int32, k)
	for key := range adj {
		deg[key/int64(k)]++
	}
	var mx int32
	for _, d := range deg {
		if d > mx {
			mx = d
		}
	}
	return mx
}

// MaxCommVolume returns the communication volume of the busiest block: for
// each block, the number of (node, foreign block) pairs its nodes must
// send, maximized over blocks ("maximum communication volume", §VI).
func MaxCommVolume(g *graph.Graph, p Partition, k int32) int64 {
	seen := make([]int32, k)
	for i := range seen {
		seen[i] = -1
	}
	vol := make([]int64, k)
	for v := int32(0); v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(v) {
			if p[u] != p[v] && seen[p[u]] != v {
				seen[p[u]] = v
				vol[p[v]]++
			}
		}
	}
	var mx int64
	for _, x := range vol {
		if x > mx {
			mx = x
		}
	}
	return mx
}

// QuotientGraph builds the weighted quotient graph of the partition
// (§II-A): one node per block with weight equal to the block weight, and an
// edge between two blocks with weight equal to the total weight of edges
// running between them.
func QuotientGraph(g *graph.Graph, p Partition, k int32) *graph.Graph {
	b := graph.NewBuilder(k)
	bw := BlockWeights(g, p, k)
	for i := int32(0); i < k; i++ {
		if bw[i] > 0 {
			b.SetNodeWeight(i, bw[i])
		}
	}
	for v := int32(0); v < g.NumNodes(); v++ {
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			if u > v && p[u] != p[v] {
				b.AddEdgeW(p[v], p[u], ws[i])
			}
		}
	}
	return b.Build()
}

// Validate checks that p has one entry per node of g and block IDs in
// [0, k).
func Validate(g *graph.Graph, p Partition, k int32) error {
	if int32(len(p)) != g.NumNodes() {
		return fmt.Errorf("partition: %d entries for %d nodes", len(p), g.NumNodes())
	}
	for v, b := range p {
		if b < 0 || b >= k {
			return fmt.Errorf("partition: node %d has block %d outside [0,%d)", v, b, k)
		}
	}
	return nil
}

// Report summarizes a partition's quality.
type Report struct {
	K         int32
	Cut       int64
	Imbalance float64
	Boundary  int
	CommVol   int64
	Feasible  bool
}

// Evaluate computes a full quality report for p with imbalance bound eps.
func Evaluate(g *graph.Graph, p Partition, k int32, eps float64) Report {
	return Report{
		K:         k,
		Cut:       EdgeCut(g, p),
		Imbalance: Imbalance(g, p, k),
		Boundary:  len(BoundaryNodes(g, p)),
		CommVol:   CommunicationVolume(g, p, k),
		Feasible:  IsFeasible(g, p, k, eps),
	}
}

// String renders the report on one line.
func (r Report) String() string {
	return fmt.Sprintf("k=%d cut=%d imbalance=%.4f boundary=%d commvol=%d feasible=%v",
		r.K, r.Cut, r.Imbalance, r.Boundary, r.CommVol, r.Feasible)
}
