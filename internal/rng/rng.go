// Package rng provides a small, fast, deterministic pseudo-random number
// generator with splittable streams.
//
// Every randomized component of the partitioner (label propagation tie
// breaking, node-order shuffles, evolutionary operators, graph generators)
// takes an explicit *rng.RNG so that runs are reproducible for a fixed seed
// and, in the parallel setting, for a fixed (seed, rank) pair. The generator
// is a PCG-XSH-RR variant (64-bit state, 32-bit output) extended with a
// 64-bit output path; it is not cryptographically secure.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator. The zero value is
// not useful; construct instances with New or Split.
type RNG struct {
	state uint64
	inc   uint64
}

const pcgMult = 6364136223846793005

// New returns a generator seeded with seed. Two generators constructed with
// the same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{inc: 1442695040888963407}
	r.state = 0
	r.next32()
	r.state += seed
	r.next32()
	return r
}

// Reseed resets r in place to the exact state New(seed) would construct,
// without allocating. The worksharing propose passes reseed one per-worker
// generator at every chunk boundary, so a chunk's tie-breaking stream is a
// function of its seed alone — never of the worker that ran it.
func (r *RNG) Reseed(seed uint64) {
	r.inc = 1442695040888963407
	r.state = 0
	r.next32()
	r.state += seed
	r.next32()
}

// Split derives an independent generator from r. The derived stream is a
// deterministic function of r's current state, so calling Split at the same
// point in two identical runs yields identical children. It is used to hand
// each simulated PE its own stream.
func (r *RNG) Split(stream uint64) *RNG {
	c := &RNG{inc: (2*stream + 1) | 1}
	c.state = 0
	c.next32()
	c.state += r.Uint64() ^ (stream * 0x9e3779b97f4a7c15)
	c.next32()
	return c
}

func (r *RNG) next32() uint32 {
	old := r.state
	r.state = old*pcgMult + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *RNG) Uint32() uint32 { return r.next32() }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	hi := uint64(r.next32())
	lo := uint64(r.next32())
	return hi<<32 | lo
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int31n returns a uniform int32 in [0, n). It panics if n <= 0.
func (r *RNG) Int31n(n int32) int32 {
	if n <= 0 {
		panic("rng: Int31n with non-positive n")
	}
	return int32(r.Uint32() % uint32(n))
}

// Int64n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int64n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int64n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (r *RNG) Bool() bool { return r.next32()&1 == 1 }

// IntRange returns a uniform value in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// NormFloat64 returns a normally distributed value with mean 0 and standard
// deviation 1, using the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Shuffle pseudo-randomly permutes the order of n elements using the
// provided swap function (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n) as int32 values.
//
//lint:rawslice-ok generic index permutation, not a partition
func (r *RNG) Perm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
