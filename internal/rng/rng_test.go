package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split(0)
	b := root.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams produced %d/100 identical values", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	mk := func() *RNG {
		r := New(99)
		r.Uint64()
		return r.Split(5)
	}
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split streams from identical parents diverged at %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntnCoversAllValues(t *testing.T) {
	r := New(11)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Intn(8)] = true
	}
	if len(seen) != 8 {
		t.Fatalf("Intn(8) covered only %d values in 1000 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntRangeInclusive(t *testing.T) {
	r := New(21)
	seenLo, seenHi := false, false
	for i := 0; i < 10000; i++ {
		v := r.IntRange(10, 25)
		if v < 10 || v > 25 {
			t.Fatalf("IntRange(10,25) = %d", v)
		}
		if v == 10 {
			seenLo = true
		}
		if v == 25 {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Fatal("IntRange never hit one of its endpoints in 10000 draws")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || int(v) >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		var sum int64
		for _, v := range p {
			sum += int64(v)
		}
		return sum == int64(n)*int64(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, x := range xs {
		sum2 += x
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed multiset sum: %d -> %d", sum, sum2)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(17)
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	frac := float64(trues) / n
	if frac < 0.48 || frac > 0.52 {
		t.Fatalf("Bool true fraction = %v", frac)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("NormFloat64 mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("NormFloat64 variance = %v", variance)
	}
}

func TestInt64nRange(t *testing.T) {
	r := New(31)
	for i := 0; i < 1000; i++ {
		v := r.Int64n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int64n out of range: %d", v)
		}
	}
}

func TestInt31nRange(t *testing.T) {
	r := New(37)
	for i := 0; i < 1000; i++ {
		v := r.Int31n(1000)
		if v < 0 || v >= 1000 {
			t.Fatalf("Int31n out of range: %d", v)
		}
	}
}
