package parhip

// This audit enforces the v2 API contract mechanically: no exported,
// non-deprecated declaration of this package may accept or return a bare
// []int32 partition. Partitions cross the API boundary as *Partition
// values; the raw-slice forms survive only behind "Deprecated:" markers
// (v1 compatibility) and the explicitly allowlisted boundary adapter.
//
// The rule itself lives in internal/analysis (the apiaudit analyzer, which
// generalizes the original AST walk from this file to every package and
// runs module-wide in CI via cmd/parhiplint); this test keeps the root
// package enforced by a plain `go test .` with no extra tooling.

import (
	"testing"

	"repro/internal/analysis"
)

func TestNoBareInt32PartitionsInExportedAPI(t *testing.T) {
	mod, err := analysis.LoadModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	// Only the root package is this test's contract; the module-wide sweep
	// is parhiplint's job (mirrored by analysis.TestModuleIsLintClean).
	for _, pkg := range mod.Packages {
		if pkg.Path == "repro" {
			mod.Packages = []*analysis.Package{pkg}
			break
		}
	}
	diags := analysis.RunAnalyzers(mod, []*analysis.Analyzer{analysis.APIAuditAnalyzer})
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
