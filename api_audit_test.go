package parhip

// This audit enforces the v2 API contract mechanically: no exported,
// non-deprecated declaration of this package may accept or return a bare
// []int32 partition. Partitions cross the API boundary as *Partition
// values; the raw-slice forms survive only behind "Deprecated:" markers
// (v1 compatibility) and the explicitly allowlisted boundary adapter.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// rawSliceAllowlist names the sanctioned raw-assignment adapters.
var rawSliceAllowlist = map[string]bool{
	// NewPartition is the single entry point that wraps a raw assignment
	// into the value type (file parsers and wire handlers need it).
	"NewPartition": true,
}

func TestNoBareInt32PartitionsInExportedAPI(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["parhip"]
	if !ok {
		t.Fatalf("package parhip not found (got %v)", pkgs)
	}
	for name, file := range pkg.Files {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				auditFunc(t, fset, d)
			case *ast.GenDecl:
				auditGen(t, fset, d)
			}
		}
	}
}

func deprecated(groups ...*ast.CommentGroup) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if strings.Contains(c.Text, "Deprecated:") {
				return true
			}
		}
	}
	return false
}

// hasBareInt32Slice reports whether the type expression contains a literal
// []int32. Named types with an int32-slice underlying (e.g. Clustering)
// pass: the point is that partitions travel under a documented name, not
// as anonymous slices.
func hasBareInt32Slice(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		arr, ok := n.(*ast.ArrayType)
		if !ok || arr.Len != nil {
			return true
		}
		if id, ok := arr.Elt.(*ast.Ident); ok && id.Name == "int32" {
			found = true
			return false
		}
		return true
	})
	return found
}

func fieldsHaveBareInt32(fl *ast.FieldList) bool {
	if fl == nil {
		return false
	}
	for _, f := range fl.List {
		if hasBareInt32Slice(f.Type) {
			return true
		}
	}
	return false
}

func auditFunc(t *testing.T, fset *token.FileSet, d *ast.FuncDecl) {
	if !d.Name.IsExported() || deprecated(d.Doc) || rawSliceAllowlist[d.Name.Name] {
		return
	}
	if fieldsHaveBareInt32(d.Type.Params) || fieldsHaveBareInt32(d.Type.Results) {
		t.Errorf("%s: exported non-deprecated %s has a bare []int32 in its signature; use *Partition (or deprecate it)",
			fset.Position(d.Pos()), d.Name.Name)
	}
}

func auditGen(t *testing.T, fset *token.FileSet, d *ast.GenDecl) {
	if d.Tok != token.TYPE && d.Tok != token.VAR {
		return
	}
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok || !ts.Name.IsExported() || deprecated(d.Doc, ts.Doc, ts.Comment) {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			// Non-struct named types (e.g. Clustering, func types) are the
			// documented wrappers the rule asks for — but a func type with a
			// bare []int32 partition parameter still counts.
			if ft, isFunc := ts.Type.(*ast.FuncType); isFunc {
				if fieldsHaveBareInt32(ft.Params) || fieldsHaveBareInt32(ft.Results) {
					t.Errorf("%s: exported func type %s has a bare []int32",
						fset.Position(ts.Pos()), ts.Name.Name)
				}
			}
			continue
		}
		for _, f := range st.Fields.List {
			if deprecated(f.Doc, f.Comment) || !hasBareInt32Slice(f.Type) {
				continue
			}
			exported := false
			for _, n := range f.Names {
				if n.IsExported() {
					exported = true
				}
			}
			if exported {
				t.Errorf("%s: exported field %s.%v carries a bare []int32; use *Partition (or deprecate it)",
					fset.Position(f.Pos()), ts.Name.Name, f.Names)
			}
		}
	}
}
