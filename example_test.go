package parhip_test

import (
	"context"
	"fmt"

	"repro"
)

// ExampleNew partitions two joined cliques with the v2 session API: a
// cancellable Partitioner constructed with functional options and run
// under a context.
func ExampleNew() {
	b := parhip.NewBuilder(8)
	for u := int32(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.AddEdge(u, v)
			b.AddEdge(u+4, v+4)
		}
	}
	b.AddEdge(3, 4)
	g := b.Build()

	p, err := parhip.New(g, parhip.WithK(2), parhip.WithPEs(2), parhip.WithSeed(1))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := p.Run(context.Background())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("cut:", res.Cut)
	fmt.Println("cliques separated:", res.Partition.Block(0) != res.Partition.Block(4))
	// Output:
	// cut: 1
	// cliques separated: true
}

// ExamplePartition partitions a small ring of cliques into two blocks.
func ExamplePartition() {
	// Two 4-cliques joined by a single edge: the optimal bipartition cuts
	// exactly that edge.
	b := parhip.NewBuilder(8)
	for u := int32(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.AddEdge(u, v)
			b.AddEdge(u+4, v+4)
		}
	}
	b.AddEdge(3, 4)
	g := b.Build()

	res, err := parhip.PartitionGraph(g, 2, parhip.Options{PEs: 2, Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("cut:", res.Cut)
	fmt.Println("feasible:", res.Feasible)
	fmt.Println("same block within clique 1:", res.Partition.Block(0) == res.Partition.Block(3))
	fmt.Println("same block within clique 2:", res.Partition.Block(4) == res.Partition.Block(7))
	fmt.Println("cliques separated:", res.Partition.Block(0) != res.Partition.Block(4))
	// Output:
	// cut: 1
	// feasible: true
	// same block within clique 1: true
	// same block within clique 2: true
	// cliques separated: true
}

// ExampleClusterModularity clusters two communities without fixing k.
func ExampleClusterModularity() {
	b := parhip.NewBuilder(8)
	for u := int32(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.AddEdge(u, v)
			b.AddEdge(u+4, v+4)
		}
	}
	b.AddEdge(0, 4)
	g := b.Build()

	clusters, q := parhip.ClusterModularity(g, 1)
	fmt.Println("clique 1 together:", clusters[0] == clusters[3])
	fmt.Println("clique 2 together:", clusters[4] == clusters[7])
	fmt.Println("separated:", clusters[0] != clusters[4])
	fmt.Println("modularity positive:", q > 0)
	// Output:
	// clique 1 together: true
	// clique 2 together: true
	// separated: true
	// modularity positive: true
}
