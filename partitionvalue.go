package parhip

// This file defines Partition, the first-class result value of the v2 API:
// a k-way block assignment together with the derived state callers
// otherwise recompute by hand (block weights, cut, feasibility) and the
// fingerprint of the graph it was computed on. Partitions serialize to a
// versioned binary and a versioned text format, survive a save → mutate
// graph → Repartition round trip, and can diff themselves against a
// previous partition into a MigrationPlan. The raw-[]int32 entry points of
// the v1 API remain as deprecated shims over this type.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/partition"
)

// NodeID identifies a node of a Graph (dense in [0, n)).
type NodeID = int32

// Partition is a first-class k-way partition of a graph: the per-node block
// assignment plus derived state (block weights, edge cut, feasibility) and
// the content fingerprint of the graph it was computed on. Construct one by
// running a Partitioner session, with NewPartition from a raw assignment at
// the API boundary, or with ReadPartition from a serialized form. The zero
// value is empty and invalid; Partition values are immutable once built.
type Partition struct {
	assign []int32
	k      int32
	eps    float64
	fp     string // fingerprint of the source graph ("" when unknown)

	// Derived state. hasDerived is false for partitions deserialized from a
	// headerless (legacy block-per-line) file until Validate binds a graph.
	hasDerived   bool
	cut          int64
	feasible     bool
	blockWeights []int64

	// Bound-graph state, never serialized: node weights and boundary nodes
	// of the graph the partition was computed on (or last Validated
	// against). Nil for deserialized, unvalidated partitions.
	nw       []int64
	boundary []NodeID
}

// NewPartition wraps a raw block assignment into a Partition value bound to
// g, computing all derived state. It is the sanctioned adapter from the raw
// representation at API boundaries (file parsers, wire handlers); library
// results are already Partition values. The assignment is copied; it must
// have one entry per node of g with blocks in [0, k), and eps records the
// balance bound the partition is judged against (0 selects the 0.03
// default).
func NewPartition(g *Graph, assignment []int32, k int32, eps float64) (*Partition, error) {
	if g == nil {
		return nil, errors.New("parhip: NewPartition: nil graph")
	}
	if k < 1 {
		return nil, fmt.Errorf("parhip: NewPartition: k = %d, need k >= 1", k)
	}
	if eps < 0 || eps > MaxEps {
		return nil, fmt.Errorf("parhip: NewPartition: eps = %g outside [0, %g]", eps, MaxEps)
	}
	if eps == 0 {
		eps = 0.03
	}
	if int32(len(assignment)) != g.NumNodes() {
		return nil, fmt.Errorf("parhip: NewPartition: %d entries for %d nodes",
			len(assignment), g.NumNodes())
	}
	for v, b := range assignment {
		if b < 0 || b >= k {
			return nil, fmt.Errorf("parhip: NewPartition: node %d has block %d outside [0,%d)", v, b, k)
		}
	}
	p := &Partition{
		assign: append([]int32(nil), assignment...),
		k:      k,
		eps:    eps,
	}
	p.bind(g)
	return p, nil
}

// newPartitionFromRun builds the Partition value for a finished session run
// without re-deriving what the run already computed. It takes ownership of
// part.
func newPartitionFromRun(g *Graph, part []int32, k int32, eps float64, cut int64, feasible bool) *Partition {
	p := &Partition{
		assign:       part,
		k:            k,
		eps:          eps,
		fp:           g.Fingerprint(),
		hasDerived:   true,
		cut:          cut,
		feasible:     feasible,
		blockWeights: partition.BlockWeights(g, part, k),
		nw:           g.NW,
	}
	p.boundary = partition.BoundaryNodes(g, part)
	return p
}

// bind (re)computes every graph-derived field of p from g.
func (p *Partition) bind(g *Graph) {
	p.fp = g.Fingerprint()
	p.cut = partition.EdgeCut(g, p.assign)
	p.blockWeights = partition.BlockWeights(g, p.assign, p.k)
	p.feasible = partition.IsFeasible(g, p.assign, p.k, p.eps)
	p.boundary = partition.BoundaryNodes(g, p.assign)
	p.nw = g.NW
	p.hasDerived = true
}

// K returns the number of blocks.
func (p *Partition) K() int32 { return p.k }

// Eps returns the imbalance bound the partition is judged against.
func (p *Partition) Eps() float64 { return p.eps }

// NumNodes returns the number of nodes the partition assigns.
func (p *Partition) NumNodes() int32 { return int32(len(p.assign)) }

// Block returns the block of node v.
func (p *Partition) Block(v NodeID) int32 { return p.assign[v] }

// BlockWeights returns a copy of the per-block node weights, or nil when
// the partition has not been bound to a graph (deserialized from a
// headerless file and not yet Validated).
func (p *Partition) BlockWeights() []int64 {
	if p.blockWeights == nil {
		return nil
	}
	return append([]int64(nil), p.blockWeights...)
}

// Cut returns the weight of edges crossing between blocks, or -1 when
// unknown (see BlockWeights).
func (p *Partition) Cut() int64 {
	if !p.hasDerived {
		return -1
	}
	return p.cut
}

// Feasible reports whether every block respects the balance bound
// (1+eps)*ceil(W/k). It is false when the partition has not been bound to a
// graph.
func (p *Partition) Feasible() bool { return p.hasDerived && p.feasible }

// Imbalance returns max block weight over average block weight, minus 1, or
// -1 when unknown.
func (p *Partition) Imbalance() float64 {
	if len(p.blockWeights) == 0 {
		return -1
	}
	var total, mx int64
	for _, w := range p.blockWeights {
		total += w
		if w > mx {
			mx = w
		}
	}
	if total == 0 {
		return 0
	}
	return float64(mx)/(float64(total)/float64(p.k)) - 1
}

// GraphFingerprint returns the content fingerprint of the graph the
// partition was computed on ("" when unknown). Validate compares it against
// the presented graph.
func (p *Partition) GraphFingerprint() string { return p.fp }

// Boundary returns a copy of the boundary nodes — nodes with at least one
// neighbour in a different block. It is nil for partitions deserialized
// from disk until Validate binds them to a graph.
func (p *Partition) Boundary() []NodeID {
	if p.boundary == nil {
		return nil
	}
	return append([]NodeID(nil), p.boundary...)
}

// Clone returns a deep copy of p.
func (p *Partition) Clone() *Partition {
	c := *p
	c.assign = append([]int32(nil), p.assign...)
	if p.blockWeights != nil {
		c.blockWeights = append([]int64(nil), p.blockWeights...)
	}
	if p.boundary != nil {
		c.boundary = append([]NodeID(nil), p.boundary...)
	}
	return &c
}

// Checksum returns a short stable content hash over the assignment and
// block count — the identity of the partition itself, independent of the
// graph. parhipd keys its repartition cache on (graph fingerprint, previous
// partition checksum, options).
func (p *Partition) Checksum() string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(p.k))
	h.Write(buf[:])
	for _, b := range p.assign {
		binary.LittleEndian.PutUint32(buf[:4], uint32(b))
		h.Write(buf[:4])
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Validate checks p against g: the assignment must have one entry per node,
// every block must lie in [0, k), and — when the partition carries a graph
// fingerprint — the fingerprint must match g's. On success the partition is
// (re)bound to g: cut, block weights, feasibility and boundary are
// recomputed, so a partition read from disk becomes fully derived. To reuse
// a partition on a *changed* graph, pass it to Repartition instead;
// Validate is the strict same-graph check.
func (p *Partition) Validate(g *Graph) error {
	if g == nil {
		return errors.New("parhip: Partition.Validate: nil graph")
	}
	if int32(len(p.assign)) != g.NumNodes() {
		return fmt.Errorf("parhip: partition has %d entries for %d nodes",
			len(p.assign), g.NumNodes())
	}
	for v, b := range p.assign {
		if b < 0 || b >= p.k {
			return fmt.Errorf("parhip: node %d has block %d outside [0,%d)", v, b, p.k)
		}
	}
	if p.fp != "" {
		if got := g.Fingerprint(); got != p.fp {
			return fmt.Errorf("parhip: partition was computed on a different graph (fingerprint %.12s… != %.12s…)",
				p.fp, got)
		}
	}
	p.bind(g)
	return nil
}

// Move is one node's relocation between two partitions.
type Move struct {
	Node NodeID
	From int32 // block in the previous partition
	To   int32 // block in the new partition
}

// MigrationPlan describes what it costs to move a system from a previous
// partition to a new one: the per-node moves, their count, and the total
// migrated node weight.
type MigrationPlan struct {
	// Moves lists every node whose block changed, in node order.
	Moves []Move
	// MigratedNodes is len(Moves) as an int64 (convenient for stats).
	MigratedNodes int64
	// MigrationVolume is the total node weight of the moved nodes — the
	// data volume a serving system must reshuffle. When neither partition
	// is bound to a graph it falls back to the node count.
	MigrationVolume int64
	// TotalNodes is the number of nodes in the partitions.
	TotalNodes int32
}

// MigratedFraction returns MigratedNodes / TotalNodes.
func (mp *MigrationPlan) MigratedFraction() float64 {
	if mp.TotalNodes == 0 {
		return 0
	}
	return float64(mp.MigratedNodes) / float64(mp.TotalNodes)
}

// MigrationPlan diffs p against a previous partition of the same node set
// and returns the moves needed to migrate from prev to p. The block counts
// may differ (repartitioning to a new k is a valid scenario); the node
// counts must match.
func (p *Partition) MigrationPlan(prev *Partition) (*MigrationPlan, error) {
	if prev == nil {
		return nil, errors.New("parhip: MigrationPlan: nil previous partition")
	}
	if len(p.assign) != len(prev.assign) {
		return nil, fmt.Errorf("parhip: MigrationPlan: %d nodes now vs %d previously",
			len(p.assign), len(prev.assign))
	}
	nw := p.nw
	if nw == nil {
		nw = prev.nw
	}
	mp := &MigrationPlan{TotalNodes: int32(len(p.assign))}
	for v := range p.assign {
		if p.assign[v] == prev.assign[v] {
			continue
		}
		mp.Moves = append(mp.Moves, Move{Node: NodeID(v), From: prev.assign[v], To: p.assign[v]})
		if nw != nil {
			mp.MigrationVolume += nw[v]
		} else {
			mp.MigrationVolume++
		}
	}
	mp.MigratedNodes = int64(len(mp.Moves))
	return mp, nil
}

// --- serialization ------------------------------------------------------

// partitionMagic opens the versioned binary partition format.
var partitionMagic = [8]byte{'P', 'H', 'P', 'A', 'R', 'T', '1', '\n'}

// textHeader opens the versioned text partition format.
const textHeader = "%% parhip-partition v1"

// WriteTo writes the versioned binary partition format (magic, version, k,
// eps, graph fingerprint, derived stats, assignment; all little-endian).
// It implements io.WriterTo. The encoding is deterministic: equal
// partitions serialize to identical bytes.
func (p *Partition) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.Write(partitionMagic[:])
	le := func(x uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], x)
		buf.Write(b[:])
	}
	le32 := func(x uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], x)
		buf.Write(b[:])
	}
	le32(1) // version
	le32(uint32(p.k))
	le(math.Float64bits(p.eps))
	le32(uint32(len(p.fp)))
	buf.WriteString(p.fp)
	// Derived stats are written only when actually derived — a partition
	// read from a legacy headerless file and not yet Validated must not
	// come back with a fabricated cut of 0.
	if p.hasDerived {
		buf.WriteByte(1)
		le(uint64(p.cut))
		if p.feasible {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
		le32(uint32(len(p.blockWeights)))
		for _, bw := range p.blockWeights {
			le(uint64(bw))
		}
	} else {
		buf.WriteByte(0)
	}
	le(uint64(len(p.assign)))
	for _, b := range p.assign {
		le32(uint32(b))
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// WriteTextTo writes the versioned text partition format: a '%%' header
// line, '%'-prefixed metadata lines, then one block per node per line. The
// body is compatible with legacy block-per-line partition files (parsers
// that skip '%' comments read it unchanged). It is deterministic like
// WriteTo.
func (p *Partition) WriteTextTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.WriteString(textHeader + "\n")
	fmt.Fprintf(&buf, "%% k %d\n", p.k)
	fmt.Fprintf(&buf, "%% eps %s\n", strconv.FormatFloat(p.eps, 'g', -1, 64))
	if p.fp != "" {
		fmt.Fprintf(&buf, "%% graph %s\n", p.fp)
	}
	if p.hasDerived {
		fmt.Fprintf(&buf, "%% cut %d\n", p.cut)
		fmt.Fprintf(&buf, "%% feasible %v\n", p.feasible)
	}
	if len(p.blockWeights) > 0 {
		buf.WriteString("% blockweights")
		for _, bw := range p.blockWeights {
			buf.WriteByte(' ')
			buf.WriteString(strconv.FormatInt(bw, 10))
		}
		buf.WriteByte('\n')
	}
	for _, b := range p.assign {
		buf.WriteString(strconv.Itoa(int(b)))
		buf.WriteByte('\n')
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadPartition reads a partition in any supported format, sniffed from the
// content: the versioned binary format, the versioned text format, or a
// legacy block-per-line file (for which k is inferred as max block + 1 and
// derived state stays unknown until Validate).
func ReadPartition(r io.Reader) (*Partition, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("parhip: read partition: %w", err)
	}
	p := &Partition{}
	if err := p.decode(data); err != nil {
		return nil, err
	}
	return p, nil
}

// ReadFrom replaces p's contents with a partition read from r (any
// supported format, see ReadPartition). It implements io.ReaderFrom.
func (p *Partition) ReadFrom(r io.Reader) (int64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return int64(len(data)), fmt.Errorf("parhip: read partition: %w", err)
	}
	if err := p.decode(data); err != nil {
		return int64(len(data)), err
	}
	return int64(len(data)), nil
}

func (p *Partition) decode(data []byte) error {
	if len(data) >= len(partitionMagic) && bytes.Equal(data[:len(partitionMagic)], partitionMagic[:]) {
		return p.decodeBinary(data[len(partitionMagic):])
	}
	return p.decodeText(data)
}

func (p *Partition) decodeBinary(b []byte) error {
	off := 0
	u32 := func() (uint32, error) {
		if off+4 > len(b) {
			return 0, errors.New("parhip: truncated binary partition")
		}
		v := binary.LittleEndian.Uint32(b[off:])
		off += 4
		return v, nil
	}
	u64 := func() (uint64, error) {
		if off+8 > len(b) {
			return 0, errors.New("parhip: truncated binary partition")
		}
		v := binary.LittleEndian.Uint64(b[off:])
		off += 8
		return v, nil
	}
	version, err := u32()
	if err != nil {
		return err
	}
	if version != 1 {
		return fmt.Errorf("parhip: unsupported partition format version %d", version)
	}
	k, err := u32()
	if err != nil {
		return err
	}
	epsBits, err := u64()
	if err != nil {
		return err
	}
	if !validEps(math.Float64frombits(epsBits)) {
		return fmt.Errorf("parhip: partition has eps = %g outside [0, %g]",
			math.Float64frombits(epsBits), MaxEps)
	}
	fpLen, err := u32()
	if err != nil {
		return err
	}
	if fpLen > uint32(len(b)-off) {
		return errors.New("parhip: truncated binary partition")
	}
	fp := string(b[off : off+int(fpLen)])
	off += int(fpLen)
	if off >= len(b) {
		return errors.New("parhip: truncated binary partition")
	}
	derived := b[off] != 0
	off++
	var (
		cut      uint64
		feasible bool
		bw       []int64
	)
	if derived {
		cut, err = u64()
		if err != nil {
			return err
		}
		if off >= len(b) {
			return errors.New("parhip: truncated binary partition")
		}
		feasible = b[off] != 0
		off++
		nbw, err := u32()
		if err != nil {
			return err
		}
		if nbw > 0 {
			if int64(nbw) != int64(k) {
				return fmt.Errorf("parhip: partition has %d block weights for k=%d", nbw, k)
			}
			if uint64(nbw) > uint64(len(b)-off)/8 {
				return errors.New("parhip: truncated binary partition")
			}
			bw = make([]int64, nbw)
			for i := range bw {
				x, err := u64()
				if err != nil {
					return err
				}
				bw[i] = int64(x)
			}
		}
	}
	n, err := u64()
	if err != nil {
		return err
	}
	// Divide instead of multiplying: 4*n overflows uint64 for a corrupt n,
	// which would slip past the bound and panic in make below.
	if n > uint64(len(b)-off)/4 {
		return errors.New("parhip: truncated binary partition")
	}
	if k < 1 {
		return fmt.Errorf("parhip: partition has k = %d", k)
	}
	assign := make([]int32, n)
	for i := range assign {
		v, err := u32()
		if err != nil {
			return err
		}
		assign[i] = int32(v)
		if assign[i] < 0 || assign[i] >= int32(k) {
			return fmt.Errorf("parhip: node %d has block %d outside [0,%d)", i, assign[i], k)
		}
	}
	if off != len(b) {
		return fmt.Errorf("parhip: %d trailing bytes after binary partition", len(b)-off)
	}
	*p = Partition{
		assign:       assign,
		k:            int32(k),
		eps:          math.Float64frombits(epsBits),
		fp:           fp,
		hasDerived:   derived,
		cut:          int64(cut),
		feasible:     feasible,
		blockWeights: bw,
	}
	return nil
}

// validEps reports whether a deserialized eps is a usable imbalance bound:
// finite, non-negative and within MaxEps (0 is the "unspecified/default"
// form legacy files produce). NaN in particular must be rejected here —
// it slides through ordinary < / > range checks downstream.
func validEps(eps float64) bool {
	return !math.IsNaN(eps) && eps >= 0 && eps <= MaxEps
}

func (p *Partition) decodeText(data []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	out := Partition{}
	versioned := false
	line := 0
	var maxBlock int32 = -1
	for sc.Scan() {
		line++
		t := strings.TrimSpace(sc.Text())
		if t == "" {
			continue
		}
		if strings.HasPrefix(t, "%") {
			if t == textHeader {
				versioned = true
				continue
			}
			fields := strings.Fields(strings.TrimLeft(t, "% "))
			if len(fields) < 2 {
				continue // unknown comment
			}
			var err error
			switch fields[0] {
			case "k":
				var k int64
				k, err = strconv.ParseInt(fields[1], 10, 32)
				out.k = int32(k)
			case "eps":
				out.eps, err = strconv.ParseFloat(fields[1], 64)
			case "graph":
				out.fp = fields[1]
			case "cut":
				out.cut, err = strconv.ParseInt(fields[1], 10, 64)
				out.hasDerived = true
			case "feasible":
				out.feasible, err = strconv.ParseBool(fields[1])
				out.hasDerived = true
			case "blockweights":
				out.blockWeights = make([]int64, 0, len(fields)-1)
				for _, f := range fields[1:] {
					var w int64
					w, err = strconv.ParseInt(f, 10, 64)
					if err != nil {
						break
					}
					out.blockWeights = append(out.blockWeights, w)
				}
			}
			if err != nil {
				return fmt.Errorf("parhip: text partition line %d: %v", line, err)
			}
			continue
		}
		b, err := strconv.ParseInt(t, 10, 32)
		if err != nil {
			return fmt.Errorf("parhip: text partition line %d: %v", line, err)
		}
		if b < 0 {
			return fmt.Errorf("parhip: text partition line %d: negative block %d", line, b)
		}
		out.assign = append(out.assign, int32(b))
		if int32(b) > maxBlock {
			maxBlock = int32(b)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("parhip: read text partition: %w", err)
	}
	if len(out.assign) == 0 {
		return errors.New("parhip: text partition has no assignments")
	}
	if !validEps(out.eps) {
		return fmt.Errorf("parhip: text partition has eps = %g outside [0, %g]", out.eps, MaxEps)
	}
	if out.k == 0 {
		// Legacy headerless file: infer the block count.
		out.k = maxBlock + 1
	}
	if versioned && out.k < 1 {
		return fmt.Errorf("parhip: text partition has k = %d", out.k)
	}
	if maxBlock >= out.k {
		return fmt.Errorf("parhip: text partition has block %d outside [0,%d)", maxBlock, out.k)
	}
	if out.blockWeights != nil && int32(len(out.blockWeights)) != out.k {
		return fmt.Errorf("parhip: text partition has %d block weights for k=%d", len(out.blockWeights), out.k)
	}
	*p = out
	return nil
}
