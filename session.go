package parhip

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

// This file is the v2 public API: a Partitioner session constructed with
// New and functional options, run under a context.Context with live
// progress reporting. The v1 entry points (Partition, PartitionBaseline,
// the Options struct) remain as thin deprecated wrappers around it.

// ErrAlreadyRun is returned by Partitioner.Run when the session has
// already been started: a Partitioner is single-use, like an http.Request.
var ErrAlreadyRun = errors.New("parhip: session already run; create a new Partitioner with New")

// MaxEps bounds the allowed imbalance parameter. An eps beyond it (the
// heaviest block allowed 100x the average) is always a caller bug, not a
// balance setting, and is rejected at the API boundary.
const MaxEps = 99.0

// ProgressEvent is one checkpoint of a running partition, delivered on the
// Partitioner's Progress channel (and to WithProgressFunc callbacks).
type ProgressEvent struct {
	// Phase is the pipeline stage: "coarsen", "init", "refine",
	// "rebalance" or "done".
	Phase string
	// Cycle is the 0-based V-cycle index; Cycles the configured total.
	Cycle, Cycles int
	// Level is the hierarchy level the event refers to (0 = input graph).
	Level int
	// N and M are the node/edge counts of the graph at that level.
	N, M int64
	// Cut and Imbalance are the current partition quality, or -1 when the
	// phase has not computed them (coarsening tracks shrinkage only).
	Cut       int64
	Imbalance float64
	// Elapsed is the wall-clock time since Run started.
	Elapsed time.Duration
	// CommMsgs and CommBytes are the messages and bytes the simulated ranks
	// have exchanged since the run started (cumulative, monotone).
	CommMsgs  int64
	CommBytes int64
	// TransportFrames and TransportBytes are the transport-level view of
	// that traffic: frames and payload bytes the hosting process's
	// transport has sent (cumulative; equals the rank-level counts on the
	// in-process transport, and this process's wire share on TCP).
	TransportFrames int64
	TransportBytes  int64
}

// settings is the resolved configuration of a Partitioner session. The
// *Set flags record that an option was passed explicitly: the legacy
// Options struct uses 0 as "unset, take the default", so an explicit zero
// would otherwise be silently replaced — exactly what v2 validation
// promises not to do. New rejects those instead.
type settings struct {
	k          int32
	opts       Options
	prev       *Partition // previous partition for migration-aware runs
	epsSet     bool
	seedSet    bool
	pesSet     bool
	workersSet bool
	onProgress []func(ProgressEvent)
	progressN  int // Progress channel capacity
}

// Option configures a Partitioner session (see New).
type Option func(*settings)

// WithK sets the number of blocks. Required.
func WithK(k int32) Option { return func(s *settings) { s.k = k } }

// WithPEs sets the number of simulated processing elements. Must be
// positive; omit the option for the default of 4.
func WithPEs(n int) Option {
	return func(s *settings) { s.opts.PEs = n; s.pesSet = true }
}

// WithMode selects the quality/time trade-off (default Fast).
func WithMode(m Mode) Option { return func(s *settings) { s.opts.Mode = m } }

// WithClass selects the graph class driving the coarsening size constraint
// (default Social).
func WithClass(c GraphClass) Option { return func(s *settings) { s.opts.Class = c } }

// WithEps sets the allowed imbalance. Must be in (0, MaxEps]; omit the
// option for the default of 0.03. An explicit 0 is rejected rather than
// silently mapped to the default (the hard-balance case eps=0 is not
// supported by the partitioner).
func WithEps(eps float64) Option {
	return func(s *settings) { s.opts.Eps = eps; s.epsSet = true }
}

// WithSeed makes the run reproducible. Must be >= 1; omit the option for
// the default of 1 (0 is the legacy "unset" sentinel and is rejected).
func WithSeed(seed uint64) Option {
	return func(s *settings) { s.opts.Seed = seed; s.seedSet = true }
}

// WithWorkers sets the number of OS threads each simulated rank uses for
// the compute half of its supersteps. Must be positive; omit the option
// for the default (NumCPU divided by the ranks hosted in this process).
// The partition is bit-identical for every worker count — this is purely
// a wall-clock knob.
func WithWorkers(n int) Option {
	return func(s *settings) { s.opts.Workers = n; s.workersSet = true }
}

// WithEvoTimeBudget bounds the evolutionary search by wall-clock time,
// divided among the PEs as in the paper's eco setting.
func WithEvoTimeBudget(d time.Duration) Option {
	return func(s *settings) { s.opts.EvoTimeBudget = d }
}

// WithObjective selects the fitness of the coarsest-level evolutionary
// search (default MinimizeCut).
func WithObjective(o Objective) Option { return func(s *settings) { s.opts.Objective = o } }

// WithPrepartition feeds an existing k-way partition into the first
// V-cycle; the result is never worse than the input.
//
// Deprecated: use WithPrevious, which additionally makes the run
// migration-aware (refinement keeps nodes on their previous block when
// cut-neutral and Stats reports the migration volume).
func WithPrepartition(p []int32) Option { return func(s *settings) { s.opts.Prepartition = p } }

// WithPrevious makes the session a repartitioning run: prev — typically
// the result of an earlier run on an older version of the graph — seeds
// the first V-cycle exactly like a prepartition, and the whole pipeline
// becomes migration-aware: label propagation refinement keeps nodes on
// their previous block when a move is cut-neutral, the coarsest-level
// evolutionary selection breaks objective ties in favour of fewer moved
// nodes, and Stats gains MigratedNodes/MigrationVolume. The previous
// partition may come from a different (drifted) graph as long as the node
// count matches; use Repartition for the one-call form.
//
// When WithK is omitted, the session inherits prev's block count; when no
// eps is configured, it inherits prev's.
func WithPrevious(prev *Partition) Option { return func(s *settings) { s.prev = prev } }

// WithOptions applies a v1 Options struct wholesale — the bridge for
// callers migrating incrementally. It replaces everything set by earlier
// With* options (v1 semantics: zero fields mean "use the default"); later
// options still override it.
func WithOptions(o Options) Option {
	return func(s *settings) {
		s.opts = o
		// The struct carries v1 zero-means-default semantics, so earlier
		// explicit-zero markers no longer apply to its fields.
		s.epsSet, s.seedSet, s.pesSet, s.workersSet = false, false, false, false
	}
}

// WithTracer attaches a span tracer to the session: the run records
// per-rank spans (pipeline phases and levels, sclp supersteps with move
// counts, mpi exchange supersteps with word counts) into t, and
// t.WriteJSON afterwards yields a Chrome trace-event file openable in
// Perfetto with one track per rank. A nil t leaves tracing disabled (the
// default, zero cost).
func WithTracer(t *Tracer) Option { return func(s *settings) { s.opts.Trace = t } }

// WithProgressFunc registers a callback invoked synchronously for every
// progress event (on the coordinating rank's goroutine — it must not block
// for long). Unlike the Progress channel, callbacks never drop events. A
// nil fn is ignored.
func WithProgressFunc(fn func(ProgressEvent)) Option {
	return func(s *settings) {
		if fn != nil {
			s.onProgress = append(s.onProgress, fn)
		}
	}
}

// WithProgressBuffer sets the capacity of the Progress channel (default
// 64). When the consumer falls behind, newer events are dropped rather
// than stalling the partitioner.
func WithProgressBuffer(n int) Option { return func(s *settings) { s.progressN = n } }

// Partitioner is a single-use partitioning session: configure it with New,
// optionally subscribe to Progress, then call Run. All methods are safe
// for concurrent use.
type Partitioner struct {
	g *Graph
	s settings

	mu       sync.Mutex
	started  bool
	finished bool               // Run has returned
	progress chan ProgressEvent // nil until Progress() is called
}

// New validates the configuration and returns a ready-to-run session.
//
//	p, err := parhip.New(g, parhip.WithK(8), parhip.WithMode(parhip.Eco))
//	...
//	res, err := p.Run(ctx)
//
// Unlike the deprecated Partition, every invalid setting is rejected here
// with a descriptive error instead of being silently replaced by a
// default: k < 1 or k > n, eps outside [0, MaxEps], negative PEs, unknown
// Mode/Class/Objective values, a negative evolutionary time budget, and a
// prepartition of the wrong length.
func New(g *Graph, opts ...Option) (*Partitioner, error) {
	s := settings{progressN: 64}
	for _, o := range opts {
		o(&s)
	}
	if s.prev != nil {
		// A repartitioning session inherits k (and, unless set, eps) from
		// the previous partition, then validates the pair.
		if s.k == 0 {
			s.k = s.prev.K()
		}
		if s.opts.Eps == 0 && !s.epsSet {
			s.opts.Eps = s.prev.Eps()
		}
		if g != nil && s.prev.NumNodes() != g.NumNodes() {
			return nil, fmt.Errorf("parhip: previous partition has %d nodes, graph has %d (repartitioning requires a matching node set)",
				s.prev.NumNodes(), g.NumNodes())
		}
		if s.prev.K() != s.k {
			return nil, fmt.Errorf("parhip: previous partition has k = %d, session configured k = %d",
				s.prev.K(), s.k)
		}
	}
	if s.opts.Objective == MinimizeMigration && s.prev == nil {
		return nil, errors.New("parhip: MinimizeMigration requires a previous partition (WithPrevious or Repartition)")
	}
	if err := validateRun(g, s.k, s.opts); err != nil {
		return nil, err
	}
	// The legacy Options struct reads 0 as "unset": an explicit zero passed
	// through an option would be silently replaced by the default, which is
	// the exact behavior v2 validation exists to eliminate. Reject it.
	if s.epsSet && s.opts.Eps == 0 {
		return nil, errors.New("parhip: WithEps(0) is not supported (0 is the legacy 'use default' sentinel); omit WithEps for the 0.03 default or pass a positive eps")
	}
	if s.seedSet && s.opts.Seed == 0 {
		return nil, errors.New("parhip: WithSeed(0) is not supported (0 is the legacy 'use default' sentinel); omit WithSeed for the default seed 1")
	}
	if s.pesSet && s.opts.PEs == 0 {
		return nil, errors.New("parhip: WithPEs(0) is not supported (0 is the legacy 'use default' sentinel); omit WithPEs for the default of 4")
	}
	if s.workersSet && s.opts.Workers == 0 {
		return nil, errors.New("parhip: WithWorkers(0) is not supported (0 is the legacy 'use default' sentinel); omit WithWorkers for the NumCPU-derived default")
	}
	return &Partitioner{g: g, s: s}, nil
}

// validateRun is the strict option validation shared by New and the
// deprecated Partition/PartitionBaseline entry points.
func validateRun(g *Graph, k int32, o Options) error {
	if g == nil {
		return errors.New("parhip: nil graph")
	}
	if k < 1 {
		return fmt.Errorf("parhip: k = %d, need k >= 1 (set it with WithK)", k)
	}
	if k > g.NumNodes() {
		return fmt.Errorf("parhip: k = %d exceeds the graph's %d nodes", k, g.NumNodes())
	}
	if o.Eps < 0 {
		return fmt.Errorf("parhip: eps = %g, must be >= 0", o.Eps)
	}
	if o.Eps > MaxEps {
		return fmt.Errorf("parhip: eps = %g, must be <= %g", o.Eps, MaxEps)
	}
	if o.PEs < 0 {
		return fmt.Errorf("parhip: PEs = %d, must be >= 0 (0 selects the default)", o.PEs)
	}
	if o.Workers < 0 {
		return fmt.Errorf("parhip: Workers = %d, must be >= 0 (0 selects the default)", o.Workers)
	}
	if o.Mode < Fast || o.Mode > Minimal {
		return fmt.Errorf("parhip: unknown mode %d", o.Mode)
	}
	if o.Class < Social || o.Class > Mesh {
		return fmt.Errorf("parhip: unknown graph class %d", o.Class)
	}
	if o.Objective < MinimizeCut || o.Objective > MinimizeMigration {
		return fmt.Errorf("parhip: unknown objective %d", o.Objective)
	}
	if o.EvoTimeBudget < 0 {
		return fmt.Errorf("parhip: negative evolutionary time budget %v", o.EvoTimeBudget)
	}
	if o.Prepartition != nil && int32(len(o.Prepartition)) != g.NumNodes() {
		return fmt.Errorf("parhip: prepartition has %d entries for %d nodes",
			len(o.Prepartition), g.NumNodes())
	}
	return nil
}

// Progress returns the session's progress channel. Subscribe before
// calling Run; events arriving while the buffer is full are dropped, and
// the channel is closed when Run returns (on success, error and
// cancellation alike), so ranging over it terminates.
func (p *Partitioner) Progress() <-chan ProgressEvent {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.progress == nil {
		n := p.s.progressN
		if n < 1 {
			n = 1
		}
		p.progress = make(chan ProgressEvent, n)
		if p.finished {
			// First subscription after Run already returned: hand back a
			// closed (empty) channel so ranging over it still terminates.
			close(p.progress)
		}
	}
	return p.progress
}

// emitsProgress reports whether Run must wire the core progress callback.
// Progress checkpoints add one cut/block-weight allreduce per refinement
// level, so sessions nobody observes skip them entirely.
func (p *Partitioner) emitsProgress() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.progress != nil || len(p.s.onProgress) > 0
}

func (p *Partitioner) emit(ev ProgressEvent) {
	p.mu.Lock()
	ch := p.progress
	p.mu.Unlock()
	if ch != nil {
		select {
		case ch <- ev:
		default: // consumer is behind: drop rather than stall the ranks
		}
	}
	for _, fn := range p.s.onProgress {
		fn(ev)
	}
}

// Run executes the session. It blocks until the partition is complete, the
// context is cancelled, or its deadline passes; in the latter two cases it
// returns ctx.Err() promptly (every simulated rank unwinds cooperatively
// at the next superstep boundary — no goroutine outlives the call). Run
// may be called once per Partitioner; later calls return ErrAlreadyRun.
func (p *Partitioner) Run(ctx context.Context) (Result, error) {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return Result{}, ErrAlreadyRun
	}
	p.started = true
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.finished = true
		if p.progress != nil {
			close(p.progress)
		}
		p.mu.Unlock()
	}()

	if ctx == nil {
		ctx = context.Background()
	}
	cfg := p.s.opts.coreConfig(p.s.k)
	if p.s.prev != nil {
		// Repartitioning: the previous assignment both seeds the first
		// V-cycle (prepartition semantics: never worse than the input) and
		// acts as the migration reference the pipeline stays close to.
		cfg.Prepartition = p.s.prev.assign
		cfg.PrevPartition = p.s.prev.assign
	}
	if p.emitsProgress() {
		cfg.OnProgress = func(cp core.Progress) {
			p.emit(ProgressEvent{
				Phase:           string(cp.Phase),
				Cycle:           cp.Cycle,
				Cycles:          cp.Cycles,
				Level:           cp.Level,
				N:               cp.N,
				M:               cp.M,
				Cut:             cp.Cut,
				Imbalance:       cp.Imbalance,
				Elapsed:         cp.Elapsed,
				CommMsgs:        cp.CommMsgs,
				CommBytes:       cp.CommBytes,
				TransportFrames: cp.TransportFrames,
				TransportBytes:  cp.TransportBytes,
			})
		}
	}
	res, err := core.RunCtx(ctx, p.s.opts.pes(), p.g, cfg)
	if err != nil {
		return Result{}, err
	}
	eps := cfg.Eps
	if eps <= 0 {
		eps = 0.03 // the core default, so the Partition records the bound actually enforced
	}
	pv := newPartitionFromRun(p.g, res.Part, p.s.k, eps, res.Stats.Cut, res.Stats.Feasible)
	return Result{
		Partition: pv,
		Part:      res.Part,
		Cut:       res.Stats.Cut,
		Imbalance: res.Stats.Imbalance,
		Feasible:  res.Stats.Feasible,
		Stats:     res.Stats,
	}, nil
}

// Repartition partitions g starting from a previous partition, minimizing
// migration: the one-call form of New + WithPrevious(prev) + Run. It is
// the intended entry point for dynamic graphs — partition once, let the
// graph drift, then Repartition with the saved result to obtain a new
// feasible partition whose cut is competitive with a cold run while moving
// only a small fraction of the nodes. Diff the result against prev with
// Partition.MigrationPlan; Stats reports MigratedNodes/MigrationVolume.
//
//	res, err := parhip.Repartition(ctx, g2, prevRes.Partition)
//	plan, _ := res.Partition.MigrationPlan(prevRes.Partition)
func Repartition(ctx context.Context, g *Graph, prev *Partition, opts ...Option) (Result, error) {
	if prev == nil {
		return Result{}, errors.New("parhip: Repartition: nil previous partition")
	}
	p, err := New(g, append([]Option{WithPrevious(prev)}, opts...)...)
	if err != nil {
		return Result{}, err
	}
	return p.Run(ctx)
}
